// Package mpi3rma's root benchmark file maps every figure and ablation
// experiment of DESIGN.md onto testing.B benchmarks, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's evaluation. Each benchmark iteration runs one
// complete experiment cell (fresh simulated world, full workload) and
// reports the modelled virtual time as the custom metric "model-us/op"
// alongside the usual wall ns/op. The model metric is the primary series —
// see EXPERIMENTS.md.
package mpi3rma

import (
	"fmt"
	"testing"
	"time"

	"mpi3rma/internal/bench"
	"mpi3rma/internal/core"
	"mpi3rma/internal/serializer"
)

// benchSizes is the subset of the Figure 2 sweep used for testing.B runs
// (the full sweep lives in cmd/rmabench).
var benchSizes = []int{8, 128, 1024}

// runCell executes one puts+complete cell per iteration and reports both
// time series.
func runCell(b *testing.B, cfg bench.PutsCompleteConfig) {
	b.Helper()
	var modelUS float64
	for i := 0; i < b.N; i++ {
		out := bench.RunPutsComplete(cfg)
		modelUS += out.Row.ModelUS
		if !out.Verified {
			b.Fatal("target memory inconsistent after the workload")
		}
	}
	b.ReportMetric(modelUS/float64(b.N), "model-us/op")
}

// BenchmarkFig2 is the paper's Figure 2: the cost of each RMA attribute,
// 7 origins x 100 blocking puts + 1 complete.
func BenchmarkFig2(b *testing.B) {
	for _, s := range bench.Fig2SeriesSet {
		for _, size := range benchSizes {
			s, size := s, size
			b.Run(fmt.Sprintf("%s/size=%d", s.Name, size), func(b *testing.B) {
				runCell(b, bench.PutsCompleteConfig{
					Origins: bench.Fig2Origins,
					Puts:    bench.Fig2Puts,
					Size:    size,
					Attrs:   s.Attrs,
					Mech:    s.Mech,
				})
			})
		}
	}
}

// BenchmarkOrderingUnordered is E3: the ordering attribute on an
// unordered (QSNet-like) network.
func BenchmarkOrderingUnordered(b *testing.B) {
	for _, ordering := range []bool{false, true} {
		for _, size := range benchSizes {
			ordering, size := ordering, size
			name := "none"
			attrs := core.AttrNone
			if ordering {
				name = "ordering"
				attrs = core.AttrOrdering
			}
			b.Run(fmt.Sprintf("%s/size=%d", name, size), func(b *testing.B) {
				runCell(b, bench.PutsCompleteConfig{
					Origins:   bench.Fig2Origins,
					Puts:      bench.Fig2Puts,
					Size:      size,
					Attrs:     attrs,
					Mech:      serializer.MechThread,
					Unordered: true,
				})
			})
		}
	}
}

// BenchmarkRemoteCompleteEmulated is E4: remote completion with hardware
// acknowledgements vs software echoes.
func BenchmarkRemoteCompleteEmulated(b *testing.B) {
	for _, soft := range []bool{false, true} {
		for _, size := range benchSizes {
			soft, size := soft, size
			name := "hardware-acks"
			if soft {
				name = "software-echo"
			}
			b.Run(fmt.Sprintf("%s/size=%d", name, size), func(b *testing.B) {
				runCell(b, bench.PutsCompleteConfig{
					Origins:      bench.Fig2Origins,
					Puts:         bench.Fig2Puts,
					Size:         size,
					Attrs:        core.AttrRemoteComplete,
					Mech:         serializer.MechThread,
					SoftwareAcks: soft,
				})
			})
		}
	}
}

// BenchmarkNonCoherentTarget is E5: the puts+complete workload against a
// coherent vs an NEC-SX-style non-coherent target.
func BenchmarkNonCoherentTarget(b *testing.B) {
	for _, nonCoh := range []bool{false, true} {
		for _, size := range benchSizes {
			nonCoh, size := nonCoh, size
			name := "coherent"
			if nonCoh {
				name = "non-coherent"
			}
			b.Run(fmt.Sprintf("%s/size=%d", name, size), func(b *testing.B) {
				runCell(b, bench.PutsCompleteConfig{
					Origins:           bench.Fig2Origins,
					Puts:              bench.Fig2Puts,
					Size:              size,
					Attrs:             core.AttrNone,
					Mech:              serializer.MechThread,
					NonCoherentTarget: nonCoh,
				})
			})
		}
	}
}

// BenchmarkSerializers is E8: the atomic workload under every serializer
// mechanism plus the non-atomic baseline.
func BenchmarkSerializers(b *testing.B) {
	type cell struct {
		name  string
		attrs core.Attr
		mech  serializer.Mechanism
		poll  time.Duration
	}
	cells := []cell{
		{"direct", core.AttrNone, serializer.MechThread, 0},
		{"thread", core.AttrAtomic, serializer.MechThread, 0},
		{"progress", core.AttrAtomic, serializer.MechProgress, 5 * time.Microsecond},
		{"coarse-lock", core.AttrAtomic, serializer.MechCoarseLock, 0},
	}
	for _, c := range cells {
		for _, size := range benchSizes {
			c, size := c, size
			b.Run(fmt.Sprintf("%s/size=%d", c.name, size), func(b *testing.B) {
				runCell(b, bench.PutsCompleteConfig{
					Origins:     bench.Fig2Origins,
					Puts:        bench.Fig2Puts,
					Size:        size,
					Attrs:       c.attrs,
					Mech:        c.mech,
					TargetPolls: c.poll,
				})
			})
		}
	}
}

// runResult benches experiments that produce whole Result tables: one
// iteration = one full experiment; the mean model time over all rows is
// reported.
func runResult(b *testing.B, run func() bench.Result) {
	b.Helper()
	var modelUS float64
	var rows int
	for i := 0; i < b.N; i++ {
		res := run()
		for _, r := range res.Rows {
			modelUS += r.ModelUS
			rows++
		}
	}
	if rows > 0 {
		b.ReportMetric(modelUS/float64(rows), "model-us/row")
	}
}

// BenchmarkStrawmanVsMPI2 is Figure 1 / E6: per-epoch synchronization
// cost of fence, PSCW, lock-unlock against strawman single-call puts.
func BenchmarkStrawmanVsMPI2(b *testing.B) {
	runResult(b, bench.RunFig1)
}

// BenchmarkRelatedAPIs is E7: strawman vs ARMCI vs GASNet on the
// operations each supports (Section VI).
func BenchmarkRelatedAPIs(b *testing.B) {
	runResult(b, bench.RunE7)
}

// BenchmarkDatatypes is E9: contiguous vs vector vs indexed layouts and a
// big-endian target.
func BenchmarkDatatypes(b *testing.B) {
	runResult(b, bench.RunE9)
}

// BenchmarkCompletionModes is E10: per-rank Complete loop vs
// Complete(ALL_RANKS) vs CompleteCollective.
func BenchmarkCompletionModes(b *testing.B) {
	runResult(b, bench.RunE10)
}

// BenchmarkSyncStrength is E11: no sync vs Order vs Complete between put
// batches, on ordered and unordered networks.
func BenchmarkSyncStrength(b *testing.B) {
	runResult(b, bench.RunE11)
}
