package dht

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
	"mpi3rma/rma"
)

func newWorld(t *testing.T, cfg runtime.Config) *runtime.World {
	t.Helper()
	w := runtime.NewWorld(cfg)
	t.Cleanup(w.Close)
	return w
}

func val(m *Map, seed int) []byte {
	b := make([]byte, m.ValueSize())
	for i := range b {
		b[i] = byte(seed + i)
	}
	return b
}

// TestMapBasic: every rank upserts, reads, CASes and deletes its own
// keys, then reads the other ranks' keys cross-rank.
func TestMapBasic(t *testing.T) {
	const ranks, keysPer = 4, 24
	w := newWorld(t, runtime.Config{Ranks: ranks, Seed: 3})
	err := w.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		m, err := Open(s, WithBuckets(64), WithValueSize(16))
		if err != nil {
			t.Errorf("open: %v", err)
			panic("dht: open failed")
		}
		me := p.Rank()
		key := func(r, i int) int64 { return int64(r*1000 + i) }

		for i := 0; i < keysPer; i++ {
			if err := m.Put(key(me, i), val(m, me*keysPer+i)); err != nil {
				t.Errorf("rank %d put %d: %v", me, i, err)
			}
		}
		// Read-your-writes, then overwrite and read again.
		for i := 0; i < keysPer; i++ {
			got, ok, err := m.Get(key(me, i))
			if err != nil || !ok || !bytes.Equal(got, val(m, me*keysPer+i)) {
				t.Errorf("rank %d get %d: got %v ok=%v err=%v", me, i, got, ok, err)
			}
		}
		if err := m.Put(key(me, 0), val(m, 200+me)); err != nil {
			t.Errorf("rank %d overwrite: %v", me, err)
		}
		if got, ok, _ := m.Get(key(me, 0)); !ok || !bytes.Equal(got, val(m, 200+me)) {
			t.Errorf("rank %d overwrite read back %v ok=%v", me, got, ok)
		}

		// CAS: wrong expectation fails, right one lands.
		if swapped, err := m.CAS(key(me, 1), val(m, 99), val(m, 77)); err != nil || swapped {
			t.Errorf("rank %d CAS with stale expect: swapped=%v err=%v", me, swapped, err)
		}
		if swapped, err := m.CAS(key(me, 1), val(m, me*keysPer+1), val(m, 150+me)); err != nil || !swapped {
			t.Errorf("rank %d CAS: swapped=%v err=%v", me, swapped, err)
		}
		if got, ok, _ := m.Get(key(me, 1)); !ok || !bytes.Equal(got, val(m, 150+me)) {
			t.Errorf("rank %d CAS read back %v ok=%v", me, got, ok)
		}

		// Delete: present once, gone after.
		if hit, err := m.Delete(key(me, 2)); err != nil || !hit {
			t.Errorf("rank %d delete: hit=%v err=%v", me, hit, err)
		}
		if hit, err := m.Delete(key(me, 2)); err != nil || hit {
			t.Errorf("rank %d double delete: hit=%v err=%v", me, hit, err)
		}
		if _, ok, _ := m.Get(key(me, 2)); ok {
			t.Errorf("rank %d get after delete still present", me)
		}
		// CAS on an absent key is a clean miss.
		if swapped, err := m.CAS(key(me, 2), val(m, 1), val(m, 2)); err != nil || swapped {
			t.Errorf("rank %d CAS absent: swapped=%v err=%v", me, swapped, err)
		}

		p.Barrier()
		// Cross-rank reads of everyone's surviving keys.
		for r := 0; r < ranks; r++ {
			want := map[int][]byte{0: val(m, 200+r), 1: val(m, 150+r)}
			for i := 3; i < keysPer; i++ {
				want[i] = val(m, r*keysPer+i)
			}
			for i, exp := range want {
				got, ok, err := m.Get(key(r, i))
				if err != nil || !ok || !bytes.Equal(got, exp) {
					t.Errorf("rank %d reading rank %d key %d: %v ok=%v err=%v", me, r, i, got, ok, err)
				}
			}
			if _, ok, _ := m.Get(key(r, 2)); ok {
				t.Errorf("rank %d sees rank %d's deleted key", me, r)
			}
		}
		if st := m.Stats(); st.Gets == 0 || st.Puts == 0 {
			t.Errorf("rank %d stats never moved: %+v", me, st)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapProbeWrapAndFull: a 2x2-bucket table forces probe chains across
// the stripe boundary and a clean ErrTableFull when the fifth key
// arrives.
func TestMapProbeWrapAndFull(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 5})
	err := w.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		m, err := Open(s, WithBuckets(2), WithValueSize(8))
		if err != nil {
			t.Errorf("open: %v", err)
			panic("dht: open failed")
		}
		if p.Rank() != 0 {
			p.Barrier()
			return
		}
		for k := int64(0); k < 4; k++ {
			if err := m.Put(k, val(m, int(k))); err != nil {
				t.Errorf("put %d into 4-bucket table: %v", k, err)
			}
		}
		if err := m.Put(99, val(m, 99)); !errors.Is(err, ErrTableFull) {
			t.Errorf("fifth key: got %v, want ErrTableFull", err)
		}
		for k := int64(0); k < 4; k++ {
			if got, ok, err := m.Get(k); err != nil || !ok || !bytes.Equal(got, val(m, int(k))) {
				t.Errorf("get %d: %v ok=%v err=%v", k, got, ok, err)
			}
		}
		// A tombstone frees capacity without breaking the probe chains
		// threaded through it.
		if hit, _ := m.Delete(1); !hit {
			t.Error("delete(1) missed")
		}
		if err := m.Put(99, val(m, 99)); err != nil {
			t.Errorf("put into tombstone: %v", err)
		}
		for _, k := range []int64{0, 2, 3, 99} {
			if _, ok, err := m.Get(k); err != nil || !ok {
				t.Errorf("get %d after tombstone reuse: ok=%v err=%v", k, ok, err)
			}
		}
		if st := m.Stats(); st.ProbeSteps == 0 {
			t.Errorf("4 keys in 4 buckets never probed: %+v", st)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapContention: every rank CAS-increments the same counter key until
// each has landed `eachWins` increments; the final value must be exactly
// ranks*eachWins — the mutual-exclusion acceptance test for the bucket
// lock/version protocol.
func TestMapContention(t *testing.T) {
	const ranks, eachWins = 4, 8
	w := newWorld(t, runtime.Config{Ranks: ranks, Seed: 11})
	err := w.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		m, err := Open(s, WithBuckets(16), WithValueSize(8))
		if err != nil {
			t.Errorf("open: %v", err)
			panic("dht: open failed")
		}
		enc := func(v int64) []byte {
			b := make([]byte, 8)
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> (8 * i))
			}
			return b
		}
		dec := func(b []byte) int64 {
			var v int64
			for i := 7; i >= 0; i-- {
				v = v<<8 | int64(b[i])
			}
			return v
		}
		const key = int64(42)
		if p.Rank() == 0 {
			if err := m.Put(key, enc(0)); err != nil {
				t.Errorf("seed put: %v", err)
			}
		}
		p.Barrier()
		for wins := 0; wins < eachWins; {
			cur, ok, err := m.Get(key)
			if err != nil || !ok {
				t.Errorf("rank %d get counter: ok=%v err=%v", p.Rank(), ok, err)
				panic("dht: counter vanished")
			}
			swapped, err := m.CAS(key, cur, enc(dec(cur)+1))
			if err != nil {
				t.Errorf("rank %d CAS: %v", p.Rank(), err)
				panic("dht: CAS failed")
			}
			if swapped {
				wins++
			}
		}
		p.Barrier()
		got, ok, err := m.Get(key)
		if err != nil || !ok || dec(got) != ranks*eachWins {
			t.Errorf("rank %d final counter = %d ok=%v err=%v, want %d", p.Rank(), dec(got), ok, err, ranks*eachWins)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// chaosPlans mirrors the core fault matrix: drop, dup, delay, corrupt —
// every plan must converge to the fault-free run's exact table bytes.
func chaosPlans() []struct {
	name string
	plan *simnet.FaultPlan
} {
	return []struct {
		name string
		plan *simnet.FaultPlan
	}{
		{"fault-free", nil},
		{"drop", &simnet.FaultPlan{
			Seed:    2001,
			Default: simnet.LinkFaults{Drop: 0.06},
		}},
		{"drop+dup", &simnet.FaultPlan{
			Seed:    2002,
			Default: simnet.LinkFaults{Drop: 0.04, Dup: 0.12},
		}},
		{"drop+dup+delay+corrupt", &simnet.FaultPlan{
			Seed: 2003,
			Default: simnet.LinkFaults{
				Drop: 0.03, Dup: 0.06, Corrupt: 0.03,
				Delay: 0.15, DelayBy: 4 * time.Microsecond,
			},
		}},
	}
}

// runMapChaos executes the deterministic-placement workload under one
// fault plan and returns every stripe's final bytes. Placement is made
// interleaving-independent by inserting in barrier-separated rounds
// (rank r inserts during round r); the update storm then works on
// disjoint keys, so retries change nothing: converged bytes — including
// version words — depend only on the operation multiset.
func runMapChaos(t *testing.T, plan *simnet.FaultPlan) []byte {
	t.Helper()
	const ranks, keysPer, updates = 4, 16, 8
	w := newWorld(t, runtime.Config{Ranks: ranks, Seed: 7, Faults: plan})
	var final bytes.Buffer
	stripeBytes := make([][]byte, ranks)
	err := w.Run(func(p *runtime.Proc) {
		var s *rma.Session
		if plan != nil {
			s = rma.Open(p, rma.WithFaults(plan))
		} else {
			s = rma.Open(p)
		}
		m, err := Open(s, WithBuckets(32), WithValueSize(8))
		if err != nil {
			t.Errorf("open: %v", err)
			panic("dht chaos: open failed")
		}
		me := p.Rank()
		key := func(r, i int) int64 { return int64(r*1000 + i) }

		// Deterministic placement: only rank r inserts in round r.
		for round := 0; round < ranks; round++ {
			if me == round {
				for i := 0; i < keysPer; i++ {
					if err := m.Put(key(me, i), val(m, me+i)); err != nil {
						t.Errorf("rank %d insert %d: %v", me, i, err)
						panic("dht chaos: insert failed")
					}
				}
			}
			p.Barrier()
		}
		// Disjoint-key update storm: no barriers, any interleaving.
		for u := 0; u < updates; u++ {
			for i := 0; i < keysPer; i++ {
				if err := m.Put(key(me, i), val(m, me+i+u+1)); err != nil {
					t.Errorf("rank %d update %d/%d: %v", me, u, i, err)
					panic("dht chaos: update failed")
				}
			}
		}
		// One delete per rank exercises tombstones deterministically.
		if hit, err := m.Delete(key(me, 0)); err != nil || !hit {
			t.Errorf("rank %d delete: hit=%v err=%v", me, hit, err)
		}
		p.Barrier()
		stripeBytes[me] = p.Mem().Snapshot(m.Local().Offset, m.PerRank()*(valOff+m.ValueSize()))
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		final.Write(stripeBytes[r])
	}
	return final.Bytes()
}

// TestMapChaosMatrix: the table's converged bytes under every fault plan
// must equal the fault-free run's, byte for byte.
func TestMapChaosMatrix(t *testing.T) {
	plans := chaosPlans()
	want := runMapChaos(t, plans[0].plan)
	if len(want) == 0 {
		t.Fatal("fault-free run produced no stripe bytes")
	}
	for _, tc := range plans[1:] {
		t.Run(tc.name, func(t *testing.T) {
			got := runMapChaos(t, tc.plan)
			if !bytes.Equal(got, want) {
				diffs := 0
				for i := range got {
					if got[i] != want[i] {
						diffs++
					}
				}
				t.Errorf("table diverged under %s: %d/%d bytes differ", tc.name, diffs, len(want))
			}
		})
	}
}

// TestMapRankDeath: a stripe owner dies mid-storm; buddy replication
// rebuilds its stripe onto the spare and clients — armed with
// WithFailover — keep completing and then read back every key they wrote,
// including the ones living on the rebuilt stripe.
func TestMapRankDeath(t *testing.T) {
	const (
		ranks   = 4
		victim  = 1
		keysPer = 12
		rounds  = 30
	)
	plan := &simnet.FaultPlan{
		Seed:      7,
		RankKills: []simnet.RankKill{{Rank: victim, At: vtime.Time(300 * time.Microsecond)}},
	}
	w := newWorld(t, runtime.Config{Ranks: ranks, Spares: 1, Seed: 7, Faults: plan})
	failovers := make([]int64, ranks)
	err := w.Run(func(p *runtime.Proc) {
		s := rma.Open(p, rma.WithReplication())
		if p.IsSpare() {
			// Parked: the buddy replays the victim's regions onto this
			// rank's NIC agent; the process function has nothing to do.
			return
		}
		m, err := Open(s, WithBuckets(64), WithValueSize(8), WithFailover())
		if err != nil {
			t.Errorf("open: %v", err)
			panic("dht rankdeath: open failed")
		}
		me := p.Rank()
		if me == victim {
			// Pure stripe server from here on: its NIC applies and
			// replicates until the kill blackholes it. Returning early
			// keeps the test's surviving clients honest — nobody waits on
			// the victim's process function.
			return
		}
		key := func(i int) int64 { return int64(me*1000 + i) }
		// Write storm spanning the kill: every round overwrites the same
		// keys, so rank death surfaces inside Map operations and failover
		// must retarget mid-traffic.
		for round := 0; round < rounds; round++ {
			for i := 0; i < keysPer; i++ {
				if err := m.Put(key(i), val(m, me+i+round)); err != nil {
					t.Errorf("rank %d round %d put: %v", me, round, err)
					panic("dht rankdeath: put failed")
				}
			}
			p.Advance(vtime.Duration(20 * time.Microsecond))
		}
		// Every key must read back its final round's value — wherever its
		// bucket now lives.
		for i := 0; i < keysPer; i++ {
			got, ok, err := m.Get(key(i))
			if err != nil || !ok || !bytes.Equal(got, val(m, me+i+rounds-1)) {
				t.Errorf("rank %d key %d after death: %v ok=%v err=%v", me, i, got, ok, err)
			}
		}
		failovers[me] = m.Stats().Failovers
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, f := range failovers {
		total += f
	}
	if total == 0 {
		t.Fatal("no client ever failed over; the kill landed outside the workload")
	}
	if w.Net().FaultsBlackholed.Value() == 0 {
		t.Fatal("rank kill blackholed nothing")
	}
}

// TestMapOpenValidation: bad geometry is rejected before any collective
// traffic.
func TestMapOpenValidation(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 1})
	err := w.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		for i, opts := range [][]Option{
			{WithBuckets(0)},
			{WithValueSize(-1)},
			{WithServers(3)},
		} {
			if _, err := Open(s, opts...); !errors.Is(err, rma.ErrBadHandle) {
				t.Errorf("case %d: got %v, want ErrBadHandle", i, err)
			}
		}
		// Wrong value length on a good map.
		m, err := Open(s, WithBuckets(8))
		if err != nil {
			t.Errorf("open: %v", err)
			panic("dht: open failed")
		}
		if err := m.Put(1, make([]byte, m.ValueSize()+1)); !errors.Is(err, rma.ErrType) {
			t.Errorf("oversized value: got %v, want ErrType", err)
		}
		if _, err := m.CAS(1, make([]byte, 1), make([]byte, m.ValueSize())); !errors.Is(err, rma.ErrType) {
			t.Errorf("undersized CAS expect: got %v, want ErrType", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapMetricsRegistered: with session metrics on, the map's counters
// and latency histogram appear under their dotted names.
func TestMapMetricsRegistered(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 2})
	err := w.Run(func(p *runtime.Proc) {
		s := rma.Open(p, rma.WithMetrics())
		m, err := Open(s, WithBuckets(16))
		if err != nil {
			t.Errorf("open: %v", err)
			panic("dht: open failed")
		}
		if err := m.Put(int64(p.Rank()), val(m, 1)); err != nil {
			t.Errorf("put: %v", err)
		}
		if _, _, err := m.Get(int64(p.Rank())); err != nil {
			t.Errorf("get: %v", err)
		}
		reg := s.Metrics()
		if c := reg.Counter("dht.puts"); c == nil || c.Value() == 0 {
			t.Error("dht.puts missing or zero")
		}
		if h := reg.Histogram("latency.dht.request"); h.Count() == 0 {
			t.Error("latency.dht.request recorded nothing")
		}
		for i := 0; i < m.Servers(); i++ {
			if reg.Counter(fmt.Sprintf("dht.contention.stripe.%d", i)) == nil {
				t.Errorf("dht.contention.stripe.%d unregistered", i)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
