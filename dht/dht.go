// Package dht is a distributed hash table built purely on the one-sided
// rma surface — the "serve real traffic" consumer the ROADMAP names, and
// the shape of foMPI's flagship demo: an open-addressing table striped
// across every rank's exposed memory, accessed with Put/Get/CAS and 8-byte
// read-modify-write words, never with messages to the owner's CPU.
//
// Layout. Each of the first Servers() ranks exposes a stripe of PerRank()
// fixed-size buckets; bucket i of the global table lives at stripe
// i/perRank, local slot i%perRank. A bucket is
//
//	[ word int64 | key int64 | value ValueSize bytes ]
//
// where word packs a version counter and a 2-bit state:
//
//	word = version<<2 | state     state: 0 empty, 1 locked, 2 full,
//	                                     3 tombstone
//
// Zeroed memory is an empty table. Keys hash with splitmix64 and probe
// linearly through the global index space, wrapping across stripes, so a
// nearly-full stripe spills onto the next rank instead of failing.
//
// Protocol. Readers issue one blocking Get of the whole bucket: target
// applies are per-operation atomic, so the snapshot is consistent — a
// full word means the value bytes belong to that version, a locked word
// means a writer is mid-update and the reader retries. Writers claim a
// bucket by CompareSwap on the word (empty/tombstone/full -> locked,
// version+1), stream key and value with ordered puts, and unlock by
// putting full with version+2; the ordered unlock cannot overtake the
// value bytes, and one Complete per mutation makes the whole transition
// durable before the call returns. Every successful transition increments
// the version exactly once, so a CompareSwap on a full word at version v
// proves the value bytes are still the ones snapshotted at v — the basis
// of Map.CAS. Retries never touch the word, which keeps converged table
// bytes independent of contention interleavings (the chaos tests compare
// stripes byte-exact against a fault-free run).
//
// All table traffic rides the session it was opened on: batching,
// sharding, events, fault injection, and buddy replication all apply. With
// WithFailover a map whose stripe owner is declared dead (ErrRankFailed)
// waits for the spare rebuild and retries against the successor.
package dht

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/stats"
	"mpi3rma/internal/vtime"
	"mpi3rma/rma"
)

// Bucket word states.
const (
	stateEmpty  = 0
	stateLocked = 1
	stateFull   = 2
	stateTomb   = 3
)

const (
	wordOff = 0 // lock/version word
	keyOff  = 8 // key int64
	valOff  = 16
)

// Defaults for Open.
const (
	DefaultBuckets   = 1024
	DefaultValueSize = 8
)

// ErrTableFull reports a probe that found no claimable bucket within the
// probe budget — the table is (locally) full for that key.
var ErrTableFull = errors.New("dht: no free bucket within the probe budget")

// Option configures Open — the same functional-option shape as rma.Open,
// with the taxonomy trivial because every dht option is collective.
type Option func(*config)

type config struct {
	perRank  int
	valSize  int
	servers  int
	maxProbe int
	failover bool
}

// WithBuckets sets the number of buckets each server rank exposes
// (default DefaultBuckets).
func WithBuckets(perRank int) Option {
	return func(c *config) { c.perRank = perRank }
}

// WithValueSize fixes the value payload per bucket in bytes (default
// DefaultValueSize). Every Put/CAS value must be exactly this long.
func WithValueSize(n int) Option {
	return func(c *config) { c.valSize = n }
}

// WithServers stripes the table over only the first n world ranks;
// the remaining ranks are pure clients (default: every rank serves).
func WithServers(n int) Option {
	return func(c *config) { c.servers = n }
}

// WithMaxProbe bounds the linear probe before an insert fails with
// ErrTableFull (default: the whole table).
func WithMaxProbe(n int) Option {
	return func(c *config) { c.maxProbe = n }
}

// WithFailover makes operations survive a stripe owner's death: on
// ErrRankFailed the map waits for the spare rebuild (AwaitRebuilt),
// retargets the stripe at the successor, and retries. Pair it with
// rma.WithReplication on the session, or the rebuild never comes.
func WithFailover() Option {
	return func(c *config) { c.failover = true }
}

// Stats is a snapshot of one map handle's client-side counters.
type Stats struct {
	Gets, Puts, Deletes, CASes int64 // public operations completed
	Misses                     int64 // Gets that found no key
	ProbeSteps                 int64 // buckets examined beyond the home slot
	LockRetries                int64 // re-reads of a locked bucket
	CASRaces                   int64 // claim CompareSwaps lost to a racer
	Failovers                  int64 // stripe retargets after a rank death
}

// Map is one rank's handle on the global table. A handle is owned by its
// rank's process function and is not safe for concurrent use, matching
// the rest of the rma surface.
type Map struct {
	s       *rma.Session
	p       *runtime.Proc
	order   datatype.ByteOrder
	stripes []rma.TargetMem
	local   rma.Region // this rank's stripe (zero Region on pure clients)

	perRank  int
	valSize  int
	bucketSz int
	total    int
	maxProbe int
	failover bool

	buf  rma.Region // bucket-sized scratch: snapshot gets
	kv   rma.Region // key+value scratch: insert payload
	word rma.Region // 8-byte scratch: unlock puts

	gets, puts, deletes, cases        stats.Counter
	misses                            stats.Counter
	probeSteps, lockRetries, casRaces stats.Counter
	failovers                         stats.Counter
	contention                        []stats.Counter // per stripe: lock retries + lost claims
	lat                               *stats.Histogram
}

// Open builds a map handle collectively: every compute rank of the world
// must call it with the same options. Each of the first Servers ranks
// exposes perRank buckets; every rank (server or client) receives the
// stripe descriptors and can operate on the table immediately. The zeroed
// fresh memory is the empty table — no initialization traffic.
func Open(s *rma.Session, opts ...Option) (*Map, error) {
	p := s.Proc()
	cfg := config{
		perRank: DefaultBuckets,
		valSize: DefaultValueSize,
		servers: p.Size(),
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.perRank <= 0 || cfg.valSize <= 0 {
		return nil, fmt.Errorf("dht: buckets and value size must be positive (got %d, %d): %w", cfg.perRank, cfg.valSize, rma.ErrBadHandle)
	}
	if cfg.servers <= 0 || cfg.servers > p.Size() {
		return nil, fmt.Errorf("dht: %d servers in a %d-rank world: %w", cfg.servers, p.Size(), rma.ErrBadHandle)
	}
	bucketSz := valOff + cfg.valSize
	total := cfg.servers * cfg.perRank
	if cfg.maxProbe <= 0 || cfg.maxProbe > total {
		cfg.maxProbe = total
	}

	// Collective allocation: uniform size keeps the exchange symmetric;
	// only the first Servers stripes are ever addressed.
	tms, local, err := s.ExposeCollective(cfg.perRank * bucketSz)
	if err != nil {
		return nil, err
	}
	m := &Map{
		s:          s,
		p:          p,
		order:      p.ByteOrder(),
		stripes:    tms[:cfg.servers],
		local:      local,
		perRank:    cfg.perRank,
		valSize:    cfg.valSize,
		bucketSz:   bucketSz,
		total:      total,
		maxProbe:   cfg.maxProbe,
		failover:   cfg.failover,
		buf:        p.Alloc(bucketSz),
		kv:         p.Alloc(8 + cfg.valSize),
		word:       p.Alloc(8),
		contention: make([]stats.Counter, cfg.servers),
		lat:        new(stats.Histogram),
	}
	m.registerMetrics()
	return m, nil
}

// registerMetrics aliases the map's live counters into the session's
// telemetry registry when one is enabled. Duplicate names (a second map
// on the rank) keep their own cells unregistered — the handle accessors
// still see them.
func (m *Map) registerMetrics() {
	reg := m.s.Engine().Metrics()
	if reg == nil {
		return
	}
	_ = reg.Register("dht.gets", &m.gets)
	_ = reg.Register("dht.puts", &m.puts)
	_ = reg.Register("dht.deletes", &m.deletes)
	_ = reg.Register("dht.cas", &m.cases)
	_ = reg.Register("dht.misses", &m.misses)
	_ = reg.Register("dht.probe_steps", &m.probeSteps)
	_ = reg.Register("dht.lock_retries", &m.lockRetries)
	_ = reg.Register("dht.cas_races", &m.casRaces)
	_ = reg.Register("dht.failovers", &m.failovers)
	for i := range m.contention {
		_ = reg.Register(fmt.Sprintf("dht.contention.stripe.%d", i), &m.contention[i])
	}
	_ = reg.RegisterHistogram("latency.dht.request", m.lat)
}

// Stripes returns the live stripe descriptors, one per server rank.
// They are the table's raw memory: going around the bucket protocol with
// Session.Put/Get on them corrupts lock words (rmalint's dhtraw rule
// flags exactly that). Legitimate uses read converged state — the chaos
// tests fetch whole stripes for byte-exact comparison.
func (m *Map) Stripes() []rma.TargetMem {
	return m.stripes
}

// Local returns this rank's own stripe region (a zero Region on ranks
// beyond the server count).
func (m *Map) Local() rma.Region { return m.local }

// Servers returns the number of ranks the table is striped over.
func (m *Map) Servers() int { return len(m.stripes) }

// PerRank returns the buckets per server stripe.
func (m *Map) PerRank() int { return m.perRank }

// ValueSize returns the fixed value payload length.
func (m *Map) ValueSize() int { return m.valSize }

// Stats snapshots the handle's client-side counters.
func (m *Map) Stats() Stats {
	return Stats{
		Gets: m.gets.Value(), Puts: m.puts.Value(),
		Deletes: m.deletes.Value(), CASes: m.cases.Value(),
		Misses:     m.misses.Value(),
		ProbeSteps: m.probeSteps.Value(), LockRetries: m.lockRetries.Value(),
		CASRaces: m.casRaces.Value(), Failovers: m.failovers.Value(),
	}
}

// StripeContention returns this handle's per-stripe contention counts
// (lock retries plus lost bucket claims, attributed to the stripe they
// happened on).
func (m *Map) StripeContention() []int64 {
	out := make([]int64, len(m.contention))
	for i := range m.contention {
		out[i] = m.contention[i].Value()
	}
	return out
}

// Latency returns the handle's request-latency histogram (virtual-time
// nanoseconds per public operation). The same histogram is registered as
// latency.dht.request when the session has metrics enabled.
func (m *Map) Latency() *stats.Histogram { return m.lat }

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64->64 hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (m *Map) home(key int64) int {
	return int(splitmix64(uint64(key)) % uint64(m.total))
}

// locate maps a global bucket index to (stripe, byte offset).
func (m *Map) locate(idx int) (int, int) {
	return idx / m.perRank, (idx % m.perRank) * m.bucketSz
}

func (m *Map) enc64(b []byte, v uint64) {
	if m.order == datatype.BigEndian {
		binary.BigEndian.PutUint64(b, v)
	} else {
		binary.LittleEndian.PutUint64(b, v)
	}
}

func (m *Map) dec64(b []byte) uint64 {
	if m.order == datatype.BigEndian {
		return binary.BigEndian.Uint64(b)
	}
	return binary.LittleEndian.Uint64(b)
}

func pack(version int64, state int64) int64 { return version<<2 | state }
func wordState(w int64) int64               { return w & 3 }
func wordVersion(w int64) int64             { return w >> 2 }

// failing wraps one remote primitive with the failover retry: when the
// stripe owner is declared dead and failover is armed, wait for the spare
// rebuild, retarget the stripe, and run the primitive once more. It
// reports whether that retry ran — CompareSwap callers need to know,
// because the first attempt may have been applied and replicated before
// the response was lost.
func (m *Map) failing(sr int, f func() error) (retried bool, err error) {
	err = f()
	if err == nil || !m.failover || !errors.Is(err, rma.ErrRankFailed) {
		return false, err
	}
	succ, rerr := m.s.AwaitRebuilt(m.stripes[sr].Owner)
	if rerr != nil {
		return false, err
	}
	m.stripes[sr].Owner = succ
	m.failovers.Inc()
	return true, f()
}

// snapshot reads bucket (sr, off) in one blocking Get: word, key and
// value land atomically with respect to target-side applies.
func (m *Map) snapshot(sr, off int) (word, key int64, err error) {
	_, err = m.failing(sr, func() error {
		_, e := m.s.Get(m.buf, m.bucketSz, rma.Byte, m.stripes[sr], off, rma.WithBlocking())
		return e
	})
	if err != nil {
		return 0, 0, err
	}
	raw := m.p.ReadLocal(m.buf, 0, valOff)
	return int64(m.dec64(raw[wordOff:])), int64(m.dec64(raw[keyOff:])), nil
}

// claim CompareSwaps the bucket word from observed to locked(version+1),
// reporting whether this handle now holds the claim. After a failover
// retry, finding the locked word already installed also counts: the first
// attempt reached the dying owner and was replicated before the response
// was lost — treating it as a lost race would leave the claimer spinning
// forever on its own lock. (A racer's identical claim in that window is
// indistinguishable; recovery stays sound because each key has a single
// writer while a stripe fails over, which the tests and E16 arrange.)
func (m *Map) claim(sr, off int, observed int64) (claimed bool, err error) {
	locked := pack(wordVersion(observed)+1, stateLocked)
	var old int64
	retried, err := m.failing(sr, func() error {
		var e error
		old, e = m.s.CompareSwap(m.stripes[sr], off+wordOff, observed, locked)
		return e
	})
	if err != nil {
		return false, err
	}
	return old == observed || (retried && old == locked), nil
}

// finish streams the payload puts of a mutation and unlocks the bucket.
// The puts carry Ordering so the unlock word can never overtake the
// value bytes, and the single Complete makes the transition durable (with
// replication: buddy-acknowledged) before returning.
func (m *Map) finish(sr, off int, payload rma.Region, n, payloadOff int, unlock int64) error {
	_, err := m.failing(sr, func() error {
		if n > 0 {
			if _, err := m.s.Put(payload, n, rma.Byte, m.stripes[sr], off+payloadOff,
				rma.WithOrdering(), rma.WithNotify()); err != nil {
				return err
			}
		}
		wb := make([]byte, 8)
		m.enc64(wb, uint64(unlock))
		m.p.WriteLocal(m.word, 0, wb)
		if _, err := m.s.Put(m.word, 8, rma.Byte, m.stripes[sr], off+wordOff,
			rma.WithOrdering(), rma.WithNotify()); err != nil {
			return err
		}
		return m.s.Complete(m.stripes[sr].Owner)
	})
	return err
}

// backoff yields a little virtual time before re-reading a contended
// bucket, so retry storms cost model time instead of spinning for free.
func (m *Map) backoff(attempt int) {
	d := vtime.Duration(50 * (1 << min(attempt, 6)))
	m.p.Advance(d)
}

func (m *Map) observe(start vtime.Time) {
	m.lat.Observe(int64(m.p.Now() - start))
}

// Get returns the value stored under key, or ok=false when absent.
func (m *Map) Get(key int64) ([]byte, bool, error) {
	start := m.p.Now()
	defer m.observe(start)
	m.gets.Inc()
	h := m.home(key)
	for i := 0; i < m.maxProbe; i++ {
		idx := (h + i) % m.total
		sr, off := m.locate(idx)
		if i > 0 {
			m.probeSteps.Inc()
		}
		for attempt := 0; ; attempt++ {
			w, k, err := m.snapshot(sr, off)
			if err != nil {
				return nil, false, err
			}
			switch wordState(w) {
			case stateEmpty:
				// The chain terminator: the key is nowhere.
				m.misses.Inc()
				return nil, false, nil
			case stateLocked:
				m.lockRetries.Inc()
				m.contention[sr].Inc()
				m.backoff(attempt)
				continue
			case stateFull:
				if k == key {
					val := append([]byte(nil), m.p.ReadLocal(m.buf, valOff, m.valSize)...)
					return val, true, nil
				}
			}
			break // full with another key, or tombstone: probe on
		}
	}
	m.misses.Inc()
	return nil, false, nil
}

// Put stores value (exactly ValueSize bytes) under key, inserting or
// overwriting.
func (m *Map) Put(key int64, value []byte) error {
	if len(value) != m.valSize {
		return fmt.Errorf("dht: value is %d bytes, table stores %d: %w", len(value), m.valSize, rma.ErrType)
	}
	start := m.p.Now()
	defer m.observe(start)
	m.puts.Inc()
	for {
		done, err := m.tryPut(key, value)
		if err != nil || done {
			return err
		}
		// Lost the claim race: restart the probe from the home slot — the
		// winner may have been inserting the same key.
	}
}

// tryPut runs one probe-and-claim pass. done=false means a lost race and
// the caller restarts.
func (m *Map) tryPut(key int64, value []byte) (done bool, err error) {
	h := m.home(key)
	firstFree := -1 // earliest reusable (tombstone) slot seen on the way
	for i := 0; i < m.maxProbe; i++ {
		idx := (h + i) % m.total
		sr, off := m.locate(idx)
		if i > 0 {
			m.probeSteps.Inc()
		}
		for attempt := 0; ; attempt++ {
			w, k, err := m.snapshot(sr, off)
			if err != nil {
				return false, err
			}
			switch wordState(w) {
			case stateLocked:
				m.lockRetries.Inc()
				m.contention[sr].Inc()
				m.backoff(attempt)
				continue
			case stateFull:
				if k != key {
					// occupied by another key: probe on
				} else {
					// Update in place: full(v) -> locked(v+1) -> full(v+2).
					claimed, err := m.claim(sr, off, w)
					if err != nil {
						return false, err
					}
					if !claimed {
						m.casRaces.Inc()
						m.contention[sr].Inc()
						return false, nil
					}
					m.p.WriteLocal(m.kv, 0, value)
					return true, m.finish(sr, off, m.kv, m.valSize, valOff, pack(wordVersion(w)+2, stateFull))
				}
			case stateTomb:
				if firstFree < 0 {
					firstFree = idx
				}
			case stateEmpty:
				// Chain terminator: the key is absent. Insert at the
				// earliest tombstone if one was passed, else here.
				at := idx
				if firstFree >= 0 {
					at = firstFree
				}
				return m.insertAt(at, key, value)
			}
			break
		}
	}
	if firstFree >= 0 {
		return m.insertAt(firstFree, key, value)
	}
	return true, fmt.Errorf("dht: put %d: %w", key, ErrTableFull)
}

// insertAt claims the (empty or tombstone) bucket at idx and writes
// key+value. done=false on a lost race.
func (m *Map) insertAt(idx int, key int64, value []byte) (done bool, err error) {
	sr, off := m.locate(idx)
	for attempt := 0; ; attempt++ {
		w, _, err := m.snapshot(sr, off)
		if err != nil {
			return false, err
		}
		st := wordState(w)
		if st == stateLocked {
			m.lockRetries.Inc()
			m.contention[sr].Inc()
			m.backoff(attempt)
			continue
		}
		if st == stateFull {
			// A racer filled our slot (possibly with our key): restart.
			m.casRaces.Inc()
			m.contention[sr].Inc()
			return false, nil
		}
		claimed, err := m.claim(sr, off, w)
		if err != nil {
			return false, err
		}
		if !claimed {
			m.casRaces.Inc()
			m.contention[sr].Inc()
			return false, nil
		}
		kb := make([]byte, 8+m.valSize)
		m.enc64(kb[:8], uint64(key))
		copy(kb[8:], value)
		m.p.WriteLocal(m.kv, 0, kb)
		return true, m.finish(sr, off, m.kv, 8+m.valSize, keyOff, pack(wordVersion(w)+2, stateFull))
	}
}

// Delete removes key, reporting whether it was present. The bucket
// becomes a tombstone: probe chains through it stay intact.
func (m *Map) Delete(key int64) (bool, error) {
	start := m.p.Now()
	defer m.observe(start)
	m.deletes.Inc()
	h := m.home(key)
	for i := 0; i < m.maxProbe; i++ {
		idx := (h + i) % m.total
		sr, off := m.locate(idx)
		if i > 0 {
			m.probeSteps.Inc()
		}
		for attempt := 0; ; attempt++ {
			w, k, err := m.snapshot(sr, off)
			if err != nil {
				return false, err
			}
			switch wordState(w) {
			case stateEmpty:
				return false, nil
			case stateLocked:
				m.lockRetries.Inc()
				m.contention[sr].Inc()
				m.backoff(attempt)
				continue
			case stateFull:
				if k == key {
					// One transition: full(v) -> tombstone(v+1), no lock
					// phase — the key and value bytes stay behind but are
					// unreachable, and any concurrent CAS on version v
					// correctly fails.
					hit, err := m.tombstone(sr, off, w)
					if err != nil {
						return false, err
					}
					if !hit {
						// Lost to a concurrent writer: re-examine.
						m.casRaces.Inc()
						m.contention[sr].Inc()
						m.backoff(attempt)
						continue
					}
					return true, nil
				}
			}
			break
		}
	}
	return false, nil
}

// tombstone CompareSwaps full(v) -> tombstone(v+1) directly, reporting
// whether the transition landed. Like claim, a failover retry that finds
// the tombstone already installed owns it — the first attempt was
// replicated before the response was lost.
func (m *Map) tombstone(sr, off int, observed int64) (bool, error) {
	tomb := pack(wordVersion(observed)+1, stateTomb)
	var old int64
	retried, err := m.failing(sr, func() error {
		var e error
		old, e = m.s.CompareSwap(m.stripes[sr], off+wordOff, observed, tomb)
		return e
	})
	if err != nil {
		return false, err
	}
	return old == observed || (retried && old == tomb), nil
}

// CAS atomically replaces the value under key with newVal iff the current
// value equals expect (both exactly ValueSize bytes). It returns whether
// the swap happened; (false, nil) also covers an absent key.
func (m *Map) CAS(key int64, expect, newVal []byte) (bool, error) {
	if len(expect) != m.valSize || len(newVal) != m.valSize {
		return false, fmt.Errorf("dht: CAS values are %d/%d bytes, table stores %d: %w", len(expect), len(newVal), m.valSize, rma.ErrType)
	}
	start := m.p.Now()
	defer m.observe(start)
	m.cases.Inc()
	h := m.home(key)
	for i := 0; i < m.maxProbe; i++ {
		idx := (h + i) % m.total
		sr, off := m.locate(idx)
		if i > 0 {
			m.probeSteps.Inc()
		}
		for attempt := 0; ; attempt++ {
			w, k, err := m.snapshot(sr, off)
			if err != nil {
				return false, err
			}
			switch wordState(w) {
			case stateEmpty:
				return false, nil
			case stateLocked:
				m.lockRetries.Inc()
				m.contention[sr].Inc()
				m.backoff(attempt)
				continue
			case stateFull:
				if k != key {
					break
				}
				cur := m.p.ReadLocal(m.buf, valOff, m.valSize)
				if !bytesEqual(cur, expect) {
					return false, nil
				}
				// The claim succeeding at version v proves the snapshot
				// (taken at v) is still the live value: every transition
				// bumps the version.
				claimed, err := m.claim(sr, off, w)
				if err != nil {
					return false, err
				}
				if !claimed {
					m.casRaces.Inc()
					m.contention[sr].Inc()
					m.backoff(attempt)
					continue
				}
				m.p.WriteLocal(m.kv, 0, newVal)
				if err := m.finish(sr, off, m.kv, m.valSize, valOff, pack(wordVersion(w)+2, stateFull)); err != nil {
					return false, err
				}
				return true, nil
			}
			break
		}
	}
	return false, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
