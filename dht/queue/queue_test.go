package queue

import (
	"bytes"
	"errors"
	"testing"

	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

func newWorld(t *testing.T, cfg runtime.Config) *runtime.World {
	t.Helper()
	w := runtime.NewWorld(cfg)
	t.Cleanup(w.Close)
	return w
}

// payload stamps a producer rank and an item number into a fixed-size
// slot so the receiving side can prove provenance and completeness.
func payload(size, rank, item int) []byte {
	b := make([]byte, size)
	b[0] = byte(rank)
	b[1] = byte(item)
	b[2] = byte(item >> 8)
	for i := 3; i < size; i++ {
		b[i] = byte(rank + item + i)
	}
	return b
}

// TestQueueSPSC: one producer, one consumer, more items than slots. The
// consumer must receive every item in strict FIFO order — and, with the
// queue wrapping several laps, slot reuse must never alias items.
func TestQueueSPSC(t *testing.T) {
	const items, slots, slotSize = 40, 4, 16
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 13})
	err := w.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		q, err := New(s, 0, slots, slotSize)
		if err != nil {
			t.Errorf("new: %v", err)
			panic("queue: new failed")
		}
		switch p.Rank() {
		case 1: // producer
			for i := 0; i < items; i++ {
				if err := q.Enqueue(payload(slotSize, 1, i)); err != nil {
					t.Errorf("enqueue %d: %v", i, err)
					panic("queue: enqueue failed")
				}
			}
			if st := q.Stats(); st.Enqueues != items {
				t.Errorf("producer stats: %+v", st)
			}
		case 0: // consumer
			for i := 0; i < items; i++ {
				got, err := q.Dequeue()
				if err != nil {
					t.Errorf("dequeue %d: %v", i, err)
					panic("queue: dequeue failed")
				}
				if !bytes.Equal(got, payload(slotSize, 1, i)) {
					t.Errorf("item %d out of order or torn: %x", i, got)
				}
			}
			if st := q.Stats(); st.Dequeues != items {
				t.Errorf("consumer stats: %+v", st)
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQueueMPMC: two producers and two consumers over a queue owned by a
// rank that runs no queue code after New. Every produced item must be
// consumed exactly once (multiset equality), with a slot count small
// enough to force wraps and producer backpressure.
func TestQueueMPMC(t *testing.T) {
	const (
		ranks    = 5 // rank 0 owns the queue and idles; 1,2 produce; 3,4 consume
		perProd  = 30
		slots    = 4
		slotSize = 8
	)
	consumed := make([][][]byte, ranks)
	w := newWorld(t, runtime.Config{Ranks: ranks, Seed: 17})
	err := w.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		q, err := New(s, 0, slots, slotSize)
		if err != nil {
			t.Errorf("new: %v", err)
			panic("queue: new failed")
		}
		me := p.Rank()
		switch me {
		case 1, 2:
			for i := 0; i < perProd; i++ {
				if err := q.Enqueue(payload(slotSize, me, i)); err != nil {
					t.Errorf("rank %d enqueue %d: %v", me, i, err)
					panic("queue: enqueue failed")
				}
			}
		case 3, 4:
			for i := 0; i < perProd; i++ {
				got, err := q.Dequeue()
				if err != nil {
					t.Errorf("rank %d dequeue %d: %v", me, i, err)
					panic("queue: dequeue failed")
				}
				consumed[me] = append(consumed[me], got)
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]int)
	for _, prod := range []int{1, 2} {
		for i := 0; i < perProd; i++ {
			want[string(payload(slotSize, prod, i))]++
		}
	}
	got := make(map[string]int)
	total := 0
	for _, items := range consumed {
		for _, it := range items {
			got[string(it)]++
			total++
		}
	}
	if total != 2*perProd {
		t.Fatalf("consumed %d items, want %d", total, 2*perProd)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("item %x consumed %d times, want %d", k, got[k], n)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("phantom item %x consumed", k)
		}
	}
}

// TestQueueCredits: with the credit fast path on and a producer far ahead
// of a slow consumer, consumers must broadcast watermark grants. FIFO
// still holds — credits change only how producers wait, not the slot
// handoff.
func TestQueueCredits(t *testing.T) {
	const items, slots, slotSize = 32, 4, 8
	grants := make([]int64, 2)
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 19})
	err := w.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		q, err := New(s, 0, slots, slotSize, WithCredits(2))
		if err != nil {
			t.Errorf("new: %v", err)
			panic("queue: new failed")
		}
		switch p.Rank() {
		case 1:
			for i := 0; i < items; i++ {
				if err := q.Enqueue(payload(slotSize, 1, i)); err != nil {
					t.Errorf("enqueue %d: %v", i, err)
					panic("queue: enqueue failed")
				}
			}
		case 0:
			for i := 0; i < items; i++ {
				got, err := q.Dequeue()
				if err != nil {
					t.Errorf("dequeue %d: %v", i, err)
					panic("queue: dequeue failed")
				}
				if !bytes.Equal(got, payload(slotSize, 1, i)) {
					t.Errorf("item %d out of order with credits on: %x", i, got)
				}
			}
			grants[0] = q.Stats().CreditGrants
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if grants[0] == 0 {
		t.Fatal("consumer never granted credits despite WithCredits(2)")
	}
}

// TestQueueValidation: bad geometry and payload sizes are rejected with
// the rma sentinels.
func TestQueueValidation(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 23})
	err := w.Run(func(p *runtime.Proc) {
		s := rma.Open(p)
		if _, err := New(s, 2, 4, 8); !errors.Is(err, rma.ErrBadHandle) {
			t.Errorf("owner out of range: got %v, want ErrBadHandle", err)
		}
		if _, err := New(s, 0, 0, 8); !errors.Is(err, rma.ErrBadHandle) {
			t.Errorf("zero slots: got %v, want ErrBadHandle", err)
		}
		q, err := New(s, 0, 4, 8)
		if err != nil {
			t.Errorf("new: %v", err)
			panic("queue: new failed")
		}
		if err := q.Enqueue(make([]byte, 7)); !errors.Is(err, rma.ErrType) {
			t.Errorf("short payload: got %v, want ErrType", err)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
