// Package queue is a global MPMC task queue on one-sided RMA: any rank
// enqueues, any rank dequeues, and the queue's owner rank never runs a
// line of queue code — claims ride fetch-and-add tickets, slot handoff
// rides per-slot sequence words (the Vyukov bounded-queue discipline
// lifted onto RMA), and backpressure optionally rides the streampipe
// credit pattern.
//
// Layout, all on the owner's exposed region:
//
//	off 0   tail ticket   (FetchAdd by producers)
//	off 8   head ticket   (FetchAdd by consumers)
//	off 16  consumed      (FetchAdd by consumers after freeing a slot)
//	off 24  credit cell   (on EVERY rank's region: consumers push the
//	                       consumed watermark here with Accumulate(Max))
//	off 32  slots[i] = [ seq int64 | payload SlotSize bytes ]
//
// A producer claims ticket t, waits for its slot's sequence word to reach
// t (slot free for this lap), streams the payload and seq=t+1 with
// ordered puts, and completes. A consumer claims ticket h, waits for
// seq==h+1 (item published), reads the payload with one blocking Get,
// marks the slot free for the next lap with seq=h+slots, completes, and
// bumps the shared consumed counter. Sequence words are monotone per
// slot, so a late or reordered frame can never alias a lap.
//
// Waiting is remote polling of the sequence word with exponential
// virtual-time backoff — deterministic, since every poll is serialized at
// the target in virtual time. WithCredits adds the streampipe-style fast
// path: consumers Accumulate(Max) the consumed watermark into every
// rank's credit cell every few dequeues, and a stalled producer spins on
// its LOCAL cell (one memory read) until the watermark proves space,
// touching the wire only to confirm. That trades the determinism of the
// pure polling path for less remote traffic under sustained overload,
// which is why it is opt-in.
package queue

import (
	"encoding/binary"
	"fmt"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/stats"
	"mpi3rma/internal/vtime"
	"mpi3rma/rma"
)

const (
	tailOff     = 0
	headOff     = 8
	consumedOff = 16
	creditOff   = 24
	slotsOff    = 32
)

// Stats is a snapshot of one queue handle's client-side counters.
type Stats struct {
	Enqueues, Dequeues int64
	ProducerPolls      int64 // remote seq polls while waiting for a free slot
	ConsumerPolls      int64 // remote seq polls while waiting for an item
	CreditGrants       int64 // Accumulate(Max) broadcasts of the consumed watermark
	CreditFastPath     int64 // stalls resolved by the local credit cell alone
}

// Option configures New.
type Option func(*config)

type config struct {
	creditEvery int
}

// WithCredits enables the credit-cell fast path: every `every` dequeues a
// consumer broadcasts the consumed watermark into all ranks' credit
// cells, and stalled producers spin locally on their own cell before
// touching the wire. Trades virtual-time determinism for less remote
// polling under overload.
func WithCredits(every int) Option {
	return func(c *config) {
		if every < 1 {
			every = 1
		}
		c.creditEvery = every
	}
}

// Queue is one rank's handle. Like the rest of the rma surface a handle
// belongs to its rank's process function and is not safe for concurrent
// use.
type Queue struct {
	s     *rma.Session
	p     *runtime.Proc
	order datatype.ByteOrder

	owner    rma.TargetMem   // the owner rank's region: tickets + slots
	cells    []rma.TargetMem // every rank's region: credit cells
	local    rma.Region      // this rank's own region (local credit reads)
	slots    int
	slotSize int
	stride   int // 8 + slotSize
	credits  int // grant period; 0 = credits off

	buf  rma.Region // slot-sized scratch: payload put / get
	word rma.Region // 8-byte scratch: seq puts and credit grants

	enqueues, dequeues      stats.Counter
	producerPolls           stats.Counter
	consumerPolls           stats.Counter
	creditGrants, fastPaths stats.Counter
}

// New builds a queue handle collectively: every compute rank calls it
// with the same owner, slots, and slotSize. The owner's region holds the
// tickets and the slot array; every rank's region holds a credit cell.
// The owner pre-seeds the slot sequence words (seq[i] = i) before the
// barrier that makes the queue usable.
func New(s *rma.Session, owner, slots, slotSize int, opts ...Option) (*Queue, error) {
	p := s.Proc()
	if owner < 0 || owner >= p.Size() {
		return nil, fmt.Errorf("queue: owner rank %d out of range [0,%d): %w", owner, p.Size(), rma.ErrBadHandle)
	}
	if slots <= 0 || slotSize <= 0 {
		return nil, fmt.Errorf("queue: slots and slot size must be positive (got %d, %d): %w", slots, slotSize, rma.ErrBadHandle)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	stride := 8 + slotSize
	tms, local, err := s.ExposeCollective(slotsOff + slots*stride)
	if err != nil {
		return nil, err
	}
	q := &Queue{
		s:        s,
		p:        p,
		order:    p.ByteOrder(),
		owner:    tms[owner],
		cells:    tms,
		local:    local,
		slots:    slots,
		slotSize: slotSize,
		stride:   stride,
		credits:  cfg.creditEvery,
		buf:      p.Alloc(slotSize),
		word:     p.Alloc(8),
	}
	if p.Rank() == owner {
		// Seed seq[i] = i: lap 0 producers find their slots free without
		// any traffic. Local writes, before anyone can race them.
		b := make([]byte, 8)
		for i := 0; i < slots; i++ {
			q.enc64(b, uint64(i))
			p.WriteLocal(local, slotsOff+i*stride, b)
		}
	}
	p.Barrier()
	q.registerMetrics()
	return q, nil
}

func (q *Queue) registerMetrics() {
	reg := q.s.Engine().Metrics()
	if reg == nil {
		return
	}
	_ = reg.Register("queue.enqueues", &q.enqueues)
	_ = reg.Register("queue.dequeues", &q.dequeues)
	_ = reg.Register("queue.producer_polls", &q.producerPolls)
	_ = reg.Register("queue.consumer_polls", &q.consumerPolls)
	_ = reg.Register("queue.credit_grants", &q.creditGrants)
	_ = reg.Register("queue.credit_fastpath", &q.fastPaths)
}

// Mem returns the owner-region descriptor the queue protocol runs on —
// raw Session access to it bypasses the ticket discipline (rmalint's
// dhtraw rule flags that).
func (q *Queue) Mem() rma.TargetMem { return q.owner }

// Slots returns the queue capacity.
func (q *Queue) Slots() int { return q.slots }

// SlotSize returns the fixed payload length.
func (q *Queue) SlotSize() int { return q.slotSize }

// Stats snapshots the handle's client-side counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Enqueues: q.enqueues.Value(), Dequeues: q.dequeues.Value(),
		ProducerPolls: q.producerPolls.Value(), ConsumerPolls: q.consumerPolls.Value(),
		CreditGrants: q.creditGrants.Value(), CreditFastPath: q.fastPaths.Value(),
	}
}

func (q *Queue) enc64(b []byte, v uint64) {
	if q.order == datatype.BigEndian {
		binary.BigEndian.PutUint64(b, v)
	} else {
		binary.LittleEndian.PutUint64(b, v)
	}
}

func (q *Queue) dec64(b []byte) uint64 {
	if q.order == datatype.BigEndian {
		return binary.BigEndian.Uint64(b)
	}
	return binary.LittleEndian.Uint64(b)
}

func (q *Queue) slotOff(ticket int64) int {
	return slotsOff + int(ticket%int64(q.slots))*q.stride
}

// backoff advances virtual time exponentially between polls, capped at
// about one network round trip. Polls serialize at the owner with the
// very puts they await, so the number of polls per handoff is set by the
// protocol, not the backoff — backing off past the RTT only coarsens the
// wait granularity and inflates modelled latency without saving a single
// remote operation (measured: polls/item is flat from 100ns to 800us
// caps, while modelled drain time scales with the cap).
func (q *Queue) backoff(attempt int) {
	d := vtime.Duration(100 * (1 << min(attempt, 4)))
	q.p.Advance(d)
}

// Enqueue publishes payload (exactly SlotSize bytes). It blocks while the
// queue is full — credit-based when WithCredits is on, by polling the
// slot's sequence word otherwise.
func (q *Queue) Enqueue(payload []byte) error {
	if len(payload) != q.slotSize {
		return fmt.Errorf("queue: payload is %d bytes, slots hold %d: %w", len(payload), q.slotSize, rma.ErrType)
	}
	t, err := q.s.FetchAdd(q.owner, tailOff, 1)
	if err != nil {
		return err
	}
	off := q.slotOff(t)

	if q.credits > 0 && t >= int64(q.slots) {
		// Credit fast path: our local cell carries a monotone lower bound
		// on the consumed watermark. consumed > t-slots proves slot
		// t-slots was freed, and the freeing consumer's seq put was
		// completed before the consumed bump, so no wire confirmation is
		// needed.
		fast := false
		for attempt := 0; ; attempt++ {
			credit := int64(q.dec64(q.p.ReadLocal(q.local, creditOff, 8)))
			if t-credit < int64(q.slots) {
				fast = attempt > 0
				break
			}
			if attempt >= 32 {
				break // stop burning local spins; confirm over the wire
			}
			q.backoff(attempt)
		}
		if fast {
			q.fastPaths.Inc()
		}
	}
	// Authoritative wait: the slot's sequence word reaches t exactly when
	// the previous lap's consumer freed it (seed: seq[i]=i for lap 0).
	for attempt := 0; ; attempt++ {
		seq, err := q.s.FetchWord(q.owner, off)
		if err != nil {
			return err
		}
		if seq == t {
			break
		}
		q.producerPolls.Inc()
		q.backoff(attempt)
	}

	q.p.WriteLocal(q.buf, 0, payload)
	if _, err := q.s.Put(q.buf, q.slotSize, rma.Byte, q.owner, off+8,
		rma.WithOrdering(), rma.WithNotify()); err != nil {
		return err
	}
	// seq=t+1 publishes the item; Ordering keeps it behind the payload.
	b := make([]byte, 8)
	q.enc64(b, uint64(t+1))
	q.p.WriteLocal(q.word, 0, b)
	if _, err := q.s.Put(q.word, 8, rma.Byte, q.owner, off,
		rma.WithOrdering(), rma.WithNotify()); err != nil {
		return err
	}
	if err := q.s.Complete(q.owner.Owner); err != nil {
		return err
	}
	q.enqueues.Inc()
	return nil
}

// Dequeue claims the next item and blocks until it is published,
// returning its payload. Claims are tickets: with fewer items than
// waiting consumers, the surplus consumers block until matching items
// arrive.
func (q *Queue) Dequeue() ([]byte, error) {
	h, err := q.s.FetchAdd(q.owner, headOff, 1)
	if err != nil {
		return nil, err
	}
	off := q.slotOff(h)

	// Wait for the producer's publication: seq words are monotone per
	// slot, and only ticket h's producer ever writes h+1.
	for attempt := 0; ; attempt++ {
		seq, err := q.s.FetchWord(q.owner, off)
		if err != nil {
			return nil, err
		}
		if seq == h+1 {
			break
		}
		q.consumerPolls.Inc()
		q.backoff(attempt)
	}

	if _, err := q.s.Get(q.buf, q.slotSize, rma.Byte, q.owner, off+8, rma.WithBlocking()); err != nil {
		return nil, err
	}
	payload := append([]byte(nil), q.p.ReadLocal(q.buf, 0, q.slotSize)...)

	// Free the slot for the next lap (seq = h+slots), then advance the
	// consumed watermark. The Complete between them guarantees any
	// producer that observes the new watermark finds the seq already
	// applied.
	b := make([]byte, 8)
	q.enc64(b, uint64(h+int64(q.slots)))
	q.p.WriteLocal(q.word, 0, b)
	if _, err := q.s.Put(q.word, 8, rma.Byte, q.owner, off, rma.WithNotify()); err != nil {
		return nil, err
	}
	if err := q.s.Complete(q.owner.Owner); err != nil {
		return nil, err
	}
	c, err := q.s.FetchAdd(q.owner, consumedOff, 1)
	if err != nil {
		return nil, err
	}
	q.dequeues.Inc()

	if q.credits > 0 && (c+1)%int64(q.credits) == 0 {
		if err := q.grantCredits(c + 1); err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// grantCredits broadcasts the consumed watermark into every rank's credit
// cell. Accumulate(Max) makes grants from racing consumers commute: cells
// only ever move forward.
func (q *Queue) grantCredits(watermark int64) error {
	b := make([]byte, 8)
	q.enc64(b, uint64(watermark))
	q.p.WriteLocal(q.word, 0, b)
	for _, cell := range q.cells {
		if _, err := q.s.Accumulate(rma.Max, q.word, 1, rma.Int64, cell, creditOff,
			rma.WithAtomic(), rma.WithNotify()); err != nil {
			return err
		}
	}
	if err := q.s.Complete(); err != nil {
		return err
	}
	q.creditGrants.Inc()
	return nil
}
