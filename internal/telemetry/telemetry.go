// Package telemetry is the unified observability layer: a per-engine (and
// therefore per-session) metrics registry that consolidates the stack's
// stats counters and histograms under stable dotted names, plus span-style
// export of the protocol trace (see trace.go in this package).
//
// The registry does not own most of its counters: protocol layers register
// pointers to the live stats.Counter fields they already increment
// (ops.issued aliases Engine.OpsIssued, nic.msgs aliases NIC.Delivered,
// ...), so enabling telemetry adds no accounting on the hot path — the
// counters were always there; the registry only names them. Histograms are
// registry-owned and observed only when a registry is installed.
//
// Naming scheme: `<subsystem>.<metric>`, lowercase, underscores within a
// word — batch.flushes, batch.ops_coalesced, complete.fastpath_hits,
// complete.probe_fallbacks, nic.msgs, nic.bytes, nic.parked, order.fences,
// latency.put (virtual-time nanoseconds), mpi2.fences, net.bytes.
//
// A nil *Registry is a valid disabled registry: lookups return nil
// histograms (whose Observe is a no-op) and shared discard counters, so
// call sites need no nil checks — though hot paths should check for nil
// once and skip the whole observation.
package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"mpi3rma/internal/stats"
)

// discard absorbs writes through a nil registry's counters and gauges.
var (
	discardCounter stats.Counter
	discardGauge   stats.Gauge
)

// Registry is a named collection of counters, gauges, and histograms.
// The zero value is ready to use; NewRegistry is clearer at call sites.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*stats.Counter
	gauges   map[string]*stats.Gauge
	hists    map[string]*stats.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// ErrDuplicateName reports a registration collision: the dotted name is
// already bound to a *different* live cell. The first registration wins;
// the duplicate is rejected so two subsystems can never silently alias
// each other's metrics. Re-registering the same cell under the same name
// is idempotent and not an error.
var ErrDuplicateName = errors.New("telemetry: metric name already registered")

// Register names an existing live counter. The registry aliases it — the
// owner keeps incrementing its own field; Snapshot reads the same cells.
// Registering the same counter again under its name is a no-op;
// registering a different counter under a taken name returns
// ErrDuplicateName (wrapped with the name) and leaves the first binding
// in place. No-op on a nil registry.
func (r *Registry) Register(name string, c *stats.Counter) error {
	if r == nil || c == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*stats.Counter)
	}
	if prev, ok := r.counters[name]; ok && prev != c {
		return fmt.Errorf("%w: counter %q", ErrDuplicateName, name)
	}
	r.counters[name] = c
	return nil
}

// RegisterGauge names an existing live gauge, with the same collision
// semantics as Register.
func (r *Registry) RegisterGauge(name string, g *stats.Gauge) error {
	if r == nil || g == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*stats.Gauge)
	}
	if prev, ok := r.gauges[name]; ok && prev != g {
		return fmt.Errorf("%w: gauge %q", ErrDuplicateName, name)
	}
	r.gauges[name] = g
	return nil
}

// RegisterHistogram names an existing live histogram, with the same
// collision semantics as Register.
func (r *Registry) RegisterHistogram(name string, h *stats.Histogram) error {
	if r == nil || h == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*stats.Histogram)
	}
	if prev, ok := r.hists[name]; ok && prev != h {
		return fmt.Errorf("%w: histogram %q", ErrDuplicateName, name)
	}
	r.hists[name] = h
	return nil
}

// Counter returns the counter registered under name, creating a
// registry-owned one on first use. On a nil registry it returns a shared
// discard counter.
func (r *Registry) Counter(name string) *stats.Counter {
	if r == nil {
		return &discardCounter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*stats.Counter)
	}
	c := r.counters[name]
	if c == nil {
		c = &stats.Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating a registry-owned
// one on first use. On a nil registry it returns a shared discard gauge.
func (r *Registry) Gauge(name string) *stats.Gauge {
	if r == nil {
		return &discardGauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*stats.Gauge)
	}
	g := r.gauges[name]
	if g == nil {
		g = &stats.Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating a
// registry-owned one on first use. On a nil registry it returns nil, which
// is a valid no-op histogram — capture the pointer once per phase rather
// than calling through the registry on a hot path.
func (r *Registry) Histogram(name string) *stats.Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*stats.Histogram)
	}
	h := r.hists[name]
	if h == nil {
		h = &stats.Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every registered metric's current value. Empty
// histograms are omitted. Nil registries yield a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	for name, h := range r.hists {
		hs := h.Snapshot()
		if hs.Count == 0 {
			continue
		}
		if s.Histograms == nil {
			s.Histograms = make(map[string]stats.HistogramSnapshot)
		}
		s.Histograms[name] = hs
	}
	return s
}

// Snapshot is a point-in-time copy of a registry, serializable and
// mergeable across ranks.
type Snapshot struct {
	Counters   map[string]int64                   `json:"counters"`
	Gauges     map[string]int64                   `json:"gauges,omitempty"`
	Histograms map[string]stats.HistogramSnapshot `json:"histograms,omitempty"`
}

// Merge folds another snapshot into this one: counters and gauges sum,
// histograms merge bucket-wise. Callers merging across ranks must decide
// themselves which names are per-rank (summable) and which alias shared
// state; Merge sums everything.
func (s *Snapshot) Merge(o Snapshot) {
	for name, v := range o.Counters {
		if s.Counters == nil {
			s.Counters = make(map[string]int64)
		}
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		if s.Gauges == nil {
			s.Gauges = make(map[string]int64)
		}
		s.Gauges[name] += v
	}
	for name, h := range o.Histograms {
		if s.Histograms == nil {
			s.Histograms = make(map[string]stats.HistogramSnapshot)
		}
		cur := s.Histograms[name]
		cur.Merge(h)
		s.Histograms[name] = cur
	}
}

// WriteText renders the snapshot as sorted "name value" lines, histograms
// as count/mean/p50/p99/max summaries.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v, ok := s.Counters[n]
		if !ok {
			v = s.Gauges[n]
		}
		if _, err := fmt.Fprintf(w, "%-32s %d\n", n, v); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "%-32s count=%d mean=%.0f p50=%d p99=%d max=%d\n",
			n, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
