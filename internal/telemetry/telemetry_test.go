package telemetry

import (
	"errors"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mpi3rma/internal/stats"
	"mpi3rma/internal/trace"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Register("x", &stats.Counter{})
	r.Counter("x").Inc() // discard counter, must not panic
	r.Gauge("g").Set(3)
	if h := r.Histogram("h"); h != nil {
		t.Fatal("nil registry should hand out nil histograms")
	}
	r.Histogram("h").Observe(5) // nil histogram no-op
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil snapshot %+v", s)
	}
}

func TestRegistryAliasesLiveCounters(t *testing.T) {
	var owned stats.Counter
	r := NewRegistry()
	r.Register("ops.issued", &owned)
	owned.Add(41)
	r.Counter("ops.issued").Inc() // same cell through the registry
	if got := r.Snapshot().Counters["ops.issued"]; got != 42 {
		t.Fatalf("aliased counter = %d, want 42", got)
	}
	if owned.Value() != 42 {
		t.Fatalf("owner sees %d, want 42", owned.Value())
	}
}

func TestSnapshotMergeAndExport(t *testing.T) {
	a := NewRegistry()
	a.Counter("batch.flushes").Add(3)
	a.Histogram("latency.put").Observe(100)
	b := NewRegistry()
	b.Counter("batch.flushes").Add(4)
	b.Histogram("latency.put").Observe(1000)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters["batch.flushes"] != 7 {
		t.Fatalf("merged counter %d", s.Counters["batch.flushes"])
	}
	if h := s.Histograms["latency.put"]; h.Count != 2 || h.Max != 1000 {
		t.Fatalf("merged histogram %+v", h)
	}

	var text bytes.Buffer
	if err := s.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "batch.flushes") || !strings.Contains(text.String(), "latency.put") {
		t.Fatalf("text export:\n%s", text.String())
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON export does not parse: %v", err)
	}
	if back.Counters["batch.flushes"] != 7 {
		t.Fatalf("round-tripped counter %d", back.Counters["batch.flushes"])
	}
}

func TestSpansAcrossRanks(t *testing.T) {
	// Rank 1 issues op 9 to rank 0; rank 0 applies it; rank 1 sees the ack.
	// Rank 0 independently issues its own op 9 to rank 2 — same id, other
	// origin — which must land in a distinct span.
	per := map[int][]trace.Event{
		1: {
			{At: 10, Cat: "issue", Peer: 0, ID: 9},
			{At: 50, Cat: "ack", Peer: 0, ID: 9},
			{At: 55, Cat: "complete", Peer: 0, ID: 9},
		},
		0: {
			{At: 30, Cat: "apply", Peer: 1, ID: 9},
			{At: 12, Cat: "issue", Peer: 2, ID: 9},
		},
		2: {
			{At: 40, Cat: "apply", Peer: 0, ID: 9},
		},
	}
	events := Timeline(per)
	if len(events) != 6 {
		t.Fatalf("timeline has %d events", len(events))
	}
	spans := Spans(events)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	var mine *Span
	for i := range spans {
		if spans[i].Origin == 1 {
			mine = &spans[i]
		}
	}
	if mine == nil {
		t.Fatalf("no span for origin 1: %+v", spans)
	}
	if mine.Begin != 10 || mine.End != 55 {
		t.Fatalf("span bounds [%d,%d]", mine.Begin, mine.End)
	}
	want := []string{"issue", "apply", "ack", "complete"}
	if len(mine.Path) != len(want) {
		t.Fatalf("path %v, want %v", mine.Path, want)
	}
	for i, cat := range want {
		if mine.Path[i] != cat {
			t.Fatalf("path %v, want %v", mine.Path, want)
		}
	}
	if mine.Ranks[1] != 0 {
		t.Fatalf("apply should be recorded by rank 0: %v", mine.Ranks)
	}

	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	var dump TraceDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(dump.Spans) != 2 || len(dump.Events) != 6 {
		t.Fatalf("round-tripped dump: %d spans, %d events", len(dump.Spans), len(dump.Events))
	}
}

// TestRegisterCollisionRejected pins the registration contract: a dotted
// name binds to exactly one live cell. Re-registering the same cell is
// idempotent; a different cell under a taken name is rejected with
// ErrDuplicateName (first binding wins) — two subsystems can never
// silently alias each other's metrics.
func TestRegisterCollisionRejected(t *testing.T) {
	r := NewRegistry()
	var a, b stats.Counter
	if err := r.Register("nic.msgs", &a); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if err := r.Register("nic.msgs", &a); err != nil {
		t.Fatalf("idempotent re-registration: %v", err)
	}
	err := r.Register("nic.msgs", &b)
	if !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("colliding registration returned %v, want ErrDuplicateName", err)
	}
	if !strings.Contains(err.Error(), "nic.msgs") {
		t.Fatalf("collision error %q does not name the metric", err)
	}
	a.Add(7)
	if got := r.Snapshot().Counters["nic.msgs"]; got != 7 {
		t.Fatalf("first binding displaced: snapshot reads %d, want 7", got)
	}

	var g1, g2 stats.Gauge
	if err := r.RegisterGauge("shard.depth", &g1); err != nil {
		t.Fatalf("gauge registration: %v", err)
	}
	if err := r.RegisterGauge("shard.depth", &g2); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("gauge collision returned %v, want ErrDuplicateName", err)
	}
	h1, h2 := &stats.Histogram{}, &stats.Histogram{}
	if err := r.RegisterHistogram("latency.put", h1); err != nil {
		t.Fatalf("histogram registration: %v", err)
	}
	if err := r.RegisterHistogram("latency.put", h2); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("histogram collision returned %v, want ErrDuplicateName", err)
	}

	var nilReg *Registry
	if err := nilReg.Register("x", &a); err != nil {
		t.Fatalf("nil registry Register returned %v, want nil", err)
	}
}
