package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpi3rma/internal/stats"
)

// TestFlightDisabledZeroAlloc pins the hot-path contract: with the
// recorder disabled (nil pointer — the state every engine is in unless
// WithFlightRecorder was passed) a Note is a single pointer check and
// allocates nothing. The enabled path writes into the preallocated ring
// and must not allocate either.
func TestFlightDisabledZeroAlloc(t *testing.T) {
	var off *FlightRecorder
	err := errors.New("sticky")
	if n := testing.AllocsPerRun(1000, func() {
		off.Note(42, "delivery", 3, 7, 1, err)
	}); n != 0 {
		t.Fatalf("disabled Note allocates %v per call, want 0", n)
	}
	on := NewFlightRecorder(FlightConfig{Rank: 1, Cap: 64})
	if n := testing.AllocsPerRun(1000, func() {
		on.Note(42, "delivery", 3, 7, 1, err)
	}); n != 0 {
		t.Fatalf("enabled Note allocates %v per call, want 0", n)
	}
	// The rest of the nil-receiver surface must be no-ops, not panics.
	off.SetHealth(nil)
	off.SetBaseline(NewRegistry())
	off.AutoDump("x", 0)
	if off.Len() != 0 || off.Postmortem("x", 0) != nil || off.Dumps() != nil {
		t.Fatal("nil recorder returned non-empty state")
	}
}

// TestFlightRingEvictsOldest: a full ring keeps the newest Cap events in
// chronological order and reports the lifetime total.
func TestFlightRingEvictsOldest(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Rank: 0, Cap: 4})
	for i := 1; i <= 6; i++ {
		f.Note(int64(i), "delivery", i, 0, 0, nil)
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	pm := f.Postmortem("test", 6)
	if pm.Recorded != 6 || len(pm.Events) != 4 {
		t.Fatalf("recorded=%d events=%d, want 6 and 4", pm.Recorded, len(pm.Events))
	}
	for i, ev := range pm.Events {
		if want := int64(i + 3); ev.At != want {
			t.Fatalf("event %d at=%d, want %d (oldest evicted, chronological)", i, ev.At, want)
		}
	}
}

// TestFlightPostmortemContents: the dump stringifies stored errors,
// embeds the health snapshot, and reports counter deltas since the
// baseline was armed.
func TestFlightPostmortemContents(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Rank: 2, Cap: 8})
	reg := NewRegistry()
	var retries stats.Counter
	if err := reg.Register("net.retries", &retries); err != nil {
		t.Fatal(err)
	}
	retries.Add(5)
	f.SetBaseline(reg)
	f.SetHealth(func() HealthReport {
		return HealthReport{Rank: 2, VTime: 99, Sticky: []string{"link 0 failed"}}
	})
	retries.Add(3)
	f.Note(10, "link-failed", 0, 0, 0, errors.New("retry budget exhausted"))

	pm := f.Postmortem("link-failed", 10)
	if pm.Health == nil || pm.Health.VTime != 99 || len(pm.Health.Sticky) != 1 {
		t.Fatalf("health snapshot not embedded: %+v", pm.Health)
	}
	if pm.MetricDeltas["net.retries"] != 3 {
		t.Fatalf("metric delta = %d, want 3 (movement since baseline only)", pm.MetricDeltas["net.retries"])
	}
	if pm.Events[0].Err != "retry budget exhausted" {
		t.Fatalf("event error not stringified: %+v", pm.Events[0])
	}
	var buf bytes.Buffer
	if err := f.WritePostmortem(&buf, "link-failed", 10); err != nil {
		t.Fatalf("WritePostmortem: %v", err)
	}
	var check map[string]any
	if err := json.Unmarshal(buf.Bytes(), &check); err != nil {
		t.Fatalf("postmortem JSON does not parse: %v", err)
	}
}

// TestFlightAutoDumpOnce: AutoDump writes exactly one postmortem file
// per recorder (cascading faults reuse the first), named by rank and
// sanitized reason; explicit DumpFile calls are not limited.
func TestFlightAutoDumpOnce(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(FlightConfig{Rank: 3, Dir: dir})
	f.Note(1, "retransmit", 0, 11, 2, nil)
	f.AutoDump("link-failed", 5)
	f.AutoDump("apply-fault", 6)
	dumps := f.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("auto-dumped %d files, want 1", len(dumps))
	}
	base := filepath.Base(dumps[0])
	if !strings.HasPrefix(base, "flight-rank3-link-failed-") {
		t.Fatalf("dump name %q, want flight-rank3-link-failed-*", base)
	}
	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatalf("reading dump: %v", err)
	}
	var pm Postmortem
	if err := json.Unmarshal(raw, &pm); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if pm.Reason != "link-failed" || pm.Rank != 3 || len(pm.Events) != 1 {
		t.Fatalf("dump contents: %+v", pm)
	}
	if p, err := f.DumpFile("manual", 7); err != nil || p == "" {
		t.Fatalf("explicit DumpFile after auto: path=%q err=%v", p, err)
	}
	if len(f.Dumps()) != 2 {
		t.Fatalf("dumps after explicit = %d, want 2", len(f.Dumps()))
	}
}
