package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mpi3rma/internal/stats"
)

// Critical-path analysis decomposes each operation span (PR 2's
// cross-rank timelines) into named stages so "E13 got slower" becomes
// "E13 spends 40% of its time in shard-queue". The decomposition is
// gap-based: every pair of consecutive events inside a span defines a
// gap, and every gap is attributed to exactly one stage (or split into
// wire / retransmit-stall / shard-queue / apply using the arrive= and
// cost= annotations the engine embeds in event details). Because gaps
// partition [Begin, End] and each gap is fully assigned, the per-span
// stage sums reconcile *exactly* with the end-to-end modelled latency —
// the report tracks any violation as a mismatch so the invariant is
// self-validating rather than assumed.
//
// Stage taxonomy (see DESIGN.md §12):
//
//	issue-queue       enqueue → pack: time an op sat in the batch ring
//	pack              pack → batch envelope send
//	wire              modelled flight time (send → scheduled arrival)
//	retransmit-stall  extra delivery delay attributable to relay
//	                  retransmissions on the origin→target link
//	shard-queue       target-side queueing: NIC ingress, reorder hold,
//	                  shard/serializer backlog before the apply ran
//	apply             the modelled apply cost itself
//	ack-notify        return-path latency of acks/replies/notifies
//	completion-wakeup completion-side wakeup (last confirm → complete)
//	other             gaps with no recognised transition
const (
	StageIssueQueue       = "issue-queue"
	StagePack             = "pack"
	StageWire             = "wire"
	StageRetransmitStall  = "retransmit-stall"
	StageShardQueue       = "shard-queue"
	StageApply            = "apply"
	StageAckNotify        = "ack-notify"
	StageCompletionWakeup = "completion-wakeup"
	StageOther            = "other"
)

// StageOrder is the canonical reporting order: the lifecycle of one
// operation from issue to completion.
var StageOrder = []string{
	StageIssueQueue,
	StagePack,
	StageWire,
	StageRetransmitStall,
	StageShardQueue,
	StageApply,
	StageAckNotify,
	StageCompletionWakeup,
	StageOther,
}

// StageStat is the aggregated view of one stage across all spans.
// Quantiles come from the shared fixed-bucket histogram (approximate);
// Total is an exact int64 sum and is what reconciliation checks use.
type StageStat struct {
	Stage string `json:"stage"`
	// Spans counts the spans in which the stage appeared.
	Spans int64 `json:"spans"`
	Total int64 `json:"total_ns"`
	P50   int64 `json:"p50_ns"`
	P99   int64 `json:"p99_ns"`
	Max   int64 `json:"max_ns"`
}

// SpanBreakdown is one span's stage decomposition. Mismatch is
// (End-Begin) - Σ stages and is zero for every reconciled span.
type SpanBreakdown struct {
	Origin   int              `json:"origin"`
	ID       uint64           `json:"id"`
	Begin    int64            `json:"begin"`
	End      int64            `json:"end"`
	Elapsed  int64            `json:"elapsed_ns"`
	Stages   map[string]int64 `json:"stages"`
	Mismatch int64            `json:"mismatch_ns,omitempty"`
}

// CriticalPathReport aggregates the per-span decompositions.
type CriticalPathReport struct {
	// Spans counts multi-event spans analyzed (single-event spans carry
	// no latency and are skipped).
	Spans      int `json:"spans"`
	Reconciled int `json:"reconciled"`
	Mismatched int `json:"mismatched"`
	// TotalVTime is the exact Σ of span end-to-end times; when
	// Mismatched is zero it equals the Σ of all stage Totals.
	TotalVTime int64       `json:"total_vtime_ns"`
	EndToEnd   StageStat   `json:"end_to_end"`
	Stages     []StageStat `json:"stages"`
	// Slowest lists the worst spans by end-to-end time for triage.
	Slowest []SpanBreakdown `json:"slowest,omitempty"`

	all []SpanBreakdown
}

// opSpan is the analyzer's internal span: like Span but retaining the
// full events so details (arrive=, cost=) stay parseable.
type opSpan struct {
	origin int
	id     uint64
	events []TraceEvent
}

// retransEvent is one relay retransmission, side-indexed out of the
// timeline: retransmissions are link-level (keyed by relay sequence
// number, not request id) and must not pollute span identity.
type retransEvent struct {
	at       int64
	src, dst int
}

// parseDetailInt extracts "key=<int>" from an event detail string.
func parseDetailInt(detail, key string) (int64, bool) {
	i := strings.Index(detail, key+"=")
	if i < 0 {
		return 0, false
	}
	rest := detail[i+len(key)+1:]
	end := 0
	for end < len(rest) && (rest[end] >= '0' && rest[end] <= '9' || end == 0 && rest[end] == '-') {
		end++
	}
	v, err := strconv.ParseInt(rest[:end], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AnalyzeCriticalPath decomposes every correlated span in a merged
// chronological timeline (Timeline output) into stages. events with
// ID == 0 (fastpath completes, fences) and link-level retransmit
// records are excluded from span identity; retransmits instead feed the
// retransmit-stall attribution.
func AnalyzeCriticalPath(events []TraceEvent) *CriticalPathReport {
	var retrans []retransEvent
	type key struct {
		origin int
		id     uint64
	}
	byOp := make(map[key]*opSpan)
	var order []key
	for _, e := range events {
		if e.Cat == "retransmit" {
			retrans = append(retrans, retransEvent{at: e.At, src: e.Rank, dst: e.Peer})
			continue
		}
		if e.ID == 0 {
			continue
		}
		k := key{originOf(e), e.ID}
		sp := byOp[k]
		if sp == nil {
			sp = &opSpan{origin: k.origin, id: k.id}
			byOp[k] = sp
			order = append(order, k)
		}
		sp.events = append(sp.events, e)
	}

	rep := &CriticalPathReport{}
	hists := make(map[string]*stats.Histogram, len(StageOrder))
	for _, s := range StageOrder {
		hists[s] = &stats.Histogram{}
	}
	e2e := &stats.Histogram{}
	totals := make(map[string]int64, len(StageOrder))
	counts := make(map[string]int64, len(StageOrder))

	lastRetrans := func(src, dst int, after, until int64) int64 {
		var last int64
		for _, r := range retrans {
			if r.src == src && r.dst == dst && r.at > after && r.at <= until && r.at > last {
				last = r.at
			}
		}
		return last
	}

	for _, k := range order {
		sp := byOp[k]
		if len(sp.events) < 2 {
			continue
		}
		bd := SpanBreakdown{
			Origin: sp.origin,
			ID:     sp.id,
			Begin:  sp.events[0].At,
			End:    sp.events[len(sp.events)-1].At,
			Stages: make(map[string]int64),
		}
		bd.Elapsed = bd.End - bd.Begin
		add := func(stage string, d int64) {
			if d < 0 {
				d = 0
			}
			bd.Stages[stage] += d
		}
		for i := 1; i < len(sp.events); i++ {
			prev, next := sp.events[i-1], sp.events[i]
			gap := next.At - prev.At
			if gap < 0 {
				// Timeline output is chronological; a negative gap means
				// the input was not. Surface it as a mismatch.
				continue
			}
			switch next.Cat {
			case "pack":
				add(StageIssueQueue, gap)
			case "batch":
				add(StagePack, gap)
			case "apply":
				rem := gap
				if arrive, ok := parseDetailInt(prev.Detail, "arrive"); ok {
					wire := clamp(arrive-prev.At, 0, rem)
					add(StageWire, wire)
					rem -= wire
					// A retransmission on the origin→target link inside
					// this window delayed actual delivery past the
					// modelled arrival by (retransmit time - send time).
					if last := lastRetrans(sp.origin, next.Rank, prev.At, next.At); last > 0 {
						stall := clamp(last-prev.At, 0, rem)
						add(StageRetransmitStall, stall)
						rem -= stall
					}
				}
				cost, _ := parseDetailInt(next.Detail, "cost")
				ap := clamp(cost, 0, rem)
				add(StageShardQueue, rem-ap)
				add(StageApply, ap)
			case "ack", "reply", "notify", "probe-ack":
				add(StageAckNotify, gap)
			case "complete", "fence":
				add(StageCompletionWakeup, gap)
			case "probe":
				add(StageWire, gap)
			default:
				add(StageOther, gap)
			}
		}
		var sum int64
		for stage, d := range bd.Stages {
			sum += d
			totals[stage] += d
			counts[stage]++
			hists[stage].Observe(d)
		}
		bd.Mismatch = bd.Elapsed - sum
		rep.Spans++
		rep.TotalVTime += bd.Elapsed
		e2e.Observe(bd.Elapsed)
		if bd.Mismatch == 0 {
			rep.Reconciled++
		} else {
			rep.Mismatched++
		}
		rep.all = append(rep.all, bd)
	}

	for _, s := range StageOrder {
		if counts[s] == 0 {
			continue
		}
		rep.Stages = append(rep.Stages, StageStat{
			Stage: s,
			Spans: counts[s],
			Total: totals[s],
			P50:   hists[s].Quantile(0.50),
			P99:   hists[s].Quantile(0.99),
			Max:   hists[s].Max(),
		})
	}
	rep.EndToEnd = StageStat{
		Stage: "end-to-end",
		Spans: int64(rep.Spans),
		Total: rep.TotalVTime,
		P50:   e2e.Quantile(0.50),
		P99:   e2e.Quantile(0.99),
		Max:   e2e.Max(),
	}

	slow := append([]SpanBreakdown(nil), rep.all...)
	sort.SliceStable(slow, func(i, j int) bool { return slow[i].Elapsed > slow[j].Elapsed })
	if len(slow) > 5 {
		slow = slow[:5]
	}
	rep.Slowest = slow
	return rep
}

// Stage returns the aggregated stat for one stage name, or nil if the
// stage never appeared.
func (r *CriticalPathReport) Stage(name string) *StageStat {
	for i := range r.Stages {
		if r.Stages[i].Stage == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// StageTotal returns the exact Σ of all stage totals; equal to
// TotalVTime whenever every span reconciled.
func (r *CriticalPathReport) StageTotal() int64 {
	var sum int64
	for _, s := range r.Stages {
		sum += s.Total
	}
	return sum
}

// TopStages returns up to n stages ordered by total time descending.
func (r *CriticalPathReport) TopStages(n int) []StageStat {
	out := append([]StageStat(nil), r.Stages...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Breakdowns returns every per-span decomposition (analysis order).
func (r *CriticalPathReport) Breakdowns() []SpanBreakdown {
	return r.all
}

// Observe publishes the per-span stage durations into a registry as
// latency.stage.<name> histograms (plus latency.stage.end-to-end), the
// metric form of the same decomposition.
func (r *CriticalPathReport) Observe(reg *Registry) {
	if reg == nil {
		return
	}
	for _, bd := range r.all {
		for stage, d := range bd.Stages {
			reg.Histogram("latency.stage." + stage).Observe(d)
		}
		reg.Histogram("latency.stage.end-to-end").Observe(bd.Elapsed)
	}
}

// WriteText renders the report as an aligned table for terminals.
func (r *CriticalPathReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "critical path: %d spans, %d reconciled, %d mismatched, end-to-end %dns\n",
		r.Spans, r.Reconciled, r.Mismatched, r.TotalVTime); err != nil {
		return err
	}
	if r.Spans == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "  %-18s %8s %14s %10s %10s %10s %7s\n",
		"stage", "spans", "total_ns", "p50_ns", "p99_ns", "max_ns", "share"); err != nil {
		return err
	}
	for _, s := range r.Stages {
		share := 0.0
		if r.TotalVTime > 0 {
			share = 100 * float64(s.Total) / float64(r.TotalVTime)
		}
		if _, err := fmt.Fprintf(w, "  %-18s %8d %14d %10d %10d %10d %6.1f%%\n",
			s.Stage, s.Spans, s.Total, s.P50, s.P99, s.Max, share); err != nil {
			return err
		}
	}
	s := r.EndToEnd
	_, err := fmt.Fprintf(w, "  %-18s %8d %14d %10d %10d %10d %6.1f%%\n",
		s.Stage, s.Spans, s.Total, s.P50, s.P99, s.Max, 100.0)
	return err
}

// WriteJSON emits the report as indented JSON (the -critpath sidecar).
func (r *CriticalPathReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
