package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// syntheticSpan is a hand-built one-put timeline: issue at the origin,
// apply at the target (with modelled arrival and apply cost in the
// details), ack back, complete. The numbers are chosen so every stage
// the attribution walk can produce is distinct and checkable.
func syntheticSpan() []TraceEvent {
	return []TraceEvent{
		{At: 100, Rank: 1, Cat: "issue", Peer: 0, ID: 7, Detail: "kind=1 bytes=64 arrive=300"},
		{At: 450, Rank: 0, Cat: "apply", Peer: 1, ID: 7, Detail: "kind=1 bytes=64 cost=50"},
		{At: 520, Rank: 1, Cat: "ack", Peer: 0, ID: 7},
		{At: 600, Rank: 1, Cat: "complete", Peer: 0, ID: 7},
	}
}

// TestCritPathSyntheticAttribution pins the stage decomposition of a
// hand-built span: wire = arrive-send, apply = cost, shard-queue = the
// arrival->apply remainder, ack and wakeup from the trailing gaps — and
// the stage sum reconciles exactly with end-to-end elapsed time.
func TestCritPathSyntheticAttribution(t *testing.T) {
	rep := AnalyzeCriticalPath(syntheticSpan())
	if rep.Spans != 1 || rep.Reconciled != 1 || rep.Mismatched != 0 {
		t.Fatalf("spans=%d reconciled=%d mismatched=%d, want 1/1/0",
			rep.Spans, rep.Reconciled, rep.Mismatched)
	}
	want := map[string]int64{
		StageWire:             200, // 300-100 modelled flight
		StageShardQueue:       100, // 300..450 minus the 50ns apply
		StageApply:            50,
		StageAckNotify:        70,  // 450..520
		StageCompletionWakeup: 80,  // 520..600
	}
	var sum int64
	for stage, d := range want {
		s := rep.Stage(stage)
		if s == nil || s.Total != d {
			got := int64(-1)
			if s != nil {
				got = s.Total
			}
			t.Errorf("stage %s total = %d, want %d", stage, got, d)
		}
		sum += d
	}
	if rep.TotalVTime != sum || rep.StageTotal() != rep.TotalVTime {
		t.Errorf("stage sum %d / total vtime %d, want both %d",
			rep.StageTotal(), rep.TotalVTime, sum)
	}
	if rep.EndToEnd.Total != 500 {
		t.Errorf("end-to-end total = %d, want 500", rep.EndToEnd.Total)
	}
}

// TestCritPathRetransmitStallAttribution injects a link-level
// retransmit record inside the send->apply window and checks the stall
// is carved out of the shard-queue remainder — and that the retransmit
// event itself never becomes a span.
func TestCritPathRetransmitStallAttribution(t *testing.T) {
	events := syntheticSpan()
	// Retransmit on the 1->0 link at t=380, inside (100, 450]: actual
	// delivery was delayed ~280 past the original send.
	events = append(events, TraceEvent{At: 380, Rank: 1, Cat: "retransmit", Peer: 0, ID: 99})
	rep := AnalyzeCriticalPath(events)
	if rep.Spans != 1 {
		t.Fatalf("spans = %d, want 1 (retransmit records must not form spans)", rep.Spans)
	}
	if rep.Mismatched != 0 {
		t.Fatalf("mismatched = %d, want 0", rep.Mismatched)
	}
	// After the 200ns wire share, 150ns remain in the send->apply gap;
	// the stall estimate clamp(380-100, 0, 150) consumes all of it.
	stall := rep.Stage(StageRetransmitStall)
	if stall == nil || stall.Total != 150 {
		got := int64(-1)
		if stall != nil {
			got = stall.Total
		}
		t.Fatalf("retransmit-stall total = %d, want 150", got)
	}
	if rep.StageTotal() != rep.TotalVTime {
		t.Fatalf("stage total %d != end-to-end vtime %d", rep.StageTotal(), rep.TotalVTime)
	}
	// A retransmit on an unrelated link must not create a stall.
	clean := append(syntheticSpan(), TraceEvent{At: 380, Rank: 2, Cat: "retransmit", Peer: 3})
	if s := AnalyzeCriticalPath(clean).Stage(StageRetransmitStall); s != nil && s.Total != 0 {
		t.Fatalf("unrelated-link retransmit produced stall %d, want 0", s.Total)
	}
}

// TestCritPathEmptyAndUncorrelated: no events, nil input, and ID==0
// events (fastpath completes, fences) all yield an empty, well-formed
// report rather than a crash or phantom spans.
func TestCritPathEmptyAndUncorrelated(t *testing.T) {
	for _, events := range [][]TraceEvent{
		nil,
		{},
		{{At: 5, Rank: 0, Cat: "fence", ID: 0}, {At: 9, Rank: 1, Cat: "complete", ID: 0}},
	} {
		rep := AnalyzeCriticalPath(events)
		if rep.Spans != 0 || rep.TotalVTime != 0 || len(rep.Slowest) != 0 {
			t.Fatalf("empty input produced spans=%d vtime=%d slowest=%d",
				rep.Spans, rep.TotalVTime, len(rep.Slowest))
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON on empty report: %v", err)
		}
		if err := rep.WriteText(&buf); err != nil {
			t.Fatalf("WriteText on empty report: %v", err)
		}
	}
}

// TestCritPathObservePublishesStageHistograms: Observe lands one
// latency.stage.<name> histogram per populated stage plus the
// end-to-end histogram in the registry.
func TestCritPathObservePublishesStageHistograms(t *testing.T) {
	rep := AnalyzeCriticalPath(syntheticSpan())
	reg := NewRegistry()
	rep.Observe(reg)
	snap := reg.Snapshot()
	for _, name := range []string{"latency.stage.wire", "latency.stage.apply", "latency.stage.end-to-end"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("registry missing populated histogram %q", name)
		}
	}
}

// TestCritPathJSONRoundTrips: the sidecar JSON parses back and carries
// the reconciliation fields tooling keys on.
func TestCritPathJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := AnalyzeCriticalPath(syntheticSpan()).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out struct {
		Spans      int         `json:"spans"`
		Reconciled int         `json:"reconciled"`
		Mismatched int         `json:"mismatched"`
		Stages     []StageStat `json:"stages"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("sidecar does not parse: %v", err)
	}
	if out.Spans != 1 || out.Reconciled != 1 || out.Mismatched != 0 || len(out.Stages) == 0 {
		t.Fatalf("round-trip lost fields: %+v", out)
	}
}
