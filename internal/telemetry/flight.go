package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The flight recorder keeps a bounded ring of the most recent
// noteworthy runtime events (deliveries, confirms, retransmissions,
// faults) so that when something goes wrong — a link exhausts its retry
// budget, an apply panics — the postmortem names what happened in the
// moments before, not just the final error. Everything is preallocated:
// recording is a mutex-guarded ring write with no allocation, and a nil
// *FlightRecorder discards notes entirely so the disabled path is a
// single pointer check (pinned by an AllocsPerRun test).

// FlightConfig sizes and places a recorder.
type FlightConfig struct {
	// Rank stamps the recorder's postmortems.
	Rank int
	// Cap bounds the event ring; 0 means DefaultFlightCap.
	Cap int
	// Dir receives auto-dumped postmortem files; empty means
	// os.TempDir().
	Dir string
}

// DefaultFlightCap is the default ring capacity.
const DefaultFlightCap = 256

// FlightEvent is one recorded moment. Cat values are static strings
// ("delivery", "confirm", "retransmit", "link-failed", "rank-death",
// "replica-promote", "rebuild-frame", "rebuild-done", "buddy-lost",
// "buddy-rebound", "no-spare", "apply-fault", "request-done") so
// recording never formats or allocates.
type FlightEvent struct {
	At    int64  `json:"at"`
	Cat   string `json:"cat"`
	Peer  int    `json:"peer"`
	ID    uint64 `json:"id,omitempty"`
	Count int64  `json:"count,omitempty"`
	Err   string `json:"err,omitempty"`

	err error
}

// LinkHealth is one peer link's relay state at snapshot time.
type LinkHealth struct {
	Peer     int  `json:"peer"`
	Down     bool `json:"down"`
	Inflight int  `json:"inflight"`
	// Attempts is the worst per-frame attempt count currently in flight.
	Attempts int `json:"attempts"`
}

// ShardHealth is one apply shard's depth and lifetime counters.
type ShardHealth struct {
	Shard    int   `json:"shard"`
	Depth    int64 `json:"depth"`
	Tasks    int64 `json:"tasks"`
	Steals   int64 `json:"steals"`
	Overflow int64 `json:"overflow"`
}

// QueueHealth is the completion queue's occupancy and drop counters.
type QueueHealth struct {
	Depth     int   `json:"depth"`
	Cap       int   `json:"cap"`
	Published int64 `json:"published"`
	Dropped   int64 `json:"dropped"`
}

// RankDeathInfo names one confirmed rank death and the recovery that
// followed: who died, which buddy held the replicas, which spare they
// were replayed onto, and the version range of the replay. Recorded by
// the promoting buddy before its postmortem dump so the dump file names
// the whole promotion, not just the failure.
type RankDeathInfo struct {
	// Dead is the rank the membership service confirmed dead.
	Dead int `json:"dead"`
	// Buddy is the rank that held the dead rank's replicas and promoted
	// them (the rank writing this report).
	Buddy int `json:"buddy"`
	// Spare is the standby rank the replicas were replayed onto (-1 when
	// the spare pool was exhausted and no rebuild could start).
	Spare int `json:"spare"`
	// Regions is the number of replicated regions replayed.
	Regions int `json:"regions"`
	// FromVersion..ToVersion is the replayed version range: replicas
	// start at version 1 (the initial expose snapshot) and ToVersion is
	// the highest replicated version across the replayed regions.
	FromVersion uint64 `json:"from_version"`
	ToVersion   uint64 `json:"to_version"`
}

// HealthReport is one rank's point-in-time health: what rmatop renders
// and what postmortems embed. Producers fill only what they have; nil
// slices simply mean "subsystem not enabled".
type HealthReport struct {
	Rank  int   `json:"rank"`
	VTime int64 `json:"vtime"`
	// Liveness is this rank's view of every rank's membership state
	// ("ALIVE", "SUSPECT", "DEAD", "REBUILDING", "SPARE"), indexed by
	// world rank. Empty outside fault-injected worlds.
	Liveness []string `json:"liveness,omitempty"`
	// Sticky lists sticky engine errors (rank deaths, link failures,
	// apply faults).
	Sticky []string `json:"sticky,omitempty"`
	// RetryBudget is the per-frame retry budget links are allowed
	// before being declared failed (0 when reliability is off).
	RetryBudget int          `json:"retry_budget,omitempty"`
	Links       []LinkHealth `json:"links,omitempty"`
	Shards      []ShardHealth `json:"shards,omitempty"`
	Queue       *QueueHealth  `json:"queue,omitempty"`
	// AppliedFrom counts applied ops per origin rank (watermarks).
	AppliedFrom map[int]int64 `json:"applied_from,omitempty"`
}

// Postmortem is the dump format: the reason, the recent-event ring in
// chronological order, the rank's health snapshot, and the metric
// deltas accumulated since the recorder was armed.
type Postmortem struct {
	Reason string `json:"reason"`
	Rank   int    `json:"rank"`
	At     int64  `json:"at"`
	// Recorded is the lifetime number of notes; len(Events) is bounded
	// by the ring capacity, so Recorded-len(Events) notes were evicted.
	Recorded uint64        `json:"recorded"`
	Events   []FlightEvent `json:"events"`
	// RankDeath, when set, names the death and replica promotion this
	// dump covers: the dead rank, the buddy that promoted, the spare
	// rebuilt onto, and the replayed version range.
	RankDeath    *RankDeathInfo   `json:"rank_death,omitempty"`
	Health       *HealthReport    `json:"health,omitempty"`
	MetricDeltas map[string]int64 `json:"metric_deltas,omitempty"`
}

// FlightRecorder is the bounded ring. The zero value is not usable;
// construct with NewFlightRecorder. A nil *FlightRecorder is valid and
// discards everything.
type FlightRecorder struct {
	rank int
	dir  string

	mu     sync.Mutex
	ring   []FlightEvent
	next   int
	total  uint64
	health func() HealthReport
	reg    *Registry
	base   Snapshot
	dumps  []string
	auto   bool
	death  *RankDeathInfo
}

// NewFlightRecorder builds a recorder with its ring preallocated.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Cap <= 0 {
		cfg.Cap = DefaultFlightCap
	}
	if cfg.Dir == "" {
		cfg.Dir = os.TempDir()
	}
	return &FlightRecorder{
		rank: cfg.Rank,
		dir:  cfg.Dir,
		ring: make([]FlightEvent, cfg.Cap),
	}
}

// SetHealth installs the callback that snapshots the owning rank's
// health at dump time.
func (f *FlightRecorder) SetHealth(fn func() HealthReport) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.health = fn
	f.mu.Unlock()
}

// SetBaseline arms metric-delta tracking: postmortems report each
// counter's movement since this call.
func (f *FlightRecorder) SetBaseline(reg *Registry) {
	if f == nil || reg == nil {
		return
	}
	snap := reg.Snapshot()
	f.mu.Lock()
	f.reg = reg
	f.base = snap
	f.mu.Unlock()
}

// SetRankDeath records the death-and-promotion report embedded in every
// later postmortem. The first report wins (later deaths on the same rank
// are cascades of the first, like AutoDump's policy).
func (f *FlightRecorder) SetRankDeath(info RankDeathInfo) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.death == nil {
		f.death = &info
	}
	f.mu.Unlock()
}

// RankDeath returns the recorded death-and-promotion report, if any.
func (f *FlightRecorder) RankDeath() *RankDeathInfo {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.death == nil {
		return nil
	}
	d := *f.death
	return &d
}

// Note records one event. Nil receiver and full rings are both fine:
// the former discards, the latter evicts the oldest entry. Cat must be
// a static string; err may be nil.
func (f *FlightRecorder) Note(at int64, cat string, peer int, id uint64, count int64, err error) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = FlightEvent{At: at, Cat: cat, Peer: peer, ID: id, Count: count, err: err}
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
	}
	f.total++
	f.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.total < uint64(len(f.ring)) {
		return int(f.total)
	}
	return len(f.ring)
}

// Postmortem assembles a dump without writing it anywhere.
func (f *FlightRecorder) Postmortem(reason string, at int64) *Postmortem {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	n := len(f.ring)
	var events []FlightEvent
	if f.total < uint64(n) {
		events = append(events, f.ring[:f.total]...)
	} else {
		events = append(events, f.ring[f.next:]...)
		events = append(events, f.ring[:f.next]...)
	}
	pm := &Postmortem{
		Reason:   reason,
		Rank:     f.rank,
		At:       at,
		Recorded: f.total,
		Events:   events,
	}
	if f.death != nil {
		d := *f.death
		pm.RankDeath = &d
	}
	health := f.health
	reg, base := f.reg, f.base
	f.mu.Unlock()

	for i := range pm.Events {
		if pm.Events[i].err != nil {
			pm.Events[i].Err = pm.Events[i].err.Error()
		}
	}
	if health != nil {
		h := health()
		pm.Health = &h
	}
	if reg != nil {
		cur := reg.Snapshot()
		deltas := make(map[string]int64)
		for name, v := range cur.Counters {
			if d := v - base.Counters[name]; d != 0 {
				deltas[name] = d
			}
		}
		if len(deltas) > 0 {
			pm.MetricDeltas = deltas
		}
	}
	return pm
}

// WritePostmortem writes the dump as indented JSON.
func (f *FlightRecorder) WritePostmortem(w io.Writer, reason string, at int64) error {
	pm := f.Postmortem(reason, at)
	if pm == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pm)
}

// DumpFile writes a postmortem into the recorder's directory and
// returns the path. File names are deterministic per (rank, reason,
// dump ordinal) so repeated dumps never clobber each other.
func (f *FlightRecorder) DumpFile(reason string, at int64) (string, error) {
	if f == nil {
		return "", nil
	}
	pm := f.Postmortem(reason, at)
	f.mu.Lock()
	ordinal := len(f.dumps)
	dir := f.dir
	f.mu.Unlock()
	name := fmt.Sprintf("flight-rank%d-%s-%d.json", f.rank, sanitizeReason(reason), ordinal)
	path := filepath.Join(dir, name)
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(file)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pm); err != nil {
		file.Close()
		return "", err
	}
	if err := file.Close(); err != nil {
		return "", err
	}
	f.mu.Lock()
	f.dumps = append(f.dumps, path)
	f.mu.Unlock()
	return path, nil
}

// AutoDump writes at most one fault-triggered postmortem per recorder
// (later faults on the same rank are usually cascades of the first).
// Best effort: dump errors are reported on stderr, never propagated
// into the failing hot path.
func (f *FlightRecorder) AutoDump(reason string, at int64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	first := !f.auto
	f.auto = true
	f.mu.Unlock()
	if !first {
		return
	}
	if path, err := f.DumpFile(reason, at); err != nil {
		fmt.Fprintf(os.Stderr, "flight recorder: postmortem dump failed: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "flight recorder: postmortem written to %s\n", path)
	}
}

// Dumps lists the postmortem files written so far.
func (f *FlightRecorder) Dumps() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.dumps...)
}

// sanitizeReason keeps dump file names shell-friendly.
func sanitizeReason(reason string) string {
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason); i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '-')
		}
	}
	if len(out) == 0 {
		return "dump"
	}
	return string(out)
}
