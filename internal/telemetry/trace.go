package telemetry

import (
	"encoding/json"
	"io"
	"sort"

	"mpi3rma/internal/trace"
)

// TraceEvent is one protocol trace event in exporter form: the recording
// rank is explicit, virtual time is a plain integer (nanoseconds).
type TraceEvent struct {
	At     int64  `json:"at"`
	Rank   int    `json:"rank"`
	Cat    string `json:"cat"`
	Peer   int    `json:"peer"`
	ID     uint64 `json:"id,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Timeline merges per-rank trace rings' snapshots into one chronological
// event list.
func Timeline(perRank map[int][]trace.Event) []TraceEvent {
	merged := trace.MergeRanks(perRank)
	out := make([]TraceEvent, len(merged))
	for i, e := range merged {
		out[i] = TraceEvent{
			At:     int64(e.At),
			Rank:   e.Rank,
			Cat:    e.Cat,
			Peer:   e.Peer,
			ID:     e.ID,
			Detail: e.Detail,
		}
	}
	return out
}

// originSideCats classifies event categories recorded at the operation's
// origin rank; everything else ("apply", "probe") is recorded at the
// target with Peer naming the origin. The classification matters because
// request ids are allocated per origin engine: a span's identity is
// (origin rank, id), and each event must contribute its view of the origin.
var originSideCats = map[string]bool{
	"issue":     true,
	"enqueue":   true,
	"pack":      true,
	"batch":     true,
	"ack":       true,
	"reply":     true,
	"notify":    true,
	"probe-ack": true,
	"complete":  true,
	"fence":     true,
}

// originOf returns the origin rank of an event: the recording rank for
// origin-side categories, the peer for target-side ones (falling back to
// the recording rank when no peer was recorded).
func originOf(e TraceEvent) int {
	if originSideCats[e.Cat] || e.Peer < 0 {
		return e.Rank
	}
	return e.Peer
}

// Span is the reconstructed lifetime of one operation (or batch
// envelope): every event across all ranks that carried its id, keyed by
// the origin rank that allocated the id.
type Span struct {
	Origin int    `json:"origin"`
	ID     uint64 `json:"id"`
	Begin  int64  `json:"begin"`
	End    int64  `json:"end"`
	// Path lists the event categories in chronological order — e.g.
	// ["issue", "apply", "ack"] for a remote-complete put, or
	// ["enqueue", "pack", "batch", "apply", "notify"] for a batched one.
	Path []string `json:"path"`
	// Ranks lists the recording rank of each Path entry.
	Ranks []int `json:"ranks"`
}

// Spans groups correlated events (id != 0) into per-operation spans,
// ordered by begin time. events must be chronological (Timeline output).
func Spans(events []TraceEvent) []Span {
	type key struct {
		origin int
		id     uint64
	}
	byOp := make(map[key]*Span)
	var order []key
	for _, e := range events {
		if e.ID == 0 {
			continue
		}
		k := key{originOf(e), e.ID}
		sp := byOp[k]
		if sp == nil {
			sp = &Span{Origin: k.origin, ID: k.id, Begin: e.At, End: e.At}
			byOp[k] = sp
			order = append(order, k)
		}
		if e.At < sp.Begin {
			sp.Begin = e.At
		}
		if e.At > sp.End {
			sp.End = e.At
		}
		sp.Path = append(sp.Path, e.Cat)
		sp.Ranks = append(sp.Ranks, e.Rank)
	}
	out := make([]Span, 0, len(order))
	for _, k := range order {
		out = append(out, *byOp[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Begin < out[j].Begin })
	return out
}

// TraceDump is the JSON trace sidecar: the full merged timeline plus the
// spans reconstructed from it.
type TraceDump struct {
	Events []TraceEvent `json:"events"`
	Spans  []Span       `json:"spans"`
}

// WriteTraceJSON emits the timeline and its spans as indented JSON.
func WriteTraceJSON(w io.Writer, events []TraceEvent) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(TraceDump{Events: events, Spans: Spans(events)})
}
