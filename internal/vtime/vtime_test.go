package vtime

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %d, want 0", got)
	}
}

func TestAdvanceToMonotone(t *testing.T) {
	var c Clock
	if got := c.AdvanceTo(100); got != 100 {
		t.Fatalf("AdvanceTo(100) = %d, want 100", got)
	}
	if got := c.AdvanceTo(50); got != 100 {
		t.Fatalf("AdvanceTo(50) after 100 = %d, want 100 (clocks never go back)", got)
	}
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %d, want 100", got)
	}
}

func TestAddAccumulates(t *testing.T) {
	var c Clock
	c.Add(30)
	c.Add(12)
	if got := c.Now(); got != 42 {
		t.Fatalf("Now() = %d, want 42", got)
	}
}

func TestReserveSemantics(t *testing.T) {
	var c Clock
	start, end := c.Reserve(10, 5)
	if start != 10 || end != 15 {
		t.Fatalf("Reserve(10,5) on empty clock = (%d,%d), want (10,15)", start, end)
	}
	// Resource busy until 15; a task ready at 12 starts at 15.
	start, end = c.Reserve(12, 5)
	if start != 15 || end != 20 {
		t.Fatalf("Reserve(12,5) = (%d,%d), want (15,20)", start, end)
	}
	// A task ready far in the future starts at its ready time.
	start, end = c.Reserve(100, 1)
	if start != 100 || end != 101 {
		t.Fatalf("Reserve(100,1) = (%d,%d), want (100,101)", start, end)
	}
}

// TestReserveConcurrentNonOverlap: concurrent reservations never overlap —
// the total reserved span equals the sum of durations once the clock is
// saturated.
func TestReserveConcurrentNonOverlap(t *testing.T) {
	var c Clock
	const workers = 8
	const per = 100
	var wg sync.WaitGroup
	spans := make([][][2]Time, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s, e := c.Reserve(0, 3)
				spans[w] = append(spans[w], [2]Time{s, e})
			}
		}(w)
	}
	wg.Wait()
	if got, want := c.Now(), Time(workers*per*3); got != want {
		t.Fatalf("saturated clock at %d, want %d", got, want)
	}
	seen := make(map[Time]bool)
	for _, ws := range spans {
		for _, sp := range ws {
			if sp[1]-sp[0] != 3 {
				t.Fatalf("span %v has wrong width", sp)
			}
			if seen[sp[0]] {
				t.Fatalf("two reservations started at %d", sp[0])
			}
			seen[sp[0]] = true
		}
	}
}

func TestLater(t *testing.T) {
	if Later(3, 5) != 5 || Later(5, 3) != 5 || Later(4, 4) != 4 {
		t.Fatal("Later is not max")
	}
}

// Property: Reserve start is never before ready, and end-start == d.
func TestReserveProperties(t *testing.T) {
	var c Clock
	f := func(readyRaw uint16, dRaw uint8) bool {
		ready := Time(readyRaw)
		d := Duration(dRaw)
		start, end := c.Reserve(ready, d)
		return start >= ready && end-start == Time(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AdvanceTo returns max(now, t) and Now never decreases.
func TestAdvanceToProperties(t *testing.T) {
	var c Clock
	prev := Time(0)
	f := func(raw uint32) bool {
		tgt := Time(raw)
		got := c.AdvanceTo(tgt)
		ok := got >= tgt || got >= prev
		if got < prev {
			return false
		}
		prev = got
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkLaneLightLoad(t *testing.T) {
	var l WorkLane
	// A task ready at 1000 with the lane nearly idle completes at ready+d.
	if got := l.Complete(1000, 5); got != 1005 {
		t.Fatalf("Complete(1000,5) = %d, want 1005", got)
	}
}

func TestWorkLaneSaturation(t *testing.T) {
	var l WorkLane
	// Many tasks all ready at ~0: completions converge to cumulative work.
	var last Time
	for i := 0; i < 100; i++ {
		last = l.Complete(0, 7)
	}
	if want := Time(700); last != want {
		t.Fatalf("100 saturating tasks end at %d, want %d", last, want)
	}
	if l.Work() != 700 {
		t.Fatalf("Work() = %v, want 700", l.Work())
	}
}

// Property: WorkLane completion is at least ready+d and at least the
// cumulative work.
func TestWorkLaneProperties(t *testing.T) {
	var l WorkLane
	var work Duration
	f := func(readyRaw uint16, dRaw uint8) bool {
		ready := Time(readyRaw)
		d := Duration(dRaw)
		work += d
		end := l.Complete(ready, d)
		return end >= ready+Time(d) && end >= Time(work)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWorkLaneOrderInsensitive: the final completion bound is the same
// regardless of the order tasks are presented, for tasks ready at 0.
func TestWorkLaneOrderInsensitive(t *testing.T) {
	run := func(order []Duration) Time {
		var l WorkLane
		var max Time
		for _, d := range order {
			if e := l.Complete(0, d); e > max {
				max = e
			}
		}
		return max
	}
	a := run([]Duration{1, 2, 3, 4, 5})
	b := run([]Duration{5, 4, 3, 2, 1})
	if a != b {
		t.Fatalf("order-dependent totals: %d vs %d", a, b)
	}
	if a != 15 {
		t.Fatalf("total %d, want 15", a)
	}
}
