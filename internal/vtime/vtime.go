// Package vtime provides virtual-time clocks for the network simulator.
//
// The repository reproduces timing *shapes* from the paper rather than
// absolute wall-clock microseconds (the paper ran on a Cray XT5; we run on
// whatever host executes the tests, often a single CPU). Every simulated
// resource — an origin NIC, a target apply lane, a process-level lock —
// carries a Clock. Operations advance the clock by their modelled cost, and
// dependent operations begin no earlier than the clocks of the resources
// they use. The result is a deterministic, parallelism-independent account
// of when each operation would have completed on the modelled machine.
//
// Clocks are monotone: they only move forward. All methods are safe for
// concurrent use.
package vtime

import (
	"sync/atomic"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = time.Duration

// Clock is a monotone virtual clock owned by one simulated resource.
// The zero value is a clock at time zero, ready to use.
type Clock struct {
	ns atomic.Int64
}

// Now returns the clock's current virtual time.
func (c *Clock) Now() Time {
	return Time(c.ns.Load())
}

// AdvanceTo moves the clock forward to t if t is later than the current
// time, and returns the resulting clock value. Moving to an earlier time is
// a no-op (clocks never run backward).
func (c *Clock) AdvanceTo(t Time) Time {
	for {
		cur := c.ns.Load()
		if int64(t) <= cur {
			return Time(cur)
		}
		if c.ns.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// Add advances the clock by d from its current value and returns the new
// time. Add is atomic: concurrent Adds each consume their own span.
func (c *Clock) Add(d Duration) Time {
	return Time(c.ns.Add(int64(d)))
}

// Reserve models exclusive use of the resource for a span of duration d
// beginning no earlier than ready: it advances the clock to
// max(Now, ready) + d and returns the span's start and end times.
//
// Reserve is the core discrete-event primitive: a message that arrives at
// virtual time `ready` at a resource whose clock is at `Now` begins service
// at whichever is later, and occupies the resource for d.
func (c *Clock) Reserve(ready Time, d Duration) (start, end Time) {
	for {
		cur := c.ns.Load()
		s := cur
		if int64(ready) > s {
			s = int64(ready)
		}
		e := s + int64(d)
		if c.ns.CompareAndSwap(cur, e) {
			return Time(s), Time(e)
		}
	}
}

// Later returns the later of two virtual times.
func Later(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// WorkLane models a serial resource shared by concurrently executing
// goroutines whose virtual arrival order may differ from their real
// execution order (a NIC ingress engine, a serializer thread).
//
// A plain Clock.Reserve would order service by *real* arrival: on a
// single-CPU host, one rank's entire operation sequence can execute before
// another rank's first message, pushing a shared monotone clock far past
// the second rank's virtual arrival times and inventing queueing that the
// modelled machine would never exhibit.
//
// WorkLane is order-insensitive instead: it tracks the cumulative service
// time W demanded of the resource, and a task arriving at virtual time
// `ready` needing `d` of service completes at
//
//	end = max(ready + d, W + d)
//
// Under saturation (offered load ≥ capacity) completions converge to the
// cumulative-work bound — the resource is the bottleneck, and total time
// equals total work regardless of interleaving. Under light load the
// ready+d term dominates and the lane adds no artificial delay. The model
// assumes the lane is busy from virtual time ~0, which holds for the
// fresh-world-per-measurement methodology used by the benchmarks.
type WorkLane struct {
	work atomic.Int64
}

// Complete services a task of duration d whose inputs are ready at the
// given virtual time, returning its completion time.
func (l *WorkLane) Complete(ready Time, d Duration) Time {
	w := l.work.Add(int64(d))
	end := ready + Time(d)
	if Time(w) > end {
		end = Time(w)
	}
	return end
}

// Work returns the cumulative service time demanded so far.
func (l *WorkLane) Work() Duration {
	return Duration(l.work.Load())
}
