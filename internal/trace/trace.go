// Package trace is a lightweight per-rank protocol event recorder — the
// observability layer a production RMA implementation ships with. Layers
// that want tracing (the strawman engine exposes SetTracer) append typed
// events into a bounded ring; tests and tools snapshot the ring to check
// or display protocol timelines in virtual time.
//
// Events carry an optional operation id (the origin's request id, or the
// aggregate id for batch envelopes) so one put can be followed
// issue→enqueue→flush→wire→apply→ack→complete across ranks: merge the
// per-rank rings with MergeRanks and group by (origin, id).
//
// Recording is lock-protected and allocation-light; a nil *Ring is a
// valid no-op recorder so call sites need no nil checks.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mpi3rma/internal/vtime"
)

// NoPeer is the Peer value of an event that involves no other rank.
const NoPeer = -1

// Event is one recorded protocol step.
type Event struct {
	// At is the virtual time of the event.
	At vtime.Time
	// Cat is a short category ("issue", "apply", "ack", "probe", ...).
	Cat string
	// Peer is the other rank involved (NoPeer if none).
	Peer int
	// ID correlates the events of one operation across layers and ranks:
	// the origin request id for single operations, the aggregate id for
	// batch envelopes. 0 means uncorrelated.
	ID uint64
	// Detail is a short free-form description.
	Detail string
}

// String renders the event for timeline dumps.
func (e Event) String() string {
	id := ""
	if e.ID != 0 {
		id = fmt.Sprintf(" id=%d", e.ID)
	}
	if e.Peer >= 0 {
		return fmt.Sprintf("%10d %-8s peer=%-3d%s %s", e.At, e.Cat, e.Peer, id, e.Detail)
	}
	return fmt.Sprintf("%10d %-8s         %s %s", e.At, e.Cat, id, e.Detail)
}

// Ring is a bounded event recorder. The zero value is unusable; use New.
// A nil *Ring discards events.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool

	// Dropped counts events discarded after the ring wrapped (the
	// earliest events are overwritten, so Dropped is the overwrite
	// count).
	dropped int64
}

// DefaultCapacity is the ring size used by New(0).
const DefaultCapacity = 4096

// New returns a ring holding up to capacity events (0 = DefaultCapacity).
func New(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ring{events: make([]Event, capacity)}
}

// Record appends an uncorrelated event; on a nil ring it is a no-op.
// Negative peers normalize to NoPeer.
func (r *Ring) Record(at vtime.Time, cat string, peer int, detail string) {
	r.RecordOp(at, cat, peer, 0, detail)
}

// RecordOp appends an event correlated to operation id (0 = none); on a
// nil ring it is a no-op. Negative peers normalize to NoPeer.
func (r *Ring) RecordOp(at vtime.Time, cat string, peer int, id uint64, detail string) {
	if r == nil {
		return
	}
	if peer < 0 {
		peer = NoPeer
	}
	r.mu.Lock()
	if r.filled {
		r.dropped++
	}
	r.events[r.next] = Event{At: at, Cat: cat, Peer: peer, ID: id, Detail: detail}
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Recordf is Record with a formatted detail.
func (r *Ring) Recordf(at vtime.Time, cat string, peer int, format string, args ...any) {
	if r == nil {
		return
	}
	r.RecordOp(at, cat, peer, 0, fmt.Sprintf(format, args...))
}

// RecordOpf is RecordOp with a formatted detail.
func (r *Ring) RecordOpf(at vtime.Time, cat string, peer int, id uint64, format string, args ...any) {
	if r == nil {
		return
	}
	r.RecordOp(at, cat, peer, id, fmt.Sprintf(format, args...))
}

// Snapshot returns the recorded events in stable chronological order:
// sorted by virtual time, with recording order breaking ties. Events
// recorded after the ring wrapped would otherwise interleave with the
// survivors of earlier laps, so recording order alone is not a timeline.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []Event
	if r.filled {
		out = append(out, r.events[r.next:]...)
	}
	out = append(out, r.events[:r.next]...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Dropped returns how many events were overwritten after the ring filled.
func (r *Ring) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ByVirtualTime is Snapshot (kept for callers that predate Snapshot
// returning chronological order).
func (r *Ring) ByVirtualTime() []Event {
	return r.Snapshot()
}

// Timeline renders the events in chronological order, one per line.
func (r *Ring) Timeline() string {
	var sb strings.Builder
	for _, e := range r.Snapshot() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CountByCat tallies events per category, for test assertions.
func (r *Ring) CountByCat() map[string]int {
	counts := make(map[string]int)
	for _, e := range r.Snapshot() {
		counts[e.Cat]++
	}
	return counts
}

// RankEvent is an Event annotated with the rank that recorded it.
type RankEvent struct {
	Rank int
	Event
}

// MergeRanks folds per-rank event lists into one chronological timeline
// (stable: ties keep rank order, then each rank's recording order). This
// is the cross-rank view span reconstruction consumes.
func MergeRanks(perRank map[int][]Event) []RankEvent {
	ranks := make([]int, 0, len(perRank))
	total := 0
	for r, evs := range perRank {
		ranks = append(ranks, r)
		total += len(evs)
	}
	sort.Ints(ranks)
	out := make([]RankEvent, 0, total)
	for _, r := range ranks {
		for _, e := range perRank[r] {
			out = append(out, RankEvent{Rank: r, Event: e})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
