// Package trace is a lightweight per-rank protocol event recorder — the
// observability layer a production RMA implementation ships with. Layers
// that want tracing (the strawman engine exposes SetTracer) append typed
// events into a bounded ring; tests and tools snapshot the ring to check
// or display protocol timelines in virtual time.
//
// Recording is lock-protected and allocation-light; a nil *Ring is a
// valid no-op recorder so call sites need no nil checks.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mpi3rma/internal/vtime"
)

// Event is one recorded protocol step.
type Event struct {
	// At is the virtual time of the event.
	At vtime.Time
	// Cat is a short category ("issue", "apply", "ack", "probe", ...).
	Cat string
	// Peer is the other rank involved (-1 if none).
	Peer int
	// Detail is a short free-form description.
	Detail string
}

// String renders the event for timeline dumps.
func (e Event) String() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("%10d %-8s peer=%-3d %s", e.At, e.Cat, e.Peer, e.Detail)
	}
	return fmt.Sprintf("%10d %-8s          %s", e.At, e.Cat, e.Detail)
}

// Ring is a bounded event recorder. The zero value is unusable; use New.
// A nil *Ring discards events.
type Ring struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool

	// Dropped counts events discarded after the ring wrapped (the
	// earliest events are overwritten, so Dropped is the overwrite
	// count).
	dropped int64
}

// DefaultCapacity is the ring size used by New(0).
const DefaultCapacity = 4096

// New returns a ring holding up to capacity events (0 = DefaultCapacity).
func New(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ring{events: make([]Event, capacity)}
}

// Record appends an event; on a nil ring it is a no-op.
func (r *Ring) Record(at vtime.Time, cat string, peer int, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.filled {
		r.dropped++
	}
	r.events[r.next] = Event{At: at, Cat: cat, Peer: peer, Detail: detail}
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Recordf is Record with a formatted detail.
func (r *Ring) Recordf(at vtime.Time, cat string, peer int, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(at, cat, peer, fmt.Sprintf(format, args...))
}

// Snapshot returns the recorded events in recording order (oldest first).
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	if r.filled {
		out = append(out, r.events[r.next:]...)
	}
	out = append(out, r.events[:r.next]...)
	return out
}

// Dropped returns how many events were overwritten after the ring filled.
func (r *Ring) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ByVirtualTime returns a snapshot sorted by virtual time (stable, so
// equal timestamps keep recording order).
func (r *Ring) ByVirtualTime() []Event {
	out := r.Snapshot()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Timeline renders the events sorted by virtual time, one per line.
func (r *Ring) Timeline() string {
	var sb strings.Builder
	for _, e := range r.ByVirtualTime() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CountByCat tallies events per category, for test assertions.
func (r *Ring) CountByCat() map[string]int {
	counts := make(map[string]int)
	for _, e := range r.Snapshot() {
		counts[e.Cat]++
	}
	return counts
}
