package trace

import (
	"strings"
	"sync"
	"testing"

	"mpi3rma/internal/vtime"
)

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Record(0, "x", -1, "")
	r.Recordf(0, "x", -1, "%d", 1)
	if r.Snapshot() != nil || r.Dropped() != 0 {
		t.Fatal("nil ring should discard everything")
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	r := New(8)
	r.Record(10, "issue", 1, "put")
	r.Record(20, "apply", 0, "put")
	r.Recordf(30, "probe", 1, "threshold=%d", 5)
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("snapshot has %d events", len(evs))
	}
	if evs[0].Cat != "issue" || evs[2].Detail != "threshold=5" {
		t.Fatalf("events %v", evs)
	}
	if r.Dropped() != 0 {
		t.Fatal("nothing should be dropped yet")
	}
}

func TestRingWrap(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(0, "e", i, "")
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("wrapped ring holds %d events, want 4", len(evs))
	}
	// The four newest survive, oldest first.
	for i, e := range evs {
		if e.Peer != 6+i {
			t.Fatalf("event %d peer = %d, want %d", i, e.Peer, 6+i)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
}

func TestByVirtualTimeAndTimeline(t *testing.T) {
	r := New(8)
	r.Record(30, "late", -1, "c")
	r.Record(10, "early", 1, "a")
	r.Record(20, "mid", -1, "b")
	sorted := r.ByVirtualTime()
	if sorted[0].Cat != "early" || sorted[2].Cat != "late" {
		t.Fatalf("sorted %v", sorted)
	}
	tl := r.Timeline()
	if !strings.Contains(tl, "early") || strings.Index(tl, "early") > strings.Index(tl, "late") {
		t.Fatalf("timeline order wrong:\n%s", tl)
	}
	if !strings.Contains(tl, "peer=1") {
		t.Fatalf("timeline missing peer:\n%s", tl)
	}
}

func TestCountByCat(t *testing.T) {
	r := New(0)
	r.Record(0, "a", -1, "")
	r.Record(0, "a", -1, "")
	r.Record(0, "b", -1, "")
	counts := r.CountByCat()
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("counts %v", counts)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(1024)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(0, "e", -1, "")
			}
		}()
	}
	wg.Wait()
	if got := len(r.Snapshot()); got != 800 {
		t.Fatalf("recorded %d of 800", got)
	}
}

func TestRecordOpAndNoPeerNormalization(t *testing.T) {
	r := New(8)
	r.RecordOp(10, "issue", 2, 7, "put")
	r.Record(20, "flush", -3, "")
	r.RecordOpf(30, "apply", 0, 7, "bytes=%d", 64)
	evs := r.Snapshot()
	if evs[0].ID != 7 || evs[2].ID != 7 || evs[1].ID != 0 {
		t.Fatalf("ids %v", evs)
	}
	if evs[1].Peer != NoPeer {
		t.Fatalf("negative peer should normalize to NoPeer, got %d", evs[1].Peer)
	}
	if s := evs[0].String(); !strings.Contains(s, "id=7") {
		t.Fatalf("String misses id: %q", s)
	}
}

func TestSnapshotChronologicalAcrossWrap(t *testing.T) {
	// Record descending times so recording order disagrees with virtual
	// time, and wrap the ring so the raw storage order is rotated too.
	r := New(4)
	for i := 0; i < 6; i++ {
		r.Record(vtimeOf(100-i), "e", i, "")
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("got %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("snapshot not chronological: %v", evs)
		}
	}
	// The four newest recordings (peers 2..5) survive the wrap.
	peers := map[int]bool{}
	for _, e := range evs {
		peers[e.Peer] = true
	}
	for p := 2; p <= 5; p++ {
		if !peers[p] {
			t.Fatalf("peer %d missing from %v", p, evs)
		}
	}
}

func TestMergeRanks(t *testing.T) {
	per := map[int][]Event{
		1: {{At: 10, Cat: "issue", Peer: 0, ID: 1}, {At: 40, Cat: "complete", Peer: 0, ID: 1}},
		0: {{At: 25, Cat: "apply", Peer: 1, ID: 1}},
	}
	merged := MergeRanks(per)
	if len(merged) != 3 {
		t.Fatalf("merged %d events", len(merged))
	}
	want := []string{"issue", "apply", "complete"}
	for i, cat := range want {
		if merged[i].Cat != cat {
			t.Fatalf("merged[%d] = %v, want %s", i, merged[i], cat)
		}
	}
	if merged[0].Rank != 1 || merged[1].Rank != 0 {
		t.Fatalf("ranks wrong: %v", merged)
	}
}

// vtimeOf keeps test call sites short.
func vtimeOf(n int) (t vtime.Time) { return vtime.Time(n) }
