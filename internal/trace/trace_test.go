package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Record(0, "x", -1, "")
	r.Recordf(0, "x", -1, "%d", 1)
	if r.Snapshot() != nil || r.Dropped() != 0 {
		t.Fatal("nil ring should discard everything")
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	r := New(8)
	r.Record(10, "issue", 1, "put")
	r.Record(20, "apply", 0, "put")
	r.Recordf(30, "probe", 1, "threshold=%d", 5)
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("snapshot has %d events", len(evs))
	}
	if evs[0].Cat != "issue" || evs[2].Detail != "threshold=5" {
		t.Fatalf("events %v", evs)
	}
	if r.Dropped() != 0 {
		t.Fatal("nothing should be dropped yet")
	}
}

func TestRingWrap(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(0, "e", i, "")
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("wrapped ring holds %d events, want 4", len(evs))
	}
	// The four newest survive, oldest first.
	for i, e := range evs {
		if e.Peer != 6+i {
			t.Fatalf("event %d peer = %d, want %d", i, e.Peer, 6+i)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
}

func TestByVirtualTimeAndTimeline(t *testing.T) {
	r := New(8)
	r.Record(30, "late", -1, "c")
	r.Record(10, "early", 1, "a")
	r.Record(20, "mid", -1, "b")
	sorted := r.ByVirtualTime()
	if sorted[0].Cat != "early" || sorted[2].Cat != "late" {
		t.Fatalf("sorted %v", sorted)
	}
	tl := r.Timeline()
	if !strings.Contains(tl, "early") || strings.Index(tl, "early") > strings.Index(tl, "late") {
		t.Fatalf("timeline order wrong:\n%s", tl)
	}
	if !strings.Contains(tl, "peer=1") {
		t.Fatalf("timeline missing peer:\n%s", tl)
	}
}

func TestCountByCat(t *testing.T) {
	r := New(0)
	r.Record(0, "a", -1, "")
	r.Record(0, "a", -1, "")
	r.Record(0, "b", -1, "")
	counts := r.CountByCat()
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("counts %v", counts)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(1024)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(0, "e", -1, "")
			}
		}()
	}
	wg.Wait()
	if got := len(r.Snapshot()); got != 800 {
		t.Fatalf("recorded %d of 800", got)
	}
}
