package runtime

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
)

func world(t *testing.T, ranks int) *World {
	t.Helper()
	w := NewWorld(Config{Ranks: ranks})
	t.Cleanup(w.Close)
	return w
}

func TestSendRecvBasic(t *testing.T) {
	w := world(t, 2)
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 7, []byte("hello"))
		} else {
			data, from := p.Recv(0, 7)
			if string(data) != "hello" || from != 0 {
				t.Errorf("got %q from %d", data, from)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMatching(t *testing.T) {
	w := world(t, 2)
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("one"))
			p.Send(1, 2, []byte("two"))
			return
		}
		// Receive out of send order by tag.
		two, _ := p.Recv(0, 2)
		one, _ := p.Recv(0, 1)
		if string(two) != "two" || string(one) != "one" {
			t.Errorf("tag matching broken: %q %q", one, two)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcards(t *testing.T) {
	w := world(t, 3)
	err := w.Run(func(p *Proc) {
		if p.Rank() != 0 {
			p.Send(0, p.Rank(), []byte{byte(p.Rank())})
			return
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			data, from := p.Recv(AnySource, AnyTag)
			if len(data) != 1 || int(data[0]) != from {
				t.Errorf("payload %v from %d", data, from)
			}
			seen[from] = true
		}
		if !seen[1] || !seen[2] {
			t.Errorf("sources seen: %v", seen)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualTimeAdvancesAcrossMessages(t *testing.T) {
	w := world(t, 2)
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Advance(1000000) // rank 0 is 1ms ahead
			p.Send(1, 0, nil)
		} else {
			before := p.Now()
			p.Recv(0, 0)
			if p.Now() <= before || p.Now() < 1000000 {
				t.Errorf("virtual time did not propagate: %d", p.Now())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, ranks := range []int{2, 3, 5, 8} {
		ranks := ranks
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			w := world(t, ranks)
			var entered atomic.Int32
			err := w.Run(func(p *Proc) {
				for round := 0; round < 5; round++ {
					entered.Add(1)
					p.Barrier()
					// After the barrier, everyone must have entered
					// this round.
					if got := entered.Load(); got < int32((round+1)*ranks) {
						t.Errorf("rank %d round %d: only %d entries after barrier", p.Rank(), round, got)
					}
					p.Barrier()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 7} {
		ranks := ranks
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			w := world(t, ranks)
			err := w.Run(func(p *Proc) {
				for root := 0; root < ranks; root++ {
					var data []byte
					if p.Comm().Rank() == root {
						data = []byte(fmt.Sprintf("from-%d", root))
					}
					got := p.Comm().Bcast(root, data)
					want := fmt.Sprintf("from-%d", root)
					if string(got) != want {
						t.Errorf("rank %d: bcast(root=%d) = %q, want %q", p.Rank(), root, got, want)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGather(t *testing.T) {
	w := world(t, 4)
	err := w.Run(func(p *Proc) {
		parts := p.Comm().Gather(2, []byte{byte(p.Rank() * 10)})
		if p.Rank() != 2 {
			if parts != nil {
				t.Errorf("non-root got %v", parts)
			}
			return
		}
		for r, part := range parts {
			if len(part) != 1 || part[0] != byte(r*10) {
				t.Errorf("gathered[%d] = %v", r, part)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherAndAllreduce(t *testing.T) {
	w := world(t, 5)
	err := w.Run(func(p *Proc) {
		all := p.Comm().AllgatherInt64(int64(p.Rank() + 1))
		for r, v := range all {
			if v != int64(r+1) {
				t.Errorf("allgather[%d] = %d", r, v)
			}
		}
		if sum := p.Comm().AllreduceInt64(OpSum, int64(p.Rank()+1)); sum != 15 {
			t.Errorf("sum = %d, want 15", sum)
		}
		if min := p.Comm().AllreduceInt64(OpMin, int64(p.Rank()+1)); min != 1 {
			t.Errorf("min = %d", min)
		}
		if max := p.Comm().AllreduceInt64(OpMax, int64(p.Rank()+1)); max != 5 {
			t.Errorf("max = %d", max)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSubAndIsolation(t *testing.T) {
	w := world(t, 4)
	err := w.Run(func(p *Proc) {
		comm := p.Comm()
		if p.Rank() < 2 {
			sub := comm.Sub([]int{0, 1})
			if sub.Size() != 2 || sub.Rank() != p.Rank() {
				t.Errorf("sub size/rank = %d/%d", sub.Size(), sub.Rank())
			}
			// Tag spaces are isolated: a message on sub is invisible on
			// the world comm.
			if p.Rank() == 0 {
				sub.Send(1, 5, []byte("sub"))
				comm.Send(1, 5, []byte("world"))
			} else {
				data, _ := comm.Recv(0, 5)
				if string(data) != "world" {
					t.Errorf("world recv got %q", data)
				}
				data, _ = sub.Recv(0, 5)
				if string(data) != "sub" {
					t.Errorf("sub recv got %q", data)
				}
			}
			sub.Barrier()
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSplit(t *testing.T) {
	w := world(t, 6)
	err := w.Run(func(p *Proc) {
		sub := p.Comm().Split(p.Rank() % 2)
		if sub.Size() != 3 {
			t.Errorf("split size = %d, want 3", sub.Size())
		}
		want := p.Rank() / 2
		if sub.Rank() != want {
			t.Errorf("split rank = %d, want %d", sub.Rank(), want)
		}
		sum := sub.AllreduceInt64(OpSum, int64(p.Rank()))
		wantSum := int64(0 + 2 + 4)
		if p.Rank()%2 == 1 {
			wantSum = 1 + 3 + 5
		}
		if sum != wantSum {
			t.Errorf("split-comm sum = %d, want %d", sum, wantSum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommIDsAgree(t *testing.T) {
	w := world(t, 3)
	ids := make([]uint64, 3)
	err := w.Run(func(p *Proc) {
		sub := p.Comm().Dup()
		ids[p.Rank()] = sub.ID()
	})
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] == 0 || ids[0] != ids[1] || ids[1] != ids[2] {
		t.Fatalf("communicator ids disagree: %v", ids)
	}
}

func TestLocalMemoryHelpers(t *testing.T) {
	w := world(t, 1)
	err := w.Run(func(p *Proc) {
		r := p.Alloc(32)
		p.WriteLocal(r, 4, []byte{9, 8, 7})
		got := p.ReadLocal(r, 4, 3)
		if !bytes.Equal(got, []byte{9, 8, 7}) {
			t.Errorf("readback %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteLocalBounds(t *testing.T) {
	w := world(t, 1)
	err := w.Run(func(p *Proc) {
		r := p.Alloc(4)
		defer func() {
			if recover() == nil {
				t.Error("out-of-region write should panic")
			}
		}()
		p.WriteLocal(r, 2, []byte{1, 2, 3})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReportsPanics(t *testing.T) {
	w := world(t, 2)
	err := w.Run(func(p *Proc) {
		if p.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("Run should surface the rank panic")
	}
}

func TestPerRankByteOrderAndCoherence(t *testing.T) {
	w := NewWorld(Config{
		Ranks: 2,
		ByteOrder: func(r int) datatype.ByteOrder {
			if r == 1 {
				return datatype.BigEndian
			}
			return datatype.LittleEndian
		},
		Coherence: func(r int) memsim.Coherence {
			if r == 1 {
				return memsim.NonCoherentWriteThrough
			}
			return memsim.Coherent
		},
	})
	defer w.Close()
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			if p.ByteOrder() != datatype.LittleEndian || p.Mem().Coherence() != memsim.Coherent {
				t.Error("rank 0 config wrong")
			}
		} else {
			if p.ByteOrder() != datatype.BigEndian || p.Mem().Coherence() != memsim.NonCoherentWriteThrough {
				t.Error("rank 1 config wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtSingleton(t *testing.T) {
	w := world(t, 1)
	err := w.Run(func(p *Proc) {
		a := p.Ext("k", func() any { return new(int) })
		b := p.Ext("k", func() any { return new(int) })
		if a != b {
			t.Error("Ext created two engines for one key")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
