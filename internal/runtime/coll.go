package runtime

import (
	"encoding/binary"
	"fmt"
)

// collMask separates collective traffic from user point-to-point traffic:
// collectives send under commID^collMask so a user Recv with AnyTag can
// never match them (MPI's separate communication contexts).
const collMask uint64 = 1 << 63

// nextCollTag reserves a fresh tag namespace for one blocking collective.
// Each collective may use up to 64 sub-tags (rounds).
func (c *Comm) nextCollTag() int {
	seq := c.collSeq
	c.collSeq++
	return int(seq * 64)
}

func (c *Comm) collSend(dst, tag int, data []byte) {
	c.proc.sendRaw(c.id^collMask, c.WorldRank(dst), tag, data)
}

func (c *Comm) collRecv(src, tag int) []byte {
	worldSrc := c.WorldRank(src)
	data, _ := c.proc.recvRaw(c.id^collMask, worldSrc, tag)
	return data
}

// Barrier blocks until every member of the communicator has entered it.
// It uses the dissemination algorithm: ceil(log2(n)) rounds, each member
// signalling (rank + 2^k) mod n and waiting for (rank - 2^k) mod n, which
// transitively orders every exit after every entry — in wall time and in
// virtual time alike.
func (c *Comm) Barrier() {
	n := c.Size()
	if n == 1 {
		return
	}
	base := c.nextCollTag()
	me := c.Rank()
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		to := (me + k) % n
		from := (me - k + n) % n
		c.collSend(to, base+round, nil)
		c.collRecv(from, base+round)
	}
}

// Bcast distributes root's data to every member and returns it (members
// other than root pass nil). It uses a binomial tree rooted at root.
func (c *Comm) Bcast(root int, data []byte) []byte {
	n := c.Size()
	if n == 1 {
		return data
	}
	base := c.nextCollTag()
	me := c.Rank()
	// Rotate ranks so the root is virtual rank 0.
	vrank := (me - root + n) % n
	if vrank != 0 {
		// Receive from parent: clear the lowest set bit of vrank.
		parent := (vrank&(vrank-1) + root) % n
		data = c.collRecv(parent, base)
	}
	// Forward to children: vrank + 2^k for each k above vrank's lowest
	// set bit range.
	for k := 1; k < n; k <<= 1 {
		if vrank&(k-1) == 0 && vrank&k == 0 {
			child := vrank + k
			if child < n {
				c.collSend((child+root)%n, base, data)
			}
		}
	}
	return data
}

// Gather collects each member's data at root, returned as a per-rank slice
// (nil on non-root members). Linear: fine at the scales the experiments
// use.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	base := c.nextCollTag()
	me := c.Rank()
	if me != root {
		c.collSend(root, base, data)
		return nil
	}
	out := make([][]byte, c.Size())
	out[root] = append([]byte(nil), data...)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		out[r] = c.collRecv(r, base)
	}
	return out
}

// AllgatherInt64 collects one int64 from each member at every member.
func (c *Comm) AllgatherInt64(v int64) []int64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	parts := c.Gather(0, buf[:])
	var flat []byte
	if c.Rank() == 0 {
		flat = make([]byte, 0, 8*c.Size())
		for r, part := range parts {
			if len(part) != 8 {
				panic(fmt.Sprintf("runtime: AllgatherInt64: rank %d sent %d bytes", r, len(part)))
			}
			flat = append(flat, part...)
		}
	}
	flat = c.Bcast(0, flat)
	out := make([]int64, c.Size())
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(flat[8*i:]))
	}
	return out
}

// ReduceOp names an allreduce combining operation.
type ReduceOp int

const (
	// OpSum adds.
	OpSum ReduceOp = iota
	// OpMin takes the minimum.
	OpMin
	// OpMax takes the maximum.
	OpMax
)

// AllreduceInt64 combines one int64 from each member with op and returns
// the result at every member.
func (c *Comm) AllreduceInt64(op ReduceOp, v int64) int64 {
	all := c.AllgatherInt64(v)
	acc := all[0]
	for _, x := range all[1:] {
		switch op {
		case OpSum:
			acc += x
		case OpMin:
			if x < acc {
				acc = x
			}
		case OpMax:
			if x > acc {
				acc = x
			}
		default:
			panic(fmt.Sprintf("runtime: unknown reduce op %d", op))
		}
	}
	return acc
}
