package runtime

import (
	gort "runtime"
	"testing"
	"time"

	"mpi3rma/internal/simnet"
)

// TestCustomCostModelPlumbed: a slower configured network yields later
// virtual times for the same exchange.
func TestCustomCostModelPlumbed(t *testing.T) {
	run := func(latency time.Duration) int64 {
		w := NewWorld(Config{
			Ranks: 2,
			Cost: simnet.CostModel{
				Latency:         latency,
				Overhead:        time.Microsecond,
				DeliverOverhead: 100 * time.Nanosecond,
				Gap:             100 * time.Nanosecond,
				PerKB:           512 * time.Nanosecond,
			},
		})
		defer w.Close()
		var at int64
		err := w.Run(func(p *Proc) {
			if p.Rank() == 0 {
				p.Send(1, 0, []byte("x"))
				return
			}
			p.Recv(0, 0)
			at = int64(p.Now())
		})
		if err != nil {
			t.Fatal(err)
		}
		return at
	}
	fast := run(time.Microsecond)
	slow := run(time.Millisecond)
	if slow-fast < int64(900*time.Microsecond) {
		t.Fatalf("latency not plumbed: fast=%d slow=%d", fast, slow)
	}
}

// TestFaultPlanPlumbed: a fault plan passed through Config reaches the
// network, and the reliable-delivery relay it enables absorbs the injected
// duplicates (runtime p2p rides the relay automatically).
func TestFaultPlanPlumbed(t *testing.T) {
	w := NewWorld(Config{
		Ranks:  2,
		Faults: &simnet.FaultPlan{Seed: 11, Default: simnet.LinkFaults{Dup: 1}},
	})
	defer w.Close()
	err := w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, []byte("hi"))
		} else {
			p.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Net().FaultsDuplicated.Value() == 0 {
		t.Fatal("fault plan never injected a duplicate")
	}
	if w.Net().DupDropped.Value() == 0 {
		t.Fatal("relay never deduplicated the injected duplicates")
	}
}

// TestQueueDepthPlumbed: a deep exchange works with a custom queue depth.
func TestQueueDepthPlumbed(t *testing.T) {
	w := NewWorld(Config{Ranks: 2, QueueDepth: 8})
	defer w.Close()
	err := w.Run(func(p *Proc) {
		const msgs = 100 // far beyond the queue depth: back-pressure works
		if p.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				p.Send(1, 0, []byte{byte(i)})
			}
		} else {
			for i := 0; i < msgs; i++ {
				data, _ := p.Recv(0, 0)
				if data[0] != byte(i) {
					t.Errorf("message %d out of order", i)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCommSubPanics: misuse of Sub is rejected loudly.
func TestCommSubPanics(t *testing.T) {
	w := NewWorld(Config{Ranks: 2})
	defer w.Close()
	err := w.Run(func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Sub with duplicate ranks should panic")
				}
			}()
			p.Comm().Sub([]int{0, 0})
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Sub excluding the caller should panic")
				}
			}()
			p.Comm().Sub([]int{1})
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("WorldRank out of range should panic")
				}
			}()
			p.Comm().WorldRank(9)
		}()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorldCloseReleasesGoroutines: creating and closing many worlds must
// not leak agent or scrambler goroutines.
func TestWorldCloseReleasesGoroutines(t *testing.T) {
	before := gort.NumGoroutine()
	for i := 0; i < 10; i++ {
		w := NewWorld(Config{Ranks: 4, UnorderedNet: i%2 == 1, Seed: int64(i)})
		err := w.Run(func(p *Proc) {
			if p.Rank() == 0 {
				p.Send(1, 0, []byte("ping"))
			} else if p.Rank() == 1 {
				p.Recv(0, 0)
			}
			p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
	}
	// Allow the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if gort.NumGoroutine() <= before+2 {
			return
		}
		gort.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after closing 10 worlds", before, gort.NumGoroutine())
}
