package runtime

import (
	"fmt"
	"sync"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/portals"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// Wildcards for Recv.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// kindPt2pt is the runtime's tagged point-to-point message kind.
const kindPt2pt = portals.KindRuntimeBase

// pending is one arrived-but-unmatched point-to-point message.
type pending struct {
	src    int // world rank
	tag    int
	commID uint64
	data   []byte
	at     vtime.Time
}

// Proc is one rank's process context. All methods are intended to be
// called from the rank's own goroutine, except where noted.
type Proc struct {
	world *World
	rank  int
	nic   *portals.NIC
	mem   *memsim.Memory
	order datatype.ByteOrder

	mu    sync.Mutex
	cond  *sync.Cond
	inbox []*pending

	// commCounters numbers communicator creations per parent, so every
	// member derives the same id for a collectively created communicator.
	commCounters map[uint64]uint64

	// ext holds per-layer engines attached to this rank (the strawman RMA
	// engine, the MPI-2 window engine, ...), keyed by layer name.
	extMu sync.Mutex
	ext   map[string]any

	self *Comm // the world communicator as seen by this rank
}

func newProc(w *World, rank int, nic *portals.NIC, mem *memsim.Memory, order datatype.ByteOrder) *Proc {
	p := &Proc{
		world:        w,
		rank:         rank,
		nic:          nic,
		mem:          mem,
		order:        order,
		commCounters: make(map[uint64]uint64),
		ext:          make(map[string]any),
	}
	p.cond = sync.NewCond(&p.mu)
	nic.RegisterHandler(kindPt2pt, p.handlePt2pt)
	ranks := make([]int, w.cfg.Ranks)
	for i := range ranks {
		ranks[i] = i
	}
	p.self = &Comm{proc: p, id: 0, ranks: ranks, me: rank}
	return p
}

// Rank returns this process's world rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size (compute ranks; spares excluded).
func (p *Proc) Size() int { return p.world.cfg.Ranks }

// IsSpare reports whether this process is a standby spare — outside the
// world communicator, idle until bound to a dead rank by the membership
// service.
func (p *Proc) IsSpare() bool { return p.rank >= p.world.cfg.Ranks }

// World returns the enclosing world.
func (p *Proc) World() *World { return p.world }

// NIC returns the rank's network interface.
func (p *Proc) NIC() *portals.NIC { return p.nic }

// Mem returns the rank's memory.
func (p *Proc) Mem() *memsim.Memory { return p.mem }

// ByteOrder returns the rank's memory byte order.
func (p *Proc) ByteOrder() datatype.ByteOrder { return p.order }

// Comm returns the world communicator.
func (p *Proc) Comm() *Comm { return p.self }

// Now returns the rank's current virtual time.
func (p *Proc) Now() vtime.Time { return p.nic.Now() }

// Advance models local computation taking d of virtual time.
func (p *Proc) Advance(d vtime.Duration) { p.nic.CPU().Add(d) }

// Ext returns the per-rank engine registered under key, creating it with
// mk on first use. Layers use it to attach exactly one engine (and one set
// of message handlers) per rank. mk may itself call Ext (a layer attaching
// the layer it builds on), so the lock is not held across it; Ext is meant
// to be called from the rank's own goroutine, where that is race-free.
func (p *Proc) Ext(key string, mk func() any) any {
	p.extMu.Lock()
	if v, ok := p.ext[key]; ok {
		p.extMu.Unlock()
		return v
	}
	p.extMu.Unlock()
	v := mk()
	p.extMu.Lock()
	defer p.extMu.Unlock()
	if existing, ok := p.ext[key]; ok {
		return existing
	}
	p.ext[key] = v
	return v
}

// ExtPeek returns the extension stored under key without creating one —
// the non-allocating counterpart of Ext for cross-rank inspection (a
// rank's observability layer looking up peers' engines must not attach
// fresh ones as a side effect).
func (p *Proc) ExtPeek(key string) (any, bool) {
	p.extMu.Lock()
	defer p.extMu.Unlock()
	v, ok := p.ext[key]
	return v, ok
}

// closeExts shuts down attached engines that own background goroutines
// (anything implementing Close). Called by World.Close.
func (p *Proc) closeExts() {
	p.extMu.Lock()
	defer p.extMu.Unlock()
	for _, v := range p.ext {
		if c, ok := v.(interface{ Close() }); ok {
			c.Close()
		}
	}
}

// Alloc carves a region out of the rank's memory, panicking on exhaustion
// (rank memory is sized by Config.MemSize).
func (p *Proc) Alloc(size int) memsim.Region {
	return p.mem.MustAlloc(size)
}

// WriteLocal writes data into the rank's own memory at off within region,
// through the rank's scalar unit (cache model applies).
func (p *Proc) WriteLocal(r memsim.Region, off int, data []byte) {
	if !r.Contains(off, len(data)) {
		panic(fmt.Sprintf("runtime: local write [%d,%d) outside region of %d bytes", off, off+len(data), r.Size))
	}
	if err := p.mem.LocalWrite(r.Offset+off, data); err != nil {
		panic(err)
	}
}

// ReadLocal reads n bytes at off within region through the rank's scalar
// unit (cache model applies: on a non-coherent rank this can be stale).
func (p *Proc) ReadLocal(r memsim.Region, off, n int) []byte {
	if !r.Contains(off, n) {
		panic(fmt.Sprintf("runtime: local read [%d,%d) outside region of %d bytes", off, off+n, r.Size))
	}
	buf := make([]byte, n)
	if err := p.mem.LocalRead(r.Offset+off, buf); err != nil {
		panic(err)
	}
	return buf
}

// handlePt2pt enqueues an arrived message for matching. It runs on the NIC
// agent goroutine.
func (p *Proc) handlePt2pt(m *simnet.Message, at vtime.Time) {
	p.mu.Lock()
	p.inbox = append(p.inbox, &pending{
		src:    m.Src,
		tag:    int(int64(m.Hdr[0])),
		commID: m.Hdr[1],
		data:   m.Payload,
		at:     at,
	})
	p.mu.Unlock()
	p.cond.Broadcast()
}

// sendRaw ships data to a world rank under (commID, tag). It is an eager,
// locally blocking send: the data is copied out before return.
func (p *Proc) sendRaw(commID uint64, worldDst, tag int, data []byte) {
	m := &simnet.Message{
		Dst:     worldDst,
		Kind:    kindPt2pt,
		Payload: append([]byte(nil), data...),
	}
	m.Hdr[0] = uint64(int64(tag))
	m.Hdr[1] = commID
	if _, err := p.nic.Send(p.Now(), m); err != nil {
		panic(err)
	}
	p.nic.CPU().AdvanceTo(m.SentAt)
}

// recvRaw blocks until a message matching (commID, worldSrc|AnySource,
// tag|AnyTag) arrives, removes it from the inbox, advances the rank's
// virtual clock to the delivery time, and returns the payload and the
// sender's world rank.
func (p *Proc) recvRaw(commID uint64, worldSrc, tag int) ([]byte, int) {
	p.mu.Lock()
	for {
		for i, msg := range p.inbox {
			if msg.commID != commID {
				continue
			}
			if worldSrc != AnySource && msg.src != worldSrc {
				continue
			}
			if tag != AnyTag && msg.tag != tag {
				continue
			}
			p.inbox = append(p.inbox[:i], p.inbox[i+1:]...)
			p.mu.Unlock()
			p.nic.CPU().AdvanceTo(msg.at)
			return msg.data, msg.src
		}
		p.cond.Wait()
	}
}

// Send ships data to world rank dst under tag on the world communicator.
// Unlike Comm.Send it is addressed by world rank directly, so it also
// reaches spare ranks (which live outside the world communicator).
func (p *Proc) Send(dst, tag int, data []byte) { p.sendRaw(p.self.id, dst, tag, data) }

// Recv receives a message from world rank src (or AnySource) under tag (or
// AnyTag) on the world communicator, returning the payload and the
// sender's world rank. Like Send it accepts spare ranks.
func (p *Proc) Recv(src, tag int) ([]byte, int) { return p.recvRaw(p.self.id, src, tag) }

// Barrier synchronizes all world ranks.
func (p *Proc) Barrier() { p.self.Barrier() }
