package runtime

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Comm is a communicator: an ordered group of world ranks with an isolated
// tag space. Like an MPI communicator, a Comm value is each member's local
// handle; members obtain matching handles by calling the same constructor
// collectively in the same order.
type Comm struct {
	proc  *Proc
	id    uint64
	ranks []int // world ranks, position = comm rank
	me    int   // this process's world rank

	// collSeq numbers the blocking collectives issued on this handle; all
	// members advance it in lockstep because collectives are collective.
	collSeq uint64
}

// ID returns the communicator id (equal on all members).
func (c *Comm) ID() uint64 { return c.id }

// Size returns the number of members.
func (c *Comm) Size() int { return len(c.ranks) }

// Rank returns this process's rank within the communicator, or -1 if the
// process is not a member.
func (c *Comm) Rank() int {
	for i, r := range c.ranks {
		if r == c.me {
			return i
		}
	}
	return -1
}

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(r int) int {
	if r < 0 || r >= len(c.ranks) {
		panic(fmt.Sprintf("runtime: comm rank %d out of range [0,%d)", r, len(c.ranks)))
	}
	return c.ranks[r]
}

// Ranks returns a copy of the member list (world ranks in comm-rank
// order).
func (c *Comm) Ranks() []int { return append([]int(nil), c.ranks...) }

// Proc returns the owning process.
func (c *Comm) Proc() *Proc { return c.proc }

// commID derives the id of a child communicator deterministically from the
// parent id, a per-parent creation counter, and the member list, so every
// member computes the same id without communication.
func commID(parent uint64, counter uint64, ranks []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(parent)
	put(counter)
	for _, r := range ranks {
		put(uint64(r))
	}
	// Avoid colliding with the world communicator's fixed id 0.
	id := h.Sum64()
	if id == 0 {
		id = 1
	}
	return id
}

// Sub creates a child communicator containing the given comm-local ranks
// of c (in the given order). Every listed member must call Sub with the
// same list, in the same collective order relative to other Sub calls on
// c; non-members must not call it. The call involves no communication.
func (c *Comm) Sub(commRanks []int) *Comm {
	world := make([]int, len(commRanks))
	seen := make(map[int]bool, len(commRanks))
	for i, r := range commRanks {
		wr := c.WorldRank(r)
		if seen[wr] {
			panic(fmt.Sprintf("runtime: duplicate rank %d in Sub", r))
		}
		seen[wr] = true
		world[i] = wr
	}
	if !seen[c.me] {
		panic("runtime: calling process is not a member of the new communicator")
	}
	c.proc.mu.Lock()
	counter := c.proc.commCounters[c.id]
	c.proc.commCounters[c.id] = counter + 1
	c.proc.mu.Unlock()
	return &Comm{
		proc:  c.proc,
		id:    commID(c.id, counter, world),
		ranks: world,
		me:    c.me,
	}
}

// Dup creates a communicator with the same group but an isolated tag
// space. Collective over all members.
func (c *Comm) Dup() *Comm {
	local := make([]int, len(c.ranks))
	for i := range local {
		local[i] = i
	}
	return c.Sub(local)
}

// Split partitions c by color, like MPI_Comm_split with key = current
// rank. All members must call it; members passing the same color end up in
// the same child communicator, ordered by their rank in c. Collective and
// communication-free: every member computes every group, but needs the
// colors of all members, so colors are exchanged via Allgather.
func (c *Comm) Split(color int) *Comm {
	colors := c.AllgatherInt64(int64(color))
	var mine []int
	for r, col := range colors {
		if col == int64(color) {
			mine = append(mine, r)
		}
	}
	sort.Ints(mine)
	return c.Sub(mine)
}

// Send ships data to comm rank dst under tag.
func (c *Comm) Send(dst, tag int, data []byte) {
	c.proc.sendRaw(c.id, c.WorldRank(dst), tag, data)
}

// Recv receives from comm rank src (or AnySource) under tag (or AnyTag),
// returning the payload and the sender's comm rank.
func (c *Comm) Recv(src, tag int) ([]byte, int) {
	worldSrc := AnySource
	if src != AnySource {
		worldSrc = c.WorldRank(src)
	}
	data, from := c.proc.recvRaw(c.id, worldSrc, tag)
	for i, r := range c.ranks {
		if r == from {
			return data, i
		}
	}
	panic(fmt.Sprintf("runtime: received message on comm %d from non-member world rank %d", c.id, from))
}
