// Package runtime provides the MPI-like process runtime the RMA layers run
// on: a World of ranks (goroutines with private simulated memories joined
// only by the simulated network), tagged point-to-point messaging,
// communicators, and the handful of collectives the paper's experiments
// need (barrier, broadcast, allreduce, gather).
//
// Each rank's address space is a memsim.Memory; rank user code receives a
// *Proc and may touch only its own memory. All inter-rank data motion goes
// through simnet messages, so one-sided semantics in the layers above are
// honest: there is no shared Go memory between ranks' user data.
package runtime

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/portals"
	"mpi3rma/internal/simnet"
)

// DefaultMemSize is the per-rank memory size when Config.MemSize is 0.
const DefaultMemSize = 16 << 20

// Config configures a World.
type Config struct {
	// Ranks is the number of compute processes.
	Ranks int
	// Spares is the number of extra standby processes kept outside the
	// world communicator. A spare idles until the membership service
	// binds it to a dead rank; the rebuild protocol then replays the
	// dead rank's replicated regions onto it (DESIGN.md §14).
	Spares int
	// Ordered selects whether the network preserves per-pair order
	// (default false in Go zero-value terms, so NewWorld flips the
	// default: pass UnorderedNet to get an unordered network).
	UnorderedNet bool
	// ReorderWindow is the unordered network's scramble window (0 =
	// default).
	ReorderWindow int
	// Seed seeds the network scrambler.
	Seed int64
	// Cost overrides the network cost model (zero value = default).
	Cost simnet.CostModel
	// SoftwareAcks disables hardware acknowledgement generation,
	// modelling networks that cannot report remote completion (E4).
	SoftwareAcks bool
	// MemSize is the per-rank memory size in bytes (0 = DefaultMemSize).
	MemSize int
	// Coherence returns the memory coherence model for a rank; nil means
	// every rank is cache-coherent.
	Coherence func(rank int) memsim.Coherence
	// ByteOrder returns the byte order of a rank; nil means every rank is
	// little-endian. Mixed worlds model the hybrid systems of Section
	// III-B3.
	ByteOrder func(rank int) datatype.ByteOrder
	// QueueDepth overrides the per-endpoint delivery queue capacity.
	QueueDepth int
	// Faults installs a deterministic fault-injection plan on the network
	// and enables the reliable-delivery relay on every NIC so protocol
	// layers keep their exactly-once view of the wire.
	Faults *simnet.FaultPlan
	// Retry overrides the relay's retry policy (zero fields = defaults).
	// Setting Retry without Faults also enables the relay, e.g. to pin
	// its overhead on a lossless wire.
	Retry *portals.RetryPolicy
}

// World is a set of ranks joined by a simulated network.
type World struct {
	cfg     Config
	net     *simnet.Network
	procs   []*Proc
	members *Membership
}

// NewWorld builds the network, memories, NICs and rank structures.
func NewWorld(cfg Config) *World {
	if cfg.Ranks <= 0 {
		panic("runtime: Config.Ranks must be positive")
	}
	if cfg.MemSize == 0 {
		cfg.MemSize = DefaultMemSize
	}
	total := cfg.Ranks + cfg.Spares
	net := simnet.New(simnet.Config{
		Ranks:         total,
		Ordered:       !cfg.UnorderedNet,
		ReorderWindow: cfg.ReorderWindow,
		Seed:          cfg.Seed,
		Cost:          cfg.Cost,
		QueueDepth:    cfg.QueueDepth,
	})
	if cfg.Faults != nil {
		net.SetFaults(cfg.Faults)
	}
	w := &World{cfg: cfg, net: net}
	w.members = newMembership(net, cfg.Ranks, total)
	w.procs = make([]*Proc, total)
	for r := 0; r < total; r++ {
		coh := memsim.Coherent
		if cfg.Coherence != nil {
			coh = cfg.Coherence(r)
		}
		order := datatype.LittleEndian
		if cfg.ByteOrder != nil {
			order = cfg.ByteOrder(r)
		}
		mem := memsim.New(memsim.Config{Size: cfg.MemSize, Coherence: coh})
		nic := portals.NewNIC(net.Endpoint(r), mem, portals.Config{HardwareAcks: !cfg.SoftwareAcks})
		if cfg.Faults != nil || cfg.Retry != nil {
			var pol portals.RetryPolicy
			if cfg.Retry != nil {
				pol = *cfg.Retry
			}
			if pol.Seed == 0 && cfg.Faults != nil {
				pol.Seed = cfg.Faults.Seed
			}
			nic.EnableReliability(pol)
		}
		w.procs[r] = newProc(w, r, nic, mem, order)
	}
	return w
}

// Net returns the underlying network (for counters in tests and benches).
func (w *World) Net() *simnet.Network { return w.net }

// Members returns the world's rank-liveness membership service.
func (w *World) Members() *Membership { return w.members }

// Size returns the number of compute ranks (spares excluded).
func (w *World) Size() int { return w.cfg.Ranks }

// TotalRanks returns the number of processes including spares.
func (w *World) TotalRanks() int { return len(w.procs) }

// Proc returns rank r's process structure. Intended for test setup;
// experiment code receives its own *Proc via Run.
func (w *World) Proc(r int) *Proc { return w.procs[r] }

// Run executes fn once per rank (spares included — branch on
// Proc.IsSpare for spare-specific behaviour), each on its own goroutine,
// and waits for all of them. A panic in any rank is captured and returned immediately as
// an error naming the rank; the surviving rank goroutines are then leaked
// rather than deadlocking the caller (Run is intended for tests and
// benches, where the failure aborts the process anyway).
func (w *World) Run(fn func(p *Proc)) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(w.procs))
	for _, p := range w.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errCh <- fmt.Errorf("rank %d panicked: %v", p.rank, r)
				}
			}()
			// Label the rank goroutine so CPU/heap profiles attribute
			// samples to ranks (go tool pprof -tagfocus rank=N).
			pprof.Do(context.Background(), pprof.Labels("rank", strconv.Itoa(p.rank), "role", "rank"), func(context.Context) {
				fn(p)
			})
		}(p)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case err := <-errCh:
		return err
	case <-done:
		select {
		case err := <-errCh:
			return err
		default:
			return nil
		}
	}
}

// Close stops every rank's NIC agent, shuts down attached layer engines
// (serializer goroutines), and tears the network down. Call it after all
// Run invocations are finished.
func (w *World) Close() {
	for _, p := range w.procs {
		p.nic.Stop()
	}
	for _, p := range w.procs {
		p.closeExts()
	}
	w.net.Close()
}
