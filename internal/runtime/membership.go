package runtime

import (
	"fmt"
	"sync"

	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// Membership is the world-global rank liveness view: the stand-in for the
// RAS (reliability, availability, serviceability) daemon of a real
// machine. Link-level failure detection (the relay's retry-budget
// exhaustion) reports suspects here; Membership consults the simulation's
// ground truth (simnet.Network.RankDeadAt — the moral equivalent of the
// RAS daemon's out-of-band node-death notification) to discriminate a
// dead rank from a merely broken link, transitions the rank's state
// exactly once, and fans the confirmed death out to every subscribed
// engine. It also tracks the spare pool and the dead→successor binding
// the rebuild protocol establishes.
//
// All state is O(ranks) for the whole world — one byte of state per rank
// plus the (dead, successor) bindings — matching foMPI's constant-size
// recovery metadata goal (see DESIGN.md §14).
type Membership struct {
	net     *simnet.Network
	compute int // ranks [0, compute) are compute ranks; the rest are spares

	mu        sync.Mutex
	cond      *sync.Cond
	states    []RankState
	deathAt   map[int]vtime.Time
	successor map[int]int // dead rank -> spare rank serving its regions
	subs      []func(dead int, at vtime.Time, cause error)
}

// RankState is one rank's liveness as seen by the membership service.
type RankState uint8

const (
	// StateAlive ranks serve traffic normally (including a spare that has
	// finished rebuilding a dead rank's regions).
	StateAlive RankState = iota
	// StateSuspect ranks have exhausted some origin's retry budget but
	// are not confirmed dead: the failure is a link, not the rank.
	StateSuspect
	// StateDead ranks are confirmed crashed; their state transitions here
	// exactly once and never leaves.
	StateDead
	// StateRebuilding spares are replaying a dead rank's replicated
	// regions and not yet serving.
	StateRebuilding
	// StateSpare ranks idle in the spare pool, waiting for a death.
	StateSpare
)

// String returns the console spelling of a rank state.
func (s RankState) String() string {
	switch s {
	case StateAlive:
		return "ALIVE"
	case StateSuspect:
		return "SUSPECT"
	case StateDead:
		return "DEAD"
	case StateRebuilding:
		return "REBUILDING"
	case StateSpare:
		return "SPARE"
	}
	return fmt.Sprintf("RankState(%d)", uint8(s))
}

func newMembership(net *simnet.Network, compute, total int) *Membership {
	m := &Membership{
		net:       net,
		compute:   compute,
		states:    make([]RankState, total),
		deathAt:   make(map[int]vtime.Time),
		successor: make(map[int]int),
	}
	for r := compute; r < total; r++ {
		m.states[r] = StateSpare
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Compute returns the number of compute ranks (spares live above it).
func (m *Membership) Compute() int { return m.compute }

// State returns rank r's current liveness state.
func (m *Membership) State(r int) RankState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r < 0 || r >= len(m.states) {
		return StateAlive
	}
	return m.states[r]
}

// States returns a copy of every rank's state, indexed by world rank.
func (m *Membership) States() []RankState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]RankState(nil), m.states...)
}

// Subscribe registers a callback invoked exactly once per confirmed rank
// death, from the goroutine that confirmed it (never with m.mu held).
// Engines use it to fail outstanding work toward the dead rank.
func (m *Membership) Subscribe(fn func(dead int, at vtime.Time, cause error)) {
	m.mu.Lock()
	m.subs = append(m.subs, fn)
	m.mu.Unlock()
}

// Suspect reports a rank some origin can no longer reach (its retry
// budget ran out at virtual time at, with cause as the link error). It
// returns true when the rank is confirmed dead — the first confirmation
// transitions the state and notifies every subscriber; later ones are
// no-ops that still return true. A suspect that is not dead (the link
// failed, not the rank) is marked SUSPECT and false is returned so the
// caller keeps its link-failure semantics.
func (m *Membership) Suspect(r int, at vtime.Time, cause error) bool {
	if r < 0 || r >= len(m.states) {
		return false
	}
	if !m.net.RankDeadAt(r, at) {
		m.mu.Lock()
		if m.states[r] == StateAlive {
			m.states[r] = StateSuspect
		}
		m.mu.Unlock()
		return false
	}
	m.mu.Lock()
	if m.states[r] == StateDead {
		m.mu.Unlock()
		return true
	}
	m.states[r] = StateDead
	m.deathAt[r] = at
	subs := make([]func(dead int, at vtime.Time, cause error), len(m.subs))
	copy(subs, m.subs)
	m.mu.Unlock()
	for _, fn := range subs {
		fn(r, at, cause)
	}
	return true
}

// AllocSpare binds the lowest free spare to dead, marking it REBUILDING,
// and returns it. Idempotent: a second call for the same dead rank
// returns the existing binding. ok is false when the pool is exhausted
// (or the world was built with no spares).
func (m *Membership) AllocSpare(dead int) (spare int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, bound := m.successor[dead]; bound {
		return s, true
	}
	for r := m.compute; r < len(m.states); r++ {
		if m.states[r] == StateSpare {
			m.states[r] = StateRebuilding
			m.successor[dead] = r
			m.cond.Broadcast()
			return r, true
		}
	}
	return -1, false
}

// RebuildComplete marks the spare bound to dead as ALIVE and wakes every
// AwaitRebuilt waiter: the spare now serves the dead rank's regions.
func (m *Membership) RebuildComplete(dead, spare int) {
	m.mu.Lock()
	m.states[spare] = StateAlive
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Successor returns the spare serving dead's regions, if one is bound.
func (m *Membership) Successor(dead int) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.successor[dead]
	return s, ok
}

// DeathTime returns the virtual time dead was confirmed dead at.
func (m *Membership) DeathTime(dead int) (vtime.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	at, ok := m.deathAt[dead]
	return at, ok
}

// AwaitRebuilt blocks until a spare has fully rebuilt dead's regions and
// returns it. It errors immediately when no rebuild can ever complete —
// the world has no spare left to allocate and none is bound to dead.
func (m *Membership) AwaitRebuilt(dead int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if s, ok := m.successor[dead]; ok && m.states[s] == StateAlive {
			return s, nil
		}
		if _, ok := m.successor[dead]; !ok {
			free := false
			for r := m.compute; r < len(m.states); r++ {
				if m.states[r] == StateSpare {
					free = true
					break
				}
			}
			if !free {
				return -1, fmt.Errorf("runtime: no spare available to rebuild rank %d", dead)
			}
		}
		m.cond.Wait()
	}
}
