package analysis

import (
	"go/ast"
	"go/types"
)

// AttrMisuseAnalyzer reports contradictory or no-op attribute/option
// combinations on rma facade calls — options that type-check fine but are
// silently ignored or redundant at runtime, usually a sign the author
// expected a semantic the call does not have. The session-only-option and
// WithTargetLayout-at-Open rules that used to live here are compile
// errors since the SessionOption/OpOption split; what remains of them is
// a thin compatibility rule flagging declarations of the deprecated
// rma.Option alias.
var AttrMisuseAnalyzer = &Analyzer{
	Name: "attrmisuse",
	Doc: "finds rma option misuse: duplicate options, WithNotify on\n" +
		"PutNotify, attribute no-ops on RMW and Get calls, options\n" +
		"WithStrictDebug already implies, WithRetryPolicy or\n" +
		"WithReplication in a package that never installs a fault plan (the\n" +
		"relay never retransmits and no rank can die on the lossless\n" +
		"default wire), and uses of the deprecated rma.Option type alias\n" +
		"(migrate to SessionOption, OpOption, or AttrOption).",
	Run: runAttrMisuse,
}

// optionTakers maps facade calls that accept options to their kind.
var optionTakers = map[string]string{
	rmaPath + ".Open":                   "open",
	rmaPath + ".Session.Put":            "transfer",
	rmaPath + ".Session.PutNotify":      "putnotify",
	rmaPath + ".Session.Get":            "get",
	rmaPath + ".Session.Accumulate":     "transfer",
	rmaPath + ".Session.AccumulateAxpy": "transfer",
	rmaPath + ".Session.FetchAdd":       "rmw",
	rmaPath + ".Session.CompareSwap":    "rmw",
}

func runAttrMisuse(pass *Pass) {
	faults := packageInstallsFaults(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkDeprecatedOptionType(pass, n)
			case *ast.CallExpr:
				fn := callee(pass.TypesInfo, n)
				kind, ok := optionTakers[funcKey(fn)]
				if !ok {
					return true
				}
				checkOptions(pass, kind, fn.Name(), n, faults)
			}
			return true
		})
	}
}

// checkDeprecatedOptionType is the compatibility remnant of the retired
// session-only-option rules: the misuse itself no longer type-checks, but
// code still naming the deprecated rma.Option alias compiles one more
// release and should migrate to the typed taxonomy.
func checkDeprecatedOptionType(pass *Pass, id *ast.Ident) {
	tn, ok := pass.TypesInfo.Uses[id].(*types.TypeName)
	if !ok || tn.Name() != "Option" {
		return
	}
	if pkg := tn.Pkg(); pkg == nil || pkg.Path() != rmaPath {
		return
	}
	pass.Reportf(id.Pos(), "rma.Option is a deprecated alias kept one release: declare rma.SessionOption (Open), rma.OpOption (transfers), or rma.AttrOption (attributes usable in both positions)")
}

// packageInstallsFaults pre-scans the package for any way a fault plan
// can reach the network: rma.WithFaults, a SetFaults call, a Faults
// field in a composite literal (runtime.Config{Faults: ...}), or an
// assignment to a Faults field (cfg.Faults = plan). When none exists,
// WithRetryPolicy configures a relay that never retransmits — the no-op
// combination checkOptions flags.
func packageInstallsFaults(pass *Pass) bool {
	found := false
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := callee(pass.TypesInfo, n)
				if fn != nil && (funcKey(fn) == rmaPath+".WithFaults" || fn.Name() == "SetFaults") {
					found = true
					return false
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok && key.Name == "Faults" {
					found = true
					return false
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Faults" {
						found = true
						return false
					}
				}
			}
			return true
		})
	}
	return found
}

func checkOptions(pass *Pass, kind, callName string, call *ast.CallExpr, faults bool) {
	seen := map[string]bool{}
	strict := false
	for _, opt := range optionCalls(pass.TypesInfo, call.Args) {
		name := callee(pass.TypesInfo, opt).Name()

		if seen[name] {
			pass.Reportf(opt.Pos(), "duplicate option %s in one call", name)
		}
		seen[name] = true

		switch kind {
		case "open":
			if name == "WithRetryPolicy" && !faults {
				pass.Reportf(opt.Pos(), "WithRetryPolicy without a fault plan anywhere in this package: the relay never retransmits on the lossless default wire (pair it with WithFaults or install a FaultPlan)")
			}
			if name == "WithReplication" && !faults {
				pass.Reportf(opt.Pos(), "WithReplication without a fault plan anywhere in this package: no rank can die on the lossless default wire, so every operation pays the replica round-trip for protection that is never needed (pair it with WithFaults or install a FaultPlan)")
			}
		case "putnotify":
			if name == "WithNotify" {
				pass.Reportf(opt.Pos(), "WithNotify is redundant on PutNotify, which already carries the Notify attribute")
			}
		case "rmw":
			switch name {
			case "WithAtomic":
				pass.Reportf(opt.Pos(), "WithAtomic is a no-op on %s: read-modify-write operations are always atomic", callName)
			case "WithBlocking":
				pass.Reportf(opt.Pos(), "WithBlocking is a no-op on %s: read-modify-write operations always block for the old value", callName)
			case "WithRemoteComplete":
				pass.Reportf(opt.Pos(), "WithRemoteComplete is a no-op on %s: the returned old value already proves remote application", callName)
			case "WithNotify":
				pass.Reportf(opt.Pos(), "WithNotify is a no-op on %s: the reply already feeds the completion counters", callName)
			case "WithTargetLayout":
				pass.Reportf(opt.Pos(), "WithTargetLayout is a no-op on %s: read-modify-write operations address a single 8-byte word", callName)
			}
		case "get":
			switch name {
			case "WithRemoteComplete":
				pass.Reportf(opt.Pos(), "WithRemoteComplete is a no-op on Get: a get completes when the data lands at the origin")
			case "WithNotify":
				pass.Reportf(opt.Pos(), "WithNotify is a no-op on Get: the data reply already feeds the completion counters")
			}
		}

		if name == "WithStrictDebug" {
			strict = true
		}
	}
	if strict {
		for _, implied := range []string{"WithOrdering", "WithRemoteComplete", "WithAtomic"} {
			if seen[implied] {
				pass.Reportf(call.Pos(), "%s is redundant alongside WithStrictDebug, which already implies it", implied)
			}
		}
	}
}
