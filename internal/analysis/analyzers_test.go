package analysis

import (
	"go/token"
	"testing"
)

// The golden packages live under testdata/src — excluded from ./...
// wildcards (so rmalint never lints them) but loadable by explicit import
// path, which is what RunGolden does.

func TestLostRequest(t *testing.T) {
	RunGolden(t, LostRequestAnalyzer, "mpi3rma/internal/analysis/testdata/src/lostrequest")
}

func TestEpochOrder(t *testing.T) {
	RunGolden(t, EpochOrderAnalyzer, "mpi3rma/internal/analysis/testdata/src/epochorder")
}

func TestAttrMisuse(t *testing.T) {
	RunGolden(t, AttrMisuseAnalyzer, "mpi3rma/internal/analysis/testdata/src/attrmisuse")
}

// TestAttrMisuseRetryPolicy pins the no-op retry-policy combination: a
// package that tunes the relay but never installs a fault plan is
// flagged; one that pairs it with WithFaults anywhere is clean.
func TestAttrMisuseRetryPolicy(t *testing.T) {
	RunGolden(t, AttrMisuseAnalyzer, "mpi3rma/internal/analysis/testdata/src/retrymisuse")
	RunGolden(t, AttrMisuseAnalyzer, "mpi3rma/internal/analysis/testdata/src/retryok")
}

func TestBoundsCheck(t *testing.T) {
	RunGolden(t, BoundsCheckAnalyzer, "mpi3rma/internal/analysis/testdata/src/boundscheck")
}

func TestDeprecated(t *testing.T) {
	RunGolden(t, DeprecatedAnalyzer, "mpi3rma/internal/analysis/testdata/src/deprecated")
}

// TestSuppressionParsing pins the //rmalint:ignore scope rules: same line
// and the line below, per-analyzer when named, everything when bare.
func TestSuppressionParsing(t *testing.T) {
	s := suppressions{"f.go": {10: {"lostrequest"}, 20: {""}}}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{10, "lostrequest", true},
		{11, "lostrequest", true}, // line below the comment
		{12, "lostrequest", false},
		{10, "boundscheck", false}, // named suppression is per-analyzer
		{20, "boundscheck", true},  // bare ignore mutes everything
		{21, "epochorder", true},
	}
	for _, c := range cases {
		got := s.covers(token.Position{Filename: "f.go", Line: c.line}, c.analyzer)
		if got != c.want {
			t.Errorf("covers(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}
