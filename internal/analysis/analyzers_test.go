package analysis

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"testing"
)

// The golden packages live under testdata/src — excluded from ./...
// wildcards (so rmalint never lints them) but loadable by explicit import
// path, which is what RunGolden does.

func TestLostRequest(t *testing.T) {
	RunGolden(t, LostRequestAnalyzer, "mpi3rma/internal/analysis/testdata/src/lostrequest")
}

func TestEpochOrder(t *testing.T) {
	RunGolden(t, EpochOrderAnalyzer, "mpi3rma/internal/analysis/testdata/src/epochorder")
}

func TestAttrMisuse(t *testing.T) {
	RunGolden(t, AttrMisuseAnalyzer, "mpi3rma/internal/analysis/testdata/src/attrmisuse")
}

// TestAttrMisuseRetryPolicy pins the no-op retry-policy combination: a
// package that tunes the relay but never installs a fault plan is
// flagged; one that pairs it with WithFaults anywhere is clean.
func TestAttrMisuseRetryPolicy(t *testing.T) {
	RunGolden(t, AttrMisuseAnalyzer, "mpi3rma/internal/analysis/testdata/src/retrymisuse")
	RunGolden(t, AttrMisuseAnalyzer, "mpi3rma/internal/analysis/testdata/src/retryok")
}

// TestAttrMisuseReplication pins the replication misuse checks:
// WithReplication is session-only (ignored on transfer calls), and in a
// package that never installs a fault plan it buys a replica round-trip
// per mutating operation for protection no death can ever need.
func TestAttrMisuseReplication(t *testing.T) {
	RunGolden(t, AttrMisuseAnalyzer, "mpi3rma/internal/analysis/testdata/src/replmisuse")
	RunGolden(t, AttrMisuseAnalyzer, "mpi3rma/internal/analysis/testdata/src/replok")
}

func TestBoundsCheck(t *testing.T) {
	RunGolden(t, BoundsCheckAnalyzer, "mpi3rma/internal/analysis/testdata/src/boundscheck")
}

func TestDeprecated(t *testing.T) {
	RunGolden(t, DeprecatedAnalyzer, "mpi3rma/internal/analysis/testdata/src/deprecated")
}

// TestDHTRaw pins the service-layer ownership rule: descriptors obtained
// from dht.Map.Stripes() or queue.Queue.Mem() may be read raw but never
// mutated raw — the protocols own their lock and sequence words.
func TestDHTRaw(t *testing.T) {
	RunGolden(t, DHTRawAnalyzer, "mpi3rma/internal/analysis/testdata/src/dhtraw")
}

func TestLostRequestField(t *testing.T) {
	RunGolden(t, LostRequestAnalyzer, "mpi3rma/internal/analysis/testdata/src/lostrequestfield")
}

func TestRemoteConflict(t *testing.T) {
	RunGolden(t, RemoteConflictAnalyzer, "mpi3rma/internal/analysis/testdata/src/remoteconflict")
}

func TestLockOrder(t *testing.T) {
	RunGolden(t, LockOrderAnalyzer, "mpi3rma/internal/analysis/testdata/src/lockorder")
	RunGolden(t, LockOrderAnalyzer, "mpi3rma/internal/analysis/testdata/src/lockorderok")
}

// TestEpochOrderCross and TestLostRequestCross exercise the findings that
// need the interprocedural tier (helpers opening/closing epochs, requests
// returned by helpers, helpers that complete).
func TestEpochOrderCross(t *testing.T) {
	RunGolden(t, EpochOrderAnalyzer, "mpi3rma/internal/analysis/testdata/src/epochorderx")
}

func TestLostRequestCross(t *testing.T) {
	RunGolden(t, LostRequestAnalyzer, "mpi3rma/internal/analysis/testdata/src/lostrequestx")
}

// diagsWithoutInterproc runs one analyzer over a golden package with the
// interprocedural tier switched off — the exact behavior of the previous
// rmalint generation — so the pin tests below can prove which findings
// are genuinely cross-function.
func diagsWithoutInterproc(t *testing.T, analyzer *Analyzer, pkgPath string) []Diagnostic {
	t.Helper()
	interprocDisabled = true
	defer func() { interprocDisabled = false }()
	pkgs, err := Load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	return Run(pkgs, []*Analyzer{analyzer}).Diagnostics
}

// TestEpochOrderCrossPin: every diagnostic in the epochorderx golden
// crosses a function boundary, so the intraprocedural analyzer must go
// completely silent on it.
func TestEpochOrderCrossPin(t *testing.T) {
	diags := diagsWithoutInterproc(t, EpochOrderAnalyzer, "mpi3rma/internal/analysis/testdata/src/epochorderx")
	for _, d := range diags {
		t.Errorf("without summaries epochorderx must be silent, got: %s", d)
	}
}

// TestLostRequestCrossPin: without summaries the helper-producer finding
// disappears (fire's returned request is invisible) and the
// helper-completes case regresses into a false positive (the discarded
// Put in completesViaHelper is flagged because finish's Complete is
// invisible too).
func TestLostRequestCrossPin(t *testing.T) {
	diags := diagsWithoutInterproc(t, LostRequestAnalyzer, "mpi3rma/internal/analysis/testdata/src/lostrequestx")
	var fire, put int
	for _, d := range diags {
		if strings.Contains(d.Message, "request returned by fire") {
			fire++
		}
		if strings.Contains(d.Message, "request returned by Put") {
			put++
		}
	}
	if fire != 0 {
		t.Errorf("helper-producer finding needs summaries, but it survived with them disabled")
	}
	// The golden has one direct discarded Put (bareProducerStatement);
	// disabling summaries adds the completesViaHelper false positive.
	if put != 2 {
		t.Errorf("with summaries disabled want 2 discarded-Put findings (direct + regressed false positive), got %d", put)
	}
}

// TestRemoteConflictCrossPin: the three direct overlaps still fire, the
// helper-spliced one (helperThenDirect) needs the summary and vanishes.
func TestRemoteConflictCrossPin(t *testing.T) {
	diags := diagsWithoutInterproc(t, RemoteConflictAnalyzer, "mpi3rma/internal/analysis/testdata/src/remoteconflict")
	if len(diags) != 3 {
		t.Errorf("with summaries disabled want the 3 direct conflicts only, got %d:", len(diags))
		for _, d := range diags {
			t.Errorf("  %s", d)
		}
	}
}

// typeCheckSrc type-checks one import-free source file into a Package for
// unit tests that need real types.Info without touching the loader.
func typeCheckSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := (&types.Config{}).Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type check: %v", err)
	}
	return &Package{Path: "x", Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
}

// TestCallGraph pins the SCC decomposition: bottom-up order, recursion
// detection for self-loops and mutual cycles.
func TestCallGraph(t *testing.T) {
	pkg := typeCheckSrc(t, `package x

func a() { b(); c() }
func b() { c() }
func c() {}
func d() { e() }
func e() { d() }
func f() { f() }
`)
	g := buildCallGraph(pkg)
	fn := func(name string) *types.Func {
		obj, _ := pkg.Types.Scope().Lookup(name).(*types.Func)
		if obj == nil {
			t.Fatalf("no function %s", name)
		}
		return obj
	}
	pos := map[string]int{}
	for i, n := range g.order {
		pos[n.fn.Name()] = i
	}
	if len(g.order) != 6 {
		t.Fatalf("order has %d nodes, want 6", len(g.order))
	}
	// Bottom-up: callees precede callers (outside their own SCC).
	if !(pos["c"] < pos["b"] && pos["b"] < pos["a"]) {
		t.Errorf("order not bottom-up: c=%d b=%d a=%d", pos["c"], pos["b"], pos["a"])
	}
	for _, name := range []string{"a", "b", "c"} {
		if g.recursive(fn(name)) {
			t.Errorf("%s wrongly marked recursive", name)
		}
	}
	for _, name := range []string{"d", "e", "f"} {
		if !g.recursive(fn(name)) {
			t.Errorf("%s not marked recursive", name)
		}
	}
	if g.sccSize[g.nodes[fn("d")].scc] != 2 {
		t.Errorf("d/e component size = %d, want 2", g.sccSize[g.nodes[fn("d")].scc])
	}
}

// TestReportRoundTrip pins the -json schema: encode/decode is lossless,
// and the decoder rejects unknown versions and unknown fields.
func TestReportRoundTrip(t *testing.T) {
	res := &Result{
		Diagnostics: []Diagnostic{
			{Pos: token.Position{Filename: "a.go", Line: 3, Column: 7}, Analyzer: "epochorder", Message: "boom"},
			{Pos: token.Position{Filename: "b.go", Line: 9, Column: 1}, Analyzer: "lockorder", Message: "bang"},
		},
		Suppressed: map[string]int{"lostrequest": 2},
	}
	rep := NewReport(All(), res)
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rep)
	}
	if got.Version != ReportVersion || len(got.Analyzers) != len(All()) {
		t.Errorf("decoded header wrong: %+v", got)
	}
	if _, err := DecodeReport(strings.NewReader(`{"version":99,"analyzers":[],"findings":[]}`)); err == nil {
		t.Error("decoder accepted unknown version 99")
	}
	if _, err := DecodeReport(strings.NewReader(`{"version":1,"analyzers":[],"findings":[],"bogus":true}`)); err == nil {
		t.Error("decoder accepted unknown field")
	}
}

// TestSuppressionValidation pins the ignore-comment contract: a known
// analyzer name (or "all") plus a mandatory reason.
func TestSuppressionValidation(t *testing.T) {
	at := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	parsed := []suppression{
		{name: "lostrequest", reason: "the attrs always fold in blocking", pos: at(1)},
		{name: "all", reason: "generated file", pos: at(2)},
		{name: "", reason: "", pos: at(3)},
		{name: "nosuchanalyzer", reason: "whatever", pos: at(4)},
		{name: "epochorder", reason: "", pos: at(5)},
	}
	var diags []Diagnostic
	validateSuppressions(parsed, All(), &diags)
	if len(diags) != 3 {
		t.Fatalf("got %d violations, want 3: %v", len(diags), diags)
	}
	wants := []struct {
		line int
		sub  string
	}{
		{3, "without an analyzer name"},
		{4, `unknown analyzer "nosuchanalyzer"`},
		{5, "without a reason"},
	}
	for i, w := range wants {
		if diags[i].Pos.Line != w.line || !strings.Contains(diags[i].Message, w.sub) {
			t.Errorf("violation %d = %s, want line %d containing %q", i, diags[i], w.line, w.sub)
		}
		if diags[i].Analyzer != "suppression" {
			t.Errorf("violation %d reported under %q, want \"suppression\"", i, diags[i].Analyzer)
		}
	}
}

// TestSuppressionParsing pins the //rmalint:ignore scope rules: same line
// and the line below, per-analyzer when named, everything when bare.
func TestSuppressionParsing(t *testing.T) {
	s := suppressions{"f.go": {10: {"lostrequest"}, 20: {""}}}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{10, "lostrequest", true},
		{11, "lostrequest", true}, // line below the comment
		{12, "lostrequest", false},
		{10, "boundscheck", false}, // named suppression is per-analyzer
		{20, "boundscheck", true},  // bare ignore mutes everything
		{21, "epochorder", true},
	}
	for _, c := range cases {
		got := s.covers(token.Position{Filename: "f.go", Line: c.line}, c.analyzer)
		if got != c.want {
			t.Errorf("covers(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}
