// Package dhtraw is the golden input for the dhtraw check: the dht map
// and queue protocols own their exposed memory, and mutating it with raw
// Session operations — instead of Map.Put/Get/Delete/CAS and
// Queue.Enqueue/Dequeue — scribbles over lock and sequence words.
// Read-only Session.Get and Session.FetchWord stay legal: the descriptors
// are exported exactly so diagnostics can read converged state.
package dhtraw

import (
	"mpi3rma/dht"
	"mpi3rma/dht/queue"
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

func rawPutOnStripe(p *runtime.Proc) {
	s := rma.Open(p)
	m, _ := dht.Open(s)
	scratch := p.Alloc(8)
	tms := m.Stripes()
	tm := tms[0]
	_, _ = s.Put(scratch, 8, rma.Byte, tm, 0) // want "raw Session.Put on a descriptor from dht.Map.Stripes\(\) bypasses the service protocol"
}

func rawRMWOnStripeInline(p *runtime.Proc) {
	s := rma.Open(p)
	m, _ := dht.Open(s)
	_, _ = s.CompareSwap(m.Stripes()[2], 0, 0, 1) // want "raw Session.CompareSwap on a descriptor from dht.Map.Stripes\(\) bypasses the service protocol"
	_, _ = s.FetchAdd(m.Stripes()[1], 8, 1)       // want "raw Session.FetchAdd on a descriptor from dht.Map.Stripes\(\) bypasses the service protocol"
}

func rawAccumulateViaRange(p *runtime.Proc) {
	s := rma.Open(p)
	m, _ := dht.Open(s)
	scratch := p.Alloc(8)
	for _, tm := range m.Stripes() {
		_, _ = s.Accumulate(rma.Sum, scratch, 1, rma.Int64, tm, 0) // want "raw Session.Accumulate on a descriptor from dht.Map.Stripes\(\) bypasses the service protocol"
	}
}

func rawPutOnQueue(p *runtime.Proc) {
	s := rma.Open(p)
	q, _ := queue.New(s, 0, 8, 16)
	scratch := p.Alloc(16)
	owner := q.Mem()
	_, _ = s.PutNotify(scratch, 16, rma.Byte, owner, 32) // want "raw Session.PutNotify on a descriptor from queue.Queue.Mem\(\) bypasses the service protocol"
	_, _ = s.FetchAdd(q.Mem(), 0, 1)                     // want "raw Session.FetchAdd on a descriptor from queue.Queue.Mem\(\) bypasses the service protocol"
}

// readOnlyDiagnostics: reading protocol memory is the descriptors' whole
// point — byte-exact convergence checks and consoles do it. No findings.
func readOnlyDiagnostics(p *runtime.Proc) {
	s := rma.Open(p)
	m, _ := dht.Open(s)
	q, _ := queue.New(s, 0, 8, 16)
	landing := p.Alloc(64)
	tm := m.Stripes()[0]
	_, _ = s.Get(landing, 64, rma.Byte, tm, 0, rma.WithBlocking())
	_, _ = s.FetchWord(q.Mem(), 0)
}

// ownDescriptorsAreClean: descriptors from the application's own
// exposures are none of this analyzer's business.
func ownDescriptorsAreClean(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	scratch := p.Alloc(8)
	_, _ = s.Put(scratch, 8, rma.Byte, tm, 0)
	_, _ = s.FetchAdd(tm, 0, 1)
}

// suppressedRawPut: the ignore directive silences the finding.
func suppressedRawPut(p *runtime.Proc) {
	s := rma.Open(p)
	m, _ := dht.Open(s)
	scratch := p.Alloc(8)
	//rmalint:ignore dhtraw migration shim, deleting next release
	_, _ = s.Put(scratch, 8, rma.Byte, m.Stripes()[0], 0)
}
