// Package lostrequestfield is the golden input for lostrequest's
// package-level field check: requests stashed in struct fields that
// nothing in the package ever reads, in a package that never reaches a
// completion call. (The read/complete variants live in the same package
// on other fields, which is exactly the granularity of the check.)
package lostrequestfield

import (
	"mpi3rma/rma"
)

type tracker struct {
	// pending is written and forgotten: nothing reads it back to Wait.
	pending *rma.Request
	// inflight is written and later awaited.
	inflight *rma.Request
	// backlog accumulates requests nothing drains.
	backlog []*rma.Request
}

func (t *tracker) stash(s *rma.Session, tm rma.TargetMem, src rma.Region) {
	req, _ := s.Put(src, 1, rma.Int64, tm, 0)
	t.pending = req // want "request stored in field pending is never read anywhere in this package"
}

func (t *tracker) stashBacklog(s *rma.Session, tm rma.TargetMem, src rma.Region) {
	req, _ := s.Get(src, 1, rma.Int64, tm, 0)
	t.backlog = append(t.backlog, req) // want "request stored in field backlog is never read anywhere in this package"
}

func (t *tracker) track(s *rma.Session, tm rma.TargetMem, src rma.Region) {
	req, _ := s.Put(src, 1, rma.Int64, tm, 8)
	t.inflight = req
}

func (t *tracker) drain() {
	if t.inflight != nil {
		t.inflight.Wait()
	}
}
