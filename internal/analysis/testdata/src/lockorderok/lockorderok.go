// Package lockorderok is the silent golden for the lockorder analyzer:
// the same annotated hierarchy as package lockorder, used legally. No
// diagnostics may fire here.
package lockorderok

import "sync"

type engine struct {
	tgtMu   sync.Mutex //rmalint:lockrank 10
	cmplMu  sync.Mutex //rmalint:lockrank 20
	shardMu sync.Mutex //rmalint:lockrank 30
	done    chan int
}

// ascending takes the locks in rank order, which is the hierarchy.
func (e *engine) ascending() {
	e.tgtMu.Lock()
	e.cmplMu.Lock()
	e.shardMu.Lock()
	e.shardMu.Unlock()
	e.cmplMu.Unlock()
	e.tgtMu.Unlock()
}

// sequential releases before re-acquiring: never two held at once.
func (e *engine) sequential() {
	e.shardMu.Lock()
	e.shardMu.Unlock()
	e.tgtMu.Lock()
	e.tgtMu.Unlock()
}

// lockTgt acquires the lowest rank; calling it with nothing held is fine.
func (e *engine) lockTgt() {
	e.tgtMu.Lock()
	defer e.tgtMu.Unlock()
}

func (e *engine) callAscends() {
	e.lockTgt()
	e.cmplMu.Lock()
	e.cmplMu.Unlock()
}

// nonblockingSendUnderLock uses select-with-default: the send cannot park
// with the lock held.
func (e *engine) nonblockingSendUnderLock(v int) {
	e.tgtMu.Lock()
	defer e.tgtMu.Unlock()
	select {
	case e.done <- v:
	default:
	}
}

// sendAfterRelease: the branch releases before the send.
func (e *engine) sendAfterRelease(v int) {
	e.cmplMu.Lock()
	e.cmplMu.Unlock()
	e.done <- v
}

// goroutineScope: the spawned goroutine has its own stack; the parent's
// held set does not apply to it, so its rank-10 Lock does not invert
// against the parent's held rank-20 lock, and its send happens after its
// own release.
func (e *engine) goroutineScope() {
	e.cmplMu.Lock()
	defer e.cmplMu.Unlock()
	go func() {
		e.tgtMu.Lock()
		e.tgtMu.Unlock()
		e.done <- 1
	}()
}

// releasedInBranch: the nested block releases the lock, so after the if
// the held set must not still claim it.
func (e *engine) releasedInBranch(cond bool) {
	e.shardMu.Lock()
	if cond {
		e.shardMu.Unlock()
		e.tgtMu.Lock()
		e.tgtMu.Unlock()
		return
	}
	e.shardMu.Unlock()
	e.cmplMu.Lock()
	e.cmplMu.Unlock()
}
