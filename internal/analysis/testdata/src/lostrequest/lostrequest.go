// Package lostrequest is the golden input for the lostrequest analyzer.
package lostrequest

import (
	"mpi3rma/internal/core"
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

func lostBlank(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, err := s.Put(src, 1, rma.Int64, tm, 0) // want "request returned by Put is discarded"
	_ = err
}

func lostGetInIf(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	dst := p.Alloc(8)
	if _, err := s.Get(dst, 1, rma.Int64, tm, 0); err != nil { // want "request returned by Get is discarded"
		return
	}
}

func lostAccumulate(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Accumulate(rma.Sum, src, 1, rma.Int64, tm, 0) // want "request returned by Accumulate is discarded"
}

func blockingIsFine(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithBlocking())
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithStrictDebug())
}

func completedLaterIsFine(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	_ = s.Complete(tm.Owner)
}

func collectiveCompletionIsFine(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.PutNotify(src, 1, rma.Int64, tm, 0)
	_ = s.CompleteCollective()
}

func keptAndWaitedIsFine(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	req, err := s.Put(src, 1, rma.Int64, tm, 0)
	if err != nil {
		return
	}
	req.Wait()
}

func escapedIsFine(p *runtime.Proc, tm rma.TargetMem) []*rma.Request {
	s := rma.Open(p)
	src := p.Alloc(8)
	var reqs []*rma.Request
	for i := 0; i < 4; i++ {
		req, err := s.Get(src, 1, rma.Int64, tm, 8*i)
		if err != nil {
			return nil
		}
		reqs = append(reqs, req)
	}
	return reqs
}

func closureCompletionCounts(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	defer func() { _ = s.Complete() }()
}

func suppressed(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	//rmalint:ignore lostrequest intentional fire-and-forget for the demo
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
}

func engineLost(p *runtime.Proc, tm core.TargetMem) {
	e := core.Attach(p, core.Options{})
	src := p.Alloc(8)
	_, _ = e.Put(src, 8, rma.Byte, tm, 0, 8, rma.Byte, 0, p.Comm(), 0) // want "request returned by Put is discarded"
}

func engineBlockingIsFine(p *runtime.Proc, tm core.TargetMem) {
	e := core.Attach(p, core.Options{})
	src := p.Alloc(8)
	_, _ = e.Put(src, 8, rma.Byte, tm, 0, 8, rma.Byte, 0, p.Comm(), core.AttrBlocking|core.AttrOrdering)
}

// A library's own attribute const folds to a constant with the blocking
// bit set: no report, even though AttrBlocking never appears at the call.
const libBlocking = core.AttrBlocking | core.AttrOrdering

func engineConstFoldedBlockingIsFine(p *runtime.Proc, tm core.TargetMem) {
	e := core.Attach(p, core.Options{})
	src := p.Alloc(8)
	_, _ = e.Put(src, 8, rma.Byte, tm, 0, 8, rma.Byte, 0, p.Comm(), libBlocking)
	_, _ = e.Put(src, 8, rma.Byte, tm, 0, 8, rma.Byte, 0, p.Comm(), libBlocking|core.AttrAtomic)
}

// A nonblocking const is still a lost request.
const libOrdered = core.AttrOrdering

func engineConstFoldedNonblocking(p *runtime.Proc, tm core.TargetMem) {
	e := core.Attach(p, core.Options{})
	src := p.Alloc(8)
	_, _ = e.Put(src, 8, rma.Byte, tm, 0, 8, rma.Byte, 0, p.Comm(), libOrdered) // want "request returned by Put is discarded"
}
