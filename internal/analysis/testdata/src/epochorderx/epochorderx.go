// Package epochorderx is the golden input for the epochorder analyzer's
// interprocedural tier: every diagnostic here needs a per-function
// summary to find. The pin test in analyzers_test.go re-runs this package
// with the summaries disabled (the PR 3 behavior) and asserts it goes
// silent, proving these are cross-function catches.
package epochorderx

import (
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/mpi2rma"
	"mpi3rma/internal/runtime"
)

// closeWin is an epoch-closing helper: its summary says "Unlock(1) on
// parameter 0".
func closeWin(w *mpi2rma.Win) {
	_ = w.Unlock(1)
}

// unlockViaHelperWithoutLock: the window is fresh (everything closed), so
// the helper's spliced Unlock is a definite violation, reported at the
// call site.
func unlockViaHelperWithoutLock(p *runtime.Proc) {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, err := r.WinCreate(p.Comm(), p.Alloc(64))
	if err != nil {
		return
	}
	closeWin(w) // want "call to closeWin: Unlock on rank 1 without holding the lock"
}

// openLock is an epoch-opening helper.
func openLock(w *mpi2rma.Win) {
	_ = w.Lock(mpi2rma.LockExclusive, 1)
}

// doubleLockViaHelper: the helper provably leaves the rank-1 lock held,
// so the direct Lock that follows is a definite double lock.
func doubleLockViaHelper(w *mpi2rma.Win) {
	openLock(w)
	_ = w.Lock(mpi2rma.LockShared, 1) // want "Lock on rank 1 while already holding a lock on that rank"
	_ = w.Unlock(1)
}

// balancedHelper opens and (via defer) closes a lock epoch: its summary
// is Lock(2) … Unlock(2), so callers know the window comes back clean.
func balancedHelper(w *mpi2rma.Win, src memsim.Region) {
	_ = w.Lock(mpi2rma.LockExclusive, 2)
	defer closeRank2(w)
	_ = w.Put(src, 8, nil, 2, 0, 8, nil)
}

func closeRank2(w *mpi2rma.Win) {
	_ = w.Unlock(2)
}

// freeAfterBalancedHelperIsFine: without defer modeling the helper's
// summary would end with the lock still open and the Free would be a
// false positive.
func freeAfterBalancedHelperIsFine(p *runtime.Proc) {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, err := r.WinCreate(p.Comm(), p.Alloc(64))
	if err != nil {
		return
	}
	balancedHelper(w, p.Alloc(8))
	_ = w.Free()
}

// makeWin creates and returns a window: callers know it starts with every
// epoch closed.
func makeWin(p *runtime.Proc) *mpi2rma.Win {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, _ := r.WinCreate(p.Comm(), p.Alloc(64))
	return w
}

// accessOnHelperMadeWindow: the window came from a summarized creator, so
// "no epoch open" is provable even though WinCreate is in another
// function.
func accessOnHelperMadeWindow(p *runtime.Proc) {
	w := makeWin(p)
	src := p.Alloc(8)
	_ = w.Put(src, 8, nil, 1, 0, 8, nil) // want "RMA Put outside any epoch"
}

// escapeHelper has unknowable effects on its window (it hands it to a
// dynamic call), so callers must forget everything they knew.
var sink func(*mpi2rma.Win)

func escapeHelper(w *mpi2rma.Win) {
	sink(w)
}

// escapeResetsState: after escapeHelper the fresh window's state is
// unknown; the Unlock that would have been a definite violation must not
// be reported.
func escapeResetsState(p *runtime.Proc) {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, err := r.WinCreate(p.Comm(), p.Alloc(64))
	if err != nil {
		return
	}
	escapeHelper(w)
	_ = w.Unlock(1)
}
