// Package retrymisuse is the golden input for the attrmisuse retry-policy
// check: nothing in this package ever installs a fault plan, so enabling
// the reliable-delivery relay is a no-op combination — it retransmits
// only on a faulty wire, and this wire is lossless.
package retrymisuse

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

func retryWithoutFaults(p *runtime.Proc) {
	_ = rma.Open(p, rma.WithRetryPolicy(rma.RetryPolicy{Budget: 4})) // want "WithRetryPolicy without a fault plan anywhere in this package"
}
