// Package replmisuse is the golden input for the attrmisuse replication
// check: nothing in this package ever installs a fault plan, so no rank
// can die and buddy replication pays a replica round-trip on every
// mutating operation for protection that is never needed. It also covers
// the session-only rule: WithReplication on a transfer call is silently
// ignored.
package replmisuse

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

func replicationWithoutFaults(p *runtime.Proc) {
	_ = rma.Open(p, rma.WithReplication()) // want "WithReplication without a fault plan anywhere in this package"
}

func replicationOnTransfer(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithReplication(), rma.WithBlocking()) // want "WithReplication is ignored on Put"
	_ = s.CompleteAll()
}
