// Package replmisuse is the golden input for the attrmisuse replication
// check: nothing in this package ever installs a fault plan, so no rank
// can die and buddy replication pays a replica round-trip on every
// mutating operation for protection that is never needed. It also covers
// mutating operation for protection that is never needed. (Passing it to
// a transfer call stopped type-checking with the SessionOption/OpOption
// split, so only the Open-position rule remains.)
package replmisuse

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

func replicationWithoutFaults(p *runtime.Proc) {
	_ = rma.Open(p, rma.WithReplication()) // want "WithReplication without a fault plan anywhere in this package"
}
