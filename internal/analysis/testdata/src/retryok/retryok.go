// Package retryok is the clean golden input for the attrmisuse
// retry-policy check: the package installs a fault plan, so tuning the
// relay's retry policy is meaningful and nothing is reported.
package retryok

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

var plan = &rma.FaultPlan{Seed: 1, Default: rma.LinkFaults{Drop: 0.1}}

func retryWithFaultsSameCall(p *runtime.Proc) {
	_ = rma.Open(p,
		rma.WithFaults(plan),
		rma.WithRetryPolicy(rma.RetryPolicy{Budget: 4}))
}

func retryAlone(p *runtime.Proc) {
	// Fine: another Open in this package installs the plan (SPMD ranks
	// often split the configuration across helpers).
	_ = rma.Open(p, rma.WithRetryPolicy(rma.RetryPolicy{Budget: 4}))
}
