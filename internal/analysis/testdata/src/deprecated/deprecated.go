// Package deprecated is the golden input for the deprecated analyzer.
// The old all-ranks wrapper checks are gone with the wrappers
// themselves; what remains is the event-surface misuse.
package deprecated

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

func modernSpellingsAreClean(p *runtime.Proc) {
	s := rma.Open(p)
	_ = s.Complete()
	_ = s.Complete(1, 2)
	_ = s.Order()
	_ = s.Order(3)
}

func emptySelect(p *runtime.Proc) {
	s := rma.Open(p)
	_, _, _ = s.Select() // want "Select with zero cases always fails"
}

func selectWithCasesIsClean(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	req, _ := s.Put(src, 1, rma.Int64, tm, 0)
	_, _, _ = s.Select(rma.OnRequest(req), rma.OnQuiescent(tm.Owner))
}

func doubleOnDone(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	req, _ := s.Put(src, 1, rma.Int64, tm, 0)
	req.OnDone(func(error) {})
	req.OnDone(func(error) {}) // want "OnDone registered again"
}

func onDoneOnDistinctRequestsIsClean(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	a, _ := s.Put(src, 1, rma.Int64, tm, 0)
	b, _ := s.Put(src, 1, rma.Int64, tm, 8)
	a.OnDone(func(error) {})
	b.OnDone(func(error) {})
	// One call site inside a loop registers many callbacks on many
	// requests — not statically a double registration.
	for i := 0; i < 4; i++ {
		req, _ := s.Put(src, 1, rma.Int64, tm, i*8)
		req.OnDone(func(error) {})
	}
}

func suppressedEmptySelect(p *runtime.Proc) {
	s := rma.Open(p)
	//rmalint:ignore deprecated exercised for its error path on purpose
	_, _, _ = s.Select()
}
