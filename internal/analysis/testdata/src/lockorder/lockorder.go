// Package lockorder is the golden input for the lockorder analyzer: a
// miniature engine with an annotated mutex hierarchy and every class of
// violation — inverted acquisition, self-relock, hierarchy-inverting
// helper calls, and blocking channel sends under a held lock.
package lockorder

import "sync"

type engine struct {
	tgtMu   sync.Mutex //rmalint:lockrank 10
	cmplMu  sync.Mutex //rmalint:lockrank 20
	shardMu sync.Mutex //rmalint:lockrank 30
	done    chan int
}

func (e *engine) inverted() {
	e.cmplMu.Lock()
	e.tgtMu.Lock() // want `acquires engine.tgtMu \(rank 10\) while holding engine.cmplMu \(rank 20\)`
	e.tgtMu.Unlock()
	e.cmplMu.Unlock()
}

func (e *engine) invertedAcrossDefer() {
	e.shardMu.Lock()
	defer e.shardMu.Unlock()
	e.cmplMu.Lock() // want `acquires engine.cmplMu \(rank 20\) while holding engine.shardMu \(rank 30\)`
	e.cmplMu.Unlock()
}

func (e *engine) relock() {
	e.tgtMu.Lock()
	e.tgtMu.Lock() // want "engine.tgtMu.Lock while engine.tgtMu is already held: self-deadlock"
	e.tgtMu.Unlock()
	e.tgtMu.Unlock()
}

// lockTgt acquires the lowest-ranked lock; calling it while holding a
// higher rank inverts the hierarchy even though the Lock is in another
// function.
func (e *engine) lockTgt() {
	e.tgtMu.Lock()
	defer e.tgtMu.Unlock()
}

func (e *engine) callInverts() {
	e.cmplMu.Lock()
	defer e.cmplMu.Unlock()
	e.lockTgt() // want `call to lockTgt, which acquires engine.tgtMu \(rank 10\), while holding engine.cmplMu \(rank 20\)`
}

func (e *engine) callRelocks() {
	e.tgtMu.Lock()
	defer e.tgtMu.Unlock()
	e.lockTgt() // want "call to lockTgt, which acquires engine.tgtMu, while engine.tgtMu is already held: self-deadlock"
}

func (e *engine) sendUnderLock(v int) {
	e.tgtMu.Lock()
	defer e.tgtMu.Unlock()
	e.done <- v // want `channel send while holding engine.tgtMu \(rank 10\)`
}

// The held set follows into nested blocks: the dominating Lock definitely
// happened on every path that reaches the send.
func (e *engine) sendUnderLockNested(v int, cond bool) {
	e.cmplMu.Lock()
	defer e.cmplMu.Unlock()
	if cond {
		e.done <- v // want `channel send while holding engine.cmplMu \(rank 20\)`
	}
}
