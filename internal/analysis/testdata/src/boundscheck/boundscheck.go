// Package boundscheck is the golden input for the boundscheck analyzer.
package boundscheck

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

const slots = 8

func overrun(p *runtime.Proc, target int) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(128)
	_, _ = s.Put(src, 9, rma.Int64, tm, 0, rma.WithBlocking())  // want "Put of 72 bytes at displacement 0 exceeds the 64-byte exposure"
	_, _ = s.Put(src, 1, rma.Int64, tm, 60, rma.WithBlocking()) // want "Put of 8 bytes at displacement 60 exceeds the 64-byte exposure"
	_, _ = s.Get(src, 8, rma.Int64, tm, 8, rma.WithBlocking())  // want "Get of 64 bytes at displacement 8 exceeds the 64-byte exposure"
	_ = s.Complete()
}

func constantFolding(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(slots * 8)
	src := p.Alloc(128)
	_, _ = s.Put(src, slots, rma.Int64, tm, 8, rma.WithBlocking()) // want "Put of 64 bytes at displacement 8 exceeds the 64-byte exposure"
	_, _ = s.Put(src, slots, rma.Int64, tm, 0, rma.WithBlocking()) // exactly fits: no report
	_ = s.Complete()
}

func negativeDisplacement(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, -8, rma.WithBlocking()) // want "Put at negative displacement -8"
	_ = s.Complete()
}

func rmwWord(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	_, _ = s.FetchAdd(tm, 60, 1)       // want "FetchAdd of 8 bytes at displacement 60 exceeds the 64-byte exposure"
	_, _ = s.CompareSwap(tm, 64, 0, 1) // want "CompareSwap of 8 bytes at displacement 64 exceeds the 64-byte exposure"
	_, _ = s.FetchAdd(tm, 56, 1)       // last word: no report
}

func accumulateShape(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(32)
	src := p.Alloc(64)
	_, _ = s.Accumulate(rma.Sum, src, 5, rma.Int64, tm, 0, rma.WithBlocking()) // want "Accumulate of 40 bytes at displacement 0 exceeds the 32-byte exposure"
	_ = s.Complete()
}

func inBoundsIsFine(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(64)
	_, _ = s.Put(src, 8, rma.Int64, tm, 0, rma.WithBlocking())
	_, _ = s.Put(src, 16, rma.Float32, tm, 0, rma.WithBlocking())
	_, _ = s.Get(src, 4, rma.Int64, tm, 32, rma.WithBlocking())
	_ = s.Complete()
}

// A non-constant size, displacement, or count defeats folding: no reports.
func dynamicQuantitiesAreFine(p *runtime.Proc, size, disp, count int) {
	s := rma.Open(p)
	tm, _ := s.Expose(size)
	src := p.Alloc(1024)
	_, _ = s.Put(src, 9, rma.Int64, tm, 0, rma.WithBlocking())
	tm2, _ := s.Expose(64)
	_, _ = s.Put(src, count, rma.Int64, tm2, 0, rma.WithBlocking())
	_, _ = s.Put(src, 1, rma.Int64, tm2, disp, rma.WithBlocking())
	_ = s.Complete()
}

// WithTargetLayout changes the target-side extent; the symmetric-layout
// fold does not apply.
func targetLayoutDefeatsFolding(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(128)
	_, _ = s.Put(src, 16, rma.Int64, tm, 0, rma.WithTargetLayout(1, rma.Vector(8, 4, 8, rma.Byte)), rma.WithBlocking())
	_ = s.Complete()
}

// Reassigned descriptors have unknown sizes.
func reassignedIsUnknown(p *runtime.Proc, other rma.TargetMem) {
	s := rma.Open(p)
	tm, _ := s.Expose(16)
	tm = other
	src := p.Alloc(64)
	_, _ = s.Put(src, 8, rma.Int64, tm, 0, rma.WithBlocking())
	_ = s.Complete()
}

func suppressed(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(16)
	src := p.Alloc(64)
	//rmalint:ignore boundscheck exercising the runtime ErrBounds path
	_, _ = s.Put(src, 8, rma.Int64, tm, 0, rma.WithBlocking())
	_ = s.Complete()
}
