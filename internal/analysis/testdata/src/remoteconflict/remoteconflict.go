// Package remoteconflict is the golden input for the remoteconflict
// analyzer: constant-foldable remote accesses whose byte intervals
// overlap with a writer and nothing legalizing in between, plus the
// legalized/atomic/disjoint variants that must stay silent.
package remoteconflict

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

func overlappingPuts(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(16)
	_, _ = s.Put(src, 2, rma.Int64, tm, 0)
	_, _ = s.Put(src, 1, rma.Int64, tm, 8) // want `Put of bytes \[8,16\) overlaps the Put of bytes \[0,16\)`
	_ = s.Complete()
}

func putThenOverlappingGet(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	_, _ = s.Get(src, 1, rma.Int64, tm, 0) // want `Get of bytes \[0,8\) overlaps the Put of bytes \[0,8\)`
	_ = s.Complete()
}

func rmwVsPlainPut(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	_, _ = s.FetchAdd(tm, 0, 1) // want `FetchAdd of bytes \[0,8\) overlaps the Put of bytes \[0,8\)`
	_ = s.Complete()
}

func orderLegalizes(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	_ = s.Order()
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	_ = s.Complete()
}

func completeLegalizes(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	_ = s.Complete(tm.Owner)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	_ = s.Complete()
}

func atomicPairIsFine(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(8)
	_, _ = s.Accumulate(rma.Sum, src, 1, rma.Int64, tm, 0, rma.WithAtomic())
	_, _ = s.Accumulate(rma.Sum, src, 1, rma.Int64, tm, 0, rma.WithAtomic())
	_ = s.Complete()
}

func rmwPairIsFine(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	_, _ = s.FetchAdd(tm, 0, 1)
	_, _ = s.FetchAdd(tm, 0, 1)
	_ = s.Complete()
}

func disjointIsFine(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	_, _ = s.Put(src, 1, rma.Int64, tm, 8)
	_ = s.Complete()
}

func readsAreFine(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	dst := p.Alloc(8)
	_, _ = s.Get(dst, 1, rma.Int64, tm, 0)
	_, _ = s.Get(dst, 1, rma.Int64, tm, 0)
	_ = s.Complete()
}

func distinctHandlesAreFine(p *runtime.Proc) {
	s := rma.Open(p)
	tm1, _ := s.Expose(64)
	tm2, _ := s.Expose(64)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm1, 0)
	_, _ = s.Put(src, 1, rma.Int64, tm2, 0)
	_ = s.Complete()
}

// Non-constant displacements cannot be folded: state for the handle is
// dropped, never guessed.
func dynamicDispIsSkipped(p *runtime.Proc, disp int) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, disp)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	_ = s.Complete()
}

// stampZero is a summarized helper whose constant access splices into
// callers.
func stampZero(s *rma.Session, tm rma.TargetMem, src rma.Region) {
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
}

// helperThenDirect: the helper's write and the direct write overlap; the
// conflict crosses a function boundary (the pin test proves the PR 3
// analyzer misses it).
func helperThenDirect(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(8)
	stampZero(s, tm, src)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0) // want `Put of bytes \[0,8\) overlaps the Put of bytes \[0,8\)`
	_ = s.Complete()
}

// stampAndComplete legalizes before returning: callers start clean.
func stampAndComplete(s *rma.Session, tm rma.TargetMem, src rma.Region) {
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	_ = s.Complete()
}

func legalizingHelperIsFine(p *runtime.Proc) {
	s := rma.Open(p)
	tm, _ := s.Expose(64)
	src := p.Alloc(8)
	stampAndComplete(s, tm, src)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	_ = s.Complete()
}
