// Package replok is the clean golden input for the attrmisuse
// replication check: the package installs a fault plan, so ranks can die
// and the replica round-trip buys real protection — nothing is reported.
package replok

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

var plan = &rma.FaultPlan{Seed: 1, Default: rma.LinkFaults{Drop: 0.1}}

func replicationWithFaultsSameCall(p *runtime.Proc) {
	_ = rma.Open(p,
		rma.WithFaults(plan),
		rma.WithReplication())
}

func replicationAlone(p *runtime.Proc) {
	// Fine: another Open in this package installs the plan (SPMD ranks
	// often split the configuration across helpers).
	_ = rma.Open(p, rma.WithReplication())
}

func faultsByFieldAssignment(cfg *runtime.Config) {
	// Assigning the field (rather than a composite-literal key) also
	// counts as installing a plan — launcher-style code builds the
	// Config imperatively behind flags.
	cfg.Faults = plan
}
