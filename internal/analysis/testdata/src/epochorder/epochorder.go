// Package epochorder is the golden input for the epochorder analyzer.
package epochorder

import (
	"mpi3rma/internal/mpi2rma"
	"mpi3rma/internal/runtime"
)

func unlockWithoutLock(p *runtime.Proc) {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, err := r.WinCreate(p.Comm(), p.Alloc(64))
	if err != nil {
		return
	}
	_ = w.Unlock(1) // want "Unlock on rank 1 without holding the lock"
}

func doubleLock(p *runtime.Proc, w *mpi2rma.Win) {
	_ = w.Lock(mpi2rma.LockExclusive, 1)
	_ = w.Lock(mpi2rma.LockShared, 1) // want "Lock on rank 1 while already holding a lock on that rank"
	_ = w.Unlock(1)
}

func lockUnlockIsFine(p *runtime.Proc, w *mpi2rma.Win) {
	_ = w.Lock(mpi2rma.LockExclusive, 1)
	_ = w.Unlock(1)
	_ = w.Lock(mpi2rma.LockShared, 1)
	_ = w.Unlock(1)
}

func distinctRanksAreFine(w *mpi2rma.Win) {
	_ = w.Lock(mpi2rma.LockShared, 0)
	_ = w.Lock(mpi2rma.LockShared, 1)
	_ = w.Unlock(0)
	_ = w.Unlock(1)
}

func completeWithoutStart(p *runtime.Proc) {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, err := r.WinCreate(p.Comm(), p.Alloc(64))
	if err != nil {
		return
	}
	_ = w.Complete() // want "Complete without a matching Start"
}

func waitWithoutPost(p *runtime.Proc) {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, err := r.WinCreate(p.Comm(), p.Alloc(64))
	if err != nil {
		return
	}
	_ = w.Wait() // want "Wait without a matching Post"
}

func pscwRoundTripIsFine(w *mpi2rma.Win) {
	_ = w.Start([]int{1})
	_ = w.Complete()
	_ = w.Post([]int{1})
	_ = w.Wait()
}

func doubleStart(w *mpi2rma.Win) {
	_ = w.Start([]int{1})
	_ = w.Start([]int{2}) // want "Start while an access epoch is already open"
}

func fenceInsideLockEpoch(w *mpi2rma.Win) {
	_ = w.Lock(mpi2rma.LockExclusive, 1)
	_ = w.Fence() // want "Fence while a PSCW or lock epoch is open"
}

func freeInsideEpoch(w *mpi2rma.Win) {
	_ = w.Post([]int{1})
	_ = w.Free() // want "Free inside an open epoch"
}

func useAfterFree(w *mpi2rma.Win) {
	_ = w.Free()
	_ = w.Fence() // want "Fence on a window after Free"
}

func accessOutsideEpoch(p *runtime.Proc) {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, err := r.WinCreate(p.Comm(), p.Alloc(64))
	if err != nil {
		return
	}
	src := p.Alloc(8)
	_ = w.Put(src, 8, nil, 1, 0, 8, nil) // want "RMA Put outside any epoch"
}

func accessInsideFenceIsFine(p *runtime.Proc) {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, err := r.WinCreate(p.Comm(), p.Alloc(64))
	if err != nil {
		return
	}
	src := p.Alloc(8)
	_ = w.Fence()
	_ = w.Put(src, 8, nil, 1, 0, 8, nil)
	_ = w.Fence()
}

// Unknown windows (parameters) start with unknown state: nothing on them
// is provable, so nothing is reported.
func unknownWindowIsFine(w *mpi2rma.Win) {
	_ = w.Complete()
	_ = w.Wait()
	_ = w.Unlock(3)
	_ = w.Fence()
}

// Branches are separate statement lists: a Lock in one arm never leaks
// into the other.
func branchesDoNotMerge(w *mpi2rma.Win, flip bool) {
	if flip {
		_ = w.Lock(mpi2rma.LockExclusive, 0)
		_ = w.Unlock(0)
	} else {
		_ = w.Lock(mpi2rma.LockShared, 0)
		_ = w.Unlock(0)
	}
}

// Non-constant ranks make the lock set unknowable; later constant locking
// must not be misreported.
func dynamicRank(w *mpi2rma.Win, r int) {
	_ = w.Lock(mpi2rma.LockShared, r)
	_ = w.Lock(mpi2rma.LockShared, 2)
	_ = w.Unlock(r)
	_ = w.Unlock(2)
}

func suppressed(w *mpi2rma.Win) {
	_ = w.Start([]int{1})
	_ = w.Start([]int{2}) //rmalint:ignore epochorder deliberate for the harness
}

// Deferred calls run at list exit, not where they are written: the
// deferred Unlock must not close the epoch before the Put that follows
// it textually.
func deferUnlockIsFine(p *runtime.Proc) {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, err := r.WinCreate(p.Comm(), p.Alloc(64))
	if err != nil {
		return
	}
	src := p.Alloc(8)
	_ = w.Lock(mpi2rma.LockExclusive, 1)
	defer w.Unlock(1)
	_ = w.Put(src, 8, nil, 1, 0, 8, nil)
}

// A deferred Unlock with no lock ever taken is still a violation — it is
// applied (and reported) at the point the list ends.
func deferUnlockWithoutLock(p *runtime.Proc) {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, err := r.WinCreate(p.Comm(), p.Alloc(64))
	if err != nil {
		return
	}
	defer w.Unlock(1) // want "Unlock on rank 1 without holding the lock"
}

// Defers run LIFO: the Unlock defer registered last runs first, so the
// pair below balances exactly once in the right order.
func deferLifoIsFine(p *runtime.Proc) {
	r := mpi2rma.Attach(p, mpi2rma.Options{})
	w, err := r.WinCreate(p.Comm(), p.Alloc(64))
	if err != nil {
		return
	}
	defer w.Free()
	_ = w.Lock(mpi2rma.LockExclusive, 2)
	defer w.Unlock(2)
}
