// Package lostrequestx is the golden input for the lostrequest analyzer's
// interprocedural tier: helper functions that produce requests or reach
// completion calls, followed through their summaries. The pin test
// re-runs this package with summaries disabled (the PR 3 behavior) and
// asserts the helper-producer report disappears while the
// helper-completes case regresses into a false positive.
package lostrequestx

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

// fire is a request-producing helper: it issues a nonblocking Put and
// hands the fresh request to its caller, who becomes responsible for it.
func fire(s *rma.Session, tm rma.TargetMem, src rma.Region) *rma.Request {
	req, _ := s.Put(src, 1, rma.Int64, tm, 0)
	return req
}

// helperRequestDropped: discarding fire's result is the same bug as
// discarding Put's.
func helperRequestDropped(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	fire(s, tm, src) // want "request returned by fire is discarded"
}

// helperRequestAwaited: keeping the helper's request and waiting on it is
// the intended protocol.
func helperRequestAwaited(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	req := fire(s, tm, src)
	req.Wait()
}

// finish is a completing helper: its summary carries completes=true.
func finish(s *rma.Session) {
	_ = s.Complete()
}

// completesViaHelper: the discarded Put is completed by finish — without
// the summary this was a false positive.
func completesViaHelper(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0)
	finish(s)
}

// bareProducerStatement: dropping both results on the floor with a bare
// call statement is as lost as a blank assignment.
func bareProducerStatement(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	s.Put(src, 1, rma.Int64, tm, 0) // want "request returned by Put is discarded"
}

// deadSliceOfRequests: requests accumulate in a slice nothing reads, so
// every one of them is lost.
func deadSliceOfRequests(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	var reqs []*rma.Request
	for i := 0; i < 4; i++ {
		req, err := s.Get(src, 1, rma.Int64, tm, 8*i)
		if err != nil {
			return
		}
		reqs = append(reqs, req) // want "requests are appended to reqs but the slice is never read"
	}
}

// liveSliceOfRequests: the same shape, but the slice is ranged over and
// awaited — no report.
func liveSliceOfRequests(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	var reqs []*rma.Request
	for i := 0; i < 4; i++ {
		req, err := s.Get(src, 1, rma.Int64, tm, 8*i)
		if err != nil {
			return
		}
		reqs = append(reqs, req)
	}
	for _, req := range reqs {
		req.Wait()
	}
}

// fireBlocking returns no live request: the operation already completed,
// so discarding the helper's result is fine.
func fireBlocking(s *rma.Session, tm rma.TargetMem, src rma.Region) *rma.Request {
	req, _ := s.Put(src, 1, rma.Int64, tm, 0, rma.WithBlocking())
	return req
}

func blockingHelperDropIsFine(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	fireBlocking(s, tm, src)
}
