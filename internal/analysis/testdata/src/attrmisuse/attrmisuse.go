// Package attrmisuse is the golden input for the attrmisuse analyzer.
package attrmisuse

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/serializer"
	"mpi3rma/rma"
)

func sessionOnlyOnTransfer(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithBatch(8), rma.WithBlocking())                                         // want "WithBatch is ignored on Put"
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithMetrics(), rma.WithBlocking())                                        // want "WithMetrics is ignored on Put"
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithEvents(16), rma.WithBlocking())                                       // want "WithEvents is ignored on Put"
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithFlightRecorder(""), rma.WithBlocking())                               // want "WithFlightRecorder is ignored on Put"
	_, _ = s.Accumulate(rma.Sum, src, 1, rma.Int64, tm, 0, rma.WithAtomicity(serializer.MechThread), rma.WithBlocking()) // want "WithAtomicity is ignored on Accumulate"
	_ = s.CompleteAll()
}

func sessionOptionsAtOpenAreFine(p *runtime.Proc) {
	_ = rma.Open(p, rma.WithBatch(8), rma.WithBatchBytes(1024), rma.WithMetrics(), rma.WithTracing(0), rma.WithChecker())
	_ = rma.Open(p, rma.WithApplyShards(8), rma.WithApplyWorkers(4), rma.WithFlightRecorder(""))
}

func shardingOnTransfer(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithApplyShards(8), rma.WithBlocking())  // want "WithApplyShards is ignored on Put"
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithApplyWorkers(4), rma.WithBlocking()) // want "WithApplyWorkers is ignored on Put"
	_ = s.CompleteAll()
}

func duplicateOption(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithOrdering(), rma.WithOrdering(), rma.WithBlocking()) // want "duplicate option WithOrdering"
	_ = s.CompleteAll()
}

func notifyOnPutNotify(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.PutNotify(src, 1, rma.Int64, tm, 0, rma.WithNotify(), rma.WithBlocking()) // want "WithNotify is redundant on PutNotify"
	_ = s.CompleteAll()
}

func rmwNoOps(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	_, _ = s.FetchAdd(tm, 0, 1, rma.WithAtomic())               // want "WithAtomic is a no-op on FetchAdd"
	_, _ = s.FetchAdd(tm, 0, 1, rma.WithBlocking())             // want "WithBlocking is a no-op on FetchAdd"
	_, _ = s.CompareSwap(tm, 0, 0, 1, rma.WithRemoteComplete()) // want "WithRemoteComplete is a no-op on CompareSwap"
	_, _ = s.FetchAdd(tm, 0, 1, rma.WithOrdering())             // ordering is meaningful on RMWs: no report
}

func getNoOps(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	dst := p.Alloc(8)
	_, _ = s.Get(dst, 1, rma.Int64, tm, 0, rma.WithRemoteComplete(), rma.WithBlocking()) // want "WithRemoteComplete is a no-op on Get"
	_, _ = s.Get(dst, 1, rma.Int64, tm, 0, rma.WithNotify(), rma.WithBlocking())         // want "WithNotify is a no-op on Get"
	_ = s.CompleteAll()
}

func strictDebugImplies(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, // want "WithOrdering is redundant alongside WithStrictDebug"
		rma.WithStrictDebug(), rma.WithOrdering())
	_ = s.CompleteAll()
}

func targetLayoutAtOpen(p *runtime.Proc) {
	_ = rma.Open(p, rma.WithTargetLayout(4, rma.Int32)) // want "WithTargetLayout is meaningless at Open"
}

func targetLayoutOnTransferIsFine(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(16)
	_, _ = s.Put(src, 16, rma.Byte, tm, 0, rma.WithTargetLayout(1, rma.Vector(4, 4, 8, rma.Byte)), rma.WithBlocking())
	_ = s.CompleteAll()
}

func suppressed(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	//rmalint:ignore attrmisuse exercising the ignored-option path on purpose
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithBatch(4), rma.WithBlocking())
	_ = s.CompleteAll()
}
