// Package attrmisuse is the golden input for the attrmisuse analyzer.
// Session-only options on transfer calls and WithTargetLayout at Open no
// longer appear here: since the SessionOption/OpOption split they do not
// type-check, so the analyzer's job shrank to the combinations the
// compiler cannot see.
package attrmisuse

import (
	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

func sessionOptionsAtOpenAreFine(p *runtime.Proc) {
	_ = rma.Open(p, rma.WithBatch(8), rma.WithBatchBytes(1024), rma.WithMetrics(), rma.WithTracing(0), rma.WithChecker())
	_ = rma.Open(p, rma.WithApplyShards(8), rma.WithApplyWorkers(4), rma.WithFlightRecorder(""))
}

func duplicateOption(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithOrdering(), rma.WithOrdering(), rma.WithBlocking()) // want "duplicate option WithOrdering"
	_ = s.Complete()
}

func notifyOnPutNotify(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.PutNotify(src, 1, rma.Int64, tm, 0, rma.WithNotify(), rma.WithBlocking()) // want "WithNotify is redundant on PutNotify"
	_ = s.Complete()
}

func rmwNoOps(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	_, _ = s.FetchAdd(tm, 0, 1, rma.WithAtomic())               // want "WithAtomic is a no-op on FetchAdd"
	_, _ = s.FetchAdd(tm, 0, 1, rma.WithBlocking())             // want "WithBlocking is a no-op on FetchAdd"
	_, _ = s.CompareSwap(tm, 0, 0, 1, rma.WithRemoteComplete()) // want "WithRemoteComplete is a no-op on CompareSwap"
	_, _ = s.FetchAdd(tm, 0, 1, rma.WithOrdering())             // ordering is meaningful on RMWs: no report
}

func getNoOps(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	dst := p.Alloc(8)
	_, _ = s.Get(dst, 1, rma.Int64, tm, 0, rma.WithRemoteComplete(), rma.WithBlocking()) // want "WithRemoteComplete is a no-op on Get"
	_, _ = s.Get(dst, 1, rma.Int64, tm, 0, rma.WithNotify(), rma.WithBlocking())         // want "WithNotify is a no-op on Get"
	_ = s.Complete()
}

func strictDebugImplies(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, // want "WithOrdering is redundant alongside WithStrictDebug"
		rma.WithStrictDebug(), rma.WithOrdering())
	_ = s.Complete()
}

func targetLayoutOnTransferIsFine(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(16)
	_, _ = s.Put(src, 16, rma.Byte, tm, 0, rma.WithTargetLayout(1, rma.Vector(4, 4, 8, rma.Byte)), rma.WithBlocking())
	_ = s.Complete()
}

// deprecatedOptionAlias still compiles — the alias is kept one release —
// but every mention of the old type name is flagged.
func deprecatedOptionAlias(p *runtime.Proc, tm rma.TargetMem) {
	opts := []rma.Option{rma.WithOrdering()} // want "rma.Option is a deprecated alias"
	s := rma.Open(p)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, opts[0], rma.WithBlocking())
	_ = s.Complete()
}

func typedTaxonomyIsClean(p *runtime.Proc, tm rma.TargetMem) {
	sessionOpts := []rma.SessionOption{rma.WithMetrics(), rma.WithOrdering()}
	opOpts := []rma.OpOption{rma.WithOrdering()}
	var attr rma.AttrOption = rma.WithBlocking()
	s := rma.Open(p, sessionOpts...)
	src := p.Alloc(8)
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, append(opOpts, attr)...)
	_ = s.Complete()
}

func suppressed(p *runtime.Proc, tm rma.TargetMem) {
	s := rma.Open(p)
	src := p.Alloc(8)
	//rmalint:ignore attrmisuse exercising the duplicate-option path on purpose
	_, _ = s.Put(src, 1, rma.Int64, tm, 0, rma.WithOrdering(), rma.WithOrdering(), rma.WithBlocking())
	_ = s.Complete()
}
