package analysis

import (
	"go/ast"
	"go/types"
)

// This file builds the intra-package call graph the interprocedural tier
// (summary.go) is computed over. Nodes are the package's own declared
// functions and methods with bodies; edges point at same-package callees
// resolved through the type checker. Calls through function values,
// interfaces, and other packages have no node here — the summary layer
// treats them as unknown, which is what keeps every report definite.

// cgNode is one declared function in the package's call graph.
type cgNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	// callees are the same-package functions this body may invoke,
	// including calls made inside nested blocks and function literals
	// (may-semantics: the summary layer decides per effect how much of
	// the body it trusts).
	callees map[*types.Func]bool
	// scc is the index of this node's strongly connected component.
	// Components are numbered in the order Tarjan emits them, which is
	// bottom-up: every callee outside the component has a smaller index.
	scc int

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
}

// callGraph is the package's call graph plus a bottom-up traversal order.
type callGraph struct {
	nodes map[*types.Func]*cgNode
	// order lists every node so that all callees of a node either precede
	// it or share its SCC. Summaries are computed in this order.
	order []*cgNode
	// sccSize counts the members of each component: a component of size
	// one with no self-loop is non-recursive and can be summarized
	// precisely; anything else degrades to unknown.
	sccSize map[int]int
}

// recursive reports whether fn takes part in recursion (its SCC has more
// than one member, or it calls itself).
func (g *callGraph) recursive(fn *types.Func) bool {
	n := g.nodes[fn]
	if n == nil {
		return false
	}
	return g.sccSize[n.scc] > 1 || n.callees[fn]
}

// buildCallGraph constructs the call graph for one loaded package.
func buildCallGraph(pkg *Package) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*cgNode{}, sccSize: map[int]int{}}

	// Pass 1: nodes, one per declared function with a body.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.nodes[fn] = &cgNode{fn: fn, decl: fd, callees: map[*types.Func]bool{}, index: -1}
		}
	}

	// Pass 2: edges to same-package declared callees.
	for _, n := range g.nodes {
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if target := callee(pkg.Info, call); target != nil && g.nodes[target] != nil {
				n.callees[target] = true
			}
			return true
		})
	}

	// Tarjan's SCC algorithm, iterative in spirit but the package graphs
	// here are small enough that plain recursion is fine. Components pop
	// in bottom-up order: a component is emitted only after everything it
	// reaches has been.
	var (
		idx   int
		stack []*cgNode
		visit func(n *cgNode)
	)
	visit = func(n *cgNode) {
		n.index, n.lowlink = idx, idx
		idx++
		stack = append(stack, n)
		n.onStack = true
		for callee := range n.callees {
			m := g.nodes[callee]
			if m.index < 0 {
				visit(m)
				if m.lowlink < n.lowlink {
					n.lowlink = m.lowlink
				}
			} else if m.onStack && m.index < n.lowlink {
				n.lowlink = m.index
			}
		}
		if n.lowlink == n.index {
			scc := len(g.sccSize)
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				m.scc = scc
				g.sccSize[scc]++
				g.order = append(g.order, m)
				if m == n {
					break
				}
			}
		}
	}
	// Deterministic visit order: files then declaration order.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					if n := g.nodes[fn]; n != nil && n.index < 0 {
						visit(n)
					}
				}
			}
		}
	}
	return g
}
