package analysis

import (
	"go/ast"
	"go/types"
)

// Well-known paths of the RMA-backed data-structure service layer.
const (
	dhtPath      = "mpi3rma/dht"
	dhtQueuePath = "mpi3rma/dht/queue"
)

// DHTRawAnalyzer flags mutating raw-Session operations aimed at memory
// that belongs to a dht service handle. Map.Stripes() and Queue.Mem()
// return the live TargetMem descriptors the protocols run on; a raw
// Session.Put/Accumulate/CompareSwap/FetchAdd through them scribbles over
// bucket lock words or slot sequence words and corrupts the structure for
// every rank. Read-only operations (Session.Get, Session.FetchWord) are
// deliberately not flagged: the descriptors exist so diagnostics and
// convergence tests can read converged state.
var DHTRawAnalyzer = &Analyzer{
	Name: "dhtraw",
	Doc: "finds raw mutating Session operations (Put, PutNotify,\n" +
		"Accumulate, AccumulateAxpy, FetchAdd, CompareSwap) whose target\n" +
		"descriptor came from dht.Map.Stripes() or queue.Queue.Mem() —\n" +
		"going around the service API corrupts bucket lock words and slot\n" +
		"sequence words; use Map.Put/Get/Delete/CAS and\n" +
		"Queue.Enqueue/Dequeue instead. Read-only Session.Get and\n" +
		"Session.FetchWord on the same descriptors stay legal (diagnostics\n" +
		"and byte-exact convergence checks).",
	Run: runDHTRaw,
}

// dhtTaintSources maps the accessor methods that leak protocol memory to
// a short name for the structure they belong to.
var dhtTaintSources = map[string]string{
	dhtPath + ".Map.Stripes":    "dht.Map.Stripes()",
	dhtQueuePath + ".Queue.Mem": "queue.Queue.Mem()",
}

// dhtRawMutators maps mutating Session methods to the index of their
// TargetMem argument.
var dhtRawMutators = map[string]int{
	rmaPath + ".Session.Put":            3,
	rmaPath + ".Session.PutNotify":      3,
	rmaPath + ".Session.Accumulate":     4,
	rmaPath + ".Session.AccumulateAxpy": 4,
	rmaPath + ".Session.FetchAdd":       0,
	rmaPath + ".Session.CompareSwap":    0,
}

func runDHTRaw(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDHTRawFunc(pass, fn)
		}
	}
}

// checkDHTRawFunc tracks, within one function, which variables hold
// protocol descriptors (assigned from a taint source, or derived from a
// tainted value by indexing, slicing, or ranging) and reports mutating
// raw Session calls that target them. Statements are visited in source
// order, which covers the straight-line assignment chains the accessors
// appear in.
func checkDHTRawFunc(pass *Pass, fn *ast.FuncDecl) {
	tainted := map[types.Object]string{}

	// source resolves the structure name an expression's descriptor came
	// from, or "" for untainted expressions.
	var source func(e ast.Expr) string
	source = func(e ast.Expr) string {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return dhtTaintSources[calleeKey(pass.TypesInfo, e)]
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil {
				return tainted[obj]
			}
		case *ast.IndexExpr:
			return source(e.X)
		case *ast.SliceExpr:
			return source(e.X)
		case *ast.UnaryExpr:
			return source(e.X)
		case *ast.StarExpr:
			return source(e.X)
		}
		return ""
	}
	mark := func(lhs ast.Expr, src string) {
		if src == "" {
			return
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				tainted[obj] = src
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				tainted[obj] = src
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					mark(n.Lhs[i], source(n.Rhs[i]))
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				mark(n.Value, source(n.X))
			}
		case *ast.CallExpr:
			idx, ok := dhtRawMutators[calleeKey(pass.TypesInfo, n)]
			if !ok || len(n.Args) <= idx {
				return true
			}
			if src := source(n.Args[idx]); src != "" {
				fnName := callee(pass.TypesInfo, n).Name()
				pass.Reportf(n.Pos(), "raw Session.%s on a descriptor from %s bypasses the service protocol (bucket lock/version words, slot sequence words) and corrupts the structure for every rank; use the service API — Map.Put/Get/Delete/CAS, Queue.Enqueue/Dequeue", fnName, src)
			}
		}
		return true
	})
}
