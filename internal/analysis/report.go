package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReportVersion is the schema version of the JSON findings report. Bump
// it on any incompatible change; DecodeReport rejects versions it does
// not understand, so CI consumers fail loudly instead of misreading.
const ReportVersion = 1

// Report is the versioned JSON document `rmalint -json` emits.
type Report struct {
	Version int `json:"version"`
	// Analyzers lists the analyzers that ran, in reporting order.
	Analyzers []string  `json:"analyzers"`
	Findings  []Finding `json:"findings"`
	// Suppressed counts findings muted by //rmalint:ignore comments,
	// per analyzer name.
	Suppressed map[string]int `json:"suppressed,omitempty"`
}

// Finding is one diagnostic, fully located.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// NewReport assembles the report for one Run outcome.
func NewReport(analyzers []*Analyzer, res *Result) *Report {
	r := &Report{Version: ReportVersion, Findings: []Finding{}}
	for _, a := range analyzers {
		r.Analyzers = append(r.Analyzers, a.Name)
	}
	for _, d := range res.Diagnostics {
		r.Findings = append(r.Findings, Finding{
			File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	if len(res.Suppressed) > 0 {
		r.Suppressed = res.Suppressed
	}
	return r
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport parses a report and checks the schema version.
func DecodeReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("decoding rmalint report: %w", err)
	}
	if r.Version != ReportVersion {
		return nil, fmt.Errorf("rmalint report version %d, this reader understands %d", r.Version, ReportVersion)
	}
	return &r, nil
}
