package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// LostRequestAnalyzer reports nonblocking RMA operations whose returned
// request is discarded in a function that never reaches a completion call:
// the operation may never be applied, and nothing will ever say so — the
// one-sided analogue of dropping an error.
var LostRequestAnalyzer = &Analyzer{
	Name: "lostrequest",
	Doc: "finds Put/Get/Accumulate requests that are discarded (assigned to _\n" +
		"or never used) in functions with no later Complete/CompleteAll/\n" +
		"CompleteCollective; such operations have no completion point at all.\n" +
		"Blocking operations (WithBlocking, AttrBlocking) are exempt.",
	Run: runLostRequest,
}

// requestProducers return (*Request, error); the request is the only handle
// on local completion.
var requestProducers = map[string]bool{
	rmaPath + ".Session.Put":            true,
	rmaPath + ".Session.PutNotify":      true,
	rmaPath + ".Session.Get":            true,
	rmaPath + ".Session.Accumulate":     true,
	rmaPath + ".Session.AccumulateAxpy": true,
	corePath + ".Engine.Put":            true,
	corePath + ".Engine.Get":            true,
	corePath + ".Engine.Accumulate":     true,
	corePath + ".Engine.AccumulateAxpy": true,
}

// completers guarantee completion of previously-issued operations without
// the request.
var completers = map[string]bool{
	rmaPath + ".Session.Complete":           true,
	rmaPath + ".Session.CompleteAll":        true,
	rmaPath + ".Session.CompleteCollective": true,
	corePath + ".Engine.Complete":           true,
	corePath + ".Engine.CompleteCollective": true,
}

func runLostRequest(pass *Pass) {
	// Each declaration body is scanned once, closures included: a closure
	// shares its enclosing function's lexical order, so a completion after
	// (or inside) it counts for requests issued before it and vice versa.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLostRequests(pass, fd.Body)
			}
		}
	}
}

func checkLostRequests(pass *Pass, body *ast.BlockStmt) {
	// Every completion call anywhere in the body (including nested blocks
	// and closures) counts, by position: crossing control flow we only
	// claim "no completion is even reachable from here", which keeps the
	// analyzer free of false positives at the cost of missing some lost
	// requests behind conditionals.
	var completions []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && completers[calleeKey(pass.TypesInfo, call)] {
			completions = append(completions, call.Pos())
		}
		return true
	})
	completionAfter := func(pos token.Pos) bool {
		for _, c := range completions {
			if c > pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(pass.TypesInfo, call)
		if !requestProducers[funcKey(fn)] || len(assign.Lhs) != 2 {
			return true
		}
		if isBlockingCall(pass.TypesInfo, call) {
			return true
		}
		lhs, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true // stored into a slice/field: escapes
		}
		if lhs.Name != "_" {
			obj := pass.TypesInfo.Defs[lhs]
			if obj == nil {
				obj = pass.TypesInfo.Uses[lhs]
			}
			if obj == nil || usedElsewhere(pass.TypesInfo, body, obj, lhs) {
				return true
			}
		}
		if completionAfter(call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"request returned by %s is discarded and no Complete/CompleteAll/CompleteCollective follows in this function; the operation has no completion point (keep the request and Wait it, pass WithBlocking, or complete the target)",
			fn.Name())
		return true
	})
}

// isBlockingCall reports whether the operation call carries blocking
// semantics: the rma.WithBlocking() option, or (for engine-level calls) an
// attrs expression that constant-folds to a value with the AttrBlocking
// bit set, or one mentioning AttrBlocking or StrictDebugAttrs.
func isBlockingCall(info *types.Info, call *ast.CallExpr) bool {
	for _, opt := range optionCalls(info, call.Args) {
		name := callee(info, opt).Name()
		if name == "WithBlocking" || name == "WithStrictDebug" {
			return true
		}
	}
	for _, arg := range call.Args {
		// Constant attrs (including package-level consts like a library's
		// own blockingAttrs) fold to a value we can test directly.
		if attrHasBlockingBit(info, arg) {
			return true
		}
	}
	for _, arg := range call.Args {
		blocking := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == corePath &&
					(obj.Name() == "AttrBlocking" || obj.Name() == "StrictDebugAttrs") {
					blocking = true
				}
			}
			return !blocking
		})
		if blocking {
			return true
		}
	}
	return false
}

// attrHasBlockingBit reports whether arg is a constant expression of type
// core.Attr whose value has the AttrBlocking bit set. The bit's value is
// read from the core package's own AttrBlocking constant (reached through
// the argument's type), so the analyzer never hardcodes it.
func attrHasBlockingBit(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != corePath || obj.Name() != "Attr" {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return false
	}
	blocking, ok := obj.Pkg().Scope().Lookup("AttrBlocking").(*types.Const)
	if !ok {
		return false
	}
	bit, exact := constant.Int64Val(constant.ToInt(blocking.Val()))
	if !exact {
		return false
	}
	return v&bit != 0
}

// usedElsewhere reports whether obj is referenced in body at any identifier
// other than except (the assignment's own left-hand side).
func usedElsewhere(info *types.Info, body *ast.BlockStmt, obj types.Object, except *ast.Ident) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id != except && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
