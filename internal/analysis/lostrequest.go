package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LostRequestAnalyzer reports nonblocking RMA operations whose returned
// request is discarded in a function that never reaches a completion call:
// the operation may never be applied, and nothing will ever say so — the
// one-sided analogue of dropping an error.
//
// The interprocedural tier (summary.go) extends both sides of the check
// across function boundaries: a same-package helper that returns a fresh
// request counts as a producer (discarding its result is the same bug),
// and a helper that reaches Complete counts as a completion point.
var LostRequestAnalyzer = &Analyzer{
	Name: "lostrequest",
	Doc: "finds Put/Get/Accumulate requests that are discarded (assigned to _,\n" +
		"never used, dropped by a bare call statement, or accumulated in a\n" +
		"slice or struct field nothing ever reads) in functions with no later\n" +
		"Complete/CompleteCollective; such operations have no\n" +
		"completion point at all. Helpers that return fresh requests or reach\n" +
		"a completion call are followed through their summaries. Blocking\n" +
		"operations (WithBlocking, AttrBlocking) are exempt.",
	Run: runLostRequest,
}

// requestProducers return (*Request, error); the request is the only handle
// on local completion.
var requestProducers = map[string]bool{
	rmaPath + ".Session.Put":            true,
	rmaPath + ".Session.PutNotify":      true,
	rmaPath + ".Session.Get":            true,
	rmaPath + ".Session.Accumulate":     true,
	rmaPath + ".Session.AccumulateAxpy": true,
	corePath + ".Engine.Put":            true,
	corePath + ".Engine.Get":            true,
	corePath + ".Engine.Accumulate":     true,
	corePath + ".Engine.AccumulateAxpy": true,
}

func runLostRequest(pass *Pass) {
	sums := summariesFor(pass)
	// Each declaration body is scanned once, closures included: a closure
	// shares its enclosing function's lexical order, so a completion after
	// (or inside) it counts for requests issued before it and vice versa.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLostRequests(pass, sums, fd.Body)
			}
		}
	}
	checkRequestFields(pass, sums)
	checkDeadRequestSlices(pass, sums)
}

func checkLostRequests(pass *Pass, sums *pkgSummaries, body *ast.BlockStmt) {
	info := pass.TypesInfo
	// Every completion call anywhere in the body (including nested blocks
	// and closures) counts, by position: crossing control flow we only
	// claim "no completion is even reachable from here", which keeps the
	// analyzer free of false positives at the cost of missing some lost
	// requests behind conditionals. A call to a helper that may complete
	// (per its summary) is a completion point too.
	completionAfter := completionPositions(pass, sums, body)

	reportLost := func(call *ast.CallExpr, name string) {
		if completionAfter(call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(),
			"request returned by %s is discarded and no Complete/CompleteCollective follows in this function; the operation has no completion point (keep the request and Wait it, pass WithBlocking, or complete the target)",
			name)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			// A bare producer statement drops the request (and the error)
			// on the floor outright.
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if idx := sums.producedRequestIndex(info, call); idx >= 0 {
				reportLost(call, callee(info, call).Name())
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			idx := sums.producedRequestIndex(info, call)
			if idx < 0 || idx >= len(st.Lhs) {
				return true
			}
			lhs, ok := st.Lhs[idx].(*ast.Ident)
			if !ok {
				return true // stored into a slice/field: escapes (see checkRequestFields)
			}
			if lhs.Name != "_" {
				obj := info.Defs[lhs]
				if obj == nil {
					obj = info.Uses[lhs]
				}
				if obj == nil || usedElsewhere(info, body, obj, lhs) {
					return true
				}
			}
			reportLost(call, callee(info, call).Name())
		}
		return true
	})
}

// completionPositions collects every completion point in the body and
// returns the "is one after pos" predicate.
func completionPositions(pass *Pass, sums *pkgSummaries, body *ast.BlockStmt) func(token.Pos) bool {
	var completions []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if completers[calleeKey(pass.TypesInfo, call)] {
			completions = append(completions, call.Pos())
		} else if sum := sums.summaryOf(pass.TypesInfo, call); sum != nil && sum.completes {
			completions = append(completions, call.Pos())
		}
		return true
	})
	return func(pos token.Pos) bool {
		for _, c := range completions {
			if c > pos {
				return true
			}
		}
		return false
	}
}

// checkDeadRequestSlices reports local request slices that are only ever
// appended to: `reqs = append(reqs, r)` with no other use means nothing
// will ever range over the slice and Wait, so every request in it is as
// lost as a blank discard.
func checkDeadRequestSlices(pass *Pass, sums *pkgSummaries) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			completionAfter := completionPositions(pass, sums, fd.Body)

			// Pass 1: candidate slice variables and their append sites.
			appends := map[types.Object][]*ast.AssignStmt{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				assign, ok := n.(*ast.AssignStmt)
				if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
					return true
				}
				id, ok := assign.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id]
				}
				if obj == nil || !isRequestSlice(obj.Type()) {
					return true
				}
				call, ok := assign.Rhs[0].(*ast.CallExpr)
				if !ok || len(call.Args) < 2 {
					return true
				}
				if !isBuiltinAppend(info, call.Fun) {
					return true
				}
				if first := objectOf(info, call.Args[0]); first != obj {
					return true
				}
				appends[obj] = append(appends[obj], assign)
				return true
			})

			// Pass 2: a slice whose every use is accounted for by its own
			// append statements (LHS + first argument = 2 per append) is
			// never read.
			for obj, sites := range appends {
				if countUses(info, fd.Body, obj) != 2*len(sites) {
					continue
				}
				last := sites[len(sites)-1]
				if completionAfter(last.Pos()) {
					continue
				}
				pass.Reportf(sites[0].Pos(),
					"requests are appended to %s but the slice is never read or awaited and no completion follows; every request in it is lost (range over it and Wait, or complete the targets)",
					obj.Name())
			}
		}
	}
}

// checkRequestFields reports struct fields of request type that some
// method stores into but nothing in the package ever reads, in a package
// that never reaches a completion call: the canonical "stash the request
// for later, forget the later" bug.
func checkRequestFields(pass *Pass, sums *pkgSummaries) {
	info := pass.TypesInfo

	// A package that completes anywhere gets the benefit of the doubt:
	// target-side completion covers stored requests.
	packageCompletes := false
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && completers[calleeKey(info, call)] {
				packageCompletes = true
			}
			return !packageCompletes
		})
		if packageCompletes {
			return
		}
	}

	// Request-typed fields declared by this package's structs.
	fields := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil &&
						(isRequestPtr(obj.Type()) || isRequestSlice(obj.Type())) {
						fields[obj] = true
					}
				}
			}
			return true
		})
	}
	if len(fields) == 0 {
		return
	}

	// Classify every selector mention of each field as a store (assignment
	// LHS, including append-to-self) or a read (anything else).
	stores := map[types.Object][]token.Pos{}
	reads := map[types.Object]int{}
	selfAppend := func(assign *ast.AssignStmt, obj types.Object) bool {
		if len(assign.Rhs) != 1 {
			return false
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return false
		}
		if !isBuiltinAppend(info, call.Fun) {
			return false
		}
		if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
			return info.Uses[sel.Sel] == obj
		}
		return false
	}
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := info.Uses[sel.Sel]
			if obj == nil || !fields[obj] {
				return true
			}
			// A store is `x.f = ...` (this selector on the LHS); the
			// append-to-self argument of that same statement is part of the
			// store, not a read.
			isStore, isAppendArg := false, false
			for i := len(stack) - 2; i >= 0; i-- {
				if assign, ok := stack[i].(*ast.AssignStmt); ok {
					for _, lhs := range assign.Lhs {
						if ast.Unparen(lhs) == ast.Expr(sel) {
							isStore = true
						}
					}
					if !isStore && selfAppend(assign, obj) {
						if selArg, ok := ast.Unparen(assign.Rhs[0].(*ast.CallExpr).Args[0]).(*ast.SelectorExpr); ok && selArg == sel {
							isAppendArg = true
						}
					}
					break
				}
			}
			switch {
			case isStore:
				stores[obj] = append(stores[obj], sel.Pos())
			case isAppendArg:
				// neither a store nor a read
			default:
				reads[obj]++
			}
			return true
		})
	}

	for obj, sites := range stores {
		if reads[obj] > 0 {
			continue
		}
		for _, pos := range sites {
			pass.Reportf(pos,
				"request stored in field %s is never read anywhere in this package, and the package never calls Complete/CompleteCollective; the operation has no completion point",
				obj.Name())
		}
	}
}

// isBlockingCall reports whether the operation call carries blocking
// semantics: the rma.WithBlocking() option, or (for engine-level calls) an
// attrs expression that constant-folds to a value with the AttrBlocking
// bit set, or one mentioning AttrBlocking or StrictDebugAttrs.
func isBlockingCall(info *types.Info, call *ast.CallExpr) bool {
	for _, opt := range optionCalls(info, call.Args) {
		name := callee(info, opt).Name()
		if name == "WithBlocking" || name == "WithStrictDebug" {
			return true
		}
	}
	for _, arg := range call.Args {
		// Constant attrs (including package-level consts like a library's
		// own blockingAttrs) fold to a value we can test directly.
		if attrHasBit(info, arg, "AttrBlocking") {
			return true
		}
	}
	for _, arg := range call.Args {
		if mentionsCoreName(info, arg, "AttrBlocking") || mentionsCoreName(info, arg, "StrictDebugAttrs") {
			return true
		}
	}
	return false
}

// isBuiltinAppend reports whether fun names the builtin append.
func isBuiltinAppend(info *types.Info, fun ast.Expr) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isRequestSlice reports whether t is []*core.Request.
func isRequestSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	return ok && isRequestPtr(s.Elem())
}

// usedElsewhere reports whether obj is referenced in body at any identifier
// other than except (the assignment's own left-hand side).
func usedElsewhere(info *types.Info, body *ast.BlockStmt, obj types.Object, except *ast.Ident) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id != except && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
