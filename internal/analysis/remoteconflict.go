package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RemoteConflictAnalyzer is the static counterpart of the runtime shadow
// checker (internal/checker): it reports two remote accesses to the same
// target memory whose constant-folded byte intervals [disp, disp+count·
// extent) overlap, where at least one writes, neither pair is atomic, and
// no legalizing Order/Complete call separates them. The runtime checker
// finds these races when the workload happens to exercise them; this
// analyzer finds the constant-foldable subset before the program runs.
//
// The same linear discipline as the other analyzers applies — one
// statement list at a time, no cross-branch merging — so every report is
// a pair of accesses that definitely executes back to back. Same-package
// helpers are followed through their summaries: a helper's constant
// remote accesses on a target-memory argument splice into the caller's
// sequence, and a helper that may reach an ordering call acts as a
// barrier. Anything unprovable (non-constant displacement, a handle
// passed to unknown code) silently clears the affected state.
var RemoteConflictAnalyzer = &Analyzer{
	Name: "remoteconflict",
	Doc: "finds statically overlapping remote accesses: two constant-foldable\n" +
		"transfers to intersecting byte ranges of one target memory, at least\n" +
		"one a writer, with no Order/Complete between them and without atomic\n" +
		"semantics on both — the races the runtime shadow checker (WithChecker)\n" +
		"would flag, caught at analysis time. Helper calls are followed\n" +
		"through per-function summaries.",
	Run: runRemoteConflict,
}

// outstandingAcc is one not-yet-legalized access on a tracked handle.
type outstandingAcc struct {
	acc remoteAcc
	pos token.Pos
}

func runRemoteConflict(pass *Pass) {
	sums := summariesFor(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch b := n.(type) {
			case *ast.BlockStmt:
				checkConflictList(pass, sums, b.List)
			case *ast.CaseClause:
				checkConflictList(pass, sums, b.Body)
			case *ast.CommClause:
				checkConflictList(pass, sums, b.Body)
			}
			return true
		})
	}
}

func checkConflictList(pass *Pass, sums *pkgSummaries, stmts []ast.Stmt) {
	info := pass.TypesInfo
	outstanding := map[types.Object][]outstandingAcc{}

	trackWin := func(types.Object) bool { return false }
	trackTM := func(obj types.Object) bool { return isTargetMem(obj.Type()) }

	apply := func(call *ast.CallExpr) {
		eff := sums.effectsOfCall(info, call, trackWin, trackTM)
		if eff == nil {
			return
		}
		for _, ev := range eff.events {
			if ev.barrier {
				outstanding = map[types.Object][]outstandingAcc{}
				continue
			}
			for _, prev := range outstanding[ev.obj] {
				if conflicting(prev.acc, ev.acc) {
					pass.Reportf(call.Pos(),
						"%s of bytes [%d,%d) overlaps the %s of bytes [%d,%d) at %s on the same target memory with a writer and nothing legalizing between them (separate them with Order/Complete or make both atomic)",
						ev.acc.op, ev.acc.lo, ev.acc.hi,
						prev.acc.op, prev.acc.lo, prev.acc.hi,
						pass.Fset.Position(prev.pos),
					)
					break
				}
			}
			outstanding[ev.obj] = append(outstanding[ev.obj], outstandingAcc{acc: ev.acc, pos: call.Pos()})
		}
		for obj := range eff.tmUnknown {
			delete(outstanding, obj)
		}
	}

	var deferred []*ast.CallExpr
	for _, stmt := range stmts {
		if ds, ok := stmt.(*ast.DeferStmt); ok {
			deferred = append(deferred, ds.Call)
			continue
		}
		for _, call := range directCalls(stmt) {
			apply(call)
		}
	}
	for i := len(deferred) - 1; i >= 0; i-- {
		apply(deferred[i])
	}
}

// conflicting mirrors the runtime checker's verdict: intervals intersect,
// at least one side writes, and the pair is not atomic-vs-atomic.
func conflicting(a, b remoteAcc) bool {
	if a.hi <= b.lo || b.hi <= a.lo {
		return false
	}
	if !a.write && !b.write {
		return false
	}
	return !(a.atomic && b.atomic)
}
