package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted patterns of a `// want "p1" "p2"` comment.
// Patterns may be double-quoted or backtick-quoted (the latter avoids
// double-escaping regexp metacharacters like \[ and \().
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// RunGolden loads the golden package at pkgPath (a testdata import path —
// excluded from ./... wildcards but loadable explicitly), runs one
// analyzer over it, and matches the findings against `// want "regexp"`
// comments, in both directions: every want must be reported on its line,
// and every report must be wanted.
func RunGolden(t *testing.T, analyzer *Analyzer, pkgPath string) {
	t.Helper()
	pkgs, err := Load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s resolved %d packages, want 1", pkgPath, len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("golden package must type-check: %v", terr)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					pat := m[1] + m[2] // exactly one group matches
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	diags := Run([]*Package{pkg}, []*Analyzer{analyzer}).Diagnostics
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s: %s", position(d.Pos), d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("missing diagnostic at %s:%d: no report matched %q", k.file, k.line, re)
		}
	}
}

func position(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
