package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrderAnalyzer checks the engine's own mutex discipline. The repo's
// lock hierarchy is declared in the source with field annotations:
//
//	tgtMu sync.Mutex //rmalint:lockrank 10
//
// Locks must be acquired in ascending rank order; acquiring a lock whose
// rank is less than or equal to one already held inverts the hierarchy
// and can deadlock against a thread locking in the documented order. The
// analyzer also flags blocking channel sends performed while an annotated
// lock is held (a full channel parks the goroutine with the lock held;
// a receiver needing the same lock deadlocks) — sends inside a select
// with a default case are nonblocking and exempt.
//
// Calls are followed through per-function summaries: invoking a function
// that may acquire an annotated lock counts as acquiring it at the call
// site. Goroutine bodies are separate concurrent scopes — they are
// analyzed on their own and do not inherit the spawner's held set.
// Packages without annotations are skipped entirely.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "finds violations of the annotated mutex hierarchy (//rmalint:lockrank\n" +
		"N on struct fields, acquired in ascending rank): out-of-order Lock,\n" +
		"relocking a held mutex, calls into functions that acquire a lower or\n" +
		"equal rank, and blocking channel sends (no select-default) while an\n" +
		"annotated lock is held.",
	Run: runLockOrder,
}

func runLockOrder(pass *Pass) {
	sums := summariesFor(pass)
	if len(sums.lockRanks) == 0 {
		return
	}
	w := &lockWalker{pass: pass, sums: sums}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.list(fn.Body.List, map[*types.Var]token.Pos{})
				}
			case *ast.FuncLit:
				// Every function literal — goroutine bodies included — is
				// its own scope with nothing held on entry: what the
				// spawning goroutine holds is not held by this one, and a
				// deferred/stored closure runs at an unknown time.
				w.list(fn.Body.List, map[*types.Var]token.Pos{})
			}
			return true
		})
	}
}

type lockWalker struct {
	pass *Pass
	sums *pkgSummaries
}

// list walks one statement list carrying the definitely-held lock set.
// Nested blocks receive a copy (their dominating entry holds the same
// locks); after a nested block, any lock it may release is dropped from
// the parent's set so later statements never get a false report.
func (w *lockWalker) list(stmts []ast.Stmt, held map[*types.Var]token.Pos) {
	for _, stmt := range stmts {
		switch st := stmt.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() releases at function exit, not here: the
			// lock stays held for the rest of the walk, which is exactly
			// the Lock/defer-Unlock idiom's semantics.
			continue
		case *ast.GoStmt:
			continue // concurrent scope, analyzed separately
		case *ast.SendStmt:
			w.checkSend(st, held, false)
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range st.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			for _, clause := range st.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					w.checkSend(send, held, hasDefault)
				}
				w.nested(cc.Body, held)
			}
			continue
		}

		for _, call := range directCalls(stmt) {
			w.call(call, held)
		}

		// Nested statement lists: walk with a copy of the held set, then
		// drop anything the nested code may have released.
		switch st := stmt.(type) {
		case *ast.BlockStmt:
			w.nested(st.List, held)
		case *ast.IfStmt:
			w.nestedIf(st, held)
		case *ast.ForStmt:
			w.nested(st.Body.List, held)
		case *ast.RangeStmt:
			w.nested(st.Body.List, held)
		case *ast.SwitchStmt:
			w.nestedCases(st.Body, held)
		case *ast.TypeSwitchStmt:
			w.nestedCases(st.Body, held)
		case *ast.LabeledStmt:
			w.list([]ast.Stmt{st.Stmt}, held)
		}
	}
}

func (w *lockWalker) nested(stmts []ast.Stmt, held map[*types.Var]token.Pos) {
	w.list(stmts, copyHeld(held))
	w.dropReleased(stmts, held)
}

func (w *lockWalker) nestedIf(st *ast.IfStmt, held map[*types.Var]token.Pos) {
	w.list(st.Body.List, copyHeld(held))
	w.dropReleased(st.Body.List, held)
	if st.Else != nil {
		w.list([]ast.Stmt{st.Else}, held)
	}
}

func (w *lockWalker) nestedCases(body *ast.BlockStmt, held map[*types.Var]token.Pos) {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			w.nested(cc.Body, held)
		}
	}
}

// dropReleased removes from held every annotated lock the nested
// statements may unlock (directly or through a summarized call).
func (w *lockWalker) dropReleased(stmts []ast.Stmt, held map[*types.Var]token.Pos) {
	info := w.pass.TypesInfo
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if v := lockFieldOf(info, call, w.sums.lockRanks); v != nil {
				if fn := callee(info, call); fn != nil && fn.Name() == "Unlock" {
					delete(held, v)
				}
			}
			return true
		})
	}
}

// call checks one direct call against the held set: annotated Lock/Unlock
// advances the set, and a summarized callee's transitive acquisitions are
// checked as if made here.
func (w *lockWalker) call(call *ast.CallExpr, held map[*types.Var]token.Pos) {
	info := w.pass.TypesInfo
	if v := lockFieldOf(info, call, w.sums.lockRanks); v != nil {
		switch callee(info, call).Name() {
		case "Lock":
			if _, ok := held[v]; ok {
				w.pass.Reportf(call.Pos(), "%s.Lock while %s is already held: self-deadlock",
					w.sums.lockNames[v], w.sums.lockNames[v])
			} else if h := w.worstHeld(held, v); h != nil {
				w.pass.Reportf(call.Pos(),
					"acquires %s (rank %d) while holding %s (rank %d): lock order violation, the hierarchy is ascending rank",
					w.sums.lockNames[v], w.sums.lockRanks[v], w.sums.lockNames[h], w.sums.lockRanks[h])
			}
			held[v] = call.Pos()
		case "Unlock":
			delete(held, v)
		}
		return
	}

	if len(held) == 0 {
		return
	}
	sum := w.sums.summaryOf(info, call)
	if sum == nil {
		return
	}
	for _, v := range sortedLocks(sum.acquires) {
		if _, ok := held[v]; ok {
			w.pass.Reportf(call.Pos(), "call to %s, which acquires %s, while %s is already held: self-deadlock",
				callee(info, call).Name(), w.sums.lockNames[v], w.sums.lockNames[v])
			continue
		}
		if h := w.worstHeld(held, v); h != nil {
			w.pass.Reportf(call.Pos(),
				"call to %s, which acquires %s (rank %d), while holding %s (rank %d): lock order violation, the hierarchy is ascending rank",
				callee(info, call).Name(), w.sums.lockNames[v], w.sums.lockRanks[v], w.sums.lockNames[h], w.sums.lockRanks[h])
		}
	}
}

// worstHeld returns the held lock that makes acquiring v a hierarchy
// violation (rank ≥ v's), preferring the highest rank for the message.
func (w *lockWalker) worstHeld(held map[*types.Var]token.Pos, v *types.Var) *types.Var {
	var worst *types.Var
	for h := range held {
		if w.sums.lockRanks[h] >= w.sums.lockRanks[v] {
			if worst == nil || w.sums.lockRanks[h] > w.sums.lockRanks[worst] ||
				(w.sums.lockRanks[h] == w.sums.lockRanks[worst] && w.sums.lockNames[h] > w.sums.lockNames[worst]) {
				worst = h
			}
		}
	}
	return worst
}

func (w *lockWalker) checkSend(send *ast.SendStmt, held map[*types.Var]token.Pos, nonblocking bool) {
	if nonblocking || len(held) == 0 {
		return
	}
	// Name the highest-ranked held lock (the innermost acquisition).
	var worst *types.Var
	for h := range held {
		if worst == nil || w.sums.lockRanks[h] > w.sums.lockRanks[worst] {
			worst = h
		}
	}
	w.pass.Reportf(send.Pos(),
		"channel send while holding %s (rank %d): a full channel parks this goroutine with the lock held (send after unlocking, or use a select with a default case)",
		w.sums.lockNames[worst], w.sums.lockRanks[worst])
}

func copyHeld(held map[*types.Var]token.Pos) map[*types.Var]token.Pos {
	cp := make(map[*types.Var]token.Pos, len(held))
	for v, pos := range held {
		cp[v] = pos
	}
	return cp
}

// sortedLocks orders a lock set deterministically for reporting.
func sortedLocks(set map[*types.Var]bool) []*types.Var {
	locks := make([]*types.Var, 0, len(set))
	for v := range set {
		locks = append(locks, v)
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i].Name() < locks[j].Name() })
	return locks
}
