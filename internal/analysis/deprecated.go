package analysis

import (
	"go/ast"
	"go/types"
)

// DeprecatedAnalyzer reports misuse of the event-driven completion
// surface. The old all-ranks wrapper checks lived here until those
// wrappers were deleted outright (PR 10) — a call is a compile error
// now, so the analyzer no longer has to flag it.
var DeprecatedAnalyzer = &Analyzer{
	Name: "deprecated",
	Doc: "finds Select calls with zero cases (always ErrBadHandle), and\n" +
		"OnDone registered twice on the same request within one function\n" +
		"(both callbacks run; a second registration is usually a\n" +
		"refactoring leftover).",
	Run: runDeprecated,
}

// selectCalls are the any-of multiplexers that reject zero cases.
var selectCalls = map[string]bool{
	rmaPath + ".Session.Select": true,
	corePath + ".Engine.Select": true,
}

// onDoneCalls are the completion-callback registrars. rma.Request is a
// type alias of core.Request, so method keys resolve to the core path.
var onDoneCalls = map[string]bool{
	corePath + ".Request.OnDone": true,
}

func runDeprecated(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// OnDone registrations seen in this function, keyed by the
			// receiver variable's object: distinct call sites on the same
			// request are flagged from the second one on.
			onDoneSeen := map[types.Object]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				key := calleeKey(pass.TypesInfo, call)
				if selectCalls[key] && len(call.Args) == 0 {
					pass.Reportf(call.Pos(), "Select with zero cases always fails with ErrBadHandle; pass at least one OnRequest/OnApplied/OnConfirmed/OnQuiescent case")
					return true
				}
				if onDoneCalls[key] {
					if obj := receiverObject(pass.TypesInfo, call); obj != nil {
						if onDoneSeen[obj] {
							pass.Reportf(call.Pos(), "OnDone registered again on %q in this function; every registered callback runs on completion — drop one unless both are intended", obj.Name())
						}
						onDoneSeen[obj] = true
					}
				}
				return true
			})
		}
	}
}

// receiverObject resolves the variable a method call's receiver names
// (x in x.OnDone(...)), or nil for chained/complex receivers where
// identity cannot be tracked syntactically.
func receiverObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}
