package analysis

import (
	"go/ast"
	"go/types"
)

// DeprecatedAnalyzer reports calls to the facade's deprecated wrappers —
// kept only so old callers keep compiling — and misuse of the
// event-driven completion surface that replaces them.
var DeprecatedAnalyzer = &Analyzer{
	Name: "deprecated",
	Doc: "finds calls to deprecated rma wrappers (CompleteAll, OrderAll,\n" +
		"WithProbeCompletion) with their modern replacements, Select calls\n" +
		"with zero cases (always ErrBadHandle), and OnDone registered twice\n" +
		"on the same request within one function (both callbacks run; a\n" +
		"second registration is usually a refactoring leftover).",
	Run: runDeprecated,
}

// deprecatedCalls maps the compatibility wrappers to their replacements.
var deprecatedCalls = map[string]string{
	rmaPath + ".Session.CompleteAll": "CompleteAll is deprecated: call Complete() — variadic, no arguments covers every rank",
	rmaPath + ".Session.OrderAll":    "OrderAll is deprecated: call Order() — variadic, no arguments covers every rank",
	rmaPath + ".WithProbeCompletion": "WithProbeCompletion is deprecated: use the Request surface (Await/Done/OnDone) for per-operation completion; keep it only for probe-vs-counter A/B measurements",
}

// selectCalls are the any-of multiplexers that reject zero cases.
var selectCalls = map[string]bool{
	rmaPath + ".Session.Select": true,
	corePath + ".Engine.Select": true,
}

// onDoneCalls are the completion-callback registrars. rma.Request is a
// type alias of core.Request, so method keys resolve to the core path.
var onDoneCalls = map[string]bool{
	corePath + ".Request.OnDone": true,
}

func runDeprecated(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// OnDone registrations seen in this function, keyed by the
			// receiver variable's object: distinct call sites on the same
			// request are flagged from the second one on.
			onDoneSeen := map[types.Object]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				key := calleeKey(pass.TypesInfo, call)
				if msg, ok := deprecatedCalls[key]; ok && msg != "" {
					pass.Reportf(call.Pos(), "%s", msg)
					return true
				}
				if selectCalls[key] && len(call.Args) == 0 {
					pass.Reportf(call.Pos(), "Select with zero cases always fails with ErrBadHandle; pass at least one OnRequest/OnApplied/OnConfirmed/OnQuiescent case")
					return true
				}
				if onDoneCalls[key] {
					if obj := receiverObject(pass.TypesInfo, call); obj != nil {
						if onDoneSeen[obj] {
							pass.Reportf(call.Pos(), "OnDone registered again on %q in this function; every registered callback runs on completion — drop one unless both are intended", obj.Name())
						}
						onDoneSeen[obj] = true
					}
				}
				return true
			})
		}
	}
}

// receiverObject resolves the variable a method call's receiver names
// (x in x.OnDone(...)), or nil for chained/complex receivers where
// identity cannot be tracked syntactically.
func receiverObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}
