package analysis

import (
	"go/ast"
	"go/types"
)

// BoundsCheckAnalyzer reports transfers whose constant-foldable target
// interval provably exceeds a constant-sized exposure — the runtime's
// ErrBounds check, decided at analysis time for the cases where every
// quantity is a compile-time constant.
var BoundsCheckAnalyzer = &Analyzer{
	Name: "boundscheck",
	Doc: "finds constant-foldable out-of-bounds transfers: a target_mem\n" +
		"obtained from Expose(const) accessed at a constant displacement and\n" +
		"extent reaching past the exposure (including the 8-byte word of\n" +
		"FetchAdd/CompareSwap), and negative displacements.",
	Run: runBoundsCheck,
}

// exposureSizes tracks target_mem variables with compile-time-known sizes:
// tm, _ := s.Expose(1024). The variable must be single-assignment — any
// reassignment drops it from the map.
func exposureSizes(pass *Pass, file *ast.File) map[types.Object]int64 {
	sizes := map[types.Object]int64{}
	ast.Inspect(file, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) == 0 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeKey(pass.TypesInfo, call) {
		case rmaPath + ".Session.Expose", corePath + ".Engine.ExposeNew":
		default:
			return true
		}
		size, const_ := int64(0), false
		if len(call.Args) == 1 {
			size, const_ = intConst(pass.TypesInfo, call.Args[0])
		}
		if !const_ {
			return true
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			sizes[obj] = size
		}
		return true
	})

	// Single-assignment discipline: a variable written anywhere else has an
	// unknown size by the time it is used.
	ast.Inspect(file, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			if len(assign.Rhs) == 1 {
				if call, ok := assign.Rhs[0].(*ast.CallExpr); ok && i == 0 {
					switch calleeKey(pass.TypesInfo, call) {
					case rmaPath + ".Session.Expose", corePath + ".Engine.ExposeNew":
						continue // the defining assignment itself
					}
				}
			}
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					delete(sizes, obj)
				}
			}
		}
		return true
	})
	return sizes
}

// accessShape describes where one call's target interval sits in its
// argument list: extent = count(arg countIdx) * sizeof(dt at dtIdx), or a
// fixed 8 bytes for RMWs (countIdx < 0).
type accessShape struct {
	tmIdx, dispIdx   int
	countIdx, dtIdx  int
	layoutOverridble bool // WithTargetLayout changes the target extent
}

var accessShapes = map[string]accessShape{
	rmaPath + ".Session.Put":            {tmIdx: 3, dispIdx: 4, countIdx: 1, dtIdx: 2, layoutOverridble: true},
	rmaPath + ".Session.PutNotify":      {tmIdx: 3, dispIdx: 4, countIdx: 1, dtIdx: 2, layoutOverridble: true},
	rmaPath + ".Session.Get":            {tmIdx: 3, dispIdx: 4, countIdx: 1, dtIdx: 2, layoutOverridble: true},
	rmaPath + ".Session.Accumulate":     {tmIdx: 4, dispIdx: 5, countIdx: 2, dtIdx: 3, layoutOverridble: true},
	rmaPath + ".Session.AccumulateAxpy": {tmIdx: 4, dispIdx: 5, countIdx: 2, dtIdx: 3, layoutOverridble: true},
	rmaPath + ".Session.FetchAdd":       {tmIdx: 0, dispIdx: 1, countIdx: -1},
	rmaPath + ".Session.CompareSwap":    {tmIdx: 0, dispIdx: 1, countIdx: -1},
	corePath + ".Engine.Put":            {tmIdx: 3, dispIdx: 4, countIdx: 5, dtIdx: 6},
	corePath + ".Engine.Get":            {tmIdx: 3, dispIdx: 4, countIdx: 5, dtIdx: 6},
	corePath + ".Engine.FetchAdd":       {tmIdx: 0, dispIdx: 1, countIdx: -1},
	corePath + ".Engine.CompareSwap":    {tmIdx: 0, dispIdx: 1, countIdx: -1},
}

func runBoundsCheck(pass *Pass) {
	for _, file := range pass.Files {
		sizes := exposureSizes(pass, file)
		if len(sizes) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.TypesInfo, call)
			shape, ok := accessShapes[funcKey(fn)]
			if !ok {
				return true
			}
			checkBounds(pass, fn.Name(), call, shape, sizes)
			return true
		})
	}
}

func checkBounds(pass *Pass, callName string, call *ast.CallExpr, shape accessShape, sizes map[types.Object]int64) {
	if shape.tmIdx >= len(call.Args) || shape.dispIdx >= len(call.Args) {
		return
	}
	size, ok := sizes[objectOf(pass.TypesInfo, call.Args[shape.tmIdx])]
	if !ok {
		return
	}
	disp, ok := intConst(pass.TypesInfo, call.Args[shape.dispIdx])
	if !ok {
		return
	}
	if disp < 0 {
		pass.Reportf(call.Pos(), "%s at negative displacement %d", callName, disp)
		return
	}

	extent := int64(8) // RMW word
	if shape.countIdx >= 0 {
		if shape.layoutOverridble {
			for _, opt := range optionCalls(pass.TypesInfo, call.Args) {
				if callee(pass.TypesInfo, opt).Name() == "WithTargetLayout" {
					return // target-side extent comes from the override; not folded
				}
			}
		}
		if shape.countIdx >= len(call.Args) || shape.dtIdx >= len(call.Args) {
			return
		}
		count, ok := intConst(pass.TypesInfo, call.Args[shape.countIdx])
		if !ok {
			return
		}
		elem, ok := dtypeExtent(pass.TypesInfo, call.Args[shape.dtIdx])
		if !ok {
			return
		}
		extent = count * elem
	}

	if disp+extent > size {
		pass.Reportf(call.Pos(), "%s of %d bytes at displacement %d exceeds the %d-byte exposure ([%d,%d) out of bounds)",
			callName, extent, disp, size, disp, disp+extent)
	}
}
