package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
	"sync"
)

// This file computes per-function effect summaries bottom-up over the
// call graph's SCCs: the interprocedural tier the epochorder, lostrequest,
// remoteconflict, and lockorder analyzers consume. A summary records what
// one function provably does to the RMA objects its caller hands it —
// epoch transitions on window parameters, constant remote byte-ranges on
// target-memory parameters, completion calls, requests returned fresh,
// and annotated locks acquired.
//
// The precision discipline mirrors the analyzers themselves: "definite"
// effects (epoch ops, remote accesses) come only from the body's
// top-level statement list, so splicing them into a caller never asserts
// something that might not happen. Conditional or unanalyzable behavior
// degrades the affected parameter to unknown, which makes the caller
// forget its state instead of reporting on it. "May" effects (completes,
// legalizes, acquires) go the other way — they are unioned over the whole
// body including nested blocks and closures — because their consumers
// only ever use them to stay silent (a helper that may complete is a
// completion point; a helper that may legalize clears conflict state).

// epochOp is one window synchronization or access call, abstracted to
// what the epoch state machine needs.
type epochOp struct {
	method    string // Lock, Unlock, Fence, Start, Complete, Post, Wait, Test, Free, Put, Get, Accumulate
	rank      int64  // for Lock/Unlock
	constRank bool
}

// remoteAcc is one constant-foldable remote access.
type remoteAcc struct {
	lo, hi int64 // byte interval [lo,hi) on the target exposure
	write  bool
	atomic bool
	op     string // call name, for messages
}

// remoteEvent is one entry of a function's definite remote-effect
// sequence: either an access through a target-memory parameter or a
// legalizing barrier (Order/Complete/...), in top-level order.
type remoteEvent struct {
	barrier bool
	param   int // target-memory parameter index, for accesses
	acc     remoteAcc
}

// funcSummary is the effect summary of one declared function.
type funcSummary struct {
	fn *types.Func

	// completes: the function may reach a Complete/
	// CompleteCollective (directly or transitively). Calls to it count as
	// completion points for lostrequest.
	completes bool

	// legalizes: the function may reach an Order/Complete-style barrier
	// or an unanalyzable call; remoteconflict treats a call to it as
	// clearing all conflict state.
	legalizes bool

	// returnsRequest is the result index at which the function returns a
	// fresh, nonblocking, un-awaited request (or -1). Discarding that
	// result is a lost request exactly like discarding a Session.Put's.
	returnsRequest int

	// epoch maps window-parameter index -> the definite, ordered epoch
	// transitions the function performs on that window. Parameters in
	// epochUnknown were touched in ways the linear model cannot follow.
	epoch        map[int][]epochOp
	epochUnknown map[int]bool

	// winResult is the result index of a window the function creates
	// (WinCreate at top level) and returns, or -1; winResultOps are the
	// epoch transitions applied to it before the return. The caller
	// starts the returned window fully-known (everything closed) and
	// replays the ops.
	winResult    int
	winResultOps []epochOp

	// remoteEvents is the definite, ordered remote-effect sequence over
	// target-memory parameters; remoteUnknown marks parameters with
	// unmodelable remote effects (the caller clears their state).
	remoteEvents  []remoteEvent
	remoteUnknown map[int]bool

	// acquires is the set of annotated locks (see lockRanks) the function
	// may take, directly or transitively.
	acquires map[*types.Var]bool
}

// pkgSummaries is the cached interprocedural view of one package.
type pkgSummaries struct {
	graph *callGraph
	funcs map[*types.Func]*funcSummary
	// lockRanks and lockNames hold the //rmalint:lockrank annotations:
	// mutex struct fields mapped to their numeric rank and display name.
	lockRanks map[*types.Var]int
	lockNames map[*types.Var]string
}

// interprocDisabled turns off summary consumption; the pin tests use it
// to prove which findings need the interprocedural tier.
var interprocDisabled bool

var (
	summaryMu    sync.Mutex
	summaryCache = map[*types.Package]*pkgSummaries{}
)

// summariesFor returns the package's summaries, computing and caching
// them on first use — every analyzer of every rmalint run shares one
// computation per package, which is what keeps the interprocedural tier
// cheap enough for the CI wall-clock budget.
func summariesFor(pass *Pass) *pkgSummaries {
	summaryMu.Lock()
	defer summaryMu.Unlock()
	if s, ok := summaryCache[pass.Pkg]; ok {
		return s
	}
	pkg := &Package{Fset: pass.Fset, Files: pass.Files, Types: pass.Pkg, Info: pass.TypesInfo}
	s := computeSummaries(pkg)
	summaryCache[pass.Pkg] = s
	return s
}

// summaryOf resolves the summary a call site may splice in: the callee
// must be a declared same-package function. Returns nil when the
// interprocedural tier is disabled or the callee is unknown.
func (s *pkgSummaries) summaryOf(info *types.Info, call *ast.CallExpr) *funcSummary {
	if s == nil || interprocDisabled {
		return nil
	}
	fn := callee(info, call)
	if fn == nil {
		return nil
	}
	return s.funcs[fn]
}

// completers are the calls that guarantee completion of previously-issued
// operations without holding the request.
var completers = map[string]bool{
	rmaPath + ".Session.Complete":           true,
	rmaPath + ".Session.CompleteCollective": true,
	corePath + ".Engine.Complete":           true,
	corePath + ".Engine.CompleteCollective": true,
}

// legalizers are the calls remoteconflict accepts as separating two
// overlapping accesses: an ordering point or a completion. This is the
// static mirror of the runtime checker's epoch-advance set.
var legalizers = map[string]bool{
	rmaPath + ".Session.Order":              true,
	rmaPath + ".Session.Complete":           true,
	rmaPath + ".Session.CompleteCollective": true,
	corePath + ".Engine.Order":              true,
	corePath + ".Engine.OrderCollective":    true,
	corePath + ".Engine.Complete":           true,
	corePath + ".Engine.CompleteCollective": true,
}

// computeSummaries builds the package's call graph, collects lock
// annotations, and computes every function's summary bottom-up.
func computeSummaries(pkg *Package) *pkgSummaries {
	s := &pkgSummaries{
		graph: buildCallGraph(pkg),
		funcs: map[*types.Func]*funcSummary{},
	}
	s.lockRanks, s.lockNames = collectLockRanks(pkg)

	for _, n := range s.graph.order {
		s.funcs[n.fn] = newSummary(n.fn)
	}
	// May-effects (completes, legalizes, acquires) need a fixpoint within
	// recursive components; iterating the bottom-up order until nothing
	// changes is exact and terminates (the per-function lattice is tiny).
	for changed := true; changed; {
		changed = false
		for _, n := range s.graph.order {
			if s.computeMayEffects(pkg, n) {
				changed = true
			}
		}
	}
	// Definite effects are computed once, bottom-up; recursion degrades
	// to unknown via graph.recursive.
	for _, n := range s.graph.order {
		s.computeDefiniteEffects(pkg, n)
	}
	return s
}

func newSummary(fn *types.Func) *funcSummary {
	return &funcSummary{
		fn:             fn,
		returnsRequest: -1,
		winResult:      -1,
		epoch:          map[int][]epochOp{},
		epochUnknown:   map[int]bool{},
		remoteUnknown:  map[int]bool{},
		acquires:       map[*types.Var]bool{},
	}
}

// computeMayEffects unions completes/legalizes/acquires over the whole
// body and the callees' summaries. Returns whether anything changed.
func (s *pkgSummaries) computeMayEffects(pkg *Package, n *cgNode) bool {
	sum := s.funcs[n.fn]
	before := [2]bool{sum.completes, sum.legalizes}
	nAcq := len(sum.acquires)

	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		// A goroutine runs concurrently: its effects do not happen on the
		// caller's control path (its lock acquisitions are not nested
		// inside the caller's, and a completion it performs has no
		// ordering with the caller's statements).
		if _, ok := node.(*ast.GoStmt); ok {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(pkg.Info, call)
		if fn == nil {
			// A call through a function value or interface could do
			// anything, including complete or order: treat it as a
			// may-legalize point (never as a definite effect).
			sum.legalizes = true
			return true
		}
		key := funcKey(fn)
		if completers[key] {
			sum.completes = true
		}
		if legalizers[key] {
			sum.legalizes = true
		}
		if v := lockFieldOf(pkg.Info, call, s.lockRanks); v != nil && fn.Name() == "Lock" {
			sum.acquires[v] = true
		}
		if callee := s.funcs[fn]; callee != nil {
			sum.completes = sum.completes || callee.completes
			sum.legalizes = sum.legalizes || callee.legalizes
			for v := range callee.acquires {
				sum.acquires[v] = true
			}
		}
		return true
	})
	return sum.completes != before[0] || sum.legalizes != before[1] || len(sum.acquires) != nAcq
}

// computeDefiniteEffects fills in the epoch, remote, request-return, and
// window-return parts of the summary from the body's top-level statement
// list. Everything here must be provable: a parameter used in a way the
// walk does not recognize degrades to unknown.
func (s *pkgSummaries) computeDefiniteEffects(pkg *Package, n *cgNode) {
	sum := s.funcs[n.fn]
	decl := n.decl
	info := pkg.Info

	// Parameter objects by index, split by the types the analyzers track.
	winParams := map[types.Object]int{}
	tmParams := map[types.Object]int{}
	if decl.Type.Params != nil {
		idx := 0
		for _, field := range decl.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					if isWinPtr(obj.Type()) {
						winParams[obj] = idx
					}
					if isTargetMem(obj.Type()) {
						tmParams[obj] = idx
					}
				}
				idx++
			}
		}
	}

	// Recursion defeats the bottom-up order; a return statement buried in
	// a nested block means the top-level suffix may never run. Either way
	// the definite sequences would overclaim: degrade to unknown.
	if s.graph.recursive(n.fn) || hasNestedReturn(decl.Body) {
		for _, i := range winParams {
			sum.epochUnknown[i] = true
		}
		for _, i := range tmParams {
			sum.remoteUnknown[i] = true
		}
	} else {
		s.walkDefinite(pkg, sum, decl, winParams, tmParams)
	}

	sum.returnsRequest = s.requestResultIndex(pkg, decl, sum)
}

// callEffects is what one recognized call contributes to a summary (or,
// at analyzer level, to the caller's tracked state): epoch ops and remote
// events keyed by the caller-side object the effect lands on, plus the
// objects whose state becomes unknown.
type callEffects struct {
	winOps     map[types.Object][]epochOp
	winUnknown map[types.Object]bool
	events     []tmEvent
	tmUnknown  map[types.Object]bool
	recognized map[types.Object]int // identifier uses this call accounts for
}

// tmEvent is a remoteEvent re-bound to a caller-side object.
type tmEvent struct {
	barrier bool
	obj     types.Object
	acc     remoteAcc
}

func newCallEffects() *callEffects {
	return &callEffects{
		winOps:     map[types.Object][]epochOp{},
		winUnknown: map[types.Object]bool{},
		tmUnknown:  map[types.Object]bool{},
		recognized: map[types.Object]int{},
	}
}

// effectsOfCall classifies one direct call against the tracked window and
// target-memory objects. trackWin/trackTM decide which objects the caller
// cares about (parameters and locals alike). Returns nil when the call is
// irrelevant to both domains.
func (s *pkgSummaries) effectsOfCall(info *types.Info, call *ast.CallExpr,
	trackWin func(types.Object) bool, trackTM func(types.Object) bool) *callEffects {
	fn := callee(info, call)
	key := funcKey(fn)
	eff := newCallEffects()

	// Win method: one epoch op on the receiver.
	if strings.HasPrefix(key, mpi2Path+".Win.") {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		obj := objectOf(info, sel.X)
		if obj == nil || !trackWin(obj) {
			return nil
		}
		eff.recognized[obj]++
		if op, ok := epochOpOf(info, fn.Name(), call); ok {
			eff.winOps[obj] = append(eff.winOps[obj], op)
		}
		return eff
	}

	// Legalizing barrier: separates every tracked target-memory object.
	if legalizers[key] {
		eff.events = append(eff.events, tmEvent{barrier: true})
		return eff
	}

	// Remote access through a tracked target-memory object.
	if shape, ok := accessShapes[key]; ok {
		if shape.tmIdx >= len(call.Args) {
			return nil
		}
		obj := objectOf(info, call.Args[shape.tmIdx])
		if obj == nil || !trackTM(obj) {
			return nil
		}
		eff.recognized[obj]++
		if acc, ok := foldAccess(info, fn.Name(), call, shape); ok {
			eff.events = append(eff.events, tmEvent{obj: obj, acc: acc})
		} else {
			// The access happens but its interval is unknowable: the
			// object's conflict state is no longer trustworthy.
			eff.tmUnknown[obj] = true
		}
		return eff
	}

	// Same-package summarized call: splice the callee's definite effects,
	// re-binding its parameters to our argument objects.
	if callee := s.summaryOfFunc(fn); callee != nil {
		touched := false
		for ai, arg := range call.Args {
			obj := objectOf(info, arg)
			if obj == nil {
				continue
			}
			if trackWin(obj) && isWinPtr(obj.Type()) {
				eff.recognized[obj]++
				touched = true
				if callee.epochUnknown[ai] {
					eff.winUnknown[obj] = true
				} else {
					eff.winOps[obj] = append(eff.winOps[obj], callee.epoch[ai]...)
				}
			}
			if trackTM(obj) && isTargetMem(obj.Type()) {
				eff.recognized[obj]++
				touched = true
				if callee.remoteUnknown[ai] {
					eff.tmUnknown[obj] = true
				} else {
					for _, ev := range callee.remoteEvents {
						if !ev.barrier && ev.param == ai {
							eff.events = append(eff.events, tmEvent{obj: obj, acc: ev.acc})
						}
					}
				}
			}
		}
		// A callee that may legalize acts as a barrier for everything the
		// caller has outstanding — even when no tracked object is passed.
		if callee.legalizes {
			eff.events = append(eff.events, tmEvent{barrier: true})
			touched = true
		}
		if !touched {
			return nil
		}
		return eff
	}

	// Unknown call: every tracked object it receives escapes.
	for _, arg := range call.Args {
		if obj := objectOf(info, arg); obj != nil {
			if trackWin(obj) && isWinPtr(obj.Type()) {
				eff.recognized[obj]++
				eff.winUnknown[obj] = true
			}
			if trackTM(obj) && isTargetMem(obj.Type()) {
				eff.recognized[obj]++
				eff.tmUnknown[obj] = true
			}
		}
	}
	// An unresolvable call (function value, interface method) could
	// legalize through captured state.
	if fn == nil {
		eff.events = append(eff.events, tmEvent{barrier: true})
	}
	if len(eff.recognized) == 0 && len(eff.events) == 0 {
		return nil
	}
	return eff
}

// summaryOfFunc is summaryOf for an already-resolved callee.
func (s *pkgSummaries) summaryOfFunc(fn *types.Func) *funcSummary {
	if s == nil || fn == nil || interprocDisabled {
		return nil
	}
	return s.funcs[fn]
}

// walkDefinite runs the top-level statement list of decl and records the
// definite epoch and remote effect sequences onto the summary.
func (s *pkgSummaries) walkDefinite(pkg *Package, sum *funcSummary, decl *ast.FuncDecl, winParams, tmParams map[types.Object]int) {
	info := pkg.Info

	recognized := map[types.Object]int{}
	// winLocals tracks windows created by top-level WinCreate (candidates
	// for winResult).
	winLocals := map[types.Object][]epochOp{}
	var deferred []*callEffects
	var winResultObj types.Object

	trackWin := func(obj types.Object) bool {
		_, isParam := winParams[obj]
		_, isLocal := winLocals[obj]
		return isParam || isLocal
	}
	trackTM := func(obj types.Object) bool {
		_, ok := tmParams[obj]
		return ok
	}

	apply := func(eff *callEffects) {
		for obj, c := range eff.recognized {
			recognized[obj] += c
		}
		for obj, ops := range eff.winOps {
			if i, ok := winParams[obj]; ok {
				sum.epoch[i] = append(sum.epoch[i], ops...)
			} else if cur, ok := winLocals[obj]; ok {
				winLocals[obj] = append(cur, ops...)
			}
		}
		for obj := range eff.winUnknown {
			if i, ok := winParams[obj]; ok {
				sum.epochUnknown[i] = true
				delete(sum.epoch, i)
			} else {
				delete(winLocals, obj)
			}
		}
		for _, ev := range eff.events {
			if ev.barrier {
				sum.remoteEvents = append(sum.remoteEvents, remoteEvent{barrier: true})
			} else if i, ok := tmParams[ev.obj]; ok {
				sum.remoteEvents = append(sum.remoteEvents, remoteEvent{param: i, acc: ev.acc})
			}
		}
		for obj := range eff.tmUnknown {
			if i, ok := tmParams[obj]; ok {
				sum.remoteUnknown[i] = true
			}
		}
	}

	for _, stmt := range decl.Body.List {
		switch st := stmt.(type) {
		case *ast.DeferStmt:
			if eff := s.effectsOfCall(info, st.Call, trackWin, trackTM); eff != nil {
				deferred = append(deferred, eff)
			}
			continue
		case *ast.AssignStmt:
			// Top-level WinCreate: a window this function may return.
			if len(st.Rhs) == 1 && len(st.Lhs) > 0 {
				if call, ok := st.Rhs[0].(*ast.CallExpr); ok &&
					calleeKey(info, call) == mpi2Path+".RMA.WinCreate" {
					if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						if obj := info.Defs[id]; obj != nil {
							winLocals[obj] = []epochOp{}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for i, res := range st.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						if _, isLocal := winLocals[obj]; isLocal {
							recognized[obj]++
							sum.winResult = i
							winResultObj = obj
						}
					}
				}
			}
		}
		for _, call := range directCalls(stmt) {
			if eff := s.effectsOfCall(info, call, trackWin, trackTM); eff != nil {
				apply(eff)
			}
		}
	}

	// Deferred effects run at function exit in LIFO order.
	for i := len(deferred) - 1; i >= 0; i-- {
		apply(deferred[i])
	}

	// Escape analysis: any identifier use the walk did not recognize
	// makes that object's effects unprovable.
	for obj, i := range winParams {
		if countUses(info, decl.Body, obj) > recognized[obj] {
			sum.epochUnknown[i] = true
			delete(sum.epoch, i)
		}
	}
	for obj, i := range tmParams {
		if countUses(info, decl.Body, obj) > recognized[obj] {
			sum.remoteUnknown[i] = true
		}
	}
	if winResultObj != nil {
		if ops, ok := winLocals[winResultObj]; ok && countUses(info, decl.Body, winResultObj) <= recognized[winResultObj] {
			sum.winResultOps = ops
		} else {
			sum.winResult = -1
		}
	} else {
		sum.winResult = -1
	}
}

// epochOpOf abstracts one Win method call to an epochOp. ok=false means
// the method is not epoch-relevant (Comm, Region, ... — harmless
// observers the caller ignores).
func epochOpOf(info *types.Info, method string, call *ast.CallExpr) (epochOp, bool) {
	op := epochOp{method: method}
	switch method {
	case "Lock":
		if len(call.Args) >= 2 {
			op.rank, op.constRank = intConst(info, call.Args[1])
		}
	case "Unlock":
		if len(call.Args) >= 1 {
			op.rank, op.constRank = intConst(info, call.Args[0])
		}
	case "Fence", "Start", "Complete", "Post", "Wait", "Test", "Free", "Put", "Get", "Accumulate":
	default:
		return epochOp{}, false
	}
	return op, true
}

// foldAccess constant-folds one remote access to its byte interval and
// classification. ok=false when displacement, count, or extent do not
// fold (a WithTargetLayout override also defeats folding).
func foldAccess(info *types.Info, callName string, call *ast.CallExpr, shape accessShape) (remoteAcc, bool) {
	acc := remoteAcc{op: callName}
	if shape.tmIdx >= len(call.Args) || shape.dispIdx >= len(call.Args) {
		return acc, false
	}
	disp, ok := intConst(info, call.Args[shape.dispIdx])
	if !ok {
		return acc, false
	}
	extent := int64(8) // RMW word
	if shape.countIdx >= 0 {
		if shape.layoutOverridble {
			for _, opt := range optionCalls(info, call.Args) {
				if callee(info, opt).Name() == "WithTargetLayout" {
					return acc, false
				}
			}
		}
		if shape.countIdx >= len(call.Args) || shape.dtIdx >= len(call.Args) {
			return acc, false
		}
		count, ok := intConst(info, call.Args[shape.countIdx])
		if !ok {
			return acc, false
		}
		elem, ok := dtypeExtent(info, call.Args[shape.dtIdx])
		if !ok {
			return acc, false
		}
		extent = count * elem
	}
	acc.lo, acc.hi = disp, disp+extent
	acc.write = callName != "Get"
	acc.atomic = shape.countIdx < 0 || callCarriesAtomic(info, call)
	return acc, true
}

// callCarriesAtomic reports whether the call's options or attrs give the
// access atomic semantics: WithAtomic/WithStrictDebug, or an engine attrs
// argument with the AttrAtomic bit (constant-folded or named).
func callCarriesAtomic(info *types.Info, call *ast.CallExpr) bool {
	for _, opt := range optionCalls(info, call.Args) {
		name := callee(info, opt).Name()
		if name == "WithAtomic" || name == "WithStrictDebug" {
			return true
		}
	}
	for _, arg := range call.Args {
		if attrHasBit(info, arg, "AttrAtomic") {
			return true
		}
	}
	for _, arg := range call.Args {
		if mentionsCoreName(info, arg, "AttrAtomic") || mentionsCoreName(info, arg, "StrictDebugAttrs") {
			return true
		}
	}
	return false
}

// requestResultIndex decides whether the function returns a fresh
// nonblocking request its caller becomes responsible for: some return
// statement returns a request produced in this function (directly, or via
// a variable whose only uses are the producing assignment and returns),
// and the function itself never completes.
func (s *pkgSummaries) requestResultIndex(pkg *Package, decl *ast.FuncDecl, sum *funcSummary) int {
	if sum.completes {
		return -1
	}
	info := pkg.Info
	result := -1
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns are its own
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		// return producerCall(...): the request slot carries through.
		if len(ret.Results) == 1 {
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				if idx := s.producedRequestIndex(info, call); idx >= 0 {
					result = idx
				}
				return true
			}
		}
		for i, res := range ret.Results {
			id, ok := ast.Unparen(res).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil || !isRequestPtr(obj.Type()) {
				continue
			}
			if s.requestOnlyProducedAndReturned(pkg, decl.Body, obj) {
				result = i
			}
		}
		return true
	})
	return result
}

// producedRequestIndex reports the request result index of a producing
// call — the builtin nonblocking operations, or a same-package function
// already summarized as returning a fresh request — or -1.
func (s *pkgSummaries) producedRequestIndex(info *types.Info, call *ast.CallExpr) int {
	fn := callee(info, call)
	key := funcKey(fn)
	if requestProducers[key] {
		if isBlockingCall(info, call) {
			return -1
		}
		return 0
	}
	if sub := s.summaryOfFunc(fn); sub != nil && sub.returnsRequest >= 0 {
		return sub.returnsRequest
	}
	return -1
}

// requestOnlyProducedAndReturned reports whether obj is a request
// variable whose only appearances are its producing assignment(s) and
// return statements — nothing awaited it, registered a callback, or
// stored it elsewhere.
func (s *pkgSummaries) requestOnlyProducedAndReturned(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	info := pkg.Info
	produced := false
	accounted := 0

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			idx := s.producedRequestIndex(info, call)
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || (info.Defs[id] != obj && info.Uses[id] != obj) {
					continue
				}
				if idx >= 0 && i == idx {
					produced = true
					if info.Uses[id] == obj {
						accounted++ // reassignment via `=` counts as a use
					}
				} else {
					accounted-- // assigned from something unvouched: poison
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && info.Uses[id] == obj {
					accounted++
				}
			}
		}
		return true
	})
	return produced && countUses(info, body, obj) == accounted
}

// hasNestedReturn reports whether any return statement sits below the
// body's top-level statement list (inside an if, loop, switch — but not
// a closure, whose returns are its own).
func hasNestedReturn(body *ast.BlockStmt) bool {
	nested := false
	for _, stmt := range body.List {
		if _, ok := stmt.(*ast.ReturnStmt); ok {
			continue
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if _, ok := n.(*ast.ReturnStmt); ok {
				nested = true
			}
			return !nested
		})
		if nested {
			return true
		}
	}
	return false
}

// countUses counts identifier uses of obj in body (Uses only; the
// defining identifier is in Defs and not counted).
func countUses(info *types.Info, body *ast.BlockStmt, obj types.Object) int {
	n := 0
	ast.Inspect(body, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok && info.Uses[id] == obj {
			n++
		}
		return true
	})
	return n
}

// isWinPtr reports whether t is *mpi2rma.Win.
func isWinPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == mpi2Path && obj.Name() == "Win"
}

// isTargetMem reports whether t is core.TargetMem (rma.TargetMem is an
// alias of it, so both facades resolve here).
func isTargetMem(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == corePath && obj.Name() == "TargetMem"
}

// isRequestPtr reports whether t is *core.Request (rma.Request aliases
// core.Request).
func isRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == corePath && obj.Name() == "Request"
}

// collectLockRanks scans struct declarations for mutex fields annotated
// with a //rmalint:lockrank N comment (trailing on the field's line or in
// its doc comment). The rank defines the package's lock hierarchy: a
// lower rank must be acquired before a higher one, never after.
func collectLockRanks(pkg *Package) (map[*types.Var]int, map[*types.Var]string) {
	ranks := map[*types.Var]int{}
	names := map[*types.Var]string{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				rank, ok := lockRankComment(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						ranks[v] = rank
						names[v] = ts.Name.Name + "." + name.Name
					}
				}
			}
			return true
		})
	}
	return ranks, names
}

// lockRankComment extracts the rank from a field's trailing or doc
// comment, e.g. `mu sync.Mutex //rmalint:lockrank 20`.
func lockRankComment(field *ast.Field) (int, bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//rmalint:lockrank")
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				continue
			}
			if rank, err := strconv.Atoi(fields[0]); err == nil {
				return rank, true
			}
		}
	}
	return 0, false
}

// lockFieldOf resolves x.f.Lock()/x.f.Unlock() to the annotated field f,
// or nil when the call is not a method on an annotated mutex field.
func lockFieldOf(info *types.Info, call *ast.CallExpr, ranks map[*types.Var]int) *types.Var {
	if len(ranks) == 0 {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if name := sel.Sel.Name; name != "Lock" && name != "Unlock" {
		return nil
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.Uses[recv.Sel].(*types.Var)
	if !ok {
		return nil
	}
	if _, annotated := ranks[v]; !annotated {
		return nil
	}
	return v
}
