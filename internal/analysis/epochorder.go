package analysis

import (
	"go/ast"
	"go/types"
)

// EpochOrderAnalyzer reports provably invalid orders of MPI-2 window
// synchronization calls — the mistakes internal/mpi2rma turns into runtime
// ErrEpoch failures, caught before the program runs. It analyzes each
// statement list linearly (no cross-branch merging), so every report is a
// sequence the runtime is guaranteed to reject.
var EpochOrderAnalyzer = &Analyzer{
	Name: "epochorder",
	Doc: "finds statically invalid MPI-2 epoch sequences on mpi2rma windows:\n" +
		"double Lock on one rank, Unlock without Lock, Complete without Start,\n" +
		"Wait/Test without Post, Fence or Free inside a PSCW/lock epoch, use\n" +
		"after Free, and (for windows created in the same block) RMA access\n" +
		"outside any epoch.",
	Run: runEpochOrder,
}

// tri is three-valued knowledge about one epoch fact.
type tri uint8

const (
	unknown tri = iota
	yes
	no
)

// winState is the per-window epoch state tracked through one statement
// list. A window created by WinCreate in the same list starts fully known
// (everything closed); any other window starts unknown and only becomes
// known through the calls observed.
type winState struct {
	local       bool          // WinCreate seen in this list
	fence       tri           // a fence epoch has been opened (never closes in mpi2rma)
	start       tri           // access epoch (Start..Complete) open
	post        tri           // exposure epoch (Post..Wait) open
	locks       map[int64]tri // per constant target rank
	lockUnknown bool          // a Lock/Unlock with non-constant rank was seen
	freed       bool
}

func (w *winState) lockState(rank int64) tri {
	if s, ok := w.locks[rank]; ok {
		return s
	}
	if w.lockUnknown {
		return unknown
	}
	if w.local {
		return no
	}
	return unknown
}

// anyLockOpen reports whether some lock is provably held.
func (w *winState) anyLockOpen() bool {
	for _, s := range w.locks {
		if s == yes {
			return true
		}
	}
	return false
}

// noEpochOpen reports whether every epoch is provably closed — only then
// is an access-outside-epoch report justified.
func (w *winState) noEpochOpen() bool {
	if w.fence != no || w.start != no || w.lockUnknown {
		return false
	}
	for _, s := range w.locks {
		if s != no {
			return false
		}
	}
	return w.local // absent lock entries mean "closed" only for local windows
}

func runEpochOrder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch b := n.(type) {
			case *ast.BlockStmt:
				checkEpochList(pass, b.List)
			case *ast.CaseClause:
				checkEpochList(pass, b.Body)
			case *ast.CommClause:
				checkEpochList(pass, b.Body)
			}
			return true
		})
	}
}

// checkEpochList runs the linear epoch state machine over one statement
// list. Nested blocks are their own lists (visited separately with fresh
// state), so control flow never merges and every report is definite.
func checkEpochList(pass *Pass, stmts []ast.Stmt) {
	wins := map[types.Object]*winState{}
	state := func(obj types.Object) *winState {
		w := wins[obj]
		if w == nil {
			w = &winState{locks: map[int64]tri{}}
			wins[obj] = w
		}
		return w
	}

	for _, stmt := range stmts {
		// WinCreate in this list: the window starts with everything closed.
		if assign, ok := stmt.(*ast.AssignStmt); ok && len(assign.Rhs) == 1 {
			if call, ok := assign.Rhs[0].(*ast.CallExpr); ok &&
				calleeKey(pass.TypesInfo, call) == mpi2Path+".RMA.WinCreate" && len(assign.Lhs) > 0 {
				if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj != nil {
						wins[obj] = &winState{local: true, fence: no, start: no, post: no, locks: map[int64]tri{}}
					}
				}
			}
		}
		for _, call := range directCalls(stmt) {
			fn := callee(pass.TypesInfo, call)
			key := funcKey(fn)
			const winPrefix = mpi2Path + ".Win."
			if len(key) <= len(winPrefix) || key[:len(winPrefix)] != winPrefix {
				continue
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			recv := objectOf(pass.TypesInfo, sel.X)
			if recv == nil {
				continue
			}
			applyEpochCall(pass, state(recv), fn.Name(), call)
		}
	}
}

// applyEpochCall checks one Win method call against the window's tracked
// state, reporting provable violations, and advances the state.
func applyEpochCall(pass *Pass, w *winState, method string, call *ast.CallExpr) {
	if w.freed {
		pass.Reportf(call.Pos(), "%s on a window after Free", method)
		return
	}
	switch method {
	case "Lock":
		rank, const_ := int64(0), false
		if len(call.Args) >= 2 {
			rank, const_ = intConst(pass.TypesInfo, call.Args[1])
		}
		if !const_ {
			w.lockUnknown = true
			return
		}
		if w.lockState(rank) == yes {
			pass.Reportf(call.Pos(), "Lock on rank %d while already holding a lock on that rank (Unlock it first)", rank)
		}
		w.locks[rank] = yes
	case "Unlock":
		rank, const_ := int64(0), false
		if len(call.Args) >= 1 {
			rank, const_ = intConst(pass.TypesInfo, call.Args[0])
		}
		if !const_ {
			w.lockUnknown = true
			return
		}
		if w.lockState(rank) == no {
			pass.Reportf(call.Pos(), "Unlock on rank %d without holding the lock", rank)
		}
		w.locks[rank] = no
	case "Fence":
		if w.start == yes || w.post == yes || w.anyLockOpen() {
			pass.Reportf(call.Pos(), "Fence while a PSCW or lock epoch is open (close it with Complete/Wait/Unlock first)")
		}
		w.fence = yes
	case "Start":
		if w.start == yes {
			pass.Reportf(call.Pos(), "Start while an access epoch is already open")
		}
		w.start = yes
	case "Complete":
		if w.start == no {
			pass.Reportf(call.Pos(), "Complete without a matching Start")
		}
		w.start = no
	case "Post":
		if w.post == yes {
			pass.Reportf(call.Pos(), "Post while an exposure epoch is already open")
		}
		w.post = yes
	case "Wait":
		if w.post == no {
			pass.Reportf(call.Pos(), "Wait without a matching Post")
		}
		w.post = no
	case "Test":
		if w.post == no {
			pass.Reportf(call.Pos(), "Test without a matching Post")
		}
		w.post = unknown // Test closes the epoch only on success
	case "Free":
		if w.start == yes || w.post == yes || w.anyLockOpen() {
			pass.Reportf(call.Pos(), "Free inside an open epoch (close it with Complete/Wait/Unlock first)")
		}
		w.freed = true
	case "Put", "Get", "Accumulate":
		if w.noEpochOpen() {
			pass.Reportf(call.Pos(), "RMA %s outside any epoch (MPI-2 requires an open fence, start, or lock epoch)", method)
		}
	}
}

// directCalls extracts the calls a statement performs in order, without
// descending into nested blocks (their own lists) or function literals
// (deferred execution). Deferred and spawned calls are skipped: they run
// at another time and must not advance the linear state.
func directCalls(stmt ast.Stmt) []*ast.CallExpr {
	var calls []*ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		calls = callsIn(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			calls = append(calls, callsIn(rhs)...)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			calls = append(calls, callsIn(r)...)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			calls = directCalls(s.Init)
		}
		calls = append(calls, callsIn(s.Cond)...)
	case *ast.SwitchStmt:
		if s.Init != nil {
			calls = directCalls(s.Init)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						calls = append(calls, callsIn(v)...)
					}
				}
			}
		}
	}
	return calls
}

// callsIn collects calls within one expression, skipping function literals.
func callsIn(expr ast.Expr) []*ast.CallExpr {
	if expr == nil {
		return nil
	}
	var calls []*ast.CallExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
		return true
	})
	return calls
}
