package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EpochOrderAnalyzer reports provably invalid orders of MPI-2 window
// synchronization calls — the mistakes internal/mpi2rma turns into runtime
// ErrEpoch failures, caught before the program runs. It analyzes each
// statement list linearly (no cross-branch merging), so every report is a
// sequence the runtime is guaranteed to reject.
//
// The interprocedural tier (summary.go) lets the state machine follow the
// window through same-package helpers: a call to a helper replays the
// helper's definite epoch transitions on the argument window, deferred
// calls (including deferred closing helpers) apply at list exit in LIFO
// order, and a window obtained from a helper that creates one starts in
// the state the helper left it. A window passed to a call whose effects
// are unknown falls back to unknown state — never a false report.
var EpochOrderAnalyzer = &Analyzer{
	Name: "epochorder",
	Doc: "finds statically invalid MPI-2 epoch sequences on mpi2rma windows:\n" +
		"double Lock on one rank, Unlock without Lock, Complete without Start,\n" +
		"Wait/Test without Post, Fence or Free inside a PSCW/lock epoch, use\n" +
		"after Free, and (for windows created in the same block or returned by\n" +
		"a summarized helper) RMA access outside any epoch. Helper calls and\n" +
		"defers are followed through per-function summaries.",
	Run: runEpochOrder,
}

// tri is three-valued knowledge about one epoch fact.
type tri uint8

const (
	unknown tri = iota
	yes
	no
)

// winState is the per-window epoch state tracked through one statement
// list. A window created by WinCreate in the same list starts fully known
// (everything closed); any other window starts unknown and only becomes
// known through the calls observed.
type winState struct {
	local       bool          // created in this list (WinCreate or summarized helper)
	fence       tri           // a fence epoch has been opened (never closes in mpi2rma)
	start       tri           // access epoch (Start..Complete) open
	post        tri           // exposure epoch (Post..Wait) open
	locks       map[int64]tri // per constant target rank
	lockUnknown bool          // a Lock/Unlock with non-constant rank was seen
	freed       bool
}

func (w *winState) lockState(rank int64) tri {
	if s, ok := w.locks[rank]; ok {
		return s
	}
	if w.lockUnknown {
		return unknown
	}
	if w.local {
		return no
	}
	return unknown
}

// anyLockOpen reports whether some lock is provably held.
func (w *winState) anyLockOpen() bool {
	for _, s := range w.locks {
		if s == yes {
			return true
		}
	}
	return false
}

// noEpochOpen reports whether every epoch is provably closed — only then
// is an access-outside-epoch report justified.
func (w *winState) noEpochOpen() bool {
	if w.fence != no || w.start != no || w.lockUnknown {
		return false
	}
	for _, s := range w.locks {
		if s != no {
			return false
		}
	}
	return w.local // absent lock entries mean "closed" only for local windows
}

// forget resets the window to fully unknown state (it was handed to code
// whose effects on it are unprovable).
func (w *winState) forget() {
	*w = winState{locks: map[int64]tri{}}
}

func runEpochOrder(pass *Pass) {
	sums := summariesFor(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch b := n.(type) {
			case *ast.BlockStmt:
				checkEpochList(pass, sums, b.List)
			case *ast.CaseClause:
				checkEpochList(pass, sums, b.Body)
			case *ast.CommClause:
				checkEpochList(pass, sums, b.Body)
			}
			return true
		})
	}
}

// deferredEpoch is one deferred call's pending effect on tracked windows,
// applied at list exit.
type deferredEpoch struct {
	obj    types.Object
	ops    []epochOp // nil means "forget the window"
	pos    ast.Node
	via    string // "call to f: " when the ops came from a helper summary
	forget bool
}

// checkEpochList runs the linear epoch state machine over one statement
// list. Nested blocks are their own lists (visited separately with fresh
// state), so control flow never merges and every report is definite.
// Deferred calls are collected and applied at the end of the list in LIFO
// order — the closest linear model of "runs at function exit" that never
// reorders one defer's effect before a statement that precedes the list
// end.
func checkEpochList(pass *Pass, sums *pkgSummaries, stmts []ast.Stmt) {
	info := pass.TypesInfo
	wins := map[types.Object]*winState{}
	state := func(obj types.Object) *winState {
		w := wins[obj]
		if w == nil {
			w = &winState{locks: map[int64]tri{}}
			wins[obj] = w
		}
		return w
	}
	var deferred []deferredEpoch

	// winEffects classifies one call's effect on tracked windows without
	// applying it: the direct-statement path applies immediately, the
	// defer path saves it for list exit.
	winEffects := func(call *ast.CallExpr) []deferredEpoch {
		fn := callee(info, call)
		key := funcKey(fn)
		const winPrefix = mpi2Path + ".Win."
		if strings.HasPrefix(key, winPrefix) {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			recv := objectOf(info, sel.X)
			if recv == nil {
				return nil
			}
			if op, ok := epochOpOfCall(info, fn.Name(), call); ok {
				return []deferredEpoch{{obj: recv, ops: []epochOp{op}, pos: call}}
			}
			return nil // epoch-neutral observer (Comm, Region, ...)
		}

		// Helper or unknown call taking a window argument: splice the
		// summary's definite ops, or forget the window.
		var effs []deferredEpoch
		sum := sums.summaryOf(info, call)
		for ai, arg := range call.Args {
			obj := objectOf(info, arg)
			if obj == nil || !isWinPtr(obj.Type()) {
				continue
			}
			if sum != nil && !sum.epochUnknown[ai] {
				if ops := sum.epoch[ai]; len(ops) > 0 {
					effs = append(effs, deferredEpoch{obj: obj, ops: ops, pos: call, via: "call to " + fn.Name() + ": "})
				}
				// No definite ops: the helper provably leaves the epoch
				// state alone; keep what we know.
				continue
			}
			effs = append(effs, deferredEpoch{obj: obj, pos: call, forget: true})
		}
		return effs
	}

	apply := func(eff deferredEpoch) {
		w := state(eff.obj)
		if eff.forget {
			w.forget()
			return
		}
		for _, op := range eff.ops {
			applyEpochOp(pass, w, op, eff.pos.Pos(), eff.via)
		}
	}

	for _, stmt := range stmts {
		// Deferred calls: effects land at list exit.
		if ds, ok := stmt.(*ast.DeferStmt); ok {
			if effs := winEffects(ds.Call); effs != nil {
				deferred = append(deferred, effs...)
			} else if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
				// A deferred closure may do anything to the windows it
				// captures: forget them at exit.
				for _, obj := range capturedWindows(info, fl, wins) {
					deferred = append(deferred, deferredEpoch{obj: obj, pos: ds.Call, forget: true})
				}
			}
			continue
		}

		// Window-creating assignments: WinCreate directly, or a helper
		// summarized as returning a window it created.
		if assign, ok := stmt.(*ast.AssignStmt); ok && len(assign.Rhs) == 1 {
			if call, ok := assign.Rhs[0].(*ast.CallExpr); ok {
				resultIdx, ops := int(-1), []epochOp(nil)
				if calleeKey(info, call) == mpi2Path+".RMA.WinCreate" {
					resultIdx = 0
				} else if sum := sums.summaryOf(info, call); sum != nil && sum.winResult >= 0 {
					resultIdx, ops = sum.winResult, sum.winResultOps
				}
				if resultIdx >= 0 && resultIdx < len(assign.Lhs) {
					if id, ok := assign.Lhs[resultIdx].(*ast.Ident); ok && id.Name != "_" {
						obj := info.Defs[id]
						if obj == nil {
							obj = info.Uses[id]
						}
						if obj != nil {
							w := &winState{local: true, fence: no, start: no, post: no, locks: map[int64]tri{}}
							wins[obj] = w
							// Replay the creating helper's own transitions
							// silently: they were already checked in its body.
							for _, op := range ops {
								applyEpochOpSilent(w, op)
							}
						}
					}
				}
			}
		}

		for _, call := range directCalls(stmt) {
			for _, eff := range winEffects(call) {
				apply(eff)
			}
		}
	}

	for i := len(deferred) - 1; i >= 0; i-- {
		apply(deferred[i])
	}
}

// capturedWindows lists the tracked window objects a function literal
// references.
func capturedWindows(info *types.Info, fl *ast.FuncLit, wins map[types.Object]*winState) []types.Object {
	var objs []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && !seen[obj] {
				if _, tracked := wins[obj]; tracked {
					seen[obj] = true
					objs = append(objs, obj)
				}
			}
		}
		return true
	})
	return objs
}

// epochOpOfCall is epochOpOf restricted to the methods the state machine
// models; the summary layer shares the same table.
func epochOpOfCall(info *types.Info, method string, call *ast.CallExpr) (epochOp, bool) {
	return epochOpOf(info, method, call)
}

// applyEpochOp checks one abstract epoch transition against the window's
// tracked state, reporting provable violations, and advances the state.
// via prefixes the message when the op was spliced from a helper summary
// ("call to closeWin: ...").
func applyEpochOp(pass *Pass, w *winState, op epochOp, pos token.Pos, via string) {
	if w.freed {
		pass.Reportf(pos, "%s%s on a window after Free", via, op.method)
		return
	}
	switch op.method {
	case "Lock":
		if !op.constRank {
			w.lockUnknown = true
			return
		}
		if w.lockState(op.rank) == yes {
			pass.Reportf(pos, "%sLock on rank %d while already holding a lock on that rank (Unlock it first)", via, op.rank)
		}
		w.locks[op.rank] = yes
	case "Unlock":
		if !op.constRank {
			w.lockUnknown = true
			return
		}
		if w.lockState(op.rank) == no {
			pass.Reportf(pos, "%sUnlock on rank %d without holding the lock", via, op.rank)
		}
		w.locks[op.rank] = no
	case "Fence":
		if w.start == yes || w.post == yes || w.anyLockOpen() {
			pass.Reportf(pos, "%sFence while a PSCW or lock epoch is open (close it with Complete/Wait/Unlock first)", via)
		}
		w.fence = yes
	case "Start":
		if w.start == yes {
			pass.Reportf(pos, "%sStart while an access epoch is already open", via)
		}
		w.start = yes
	case "Complete":
		if w.start == no {
			pass.Reportf(pos, "%sComplete without a matching Start", via)
		}
		w.start = no
	case "Post":
		if w.post == yes {
			pass.Reportf(pos, "%sPost while an exposure epoch is already open", via)
		}
		w.post = yes
	case "Wait":
		if w.post == no {
			pass.Reportf(pos, "%sWait without a matching Post", via)
		}
		w.post = no
	case "Test":
		if w.post == no {
			pass.Reportf(pos, "%sTest without a matching Post", via)
		}
		w.post = unknown // Test closes the epoch only on success
	case "Free":
		if w.start == yes || w.post == yes || w.anyLockOpen() {
			pass.Reportf(pos, "%sFree inside an open epoch (close it with Complete/Wait/Unlock first)", via)
		}
		w.freed = true
	case "Put", "Get", "Accumulate":
		if w.noEpochOpen() {
			pass.Reportf(pos, "%sRMA %s outside any epoch (MPI-2 requires an open fence, start, or lock epoch)", via, op.method)
		}
	}
}

// applyEpochOpSilent advances the state machine without reporting — used
// to replay a window-creating helper's transitions, which were already
// checked in the helper's own body.
func applyEpochOpSilent(w *winState, op epochOp) {
	if w.freed {
		return
	}
	switch op.method {
	case "Lock":
		if !op.constRank {
			w.lockUnknown = true
			return
		}
		w.locks[op.rank] = yes
	case "Unlock":
		if !op.constRank {
			w.lockUnknown = true
			return
		}
		w.locks[op.rank] = no
	case "Fence":
		w.fence = yes
	case "Start":
		w.start = yes
	case "Complete":
		w.start = no
	case "Post":
		w.post = yes
	case "Wait":
		w.post = no
	case "Test":
		w.post = unknown
	case "Free":
		w.freed = true
	}
}

// directCalls extracts the calls a statement performs in order, without
// descending into nested blocks (their own lists) or function literals
// (deferred execution). Deferred and spawned calls are skipped here: the
// epoch walk models defers itself (at list exit), and goroutines run at
// another time entirely.
func directCalls(stmt ast.Stmt) []*ast.CallExpr {
	var calls []*ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		calls = callsIn(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			calls = append(calls, callsIn(rhs)...)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			calls = append(calls, callsIn(r)...)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			calls = directCalls(s.Init)
		}
		calls = append(calls, callsIn(s.Cond)...)
	case *ast.SwitchStmt:
		if s.Init != nil {
			calls = directCalls(s.Init)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						calls = append(calls, callsIn(v)...)
					}
				}
			}
		}
	}
	return calls
}

// callsIn collects calls within one expression, skipping function literals.
func callsIn(expr ast.Expr) []*ast.CallExpr {
	if expr == nil {
		return nil
	}
	var calls []*ast.CallExpr
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
		return true
	})
	return calls
}
