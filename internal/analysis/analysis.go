// Package analysis is a small, dependency-free static-analysis framework
// for the rmalint checks (cmd/rmalint). It deliberately mirrors the shape
// of golang.org/x/tools/go/analysis — Analyzer, Pass, Reportf — but is
// built on the standard library alone: packages load through `go list
// -export` and the gc export-data importer (see load.go), so the linter
// works in the hermetic build environments this repository targets.
//
// Diagnostics can be suppressed at the use site with a comment:
//
//	//rmalint:ignore lostrequest reason the suppression is sound
//
// on the same line as the diagnostic or the line above it. The analyzer
// name "all" suppresses every analyzer on that line. The reason is
// mandatory: an ignore comment without a known analyzer name (or "all")
// and a non-empty reason is itself reported, under the non-suppressible
// analyzer name "suppression".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in reports and suppression comments
	// (lower-case, no spaces).
	Name string
	// Doc is a one-paragraph description, shown by rmalint -list.
	Doc string
	// Run inspects pass's package and reports findings via pass.Reportf.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	suppress   suppressions
	diags      *[]Diagnostic
	suppressed map[string]int
}

// Diagnostic is one finding, located by full position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Result is the outcome of one Run: the findings that survived
// suppression, plus how many each analyzer had suppressed (the audit
// trail the JSON report carries so fire-and-forget ignores stay visible).
type Result struct {
	Diagnostics []Diagnostic
	// Suppressed counts muted findings per analyzer name.
	Suppressed map[string]int
}

// Reportf records a finding at pos unless a suppression comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.covers(position, p.Analyzer.Name) {
		p.suppressed[p.Analyzer.Name]++
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppression is one parsed //rmalint:ignore comment.
type suppression struct {
	name   string // analyzer name, or "" meaning all
	reason string
	pos    token.Position
}

// suppressions maps file/line to the ignore comments that cover it. The
// empty name means "all analyzers".
type suppressions map[string]map[int][]string

func (s suppressions) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	// A comment suppresses its own line and the line below it.
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == "" || name == analyzer {
				return true
			}
		}
	}
	return false
}

// collectSuppressions scans every comment of the package's files for
// rmalint:ignore markers and parses them into per-line analyzer sets.
func collectSuppressions(fset *token.FileSet, files []*ast.File) ([]suppression, suppressions) {
	var parsed []suppression
	s := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//rmalint:ignore")
				if !ok {
					continue
				}
				sup := suppression{pos: fset.Position(c.Pos())}
				if fields := strings.Fields(text); len(fields) > 0 {
					sup.name = fields[0]
					sup.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				parsed = append(parsed, sup)

				name := sup.name
				if name == "all" {
					name = ""
				}
				lines := s[sup.pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					s[sup.pos.Filename] = lines
				}
				lines[sup.pos.Line] = append(lines[sup.pos.Line], name)
			}
		}
	}
	return parsed, s
}

// validateSuppressions enforces the ignore-comment contract — a known
// analyzer name (or "all") plus a non-empty reason — and reports
// violations under the reserved, non-suppressible analyzer name
// "suppression".
func validateSuppressions(parsed []suppression, analyzers []*Analyzer, diags *[]Diagnostic) {
	known := map[string]bool{"all": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, sup := range parsed {
		var msg string
		switch {
		case sup.name == "":
			msg = "rmalint:ignore without an analyzer name: name the analyzer being suppressed (or \"all\") and give a reason"
		case !known[sup.name]:
			msg = fmt.Sprintf("rmalint:ignore names unknown analyzer %q (use rmalint -list, or \"all\")", sup.name)
		case sup.reason == "":
			msg = fmt.Sprintf("rmalint:ignore %s without a reason: every suppression must say why it is sound", sup.name)
		default:
			continue
		}
		*diags = append(*diags, Diagnostic{Pos: sup.pos, Analyzer: "suppression", Message: msg})
	}
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position, plus per-analyzer suppression counts.
// Malformed //rmalint:ignore comments are themselves findings (analyzer
// "suppression") and cannot be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) *Result {
	res := &Result{Suppressed: map[string]int{}}
	for _, pkg := range pkgs {
		parsed, sup := collectSuppressions(pkg.Fset, pkg.Files)
		validateSuppressions(parsed, analyzers, &res.Diagnostics)
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				suppress:   sup,
				diags:      &res.Diagnostics,
				suppressed: res.Suppressed,
			})
		}
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

// All returns the rmalint analyzers in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		LostRequestAnalyzer,
		EpochOrderAnalyzer,
		RemoteConflictAnalyzer,
		LockOrderAnalyzer,
		AttrMisuseAnalyzer,
		BoundsCheckAnalyzer,
		DeprecatedAnalyzer,
		DHTRawAnalyzer,
	}
}
