// Package analysis is a small, dependency-free static-analysis framework
// for the rmalint checks (cmd/rmalint). It deliberately mirrors the shape
// of golang.org/x/tools/go/analysis — Analyzer, Pass, Reportf — but is
// built on the standard library alone: packages load through `go list
// -export` and the gc export-data importer (see load.go), so the linter
// works in the hermetic build environments this repository targets.
//
// Diagnostics can be suppressed at the use site with a comment:
//
//	//rmalint:ignore lostrequest  reason...
//
// on the same line as the diagnostic or the line above it. Omitting the
// analyzer name suppresses every analyzer on that line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in reports and suppression comments
	// (lower-case, no spaces).
	Name string
	// Doc is a one-paragraph description, shown by rmalint -list.
	Doc string
	// Run inspects pass's package and reports findings via pass.Reportf.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	suppress suppressions
	diags    *[]Diagnostic
}

// Diagnostic is one finding, located by full position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless a suppression comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.covers(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressions maps file/line to the set of analyzer names ignored there.
// The empty name means "all analyzers".
type suppressions map[string]map[int][]string

func (s suppressions) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	// A comment suppresses its own line and the line below it.
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == "" || name == analyzer {
				return true
			}
		}
	}
	return false
}

// collectSuppressions scans every comment of the package's files for
// rmalint:ignore markers.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//rmalint:ignore")
				if !ok {
					continue
				}
				name := ""
				if fields := strings.Fields(text); len(fields) > 0 {
					name = fields[0]
				}
				pos := fset.Position(c.Pos())
				lines := s[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					s[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	return s
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			a.Run(&Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				suppress:  sup,
				diags:     &diags,
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns the four rmalint analyzers in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		LostRequestAnalyzer,
		EpochOrderAnalyzer,
		AttrMisuseAnalyzer,
		BoundsCheckAnalyzer,
		DeprecatedAnalyzer,
	}
}
