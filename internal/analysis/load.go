package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // source directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems (the package is still
	// analyzed best-effort; rmalint surfaces these separately).
	TypeErrors []error
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the go-list patterns (e.g. "./...", "mpi3rma/rma") to
// packages, parses their sources with comments, and type-checks them
// against compiled export data for every dependency. It shells out to the
// go tool exactly once; no third-party loader is involved.
//
// Wildcard patterns follow go-list semantics, so testdata directories are
// excluded from "./..." but loadable by explicit path — which is exactly
// what the analyzer golden tests rely on.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listedPkg
	dec := json.NewDecoder(&out)
	for {
		lp := new(listedPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range targets {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir, Fset: fset}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		// Check returns the package even when errors were reported; the
		// collected Info stays usable for the parts that did check.
		pkg.Types, _ = conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
