package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Well-known package paths the analyzers key on.
const (
	rmaPath     = "mpi3rma/rma"
	mpi2Path    = "mpi3rma/internal/mpi2rma"
	corePath    = "mpi3rma/internal/core"
	runtimePath = "mpi3rma/internal/runtime"
)

// callee resolves the *types.Func a call invokes, or nil for calls through
// function values, conversions, and builtins.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcKey names a function as "pkgpath.Name" or a method as
// "pkgpath.Recv.Name", the form the analyzers' tables use.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key += named.Obj().Name() + "."
		}
	}
	return key + fn.Name()
}

// calleeKey combines callee and funcKey.
func calleeKey(info *types.Info, call *ast.CallExpr) string {
	return funcKey(callee(info, call))
}

// intConst constant-folds expr to an int64 using the type checker's
// constant propagation (covers literals, named constants, and constant
// arithmetic).
func intConst(info *types.Info, expr ast.Expr) (int64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// dtypeExtent resolves a datatype expression to its byte extent when it is
// one of the predefined primitive types (rma.Byte, rma.Int64, ...,
// referenced directly or through internal/datatype). Derived layouts
// return ok=false.
func dtypeExtent(info *types.Info, expr ast.Expr) (int64, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return 0, false
	}
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return 0, false
	}
	switch obj.Pkg().Path() {
	case rmaPath, "mpi3rma/internal/datatype":
	default:
		return 0, false
	}
	switch obj.Name() {
	case "Byte":
		return 1, true
	case "Int32", "Float32":
		return 4, true
	case "Int64", "Float64":
		return 8, true
	}
	return 0, false
}

// attrHasBit reports whether arg is a constant expression of type
// core.Attr whose value has the named attribute bit set. The bit's value
// is read from the core package's own constant (reached through the
// argument's type), so the analyzers never hardcode it.
func attrHasBit(info *types.Info, arg ast.Expr, constName string) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != corePath || obj.Name() != "Attr" {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact {
		return false
	}
	c, ok := obj.Pkg().Scope().Lookup(constName).(*types.Const)
	if !ok {
		return false
	}
	bit, exact := constant.Int64Val(constant.ToInt(c.Val()))
	if !exact {
		return false
	}
	return v&bit != 0
}

// mentionsCoreName reports whether the expression references the named
// object from internal/core anywhere — the non-folding fallback for attrs
// built at runtime from core.Attr constants.
func mentionsCoreName(info *types.Info, arg ast.Expr, name string) bool {
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == corePath && obj.Name() == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// objectOf resolves an identifier expression to its object (through Uses),
// or nil for anything that is not a plain identifier.
func objectOf(info *types.Info, expr ast.Expr) types.Object {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// optionCalls yields the option-constructor calls among an argument list:
// each arg that is a call to a function in mpi3rma/rma whose name starts
// with "With".
func optionCalls(info *types.Info, args []ast.Expr) []*ast.CallExpr {
	var opts []*ast.CallExpr
	for _, arg := range args {
		call, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := callee(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != rmaPath {
			continue
		}
		if len(fn.Name()) > 4 && fn.Name()[:4] == "With" {
			opts = append(opts, call)
		}
	}
	return opts
}
