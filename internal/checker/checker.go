// Package checker implements the opt-in RMA semantic checker: a shadow
// access tracker that records every remotely-applied put/get/accumulate/RMW
// as a byte interval on the target exposure and flags pairs of overlapping
// accesses that are not separated by a synchronization call and not both
// atomic — the dynamic counterpart to the static analyzers in cmd/rmalint.
//
// One Checker watches one simulated world: every rank's engine reports into
// the same instance (see ForWorld), so conflicts between different origins
// are visible. Accesses retire when the target's collective completion
// window closes (CompleteCollective) — the one synchronization every origin
// participates in; an origin-side Order or Complete advances a per-pair
// epoch so that origin's own accesses on opposite sides never pair up, but
// deliberately leaves the accesses live for other origins (Complete does
// not synchronize two different origins with each other). Point-to-point
// message ordering between ranks is not modeled: a pair legalized only by
// a send/recv token is still reported.
//
// The checker deliberately reports *potential* races: two overlapping
// non-atomic accesses inside one completion window are flagged even if the
// simulated schedule happened to apply them in a benign order, matching the
// MPI-3 definition of conflicting accesses rather than one observed
// interleaving.
package checker

import (
	"fmt"
	"io"
	"sync"

	"mpi3rma/internal/core"
	"mpi3rma/internal/simnet"
)

// Bounds keep a misbehaving program from turning the checker into a memory
// leak: per-exposure live accesses and globally-stored conflicts are capped,
// with drops counted so a truncated report is never mistaken for a clean one.
const (
	maxLive      = 8192
	maxConflicts = 1024
)

var (
	regMu    sync.Mutex
	registry = map[*simnet.Network]*Checker{}
)

// ForWorld returns the Checker shared by every rank of the given simulated
// network, creating it on first use. Engines on the same network that enable
// checking all report into this one instance.
func ForWorld(net *simnet.Network) *Checker {
	regMu.Lock()
	defer regMu.Unlock()
	c := registry[net]
	if c == nil {
		c = New()
		registry[net] = c
	}
	return c
}

// Conflict describes one pair of overlapping accesses to the same exposure
// that no synchronization separates. First is the earlier-recorded access.
type Conflict struct {
	Target int    // world rank owning the exposure
	Handle uint64 // target_mem handle the pair collided on
	Lo, Hi int    // overlapping byte range [Lo, Hi) within the exposure
	First  core.Access
	Second core.Access
	Advice string // the synchronization that would have legalized the pair
}

func (c Conflict) String() string {
	return fmt.Sprintf(
		"conflicting accesses to rank %d handle %#x bytes [%d,%d): %s op %d from rank %d overlaps %s op %d from rank %d; %s",
		c.Target, c.Handle, c.Lo, c.Hi,
		c.First.Kind, c.First.OpID, c.First.Origin,
		c.Second.Kind, c.Second.OpID, c.Second.Origin,
		c.Advice)
}

type targetKey struct {
	target int
	handle uint64
}

// originFoot is the merged byte footprint one origin has outstanding on one
// exposure, split by access direction. It pre-filters conflict scans: a new
// access that does not overlap any footprint cannot conflict with anything.
type originFoot struct {
	writes intervalSet
	reads  intervalSet
}

type handleState struct {
	live    []core.Access
	origins map[int]*originFoot
}

// Checker records accesses and detects conflicting overlaps. It implements
// core.AccessRecorder. All methods are safe for concurrent use by the rank
// goroutines of a simulated world.
type Checker struct {
	mu        sync.Mutex
	targets   map[targetKey]*handleState
	conflicts []Conflict
	recorded  int64
	dropped   int64 // conflicts discarded beyond maxConflicts
	truncated int64 // live accesses discarded beyond maxLive (footprints still tracked)
}

// New returns an empty Checker. Most callers want ForWorld instead.
func New() *Checker {
	return &Checker{targets: map[targetKey]*handleState{}}
}

// RecordAccess notes one remotely-applied access and checks it against every
// live access it could conflict with.
func (c *Checker) RecordAccess(a core.Access) {
	if a.Len <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recorded++
	key := targetKey{a.Target, a.Handle}
	hs := c.targets[key]
	if hs == nil {
		hs = &handleState{origins: map[int]*originFoot{}}
		c.targets[key] = hs
	}

	lo, hi := a.Disp, a.Disp+a.Len
	// Pre-filter on merged footprints: a write can conflict with anything,
	// a read only with writes.
	hot := false
	for _, f := range hs.origins {
		if f.writes.Overlaps(lo, hi) || (a.Kind.IsWrite() && f.reads.Overlaps(lo, hi)) {
			hot = true
			break
		}
	}
	if hot {
		for i := range hs.live {
			b := &hs.live[i]
			oLo, oHi, ok := overlap(lo, hi, b.Disp, b.Disp+b.Len)
			if !ok || !conflicting(a, *b) {
				continue
			}
			c.addConflict(Conflict{
				Target: a.Target, Handle: a.Handle, Lo: oLo, Hi: oHi,
				First: *b, Second: a, Advice: advise(*b, a),
			})
		}
	}

	f := hs.origins[a.Origin]
	if f == nil {
		f = &originFoot{}
		hs.origins[a.Origin] = f
	}
	if a.Kind.IsWrite() {
		f.writes.Add(lo, hi)
	} else {
		f.reads.Add(lo, hi)
	}
	if len(hs.live) >= maxLive {
		c.truncated++
		return
	}
	hs.live = append(hs.live, a)
}

// conflicting reports whether two overlapping accesses to the same exposure
// form an MPI-3 conflicting pair. Callers guarantee byte overlap.
func conflicting(a, b core.Access) bool {
	if !a.Kind.IsWrite() && !b.Kind.IsWrite() {
		return false // concurrent reads never conflict
	}
	if a.Origin == b.Origin && a.OpID == b.OpID {
		// Members of one aggregate apply in member order at the target.
		// (Op ids are per-origin request counters, so the comparison is
		// only meaningful within one origin.)
		return false
	}
	if a.Atomic && b.Atomic {
		return false // element-wise atomicity legalizes any overlap
	}
	if a.Origin != b.Origin {
		return true
	}
	// Same origin: ordering attributes serialize the pair at the target,
	// and an epoch boundary (Order/Complete between the issues) separates
	// them by definition.
	if a.Ordered && b.Ordered {
		return false
	}
	if a.Epoch != b.Epoch {
		return false
	}
	return true
}

// advise names the synchronization that would have made the pair legal.
func advise(first, second core.Access) string {
	if first.Origin != second.Origin {
		return fmt.Sprintf("separate the epochs with CompleteCollective, or make both accesses atomic (WithAtomic / session WithAtomicity) to allow concurrent rank-%d/rank-%d access",
			first.Origin, second.Origin)
	}
	return "issue Order or Complete to the target between the two operations, give both WithOrdering, or make both atomic"
}

func (c *Checker) addConflict(cf Conflict) {
	if len(c.conflicts) >= maxConflicts {
		c.dropped++
		return
	}
	c.conflicts = append(c.conflicts, cf)
}

// RetireOrigin is called when origin's Complete toward target returned.
// Complete orders only that origin's own operations (the separation the
// epoch stamp already carries), so the accesses stay live on purpose: a
// different origin touching the same bytes later is still unsynchronized
// with them, and dropping here would make its detection depend on
// wall-clock scheduling. Only RetireTarget — the collective completion
// every member participates in — closes the window for all origins.
func (c *Checker) RetireOrigin(origin, target int) {}

// RetireTarget drops every live access recorded against target, from all
// origins — the collective completion window closed.
func (c *Checker) RetireTarget(target int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key := range c.targets {
		if key.target == target {
			delete(c.targets, key)
		}
	}
}

// Conflicts returns a copy of the conflicts found so far.
func (c *Checker) Conflicts() []Conflict {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Conflict(nil), c.conflicts...)
}

// ConflictCount returns the number of stored conflicts. It does not include
// conflicts dropped past the storage cap; see Dropped.
func (c *Checker) ConflictCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.conflicts)
}

// Recorded returns the total number of accesses observed.
func (c *Checker) Recorded() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recorded
}

// Dropped returns how many conflicts were discarded beyond the storage cap.
func (c *Checker) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Reset clears all recorded state, conflicts, and counters.
func (c *Checker) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.targets = map[targetKey]*handleState{}
	c.conflicts = nil
	c.recorded, c.dropped, c.truncated = 0, 0, 0
}

// Report writes a human-readable summary of all conflicts to w.
func (c *Checker) Report(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.conflicts) == 0 {
		fmt.Fprintf(w, "rma checker: %d accesses recorded, no conflicts\n", c.recorded)
		return
	}
	fmt.Fprintf(w, "rma checker: %d accesses recorded, %d conflicts:\n", c.recorded, len(c.conflicts))
	for i := range c.conflicts {
		fmt.Fprintf(w, "  %s\n", c.conflicts[i].String())
	}
	if c.dropped > 0 {
		fmt.Fprintf(w, "  ... and %d more conflicts dropped past the %d-entry cap\n", c.dropped, maxConflicts)
	}
}
