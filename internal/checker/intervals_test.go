package checker

import "testing"

func TestIntervalSetCoalesces(t *testing.T) {
	var s intervalSet
	s.Add(0, 4)
	s.Add(8, 12)
	if s.Len() != 2 {
		t.Fatalf("disjoint adds left %d intervals, want 2", s.Len())
	}
	s.Add(4, 8) // bridges the gap, touching both neighbours
	if s.Len() != 1 {
		t.Fatalf("bridging add left %d intervals, want 1", s.Len())
	}
	if !s.Overlaps(0, 1) || !s.Overlaps(11, 12) || s.Overlaps(12, 20) {
		t.Errorf("merged set %v answers overlap queries wrongly", s.iv)
	}
}

func TestIntervalSetHalfOpen(t *testing.T) {
	var s intervalSet
	s.Add(4, 8)
	if s.Overlaps(0, 4) || s.Overlaps(8, 12) {
		t.Error("touching endpoints must not overlap")
	}
	if !s.Overlaps(7, 9) || !s.Overlaps(0, 5) || !s.Overlaps(5, 6) {
		t.Error("genuinely overlapping ranges not detected")
	}
	s.Add(6, 6) // empty: no-op
	if s.Len() != 1 {
		t.Error("empty interval changed the set")
	}
}

// naiveSet is the oracle: a byte bitmap.
type naiveSet map[int]bool

func (n naiveSet) Add(lo, hi int) {
	for b := lo; b < hi; b++ {
		n[b] = true
	}
}

func (n naiveSet) Overlaps(lo, hi int) bool {
	for b := lo; b < hi; b++ {
		if n[b] {
			return true
		}
	}
	return false
}

// FuzzCheckerIntervals drives the coalescing interval set against a bitmap
// oracle: every byte pair of the fuzz input encodes one Add or Overlaps
// operation over a small coordinate space.
func FuzzCheckerIntervals(f *testing.F) {
	f.Add([]byte{0, 4, 4, 8, 2, 6})
	f.Add([]byte{10, 2, 1, 1, 0, 255})
	f.Add([]byte{128, 130, 129, 131, 127, 132, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var s intervalSet
		oracle := naiveSet{}
		for i := 0; i+1 < len(data); i += 2 {
			lo, hi := int(data[i]), int(data[i+1])
			if lo > hi {
				// Odd pairs query, even pairs add; reversed bounds select
				// the query so both operations interleave unpredictably.
				if got, want := s.Overlaps(hi, lo), oracle.Overlaps(hi, lo); got != want {
					t.Fatalf("Overlaps(%d,%d) = %v, oracle says %v (set %v)", hi, lo, got, want, s.iv)
				}
				continue
			}
			s.Add(lo, hi)
			oracle.Add(lo, hi)
		}
		// Invariants: sorted, non-empty, non-touching intervals.
		for k, iv := range s.iv {
			if iv.Lo >= iv.Hi {
				t.Fatalf("empty interval %v stored at %d", iv, k)
			}
			if k > 0 && s.iv[k-1].Hi >= iv.Lo {
				t.Fatalf("intervals %v and %v touch or overlap", s.iv[k-1], iv)
			}
		}
		// Exhaustive agreement with the oracle over the coordinate space.
		for b := 0; b < 256; b++ {
			if got, want := s.Overlaps(b, b+1), oracle.Overlaps(b, b+1); got != want {
				t.Fatalf("byte %d: set says %v, oracle says %v (set %v)", b, got, want, s.iv)
			}
		}
	})
}
