package checker_test

import (
	"strings"
	"testing"

	"mpi3rma/internal/runtime"
	"mpi3rma/rma"
)

// runWorld drives a small world with the checker enabled on every rank and
// returns the shared Checker collected from rank 0.
func runWorld(t *testing.T, ranks int, body func(s *rma.Session, p *runtime.Proc, tm rma.TargetMem)) []rma.Conflict {
	t.Helper()
	world := runtime.NewWorld(runtime.Config{Ranks: ranks})
	defer world.Close()

	var conflicts []rma.Conflict
	err := world.Run(func(p *runtime.Proc) {
		s := rma.Open(p, rma.WithChecker())
		var tm rma.TargetMem
		if p.Rank() == 0 {
			tm, _ = s.Expose(64)
			enc := tm.Encode()
			for r := 1; r < ranks; r++ {
				p.Send(r, 0, enc)
			}
		} else {
			enc, _ := p.Recv(0, 0)
			var err error
			tm, err = rma.DecodeTargetMem(enc)
			if err != nil {
				t.Errorf("decode descriptor: %v", err)
				return
			}
		}
		body(s, p, tm)
		if p.Rank() == 0 {
			// Collected before the window retires: CompleteCollective runs
			// inside body (or not at all), and world.Run joins every rank
			// before we read the slice.
			conflicts = s.Checker().Conflicts()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return conflicts
}

// put writes 8 bytes at disp and completes toward the target.
func put(t *testing.T, s *rma.Session, p *runtime.Proc, tm rma.TargetMem, disp int, opts ...rma.OpOption) {
	t.Helper()
	src := p.Alloc(8)
	if _, err := s.Put(src, 1, rma.Int64, tm, disp, opts...); err != nil {
		t.Errorf("put: %v", err)
		return
	}
	if err := s.Complete(tm.Owner); err != nil {
		t.Errorf("complete: %v", err)
	}
}

// TestCheckerFlagsOverlappingPuts is the seeded-conflict acceptance test:
// two origins put the same 8 bytes without the atomicity attribute inside
// one collective-completion window, and the checker must flag the pair.
func TestCheckerFlagsOverlappingPuts(t *testing.T) {
	conflicts := runWorld(t, 3, func(s *rma.Session, p *runtime.Proc, tm rma.TargetMem) {
		if p.Rank() != 0 {
			put(t, s, p, tm, 0)
		}
		if err := s.CompleteCollective(); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if len(conflicts) == 0 {
		t.Fatal("overlapping non-atomic puts from two origins were not flagged")
	}
	c := conflicts[0]
	if c.Target != 0 || c.Lo != 0 || c.Hi != 8 {
		t.Errorf("conflict localized to target %d bytes [%d,%d), want target 0 bytes [0,8)", c.Target, c.Lo, c.Hi)
	}
	got := map[int]bool{c.First.Origin: true, c.Second.Origin: true}
	if !got[1] || !got[2] {
		t.Errorf("conflict names origins %d and %d, want 1 and 2", c.First.Origin, c.Second.Origin)
	}
	if c.First.OpID == 0 || c.Second.OpID == 0 {
		t.Error("conflict is missing the op ids needed to correlate with a trace")
	}
	if !strings.Contains(c.Advice, "CompleteCollective") {
		t.Errorf("advice %q does not name the legalizing synchronization", c.Advice)
	}
}

// TestCheckerAtomicPairClean: the same overlap with both puts atomic is
// legal (element-wise atomicity) and must not be reported.
func TestCheckerAtomicPairClean(t *testing.T) {
	conflicts := runWorld(t, 3, func(s *rma.Session, p *runtime.Proc, tm rma.TargetMem) {
		if p.Rank() != 0 {
			put(t, s, p, tm, 0, rma.WithAtomic())
		}
		if err := s.CompleteCollective(); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	for _, c := range conflicts {
		t.Errorf("atomic pair reported as conflict: %s", c)
	}
}

// TestCheckerDisjointClean: byte-disjoint puts never conflict.
func TestCheckerDisjointClean(t *testing.T) {
	conflicts := runWorld(t, 3, func(s *rma.Session, p *runtime.Proc, tm rma.TargetMem) {
		if p.Rank() != 0 {
			put(t, s, p, tm, 8*p.Rank())
		}
		if err := s.CompleteCollective(); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	for _, c := range conflicts {
		t.Errorf("disjoint puts reported as conflict: %s", c)
	}
}

// TestCheckerGetPutConflict: a get overlapping another origin's non-atomic
// put is a read/write conflict.
func TestCheckerGetPutConflict(t *testing.T) {
	conflicts := runWorld(t, 3, func(s *rma.Session, p *runtime.Proc, tm rma.TargetMem) {
		switch p.Rank() {
		case 1:
			put(t, s, p, tm, 0)
		case 2:
			dst := p.Alloc(8)
			if _, err := s.Get(dst, 1, rma.Int64, tm, 0); err != nil {
				t.Errorf("get: %v", err)
			} else if err := s.Complete(tm.Owner); err != nil {
				t.Errorf("complete: %v", err)
			}
		}
		if err := s.CompleteCollective(); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if len(conflicts) == 0 {
		t.Fatal("get overlapping a non-atomic put was not flagged")
	}
}

// TestCheckerSameOriginEpochs: one origin overwriting its own bytes without
// intervening synchronization is flagged; with an Order between the puts
// the pair is epoch-separated and clean.
func TestCheckerSameOriginEpochs(t *testing.T) {
	run := func(order bool) []rma.Conflict {
		return runWorld(t, 2, func(s *rma.Session, p *runtime.Proc, tm rma.TargetMem) {
			if p.Rank() == 1 {
				src := p.Alloc(8)
				if _, err := s.Put(src, 1, rma.Int64, tm, 0); err != nil {
					t.Errorf("put: %v", err)
				}
				if order {
					if err := s.Order(tm.Owner); err != nil {
						t.Errorf("order: %v", err)
					}
				}
				if _, err := s.Put(src, 1, rma.Int64, tm, 0); err != nil {
					t.Errorf("put: %v", err)
				}
				if err := s.Complete(tm.Owner); err != nil {
					t.Errorf("complete: %v", err)
				}
			}
			if err := s.CompleteCollective(); err != nil {
				t.Errorf("complete collective: %v", err)
			}
		})
	}

	if conflicts := run(false); len(conflicts) == 0 {
		t.Error("same-origin overlapping puts with no Order between them were not flagged")
	} else if !strings.Contains(conflicts[0].Advice, "Order") {
		t.Errorf("advice %q does not suggest Order", conflicts[0].Advice)
	}
	for _, c := range run(true) {
		t.Errorf("Order-separated puts reported as conflict: %s", c)
	}
}

// TestCheckerWindowRetires: accesses in different collective-completion
// windows never pair, even across origins.
func TestCheckerWindowRetires(t *testing.T) {
	conflicts := runWorld(t, 3, func(s *rma.Session, p *runtime.Proc, tm rma.TargetMem) {
		if p.Rank() == 1 {
			put(t, s, p, tm, 0)
		}
		if err := s.CompleteCollective(); err != nil {
			t.Errorf("complete collective: %v", err)
		}
		if p.Rank() == 2 {
			put(t, s, p, tm, 0)
		}
		if err := s.CompleteCollective(); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	for _, c := range conflicts {
		t.Errorf("accesses in separate completion windows reported as conflict: %s", c)
	}
}

// TestCheckerRMWClean: RMWs are inherently atomic; two origins hammering
// the same word via FetchAdd is the supported pattern and must be clean,
// while a plain put overlapping the same word is not.
func TestCheckerRMWClean(t *testing.T) {
	conflicts := runWorld(t, 3, func(s *rma.Session, p *runtime.Proc, tm rma.TargetMem) {
		if p.Rank() != 0 {
			if _, err := s.FetchAdd(tm, 0, 1); err != nil {
				t.Errorf("fetchadd: %v", err)
			}
		}
		if err := s.CompleteCollective(); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	for _, c := range conflicts {
		t.Errorf("concurrent RMWs reported as conflict: %s", c)
	}

	conflicts = runWorld(t, 3, func(s *rma.Session, p *runtime.Proc, tm rma.TargetMem) {
		switch p.Rank() {
		case 1:
			if _, err := s.FetchAdd(tm, 0, 1); err != nil {
				t.Errorf("fetchadd: %v", err)
			}
		case 2:
			put(t, s, p, tm, 0)
		}
		if err := s.CompleteCollective(); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if len(conflicts) == 0 {
		t.Error("plain put overlapping another origin's RMW was not flagged")
	}
}
