package checker

import "sort"

// interval is a half-open byte range [Lo, Hi) within one exposure.
type interval struct {
	Lo, Hi int
}

// intervalSet is a sorted, coalesced set of half-open byte intervals. It is
// the checker's cheap pre-filter: before scanning the live-access list for a
// precise conflict, the new access is tested against the merged footprint of
// each other origin, so disjoint traffic (the common case in a correct
// program) costs one binary search instead of a linear scan.
type intervalSet struct {
	iv []interval
}

// Add inserts [lo, hi), merging it with any intervals it touches. Adjacent
// intervals coalesce: Add(0,4) then Add(4,8) leaves a single [0,8).
func (s *intervalSet) Add(lo, hi int) {
	if lo >= hi {
		return
	}
	// First interval whose end reaches lo: everything before it stays.
	i := sort.Search(len(s.iv), func(k int) bool { return s.iv[k].Hi >= lo })
	j := i
	for j < len(s.iv) && s.iv[j].Lo <= hi {
		if s.iv[j].Lo < lo {
			lo = s.iv[j].Lo
		}
		if s.iv[j].Hi > hi {
			hi = s.iv[j].Hi
		}
		j++
	}
	if i == j {
		s.iv = append(s.iv, interval{})
		copy(s.iv[i+1:], s.iv[i:])
		s.iv[i] = interval{lo, hi}
		return
	}
	s.iv[i] = interval{lo, hi}
	s.iv = append(s.iv[:i+1], s.iv[j:]...)
}

// Overlaps reports whether [lo, hi) shares at least one byte with the set.
// Touching endpoints do not overlap: [0,4) and [4,8) are disjoint.
func (s *intervalSet) Overlaps(lo, hi int) bool {
	if lo >= hi {
		return false
	}
	i := sort.Search(len(s.iv), func(k int) bool { return s.iv[k].Hi > lo })
	return i < len(s.iv) && s.iv[i].Lo < hi
}

// Reset empties the set, keeping its backing array.
func (s *intervalSet) Reset() { s.iv = s.iv[:0] }

// Len returns the number of disjoint intervals held.
func (s *intervalSet) Len() int { return len(s.iv) }

// overlap returns the intersection of two half-open ranges, or ok=false.
func overlap(aLo, aHi, bLo, bHi int) (lo, hi int, ok bool) {
	lo = aLo
	if bLo > lo {
		lo = bLo
	}
	hi = aHi
	if bHi < hi {
		hi = bHi
	}
	return lo, hi, lo < hi
}
