package armci

import (
	"fmt"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
)

// Strided and vector operations (ARMCI_PutS / ARMCI_GetS / ARMCI_AccS and
// ARMCI_PutV / ARMCI_GetV). ARMCI describes an N-dimensional strided
// transfer by a block size in bytes, a per-level count, and per-level
// byte strides for source and destination independently; a vector transfer
// is an explicit list of (offset, length) segments.
//
// Both are lowered onto datatype.Indexed layouts over bytes, one for the
// origin and one for the target — which is precisely how the strawman
// proposal absorbs ARMCI's noncontiguous API into MPI datatypes.

// StridedSpec describes one side of an N-level strided transfer.
type StridedSpec struct {
	// Off is the starting byte offset.
	Off int
	// Strides are the byte strides of each level, innermost first
	// (len(Strides) == len(counts)).
	Strides []int
}

// stridedLayout expands a strided description into block displacements.
func stridedLayout(off int, blockBytes int, counts []int, strides []int) ([]int, []int, error) {
	if len(counts) != len(strides) {
		return nil, nil, fmt.Errorf("armci: %d counts but %d strides", len(counts), len(strides))
	}
	displs := []int{off}
	for lvl := len(counts) - 1; lvl >= 0; lvl-- {
		c, s := counts[lvl], strides[lvl]
		if c <= 0 {
			return nil, nil, fmt.Errorf("armci: non-positive count %d at level %d", c, lvl)
		}
		next := make([]int, 0, len(displs)*c)
		for _, d := range displs {
			for i := 0; i < c; i++ {
				next = append(next, d+i*s)
			}
		}
		displs = next
	}
	blocklens := make([]int, len(displs))
	for i := range blocklens {
		blocklens[i] = blockBytes
	}
	return blocklens, displs, nil
}

// PutS is ARMCI_PutS: an N-level strided put of blockBytes-byte blocks,
// counts[i] blocks at level i, with independent source and destination
// strides. Blocking and ordered.
func (a *ARMCI) PutS(src memsim.Region, srcSpec StridedSpec, dst core.TargetMem, dstSpec StridedSpec, blockBytes int, counts []int, rank int, comm *runtime.Comm) error {
	return a.strided(core.OpPut, 0, src, srcSpec, dst, dstSpec, blockBytes, counts, rank, comm, blockingAttrs)
}

// GetS is ARMCI_GetS: the strided get.
func (a *ARMCI) GetS(dst memsim.Region, dstSpec StridedSpec, src core.TargetMem, srcSpec StridedSpec, blockBytes int, counts []int, rank int, comm *runtime.Comm) error {
	return a.strided(core.OpGet, 0, dst, dstSpec, src, srcSpec, blockBytes, counts, rank, comm, blockingAttrs)
}

// AccS is ARMCI_AccS: the strided daxpy accumulate over float64 blocks
// (blockBytes must be a multiple of 8). Serialized.
func (a *ARMCI) AccS(scale float64, src memsim.Region, srcSpec StridedSpec, dst core.TargetMem, dstSpec StridedSpec, blockBytes int, counts []int, rank int, comm *runtime.Comm) error {
	if blockBytes%8 != 0 {
		return fmt.Errorf("armci: AccS block of %d bytes is not a whole number of float64 elements", blockBytes)
	}
	return a.strided(core.OpAccumulate, scale, src, srcSpec, dst, dstSpec, blockBytes, counts, rank, comm, blockingAttrs|core.AttrAtomic)
}

func (a *ARMCI) strided(op core.OpType, scale float64, local memsim.Region, localSpec StridedSpec, remote core.TargetMem, remoteSpec StridedSpec, blockBytes int, counts []int, rank int, comm *runtime.Comm, attrs core.Attr) error {
	ldt, _, err := a.sideType(op, localSpec, blockBytes, counts)
	if err != nil {
		return err
	}
	rdt, _, err := a.sideType(op, remoteSpec, blockBytes, counts)
	if err != nil {
		return err
	}
	// Every caller (PutS/GetS/AccS) passes blockingAttrs: the engine call
	// returns only after the request would have completed, so the request
	// itself carries no further information. The blocking bit just isn't
	// provable through the parameter.
	switch op {
	case core.OpPut:
		_, err = a.eng.Put(local, 1, ldt, remote, 0, 1, rdt, rank, comm, attrs) //rmalint:ignore lostrequest attrs always carries AttrBlocking
	case core.OpGet:
		_, err = a.eng.Get(local, 1, ldt, remote, 0, 1, rdt, rank, comm, attrs) //rmalint:ignore lostrequest attrs always carries AttrBlocking
	case core.OpAccumulate:
		_, err = a.eng.AccumulateAxpy(scale, local, 1, ldt, remote, 0, 1, rdt, rank, comm, attrs) //rmalint:ignore lostrequest attrs always carries AttrBlocking
	}
	return err
}

// sideType builds one side's layout; accumulate sides are float64-typed so
// the daxpy combine sees elements, others are plain bytes.
func (a *ARMCI) sideType(op core.OpType, spec StridedSpec, blockBytes int, counts []int) (datatype.Type, int, error) {
	blocklens, displs, err := stridedLayout(spec.Off, blockBytes, counts, spec.Strides)
	if err != nil {
		return nil, 0, err
	}
	if op == core.OpAccumulate {
		elems := make([]int, len(blocklens))
		elemDispls := make([]int, len(displs))
		for i := range blocklens {
			if blocklens[i]%8 != 0 || displs[i]%8 != 0 {
				return nil, 0, fmt.Errorf("armci: accumulate layout not float64-aligned (block %d bytes at offset %d)", blocklens[i], displs[i])
			}
			elems[i] = blocklens[i] / 8
			elemDispls[i] = displs[i] / 8
		}
		return datatype.Indexed(elems, elemDispls, datatype.Float64), 0, nil
	}
	return datatype.Indexed(blocklens, displs, datatype.Byte), 0, nil
}

// Segment is one (offset, length) piece of a vector operation.
type Segment struct {
	Off, Len int
}

// vectorType lowers a segment list to an Indexed byte layout.
func vectorType(segs []Segment) (datatype.Type, int) {
	blocklens := make([]int, len(segs))
	displs := make([]int, len(segs))
	total := 0
	for i, s := range segs {
		blocklens[i] = s.Len
		displs[i] = s.Off
		total += s.Len
	}
	return datatype.Indexed(blocklens, displs, datatype.Byte), total
}

// PutV is ARMCI_PutV: scatter the source segments into the destination
// segments (total lengths must match). Blocking and ordered.
func (a *ARMCI) PutV(src memsim.Region, srcSegs []Segment, dst core.TargetMem, dstSegs []Segment, rank int, comm *runtime.Comm) error {
	sdt, sn := vectorType(srcSegs)
	ddt, dn := vectorType(dstSegs)
	if sn != dn {
		return fmt.Errorf("armci: PutV source carries %d bytes but destination expects %d", sn, dn)
	}
	_, err := a.eng.Put(src, 1, sdt, dst, 0, 1, ddt, rank, comm, blockingAttrs)
	return err
}

// GetV is ARMCI_GetV: gather the source segments of the remote memory into
// the local destination segments.
func (a *ARMCI) GetV(dst memsim.Region, dstSegs []Segment, src core.TargetMem, srcSegs []Segment, rank int, comm *runtime.Comm) error {
	ddt, dn := vectorType(dstSegs)
	sdt, sn := vectorType(srcSegs)
	if sn != dn {
		return fmt.Errorf("armci: GetV source carries %d bytes but destination expects %d", sn, dn)
	}
	_, err := a.eng.Get(dst, 1, ddt, src, 0, 1, sdt, rank, comm, blockingAttrs)
	return err
}
