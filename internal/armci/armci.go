// Package armci implements an ARMCI-like one-sided communication library
// (paper Section VI): the Aggregate Remote Memory Copy Interface used by
// the Global Arrays toolkit.
//
// Semantics reproduced from the paper's description:
//
//   - Contiguous, vector and strided Put, Get and Accumulate operations.
//   - Blocking and nonblocking variants; *all blocking operations are
//     ordered by the library*, nonblocking operations have no ordering
//     guarantee.
//   - Accumulate is "similar to a daxpy where x is the remote memory and
//     y and a are inputs", and accumulate operations are serialized.
//   - Fence (per target) and AllFence wait for remote completion of
//     previous operations.
//   - Memory participates via collective allocation (ARMCI_Malloc).
//
// The implementation maps each rule onto strawman attributes — the mapping
// itself documents the paper's claim that the strawman subsumes ARMCI
// (blocking⇒Blocking|Ordering, accumulate⇒Atomic, fence⇒Complete) — while
// the strawman additionally offers what ARMCI cannot express: blocking
// *unordered* operations and completion checks for operation subsets.
package armci

import (
	"fmt"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
)

// ARMCI is one rank's ARMCI library state.
type ARMCI struct {
	proc *runtime.Proc
	eng  *core.Engine
}

// extKey is the Proc extension slot.
const extKey = "armci"

// Attach returns the rank's ARMCI layer, creating it on first use.
func Attach(p *runtime.Proc) *ARMCI {
	return p.Ext(extKey, func() any {
		return &ARMCI{proc: p, eng: core.Attach(p, core.Options{})}
	}).(*ARMCI)
}

// Handle tracks a nonblocking operation (ARMCI's armci_hdl_t).
type Handle struct {
	req *core.Request
}

// Wait blocks until the operation is locally complete (ARMCI_Wait).
func (h *Handle) Wait() {
	if h != nil && h.req != nil {
		h.req.Wait()
	}
}

// Test reports whether the operation is complete (ARMCI_Test).
func (h *Handle) Test() bool {
	if h == nil || h.req == nil {
		return true
	}
	return h.req.Test()
}

// Malloc is ARMCI_Malloc: every member of comm contributes size bytes and
// receives the descriptors of all members' allocations, indexed by comm
// rank. The local region is returned alongside.
func (a *ARMCI) Malloc(comm *runtime.Comm, size int) ([]core.TargetMem, memsim.Region, error) {
	tm, region := a.eng.ExposeNew(size)
	parts := comm.Gather(0, tm.Encode())
	var flat []byte
	if comm.Rank() == 0 {
		for _, part := range parts {
			flat = append(flat, part...)
		}
	}
	flat = comm.Bcast(0, flat)
	n := comm.Size()
	if n == 0 || len(flat)%n != 0 {
		return nil, memsim.Region{}, fmt.Errorf("armci: malloc exchange returned %d bytes for %d ranks", len(flat), n)
	}
	per := len(flat) / n
	tms := make([]core.TargetMem, n)
	for i := 0; i < n; i++ {
		var err error
		tms[i], err = core.DecodeTargetMem(flat[i*per : (i+1)*per])
		if err != nil {
			return nil, memsim.Region{}, err
		}
	}
	return tms, region, nil
}

// blockingAttrs are ARMCI's blocking-call semantics: single-call (the
// strawman Blocking attribute) and ordered (the library orders all
// blocking operations).
const blockingAttrs = core.AttrBlocking | core.AttrOrdering

// Put copies n bytes from src (at srcOff) into rank's memory at dstOff —
// ARMCI_Put. Blocking and ordered.
func (a *ARMCI) Put(src memsim.Region, srcOff int, dst core.TargetMem, dstOff, n, rank int, comm *runtime.Comm) error {
	_, err := a.eng.Put(sub(src, srcOff, n), n, datatype.Byte, dst, dstOff, n, datatype.Byte, rank, comm, blockingAttrs)
	return err
}

// PutNB is ARMCI_NbPut: nonblocking and unordered.
func (a *ARMCI) PutNB(src memsim.Region, srcOff int, dst core.TargetMem, dstOff, n, rank int, comm *runtime.Comm) (*Handle, error) {
	req, err := a.eng.Put(sub(src, srcOff, n), n, datatype.Byte, dst, dstOff, n, datatype.Byte, rank, comm, core.AttrNone)
	if err != nil {
		return nil, err
	}
	return &Handle{req: req}, nil
}

// Get copies n bytes from rank's memory at srcOff into dst at dstOff —
// ARMCI_Get. Blocking.
func (a *ARMCI) Get(dst memsim.Region, dstOff int, src core.TargetMem, srcOff, n, rank int, comm *runtime.Comm) error {
	_, err := a.eng.Get(sub(dst, dstOff, n), n, datatype.Byte, src, srcOff, n, datatype.Byte, rank, comm, blockingAttrs)
	return err
}

// GetNB is ARMCI_NbGet.
func (a *ARMCI) GetNB(dst memsim.Region, dstOff int, src core.TargetMem, srcOff, n, rank int, comm *runtime.Comm) (*Handle, error) {
	req, err := a.eng.Get(sub(dst, dstOff, n), n, datatype.Byte, src, srcOff, n, datatype.Byte, rank, comm, core.AttrNone)
	if err != nil {
		return nil, err
	}
	return &Handle{req: req}, nil
}

// Acc is ARMCI_Acc: remote[i] += scale * local[i] over float64 elements —
// the daxpy-style accumulate, serialized (atomic) per ARMCI semantics.
// count is the number of float64 elements.
func (a *ARMCI) Acc(scale float64, src memsim.Region, srcOff int, dst core.TargetMem, dstOff, count, rank int, comm *runtime.Comm) error {
	_, err := a.eng.AccumulateAxpy(scale,
		sub(src, srcOff, count*8), count, datatype.Float64,
		dst, dstOff, count, datatype.Float64,
		rank, comm, blockingAttrs|core.AttrAtomic)
	return err
}

// AccNB is the nonblocking accumulate (still serialized at the target).
func (a *ARMCI) AccNB(scale float64, src memsim.Region, srcOff int, dst core.TargetMem, dstOff, count, rank int, comm *runtime.Comm) (*Handle, error) {
	req, err := a.eng.AccumulateAxpy(scale,
		sub(src, srcOff, count*8), count, datatype.Float64,
		dst, dstOff, count, datatype.Float64,
		rank, comm, core.AttrAtomic)
	if err != nil {
		return nil, err
	}
	return &Handle{req: req}, nil
}

// Fence is ARMCI_Fence: blocks until all operations issued to rank are
// remotely complete.
func (a *ARMCI) Fence(comm *runtime.Comm, rank int) error {
	return a.eng.Complete(comm, rank)
}

// AllFence is ARMCI_AllFence: remote completion at every rank.
func (a *ARMCI) AllFence(comm *runtime.Comm) error {
	return a.eng.Complete(comm, core.AllRanks)
}

// Barrier is ARMCI_Barrier: AllFence plus a barrier.
func (a *ARMCI) Barrier(comm *runtime.Comm) error {
	if err := a.AllFence(comm); err != nil {
		return err
	}
	comm.Barrier()
	return nil
}

// sub narrows a region to [off, off+n).
func sub(r memsim.Region, off, n int) memsim.Region {
	return memsim.Region{Offset: r.Offset + off, Size: n}
}
