package armci

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"mpi3rma/internal/runtime"
)

func newWorld(t *testing.T, ranks int) *runtime.World {
	t.Helper()
	w := runtime.NewWorld(runtime.Config{Ranks: ranks})
	t.Cleanup(w.Close)
	return w
}

func TestMallocCollective(t *testing.T) {
	w := newWorld(t, 3)
	err := w.Run(func(p *runtime.Proc) {
		a := Attach(p)
		tms, region, err := a.Malloc(p.Comm(), 128)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if len(tms) != 3 {
			t.Errorf("got %d descriptors", len(tms))
		}
		for r, tm := range tms {
			if tm.Owner != r || tm.Size != 128 {
				t.Errorf("descriptor %d: owner=%d size=%d", r, tm.Owner, tm.Size)
			}
		}
		if region.Size != 128 {
			t.Errorf("local region size %d", region.Size)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		a := Attach(p)
		comm := p.Comm()
		tms, region, err := a.Malloc(comm, 64)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() == 1 {
			src := p.Alloc(32)
			p.WriteLocal(src, 0, bytes.Repeat([]byte{0xAA}, 32))
			if err := a.Put(src, 0, tms[0], 16, 32, 0, comm); err != nil {
				t.Errorf("put: %v", err)
			}
			// Blocking put is ordered but only locally complete; fence for
			// remote completion.
			if err := a.Fence(comm, 0); err != nil {
				t.Errorf("fence: %v", err)
			}
			dst := p.Alloc(32)
			if err := a.Get(dst, 0, tms[0], 16, 32, 0, comm); err != nil {
				t.Errorf("get: %v", err)
			}
			if got := p.ReadLocal(dst, 0, 32); !bytes.Equal(got, bytes.Repeat([]byte{0xAA}, 32)) {
				t.Error("get returned wrong data")
			}
		}
		a.Barrier(comm)
		if p.Rank() == 0 {
			got := p.Mem().Snapshot(region.Offset+16, 32)
			if !bytes.Equal(got, bytes.Repeat([]byte{0xAA}, 32)) {
				t.Error("put did not land")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingHandles(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		a := Attach(p)
		comm := p.Comm()
		tms, _, err := a.Malloc(comm, 256)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() == 1 {
			src := p.Alloc(256)
			var handles []*Handle
			for i := 0; i < 4; i++ {
				h, err := a.PutNB(src, 0, tms[0], 0, 64, 0, comm)
				if err != nil {
					t.Errorf("putnb: %v", err)
					return
				}
				handles = append(handles, h)
			}
			for _, h := range handles {
				h.Wait()
				if !h.Test() {
					t.Error("handle incomplete after wait")
				}
			}
			dst := p.Alloc(64)
			h, err := a.GetNB(dst, 0, tms[0], 0, 64, 0, comm)
			if err != nil {
				t.Errorf("getnb: %v", err)
				return
			}
			h.Wait()
			var nilH *Handle
			nilH.Wait() // nil handle wait must be a no-op
			if !nilH.Test() {
				t.Error("nil handle should test complete")
			}
		}
		a.Barrier(comm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAccDaxpy: ARMCI accumulate is x += a*y with serialized application;
// the concurrent total is exact.
func TestAccDaxpy(t *testing.T) {
	const origins = 3
	const iters = 10
	w := newWorld(t, origins+1)
	err := w.Run(func(p *runtime.Proc) {
		a := Attach(p)
		comm := p.Comm()
		tms, region, err := a.Malloc(comm, 8)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() != 0 {
			src := p.Alloc(8)
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, math.Float64bits(1.0))
			p.WriteLocal(src, 0, buf)
			for i := 0; i < iters; i++ {
				if err := a.Acc(2.0, src, 0, tms[0], 0, 1, 0, comm); err != nil {
					t.Errorf("acc: %v", err)
				}
			}
		}
		a.Barrier(comm)
		if p.Rank() == 0 {
			got := math.Float64frombits(binary.LittleEndian.Uint64(p.Mem().Snapshot(region.Offset, 8)))
			want := float64(origins * iters * 2)
			if got != want {
				t.Errorf("acc total = %v, want %v", got, want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPutSStrided2D: a 2-D strided put moves a 4x8-byte tile between
// differently-pitched buffers.
func TestPutSStrided2D(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		a := Attach(p)
		comm := p.Comm()
		tms, region, err := a.Malloc(comm, 256)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() == 1 {
			// Source: 4 rows of 8 bytes at pitch 16. Dest: pitch 32.
			src := p.Alloc(64)
			for row := 0; row < 4; row++ {
				p.WriteLocal(src, row*16, bytes.Repeat([]byte{byte(row + 1)}, 8))
			}
			err := a.PutS(src,
				StridedSpec{Off: 0, Strides: []int{16}},
				tms[0],
				StridedSpec{Off: 8, Strides: []int{32}},
				8, []int{4}, 0, comm)
			if err != nil {
				t.Errorf("puts: %v", err)
			}
			a.Fence(comm, 0)
		}
		a.Barrier(comm)
		if p.Rank() == 0 {
			for row := 0; row < 4; row++ {
				got := p.Mem().Snapshot(region.Offset+8+row*32, 8)
				if !bytes.Equal(got, bytes.Repeat([]byte{byte(row + 1)}, 8)) {
					t.Errorf("row %d = %v", row, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetSStrided(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		a := Attach(p)
		comm := p.Comm()
		tms, region, err := a.Malloc(comm, 128)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() == 0 {
			for row := 0; row < 3; row++ {
				p.WriteLocal(region, row*32, bytes.Repeat([]byte{byte(0x10 + row)}, 8))
			}
		}
		a.Barrier(comm)
		if p.Rank() == 1 {
			dst := p.Alloc(24)
			err := a.GetS(dst,
				StridedSpec{Off: 0, Strides: []int{8}},
				tms[0],
				StridedSpec{Off: 0, Strides: []int{32}},
				8, []int{3}, 0, comm)
			if err != nil {
				t.Errorf("gets: %v", err)
			}
			for row := 0; row < 3; row++ {
				got := p.ReadLocal(dst, row*8, 8)
				if !bytes.Equal(got, bytes.Repeat([]byte{byte(0x10 + row)}, 8)) {
					t.Errorf("row %d = %v", row, got)
				}
			}
		}
		a.Barrier(comm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccSStrided(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		a := Attach(p)
		comm := p.Comm()
		tms, region, err := a.Malloc(comm, 64)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() == 1 {
			src := p.Alloc(16)
			buf := make([]byte, 16)
			binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(1))
			binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(2))
			p.WriteLocal(src, 0, buf)
			// Two 8-byte blocks into target offsets 0 and 32.
			err := a.AccS(3.0, src,
				StridedSpec{Off: 0, Strides: []int{8}},
				tms[0],
				StridedSpec{Off: 0, Strides: []int{32}},
				8, []int{2}, 0, comm)
			if err != nil {
				t.Errorf("accs: %v", err)
			}
		}
		a.Barrier(comm)
		if p.Rank() == 0 {
			v0 := math.Float64frombits(binary.LittleEndian.Uint64(p.Mem().Snapshot(region.Offset, 8)))
			v1 := math.Float64frombits(binary.LittleEndian.Uint64(p.Mem().Snapshot(region.Offset+32, 8)))
			if v0 != 3 || v1 != 6 {
				t.Errorf("accs results %v, %v; want 3, 6", v0, v1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutVGetV(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		a := Attach(p)
		comm := p.Comm()
		tms, region, err := a.Malloc(comm, 64)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() == 1 {
			src := p.Alloc(12)
			p.WriteLocal(src, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
			err := a.PutV(src,
				[]Segment{{Off: 0, Len: 4}, {Off: 4, Len: 8}},
				tms[0],
				[]Segment{{Off: 0, Len: 6}, {Off: 20, Len: 6}},
				0, comm)
			if err != nil {
				t.Errorf("putv: %v", err)
			}
			a.Fence(comm, 0)
			dst := p.Alloc(12)
			err = a.GetV(dst,
				[]Segment{{Off: 0, Len: 12}},
				tms[0],
				[]Segment{{Off: 0, Len: 6}, {Off: 20, Len: 6}},
				0, comm)
			if err != nil {
				t.Errorf("getv: %v", err)
			}
			got := p.ReadLocal(dst, 0, 12)
			if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}) {
				t.Errorf("getv = %v", got)
			}
		}
		a.Barrier(comm)
		if p.Rank() == 0 {
			got := p.Mem().Snapshot(region.Offset, 6)
			if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6}) {
				t.Errorf("first segment %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutVLengthMismatch(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		a := Attach(p)
		comm := p.Comm()
		tms, _, err := a.Malloc(comm, 64)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() == 1 {
			src := p.Alloc(8)
			err := a.PutV(src, []Segment{{Off: 0, Len: 8}}, tms[0], []Segment{{Off: 0, Len: 4}}, 0, comm)
			if err == nil {
				t.Error("length mismatch accepted")
			}
		}
		a.Barrier(comm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStridedValidation(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		a := Attach(p)
		comm := p.Comm()
		tms, _, err := a.Malloc(comm, 64)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() == 1 {
			src := p.Alloc(64)
			if err := a.PutS(src, StridedSpec{Strides: []int{8}}, tms[0], StridedSpec{Strides: []int{8, 8}}, 8, []int{2}, 0, comm); err == nil {
				t.Error("stride/count arity mismatch accepted")
			}
			if err := a.AccS(1, src, StridedSpec{Strides: []int{8}}, tms[0], StridedSpec{Strides: []int{8}}, 5, []int{2}, 0, comm); err == nil {
				t.Error("non-float64 accumulate block accepted")
			}
		}
		a.Barrier(comm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAccNB: the nonblocking accumulate is still serialized and exact.
func TestAccNB(t *testing.T) {
	w := newWorld(t, 3)
	const iters = 10
	err := w.Run(func(p *runtime.Proc) {
		a := Attach(p)
		comm := p.Comm()
		tms, region, err := a.Malloc(comm, 8)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() != 0 {
			src := p.Alloc(8)
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, math.Float64bits(1.0))
			p.WriteLocal(src, 0, buf)
			var hs []*Handle
			for i := 0; i < iters; i++ {
				h, err := a.AccNB(1.0, src, 0, tms[0], 0, 1, 0, comm)
				if err != nil {
					t.Errorf("accnb: %v", err)
					return
				}
				hs = append(hs, h)
			}
			for _, h := range hs {
				h.Wait()
			}
		}
		a.Barrier(comm)
		if p.Rank() == 0 {
			got := math.Float64frombits(binary.LittleEndian.Uint64(p.Mem().Snapshot(region.Offset, 8)))
			if got != float64(2*iters) {
				t.Errorf("total = %v, want %v", got, 2*iters)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
