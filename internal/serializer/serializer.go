// Package serializer provides the target-side mechanisms that enforce the
// strawman RMA *atomicity* attribute.
//
// The paper (Sections III-B1, V, V-A) identifies three ways a target can
// serialize contending atomic updates when the network itself has no
// atomic sections:
//
//   - A communication thread (implicit or explicit) that applies incoming
//     operations one at a time — "serialized handling of incoming messages
//     without the requirement of locks". Cheap. (Figure 2: "Atomicity +
//     thread serializer".)
//   - A coarse-grain, MPI-process-level lock the origin must hold across
//     the update — required on systems like Catamount/Cray XT where user
//     threads are unavailable and the network library has no active
//     messages. Expensive. (Figure 2: "Atomicity + coarse grain lock
//     serializer".) The lock *state machine* lives here; the lock
//     *protocol* (request/grant/release messages) lives in internal/core.
//   - Relying on MPI progress: updates are queued and applied only when
//     the target next enters the library ("with associated loss of
//     efficiency").
//
// Each mechanism carries a virtual-time lane so serialized applies also
// serialize in modelled time.
package serializer

import (
	"fmt"
	"sync"

	"mpi3rma/internal/stats"
	"mpi3rma/internal/vtime"
)

// Mechanism selects how a target enforces the atomicity attribute.
type Mechanism int

const (
	// MechThread applies atomic operations on a dedicated handler
	// goroutine (the communication-thread serializer).
	MechThread Mechanism = iota
	// MechCoarseLock requires origins to hold a process-level lock across
	// the whole operation.
	MechCoarseLock
	// MechProgress queues atomic operations until the target calls into
	// the library (Progress), modelling systems with neither threads nor
	// active messages.
	MechProgress
)

// String returns the mechanism's name as used in figures.
func (m Mechanism) String() string {
	switch m {
	case MechThread:
		return "thread"
	case MechCoarseLock:
		return "coarse-lock"
	case MechProgress:
		return "progress"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Task is one deferred atomic update. ready is the virtual time its inputs
// are available (message delivery time); cost is the modelled duration of
// the memory update; fn performs the update and is passed the virtual time
// at which the update completed.
type Task struct {
	Ready vtime.Time
	Cost  vtime.Duration
	Fn    func(end vtime.Time)
}

// ApplyQueue is the communication-thread serializer: a goroutine applying
// tasks strictly in submission order on a single virtual-time lane.
type ApplyQueue struct {
	ch   chan Task
	lane vtime.WorkLane
	done chan struct{}

	// Applied counts tasks executed.
	Applied stats.Counter
}

// DefaultApplyQueueDepth is the submission queue capacity.
const DefaultApplyQueueDepth = 4096

// NewApplyQueue starts the serializer goroutine.
func NewApplyQueue() *ApplyQueue {
	q := &ApplyQueue{
		ch:   make(chan Task, DefaultApplyQueueDepth),
		done: make(chan struct{}),
	}
	go q.run()
	return q
}

func (q *ApplyQueue) run() {
	defer close(q.done)
	for t := range q.ch {
		end := q.lane.Complete(t.Ready, t.Cost)
		t.Fn(end)
		q.Applied.Inc()
	}
}

// Submit enqueues a task. It blocks only if the queue is full
// (back-pressure from a badly overloaded serializer).
func (q *ApplyQueue) Submit(t Task) { q.ch <- t }

// Lane exposes the serializer's virtual-time lane.
func (q *ApplyQueue) Lane() *vtime.WorkLane { return &q.lane }

// Close stops the serializer after draining queued tasks.
func (q *ApplyQueue) Close() {
	close(q.ch)
	<-q.done
}

// ProgressQueue is the progress-dependent serializer: tasks accumulate
// until the target calls Progress.
type ProgressQueue struct {
	mu    sync.Mutex
	tasks []Task
	lane  vtime.WorkLane

	// quantum models how often the target enters the library: a task
	// ready at virtual time r is applied no earlier than the next poll
	// boundary ceil(r/quantum)*quantum. Zero means the target is always
	// in the library (apply at ready).
	quantum vtime.Duration

	// Applied counts tasks executed; Deferred counts submissions.
	Applied  stats.Counter
	Deferred stats.Counter
}

// NewProgressQueue returns an empty queue whose target polls every
// quantum of virtual time (0 = continuously).
func NewProgressQueue(quantum vtime.Duration) *ProgressQueue {
	return &ProgressQueue{quantum: quantum}
}

// quantize rounds t up to the next poll boundary.
func (q *ProgressQueue) quantize(t vtime.Time) vtime.Time {
	if q.quantum <= 0 {
		return t
	}
	qn := vtime.Time(q.quantum)
	return (t + qn - 1) / qn * qn
}

// Submit queues a task for the target's next Progress call.
func (q *ProgressQueue) Submit(t Task) {
	q.mu.Lock()
	q.tasks = append(q.tasks, t)
	q.mu.Unlock()
	q.Deferred.Inc()
}

// Progress applies every queued task in submission order. now is the
// target's current virtual time: a task cannot complete before the target
// actually entered the library, which is precisely the inefficiency of
// this mechanism. It returns the number of tasks applied.
func (q *ProgressQueue) Progress(now vtime.Time) int {
	q.mu.Lock()
	tasks := q.tasks
	q.tasks = nil
	q.mu.Unlock()
	for _, t := range tasks {
		ready := vtime.Later(q.quantize(t.Ready), now)
		end := q.lane.Complete(ready, t.Cost)
		t.Fn(end)
		q.Applied.Inc()
	}
	return len(tasks)
}

// Pending returns the number of queued tasks.
func (q *ProgressQueue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks)
}

// LockState is the process-level lock state machine for the coarse-grain
// serializer. The owning rank's NIC agent drives it from protocol
// handlers; grants are delivered through the callback passed to Acquire.
// All methods must be called from a single goroutine (the NIC agent).
type LockState struct {
	held    bool
	holder  int
	lane    vtime.Clock
	waiters []lockWaiter

	// Grants counts lock acquisitions; Contended counts acquisitions that
	// had to wait.
	Grants    stats.Counter
	Contended stats.Counter
}

type lockWaiter struct {
	origin int
	at     vtime.Time
	grant  func(origin int, at vtime.Time)
}

// NewLockState returns an unheld lock.
func NewLockState() *LockState { return &LockState{holder: -1} }

// Acquire requests the lock for origin at virtual time at. If the lock is
// free, grant is invoked immediately (synchronously); otherwise the
// request queues and grant is invoked from a later Release. The grant
// callback receives the virtual time at which the lock was granted.
func (l *LockState) Acquire(origin int, at vtime.Time, grant func(origin int, at vtime.Time)) {
	if !l.held {
		l.held = true
		l.holder = origin
		l.Grants.Inc()
		grantAt := l.lane.AdvanceTo(at)
		grant(origin, grantAt)
		return
	}
	l.Contended.Inc()
	l.waiters = append(l.waiters, lockWaiter{origin: origin, at: at, grant: grant})
}

// Release frees the lock at virtual time at and hands it to the next
// waiter, if any. origin must be the current holder.
func (l *LockState) Release(origin int, at vtime.Time) error {
	if !l.held || l.holder != origin {
		return fmt.Errorf("serializer: release by rank %d but lock held=%v holder=%d", origin, l.held, l.holder)
	}
	releaseAt := l.lane.AdvanceTo(at)
	if len(l.waiters) == 0 {
		l.held = false
		l.holder = -1
		return nil
	}
	w := l.waiters[0]
	l.waiters = l.waiters[1:]
	l.holder = w.origin
	l.Grants.Inc()
	grantAt := l.lane.AdvanceTo(vtime.Later(releaseAt, w.at))
	w.grant(w.origin, grantAt)
	return nil
}

// Holder returns the current holder's rank, or -1.
func (l *LockState) Holder() int {
	if !l.held {
		return -1
	}
	return l.holder
}

// QueueLen returns the number of waiting origins.
func (l *LockState) QueueLen() int { return len(l.waiters) }
