package serializer

import (
	"sync"
	"sync/atomic"
	"testing"

	"mpi3rma/internal/vtime"
)

func TestApplyQueueOrderAndTimes(t *testing.T) {
	q := NewApplyQueue()
	defer q.Close()
	var mu sync.Mutex
	var order []int
	var ends []vtime.Time
	done := make(chan struct{})
	for i := 0; i < 10; i++ {
		i := i
		last := i == 9
		q.Submit(Task{Ready: 0, Cost: 5, Fn: func(end vtime.Time) {
			mu.Lock()
			order = append(order, i)
			ends = append(ends, end)
			mu.Unlock()
			if last {
				close(done)
			}
		}})
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1]+1 {
			t.Fatalf("tasks ran out of submission order: %v", order)
		}
		if ends[i] <= ends[i-1] {
			t.Fatalf("serialized ends not increasing: %v", ends)
		}
	}
	if ends[len(ends)-1] != 50 {
		t.Fatalf("last end = %d, want 50 (10 tasks x 5)", ends[len(ends)-1])
	}
	if q.Applied.Value() != 10 {
		t.Fatalf("applied = %d", q.Applied.Value())
	}
}

func TestApplyQueueConcurrentSubmitters(t *testing.T) {
	q := NewApplyQueue()
	var count atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				q.Submit(Task{Ready: 0, Cost: 1, Fn: func(vtime.Time) { count.Add(1) }})
			}
		}()
	}
	wg.Wait()
	q.Close() // drains before returning
	if count.Load() != 400 {
		t.Fatalf("applied %d of 400 tasks", count.Load())
	}
}

func TestProgressQueueDefersUntilProgress(t *testing.T) {
	q := NewProgressQueue(0)
	var ran atomic.Int64
	for i := 0; i < 5; i++ {
		q.Submit(Task{Ready: 10, Cost: 2, Fn: func(vtime.Time) { ran.Add(1) }})
	}
	if ran.Load() != 0 {
		t.Fatal("tasks ran before Progress")
	}
	if q.Pending() != 5 {
		t.Fatalf("pending = %d", q.Pending())
	}
	n := q.Progress(1000)
	if n != 5 || ran.Load() != 5 {
		t.Fatalf("Progress applied %d, ran %d", n, ran.Load())
	}
	if q.Deferred.Value() != 5 || q.Applied.Value() != 5 {
		t.Fatal("counters wrong")
	}
}

// TestProgressQueueChargesTargetEntry: a task cannot complete before the
// target called Progress — the mechanism's defining inefficiency.
func TestProgressQueueChargesTargetEntry(t *testing.T) {
	q := NewProgressQueue(0)
	var end vtime.Time
	q.Submit(Task{Ready: 10, Cost: 2, Fn: func(e vtime.Time) { end = e }})
	q.Progress(500)
	if end < 502 {
		t.Fatalf("end = %d; must be at least Progress time 500 + cost 2", end)
	}
}

func TestLockStateGrantImmediate(t *testing.T) {
	l := NewLockState()
	var grantedTo int
	var grantedAt vtime.Time
	l.Acquire(3, 100, func(o int, at vtime.Time) { grantedTo, grantedAt = o, at })
	if grantedTo != 3 || grantedAt < 100 {
		t.Fatalf("grant (%d,%d)", grantedTo, grantedAt)
	}
	if l.Holder() != 3 {
		t.Fatalf("holder = %d", l.Holder())
	}
}

func TestLockStateFIFO(t *testing.T) {
	l := NewLockState()
	var grants []int
	grab := func(o int, at vtime.Time) {
		l.Acquire(o, at, func(o int, _ vtime.Time) { grants = append(grants, o) })
	}
	grab(1, 10)
	grab(2, 11)
	grab(3, 12)
	if l.QueueLen() != 2 {
		t.Fatalf("queue = %d", l.QueueLen())
	}
	if err := l.Release(1, 20); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(2, 30); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(3, 40); err != nil {
		t.Fatal(err)
	}
	if len(grants) != 3 || grants[0] != 1 || grants[1] != 2 || grants[2] != 3 {
		t.Fatalf("grant order %v", grants)
	}
	if l.Holder() != -1 {
		t.Fatal("lock should be free")
	}
	if l.Grants.Value() != 3 || l.Contended.Value() != 2 {
		t.Fatalf("grants=%d contended=%d", l.Grants.Value(), l.Contended.Value())
	}
}

func TestLockStateGrantTimesSerialize(t *testing.T) {
	l := NewLockState()
	var at2 vtime.Time
	l.Acquire(1, 10, func(int, vtime.Time) {})
	l.Acquire(2, 11, func(_ int, at vtime.Time) { at2 = at })
	if err := l.Release(1, 50); err != nil {
		t.Fatal(err)
	}
	if at2 < 50 {
		t.Fatalf("second grant at %d, before the first release at 50", at2)
	}
}

func TestLockStateBadRelease(t *testing.T) {
	l := NewLockState()
	if err := l.Release(1, 0); err == nil {
		t.Fatal("release of unheld lock should fail")
	}
	l.Acquire(1, 0, func(int, vtime.Time) {})
	if err := l.Release(2, 0); err == nil {
		t.Fatal("release by non-holder should fail")
	}
}

func TestMechanismString(t *testing.T) {
	if MechThread.String() != "thread" || MechCoarseLock.String() != "coarse-lock" || MechProgress.String() != "progress" {
		t.Error("Mechanism.String is wrong")
	}
}

// TestProgressQueueQuantization: a polling target applies work only at
// poll boundaries of virtual time.
func TestProgressQueueQuantization(t *testing.T) {
	q := NewProgressQueue(100)
	var ends []vtime.Time
	q.Submit(Task{Ready: 1, Cost: 2, Fn: func(e vtime.Time) { ends = append(ends, e) }})
	q.Submit(Task{Ready: 100, Cost: 2, Fn: func(e vtime.Time) { ends = append(ends, e) }})
	q.Submit(Task{Ready: 101, Cost: 2, Fn: func(e vtime.Time) { ends = append(ends, e) }})
	q.Progress(0)
	if len(ends) != 3 {
		t.Fatalf("applied %d tasks", len(ends))
	}
	if ends[0] != 102 { // ready 1 -> boundary 100, +2
		t.Errorf("end[0] = %d, want 102", ends[0])
	}
	if ends[1] != 102 { // ready 100 is already a boundary; the WorkLane
		// bound (max(ready+cost, cumulative work)) gives 102
		t.Errorf("end[1] = %d, want 102", ends[1])
	}
	if ends[2] != 202 { // ready 101 -> boundary 200, +2
		t.Errorf("end[2] = %d, want 202", ends[2])
	}
}
