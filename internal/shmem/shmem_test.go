package shmem

import (
	"bytes"
	"testing"

	"mpi3rma/internal/runtime"
)

func newWorld(t *testing.T, ranks int) *runtime.World {
	t.Helper()
	w := runtime.NewWorld(runtime.Config{Ranks: ranks})
	t.Cleanup(w.Close)
	return w
}

func TestSymmetricMalloc(t *testing.T) {
	w := newWorld(t, 3)
	err := w.Run(func(p *runtime.Proc) {
		s := Attach(p)
		sym, err := s.Malloc(p.Comm(), 64)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if sym.Size() != 64 || sym.Local.Size != 64 {
			t.Errorf("sym size %d local %d", sym.Size(), sym.Local.Size)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAsymmetricMallocRejected(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		s := Attach(p)
		size := 64
		if p.Rank() == 1 {
			size = 128
		}
		if _, err := s.Malloc(p.Comm(), size); err == nil {
			t.Error("asymmetric malloc accepted")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutQuietGet(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		s := Attach(p)
		comm := p.Comm()
		sym, err := s.Malloc(comm, 32)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() == 0 {
			src := p.Alloc(32)
			p.WriteLocal(src, 0, bytes.Repeat([]byte{0xBE}, 32))
			if err := s.Put(sym, 0, src, 0, 32, 1); err != nil {
				t.Errorf("put: %v", err)
			}
			if err := s.Quiet(comm); err != nil {
				t.Errorf("quiet: %v", err)
			}
		}
		s.BarrierAll(comm)
		if p.Rank() == 1 {
			got := p.Mem().Snapshot(sym.Local.Offset, 32)
			if !bytes.Equal(got, bytes.Repeat([]byte{0xBE}, 32)) {
				t.Error("put did not land before quiet returned")
			}
			// Get it back from PE 0's (untouched, zero) memory.
			dst := p.Alloc(32)
			if err := s.Get(sym, 0, dst, 0, 32, 0); err != nil {
				t.Errorf("get: %v", err)
			}
			if got := p.ReadLocal(dst, 0, 32); !bytes.Equal(got, make([]byte, 32)) {
				t.Error("get of PE 0's zero memory returned nonzero")
			}
		}
		s.BarrierAll(comm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFenceOrdersPuts: the shmem_fence idiom — flag-after-data — is safe
// even on an unordered network.
func TestFenceOrdersPuts(t *testing.T) {
	w := runtime.NewWorld(runtime.Config{Ranks: 2, UnorderedNet: true, Seed: 5})
	t.Cleanup(w.Close)
	err := w.Run(func(p *runtime.Proc) {
		s := Attach(p)
		comm := p.Comm()
		sym, err := s.Malloc(comm, 16) // [0,8): data, [8,16): flag
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() == 0 {
			for round := int64(1); round <= 30; round++ {
				if err := s.PutInt64(sym, 0, round*100, 1); err != nil {
					t.Errorf("data put: %v", err)
				}
				if err := s.Fence(comm); err != nil {
					t.Errorf("fence: %v", err)
				}
				if err := s.PutInt64(sym, 8, round, 1); err != nil {
					t.Errorf("flag put: %v", err)
				}
				if err := s.Quiet(comm); err != nil {
					t.Errorf("quiet: %v", err)
				}
			}
			p.Barrier()
			return
		}
		// PE 1 spins on the flag; whenever it observes round r, the data
		// must already be r*100 (fence guarantees data-before-flag).
		seen := int64(0)
		for seen < 30 {
			flag, err := s.GetInt64(sym, 8, 1) // our own memory via loopback
			if err != nil {
				t.Errorf("flag get: %v", err)
				return
			}
			if flag > seen {
				data, err := s.GetInt64(sym, 0, 1)
				if err != nil {
					t.Errorf("data get: %v", err)
					return
				}
				if data < flag*100 {
					t.Errorf("flag %d visible but data %d (want >= %d): fence failed", flag, data, flag*100)
					return
				}
				seen = flag
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAtomics(t *testing.T) {
	w := newWorld(t, 4)
	err := w.Run(func(p *runtime.Proc) {
		s := Attach(p)
		comm := p.Comm()
		sym, err := s.Malloc(comm, 8)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		for i := 0; i < 10; i++ {
			if _, err := s.FetchAdd(sym, 0, 1, 0); err != nil {
				t.Errorf("fadd: %v", err)
			}
		}
		s.BarrierAll(comm)
		if p.Rank() == 0 {
			v, err := s.GetInt64(sym, 0, 0)
			if err != nil {
				t.Errorf("get: %v", err)
			}
			if v != 40 {
				t.Errorf("counter = %d, want 40", v)
			}
		}
		p.Barrier() // verification before anyone's CAS mutates the counter
		// CAS: exactly one winner swaps 40 -> 99.
		old, err := s.CompareSwap(sym, 0, 40, 99, 0)
		if err != nil {
			t.Errorf("cas: %v", err)
		}
		wins := int64(0)
		if old == 40 {
			wins = 1
		}
		total := comm.AllreduceInt64(runtime.OpSum, wins)
		if total != 1 {
			t.Errorf("%d CAS winners, want 1", total)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutGetInt64Roundtrip(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		s := Attach(p)
		comm := p.Comm()
		sym, err := s.Malloc(comm, 8)
		if err != nil {
			t.Errorf("malloc: %v", err)
			return
		}
		if p.Rank() == 0 {
			if err := s.PutInt64(sym, 0, -123456789, 1); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		s.BarrierAll(comm)
		v, err := s.GetInt64(sym, 0, 1)
		if err != nil {
			t.Errorf("get: %v", err)
		}
		if v != -123456789 {
			t.Errorf("value = %d", v)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
