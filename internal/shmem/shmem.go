// Package shmem implements a SHMEM-like library (paper Section II:
// "Library-based RMA approaches, such as SHMEM and Global Arrays, have
// been used by a number of important applications") on top of the
// strawman engine.
//
// The mapping is the point: SHMEM's memory and synchronization model is a
// strict subset of the strawman's attribute space, and the paper derives
// MPI_RMA_order directly from shmem_fence ("the users may benefit from an
// operation that orders among sets of RMA operations (similar to
// shmem_fence)"):
//
//	shmem_put        = Put(..., AttrBlocking)        local completion only
//	shmem_get        = Get(..., AttrBlocking)
//	shmem_fence      = Order(comm, AllRanks)          ordering, not completion
//	shmem_quiet      = Complete(comm, AllRanks)       remote completion
//	shmem_barrier_all= quiet + barrier
//	symmetric heap   = collectively exposed target_mem of equal size
//	atomics          = FetchAdd / CompareSwap
package shmem

import (
	"fmt"
	"sync"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
)

// SHMEM is one rank's library state.
type SHMEM struct {
	proc *runtime.Proc
	eng  *core.Engine
	// scratch is a reusable bounce buffer for the scalar put/get calls
	// (the rank memory allocator is a bump allocator; per-call allocation
	// would leak).
	mu      sync.Mutex
	scratch memsim.Region
}

// extKey is the Proc extension slot.
const extKey = "shmem"

// Attach returns the rank's SHMEM layer, creating it on first use.
func Attach(p *runtime.Proc) *SHMEM {
	return p.Ext(extKey, func() any {
		return &SHMEM{
			proc:    p,
			eng:     core.Attach(p, core.Options{}),
			scratch: p.Alloc(8),
		}
	}).(*SHMEM)
}

// Engine exposes the underlying strawman engine.
func (s *SHMEM) Engine() *core.Engine { return s.eng }

// Sym is a symmetric allocation: the same size exists on every member of
// the communicator (SHMEM's symmetric heap invariant), so a single handle
// plus a PE number addresses remote memory.
type Sym struct {
	comm *runtime.Comm
	tms  []core.TargetMem
	// Local is the caller's own slice of the symmetric allocation.
	Local memsim.Region
	size  int
}

// Size returns the symmetric allocation's per-PE size in bytes.
func (s *Sym) Size() int { return s.size }

// Malloc is shmem_malloc: collective over comm, same size everywhere.
func (s *SHMEM) Malloc(comm *runtime.Comm, size int) (*Sym, error) {
	sizes := comm.AllgatherInt64(int64(size))
	for pe, sz := range sizes {
		if int(sz) != size {
			return nil, fmt.Errorf("shmem: asymmetric allocation: PE %d asked for %d bytes, this PE for %d", pe, sz, size)
		}
	}
	tms, region, err := s.eng.ExposeCollective(comm, size)
	if err != nil {
		return nil, err
	}
	return &Sym{comm: comm, tms: tms, Local: region, size: size}, nil
}

// Put is shmem_putmem: copy n bytes from the local region src (at srcOff)
// into PE pe's symmetric memory at off. Returns when the local buffer is
// reusable; remote completion requires Quiet (or Fence for ordering).
func (s *SHMEM) Put(sym *Sym, off int, src memsim.Region, srcOff, n, pe int) error {
	sub := memsim.Region{Offset: src.Offset + srcOff, Size: n}
	_, err := s.eng.Put(sub, n, datatype.Byte, sym.tms[pe], off, n, datatype.Byte, pe, sym.comm, core.AttrBlocking)
	return err
}

// Get is shmem_getmem: copy n bytes from PE pe's symmetric memory at off
// into dst (at dstOff). Blocking: the data is local on return.
func (s *SHMEM) Get(sym *Sym, off int, dst memsim.Region, dstOff, n, pe int) error {
	sub := memsim.Region{Offset: dst.Offset + dstOff, Size: n}
	_, err := s.eng.Get(sub, n, datatype.Byte, sym.tms[pe], off, n, datatype.Byte, pe, sym.comm, core.AttrBlocking)
	return err
}

// Fence is shmem_fence: operations issued after it are applied after
// operations issued before it, per target — ordering without completion,
// exactly MPI_RMA_order(comm, ALL_RANKS).
func (s *SHMEM) Fence(comm *runtime.Comm) error {
	return s.eng.Order(comm, core.AllRanks)
}

// Quiet is shmem_quiet: all previously issued operations are complete at
// their targets — MPI_RMA_complete(comm, ALL_RANKS).
func (s *SHMEM) Quiet(comm *runtime.Comm) error {
	return s.eng.Complete(comm, core.AllRanks)
}

// BarrierAll is shmem_barrier_all: quiet plus a barrier.
func (s *SHMEM) BarrierAll(comm *runtime.Comm) error {
	if err := s.Quiet(comm); err != nil {
		return err
	}
	comm.Barrier()
	return nil
}

// FetchAdd is shmem_int64_atomic_fetch_add on a symmetric int64.
func (s *SHMEM) FetchAdd(sym *Sym, off int, delta int64, pe int) (int64, error) {
	return s.eng.FetchAdd(sym.tms[pe], off, delta, pe, sym.comm, core.AttrNone)
}

// CompareSwap is shmem_int64_atomic_compare_swap on a symmetric int64.
func (s *SHMEM) CompareSwap(sym *Sym, off int, compare, swap int64, pe int) (int64, error) {
	return s.eng.CompareSwap(sym.tms[pe], off, compare, swap, pe, sym.comm, core.AttrNone)
}

// PutInt64 stores one int64 into PE pe's symmetric memory (shmem_long_p).
func (s *SHMEM) PutInt64(sym *Sym, off int, v int64, pe int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.proc.WriteLocal(s.scratch, 0, encodeInt64(v, s.proc.ByteOrder()))
	_, err := s.eng.Put(s.scratch, 1, datatype.Int64, sym.tms[pe], off, 1, datatype.Int64, pe, sym.comm, core.AttrBlocking)
	return err
}

// GetInt64 fetches one int64 from PE pe's symmetric memory (shmem_long_g).
func (s *SHMEM) GetInt64(sym *Sym, off int, pe int) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.eng.Get(s.scratch, 1, datatype.Int64, sym.tms[pe], off, 1, datatype.Int64, pe, sym.comm, core.AttrBlocking); err != nil {
		return 0, err
	}
	return decodeInt64(s.proc.ReadLocal(s.scratch, 0, 8), s.proc.ByteOrder()), nil
}

// encodeInt64 renders v in the rank's memory byte order.
func encodeInt64(v int64, order datatype.ByteOrder) []byte {
	b := make([]byte, 8)
	if order == datatype.BigEndian {
		for i := 0; i < 8; i++ {
			b[7-i] = byte(v >> (8 * i))
		}
		return b
	}
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// decodeInt64 reads a rank-order int64.
func decodeInt64(b []byte, order datatype.ByteOrder) int64 {
	var v int64
	if order == datatype.BigEndian {
		for i := 0; i < 8; i++ {
			v = v<<8 | int64(b[i])
		}
		return v
	}
	for i := 7; i >= 0; i-- {
		v = v<<8 | int64(b[i])
	}
	return v
}
