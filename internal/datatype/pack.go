package datatype

import (
	"fmt"
)

// PackedSize returns the number of wire bytes count instances of t occupy.
func PackedSize(count int, t Type) int { return count * t.Size() }

// ExtentOf returns the number of buffer bytes count instances of t span.
func ExtentOf(count int, t Type) int {
	return count * t.Extent()
}

// Pack gathers count instances of t from src (laid out per the rank's
// order) into a fresh wire buffer in canonical (little-endian, dense)
// format and returns it.
func Pack(src []byte, count int, t Type, order ByteOrder) ([]byte, error) {
	dst := make([]byte, PackedSize(count, t))
	if err := PackInto(dst, src, count, t, order); err != nil {
		return nil, err
	}
	return dst, nil
}

// PackInto gathers count instances of t from src into dst in canonical
// wire format. dst must be exactly PackedSize(count, t) bytes.
func PackInto(dst, src []byte, count int, t Type, order ByteOrder) error {
	if len(dst) != PackedSize(count, t) {
		return fmt.Errorf("datatype: pack buffer is %d bytes, need %d", len(dst), PackedSize(count, t))
	}
	if need := ExtentOf(count, t); len(src) < need {
		return fmt.Errorf("datatype: source buffer is %d bytes, type %s x%d spans %d", len(src), t.Name(), count, need)
	}
	pos := 0
	ext := t.Extent()
	swap := order == BigEndian
	for i := 0; i < count; i++ {
		at := i * ext
		t.walk(func(off, n int, k Kind) {
			w := k.Width()
			seg := src[at+off : at+off+n*w]
			out := dst[pos : pos+n*w]
			if swap && w > 1 {
				swapCopy(out, seg, w)
			} else {
				copy(out, seg)
			}
			pos += n * w
		})
	}
	if pos != len(dst) {
		return fmt.Errorf("datatype: internal error: packed %d of %d bytes", pos, len(dst))
	}
	return nil
}

// Unpack scatters wire (canonical format) into count instances of t in dst,
// converting elements to the rank's order.
func Unpack(dst []byte, wire []byte, count int, t Type, order ByteOrder) error {
	if len(wire) != PackedSize(count, t) {
		return fmt.Errorf("datatype: wire buffer is %d bytes, need %d", len(wire), PackedSize(count, t))
	}
	if need := ExtentOf(count, t); len(dst) < need {
		return fmt.Errorf("datatype: destination buffer is %d bytes, type %s x%d spans %d", len(dst), t.Name(), count, need)
	}
	pos := 0
	ext := t.Extent()
	swap := order == BigEndian
	for i := 0; i < count; i++ {
		at := i * ext
		t.walk(func(off, n int, k Kind) {
			w := k.Width()
			seg := wire[pos : pos+n*w]
			out := dst[at+off : at+off+n*w]
			if swap && w > 1 {
				swapCopy(out, seg, w)
			} else {
				copy(out, seg)
			}
			pos += n * w
		})
	}
	if pos != len(wire) {
		return fmt.Errorf("datatype: internal error: unpacked %d of %d bytes", pos, len(wire))
	}
	return nil
}

// swapCopy copies src to dst reversing the byte order of each w-wide
// element. dst and src must not overlap.
func swapCopy(dst, src []byte, w int) {
	for i := 0; i < len(src); i += w {
		for j := 0; j < w; j++ {
			dst[i+j] = src[i+w-1-j]
		}
	}
}

// Signature returns the flattened element-kind sequence of count instances
// of t, run-length encoded as (kind, n) pairs. Two transfers are
// type-compatible when their signatures are equal — the MPI matching rule.
type Signature []sigRun

type sigRun struct {
	Kind Kind
	N    int
}

// SignatureOf computes the signature of count instances of t.
func SignatureOf(count int, t Type) Signature {
	var sig Signature
	add := func(k Kind, n int) {
		if n == 0 {
			return
		}
		if len(sig) > 0 && sig[len(sig)-1].Kind == k {
			sig[len(sig)-1].N += n
			return
		}
		sig = append(sig, sigRun{k, n})
	}
	for i := 0; i < count; i++ {
		t.walk(func(off, n int, k Kind) { add(k, n) })
	}
	return sig
}

// Equal reports whether two signatures describe the same element sequence.
func (s Signature) Equal(o Signature) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Compatible reports whether a transfer of ocount instances of ot matches
// tcount instances of tt — identical flattened element sequences.
func Compatible(ocount int, ot Type, tcount int, tt Type) bool {
	return SignatureOf(ocount, ot).Equal(SignatureOf(tcount, tt))
}
