package datatype

import (
	"testing"
)

// FuzzDecode hardens the datatype wire codec against malformed input: the
// decoder must never panic and, when it succeeds, the result must
// re-encode and re-decode to the same signature (the type arrives from
// the network in every core RMA message, so this is attacker-adjacent
// surface in a real implementation).
func FuzzDecode(f *testing.F) {
	// Seed corpus: every constructor's encoding plus some junk.
	f.Add(Encode(Byte))
	f.Add(Encode(Int64))
	f.Add(Encode(Contiguous(4, Float64)))
	f.Add(Encode(Vector(3, 2, 4, Int32)))
	f.Add(Encode(Indexed([]int{1, 2}, []int{0, 5}, Byte)))
	f.Add(Encode(Struct([]Field{{Offset: 0, Count: 2, Type: Int32}, {Offset: 16, Count: 1, Type: Float64}})))
	f.Add([]byte{})
	f.Add([]byte{tagVector, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{tagStruct, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		dt, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		// A successfully decoded type must be internally consistent.
		// (Size may exceed Extent: struct and indexed type maps may
		// visit overlapping bytes, as MPI type maps may.)
		if dt.Size() < 0 || dt.Extent() < 0 {
			t.Fatalf("inconsistent type %s: size=%d extent=%d", dt.Name(), dt.Size(), dt.Extent())
		}
		// Walk must cover exactly Size bytes and stay within Extent.
		var covered int
		Walk(dt, func(off, n int, k Kind) {
			covered += n * k.Width()
			if off < 0 || off+n*k.Width() > dt.Extent() {
				t.Fatalf("segment [%d,%d) escapes extent %d", off, off+n*k.Width(), dt.Extent())
			}
		})
		if covered != dt.Size() {
			t.Fatalf("walk covered %d bytes, size is %d", covered, dt.Size())
		}
		// Round trip through the codec preserves the signature.
		dt2, _, err := Decode(Encode(dt))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !SignatureOf(1, dt).Equal(SignatureOf(1, dt2)) {
			t.Fatal("codec round trip changed the signature")
		}
		// Pack/unpack of a decoded type must work on a right-sized buffer.
		if dt.Extent() > 0 && dt.Extent() < 1<<16 {
			src := make([]byte, dt.Extent())
			wire, err := Pack(src, 1, dt, LittleEndian)
			if err != nil {
				t.Fatalf("pack: %v", err)
			}
			if err := Unpack(src, wire, 1, dt, LittleEndian); err != nil {
				t.Fatalf("unpack: %v", err)
			}
		}
	})
}
