package datatype

import (
	"encoding/binary"
	"fmt"
)

// Wire codec for datatypes. RMA implementations that honour a
// target-side datatype must ship the type description with the request
// (the origin names the target layout; the target has never seen it).
// Encode/Decode serialize the type tree compactly; the description rides
// in the RMA message header area of the core protocol.

// Type tree tags.
const (
	tagPrimitive byte = 1
	tagContig    byte = 2
	tagVector    byte = 3
	tagIndexed   byte = 4
	tagStruct    byte = 5
)

// Decode-side sanity bounds. The encoding arrives from the network, so a
// malicious or corrupt description must not be able to allocate unbounded
// memory or overflow extent arithmetic (a fuzzer found exactly that: a
// 10-byte Indexed header claiming 2^60 blocks).
const (
	// maxDecodeValue bounds any decoded count, block length,
	// displacement, stride, offset — keeps extents within int range.
	maxDecodeValue = 1 << 31
	// maxDecodeBlocks bounds Indexed block and Struct field counts before
	// their slices are allocated (further bounded by the buffer length:
	// every block costs at least two encoded bytes).
	maxDecodeBlocks = 1 << 20
)

// Encode serializes t.
func Encode(t Type) []byte {
	var out []byte
	return appendType(out, t)
}

func appendUvarint(out []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(out, buf[:n]...)
}

func appendType(out []byte, t Type) []byte {
	switch x := t.(type) {
	case primitive:
		out = append(out, tagPrimitive, byte(x.kind))
	case contiguous:
		out = append(out, tagContig)
		out = appendUvarint(out, uint64(x.count))
		out = appendType(out, x.base)
	case vector:
		out = append(out, tagVector)
		out = appendUvarint(out, uint64(x.count))
		out = appendUvarint(out, uint64(x.blocklen))
		out = appendUvarint(out, uint64(x.stride))
		out = appendType(out, x.base)
	case indexed:
		out = append(out, tagIndexed)
		out = appendUvarint(out, uint64(len(x.displs)))
		for i := range x.displs {
			out = appendUvarint(out, uint64(x.blocklens[i]))
			out = appendUvarint(out, uint64(x.displs[i]))
		}
		out = appendType(out, x.base)
	case structT:
		out = append(out, tagStruct)
		out = appendUvarint(out, uint64(len(x.fields)))
		for _, f := range x.fields {
			out = appendUvarint(out, uint64(f.Offset))
			out = appendUvarint(out, uint64(f.Count))
			out = appendType(out, f.Type)
		}
	default:
		panic(fmt.Sprintf("datatype: cannot encode type %T", t))
	}
	return out
}

// Decode deserializes a type from the front of buf, returning the type and
// the number of bytes consumed.
func Decode(buf []byte) (Type, int, error) {
	t, n, err := decodeType(buf)
	if err != nil {
		return nil, 0, err
	}
	return t, n, nil
}

func decodeUvarint(buf []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("datatype: truncated varint at offset %d", pos)
	}
	if v > maxDecodeValue {
		return 0, 0, fmt.Errorf("datatype: decoded value %d exceeds the sanity bound", v)
	}
	return v, pos + n, nil
}

func decodeType(buf []byte) (Type, int, error) {
	if len(buf) == 0 {
		return nil, 0, fmt.Errorf("datatype: empty type encoding")
	}
	switch buf[0] {
	case tagPrimitive:
		if len(buf) < 2 {
			return nil, 0, fmt.Errorf("datatype: truncated primitive encoding")
		}
		k := Kind(buf[1])
		if k > KFloat64 {
			return nil, 0, fmt.Errorf("datatype: unknown primitive kind %d", buf[1])
		}
		return primitive{k}, 2, nil
	case tagContig:
		count, pos, err := decodeUvarint(buf, 1)
		if err != nil {
			return nil, 0, err
		}
		base, n, err := decodeType(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		return contiguous{int(count), base}, pos + n, nil
	case tagVector:
		count, pos, err := decodeUvarint(buf, 1)
		if err != nil {
			return nil, 0, err
		}
		blocklen, pos, err := decodeUvarint(buf, pos)
		if err != nil {
			return nil, 0, err
		}
		stride, pos, err := decodeUvarint(buf, pos)
		if err != nil {
			return nil, 0, err
		}
		base, n, err := decodeType(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		if int(stride) < int(blocklen) {
			return nil, 0, fmt.Errorf("datatype: decoded vector stride %d < blocklen %d", stride, blocklen)
		}
		return vector{int(count), int(blocklen), int(stride), base}, pos + n, nil
	case tagIndexed:
		nblocks, pos, err := decodeUvarint(buf, 1)
		if err != nil {
			return nil, 0, err
		}
		// Each block costs at least two encoded bytes; reject counts the
		// buffer cannot possibly carry before allocating.
		if nblocks > maxDecodeBlocks || nblocks > uint64(len(buf))/2+1 {
			return nil, 0, fmt.Errorf("datatype: indexed type claims %d blocks in a %d-byte encoding", nblocks, len(buf))
		}
		blocklens := make([]int, nblocks)
		displs := make([]int, nblocks)
		for i := range blocklens {
			var b, d uint64
			b, pos, err = decodeUvarint(buf, pos)
			if err != nil {
				return nil, 0, err
			}
			d, pos, err = decodeUvarint(buf, pos)
			if err != nil {
				return nil, 0, err
			}
			blocklens[i] = int(b)
			displs[i] = int(d)
		}
		base, n, err := decodeType(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		return Indexed(blocklens, displs, base), pos + n, nil
	case tagStruct:
		nfields, pos, err := decodeUvarint(buf, 1)
		if err != nil {
			return nil, 0, err
		}
		// Each field costs at least four encoded bytes (two varints plus
		// a nested type of two bytes minimum).
		if nfields > maxDecodeBlocks || nfields > uint64(len(buf))/4+1 {
			return nil, 0, fmt.Errorf("datatype: struct type claims %d fields in a %d-byte encoding", nfields, len(buf))
		}
		fields := make([]Field, nfields)
		for i := range fields {
			var off, cnt uint64
			off, pos, err = decodeUvarint(buf, pos)
			if err != nil {
				return nil, 0, err
			}
			cnt, pos, err = decodeUvarint(buf, pos)
			if err != nil {
				return nil, 0, err
			}
			ft, n, err := decodeType(buf[pos:])
			if err != nil {
				return nil, 0, err
			}
			pos += n
			fields[i] = Field{Offset: int(off), Count: int(cnt), Type: ft}
		}
		return Struct(fields), pos, nil
	default:
		return nil, 0, fmt.Errorf("datatype: unknown type tag %d", buf[0])
	}
}

// Walk exposes the contiguous-segment iteration of one instance of t for
// packages that apply element-wise operations (accumulate, RMW): fn is
// called for every maximal run of n same-kind elements at byte offset off
// from the instance start.
func Walk(t Type, fn func(off, n int, k Kind)) { t.walk(fn) }
