package datatype

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrimitiveWidths(t *testing.T) {
	cases := []struct {
		t    Type
		size int
	}{
		{Byte, 1}, {Int32, 4}, {Int64, 8}, {Float32, 4}, {Float64, 8},
	}
	for _, c := range cases {
		if c.t.Size() != c.size || c.t.Extent() != c.size {
			t.Errorf("%s: size/extent = %d/%d, want %d", c.t.Name(), c.t.Size(), c.t.Extent(), c.size)
		}
	}
}

func TestContiguousLayout(t *testing.T) {
	ct := Contiguous(4, Int32)
	if ct.Size() != 16 || ct.Extent() != 16 {
		t.Fatalf("contiguous(4,int32): size=%d extent=%d, want 16/16", ct.Size(), ct.Extent())
	}
	var segs int
	Walk(ct, func(off, n int, k Kind) {
		segs++
		if off != 0 || n != 4 || k != KInt32 {
			t.Errorf("unexpected segment (%d,%d,%v)", off, n, k)
		}
	})
	if segs != 1 {
		t.Errorf("contiguous primitive should collapse to 1 segment, got %d", segs)
	}
}

func TestVectorLayout(t *testing.T) {
	// 3 blocks of 2 float64, stride 4 elements.
	vt := Vector(3, 2, 4, Float64)
	if vt.Size() != 48 {
		t.Errorf("size = %d, want 48", vt.Size())
	}
	if want := ((3-1)*4 + 2) * 8; vt.Extent() != want {
		t.Errorf("extent = %d, want %d", vt.Extent(), want)
	}
	var offs []int
	Walk(vt, func(off, n int, k Kind) {
		offs = append(offs, off)
		if n != 2 || k != KFloat64 {
			t.Errorf("segment (%d,%d,%v), want blocks of 2 float64", off, n, k)
		}
	})
	want := []int{0, 32, 64}
	if len(offs) != 3 || offs[0] != want[0] || offs[1] != want[1] || offs[2] != want[2] {
		t.Errorf("block offsets %v, want %v", offs, want)
	}
}

func TestVectorStrideValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Vector with stride < blocklen should panic")
		}
	}()
	Vector(2, 4, 2, Byte)
}

func TestIndexedLayout(t *testing.T) {
	it := Indexed([]int{2, 1}, []int{3, 0}, Int32)
	if it.Size() != 12 {
		t.Errorf("size = %d, want 12", it.Size())
	}
	if want := (3 + 2) * 4; it.Extent() != want {
		t.Errorf("extent = %d, want %d", it.Extent(), want)
	}
}

func TestStructLayout(t *testing.T) {
	st := Struct([]Field{
		{Offset: 0, Count: 1, Type: Int64},
		{Offset: 8, Count: 2, Type: Float32},
		{Offset: 16, Count: 4, Type: Byte},
	})
	if st.Size() != 8+8+4 {
		t.Errorf("size = %d, want 20", st.Size())
	}
	if st.Extent() != 20 {
		t.Errorf("extent = %d, want 20", st.Extent())
	}
}

func TestPackUnpackContiguousRoundtrip(t *testing.T) {
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	wire, err := Pack(src, 8, Int64, LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, src) {
		t.Fatal("little-endian contiguous pack must be identity")
	}
	dst := make([]byte, 64)
	if err := Unpack(dst, wire, 8, Int64, LittleEndian); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestPackBigEndianSwaps(t *testing.T) {
	src := make([]byte, 8)
	binary.BigEndian.PutUint64(src, 0x0102030405060708)
	wire, err := Pack(src, 1, Int64, BigEndian)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(wire); got != 0x0102030405060708 {
		t.Fatalf("wire value %#x, want canonical little-endian of the big-endian source", got)
	}
	// Unpacking into a big-endian rank restores the original bytes.
	dst := make([]byte, 8)
	if err := Unpack(dst, wire, 1, Int64, BigEndian); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("big-endian roundtrip mismatch")
	}
}

func TestCrossEndianTransfer(t *testing.T) {
	// A float64 written on a little-endian rank must read back as the
	// same value on a big-endian rank after pack/unpack.
	val := 3.14159
	src := make([]byte, 8)
	binary.LittleEndian.PutUint64(src, math.Float64bits(val))
	wire, err := Pack(src, 1, Float64, LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 8)
	if err := Unpack(dst, wire, 1, Float64, BigEndian); err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(binary.BigEndian.Uint64(dst)); got != val {
		t.Fatalf("cross-endian value = %v, want %v", got, val)
	}
}

func TestPackVectorGathers(t *testing.T) {
	// Buffer: 6 int32; vector takes elements 0,1 and 4,5.
	src := make([]byte, 24)
	for i := 0; i < 6; i++ {
		binary.LittleEndian.PutUint32(src[i*4:], uint32(10+i))
	}
	vt := Vector(2, 2, 4, Int32)
	wire, err := Pack(src, 1, vt, LittleEndian)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{10, 11, 14, 15}
	for i, w := range want {
		if got := binary.LittleEndian.Uint32(wire[i*4:]); got != w {
			t.Errorf("wire[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestUnpackVectorScattersPreservingHoles(t *testing.T) {
	vt := Vector(2, 1, 2, Int32) // elements 0 and 2
	dst := make([]byte, 16)
	for i := range dst {
		dst[i] = 0xEE
	}
	wire := make([]byte, 8)
	binary.LittleEndian.PutUint32(wire[0:], 1)
	binary.LittleEndian.PutUint32(wire[4:], 2)
	if err := Unpack(dst, wire, 1, vt, LittleEndian); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint32(dst[0:]) != 1 || binary.LittleEndian.Uint32(dst[8:]) != 2 {
		t.Fatal("scattered values wrong")
	}
	for _, i := range []int{4, 5, 6, 7, 12, 13, 14, 15} {
		if dst[i] != 0xEE {
			t.Fatalf("hole byte %d clobbered", i)
		}
	}
}

func TestPackSizeMismatch(t *testing.T) {
	src := make([]byte, 4)
	if _, err := Pack(src, 2, Int32, LittleEndian); err == nil {
		t.Fatal("packing 2 int32 from 4 bytes should fail")
	}
	dst := make([]byte, 3)
	if err := Unpack(dst, make([]byte, 4), 1, Int32, LittleEndian); err == nil {
		t.Fatal("unpacking into a short buffer should fail")
	}
}

func TestSignatureCompatibility(t *testing.T) {
	// 8 bytes contiguous == vector of 2x4 bytes in signature terms.
	a := Contiguous(8, Byte)
	v := Vector(2, 4, 10, Byte)
	if !Compatible(1, a, 1, v) {
		t.Error("8 contiguous bytes should match a 2x4 byte vector")
	}
	if Compatible(1, a, 1, Contiguous(2, Int32)) {
		t.Error("bytes must not match int32s (heterogeneity rule)")
	}
	if !Compatible(4, Int32, 1, Contiguous(4, Int32)) {
		t.Error("count folding should be signature-equal")
	}
	if Compatible(3, Int32, 4, Int32) {
		t.Error("different element counts must not match")
	}
}

// randomType builds a random type tree (depth ≤ 2) for property tests.
func randomType(r *rand.Rand) Type {
	prims := []Type{Byte, Int32, Int64, Float32, Float64}
	base := prims[r.Intn(len(prims))]
	switch r.Intn(4) {
	case 0:
		return base
	case 1:
		return Contiguous(1+r.Intn(5), base)
	case 2:
		bl := 1 + r.Intn(3)
		return Vector(1+r.Intn(4), bl, bl+r.Intn(3), base)
	default:
		n := 1 + r.Intn(4)
		blocklens := make([]int, n)
		displs := make([]int, n)
		next := 0
		for i := 0; i < n; i++ {
			displs[i] = next + r.Intn(3)
			blocklens[i] = 1 + r.Intn(3)
			next = displs[i] + blocklens[i]
		}
		return Indexed(blocklens, displs, base)
	}
}

// TestPackUnpackPropertyRoundtrip: for random types, random data, and both
// byte orders, unpack(pack(x)) == x on the covered bytes, holes preserved.
func TestPackUnpackPropertyRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		dt := randomType(r)
		count := 1 + r.Intn(3)
		order := LittleEndian
		if r.Intn(2) == 1 {
			order = BigEndian
		}
		ext := ExtentOf(count, dt)
		src := make([]byte, ext)
		r.Read(src)
		wire, err := Pack(src, count, dt, order)
		if err != nil {
			t.Fatalf("iter %d (%s x%d): pack: %v", iter, dt.Name(), count, err)
		}
		if len(wire) != PackedSize(count, dt) {
			t.Fatalf("iter %d: wire %d bytes, want %d", iter, len(wire), PackedSize(count, dt))
		}
		dst := make([]byte, ext)
		const holeFill = 0xAB
		for i := range dst {
			dst[i] = holeFill
		}
		if err := Unpack(dst, wire, count, dt, order); err != nil {
			t.Fatalf("iter %d: unpack: %v", iter, err)
		}
		// Covered bytes must match src; holes must keep the fill.
		covered := make([]bool, ext)
		for i := 0; i < count; i++ {
			at := i * dt.Extent()
			Walk(dt, func(off, n int, k Kind) {
				for b := 0; b < n*k.Width(); b++ {
					covered[at+off+b] = true
				}
			})
		}
		for i := range dst {
			if covered[i] && dst[i] != src[i] {
				t.Fatalf("iter %d (%s): covered byte %d = %#x, want %#x", iter, dt.Name(), i, dst[i], src[i])
			}
			if !covered[i] && dst[i] != holeFill {
				t.Fatalf("iter %d (%s): hole byte %d clobbered", iter, dt.Name(), i)
			}
		}
	}
}

// Property: packed size equals the sum of walked segment widths.
func TestSizeMatchesWalk(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	f := func() bool {
		dt := randomType(r)
		var sum int
		Walk(dt, func(off, n int, k Kind) { sum += n * k.Width() })
		return sum == dt.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: signatures are invariant under codec roundtrip.
func TestCodecPreservesSignature(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 300; iter++ {
		dt := randomType(r)
		enc := Encode(dt)
		dec, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("iter %d: decode(%s): %v", iter, dt.Name(), err)
		}
		if n != len(enc) {
			t.Fatalf("iter %d: decode consumed %d of %d bytes", iter, n, len(enc))
		}
		if !SignatureOf(1, dt).Equal(SignatureOf(1, dec)) {
			t.Fatalf("iter %d: signature changed across codec: %s vs %s", iter, dt.Name(), dec.Name())
		}
		if dt.Size() != dec.Size() || dt.Extent() != dec.Extent() {
			t.Fatalf("iter %d: size/extent changed across codec", iter)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},              // unknown tag
		{tagPrimitive},    // truncated
		{tagPrimitive, 7}, // unknown kind
		{tagContig},       // missing varint
		{tagVector, 1},    // truncated varints
	}
	for i, c := range cases {
		if _, _, err := Decode(c); err == nil {
			t.Errorf("case %d: Decode(%v) succeeded, want error", i, c)
		}
	}
}

func TestCodecStruct(t *testing.T) {
	st := Struct([]Field{
		{Offset: 0, Count: 2, Type: Int32},
		{Offset: 16, Count: 1, Type: Vector(2, 1, 2, Float64)},
	})
	dec, _, err := Decode(Encode(st))
	if err != nil {
		t.Fatal(err)
	}
	if !SignatureOf(1, st).Equal(SignatureOf(1, dec)) {
		t.Fatal("struct codec changed the signature")
	}
}
