// Package datatype implements an MPI-style datatype engine.
//
// The strawman RMA interface (paper Section IV, requirement 7) reuses MPI
// datatypes so that noncontiguous data — strided vectors, scatter/gather
// index lists — and heterogeneous systems (Section III-B3: special-purpose
// PEs with different endianness) are both supported by the same transfer
// calls.
//
// A Type describes a layout of typed elements over a byte buffer. Transfers
// pack the origin layout into a canonical wire format (little-endian,
// densely packed, elements in layout order) and unpack at the target into
// the target layout, converting byte order per rank. Type signatures (the
// flattened sequence of element kinds) must match between origin and
// target, exactly as MPI requires.
package datatype

import (
	"fmt"
)

// ByteOrder is the endianness of a rank's memory representation.
type ByteOrder int

const (
	// LittleEndian ranks store multi-byte elements least-significant first.
	LittleEndian ByteOrder = iota
	// BigEndian ranks store multi-byte elements most-significant first.
	// The wire format is little-endian, so big-endian ranks byte-swap on
	// pack and unpack — modelling the POWER-host + commodity-GPU mix the
	// paper warns about.
	BigEndian
)

// String returns the byte order's name.
func (o ByteOrder) String() string {
	if o == BigEndian {
		return "big-endian"
	}
	return "little-endian"
}

// Kind identifies a primitive element type.
type Kind uint8

const (
	// KByte is a raw byte (no swap needed).
	KByte Kind = iota
	// KInt32 is a 4-byte signed integer.
	KInt32
	// KInt64 is an 8-byte signed integer.
	KInt64
	// KFloat32 is a 4-byte IEEE-754 float.
	KFloat32
	// KFloat64 is an 8-byte IEEE-754 float.
	KFloat64
)

// Width returns the element width in bytes.
func (k Kind) Width() int {
	switch k {
	case KByte:
		return 1
	case KInt32, KFloat32:
		return 4
	case KInt64, KFloat64:
		return 8
	default:
		panic(fmt.Sprintf("datatype: unknown kind %d", k))
	}
}

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KByte:
		return "byte"
	case KInt32:
		return "int32"
	case KInt64:
		return "int64"
	case KFloat32:
		return "float32"
	case KFloat64:
		return "float64"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Type describes a data layout. Implementations are immutable and safe for
// concurrent use.
type Type interface {
	// Size is the number of bytes of actual data in one instance of the
	// type (the packed size).
	Size() int
	// Extent is the span of memory one instance covers, including holes;
	// instance i of a count-N transfer begins at offset i*Extent().
	Extent() int
	// Name returns a human-readable description.
	Name() string
	// walk invokes fn for every maximal contiguous run of same-kind
	// elements in one instance of the type, in layout order. off is the
	// byte offset from the instance start, n the number of elements.
	walk(fn func(off int, n int, k Kind))
}

// --- Predefined types -------------------------------------------------

type primitive struct {
	kind Kind
}

func (p primitive) Size() int    { return p.kind.Width() }
func (p primitive) Extent() int  { return p.kind.Width() }
func (p primitive) Name() string { return p.kind.String() }
func (p primitive) walk(fn func(off, n int, k Kind)) {
	fn(0, 1, p.kind)
}

// Predefined primitive types.
var (
	Byte    Type = primitive{KByte}
	Int32   Type = primitive{KInt32}
	Int64   Type = primitive{KInt64}
	Float32 Type = primitive{KFloat32}
	Float64 Type = primitive{KFloat64}
)

// --- Derived types ----------------------------------------------------

type contiguous struct {
	count int
	base  Type
}

// Contiguous returns a type of count consecutive instances of base.
func Contiguous(count int, base Type) Type {
	if count < 0 {
		panic("datatype: Contiguous count must be non-negative")
	}
	return contiguous{count, base}
}

func (t contiguous) Size() int   { return t.count * t.base.Size() }
func (t contiguous) Extent() int { return t.count * t.base.Extent() }
func (t contiguous) Name() string {
	return fmt.Sprintf("contiguous(%d,%s)", t.count, t.base.Name())
}
func (t contiguous) walk(fn func(off, n int, k Kind)) {
	// A contiguous run of a primitive base collapses into one segment.
	if p, ok := t.base.(primitive); ok {
		if t.count > 0 {
			fn(0, t.count, p.kind)
		}
		return
	}
	ext := t.base.Extent()
	for i := 0; i < t.count; i++ {
		at := i * ext
		t.base.walk(func(off, n int, k Kind) { fn(at+off, n, k) })
	}
}

type vector struct {
	count    int // number of blocks
	blocklen int // base instances per block
	stride   int // base extents between block starts
	base     Type
}

// Vector returns a strided type: count blocks of blocklen consecutive base
// instances, with block starts separated by stride base extents. This is
// the classic MPI_Type_vector used for matrix columns and halo faces.
func Vector(count, blocklen, stride int, base Type) Type {
	if count < 0 || blocklen < 0 {
		panic("datatype: Vector count and blocklen must be non-negative")
	}
	if stride < blocklen {
		panic("datatype: Vector stride must be >= blocklen (overlapping blocks are not supported)")
	}
	return vector{count, blocklen, stride, base}
}

func (t vector) Size() int { return t.count * t.blocklen * t.base.Size() }
func (t vector) Extent() int {
	if t.count == 0 {
		return 0
	}
	return ((t.count-1)*t.stride + t.blocklen) * t.base.Extent()
}
func (t vector) Name() string {
	return fmt.Sprintf("vector(%d,%d,%d,%s)", t.count, t.blocklen, t.stride, t.base.Name())
}
func (t vector) walk(fn func(off, n int, k Kind)) {
	ext := t.base.Extent()
	p, prim := t.base.(primitive)
	for b := 0; b < t.count; b++ {
		blockOff := b * t.stride * ext
		if prim {
			if t.blocklen > 0 {
				fn(blockOff, t.blocklen, p.kind)
			}
			continue
		}
		for i := 0; i < t.blocklen; i++ {
			at := blockOff + i*ext
			t.base.walk(func(off, n int, k Kind) { fn(at+off, n, k) })
		}
	}
}

type indexed struct {
	blocklens []int // base instances per block
	displs    []int // block displacements in base extents
	base      Type
	extent    int
}

// Indexed returns a scatter/gather type: len(displs) blocks, block i
// holding blocklens[i] consecutive base instances at displacement
// displs[i] (in base extents). Displacements must be non-negative and the
// blocks must not overlap, but need not be sorted.
func Indexed(blocklens, displs []int, base Type) Type {
	if len(blocklens) != len(displs) {
		panic("datatype: Indexed blocklens and displs must have equal length")
	}
	ext := 0
	for i, d := range displs {
		if d < 0 || blocklens[i] < 0 {
			panic("datatype: Indexed displacements and block lengths must be non-negative")
		}
		if end := d + blocklens[i]; end > ext {
			ext = end
		}
	}
	return indexed{
		blocklens: append([]int(nil), blocklens...),
		displs:    append([]int(nil), displs...),
		base:      base,
		extent:    ext * base.Extent(),
	}
}

func (t indexed) Size() int {
	n := 0
	for _, b := range t.blocklens {
		n += b
	}
	return n * t.base.Size()
}
func (t indexed) Extent() int { return t.extent }
func (t indexed) Name() string {
	return fmt.Sprintf("indexed(%d blocks,%s)", len(t.displs), t.base.Name())
}
func (t indexed) walk(fn func(off, n int, k Kind)) {
	ext := t.base.Extent()
	p, prim := t.base.(primitive)
	for b := range t.displs {
		blockOff := t.displs[b] * ext
		if prim {
			if t.blocklens[b] > 0 {
				fn(blockOff, t.blocklens[b], p.kind)
			}
			continue
		}
		for i := 0; i < t.blocklens[b]; i++ {
			at := blockOff + i*ext
			t.base.walk(func(off, n int, k Kind) { fn(at+off, n, k) })
		}
	}
}

// Field is one member of a Struct type.
type Field struct {
	// Offset is the field's byte offset from the instance start.
	Offset int
	// Count is the number of consecutive Type instances at Offset.
	Count int
	// Type is the field's element type.
	Type Type
}

type structT struct {
	fields []Field
	extent int
}

// Struct returns a heterogeneous record type assembled from fields, like
// MPI_Type_create_struct. The extent is the end of the furthest field
// unless a larger one is implied by alignment the caller bakes into the
// offsets.
func Struct(fields []Field) Type {
	ext := 0
	for _, f := range fields {
		if f.Offset < 0 || f.Count < 0 {
			panic("datatype: Struct field offsets and counts must be non-negative")
		}
		if end := f.Offset + f.Count*f.Type.Extent(); end > ext {
			ext = end
		}
	}
	return structT{fields: append([]Field(nil), fields...), extent: ext}
}

func (t structT) Size() int {
	n := 0
	for _, f := range t.fields {
		n += f.Count * f.Type.Size()
	}
	return n
}
func (t structT) Extent() int { return t.extent }
func (t structT) Name() string {
	return fmt.Sprintf("struct(%d fields)", len(t.fields))
}
func (t structT) walk(fn func(off, n int, k Kind)) {
	for _, f := range t.fields {
		ext := f.Type.Extent()
		for i := 0; i < f.Count; i++ {
			at := f.Offset + i*ext
			f.Type.walk(func(off, n int, k Kind) { fn(at+off, n, k) })
		}
	}
}
