package mpi2rma

import (
	"bytes"
	"sync/atomic"
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
)

// TestWinCreateMultipleWindows: windows on the same communicator are
// independent (distinct ids, distinct memories).
func TestWinCreateMultipleWindows(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		comm := p.Comm()
		regA := p.Alloc(16)
		regB := p.Alloc(16)
		winA, err := r.WinCreate(comm, regA)
		if err != nil {
			t.Errorf("winA: %v", err)
			return
		}
		winB, err := r.WinCreate(comm, regB)
		if err != nil {
			t.Errorf("winB: %v", err)
			return
		}
		if winA.id == winB.id {
			t.Error("two windows share an id")
		}
		winA.Fence()
		winB.Fence()
		src := p.Alloc(16)
		p.WriteLocal(src, 0, bytes.Repeat([]byte{0xA1}, 16))
		if p.Rank() == 1 {
			if err := winA.Put(src, 16, datatype.Byte, 0, 0, 16, datatype.Byte); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		winA.Fence()
		winB.Fence()
		if p.Rank() == 0 {
			if got := p.Mem().Snapshot(regA.Offset, 1)[0]; got != 0xA1 {
				t.Errorf("winA byte %x", got)
			}
			if got := p.Mem().Snapshot(regB.Offset, 1)[0]; got != 0 {
				t.Errorf("winB contaminated: %x", got)
			}
		}
		winA.Free()
		winB.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPSCWTest covers the nonblocking Wait (MPI_Win_test).
func TestPSCWTest(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		comm := p.Comm()
		region := p.Alloc(8)
		win, err := r.WinCreate(comm, region)
		if err != nil {
			t.Errorf("wincreate: %v", err)
			return
		}
		if p.Rank() == 0 {
			if err := win.Post([]int{1}); err != nil {
				t.Errorf("post: %v", err)
			}
			// Spin on Test until the exposure epoch closes.
			for {
				done, err := win.Test()
				if err != nil {
					t.Errorf("test: %v", err)
					return
				}
				if done {
					break
				}
			}
			if got := p.Mem().Snapshot(region.Offset, 1)[0]; got != 0x5E {
				t.Errorf("byte %x after Test-closed epoch", got)
			}
		} else {
			if err := win.Start([]int{0}); err != nil {
				t.Errorf("start: %v", err)
			}
			src := p.Alloc(8)
			p.WriteLocal(src, 0, bytes.Repeat([]byte{0x5E}, 8))
			if err := win.Put(src, 8, datatype.Byte, 0, 0, 8, datatype.Byte); err != nil {
				t.Errorf("put: %v", err)
			}
			if err := win.Complete(); err != nil {
				t.Errorf("complete: %v", err)
			}
		}
		p.Barrier()
		win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSharedLockConcurrency: shared locks admit concurrent holders, and
// an exclusive request waits for all of them.
func TestSharedThenExclusive(t *testing.T) {
	w := newWorld(t, 4)
	var concurrentShared atomic.Int32
	var sawTwoShared atomic.Bool
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		comm := p.Comm()
		region := p.Alloc(8)
		win, err := r.WinCreate(comm, region)
		if err != nil {
			t.Errorf("wincreate: %v", err)
			return
		}
		switch p.Rank() {
		case 1, 2: // shared holders
			if err := win.Lock(LockShared, 0); err != nil {
				t.Errorf("shared lock: %v", err)
			}
			if concurrentShared.Add(1) == 2 {
				sawTwoShared.Store(true)
			}
			// Hold long enough for the other shared holder to join.
			for i := 0; i < 100 && !sawTwoShared.Load(); i++ {
				p.Advance(1000)
			}
			concurrentShared.Add(-1)
			if err := win.Unlock(0); err != nil {
				t.Errorf("shared unlock: %v", err)
			}
		case 3: // exclusive requester
			if err := win.Lock(LockExclusive, 0); err != nil {
				t.Errorf("exclusive lock: %v", err)
			}
			if concurrentShared.Load() != 0 {
				t.Error("exclusive lock granted while shared locks held")
			}
			if err := win.Unlock(0); err != nil {
				t.Errorf("exclusive unlock: %v", err)
			}
		}
		p.Barrier()
		win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFenceRejectsOpenEpochs: fence during PSCW or lock epochs is
// erroneous.
func TestFenceRejectsOpenEpochs(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		comm := p.Comm()
		region := p.Alloc(8)
		win, err := r.WinCreate(comm, region)
		if err != nil {
			t.Errorf("wincreate: %v", err)
			return
		}
		if p.Rank() == 0 {
			if err := win.Post([]int{1}); err != nil {
				t.Errorf("post: %v", err)
			}
			if err := win.Fence(); err == nil {
				t.Error("fence inside an exposure epoch accepted")
			}
			if err := win.Wait(); err != nil {
				t.Errorf("wait: %v", err)
			}
		} else {
			if err := win.Start([]int{0}); err != nil {
				t.Errorf("start: %v", err)
			}
			if err := win.Fence(); err == nil {
				t.Error("fence inside an access epoch accepted")
			}
			if err := win.Complete(); err != nil {
				t.Errorf("complete: %v", err)
			}
		}
		p.Barrier()
		win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMisuseErrors: double post, complete without start, wait without
// post, unlock without lock, double free.
func TestMisuseErrors(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		comm := p.Comm()
		win, err := r.WinCreate(comm, p.Alloc(8))
		if err != nil {
			t.Errorf("wincreate: %v", err)
			return
		}
		if err := win.Complete(); err == nil {
			t.Error("Complete without Start accepted")
		}
		if err := win.Wait(); err == nil {
			t.Error("Wait without Post accepted")
		}
		if err := win.Unlock(1 - p.Rank()); err == nil {
			t.Error("Unlock without Lock accepted")
		}
		if err := win.Post([]int{1 - p.Rank()}); err != nil {
			t.Errorf("post: %v", err)
		}
		if err := win.Post([]int{1 - p.Rank()}); err == nil {
			t.Error("double Post accepted")
		}
		p.Barrier()
		// Close the epochs so Free succeeds.
		if err := win.Start([]int{1 - p.Rank()}); err != nil {
			t.Errorf("start: %v", err)
		}
		if err := win.Start([]int{1 - p.Rank()}); err == nil {
			t.Error("double Start accepted")
		}
		if err := win.Complete(); err != nil {
			t.Errorf("complete: %v", err)
		}
		if err := win.Wait(); err != nil {
			t.Errorf("wait: %v", err)
		}
		if err := win.Free(); err != nil {
			t.Errorf("free: %v", err)
		}
		if err := win.Free(); err == nil {
			t.Error("double Free accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGetFromWindow reads initialized target memory under a fence epoch.
func TestGetFromWindow(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		comm := p.Comm()
		region := p.Alloc(32)
		if p.Rank() == 0 {
			p.WriteLocal(region, 0, bytes.Repeat([]byte{0xD4}, 32))
		}
		win, err := r.WinCreate(comm, region)
		if err != nil {
			t.Errorf("wincreate: %v", err)
			return
		}
		win.Fence()
		if p.Rank() == 1 {
			dst := p.Alloc(32)
			if err := win.Get(dst, 32, datatype.Byte, 0, 0, 32, datatype.Byte); err != nil {
				t.Errorf("get: %v", err)
			}
			if got := p.ReadLocal(dst, 0, 32); !bytes.Equal(got, bytes.Repeat([]byte{0xD4}, 32)) {
				t.Error("window get mismatch")
			}
		}
		win.Fence()
		win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWindowOnSubComm: windows work on communicators smaller than the
// world.
func TestWindowOnSubComm(t *testing.T) {
	w := newWorld(t, 4)
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() >= 2 {
			return // not a member
		}
		sub := comm.Sub([]int{0, 1})
		region := p.Alloc(8)
		win, err := r.WinCreate(sub, region)
		if err != nil {
			t.Errorf("wincreate: %v", err)
			return
		}
		win.Fence()
		if sub.Rank() == 1 {
			src := p.Alloc(8)
			p.WriteLocal(src, 0, bytes.Repeat([]byte{3}, 8))
			if err := win.Put(src, 8, datatype.Byte, 0, 0, 8, datatype.Byte); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		win.Fence()
		if sub.Rank() == 0 {
			if got := p.Mem().Snapshot(region.Offset, 1)[0]; got != 3 {
				t.Errorf("subcomm window byte %d", got)
			}
		}
		win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}
