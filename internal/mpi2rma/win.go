// Package mpi2rma implements the MPI-2 one-sided communication interface
// the paper critiques (Section I, Figure 1): collectively created windows
// (MPI_Win_create), the three synchronization methods — fence,
// post-start-complete-wait, lock-unlock — and Put/Get/Accumulate bound to
// epochs.
//
// It exists as the baseline the strawman is measured against: experiment
// E6 compares single-call strawman transfers with the per-epoch costs of
// each MPI-2 mode, and the epoch-legality and overlapping-access rules the
// paper calls out as limitations are enforced here (overlap checking
// optional, matching MPI-2's "erroneous, not detected" stance).
//
// The package is deliberately built *on top of* the strawman engine
// (internal/core): one of the paper's implicit claims is that the new
// interface is strictly more expressive, and constructing MPI-2 windows,
// epochs and passive-target locking from target_mem + attributes +
// completion probes demonstrates it.
package mpi2rma

import (
	"fmt"
	"sync"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/portals"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/stats"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/vtime"
)

// Message kinds of the MPI-2 window protocol (PSCW notices, window locks).
const (
	kPost     = portals.KindMPI2Base + 0 // post notice (exposure epoch opened)
	kDone     = portals.KindMPI2Base + 1 // complete notice (access epoch closed)
	kWLockReq = portals.KindMPI2Base + 2 // window lock request
	kWLockGnt = portals.KindMPI2Base + 3 // window lock grant
	kWLockRel = portals.KindMPI2Base + 4 // window lock release
)

// Header words.
const (
	hWin = 0 // window id
	hArg = 1 // lock type / origin count
	hReq = 4 // request id for grants
)

// LockType selects shared or exclusive passive-target locking.
type LockType int

const (
	// LockShared permits concurrent holders (readers / non-conflicting
	// writers under MPI-2 rules).
	LockShared LockType = iota
	// LockExclusive permits a single holder.
	LockExclusive
)

// String returns the lock type's MPI name.
func (t LockType) String() string {
	if t == LockExclusive {
		return "MPI_LOCK_EXCLUSIVE"
	}
	return "MPI_LOCK_SHARED"
}

// Options configures a rank's MPI-2 RMA layer.
type Options struct {
	// DetectOverlap enables the (expensive, diagnostic) detection of
	// concurrent overlapping stores within one exposure epoch — accesses
	// MPI-2 declares erroneous but implementations do not detect.
	DetectOverlap bool
}

// RMA is one rank's MPI-2 RMA layer.
type RMA struct {
	proc *runtime.Proc
	eng  *core.Engine
	opts Options

	mu     sync.Mutex
	wins   map[uint64]*Win
	winSeq map[uint64]uint64 // per-comm window creation counters

	// Origin-side pending Lock requests, keyed by request id.
	lockWaits  map[uint64]*pendingLock
	lockReqSeq uint64

	// OverlapViolations counts detected concurrent overlapping stores.
	OverlapViolations stats.Counter
	// Fences counts completed Win.Fence synchronizations.
	Fences stats.Counter
	// PSCWEpochs counts access epochs opened with Win.Start.
	PSCWEpochs stats.Counter
	// WinLocks counts passive-target locks granted to this rank's origins.
	WinLocks stats.Counter
}

// extKey is the Proc extension slot.
const extKey = "mpi2rma"

// Attach returns the rank's MPI-2 layer, creating it on first use. The
// strawman engine is attached implicitly with default options if the rank
// has not configured one yet.
func Attach(p *runtime.Proc, opts Options) *RMA {
	return p.Ext(extKey, func() any {
		r := &RMA{
			proc:   p,
			eng:    core.Attach(p, core.Options{}),
			opts:   opts,
			wins:   make(map[uint64]*Win),
			winSeq: make(map[uint64]uint64),
		}
		nic := p.NIC()
		nic.RegisterHandler(kPost, r.handlePost)
		nic.RegisterHandler(kDone, r.handleDone)
		nic.RegisterHandler(kWLockReq, r.handleLockReq)
		nic.RegisterHandler(kWLockGnt, r.handleLockGrant)
		nic.RegisterHandler(kWLockRel, r.handleLockRel)
		if opts.DetectOverlap {
			r.eng.SetDepositHook(r.observeDeposit)
		}
		if reg := r.eng.Metrics(); reg != nil {
			r.RegisterMetrics(reg)
		}
		return r
	}).(*RMA)
}

// RegisterMetrics registers the MPI-2 layer's counters on a metrics
// registry under mpi2.* names. Attach calls it automatically when the
// underlying engine already has telemetry enabled.
func (r *RMA) RegisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Register("mpi2.fences", &r.Fences)
	reg.Register("mpi2.pscw_epochs", &r.PSCWEpochs)
	reg.Register("mpi2.win_locks", &r.WinLocks)
	reg.Register("mpi2.overlap_violations", &r.OverlapViolations)
}

// Engine exposes the underlying strawman engine.
func (r *RMA) Engine() *core.Engine { return r.eng }

// epochState tracks which epoch(s) a window is in at this rank.
type epochState struct {
	fenceOpen   bool
	accessGroup map[int]bool // Start() group (comm ranks); nil = none
	postGroup   map[int]bool // Post() group (comm ranks); nil = none
	locked      map[int]bool // comm ranks this rank holds a lock on
}

// Win is one rank's handle on a collectively created window.
type Win struct {
	rma  *RMA
	comm *runtime.Comm
	id   uint64
	tms  []core.TargetMem // per comm rank
	mine memsim.Region

	mu    sync.Mutex
	cond  *sync.Cond
	epoch epochState
	freed bool

	// PSCW notification state.
	postsSeen map[int]bool // origins' exposure epochs we have been told of
	donesSeen map[int]bool // access epochs closed toward us
	noticeAt  vtime.Time

	// Passive-target window lock (held at the *target* rank's Win).
	lockHolders map[int]LockType // comm rank -> type
	lockQueue   []lockWaiter
	lockLane    vtime.Clock

	// Overlap detection state (exposure side).
	overlapMu sync.Mutex
	writes    []writeRecord
}

type lockWaiter struct {
	origin int // comm rank
	typ    LockType
	reqID  uint64
	at     vtime.Time
}

type writeRecord struct {
	origin     int // world rank
	start, end int
}

// WinCreate collectively creates a window over each member's region (the
// MPI-2 model the paper contrasts with non-collective target_mem
// creation). All members of comm must call it in the same order with
// their own region; a zero-size region is allowed.
func (r *RMA) WinCreate(comm *runtime.Comm, region memsim.Region) (*Win, error) {
	tm := r.eng.Expose(region)
	parts := comm.Gather(0, tm.Encode())
	var flat []byte
	if comm.Rank() == 0 {
		for _, part := range parts {
			flat = append(flat, part...)
		}
	}
	flat = comm.Bcast(0, flat)
	n := comm.Size()
	if len(flat)%n != 0 {
		return nil, fmt.Errorf("mpi2rma: descriptor exchange returned %d bytes for %d ranks: %w", len(flat), n, core.ErrEpoch)
	}
	per := len(flat) / n
	tms := make([]core.TargetMem, n)
	for i := 0; i < n; i++ {
		var err error
		tms[i], err = core.DecodeTargetMem(flat[i*per : (i+1)*per])
		if err != nil {
			return nil, fmt.Errorf("mpi2rma: rank %d descriptor: %w", i, err)
		}
	}

	r.mu.Lock()
	seq := r.winSeq[comm.ID()]
	r.winSeq[comm.ID()] = seq + 1
	r.mu.Unlock()
	id := comm.ID()<<8 | (seq+1)&0xff

	w := &Win{
		rma:         r,
		comm:        comm,
		id:          id,
		tms:         tms,
		mine:        region,
		postsSeen:   make(map[int]bool),
		donesSeen:   make(map[int]bool),
		lockHolders: make(map[int]LockType),
	}
	w.cond = sync.NewCond(&w.mu)
	r.mu.Lock()
	r.wins[id] = w
	r.mu.Unlock()
	comm.Barrier()
	return w, nil
}

// Free destroys the window. Collective; all epochs must be closed.
func (w *Win) Free() error {
	w.mu.Lock()
	if w.freed {
		w.mu.Unlock()
		return fmt.Errorf("mpi2rma: window already freed: %w", core.ErrBadHandle)
	}
	if w.epoch.accessGroup != nil || w.epoch.postGroup != nil || len(w.epoch.locked) > 0 {
		w.mu.Unlock()
		return fmt.Errorf("mpi2rma: Win_free inside an open epoch: %w", core.ErrEpoch)
	}
	w.freed = true
	w.mu.Unlock()
	w.comm.Barrier()
	w.rma.mu.Lock()
	delete(w.rma.wins, w.id)
	w.rma.mu.Unlock()
	return w.rma.eng.Retract(w.tms[w.comm.Rank()])
}

// Comm returns the window's communicator.
func (w *Win) Comm() *runtime.Comm { return w.comm }

// Region returns this rank's window memory.
func (w *Win) Region() memsim.Region { return w.mine }

// lookup resolves a window id at this rank.
func (r *RMA) lookup(id uint64) *Win {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wins[id]
}

// accessAllowed enforces MPI-2 epoch legality for an RMA call targeting
// trank: the call must be inside a fence epoch, a Start() access epoch
// containing trank, or a lock epoch on trank.
func (w *Win) accessAllowed(trank int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.freed {
		return fmt.Errorf("mpi2rma: RMA call on freed window: %w", core.ErrBadHandle)
	}
	if w.epoch.fenceOpen {
		return nil
	}
	if w.epoch.accessGroup != nil && w.epoch.accessGroup[trank] {
		return nil
	}
	if w.epoch.locked[trank] {
		return nil
	}
	return fmt.Errorf("mpi2rma: RMA access to rank %d outside any epoch (MPI-2 requires fence, start, or lock): %w", trank, core.ErrEpoch)
}

// Put transfers origin data into target rank trank's window memory at
// byte displacement tdisp. Legal only inside an epoch covering trank.
func (w *Win) Put(origin memsim.Region, ocount int, odt datatype.Type, trank, tdisp, tcount int, tdt datatype.Type) error {
	if err := w.accessAllowed(trank); err != nil {
		return err
	}
	// MPI-2 puts have no per-operation completion: the epoch-closing call
	// (Fence, Complete, Unlock) completes every pending operation at the
	// engine level, so the request is deliberately dropped here.
	//rmalint:ignore lostrequest completion happens at the epoch-closing synchronization
	_, err := w.rma.eng.Put(origin, ocount, odt, w.tms[trank], tdisp, tcount, tdt, trank, w.comm, core.AttrNone)
	return err
}

// Get transfers target window memory into origin memory. Blocking at the
// data level (MPI-2 gets complete at the closing synchronization; here the
// data is fetched eagerly, which is a legal implementation).
func (w *Win) Get(origin memsim.Region, ocount int, odt datatype.Type, trank, tdisp, tcount int, tdt datatype.Type) error {
	if err := w.accessAllowed(trank); err != nil {
		return err
	}
	req, err := w.rma.eng.Get(origin, ocount, odt, w.tms[trank], tdisp, tcount, tdt, trank, w.comm, core.AttrNone)
	if err != nil {
		return err
	}
	req.Wait()
	return nil
}

// Accumulate combines origin data into the target window with op. MPI-2
// accumulates are element-atomic; that is depositAcc's granularity too.
func (w *Win) Accumulate(op core.AccOp, origin memsim.Region, ocount int, odt datatype.Type, trank, tdisp, tcount int, tdt datatype.Type) error {
	if err := w.accessAllowed(trank); err != nil {
		return err
	}
	// As with Put: MPI-2 accumulates complete at the epoch-closing call.
	//rmalint:ignore lostrequest completion happens at the epoch-closing synchronization
	_, err := w.rma.eng.Accumulate(op, origin, ocount, odt, w.tms[trank], tdisp, tcount, tdt, trank, w.comm, core.AttrNone)
	return err
}

// observeDeposit is the overlap checker: it records stores into this
// rank's windows and counts concurrent stores from different origins to
// overlapping bytes within the same epoch (reset at each Fence/Wait).
func (r *RMA) observeDeposit(src int, handle uint64, disp, length int) {
	r.mu.Lock()
	var win *Win
	for _, w := range r.wins {
		if w.tms[w.comm.Rank()].Handle == handle {
			win = w
			break
		}
	}
	r.mu.Unlock()
	if win == nil {
		return
	}
	win.overlapMu.Lock()
	defer win.overlapMu.Unlock()
	for _, rec := range win.writes {
		if rec.origin != src && disp < rec.end && rec.start < disp+length {
			r.OverlapViolations.Inc()
		}
	}
	win.writes = append(win.writes, writeRecord{origin: src, start: disp, end: disp + length})
}

// resetOverlapEpoch clears the overlap ledger at epoch boundaries.
func (w *Win) resetOverlapEpoch() {
	w.overlapMu.Lock()
	w.writes = w.writes[:0]
	w.overlapMu.Unlock()
}

// sendCtl ships a window-protocol control message. A failed send can only
// mean the world is shutting down; the message is dropped and counted
// rather than crashing the caller.
func (w *Win) sendCtl(kind uint8, commDst int, arg uint64, reqID uint64) {
	p := w.rma.proc
	m := &simnet.Message{Dst: w.comm.WorldRank(commDst), Kind: kind}
	m.Hdr[hWin] = w.id
	m.Hdr[hArg] = arg
	m.Hdr[hReq] = reqID
	if _, err := p.NIC().Send(p.Now(), m); err != nil {
		p.NIC().BadReq.Inc()
		return
	}
	p.NIC().CPU().AdvanceTo(m.SentAt)
}

// commRankOfWorld translates a world rank to this window's comm rank.
func (w *Win) commRankOfWorld(world int) int {
	for i, r := range w.comm.Ranks() {
		if r == world {
			return i
		}
	}
	return -1
}
