package mpi2rma

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
)

func newWorld(t *testing.T, ranks int) *runtime.World {
	t.Helper()
	w := runtime.NewWorld(runtime.Config{Ranks: ranks})
	t.Cleanup(w.Close)
	return w
}

// TestFenceExchange reproduces Figure 1a: both ranks put into the peer's
// window between fences and verify the data after the closing fence.
func TestFenceExchange(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		region := p.Alloc(8)
		win, err := r.WinCreate(p.Comm(), region)
		if err != nil {
			t.Errorf("rank %d: WinCreate: %v", p.Rank(), err)
			return
		}
		src := p.Alloc(8)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(100+p.Rank()))
		p.WriteLocal(src, 0, buf[:])

		if err := win.Fence(); err != nil {
			t.Errorf("rank %d: fence 1: %v", p.Rank(), err)
		}
		peer := 1 - p.Rank()
		if err := win.Put(src, 8, datatype.Byte, peer, 0, 8, datatype.Byte); err != nil {
			t.Errorf("rank %d: put: %v", p.Rank(), err)
		}
		if err := win.Fence(); err != nil {
			t.Errorf("rank %d: fence 2: %v", p.Rank(), err)
		}
		got := binary.LittleEndian.Uint64(p.Mem().Snapshot(region.Offset, 8))
		if got != uint64(100+peer) {
			t.Errorf("rank %d: window holds %d, want %d", p.Rank(), got, 100+peer)
		}
		if err := win.Free(); err != nil {
			t.Errorf("rank %d: free: %v", p.Rank(), err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPSCW reproduces Figure 1b: ranks 1 and 2 start access epochs toward
// rank 0's posted window, put and get, then complete; rank 0 waits.
func TestPSCW(t *testing.T) {
	w := newWorld(t, 3)
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		region := p.Alloc(64)
		if p.Rank() == 0 {
			p.WriteLocal(region, 32, bytes.Repeat([]byte{9}, 16))
		}
		win, err := r.WinCreate(p.Comm(), region)
		if err != nil {
			t.Errorf("rank %d: WinCreate: %v", p.Rank(), err)
			return
		}
		if p.Rank() == 0 {
			if err := win.Post([]int{1, 2}); err != nil {
				t.Errorf("post: %v", err)
			}
			if err := win.Wait(); err != nil {
				t.Errorf("wait: %v", err)
			}
			got := p.Mem().Snapshot(region.Offset, 32)
			for i := 0; i < 16; i++ {
				if got[i] != 1 || got[16+i] != 2 {
					t.Errorf("window bytes %d/%d = %d/%d, want 1/2", i, 16+i, got[i], got[16+i])
					break
				}
			}
		} else {
			if err := win.Start([]int{0}); err != nil {
				t.Errorf("rank %d: start: %v", p.Rank(), err)
			}
			src := p.Alloc(16)
			p.WriteLocal(src, 0, bytes.Repeat([]byte{byte(p.Rank())}, 16))
			if err := win.Put(src, 16, datatype.Byte, 0, (p.Rank()-1)*16, 16, datatype.Byte); err != nil {
				t.Errorf("rank %d: put: %v", p.Rank(), err)
			}
			dst := p.Alloc(16)
			if err := win.Get(dst, 16, datatype.Byte, 0, 32, 16, datatype.Byte); err != nil {
				t.Errorf("rank %d: get: %v", p.Rank(), err)
			}
			if got := p.ReadLocal(dst, 0, 16); got[0] != 9 {
				t.Errorf("rank %d: get returned %d, want 9", p.Rank(), got[0])
			}
			if err := win.Complete(); err != nil {
				t.Errorf("rank %d: complete: %v", p.Rank(), err)
			}
		}
		win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLockUnlock reproduces Figure 1c: passive-target exclusive locks
// serialize increments to a counter in rank 1's window; rank 1 does not
// participate beyond creating the window.
func TestLockUnlock(t *testing.T) {
	w := newWorld(t, 3)
	const itersPerRank = 20
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		region := p.Alloc(8)
		win, err := r.WinCreate(p.Comm(), region)
		if err != nil {
			t.Errorf("rank %d: WinCreate: %v", p.Rank(), err)
			return
		}
		if p.Rank() != 1 {
			val := p.Alloc(8)
			one := make([]byte, 8)
			binary.LittleEndian.PutUint64(one, 1)
			p.WriteLocal(val, 0, one)
			for i := 0; i < itersPerRank; i++ {
				if err := win.Lock(LockExclusive, 1); err != nil {
					t.Errorf("rank %d: lock: %v", p.Rank(), err)
				}
				if err := win.Accumulate(0, val, 1, datatype.Int64, 1, 0, 1, datatype.Int64); err == nil {
					// AccOp 0 is AccNone, promoted to replace — we want sum.
				}
				if err := win.Unlock(1); err != nil {
					t.Errorf("rank %d: unlock: %v", p.Rank(), err)
				}
			}
		}
		p.Barrier()
		if p.Rank() == 1 {
			// Replace semantics: the counter holds 1 (each accumulate
			// replaced); this subtest asserts locking didn't corrupt it.
			got := binary.LittleEndian.Uint64(p.Mem().Snapshot(region.Offset, 8))
			if got != 1 {
				t.Errorf("counter = %d, want 1 (replace semantics)", got)
			}
		}
		win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLockAccumulateSum uses a shared lock with sum accumulates: the
// element-atomic accumulate makes the total exact even under concurrency.
func TestLockAccumulateSum(t *testing.T) {
	w := newWorld(t, 4)
	const itersPerRank = 25
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		region := p.Alloc(8)
		win, err := r.WinCreate(p.Comm(), region)
		if err != nil {
			t.Errorf("rank %d: WinCreate: %v", p.Rank(), err)
			return
		}
		if p.Rank() != 0 {
			val := p.Alloc(8)
			one := make([]byte, 8)
			binary.LittleEndian.PutUint64(one, 1)
			p.WriteLocal(val, 0, one)
			for i := 0; i < itersPerRank; i++ {
				if err := win.Lock(LockShared, 0); err != nil {
					t.Errorf("rank %d: lock: %v", p.Rank(), err)
				}
				if err := win.Accumulate(2 /* AccSum */, val, 1, datatype.Int64, 0, 0, 1, datatype.Int64); err != nil {
					t.Errorf("rank %d: accumulate: %v", p.Rank(), err)
				}
				if err := win.Unlock(0); err != nil {
					t.Errorf("rank %d: unlock: %v", p.Rank(), err)
				}
			}
		}
		p.Barrier()
		if p.Rank() == 0 {
			got := binary.LittleEndian.Uint64(p.Mem().Snapshot(region.Offset, 8))
			want := uint64(3 * itersPerRank)
			if got != want {
				t.Errorf("counter = %d, want %d", got, want)
			}
		}
		win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEpochLegality checks that RMA calls outside any epoch are rejected.
func TestEpochLegality(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{})
		region := p.Alloc(8)
		win, err := r.WinCreate(p.Comm(), region)
		if err != nil {
			t.Errorf("WinCreate: %v", err)
			return
		}
		src := p.Alloc(8)
		if err := win.Put(src, 8, datatype.Byte, 1-p.Rank(), 0, 8, datatype.Byte); err == nil {
			t.Errorf("rank %d: put outside epoch succeeded, want error", p.Rank())
		}
		p.Barrier()
		win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOverlapDetection verifies the optional checker flags the MPI-2
// "erroneous" pattern: two origins storing to overlapping bytes in one
// epoch.
func TestOverlapDetection(t *testing.T) {
	w := newWorld(t, 3)
	var target *RMA
	err := w.Run(func(p *runtime.Proc) {
		r := Attach(p, Options{DetectOverlap: true})
		if p.Rank() == 0 {
			target = r
		}
		region := p.Alloc(64)
		win, err := r.WinCreate(p.Comm(), region)
		if err != nil {
			t.Errorf("WinCreate: %v", err)
			return
		}
		win.Fence()
		if p.Rank() != 0 {
			src := p.Alloc(32)
			// Both origins write [0,32): overlapping, erroneous in MPI-2.
			if err := win.Put(src, 32, datatype.Byte, 0, 0, 32, datatype.Byte); err != nil {
				t.Errorf("rank %d: put: %v", p.Rank(), err)
			}
		}
		win.Fence()
		win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	if target.OverlapViolations.Value() == 0 {
		t.Error("overlapping concurrent stores not detected")
	}
}
