package mpi2rma

import (
	"fmt"
	"sync"

	"mpi3rma/internal/core"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// Passive-target synchronization (Figure 1c): MPI_Win_lock /
// MPI_Win_unlock. The lock lives at the target rank's window; shared locks
// admit concurrent holders, exclusive locks a single one, FIFO-fair across
// the mix. Unlock first completes the holder's RMA operations at the
// target (the strawman completion probe), then releases — matching MPI-2's
// rule that operations are complete at unlock.

// pendingLock tracks this origin's in-flight lock request.
type pendingLock struct {
	mu   sync.Mutex
	ch   chan struct{}
	at   vtime.Time
	done bool
}

// Lock opens a passive-target access epoch on trank's window memory.
func (w *Win) Lock(typ LockType, trank int) error {
	w.mu.Lock()
	if w.epoch.locked == nil {
		w.epoch.locked = make(map[int]bool)
	}
	if w.epoch.locked[trank] {
		w.mu.Unlock()
		return fmt.Errorf("mpi2rma: Lock(%d) while already holding a lock on that rank: %w", trank, core.ErrEpoch)
	}
	w.mu.Unlock()

	pl := &pendingLock{ch: make(chan struct{})}
	reqID := w.rma.registerLockWait(pl)
	w.sendCtl(kWLockReq, trank, uint64(typ), reqID)
	<-pl.ch
	w.rma.proc.NIC().CPU().AdvanceTo(pl.at)

	w.mu.Lock()
	w.epoch.locked[trank] = true
	w.mu.Unlock()
	w.rma.WinLocks.Inc()
	return nil
}

// Unlock closes the passive-target epoch on trank: all RMA operations
// issued under the lock are applied at the target before the lock is
// released.
func (w *Win) Unlock(trank int) error {
	w.mu.Lock()
	if !w.epoch.locked[trank] {
		w.mu.Unlock()
		return fmt.Errorf("mpi2rma: Unlock(%d) without holding the lock: %w", trank, core.ErrEpoch)
	}
	delete(w.epoch.locked, trank)
	w.mu.Unlock()
	if err := w.rma.eng.Complete(w.comm, trank); err != nil {
		return err
	}
	w.sendCtl(kWLockRel, trank, 0, 0)
	return nil
}

// registerLockWait stashes a pending lock under a fresh request id.
func (r *RMA) registerLockWait(pl *pendingLock) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lockWaits == nil {
		r.lockWaits = make(map[uint64]*pendingLock)
	}
	r.lockReqSeq++
	r.lockWaits[r.lockReqSeq] = pl
	return r.lockReqSeq
}

// takeLockWait removes and returns a pending lock by id.
func (r *RMA) takeLockWait(id uint64) *pendingLock {
	r.mu.Lock()
	defer r.mu.Unlock()
	pl := r.lockWaits[id]
	delete(r.lockWaits, id)
	return pl
}

// grantable reports whether a request can be granted given current
// holders: shared joins shared; anything else requires the window free.
func (w *Win) grantable(typ LockType) bool {
	if len(w.lockHolders) == 0 {
		return true
	}
	if typ != LockShared {
		return false
	}
	for _, t := range w.lockHolders {
		if t != LockShared {
			return false
		}
	}
	return true
}

// grantLocked records the holder and sends the grant. Caller holds w.mu.
func (w *Win) grantLocked(origin int, typ LockType, reqID uint64, at vtime.Time) {
	w.lockHolders[origin] = typ
	grantAt := w.lockLane.AdvanceTo(at)
	w.mu.Unlock()
	w.sendCtlAt(kWLockGnt, origin, uint64(typ), reqID, grantAt)
	w.mu.Lock()
}

// sendCtlAt is sendCtl with an explicit virtual send time (grants are
// issued by the agent at the grant time, not the user clock). A failed
// send can only mean the world is shutting down; the grant is dropped
// rather than crashing the agent goroutine.
func (w *Win) sendCtlAt(kind uint8, commDst int, arg uint64, reqID uint64, at vtime.Time) {
	p := w.rma.proc
	m := &simnet.Message{Dst: w.comm.WorldRank(commDst), Kind: kind}
	m.Hdr[hWin] = w.id
	m.Hdr[hArg] = arg
	m.Hdr[hReq] = reqID
	if _, err := p.NIC().Send(at, m); err != nil {
		p.NIC().BadReq.Inc()
	}
}

// handleLockReq grants or queues a window lock request. Runs on the NIC
// agent goroutine.
func (r *RMA) handleLockReq(m *simnet.Message, at vtime.Time) {
	w := r.lookup(m.Hdr[hWin])
	if w == nil {
		r.proc.NIC().BadReq.Inc()
		return
	}
	origin := w.commRankOfWorld(m.Src)
	typ := LockType(m.Hdr[hArg])
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.grantable(typ) && len(w.lockQueue) == 0 {
		w.grantLocked(origin, typ, m.Hdr[hReq], at)
		return
	}
	w.lockQueue = append(w.lockQueue, lockWaiter{origin: origin, typ: typ, reqID: m.Hdr[hReq], at: at})
}

// handleLockGrant completes the origin's pending Lock.
func (r *RMA) handleLockGrant(m *simnet.Message, at vtime.Time) {
	pl := r.takeLockWait(m.Hdr[hReq])
	if pl == nil {
		r.proc.NIC().BadReq.Inc()
		return
	}
	pl.mu.Lock()
	if !pl.done {
		pl.done = true
		pl.at = at
		close(pl.ch)
	}
	pl.mu.Unlock()
}

// handleLockRel releases a holder and grants as many queued requests as
// compatibility allows (a released exclusive may admit a run of shared
// waiters).
func (r *RMA) handleLockRel(m *simnet.Message, at vtime.Time) {
	w := r.lookup(m.Hdr[hWin])
	if w == nil {
		r.proc.NIC().BadReq.Inc()
		return
	}
	origin := w.commRankOfWorld(m.Src)
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, held := w.lockHolders[origin]; !held {
		r.proc.NIC().BadReq.Inc()
		return
	}
	delete(w.lockHolders, origin)
	w.lockLane.AdvanceTo(at)
	for len(w.lockQueue) > 0 {
		next := w.lockQueue[0]
		if !w.grantable(next.typ) {
			break
		}
		w.lockQueue = w.lockQueue[1:]
		w.grantLocked(next.origin, next.typ, next.reqID, vtime.Later(at, next.at))
	}
}
