package mpi2rma

import (
	"fmt"

	"mpi3rma/internal/core"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// Fence closes the previous fence epoch (completing all RMA issued from
// and into this rank's window) and opens a new one — Figure 1a. It is
// collective over the window's communicator: every operation issued by any
// member before its Fence is applied everywhere before any member's Fence
// returns.
func (w *Win) Fence() error {
	w.mu.Lock()
	if w.freed {
		w.mu.Unlock()
		return fmt.Errorf("mpi2rma: Fence on freed window: %w", core.ErrBadHandle)
	}
	if w.epoch.accessGroup != nil || w.epoch.postGroup != nil || len(w.epoch.locked) > 0 {
		w.mu.Unlock()
		return fmt.Errorf("mpi2rma: Fence while a PSCW or lock epoch is open: %w", core.ErrEpoch)
	}
	w.mu.Unlock()
	// Complete all of this rank's outstanding accesses, then barrier so
	// every member's accesses are complete before anyone proceeds.
	if err := w.rma.eng.CompleteCollective(w.comm); err != nil {
		return err
	}
	w.resetOverlapEpoch()
	if w.rma.opts.DetectOverlap {
		// CompleteCollective's barrier already released the other members:
		// a fast origin could have a new-epoch store applied here before
		// the reset above ran, and the reset would wipe it. A second
		// barrier keeps every member out of the new epoch until every
		// ledger is clear; only paid when overlap detection is on.
		w.comm.Barrier()
	}
	w.rma.Fences.Inc()
	w.mu.Lock()
	w.epoch.fenceOpen = true
	w.mu.Unlock()
	return nil
}

// Post opens an exposure epoch for the origins in group (comm ranks) —
// the target half of Figure 1b. It does not block.
func (w *Win) Post(group []int) error {
	w.mu.Lock()
	if w.epoch.postGroup != nil {
		w.mu.Unlock()
		return fmt.Errorf("mpi2rma: Post while an exposure epoch is already open: %w", core.ErrEpoch)
	}
	pg := make(map[int]bool, len(group))
	for _, g := range group {
		pg[g] = true
	}
	w.epoch.postGroup = pg
	w.donesSeen = make(map[int]bool)
	w.mu.Unlock()
	for _, origin := range group {
		w.sendCtl(kPost, origin, 0, 0)
	}
	return nil
}

// Start opens an access epoch toward the targets in group (comm ranks) —
// the origin half of Figure 1b. It blocks until every target has posted.
func (w *Win) Start(group []int) error {
	w.mu.Lock()
	if w.epoch.accessGroup != nil {
		w.mu.Unlock()
		return fmt.Errorf("mpi2rma: Start while an access epoch is already open: %w", core.ErrEpoch)
	}
	ag := make(map[int]bool, len(group))
	for _, g := range group {
		ag[g] = true
	}
	w.epoch.accessGroup = ag
	for {
		all := true
		for _, g := range group {
			if !w.postsSeen[g] {
				all = false
				break
			}
		}
		if all {
			break
		}
		w.cond.Wait()
	}
	for _, g := range group {
		delete(w.postsSeen, g)
	}
	at := w.noticeAt
	w.mu.Unlock()
	w.rma.PSCWEpochs.Inc()
	w.rma.proc.NIC().CPU().AdvanceTo(at)
	return nil
}

// Complete closes the access epoch: all RMA to the group is applied at the
// targets, then each target is notified so its Wait can return.
func (w *Win) Complete() error {
	w.mu.Lock()
	group := w.epoch.accessGroup
	if group == nil {
		w.mu.Unlock()
		return fmt.Errorf("mpi2rma: Complete without a matching Start: %w", core.ErrEpoch)
	}
	w.epoch.accessGroup = nil
	w.mu.Unlock()
	for g := range group {
		if err := w.rma.eng.Complete(w.comm, g); err != nil {
			return err
		}
		w.sendCtl(kDone, g, 0, 0)
	}
	return nil
}

// Wait closes the exposure epoch: it blocks until every origin in the
// posted group has called Complete (whose probe exchange already
// guarantees their operations are applied here).
func (w *Win) Wait() error {
	w.mu.Lock()
	group := w.epoch.postGroup
	if group == nil {
		w.mu.Unlock()
		return fmt.Errorf("mpi2rma: Wait without a matching Post: %w", core.ErrEpoch)
	}
	for {
		all := true
		for g := range group {
			if !w.donesSeen[g] {
				all = false
				break
			}
		}
		if all {
			break
		}
		w.cond.Wait()
	}
	w.epoch.postGroup = nil
	w.donesSeen = make(map[int]bool)
	at := w.noticeAt
	w.mu.Unlock()
	w.rma.proc.NIC().CPU().AdvanceTo(at)
	w.resetOverlapEpoch()
	return nil
}

// Test is the nonblocking Wait: it reports whether the exposure epoch
// could be closed, closing it if so.
func (w *Win) Test() (bool, error) {
	w.mu.Lock()
	group := w.epoch.postGroup
	if group == nil {
		w.mu.Unlock()
		return false, fmt.Errorf("mpi2rma: Test without a matching Post: %w", core.ErrEpoch)
	}
	for g := range group {
		if !w.donesSeen[g] {
			w.mu.Unlock()
			return false, nil
		}
	}
	w.epoch.postGroup = nil
	w.donesSeen = make(map[int]bool)
	at := w.noticeAt
	w.mu.Unlock()
	w.rma.proc.NIC().CPU().AdvanceTo(at)
	w.resetOverlapEpoch()
	return true, nil
}

// handlePost records a target's exposure-epoch notice.
func (r *RMA) handlePost(m *simnet.Message, at vtime.Time) {
	w := r.lookup(m.Hdr[hWin])
	if w == nil {
		r.proc.NIC().BadReq.Inc()
		return
	}
	src := w.commRankOfWorld(m.Src)
	w.mu.Lock()
	w.postsSeen[src] = true
	w.noticeAt = vtime.Later(w.noticeAt, at)
	w.mu.Unlock()
	w.cond.Broadcast()
}

// handleDone records an origin's access-epoch-closed notice.
func (r *RMA) handleDone(m *simnet.Message, at vtime.Time) {
	w := r.lookup(m.Hdr[hWin])
	if w == nil {
		r.proc.NIC().BadReq.Inc()
		return
	}
	src := w.commRankOfWorld(m.Src)
	w.mu.Lock()
	w.donesSeen[src] = true
	w.noticeAt = vtime.Later(w.noticeAt, at)
	w.mu.Unlock()
	w.cond.Broadcast()
}
