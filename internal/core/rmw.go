package core

import (
	"encoding/binary"
	"fmt"

	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// Read-modify-write operations (paper Section V: "Two kinds of
// read-modify-write operations, one for conditional RMW and other for
// unconditional RMW are being considered"). FetchAdd is the unconditional
// form, CompareSwap the conditional one. Both operate on a single int64 at
// a byte displacement in the target memory, are always atomic (routed
// through the target's serializer mechanism regardless of AttrAtomic), and
// complete when the old value returns to the origin.

// FetchAdd atomically adds delta to the int64 at tm+tdisp and returns the
// previous value. Always blocking: RMW semantics require the old value.
func (e *Engine) FetchAdd(tm TargetMem, tdisp int, delta int64, trank int, comm *runtime.Comm, attrs Attr) (int64, error) {
	var operand [8]byte
	binary.LittleEndian.PutUint64(operand[:], uint64(delta))
	return e.rmw(rmwFetchAdd, tm, tdisp, operand[:], trank, comm, attrs)
}

// CompareSwap atomically compares the int64 at tm+tdisp with compare and,
// if equal, stores swap. It returns the previous value (the swap succeeded
// iff the return value equals compare).
func (e *Engine) CompareSwap(tm TargetMem, tdisp int, compare, swap int64, trank int, comm *runtime.Comm, attrs Attr) (int64, error) {
	var operand [16]byte
	binary.LittleEndian.PutUint64(operand[0:], uint64(compare))
	binary.LittleEndian.PutUint64(operand[8:], uint64(swap))
	return e.rmw(rmwCompSwap, tm, tdisp, operand[:], trank, comm, attrs)
}

// FetchWord atomically reads the int64 at tm+tdisp — the degenerate RMW
// that modifies nothing. It shares the serializer path with FetchAdd and
// CompareSwap (the read cannot observe a torn concurrent update) but,
// because the target memory is untouched, it skips replication and is the
// cheap primitive for polling remote lock words and sequence numbers.
func (e *Engine) FetchWord(tm TargetMem, tdisp int, trank int, comm *runtime.Comm, attrs Attr) (int64, error) {
	return e.rmw(rmwFetch, tm, tdisp, nil, trank, comm, attrs)
}

func (e *Engine) rmw(subop int, tm TargetMem, tdisp int, operand []byte, trank int, comm *runtime.Comm, attrs Attr) (int64, error) {
	if !tm.Valid() {
		return 0, fmt.Errorf("core: invalid target_mem descriptor: %w", ErrBadHandle)
	}
	// Spare ranks live outside the communicator: a descriptor re-targeted
	// at a dead rank's successor (tm.Owner = spare) names it by world rank
	// directly, mirroring validateXfer.
	w := trank
	if trank >= 0 && trank < comm.Size() {
		w = comm.WorldRank(trank)
	} else if wd := e.proc.World(); trank < 0 || wd == nil || trank >= wd.TotalRanks() {
		return 0, fmt.Errorf("core: target rank %d out of range: %w", trank, ErrBadHandle)
	}
	if w != tm.Owner {
		return 0, fmt.Errorf("core: target rank %d resolves to world rank %d, but target_mem is owned by rank %d: %w", trank, w, tm.Owner, ErrBadHandle)
	}
	if tdisp < 0 || tdisp+8 > tm.Size {
		return 0, fmt.Errorf("core: RMW at [%d,%d) exceeds target_mem of %d bytes: %w", tdisp, tdisp+8, tm.Size, ErrBounds)
	}
	if err := e.stickyFor(tm.Owner); err != nil {
		return 0, fmt.Errorf("core: RMW: %w", err)
	}
	attrs = e.effectiveAttrs(comm, attrs) | AttrAtomic
	target := tm.Owner
	e.Progress()
	e.flushTarget(target) // an RMW must not overtake ring-held operations
	if err := e.maybeFence(comm, target); err != nil {
		return 0, err
	}

	var seq, epoch uint64
	e.mu.Lock()
	ts := e.targetLocked(target)
	epoch = ts.chkEpoch
	ts.sent++
	ts.singleton++
	ts.willConfirm++ // the old-value reply carries the delivery counter
	if attrs&AttrOrdering != 0 && !e.proc.NIC().Endpoint().Ordered() {
		ts.orderSeq++
		seq = ts.orderSeq
	}
	e.mu.Unlock()
	e.OpsIssued.Inc()
	e.SingletonOps.Inc()

	req := e.newRequest(target)
	if e.lat.Load() != nil {
		req.latKind = latRMW
		req.issuedAt = e.proc.Now()
	}
	m := newMsg(target, kRMW)
	m.Hdr[hHandle] = tm.Handle
	m.Hdr[hDisp] = uint64(tdisp)
	m.Hdr[hMeta] = uint64(attrs)&0xffff | uint64(subop)<<24 | (epoch&0xffffffff)<<32
	m.Hdr[hReq] = req.id
	m.Hdr[hSeq] = seq
	m.Payload = operand

	if e.targetUsesCoarseLock() {
		if err := e.acquireLock(target); err != nil {
			return 0, err
		}
		m.Flags |= flagUnlockAfter
	}
	if _, err := e.proc.NIC().Send(e.proc.Now(), m); err != nil {
		return 0, err
	}
	e.proc.NIC().CPU().AdvanceTo(m.SentAt)
	if t := e.tr(); t != nil {
		t.RecordOpf(m.SentAt, "issue", target, req.id, "rmw subop=%d arrive=%d", subop, m.ArriveAt)
	}
	req.Wait()
	if err := req.Err(); err != nil {
		return 0, fmt.Errorf("core: RMW: %w", err)
	}
	val := req.Value()
	if len(val) != 8 {
		return 0, fmt.Errorf("core: RMW failed at the target (unexposed or out-of-range memory): %w", ErrBadHandle)
	}
	return int64(binary.LittleEndian.Uint64(val)), nil
}

// handleRMW applies a fetch-add or compare-and-swap at the target and
// replies with the old value.
func (e *Engine) handleRMW(m *simnet.Message, at vtime.Time) {
	attrs := Attr(m.Hdr[hMeta] & 0xffff)
	subop := int(m.Hdr[hMeta] >> 24 & 0xff)
	e.gateOrdered(m.Src, m.Hdr[hSeq], at, func(at vtime.Time) {
		exp := e.lookupExposure(m.Hdr[hHandle])
		disp := int(m.Hdr[hDisp])
		bad := exp == nil || !exp.region.Contains(disp, 8) ||
			(subop == rmwFetchAdd && len(m.Payload) != 8) ||
			(subop == rmwCompSwap && len(m.Payload) != 16) ||
			(subop == rmwFetch && len(m.Payload) != 0)
		e.scheduleApply(m.Src, at, 8, true, func(end vtime.Time) {
			var old [8]byte
			ok := !bad
			if ok {
				order := e.proc.ByteOrder()
				err := e.proc.Mem().Update(exp.region.Offset+disp, 8, func(cur []byte) {
					prev := loadElem(cur, 8, order)
					binary.LittleEndian.PutUint64(old[:], prev)
					switch subop {
					case rmwFetchAdd:
						delta := binary.LittleEndian.Uint64(m.Payload)
						storeElem(cur, 8, order, prev+delta)
					case rmwCompSwap:
						compare := binary.LittleEndian.Uint64(m.Payload[0:])
						swap := binary.LittleEndian.Uint64(m.Payload[8:])
						if prev == compare {
							storeElem(cur, 8, order, swap)
						}
					case rmwFetch:
						// Pure read: the old value is the whole result.
					default:
						ok = false
					}
				})
				if err != nil {
					ok = false
				}
			}
			if c := e.ck(); c != nil && exp != nil {
				c.rec.RecordAccess(Access{
					Origin: m.Src, Target: e.proc.Rank(), Handle: m.Hdr[hHandle],
					Disp: disp, Len: 8,
					Kind: AccessRMW, Atomic: true, Ordered: attrs&AttrOrdering != 0,
					OpID: m.Hdr[hReq], Member: -1, Epoch: m.Hdr[hMeta] >> 32, At: end,
				})
			}
			mutated := ok && subop != rmwFetch
			fin := func(end vtime.Time) {
				count := e.finishApply(m, attrs&^(AttrRemoteComplete|AttrNotify), true, end, e.applyCost(8))
				reply := newMsg(m.Src, kRMWReply)
				reply.Hdr[hReq] = m.Hdr[hReq]
				reply.Hdr[hCount] = uint64(count)
				if ok {
					reply.Payload = append([]byte(nil), old[:]...)
				} else {
					e.proc.NIC().BadReq.Inc()
				}
				e.sendReply(end, reply)
			}
			if mutated {
				// The old-value reply must not outrun the replica: an RMW
				// whose origin saw the old value is durable at the buddy
				// (pass-through when unreplicated).
				e.replicate(m.Hdr[hHandle], exp, disp, 8, end, fin)
			} else {
				fin(end)
			}
		})
	})
}

// handleRMWReply completes a pending RMW at the origin with the old value.
func (e *Engine) handleRMWReply(m *simnet.Message, at vtime.Time) {
	e.noteConfirmed(m.Src, int64(m.Hdr[hCount]), at)
	if req := e.lookupRequest(m.Hdr[hReq]); req != nil {
		req.complete(at, m.Payload)
	}
}
