package core

import (
	"fmt"

	"mpi3rma/internal/stats"
	"mpi3rma/internal/telemetry"
)

// Request latency kinds: which latency.* histogram a request's completion
// observes. Zero means "do not observe" — the fields are only populated
// when telemetry is enabled, keeping the disabled hot path allocation- and
// branch-cheap.
const (
	latNone uint8 = iota
	latPut
	latGet
	latAcc
	latRMW
)

// latencyHists caches the registry's per-op-kind latency histograms
// (virtual-time nanoseconds from issue to request completion) so the
// completion path does one atomic load instead of a registry lookup.
type latencyHists struct {
	put, get, acc, rmw, complete *stats.Histogram
}

func (l *latencyHists) byKind(k uint8) *stats.Histogram {
	switch k {
	case latPut:
		return l.put
	case latGet:
		return l.get
	case latAcc:
		return l.acc
	case latRMW:
		return l.rmw
	}
	return nil
}

// latKindOf maps an issue-path operation to its latency histogram kind.
func latKindOf(op OpType) uint8 {
	switch op {
	case OpPut:
		return latPut
	case OpGet:
		return latGet
	case OpAccumulate:
		return latAcc
	}
	return latNone
}

// EnableTelemetry installs a metrics registry on the engine and registers
// every engine, NIC, and network counter under its stable dotted name
// (see package telemetry for the naming scheme). The registry aliases the
// live counters the engine already maintains, so enabling telemetry adds
// no accounting work to the hot path; only the latency histograms are new,
// and they are observed only while a registry is installed.
//
// Passing nil creates a fresh registry. The first call wins and later
// calls return the installed registry unchanged (like Attach), so layers
// above can share one registry per rank.
func (e *Engine) EnableTelemetry(reg *telemetry.Registry) *telemetry.Registry {
	e.hookMu.Lock()
	defer e.hookMu.Unlock()
	if cur := e.tel.Load(); cur != nil {
		return cur
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	reg.Register("ops.issued", &e.OpsIssued)
	reg.Register("ops.applied", &e.OpsApplied)
	reg.Register("acks.sent", &e.AcksSent)
	reg.Register("batch.flushes", &e.Batches)
	reg.Register("batch.ops_coalesced", &e.BatchedOps)
	reg.Register("batch.singleton_ops", &e.SingletonOps)
	reg.Register("complete.calls", &e.CompleteCalls)
	reg.Register("complete.fastpath_hits", &e.FastPaths)
	reg.Register("complete.probe_fallbacks", &e.ProbeFallbacks)
	reg.Register("complete.probes_received", &e.Probes)
	reg.Register("complete.notifies_received", &e.Notifies)
	reg.Register("order.fences", &e.FenceStalls)
	reg.Register("order.held_ops", &e.HeldOps)
	reg.Register("lock.grants", &e.lock.Grants)
	reg.Register("lock.contended", &e.lock.Contended)

	if p := e.shardPool; p != nil {
		// Per-shard cells of the sharded apply engine. The pool's task
		// counts are the per-shard watermarks: sum(shard.tasks.*) plus
		// shard.bypass reconciles against ops.applied.
		reg.Register("shard.bypass", &e.ShardBypass)
		reg.Register("shard.designated", &e.ShardDesignated)
		reg.Register("shard.panics", &p.Panics)
		for i := 0; i < p.Shards(); i++ {
			st := p.Stats(i)
			reg.RegisterGauge(fmt.Sprintf("shard.occupancy.%d", i), &st.Depth)
			reg.Register(fmt.Sprintf("shard.tasks.%d", i), &st.Tasks)
			reg.Register(fmt.Sprintf("shard.steals.%d", i), &st.Steals)
			reg.Register(fmt.Sprintf("shard.overflow.%d", i), &st.Overflow)
			reg.RegisterHistogram(fmt.Sprintf("shard.apply_latency.%d", i), &st.ApplyLatency)
		}
	}

	nic := e.proc.NIC()
	reg.Register("nic.msgs", &nic.Delivered)
	reg.Register("nic.bytes", &nic.DeliveredBytes)
	reg.Register("nic.parked", &nic.Parked)
	reg.Register("nic.soft_acks", &nic.SoftAcks)
	reg.Register("nic.bad_req", &nic.BadReq)

	// The network counters are world-global (every rank's endpoint shares
	// one Network); exporters summing per-rank snapshots must count net.*
	// once, not per rank.
	net := nic.Endpoint().Network()
	reg.Register("net.msgs", &net.Msgs)
	reg.Register("net.logical_ops", &net.LogicalOps)
	reg.Register("net.bytes", &net.Bytes)
	reg.Register("net.retries", &net.Retries)
	reg.Register("net.retransmit_bytes", &net.RetransmitBytes)
	reg.Register("net.dup_dropped", &net.DupDropped)
	reg.Register("net.corrupt_rejected", &net.CorruptRejected)
	reg.Register("net.faults_injected.dropped", &net.FaultsDropped)
	reg.Register("net.faults_injected.duplicated", &net.FaultsDuplicated)
	reg.Register("net.faults_injected.delayed", &net.FaultsDelayed)
	reg.Register("net.faults_injected.corrupted", &net.FaultsCorrupted)

	if q := e.evq.Load(); q != nil {
		// Events enabled before telemetry: register the queue's cells now
		// (the reverse order registers from EnableEvents).
		registerEventMetrics(reg, q)
	}

	e.lat.Store(&latencyHists{
		put:      reg.Histogram("latency.put"),
		get:      reg.Histogram("latency.get"),
		acc:      reg.Histogram("latency.accumulate"),
		rmw:      reg.Histogram("latency.rmw"),
		complete: reg.Histogram("latency.complete"),
	})
	e.tel.Store(reg)
	return reg
}

// Metrics returns the engine's metrics registry, or nil before
// EnableTelemetry.
func (e *Engine) Metrics() *telemetry.Registry {
	return e.tel.Load()
}

// PairCounters is one (origin, target) pair's origin-side accounting, for
// counter reconciliation: Sent = Batched + Singleton always, and after a
// successful Complete the target's confirmation counter has caught up
// (Confirmed == Sent).
type PairCounters struct {
	// Sent counts operations issued to the target.
	Sent int64
	// Batched counts the subset that rode an aggregated message.
	Batched int64
	// Singleton counts the subset that paid its own wire message.
	Singleton int64
	// WillConfirm counts operations whose application reports a delivery
	// counter.
	WillConfirm int64
	// Confirmed is the highest cumulative applied count the target has
	// reported back.
	Confirmed int64
}

// PairCounters returns this rank's origin-side accounting toward a world
// rank.
func (e *Engine) PairCounters(world int) PairCounters {
	var pc PairCounters
	e.mu.Lock()
	if ts := e.targets[world]; ts != nil {
		pc.Sent = ts.sent
		pc.Batched = ts.batched
		pc.Singleton = ts.singleton
		pc.WillConfirm = ts.willConfirm
	}
	e.mu.Unlock()
	e.cmplMu.Lock()
	pc.Confirmed = e.confirmed[world]
	e.cmplMu.Unlock()
	return pc
}

// AppliedFrom returns this rank's target-side count of operations applied
// from a world rank — the delivery counter the notified-completion
// protocol reports back to that origin.
func (e *Engine) AppliedFrom(origin int) int64 {
	return e.appliedCount(origin)
}
