package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
)

// Event-driven chaos: the PR 4 fault matrix re-observed through the push
// surface. The blocking chaos tests prove Complete survives the faults;
// these prove the event surface does — every request observed via OnDone
// and Select gets exactly one terminal event, with a nil error under
// recoverable plans (the relay absorbs the faults) and a wrapped
// ErrLinkFailed/ErrApplyFault when the failure is sticky.

// runSevenWriterEvents is the seven-writer contention workload of
// faultchaos_test.go with every blocking Complete replaced by the event
// surface: requests are issued remote-complete + notified, observed with
// OnDone callbacks, reaped through an any-of Select over the outstanding
// requests, and rounds are separated by Select(OnQuiescent(target))
// instead of Complete. Returns the target's final bytes, which must be
// byte-identical to the blocking variant's.
func runSevenWriterEvents(t *testing.T, plan *simnet.FaultPlan) []byte {
	t.Helper()
	w := newWorld(t, runtime.Config{Ranks: fcWriters + 1, Seed: 7, Faults: plan})
	size := 2 * fcWriters * fcSlot
	final := make([]byte, size)
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(size)
			enc := tm.Encode()
			for r := 1; r <= fcWriters; r++ {
				p.Send(r, 9999, enc)
			}
			p.Barrier()
			copy(final, p.Mem().Snapshot(region.Offset, size))
			return
		}
		enc, _ := p.Recv(0, 9999)
		tm, err := DecodeTargetMem(enc)
		if err != nil {
			t.Errorf("decode: %v", err)
			panic("eventchaos: no descriptor")
		}
		putSlot := (p.Rank() - 1) * fcSlot
		accSlot := fcWriters*fcSlot + putSlot
		scratch := p.Alloc(fcSlot)
		var issued, terminal atomic.Int64
		for round := 0; round < fcRounds; round++ {
			pattern := bytes.Repeat([]byte{byte(16*p.Rank() + round)}, fcSlot)
			p.WriteLocal(scratch, 0, pattern)
			rput, err := e.Put(scratch, fcSlot, datatype.Byte, tm, putSlot, fcSlot, datatype.Byte, 0, comm, AttrRemoteComplete|AttrNotify)
			if err != nil {
				t.Errorf("rank %d round %d put: %v", p.Rank(), round, err)
				panic("eventchaos: put failed")
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(1000*p.Rank()+round))
			p.WriteLocal(scratch, 0, b[:])
			racc, err := e.Accumulate(AccSum, scratch, 1, datatype.Int64, tm, accSlot, 1, datatype.Int64, 0, comm, AttrAtomic|AttrRemoteComplete|AttrNotify)
			if err != nil {
				t.Errorf("rank %d round %d acc: %v", p.Rank(), round, err)
				panic("eventchaos: acc failed")
			}
			for _, r := range []*Request{rput, racc} {
				issued.Add(1)
				rank, rd := p.Rank(), round
				r.OnDone(func(err error) {
					if err != nil {
						t.Errorf("rank %d round %d request failed: %v", rank, rd, err)
					}
					terminal.Add(1)
				})
			}
			// Reap the round's requests any-of-first, the pipelined idiom.
			pending := []*Request{rput, racc}
			for len(pending) > 0 {
				cases := make([]SelectCase, len(pending))
				for i, r := range pending {
					cases[i] = OnRequest(r)
				}
				idx, ev, err := e.Select(comm, cases...)
				if err != nil {
					t.Errorf("rank %d round %d select: %v", p.Rank(), round, err)
					panic("eventchaos: select failed")
				}
				if ev.Kind != EvRequestDone || ev.Err != nil {
					t.Errorf("rank %d round %d: event %v err %v, want clean request-done", p.Rank(), round, ev.Kind, ev.Err)
					panic("eventchaos: bad event")
				}
				pending = append(pending[:idx], pending[idx+1:]...)
			}
			// Round separation: the put slot may only be overwritten after
			// the target has applied everything issued so far — what
			// Complete(0) established in the blocking variant, and what
			// quiescence (confirmed >= sent, all ops notified) establishes
			// here.
			if _, ev, err := e.Select(comm, OnQuiescent(0)); err != nil || ev.Kind != EvQuiescent {
				t.Errorf("rank %d round %d quiescence: kind %v err %v", p.Rank(), round, ev.Kind, err)
				panic("eventchaos: quiescence failed")
			}
		}
		if got, want := terminal.Load(), issued.Load(); got != want {
			t.Errorf("rank %d: %d terminal callbacks for %d requests, want exactly one each", p.Rank(), got, want)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	return final
}

// TestEventChaosSevenWriter asserts the event-driven seven-writer run
// converges byte-exactly with the blocking fault-free baseline across the
// whole fault matrix, with every request observed exactly once.
func TestEventChaosSevenWriter(t *testing.T) {
	baseline := runSevenWriter(t, nil, Options{})
	if got := runSevenWriterEvents(t, nil); !bytes.Equal(got, baseline) {
		t.Fatalf("fault-free event-driven run diverged from blocking bytes:\n got %x\nwant %x", got, baseline)
	}
	for _, tc := range chaosPlans() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := runSevenWriterEvents(t, tc.plan)
			if !bytes.Equal(got, baseline) {
				t.Fatalf("faulted event-driven run diverged from blocking fault-free bytes:\n got %x\nwant %x", got, baseline)
			}
		})
	}
}

// TestEventChaosLinkFailureTerminal: when a link drops everything forever
// and the retry budget runs out, every in-flight request observed through
// OnDone gets exactly one terminal event carrying the wrapped
// ErrLinkFailed, Select over the victims drains them all as EvRequestDone
// with the error, counter arms fail over to EvFault, and the completion
// queue publishes the fault — all within bounded time.
func TestEventChaosLinkFailureTerminal(t *testing.T) {
	const inflight = 6
	w := newWorld(t, runtime.Config{
		Ranks: 2,
		Faults: &simnet.FaultPlan{
			Seed:  41,
			Links: map[simnet.LinkKey]simnet.LinkFaults{{Src: 0, Dst: 1}: {Drop: 1}},
		},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := w.Run(func(p *runtime.Proc) {
			e := Attach(p, Options{})
			comm := p.Comm()
			if p.Rank() == 1 {
				tm, _ := e.ExposeNew(64)
				p.Send(0, 9999, tm.Encode())
				return
			}
			q := e.EnableEvents(64)
			enc, _ := p.Recv(1, 9999)
			tm, err := DecodeTargetMem(enc)
			if err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			scratch := p.Alloc(8)
			var mu sync.Mutex
			fired := make(map[uint64]int)
			fireErrs := make(map[uint64]error)
			var victims []*Request
			for i := 0; i < inflight; i++ {
				r, err := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 1, comm, AttrRemoteComplete)
				if err != nil {
					// The budget may exhaust mid-loop; later issues fail
					// synchronously, which is the documented fast-fail.
					if !errors.Is(err, ErrLinkFailed) {
						t.Errorf("put %d: %v", i, err)
					}
					continue
				}
				id := r.ID()
				r.OnDone(func(err error) {
					mu.Lock()
					fired[id]++
					fireErrs[id] = err
					mu.Unlock()
				})
				victims = append(victims, r)
			}
			// Reap every victim through Select: each must surface as
			// EvRequestDone carrying the wrapped link failure.
			pending := append([]*Request(nil), victims...)
			for len(pending) > 0 {
				cases := make([]SelectCase, len(pending))
				for i, r := range pending {
					cases[i] = OnRequest(r)
				}
				idx, ev, err := e.Select(comm, cases...)
				if err != nil {
					t.Errorf("select: %v", err)
					return
				}
				if ev.Kind != EvRequestDone || !errors.Is(ev.Err, ErrLinkFailed) {
					t.Errorf("victim event = kind %v err %v, want request-done with wrapped ErrLinkFailed", ev.Kind, ev.Err)
				}
				pending = append(pending[:idx], pending[idx+1:]...)
			}
			mu.Lock()
			for _, r := range victims {
				if n := fired[r.ID()]; n != 1 {
					t.Errorf("request %d: %d terminal callbacks, want exactly 1", r.ID(), n)
				}
				if err := fireErrs[r.ID()]; !errors.Is(err, ErrLinkFailed) {
					t.Errorf("request %d terminal error = %v, want wrapped ErrLinkFailed", r.ID(), err)
				}
			}
			mu.Unlock()
			// A counter arm on the dead target fails over to EvFault
			// rather than hanging.
			if _, ev, err := e.Select(comm, OnConfirmed(1, inflight)); err != nil {
				t.Errorf("select(confirmed): %v", err)
			} else if ev.Kind != EvFault || !errors.Is(ev.Err, ErrLinkFailed) {
				t.Errorf("counter arm = kind %v err %v, want fault with wrapped ErrLinkFailed", ev.Kind, ev.Err)
			}
			// The queue published the fault event exactly once.
			faults := 0
			for {
				ev, ok := q.Poll()
				if !ok {
					break
				}
				if ev.Kind == EvFault {
					faults++
					if ev.Rank != 1 || !errors.Is(ev.Err, ErrLinkFailed) {
						t.Errorf("fault event = rank %d err %v, want rank 1 wrapped ErrLinkFailed", ev.Rank, ev.Err)
					}
				}
			}
			if faults != 1 {
				t.Errorf("queue published %d fault events, want 1", faults)
			}
		})
		if err != nil {
			t.Errorf("world: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("event-driven link-failure observation hung")
	}
}

// TestEventChaosApplyFaultTerminal: a shard-worker panic poisons the
// engine; every outstanding request gets exactly one OnDone with the
// wrapped ErrApplyFault, armed Select counter cases fail over to EvFault,
// and the queue publishes the engine-wide fault (Rank == AllRanks).
func TestEventChaosApplyFaultTerminal(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 43})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{ApplyShards: 2, ApplyWorkers: 2})
		comm := p.Comm()
		if p.Rank() == 1 {
			tm, _ := e.ExposeNew(64)
			p.Send(0, 9999, tm.Encode())
			p.Barrier()
			return
		}
		q := e.EnableEvents(64)
		enc, _ := p.Recv(1, 9999)
		if _, err := DecodeTargetMem(enc); err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Outstanding requests that will never complete on their own: the
		// poisoned engine must fail them.
		var calls [3]atomic.Int32
		var errs [3]error
		var reqs [3]*Request
		for i := range reqs {
			reqs[i] = e.newRequest(1)
			i := i
			reqs[i].OnDone(func(err error) {
				errs[i] = err
				calls[i].Add(1)
			})
		}
		// An armed Select on a counter that will never move, raced against
		// the fault: it must return EvFault, not hang.
		selDone := make(chan Event, 1)
		go func() {
			_, ev, err := e.Select(comm, OnConfirmed(1, 1000))
			if err != nil {
				t.Errorf("armed select: %v", err)
			}
			selDone <- ev
		}()
		// Poison the engine the way a shard worker does.
		e.onApplyPanic(0, "injected deposit panic")
		if !errors.Is(e.Err(), ErrApplyFault) {
			t.Fatalf("Err = %v, want wrapped ErrApplyFault", e.Err())
		}
		for i := range reqs {
			if n := calls[i].Load(); n != 1 {
				t.Errorf("request %d: %d terminal callbacks, want 1", i, n)
			}
			if !errors.Is(errs[i], ErrApplyFault) {
				t.Errorf("request %d terminal error = %v, want wrapped ErrApplyFault", i, errs[i])
			}
		}
		ev := <-selDone
		if ev.Kind != EvFault || !errors.Is(ev.Err, ErrApplyFault) {
			t.Errorf("armed select event = kind %v err %v, want fault with wrapped ErrApplyFault", ev.Kind, ev.Err)
		}
		// The target-side arm fails over too.
		if _, ev, err := e.Select(comm, OnApplied(1, 1000)); err != nil {
			t.Errorf("select(applied): %v", err)
		} else if ev.Kind != EvFault || !errors.Is(ev.Err, ErrApplyFault) {
			t.Errorf("applied arm = kind %v err %v, want fault with wrapped ErrApplyFault", ev.Kind, ev.Err)
		}
		sawEngineFault := false
		for {
			ev, ok := q.Poll()
			if !ok {
				break
			}
			if ev.Kind == EvFault && ev.Rank == AllRanks && errors.Is(ev.Err, ErrApplyFault) {
				sawEngineFault = true
			}
		}
		if !sawEngineFault {
			t.Error("queue never published the engine-wide apply fault")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}
