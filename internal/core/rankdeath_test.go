package core

import (
	"bytes"
	"errors"
	gort "runtime"
	"sync/atomic"
	"testing"
	"time"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// The rank-death chaos harness (DESIGN.md §14): four compute ranks plus
// one spare, all replicated. Ranks 0, 1 and 3 write round-stamped
// patterns into disjoint slots of every other compute rank's region;
// rank 2 is a pure target. The kill plans blackhole rank 2 mid-run:
// survivors learn of the death only through retry-budget exhaustion
// (promoted to ErrRankFailed by the membership service), await the
// buddy's rebuild onto the spare, re-point the unchanged descriptor at
// the successor, and finish the remaining rounds there. The final bytes
// of every region — the rebuilt one read back from the spare — must
// equal the fault-free run's, byte for byte, under every plan of the
// seeded fault matrix (seeds 1001-1003, see faultchaos_test.go).
//
// The victim's deliberate buddy topology exercises every recovery role
// at once: rank 3 is the victim's buddy (promoter), rank 1 has the
// victim as ITS buddy (orphan: deferred completions flushed, degraded,
// then re-synced to the spare), and the spare resumes replicating to
// the promoter after the rebuild.

const (
	rdCompute = 4
	rdVictim  = 2
	rdSlot    = 8
	rdRounds  = 12
	// rdKillAt lands after exposure and descriptor exchange (first
	// microseconds) but well inside the write rounds.
	rdKillAt = vtime.Time(15 * time.Microsecond)

	rdTagDesc  = 8801
	rdTagDone  = 8802
	rdTagFin   = 8803
	rdTagReady = 8804
)

// rdWriters are the compute ranks that issue operations.
var rdWriters = []int{0, 1, 3}

// rdSlotOf maps a writer to its slot index within every region.
func rdSlotOf(writer int) int {
	for i, w := range rdWriters {
		if w == writer {
			return i
		}
	}
	panic("rankdeath: not a writer")
}

// rdKillPlans is the PR-4 fault matrix with a rank kill added to each
// plan: the same seeds, drops, dups, corruption and delays, plus rank 2
// crashing at rdKillAt and never restarting.
func rdKillPlans() []struct {
	name string
	plan *simnet.FaultPlan
} {
	base := chaosPlans()
	out := make([]struct {
		name string
		plan *simnet.FaultPlan
	}, 0, len(base))
	for _, tc := range base {
		plan := *tc.plan
		plan.RankKills = []simnet.RankKill{{Rank: rdVictim, At: rdKillAt}}
		out = append(out, struct {
			name string
			plan *simnet.FaultPlan
		}{tc.name, &plan})
	}
	return out
}

// rdPutComplete writes scratch's rdSlot bytes at disp of dst (served by
// world rank serving) and completes toward it.
func rdPutComplete(e *Engine, comm *runtime.Comm, scratch memsim.Region, dst TargetMem, serving, disp int) error {
	dst.Owner = serving
	if _, err := e.Put(scratch, rdSlot, datatype.Byte, dst, disp, rdSlot, datatype.Byte, serving, comm, AttrNone); err != nil {
		return err
	}
	return e.Complete(comm, serving)
}

// runRankDeath executes the workload under plan (nil = fault-free) and
// returns each compute region's final bytes indexed by original owner;
// with killed set, the victim's region is read back from its successor.
func runRankDeath(t *testing.T, plan *simnet.FaultPlan, killed bool) [][]byte {
	t.Helper()
	size := len(rdWriters) * rdSlot
	finals := make([][]byte, rdCompute)
	for i := range finals {
		finals[i] = make([]byte, size)
	}
	var deaths atomic.Int32
	w := newWorld(t, runtime.Config{Ranks: rdCompute, Spares: 1, Seed: 7, Faults: plan})
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(p *runtime.Proc) { rdRank(t, w, p, finals, &deaths, killed) })
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("world: %v", err)
		}
	case <-time.After(90 * time.Second):
		buf := make([]byte, 1<<22)
		buf = buf[:gort.Stack(buf, true)]
		t.Logf("goroutines at wedge:\n%s", buf)
		t.Fatal("rank-death run wedged: detection or rebuild never unblocked a waiter")
	}
	if killed {
		if deaths.Load() == 0 {
			t.Fatal("no writer observed ErrRankFailed; the kill landed outside the workload")
		}
		if w.Net().FaultsBlackholed.Value() == 0 {
			t.Fatal("rank kill blackholed nothing")
		}
	}
	return finals
}

// rdRank is one rank's workload (see the file comment for the roles).
func rdRank(t *testing.T, w *runtime.World, p *runtime.Proc, finals [][]byte, deaths *atomic.Int32, killed bool) {
	e := Attach(p, Options{})
	if err := e.EnableReplication(); err != nil {
		t.Errorf("enable replication: %v", err)
		panic("rankdeath: replication unavailable")
	}
	me := p.Rank()
	if p.IsSpare() {
		// Armed and idle; after the rebuild its NIC serves the redirected
		// traffic. Stays alive until writer 0 winds the run down.
		p.Recv(0, rdTagFin)
		return
	}
	comm := p.Comm()
	size := len(rdWriters) * rdSlot
	tm, region := e.ExposeNew(size)
	if me == rdVictim {
		// Pure target: applying (and replicating) happens on the NIC
		// agent, which keeps serving after the rank function returns —
		// until the kill blackholes the rank entirely. The victim sends
		// no descriptor: a rank that dies before its descriptor lands
		// would wedge receivers that have no failure signal to select
		// on, making bootstrap — not the RMA protocol — the thing under
		// test. Writers synthesize it below instead.
		return
	}
	enc := tm.Encode()
	for _, r := range rdWriters {
		if r != me {
			p.Send(r, rdTagDesc, enc)
		}
	}

	// Descriptors are plain values an application would distribute at job
	// launch; only the (immortal) writers exchange them over the wire.
	// Every compute rank's first and only exposure yields the same handle,
	// so the victim's descriptor is the writer's own with the owner
	// re-pointed — the cross-check below pins that symmetry.
	tms := map[int]TargetMem{me: tm}
	for i := 0; i < len(rdWriters)-1; i++ {
		enc, src := p.Recv(runtime.AnySource, rdTagDesc)
		dtm, err := DecodeTargetMem(enc)
		if err != nil {
			t.Errorf("rank %d decode from %d: %v", me, src, err)
			panic("rankdeath: no descriptor")
		}
		if dtm.Handle != tm.Handle || dtm.Size != tm.Size {
			t.Errorf("rank %d: descriptor from %d is not symmetric (handle %d size %d, mine %d/%d)",
				me, src, dtm.Handle, dtm.Size, tm.Handle, tm.Size)
			panic("rankdeath: asymmetric exposure")
		}
		tms[src] = dtm
	}
	vtm := tm
	vtm.Owner = rdVictim
	tms[rdVictim] = vtm

	// cur maps each original owner to the rank currently serving its
	// region (the victim's successor after the rebuild). The victim is
	// targeted first each round so some origin always has in-flight
	// traffic toward it — the failure detector's food.
	cur := make(map[int]int, len(tms))
	for r := range tms {
		cur[r] = r
	}
	targets := []int{rdVictim}
	for _, r := range rdWriters {
		if r != me {
			targets = append(targets, r)
		}
	}
	disp := rdSlotOf(me) * rdSlot
	scratch := p.Alloc(rdSlot)
	observed := false
	for round := 0; round < rdRounds; round++ {
		pattern := bytes.Repeat([]byte{byte(16*me + round)}, rdSlot)
		p.WriteLocal(scratch, 0, pattern)
		for _, tgt := range targets {
			err := rdPutComplete(e, comm, scratch, tms[tgt], cur[tgt], disp)
			if err == nil {
				continue
			}
			if tgt != rdVictim || cur[tgt] != rdVictim || !killed {
				t.Errorf("rank %d round %d: op to survivor %d failed: %v", me, round, cur[tgt], err)
				panic("rankdeath: survivor op failed")
			}
			// Acceptance criterion: the death surfaces as a wrapped
			// ErrRankFailed — never as the link-failure sentinel.
			if !errors.Is(err, ErrRankFailed) {
				t.Errorf("rank %d round %d: death surfaced as %v, want wrapped ErrRankFailed", me, round, err)
				panic("rankdeath: wrong sentinel")
			}
			if errors.Is(err, ErrLinkFailed) {
				t.Errorf("rank %d: rank death also claims ErrLinkFailed: %v", me, err)
			}
			if !observed {
				observed = true
				deaths.Add(1)
			}
			spare, rerr := w.Members().AwaitRebuilt(rdVictim)
			if rerr != nil {
				t.Errorf("rank %d: await rebuild: %v", me, rerr)
				panic("rankdeath: rebuild unavailable")
			}
			cur[tgt] = spare
			// Re-issue this round's slot write at the successor; the slot
			// converges regardless of which rounds the replica already
			// held (last completed version wins).
			if err := rdPutComplete(e, comm, scratch, tms[tgt], spare, disp); err != nil {
				t.Errorf("rank %d round %d: re-issued op to successor %d failed: %v", me, round, spare, err)
				panic("rankdeath: successor op failed")
			}
		}
	}

	if me != 0 {
		p.Send(0, rdTagDone, nil)
		return
	}

	// Writer 0 drains the other writers, settles the victim's successor,
	// reads back every region, and winds down the spare.
	for range []int{1, 3} {
		p.Recv(runtime.AnySource, rdTagDone)
	}
	if killed && cur[rdVictim] == rdVictim {
		// Degenerate timing: every round toward the victim completed
		// before the kill, so this writer never saw the death. One probe
		// op against the black hole must surface ErrRankFailed in bounded
		// time; then converge the slot on the successor.
		pattern := bytes.Repeat([]byte{byte(16*me + rdRounds - 1)}, rdSlot)
		p.WriteLocal(scratch, 0, pattern)
		err := rdPutComplete(e, comm, scratch, tms[rdVictim], rdVictim, disp)
		if err == nil || !errors.Is(err, ErrRankFailed) {
			t.Errorf("probe toward dead rank returned %v, want wrapped ErrRankFailed", err)
			panic("rankdeath: probe")
		}
		deaths.Add(1)
		spare, rerr := w.Members().AwaitRebuilt(rdVictim)
		if rerr != nil {
			t.Errorf("await rebuild: %v", rerr)
			panic("rankdeath: rebuild unavailable")
		}
		cur[rdVictim] = spare
		if err := rdPutComplete(e, comm, scratch, tms[rdVictim], spare, disp); err != nil {
			t.Errorf("re-issued op to successor %d failed: %v", spare, err)
			panic("rankdeath: successor op failed")
		}
	}
	landing := p.Alloc(size)
	for owner := 0; owner < rdCompute; owner++ {
		if owner == me {
			copy(finals[owner], p.Mem().Snapshot(region.Offset, size))
			continue
		}
		dst := tms[owner]
		dst.Owner = cur[owner]
		req, err := e.Get(landing, size, datatype.Byte, dst, 0, size, datatype.Byte, cur[owner], comm, AttrNone)
		if err != nil {
			t.Errorf("readback get from %d (serving %d): %v", owner, cur[owner], err)
			panic("rankdeath: readback")
		}
		req.Wait()
		if err := req.Err(); err != nil {
			t.Errorf("readback from %d (serving %d): %v", owner, cur[owner], err)
			panic("rankdeath: readback")
		}
		copy(finals[owner], p.Mem().Snapshot(landing.Offset, size))
	}
	p.Send(rdCompute, rdTagFin, nil) // the spare's world rank
}

// TestRankDeathChaosMatrix is the PR's acceptance test: under every
// seeded kill plan (go test -run TestRankDeathChaosMatrix -race;
// seeds 1001-1003 from chaosPlans), (a) the replicated regions converge
// byte-exactly to the fault-free baseline after the rebuild, (b) ops to
// surviving ranks complete without error throughout, and (c) origins
// targeting the dead rank get a wrapped ErrRankFailed in bounded time.
func TestRankDeathChaosMatrix(t *testing.T) {
	baseline := runRankDeath(t, nil, false)
	// Sanity: the fault-free run produced the analytically expected
	// bytes — every written slot holds its writer's final-round pattern,
	// a writer's own slot in its own region stays zero.
	size := len(rdWriters) * rdSlot
	for owner := 0; owner < rdCompute; owner++ {
		want := make([]byte, size)
		for _, wr := range rdWriters {
			if wr == owner {
				continue
			}
			copy(want[rdSlotOf(wr)*rdSlot:], bytes.Repeat([]byte{byte(16*wr + rdRounds - 1)}, rdSlot))
		}
		if !bytes.Equal(baseline[owner], want) {
			t.Fatalf("baseline region %d = %x, want %x", owner, baseline[owner], want)
		}
	}
	for _, tc := range rdKillPlans() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := runRankDeath(t, tc.plan, true)
			for owner := 0; owner < rdCompute; owner++ {
				if !bytes.Equal(got[owner], baseline[owner]) {
					t.Errorf("region %d diverged from fault-free bytes after rank death:\n got %x\nwant %x", owner, got[owner], baseline[owner])
				}
			}
		})
	}
}

// TestRankDeathKillOnly runs the kill without any link faults: the
// cleanest reproduction of detect → promote → rebuild → re-target, and
// the one to start from when the matrix runs diverge.
func TestRankDeathKillOnly(t *testing.T) {
	baseline := runRankDeath(t, nil, false)
	plan := &simnet.FaultPlan{
		Seed:      4242,
		RankKills: []simnet.RankKill{{Rank: rdVictim, At: rdKillAt}},
	}
	got := runRankDeath(t, plan, true)
	for owner := 0; owner < rdCompute; owner++ {
		if !bytes.Equal(got[owner], baseline[owner]) {
			t.Errorf("region %d diverged from fault-free bytes after rank death:\n got %x\nwant %x", owner, got[owner], baseline[owner])
		}
	}
}
