package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
)

// TestRankDeathErrorTaxonomy pins the error-surface contract of a rank
// death on every wait path at once: the blocking Complete, requests
// reaped through Wait/Err, OnDone callbacks, Select, sticky fast-fails
// on Put/Get/FetchAdd/Order, the tiered Engine.Err, and the completion
// queue's EvFault. Everywhere the death must surface as a wrapped
// ErrRankFailed that is disjoint from both ErrLinkFailed (the taxonomy's
// graceful-degradation tier) and ErrApplyFault — a caller switching on
// errors.Is gets exactly one true branch.
func TestRankDeathErrorTaxonomy(t *testing.T) {
	const (
		victim   = 1
		inflight = 5
	)
	w := newWorld(t, runtime.Config{
		Ranks: 2,
		Seed:  17,
		Faults: &simnet.FaultPlan{
			Seed:      171,
			RankKills: []simnet.RankKill{{Rank: victim, At: rdKillAt}},
		},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := w.Run(func(p *runtime.Proc) {
			e := Attach(p, Options{})
			comm := p.Comm()
			if p.Rank() == victim {
				tm, _ := e.ExposeNew(64)
				p.Send(0, 9999, tm.Encode())
				return
			}
			q := e.EnableEvents(64)
			enc, _ := p.Recv(victim, 9999)
			tm, err := DecodeTargetMem(enc)
			if err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			scratch := p.Alloc(8)

			// Drive put+Complete rounds into the black hole until the
			// death surfaces on the blocking path. Requests issued along
			// the way are reaped later through Wait/Err and OnDone.
			var mu sync.Mutex
			onDone := make(map[uint64][]error)
			var victims []*Request
			var blocking error
			for blocking == nil {
				for i := 0; i < inflight && blocking == nil; i++ {
					r, err := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, victim, comm, AttrRemoteComplete)
					if err != nil {
						blocking = err
						break
					}
					id := r.ID()
					r.OnDone(func(err error) {
						mu.Lock()
						onDone[id] = append(onDone[id], err)
						mu.Unlock()
					})
					victims = append(victims, r)
				}
				if blocking == nil {
					blocking = e.Complete(comm, victim)
				}
			}
			assertRankFailedOnly(t, "blocking Complete (or submit fast-fail)", blocking)

			// Engine.Err tiers the death above link failures.
			assertRankFailedOnly(t, "Engine.Err", e.Err())

			// Every request issued before the death terminates — no
			// hangs — with the same wrapped sentinel, and its OnDone
			// fired exactly once with it.
			for _, r := range victims {
				r.Wait()
				if err := r.Err(); err != nil {
					assertRankFailedOnly(t, "Request.Err", err)
				}
			}
			mu.Lock()
			for _, r := range victims {
				if r.Err() == nil {
					continue // completed before the kill landed
				}
				errs := onDone[r.ID()]
				if len(errs) != 1 {
					t.Errorf("request %d: %d terminal callbacks, want exactly 1", r.ID(), len(errs))
					continue
				}
				assertRankFailedOnly(t, "OnDone", errs[0])
			}
			mu.Unlock()

			// Sticky fast-fails: every submission surface refuses new
			// work toward the dead rank synchronously.
			if _, err := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, victim, comm, AttrNone); err == nil {
				t.Error("Put after death returned nil, want sticky fast-fail")
			} else {
				assertRankFailedOnly(t, "Put fast-fail", err)
			}
			if _, err := e.Get(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, victim, comm, AttrNone); err == nil {
				t.Error("Get after death returned nil, want sticky fast-fail")
			} else {
				assertRankFailedOnly(t, "Get fast-fail", err)
			}
			if _, err := e.FetchAdd(tm, 0, 1, victim, comm, AttrNone); err == nil {
				t.Error("FetchAdd after death returned nil, want sticky fast-fail")
			} else {
				assertRankFailedOnly(t, "FetchAdd fast-fail", err)
			}
			if err := e.Order(comm, victim); err == nil {
				t.Error("Order after death returned nil, want sticky fast-fail")
			} else {
				assertRankFailedOnly(t, "Order fast-fail", err)
			}

			// A counter arm on the dead target fails over to EvFault.
			if _, ev, err := e.Select(comm, OnConfirmed(victim, 1<<30)); err != nil {
				t.Errorf("select(confirmed): %v", err)
			} else {
				if ev.Kind != EvFault {
					t.Errorf("counter arm = kind %v, want EvFault", ev.Kind)
				}
				assertRankFailedOnly(t, "Select EvFault", ev.Err)
			}

			// The queue published the death exactly once, naming the rank.
			faults := 0
			for {
				ev, ok := q.Poll()
				if !ok {
					break
				}
				if ev.Kind != EvFault {
					continue
				}
				faults++
				if ev.Rank != victim {
					t.Errorf("fault event names rank %d, want %d", ev.Rank, victim)
				}
				assertRankFailedOnly(t, "queue EvFault", ev.Err)
			}
			if faults != 1 {
				t.Errorf("queue published %d fault events for one death, want exactly 1", faults)
			}
		})
		if err != nil {
			t.Errorf("world: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("rank-death error taxonomy run wedged")
	}
}

// assertRankFailedOnly checks one error against the taxonomy: it must
// wrap ErrRankFailed and must NOT claim the other sticky tiers.
func assertRankFailedOnly(t *testing.T, path string, err error) {
	t.Helper()
	if !errors.Is(err, ErrRankFailed) {
		t.Errorf("%s: %v does not wrap ErrRankFailed", path, err)
	}
	if errors.Is(err, ErrLinkFailed) {
		t.Errorf("%s: %v claims ErrLinkFailed too; the tiers must be disjoint", path, err)
	}
	if errors.Is(err, ErrApplyFault) {
		t.Errorf("%s: %v claims ErrApplyFault too; the tiers must be disjoint", path, err)
	}
}

// TestRankDeathSuspectRequiresGroundTruth pins the detection rule that
// keeps the taxonomy honest: retry-budget exhaustion alone (a broken
// link, both ends alive) must stay in the ErrLinkFailed tier — the
// membership service refuses to declare a rank dead when the simulated
// RAS ground truth says it is alive.
func TestRankDeathSuspectRequiresGroundTruth(t *testing.T) {
	w := newWorld(t, runtime.Config{
		Ranks: 2,
		Seed:  19,
		Faults: &simnet.FaultPlan{
			Seed:  191,
			Links: map[simnet.LinkKey]simnet.LinkFaults{{Src: 0, Dst: 1}: {Drop: 1}},
		},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := w.Run(func(p *runtime.Proc) {
			e := Attach(p, Options{})
			comm := p.Comm()
			if p.Rank() == 1 {
				tm, _ := e.ExposeNew(64)
				p.Send(0, 9999, tm.Encode())
				return
			}
			enc, _ := p.Recv(1, 9999)
			tm, err := DecodeTargetMem(enc)
			if err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			scratch := p.Alloc(8)
			var failure error
			for failure == nil {
				if _, err := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 1, comm, AttrNone); err != nil {
					failure = err
					break
				}
				failure = e.Complete(comm, 1)
			}
			if !errors.Is(failure, ErrLinkFailed) {
				t.Errorf("broken link surfaced as %v, want wrapped ErrLinkFailed", failure)
			}
			if errors.Is(failure, ErrRankFailed) {
				t.Errorf("broken link escalated to ErrRankFailed with the peer alive: %v", failure)
			}
			if st := w.Members().State(1); st == runtime.StateDead {
				t.Error("membership declared a live rank dead on link evidence alone")
			}
		})
		if err != nil {
			t.Errorf("world: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("suspect-vs-ground-truth run wedged")
	}
}
