package core

import (
	"errors"

	"mpi3rma/internal/portals"
)

// Sentinel errors of the RMA engine. Every error returned by the engine
// (and by the MPI-2 layer in internal/mpi2rma, which shares this
// vocabulary) wraps exactly one of these, so callers can classify
// failures with errors.Is without parsing message strings:
//
//   - ErrBadHandle — the operation addressed memory that is not (or is no
//     longer) exposed: an invalid or retracted target_mem descriptor, a
//     descriptor owned by a different rank than the named target, a freed
//     MPI-2 window, or a target rank outside the communicator.
//   - ErrBounds — the operation itself is malformed: negative counts or
//     displacements, an access extending past the exposed region, or an
//     origin buffer too small for the declared datatype layout.
//   - ErrType — the transfer's type signatures are incompatible, or the
//     accumulate operation is not defined for the element kind.
//   - ErrEpoch — a synchronization-protocol violation: MPI-2 access or
//     exposure epochs opened/closed out of order, RMA calls outside any
//     epoch, or a completion exchange that returned inconsistent state.
//
// The error message still carries the operation-specific detail; the
// sentinel only fixes the class.
var (
	ErrBadHandle = errors.New("bad target_mem handle")
	ErrBounds    = errors.New("access out of bounds")
	ErrType      = errors.New("incompatible type signature")
	ErrEpoch     = errors.New("synchronization epoch violation")
)

// ErrLinkFailed is the graceful-degradation sentinel: the reliable-
// delivery relay exhausted its retry budget toward a target, so requests
// addressing it fail instead of waiting for acknowledgements that will
// never come. It is portals.ErrLinkFailed re-exported so engine callers
// classify transport failures without importing the transport.
var ErrLinkFailed = portals.ErrLinkFailed

// ErrRankFailed is the rank-death sentinel: the membership service
// confirmed a target rank crashed (retry-budget exhaustion toward it was
// corroborated by the simulation's RAS ground truth). It is deliberately
// disjoint from ErrLinkFailed — errors.Is(err, ErrLinkFailed) stays false
// for a dead rank — because the two demand different reactions: a failed
// link degrades one path while the rank's data survives, whereas a dead
// rank's exposures are gone until the rebuild protocol promotes its
// buddy's replica onto a spare (DESIGN.md §14). The triggering link error
// is folded into the message text, not the wrap chain.
var ErrRankFailed = errors.New("rank failed: peer declared dead")

// ErrApplyFault is the sticky sentinel for a target-side apply failure: a
// shard worker panicked while depositing an operation. The engine survives
// — the pool recovers the panic — but its memory can no longer be trusted,
// so every outstanding request and every later completion wait on this
// rank fails wrapping ErrApplyFault, and Err() reports it.
var ErrApplyFault = errors.New("target apply fault")
