package core

import (
	"fmt"

	"mpi3rma/internal/portals"
	"mpi3rma/internal/vtime"
)

// Sharded target-side apply engine.
//
// With Options.ApplyShards > 1 the exposed byte space is partitioned into
// fixed ranges of stride ceil(region/shards) per exposure, and each decoded
// incoming operation is routed — still on the NIC agent, so routing is
// single-threaded per target — to the shard its byte range falls in. The
// portals.ShardPool drains each shard strictly in routing order on at most
// one worker at a time, so operations that could conflict apply in the same
// order the serial engine would, while disjoint-range traffic (the Figure 2
// seven-writer workload with per-origin slots) spreads across workers.
//
// Three classes of operations cannot be pinned to one shard and route
// through the designated shard (shard 0) instead:
//
//   - range-spanning operations (their bytes cross a shard boundary),
//   - ordered operations (AttrOrdering promises cross-operation order the
//     per-shard FIFO alone cannot give), and
//   - operations overlapping a designated operation still in flight (the
//     envelope check below).
//
// A designated operation carries a ticket — the per-shard enqueue counts at
// routing time — and its worker refuses to run it until every shard has
// drained past the ticket, helping lagging shards along while it waits. It
// therefore observes everything routed before it, exactly like the serial
// engine. While designated operations are in flight the engine keeps a
// coarse [lo,hi) envelope of their bytes; later operations overlapping the
// envelope are routed behind them on the designated shard, which restores
// the pairwise ordering a shard-confined route would have lost.
//
// Atomic operations bypass the pool entirely and keep their configured
// serializer mechanism: atomicity is a cross-operation global promise the
// serializer already implements, and splitting it across workers would
// re-derive the serializer badly.
//
// The watermark join: every applied operation — sharded or not — still
// funnels through noteApplied under tgtMu, which is the cumulative
// delivery counter Complete/Order/fence and completion probes observe. The
// per-shard watermarks (ShardPool task counts) exist for telemetry and
// reconciliation: sum(shard.tasks.*) + shard.bypass == ops.applied.

// scheduleApplyRange routes one decoded target update with a known byte
// range [disp, disp+ext) inside exp's region. It falls back to the serial
// scheduleApply path when sharding is off, the operation is atomic, or the
// exposure is unknown (the deposit will fail and be counted by the fn).
func (e *Engine) scheduleApplyRange(src int, at vtime.Time, nbytes int, atomic, ordered bool, exp *exposure, disp, ext int, fn func(end vtime.Time)) {
	pool := e.shardPool
	if pool == nil || atomic || exp == nil {
		e.scheduleApply(src, at, nbytes, atomic, fn)
		return
	}
	n := pool.Shards()
	stride := (exp.region.Size + n - 1) / n
	if stride < 1 {
		stride = 1
	}
	if ext < 1 {
		ext = 1 // zero-extent ops still occupy a routing point
	}
	// Shard indices from the region-relative range; out-of-range
	// displacements (the deposit will reject them) are clamped so routing
	// never faults.
	s1 := clampShard(disp/stride, n)
	s2 := clampShard((disp+ext-1)/stride, n)
	base := exp.region.Offset + disp

	e.shardMu.Lock()
	overlapsDesig := e.desigOpen > 0 && base < e.desigHi && e.desigLo < base+ext
	designate := ordered || s1 != s2 || overlapsDesig
	if designate {
		if e.desigOpen == 0 {
			e.desigLo, e.desigHi = base, base+ext
		} else {
			if base < e.desigLo {
				e.desigLo = base
			}
			if base+ext > e.desigHi {
				e.desigHi = base + ext
			}
		}
		e.desigOpen++
	}
	e.shardMu.Unlock()

	cost := e.applyCost(nbytes)
	if designate {
		e.ShardDesignated.Inc()
		pool.Submit(0, portals.ShardTask{
			Ready: at,
			Cost:  cost,
			After: pool.Snapshot(),
			Run: func(end vtime.Time) {
				fn(end)
				e.shardMu.Lock()
				e.desigOpen--
				if e.desigOpen == 0 {
					e.desigLo, e.desigHi = 0, 0
				}
				e.shardMu.Unlock()
			},
		})
		return
	}
	pool.Submit(s1, portals.ShardTask{Ready: at, Cost: cost, Run: fn})
}

// clampShard pins a computed shard index into [0, n).
func clampShard(s, n int) int {
	if s < 0 {
		return 0
	}
	if s >= n {
		return n - 1
	}
	return s
}

// ShardPool returns the engine's sharded apply pool, or nil when the
// target applies serially.
func (e *Engine) ShardPool() *portals.ShardPool { return e.shardPool }

// onApplyPanic is the pool's panic handler: a worker recovered a panic
// from a deposit. The process survives, but this rank's memory may be
// half-written, so the whole engine is failed sticky.
func (e *Engine) onApplyPanic(shard int, recovered any) {
	e.failEngine(fmt.Errorf("core: %w: shard %d worker: %v", ErrApplyFault, shard, recovered))
}

// failEngine records an engine-fatal error: every outstanding request,
// pending batch, and Select waiter fails with it, and completion waiters
// are woken so Complete/Order/fence observe it instead of hanging on
// counters that will never advance.
func (e *Engine) failEngine(err error) {
	at := e.proc.Now()
	e.cmplMu.Lock()
	if e.applyErr != nil {
		e.cmplMu.Unlock()
		return
	}
	e.applyErr = err
	var victims []*Request
	for id, pb := range e.pendingBatches {
		delete(e.pendingBatches, id)
		victims = append(victims, pb.reqs...)
	}
	failedConfirm := serviceWaiters(&e.confirmWaiters, -1, 0, at, err)
	e.cmplCond.Broadcast()
	e.cmplMu.Unlock()
	closeWaiters(failedConfirm)

	e.mu.Lock()
	for _, r := range e.reqs {
		victims = append(victims, r)
	}
	e.mu.Unlock()
	for _, r := range victims {
		r.completeErr(at, err)
	}
	e.tgtMu.Lock()
	failedApply := serviceWaiters(&e.applyWaiters, -1, 0, at, err)
	e.tgtCond.Broadcast()
	e.tgtMu.Unlock()
	closeWaiters(failedApply)
	if q := e.evq.Load(); q != nil {
		q.push(Event{Kind: EvFault, At: at, Rank: AllRanks, Err: err})
	}
	if f := e.flight.Load(); f != nil {
		f.Note(int64(at), "apply-fault", AllRanks, 0, 0, err)
		f.AutoDump("apply-fault", int64(at))
	}
}
