package core

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
)

// encodeTestBatch mirrors flushTarget's aggregate framing for codec tests
// and fuzz seeds.
func encodeTestBatch(ops []wireOp) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		flags := byte(0)
		if op.atomic {
			flags |= batchFlagAtomic
		}
		buf = append(buf, flags, byte(op.accOp))
		buf = binary.AppendUvarint(buf, op.handle)
		buf = binary.AppendUvarint(buf, uint64(op.disp))
		buf = binary.AppendUvarint(buf, uint64(op.tcount))
		if op.accOp == AccAxpy {
			var s [8]byte
			binary.LittleEndian.PutUint64(s[:], math.Float64bits(op.scale))
			buf = append(buf, s[:]...)
		}
		dt := datatype.Encode(op.tdt)
		buf = binary.AppendUvarint(buf, uint64(len(dt)))
		buf = append(buf, dt...)
		buf = binary.AppendUvarint(buf, uint64(len(op.wire)))
		buf = append(buf, op.wire...)
	}
	return buf
}

// TestBatchCodecRoundTrip: the aggregate framing decodes to the member
// operations it encoded, including the axpy scale and atomic flags.
func TestBatchCodecRoundTrip(t *testing.T) {
	in := []wireOp{
		{handle: 1, disp: 0, tcount: 4, accOp: AccNone, tdt: datatype.Byte, wire: []byte{1, 2, 3, 4}},
		{handle: 9, disp: 128, tcount: 2, accOp: AccSum, atomic: true, tdt: datatype.Int64, wire: make([]byte, 16)},
		{handle: 2, disp: 8, tcount: 1, accOp: AccAxpy, scale: 2.5, tdt: datatype.Float64, wire: make([]byte, 8)},
	}
	out, err := decodeBatch(encodeTestBatch(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d ops, want %d", len(out), len(in))
	}
	for i := range in {
		got, want := out[i], in[i]
		if got.handle != want.handle || got.disp != want.disp || got.tcount != want.tcount ||
			got.accOp != want.accOp || got.atomic != want.atomic {
			t.Errorf("op %d: got %+v want %+v", i, got, want)
		}
		if want.accOp == AccAxpy && got.scale != want.scale {
			t.Errorf("op %d: scale %v, want %v", i, got.scale, want.scale)
		}
		if string(got.wire) != string(want.wire) {
			t.Errorf("op %d: wire data changed", i)
		}
	}

	// The degenerate empty aggregate is valid and decodes to zero ops.
	if ops, err := decodeBatch(encodeTestBatch(nil)); err != nil || len(ops) != 0 {
		t.Errorf("empty batch: ops=%d err=%v", len(ops), err)
	}
	// Trailing garbage is rejected.
	if _, err := decodeBatch(append(encodeTestBatch(in), 0xEE)); err == nil {
		t.Error("decoder accepted trailing bytes")
	}
}

// FuzzBatchUnpack hardens the aggregate-message unpacker the target runs
// on every batched message: it must never panic, and whatever it accepts
// must be structurally sound.
func FuzzBatchUnpack(f *testing.F) {
	f.Add(encodeTestBatch(nil))
	f.Add(encodeTestBatch([]wireOp{
		{handle: 1, disp: 0, tcount: 4, accOp: AccNone, tdt: datatype.Byte, wire: []byte{1, 2, 3, 4}},
	}))
	f.Add(encodeTestBatch([]wireOp{
		{handle: 7, disp: 24, tcount: 3, accOp: AccSum, atomic: true, tdt: datatype.Int32, wire: make([]byte, 12)},
		{handle: 7, disp: 0, tcount: 1, accOp: AccAxpy, scale: -1, tdt: datatype.Float64, wire: make([]byte, 8)},
	}))
	f.Add([]byte{})
	f.Add([]byte{0x05})             // claims 5 ops, provides none
	f.Add([]byte{0x01, 0x00, 0xFF}) // unknown accumulate op

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := decodeBatch(data)
		if err != nil {
			return
		}
		for i, op := range ops {
			if op.disp < 0 || op.tcount < 0 {
				t.Fatalf("op %d: negative geometry %+v survived decode", i, op)
			}
			if op.tdt == nil {
				t.Fatalf("op %d: nil datatype survived decode", i)
			}
			if len(op.wire) > len(data) {
				t.Fatalf("op %d: wire slice larger than the input", i)
			}
		}
	})
}

// TestFlushEmptyRings: Flush (and a directed flushTarget) with nothing
// pending sends no aggregate and is safe with batching both on and off.
func TestFlushEmptyRings(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		for _, batch := range []int{0, 8} {
			e := Attach(p, Options{BatchOps: batch})
			e.Flush()
			e.flushTarget(1 - p.Rank())
			if n := e.Batches.Value(); n != 0 {
				t.Errorf("empty flush sent %d aggregates", n)
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCompleteNoProbeWhenNothingOutstanding is the regression test for the
// zero-outstanding fast path: the first Complete after unbatched traffic
// pays its probe round-trip, but a second Complete with nothing new
// outstanding answers from the delivery counter that probe brought home —
// no second probe.
func TestCompleteNoProbeWhenNothingOutstanding(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(1)
			p.Send(1, 0, tm.Encode())
			// The collective's barrier orders this after both of rank 1's
			// Complete calls: exactly the first should have probed us.
			if err := e.CompleteCollective(comm); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			if got := p.Mem().Snapshot(region.Offset, 1)[0]; got != 7 {
				t.Errorf("target byte %d, want 7", got)
			}
			if n := e.Probes.Value(); n != 1 {
				t.Errorf("target answered %d probes, want 1 (re-Complete must not re-probe)", n)
			}
			return
		}

		// Never targeted anyone: Complete must return without traffic.
		before := e.OpsIssued.Value()
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("idle complete: %v", err)
		}
		if n := e.OpsIssued.Value(); n != before {
			t.Errorf("idle Complete issued %d operations", n-before)
		}

		enc, _ := p.Recv(0, 0)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(1)
		p.WriteLocal(src, 0, []byte{7})
		if _, err := e.Put(src, 1, datatype.Byte, tm, 0, 1, datatype.Byte, 0, comm, AttrNone); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}
		if n := e.FastPaths.Value(); n != 0 {
			t.Error("first Complete of a plain put should have needed the probe")
		}
		// The probe's answer carried the delivery counter: a second
		// Complete with nothing new outstanding answers locally.
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("re-complete: %v", err)
		}
		if n := e.FastPaths.Value(); n < 1 {
			t.Error("second Complete did not take the counter fast path")
		}
		if err := e.CompleteCollective(comm); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBatchMixedAtomicity: one aggregate carrying both plain puts and
// atomic accumulates applies every member through its own serialization
// class, and Complete finishes on the batch notification without probing.
func TestBatchMixedAtomicity(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{BatchOps: 8})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(16)
			p.Send(1, 0, tm.Encode())
			if err := e.CompleteCollective(comm); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			buf := p.Mem().Snapshot(region.Offset, 16)
			if got := int64(binary.LittleEndian.Uint64(buf)); got != 11 {
				t.Errorf("plain-put slot holds %d, want 11", got)
			}
			if got := int64(binary.LittleEndian.Uint64(buf[8:])); got != 5 {
				t.Errorf("atomic-accumulate slot holds %d, want 5", got)
			}
			if n := e.Probes.Value(); n != 0 {
				t.Errorf("target answered %d probes, want 0 (notified completion)", n)
			}
			return
		}

		enc, _ := p.Recv(0, 0)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(8)
		write := func(v int64) {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			p.WriteLocal(src, 0, b[:])
		}
		// Non-atomic puts and atomic accumulates interleaved in one ring.
		write(10)
		if _, err := e.Put(src, 1, datatype.Int64, tm, 0, 1, datatype.Int64, 0, comm, AttrNone); err != nil {
			t.Fatalf("put: %v", err)
		}
		write(2)
		if _, err := e.Accumulate(AccSum, src, 1, datatype.Int64, tm, 8, 1, datatype.Int64, 0, comm, AttrAtomic); err != nil {
			t.Fatalf("atomic accumulate: %v", err)
		}
		write(3)
		if _, err := e.Accumulate(AccSum, src, 1, datatype.Int64, tm, 8, 1, datatype.Int64, 0, comm, AttrAtomic); err != nil {
			t.Fatalf("atomic accumulate: %v", err)
		}
		write(11)
		if _, err := e.Put(src, 1, datatype.Int64, tm, 0, 1, datatype.Int64, 0, comm, AttrNone); err != nil {
			t.Fatalf("put: %v", err)
		}

		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}
		if got := e.Batches.Value(); got != 1 {
			t.Errorf("sent %d aggregates, want 1", got)
		}
		if got := e.BatchedOps.Value(); got != 4 {
			t.Errorf("%d ops rode aggregates, want 4", got)
		}
		if e.FastPaths.Value() < 1 {
			t.Error("batched Complete did not take the counter fast path")
		}
		if err := e.CompleteCollective(comm); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBatchSevenWriterContention: seven origins batching atomic
// accumulates at one target concurrently — ring fill/flush under
// contention, serializer correctness, and notified completion for every
// writer.
func TestBatchSevenWriterContention(t *testing.T) {
	const (
		writers = 7
		opsEach = 16
		perRing = 4
	)
	w := newWorld(t, runtime.Config{Ranks: writers + 1})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{BatchOps: perRing})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(writers * 8)
			for r := 1; r <= writers; r++ {
				p.Send(r, 0, tm.Encode())
			}
			if err := e.CompleteCollective(comm); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			buf := p.Mem().Snapshot(region.Offset, writers*8)
			for r := 1; r <= writers; r++ {
				got := int64(binary.LittleEndian.Uint64(buf[(r-1)*8:]))
				if got != opsEach {
					t.Errorf("writer %d slot holds %d, want %d", r, got, opsEach)
				}
			}
			if n := e.Probes.Value(); n != 0 {
				t.Errorf("target answered %d probes, want 0 (notified completion)", n)
			}
			return
		}

		enc, _ := p.Recv(0, 0)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(8)
		var one [8]byte
		binary.LittleEndian.PutUint64(one[:], 1)
		p.WriteLocal(src, 0, one[:])
		disp := (p.Rank() - 1) * 8
		for i := 0; i < opsEach; i++ {
			if _, err := e.Accumulate(AccSum, src, 1, datatype.Int64, tm, disp, 1, datatype.Int64, 0, comm, AttrAtomic); err != nil {
				t.Fatalf("accumulate %d: %v", i, err)
			}
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}
		if got := e.Batches.Value(); got != opsEach/perRing {
			t.Errorf("sent %d aggregates, want %d", got, opsEach/perRing)
		}
		if got := e.BatchedOps.Value(); got != opsEach {
			t.Errorf("%d ops rode aggregates, want %d", got, opsEach)
		}
		if err := e.CompleteCollective(comm); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBatchRemoteCompleteMember: an AttrRemoteComplete member of a batch
// completes only once the batch notification is back, and errors from the
// engine still classify via the sentinel taxonomy.
func TestBatchRemoteCompleteMember(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{BatchOps: 4})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, _ := e.ExposeNew(8)
			p.Send(1, 0, tm.Encode())
			if err := e.CompleteCollective(comm); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(8)
		req, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrRemoteComplete)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		if req.Test() {
			t.Error("remote-complete member done before its ring flushed")
		}
		e.Flush()
		req.Wait()
		if err := req.Err(); err != nil {
			t.Errorf("remote-complete member failed: %v", err)
		}

		// Bounds violations surface as ErrBounds even on the batch path.
		if _, err := e.Put(src, 8, datatype.Byte, tm, 9999, 8, datatype.Byte, 0, comm, AttrNone); !errors.Is(err, ErrBounds) {
			t.Errorf("out-of-bounds put returned %v, want ErrBounds", err)
		}
		if err := e.CompleteCollective(comm); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
