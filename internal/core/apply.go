package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"mpi3rma/internal/datatype"
)

// depositPut scatters canonical wire data into target memory at base,
// laid out as tcount instances of tdt in the target's byte order. Each
// contiguous segment is written separately so holes in the layout are
// untouched. On a non-cache-coherent target the deposit lands in main
// memory and the owner must Fence/Invalidate before reading it locally —
// memsim models that, the protocol does not hide it (Section III-B2).
func (e *Engine) depositPut(base int, wire []byte, tcount int, tdt datatype.Type) error {
	if want := datatype.PackedSize(tcount, tdt); len(wire) != want {
		return fmt.Errorf("core: put carries %d wire bytes, layout needs %d", len(wire), want)
	}
	mem := e.proc.Mem()
	order := e.proc.ByteOrder()
	pos := 0
	ext := tdt.Extent()
	var depositErr error
	for i := 0; i < tcount; i++ {
		at := base + i*ext
		datatype.Walk(tdt, func(off, n int, k datatype.Kind) {
			if depositErr != nil {
				return
			}
			w := k.Width()
			seg := wire[pos : pos+n*w]
			pos += n * w
			if order == datatype.BigEndian && w > 1 {
				swapped := make([]byte, len(seg))
				swapElems(swapped, seg, w)
				seg = swapped
			}
			if err := mem.RemoteWrite(at+off, seg); err != nil {
				depositErr = err
			}
		})
		if depositErr != nil {
			return depositErr
		}
	}
	return nil
}

// gather reads tcount instances of tdt from target memory at base and
// packs them into canonical wire format.
func (e *Engine) gather(base int, tcount int, tdt datatype.Type) ([]byte, error) {
	mem := e.proc.Mem()
	order := e.proc.ByteOrder()
	extent := datatype.ExtentOf(tcount, tdt)
	snap := make([]byte, extent)
	if err := mem.RemoteRead(base, snap); err != nil {
		return nil, err
	}
	wire := make([]byte, datatype.PackedSize(tcount, tdt))
	if err := datatype.PackInto(wire, snap, tcount, tdt, order); err != nil {
		return nil, err
	}
	return wire, nil
}

// depositAcc combines canonical wire data into target memory elementwise
// with op. Each contiguous segment is updated under the memory lock, so
// elementwise updates are atomic per segment regardless of the operation's
// atomicity attribute (MPI-2 accumulate granularity); whole-operation
// atomicity is the serializer's job.
func (e *Engine) depositAcc(base int, wire []byte, tcount int, tdt datatype.Type, op AccOp, scale float64) error {
	if want := datatype.PackedSize(tcount, tdt); len(wire) != want {
		return fmt.Errorf("core: accumulate carries %d wire bytes, layout needs %d", len(wire), want)
	}
	mem := e.proc.Mem()
	order := e.proc.ByteOrder()
	pos := 0
	ext := tdt.Extent()
	var accErr error
	for i := 0; i < tcount; i++ {
		at := base + i*ext
		datatype.Walk(tdt, func(off, n int, k datatype.Kind) {
			if accErr != nil {
				return
			}
			w := k.Width()
			seg := wire[pos : pos+n*w]
			pos += n * w
			err := mem.Update(at+off, n*w, func(cur []byte) {
				combineSegment(cur, seg, k, order, op, scale)
			})
			if err != nil {
				accErr = err
			}
		})
		if accErr != nil {
			return accErr
		}
	}
	return nil
}

// swapElems copies src to dst reversing each w-wide element's bytes.
func swapElems(dst, src []byte, w int) {
	for i := 0; i < len(src); i += w {
		for j := 0; j < w; j++ {
			dst[i+j] = src[i+w-1-j]
		}
	}
}

// loadElem reads the element at buf in the given byte order as raw bits.
func loadElem(buf []byte, w int, order datatype.ByteOrder) uint64 {
	var v uint64
	if order == datatype.BigEndian {
		for _, b := range buf[:w] {
			v = v<<8 | uint64(b)
		}
		return v
	}
	switch w {
	case 1:
		return uint64(buf[0])
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf))
	default:
		return binary.LittleEndian.Uint64(buf)
	}
}

// storeElem writes raw bits of width w at buf in the given byte order.
func storeElem(buf []byte, w int, order datatype.ByteOrder, v uint64) {
	if order == datatype.BigEndian {
		for i := w - 1; i >= 0; i-- {
			buf[i] = byte(v)
			v >>= 8
		}
		return
	}
	switch w {
	case 1:
		buf[0] = byte(v)
	case 4:
		binary.LittleEndian.PutUint32(buf, uint32(v))
	default:
		binary.LittleEndian.PutUint64(buf, v)
	}
}

// combineSegment applies op elementwise: cur (target order) op= seg
// (canonical little-endian), writing results back into cur in target
// order.
func combineSegment(cur, seg []byte, k datatype.Kind, order datatype.ByteOrder, op AccOp, scale float64) {
	w := k.Width()
	for i := 0; i+w <= len(cur); i += w {
		c := loadElem(cur[i:], w, order)
		s := loadElem(seg[i:], w, datatype.LittleEndian)
		storeElem(cur[i:], w, order, combineElem(k, op, c, s, scale))
	}
}

// combineElem combines raw element bits c (current) and s (incoming)
// under op for kind k, returning the new raw bits.
func combineElem(k datatype.Kind, op AccOp, c, s uint64, scale float64) uint64 {
	if op == AccReplace || op == AccNone {
		return s
	}
	switch k {
	case datatype.KByte:
		a, b := uint8(c), uint8(s)
		switch op {
		case AccSum:
			return uint64(a + b)
		case AccMin:
			if b < a {
				return uint64(b)
			}
			return uint64(a)
		case AccMax:
			if b > a {
				return uint64(b)
			}
			return uint64(a)
		}
	case datatype.KInt32:
		a, b := int32(uint32(c)), int32(uint32(s))
		var r int32
		switch op {
		case AccSum:
			r = a + b
		case AccProd:
			r = a * b
		case AccMin:
			r = a
			if b < a {
				r = b
			}
		case AccMax:
			r = a
			if b > a {
				r = b
			}
		}
		return uint64(uint32(r))
	case datatype.KInt64:
		a, b := int64(c), int64(s)
		var r int64
		switch op {
		case AccSum:
			r = a + b
		case AccProd:
			r = a * b
		case AccMin:
			r = a
			if b < a {
				r = b
			}
		case AccMax:
			r = a
			if b > a {
				r = b
			}
		}
		return uint64(r)
	case datatype.KFloat32:
		a, b := math.Float32frombits(uint32(c)), math.Float32frombits(uint32(s))
		var r float32
		switch op {
		case AccSum:
			r = a + b
		case AccProd:
			r = a * b
		case AccMin:
			r = a
			if b < a {
				r = b
			}
		case AccMax:
			r = a
			if b > a {
				r = b
			}
		case AccAxpy:
			r = a + float32(scale)*b
		}
		return uint64(math.Float32bits(r))
	case datatype.KFloat64:
		a, b := math.Float64frombits(c), math.Float64frombits(s)
		var r float64
		switch op {
		case AccSum:
			r = a + b
		case AccProd:
			r = a * b
		case AccMin:
			r = a
			if b < a {
				r = b
			}
		case AccMax:
			r = a
			if b > a {
				r = b
			}
		case AccAxpy:
			r = a + scale*b
		}
		return uint64(math.Float64bits(r))
	}
	return s
}
