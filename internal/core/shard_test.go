package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
)

// runOverlapWorkload drives one origin through a deterministic sequence of
// overlapping and spanning puts (issue order fixes the final bytes) and
// returns the target's final exposure. topts selects the target engine.
func runOverlapWorkload(t *testing.T, topts Options) []byte {
	t.Helper()
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 11})
	const size = 64
	final := make([]byte, size)
	err := w.Run(func(p *runtime.Proc) {
		opts := Options{}
		if p.Rank() == 0 {
			opts = topts
		}
		e := Attach(p, opts)
		comm := p.Comm()
		tm := shipTM(p, e, size)
		if p.Rank() == 0 {
			p.Barrier()
			exp := e.lookupExposure(tm.Handle)
			copy(final, p.Mem().Snapshot(exp.region.Offset, size))
			return
		}
		scratch := p.Alloc(32)
		put := func(disp, n int, fill byte, attrs Attr) {
			p.WriteLocal(scratch, 0, bytes.Repeat([]byte{fill}, n))
			if _, err := e.Put(scratch, n, datatype.Byte, tm, disp, n, datatype.Byte, 0, comm, attrs); err != nil {
				t.Errorf("put disp=%d: %v", disp, err)
				panic("overlap: put failed")
			}
		}
		// With 4 shards over 64 bytes (stride 16) this hits: same-shard
		// overlap (FIFO), a spanning designated op, an op overlapping the
		// designated envelope, and an ordered designated op.
		put(0, 8, 0x11, AttrNone)
		put(4, 8, 0x22, AttrNone)   // overlaps the first within shard 0
		put(12, 16, 0x33, AttrNone) // spans shards 0-1: designated
		put(20, 8, 0x44, AttrNone)  // overlaps the designated envelope
		put(40, 8, 0x55, AttrOrdering)
		put(40, 4, 0x66, AttrNone) // overlaps the ordered op's range
		if err := e.Complete(comm); err != nil {
			t.Errorf("complete: %v", err)
			panic("overlap: complete failed")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	return final
}

// TestShardedConvergesWithSerial: the overlapping-put sequence produces
// byte-identical exposures on the serial and sharded engines.
func TestShardedConvergesWithSerial(t *testing.T) {
	serial := runOverlapWorkload(t, Options{})
	for _, workers := range []int{1, 2, 4} {
		got := runOverlapWorkload(t, Options{ApplyShards: 4, ApplyWorkers: workers})
		if !bytes.Equal(got, serial) {
			t.Fatalf("workers=%d diverged from serial engine:\n got %x\nwant %x", workers, got, serial)
		}
	}
}

// TestShardApplyPanicSticky: a panic on a shard worker (injected through
// the deposit hook) must not crash the process; it surfaces as a sticky
// wrapped ErrApplyFault from the target's Err().
func TestShardApplyPanicSticky(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 3})
	err := w.Run(func(p *runtime.Proc) {
		opts := Options{}
		if p.Rank() == 0 {
			opts = Options{ApplyShards: 4, ApplyWorkers: 2}
		}
		e := Attach(p, opts)
		comm := p.Comm()
		if p.Rank() == 0 {
			e.SetDepositHook(func(int, uint64, int, int) { panic("injected apply fault") })
		}
		tm := shipTM(p, e, 64)
		if p.Rank() == 0 {
			deadline := time.Now().Add(10 * time.Second)
			for e.Err() == nil && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if err := e.Err(); !errors.Is(err, ErrApplyFault) {
				t.Errorf("target Err() = %v, want wrapped ErrApplyFault", err)
			}
			p.Barrier()
			return
		}
		scratch := p.Alloc(8)
		p.WriteLocal(scratch, 0, []byte("deadbeef"))
		// No Complete: the faulted op's completion report never fires, and
		// the fault is a target-side condition the target observes itself.
		if _, err := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrNone); err != nil {
			t.Errorf("put: %v", err)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}

// TestShardTelemetryReconciles pins the watermark-join equation from
// DESIGN.md §10: on a clean run, the per-shard task watermarks plus the
// serializer bypass count account for every applied operation —
// sum(shard.tasks.*) + shard.bypass == ops.applied.
func TestShardTelemetryReconciles(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 5})
	var target *Engine
	err := w.Run(func(p *runtime.Proc) {
		opts := Options{}
		if p.Rank() == 0 {
			opts = Options{ApplyShards: 4, ApplyWorkers: 2}
		}
		e := Attach(p, opts)
		comm := p.Comm()
		if p.Rank() == 0 {
			target = e
		}
		tm := shipTM(p, e, 64)
		if p.Rank() == 0 {
			p.Barrier()
			return
		}
		scratch := p.Alloc(16)
		put := func(disp, n int, attrs Attr) {
			if _, err := e.Put(scratch, n, datatype.Byte, tm, disp, n, datatype.Byte, 0, comm, attrs); err != nil {
				t.Errorf("put disp=%d: %v", disp, err)
			}
		}
		put(0, 8, AttrNone)   // shard 0
		put(20, 8, AttrNone)  // shard 1
		put(12, 16, AttrNone) // spans shards 0-1: designated
		put(4, 8, AttrOrdering)
		if _, err := e.Accumulate(AccSum, scratch, 1, datatype.Int64, tm, 48, 1, datatype.Int64, 0, comm, AttrAtomic); err != nil {
			t.Errorf("accumulate: %v", err)
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	pool := target.ShardPool()
	if pool == nil {
		t.Fatal("target engine has no shard pool")
	}
	var tasks int64
	for s := 0; s < pool.Shards(); s++ {
		tasks += pool.Stats(s).Tasks.Value()
	}
	bypass := target.ShardBypass.Value()
	applied := target.OpsApplied.Value()
	if tasks+bypass != applied {
		t.Fatalf("watermark join broken: sum(shard.tasks)=%d + bypass=%d != ops.applied=%d",
			tasks, bypass, applied)
	}
	if applied != 5 {
		t.Fatalf("ops.applied=%d, want 5", applied)
	}
	if bypass == 0 {
		t.Error("atomic accumulate did not take the serializer bypass")
	}
	if target.ShardDesignated.Value() == 0 {
		t.Error("spanning/ordered puts recorded no designated routes")
	}
}

// TestCompleteVariadic: Complete and Order with no rank arguments cover
// every communicator rank (self included, trivially), and AllRanks is the
// explicit spelling of the same thing.
func TestCompleteVariadic(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 3, Seed: 9})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 32)
		if p.Rank() == 0 {
			p.Barrier()
			return
		}
		scratch := p.Alloc(4)
		if _, err := e.Put(scratch, 4, datatype.Byte, tm, 4*(p.Rank()-1), 4, datatype.Byte, 0, comm, AttrNone); err != nil {
			t.Errorf("put: %v", err)
		}
		if err := e.Order(comm); err != nil {
			t.Errorf("Order(): %v", err)
		}
		if err := e.Complete(comm); err != nil {
			t.Errorf("Complete(): %v", err)
		}
		if err := e.Complete(comm, AllRanks); err != nil {
			t.Errorf("Complete(AllRanks): %v", err)
		}
		if err := e.Complete(comm, 0, 0); err != nil {
			t.Errorf("Complete(0, 0) with duplicate target: %v", err)
		}
		if err := e.Complete(comm, comm.Size()+7); err == nil {
			t.Error("Complete with out-of-range rank returned nil error")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}
