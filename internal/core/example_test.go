package core_test

import (
	"fmt"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
)

// Example reproduces the paper's minimal usage: rank 0 exposes memory
// (non-collectively), ships the target_mem descriptor, and the origin
// performs a single-call blocking put followed by MPI_RMA_complete.
func Example() {
	world := runtime.NewWorld(runtime.Config{Ranks: 2})
	defer world.Close()

	_ = world.Run(func(p *runtime.Proc) {
		rma := core.Attach(p, core.Options{})
		comm := p.Comm()

		if p.Rank() == 0 {
			tm, region := rma.ExposeNew(8)
			p.Send(1, 0, tm.Encode())
			p.Recv(1, 1) // origin says it completed
			fmt.Printf("target memory: %v\n", p.Mem().Snapshot(region.Offset, 8))
			return
		}

		enc, _ := p.Recv(0, 0)
		tm, _ := core.DecodeTargetMem(enc)
		src := p.Alloc(8)
		p.WriteLocal(src, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		rma.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, core.AttrBlocking)
		rma.Complete(comm, 0)
		p.Send(0, 1, nil)
	})
	// Output:
	// target memory: [1 2 3 4 5 6 7 8]
}
