package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/serializer"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// heldOp is an ordered-stream operation waiting for its predecessors.
type heldOp struct {
	at vtime.Time
	fn func(at vtime.Time)
}

// gateOrdered runs process immediately for unordered operations (seq 0)
// and otherwise enforces the per-origin ordered stream: out-of-order
// arrivals are buffered until every predecessor has been processed — the
// "counter for messages" software support the paper prescribes for
// networks that do not order messages themselves.
func (e *Engine) gateOrdered(src int, seq uint64, at vtime.Time, process func(at vtime.Time)) {
	if seq == 0 {
		process(at)
		return
	}
	e.tgtMu.Lock()
	rb := e.reorder[src]
	if rb == nil {
		rb = &reorderBuf{held: make(map[uint64]func(at vtime.Time)), heldAt: make(map[uint64]vtime.Time)}
		e.reorder[src] = rb
	}
	if seq != rb.expected+1 {
		rb.held[seq] = process
		rb.heldAt[seq] = at
		e.tgtMu.Unlock()
		e.HeldOps.Inc()
		return
	}
	// This op is next; it may release a run of held successors.
	type run struct {
		at vtime.Time
		fn func(at vtime.Time)
	}
	ready := []run{{at, process}}
	rb.expected = seq
	for {
		fn, ok := rb.held[rb.expected+1]
		if !ok {
			break
		}
		rb.expected++
		ready = append(ready, run{rb.heldAt[rb.expected], fn})
		delete(rb.held, rb.expected)
		delete(rb.heldAt, rb.expected)
	}
	e.tgtMu.Unlock()
	// A held op cannot be processed before the op that released it.
	chain := vtime.Time(0)
	for _, r := range ready {
		chain = vtime.Later(chain, r.at)
		r.fn(chain)
	}
}

// scheduleApply routes a target memory update through the appropriate
// serialization path and virtual-time lane.
//
//   - Non-atomic updates run inline on per-origin lanes: concurrent
//     origins' deposits overlap in modelled time, as independent DMA
//     streams would.
//   - Atomic updates serialize on the mechanism configured at this target:
//     the communication-thread queue, the progress queue, or (under the
//     coarse lock, which the origin already holds) the single atomic lane.
func (e *Engine) scheduleApply(src int, at vtime.Time, nbytes int, atomic bool, fn func(end vtime.Time)) {
	if e.shardPool != nil {
		// Sharding is on but this update is not pool-eligible (atomic, or a
		// caller without range information); counted so shard telemetry
		// reconciles against ops.applied.
		e.ShardBypass.Inc()
	}
	cost := e.applyCost(nbytes)
	if !atomic {
		e.tgtMu.Lock()
		lane := e.laneForLocked(src)
		e.tgtMu.Unlock()
		_, end := lane.Reserve(at, cost)
		fn(end)
		return
	}
	switch e.opts.Atomicity {
	case serializer.MechThread:
		e.applyQ.Submit(serializer.Task{Ready: at, Cost: cost, Fn: fn})
	case serializer.MechProgress:
		e.progQ.Submit(serializer.Task{Ready: at, Cost: cost, Fn: fn})
	case serializer.MechCoarseLock:
		_, end := e.atomicLane.Reserve(at, cost)
		fn(end)
	default:
		_, end := e.atomicLane.Reserve(at, cost)
		fn(end)
	}
}

// finishApply performs the bookkeeping shared by every applied operation:
// probe accounting, acknowledgement or notification, coarse-lock release.
// It returns the cumulative applied count so reply-bearing handlers (get,
// RMW) can piggyback the delivery counter on their replies. cost is the
// modelled apply duration the caller scheduled — embedded in the trace
// event so the critical-path analyzer can split target-side time into
// queueing vs applying (error-path callers that never scheduled an apply
// pass 0).
func (e *Engine) finishApply(m *simnet.Message, attrs Attr, atomic bool, end vtime.Time, cost time.Duration) int64 {
	count := e.noteApplied(m.Src, end)
	if attrs&AttrRemoteComplete != 0 {
		ack := newMsg(m.Src, kAck)
		ack.Hdr[hReq] = m.Hdr[hReq]
		ack.Hdr[hCount] = uint64(count)
		if !atomic && e.proc.NIC().HardwareAcks() {
			// The NIC observed the deposit and acknowledges in hardware.
			e.sendReplyNIC(end, ack)
		} else {
			// Software acknowledgement: atomic updates are applied by
			// software, and some networks simply cannot report remote
			// completion (E4) — either way the echo is CPU-injected.
			e.sendReply(end, ack)
		}
		e.AcksSent.Inc()
	} else if attrs&AttrNotify != 0 {
		// A notified operation without remote completion still reports its
		// delivery counter (the ack above already carries it).
		e.sendNotify(m.Src, 0, count, end, atomic)
	}
	if m.Flags&flagUnlockAfter != 0 {
		e.releaseLockLocal(m.Src, end)
	}
	if t := e.tr(); t != nil {
		t.RecordOpf(end, "apply", m.Src, m.Hdr[hReq], "kind=%d bytes=%d cost=%d", m.Kind, len(m.Payload), int64(cost))
	}
	return count
}

// handlePut processes an incoming put or accumulate.
func (e *Engine) handlePut(m *simnet.Message, at vtime.Time) {
	attrs := Attr(m.Hdr[hMeta] & 0xffff)
	accOp := AccOp(m.Hdr[hMeta] >> 16 & 0xff)
	atomic := attrs&AttrAtomic != 0
	e.gateOrdered(m.Src, m.Hdr[hSeq], at, func(at vtime.Time) {
		exp := e.lookupExposure(m.Hdr[hHandle])
		tdt, rest, err := parseTypeFrame(m.Payload)
		if err != nil || exp == nil {
			// Count the op so completion probes do not deadlock, but the
			// deposit is lost (access to unexposed memory).
			e.proc.NIC().BadReq.Inc()
			e.finishApply(m, attrs, atomic, at, 0)
			return
		}
		scale := 1.0
		if accOp == AccAxpy {
			if len(rest) < 8 {
				e.proc.NIC().BadReq.Inc()
				e.finishApply(m, attrs, atomic, at, 0)
				return
			}
			scale = math.Float64frombits(binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
		}
		wire := rest
		tcount := int(m.Hdr[hCount])
		disp := int(m.Hdr[hDisp])
		e.scheduleApplyRange(m.Src, at, len(wire), atomic, attrs&AttrOrdering != 0, exp, disp, datatype.ExtentOf(tcount, tdt), func(end vtime.Time) {
			base := exp.region.Offset + disp
			var err error
			if accOp == AccNone || accOp == AccReplace {
				err = e.depositPut(base, wire, tcount, tdt)
			} else {
				err = e.depositAcc(base, wire, tcount, tdt, accOp, scale)
			}
			if err != nil {
				e.proc.NIC().BadReq.Inc()
			} else {
				e.notifyDeposit(m.Src, m.Hdr[hHandle], disp, datatype.ExtentOf(tcount, tdt))
			}
			deposited := err == nil
			if c := e.ck(); c != nil {
				kind := AccessPut
				if accOp != AccNone && accOp != AccReplace {
					kind = AccessAcc
				}
				c.rec.RecordAccess(Access{
					Origin: m.Src, Target: e.proc.Rank(), Handle: m.Hdr[hHandle],
					Disp: disp, Len: datatype.ExtentOf(tcount, tdt),
					Kind: kind, Atomic: atomic, Ordered: attrs&AttrOrdering != 0,
					OpID: m.Hdr[hReq], Member: -1, Epoch: m.Hdr[hMeta] >> 32, At: end,
				})
			}
			cost := e.applyCost(len(wire))
			fin := func(end vtime.Time) { e.finishApply(m, attrs, atomic, end, cost) }
			if deposited {
				// Completion bookkeeping is deferred until the buddy holds
				// the mutated bytes (a pass-through when unreplicated).
				e.replicate(m.Hdr[hHandle], exp, disp, datatype.ExtentOf(tcount, tdt), end, fin)
			} else {
				fin(end)
			}
		})
	})
}

// handleGet processes an incoming get: gather the requested layout and
// reply with canonical wire data.
func (e *Engine) handleGet(m *simnet.Message, at vtime.Time) {
	attrs := Attr(m.Hdr[hMeta] & 0xffff)
	atomic := attrs&AttrAtomic != 0
	e.gateOrdered(m.Src, m.Hdr[hSeq], at, func(at vtime.Time) {
		exp := e.lookupExposure(m.Hdr[hHandle])
		tdt, _, err := parseTypeFrame(m.Payload)
		if err != nil || exp == nil {
			e.proc.NIC().BadReq.Inc()
			// Reply with an empty payload so the origin's request errors
			// out rather than hanging.
			reply := newMsg(m.Src, kGetReply)
			reply.Hdr[hReq] = m.Hdr[hReq]
			e.sendReply(at, reply)
			e.finishApply(m, attrs&^AttrRemoteComplete, atomic, at, 0)
			return
		}
		tcount := int(m.Hdr[hCount])
		disp := int(m.Hdr[hDisp])
		nbytes := tcount * tdt.Size()
		e.scheduleApplyRange(m.Src, at, nbytes, atomic, attrs&AttrOrdering != 0, exp, disp, datatype.ExtentOf(tcount, tdt), func(end vtime.Time) {
			wire, err := e.gather(exp.region.Offset+disp, tcount, tdt)
			if err != nil {
				e.proc.NIC().BadReq.Inc()
				wire = nil
			}
			if c := e.ck(); c != nil {
				c.rec.RecordAccess(Access{
					Origin: m.Src, Target: e.proc.Rank(), Handle: m.Hdr[hHandle],
					Disp: disp, Len: datatype.ExtentOf(tcount, tdt),
					Kind: AccessGet, Atomic: atomic, Ordered: attrs&AttrOrdering != 0,
					OpID: m.Hdr[hReq], Member: -1, Epoch: m.Hdr[hMeta] >> 32, At: end,
				})
			}
			count := e.finishApply(m, attrs&^(AttrRemoteComplete|AttrNotify), atomic, end, e.applyCost(nbytes))
			reply := newMsg(m.Src, kGetReply)
			reply.Hdr[hReq] = m.Hdr[hReq]
			reply.Hdr[hCount] = uint64(count)
			reply.Payload = wire
			e.sendReply(end, reply)
		})
	})
}

// handleGetReply completes a pending get at the origin.
func (e *Engine) handleGetReply(m *simnet.Message, at vtime.Time) {
	e.noteConfirmed(m.Src, int64(m.Hdr[hCount]), at)
	if t := e.tr(); t != nil {
		t.RecordOpf(at, "reply", m.Src, m.Hdr[hReq], "bytes=%d count=%d", len(m.Payload), m.Hdr[hCount])
	}
	req := e.lookupRequest(m.Hdr[hReq])
	if req == nil {
		return
	}
	if req.onData != nil {
		if len(m.Payload) == 0 {
			// The target could not serve the get (unexposed or out-of-range
			// memory); fail the request instead of leaving stale data.
			req.completeErr(at, fmt.Errorf("core: get failed at the target: %w", ErrBadHandle))
			return
		}
		if err := req.onData(m.Payload, at); err != nil {
			e.proc.NIC().BadReq.Inc()
			req.completeErr(at, err)
			return
		}
	}
	req.complete(at, nil)
}

// handleAck completes a remote-completion request at the origin.
func (e *Engine) handleAck(m *simnet.Message, at vtime.Time) {
	e.noteConfirmed(m.Src, int64(m.Hdr[hCount]), at)
	if t := e.tr(); t != nil {
		t.RecordOpf(at, "ack", m.Src, m.Hdr[hReq], "count=%d", m.Hdr[hCount])
	}
	if req := e.lookupRequest(m.Hdr[hReq]); req != nil {
		req.complete(at, nil)
	}
}

// handleProbe answers (or queues) a completion probe: the origin asks
// "have you applied my first N operations yet?".
func (e *Engine) handleProbe(m *simnet.Message, at vtime.Time) {
	e.Probes.Inc()
	if t := e.tr(); t != nil {
		t.RecordOpf(at, "probe", m.Src, m.Hdr[hReq], "threshold=%d", m.Hdr[hHandle])
	}
	threshold := int64(m.Hdr[hHandle])
	w := probeWaiter{origin: m.Src, threshold: threshold, reqID: m.Hdr[hReq]}
	e.tgtMu.Lock()
	count := e.applied[m.Src]
	satisfied := count >= threshold
	if !satisfied {
		e.probeWaiters = append(e.probeWaiters, w)
	}
	e.tgtMu.Unlock()
	if satisfied {
		e.sendProbeAck(w, count, at)
	}
}

// handleProbeAck completes a Complete/Order stall at the origin.
func (e *Engine) handleProbeAck(m *simnet.Message, at vtime.Time) {
	e.noteConfirmed(m.Src, int64(m.Hdr[hCount]), at)
	if t := e.tr(); t != nil {
		t.RecordOpf(at, "probe-ack", m.Src, m.Hdr[hReq], "count=%d", m.Hdr[hCount])
	}
	if req := e.lookupRequest(m.Hdr[hReq]); req != nil {
		req.complete(at, nil)
	}
}
