package core

import (
	"encoding/binary"
	"fmt"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
)

// TargetMem is the object representing remotely accessible memory (the
// paper's target_mem). Unlike an MPI-2 window it is created by the owner
// alone — nothing collective — and the owner is responsible for passing
// the descriptor to the processes that will access the memory (Section V).
//
// The descriptor is a plain value: it can be shipped through ordinary
// point-to-point messages with Encode/Decode. It carries the owner's
// address-space width and byte order so that origins in a different
// address space or endianness (Section III-B3's hybrid systems) can still
// form correct accesses.
type TargetMem struct {
	// Owner is the world rank that exposed the memory.
	Owner int
	// Handle identifies the exposure within the owner's engine.
	Handle uint64
	// Size is the exposed memory's size in bytes.
	Size int
	// AddrBits is the owner's address-space width (32 or 64); a 32-bit
	// target cannot expose memory beyond 4 GiB and displacements are
	// validated against it.
	AddrBits uint8
	// Order is the owner's memory byte order; the engine converts wire
	// data to it on delivery.
	Order datatype.ByteOrder
}

// Valid reports whether the descriptor looks structurally sound.
func (tm TargetMem) Valid() bool {
	return tm.Owner >= 0 && tm.Size >= 0 && (tm.AddrBits == 32 || tm.AddrBits == 64)
}

// encodedTargetMemLen is the fixed wire size of a TargetMem descriptor.
const encodedTargetMemLen = 8 + 8 + 8 + 1 + 1

// Encode serializes the descriptor for shipping to other ranks.
func (tm TargetMem) Encode() []byte {
	out := make([]byte, encodedTargetMemLen)
	binary.LittleEndian.PutUint64(out[0:], uint64(int64(tm.Owner)))
	binary.LittleEndian.PutUint64(out[8:], tm.Handle)
	binary.LittleEndian.PutUint64(out[16:], uint64(int64(tm.Size)))
	out[24] = tm.AddrBits
	out[25] = byte(tm.Order)
	return out
}

// DecodeTargetMem reverses Encode.
func DecodeTargetMem(buf []byte) (TargetMem, error) {
	if len(buf) != encodedTargetMemLen {
		return TargetMem{}, fmt.Errorf("core: target_mem descriptor is %d bytes, want %d: %w", len(buf), encodedTargetMemLen, ErrBadHandle)
	}
	tm := TargetMem{
		Owner:    int(int64(binary.LittleEndian.Uint64(buf[0:]))),
		Handle:   binary.LittleEndian.Uint64(buf[8:]),
		Size:     int(int64(binary.LittleEndian.Uint64(buf[16:]))),
		AddrBits: buf[24],
		Order:    datatype.ByteOrder(buf[25]),
	}
	if !tm.Valid() {
		return TargetMem{}, fmt.Errorf("core: decoded invalid target_mem descriptor %+v: %w", tm, ErrBadHandle)
	}
	return tm, nil
}

// exposure is the owner-side state behind a TargetMem handle.
type exposure struct {
	region memsim.Region
}

// Expose associates an existing region of the caller's memory with a new
// target-memory object and returns its descriptor. This is the paper's
// "interface to associate existing user memory (heap/stack) to a
// target_mem object"; it involves no other rank.
func (e *Engine) Expose(region memsim.Region) TargetMem {
	e.mu.Lock()
	e.tmemSeq++
	h := e.tmemSeq
	e.tmems[h] = &exposure{region: region}
	e.mu.Unlock()
	// Mirror the new exposure to the buddy (a no-op unless
	// EnableReplication was called; see replication.go).
	e.replOnExpose(h, region)
	return TargetMem{
		Owner:    e.proc.Rank(),
		Handle:   h,
		Size:     region.Size,
		AddrBits: e.opts.AddrBits,
		Order:    e.proc.ByteOrder(),
	}
}

// ExposeNew allocates size bytes of fresh memory and exposes them,
// returning the descriptor and the local region (the paper's collective
// allocation interfaces were still under discussion; allocation here is
// local, matching requirement 1).
func (e *Engine) ExposeNew(size int) (TargetMem, memsim.Region) {
	region := e.proc.Alloc(size)
	return e.Expose(region), region
}

// Retract withdraws an exposure: subsequent remote accesses through the
// handle fail at the target. The paper leaves deallocation interfaces
// open; Retract is the minimal owner-side revocation.
func (e *Engine) Retract(tm TargetMem) error {
	if tm.Owner != e.proc.Rank() {
		return fmt.Errorf("core: rank %d cannot retract target_mem owned by rank %d: %w", e.proc.Rank(), tm.Owner, ErrBadHandle)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tmems[tm.Handle]; !ok {
		return fmt.Errorf("core: target_mem handle %d not exposed: %w", tm.Handle, ErrBadHandle)
	}
	delete(e.tmems, tm.Handle)
	return nil
}

// lookupExposure resolves a handle at the target side.
func (e *Engine) lookupExposure(h uint64) *exposure {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tmems[h]
}
