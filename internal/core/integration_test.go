package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/serializer"
)

// TestChaos runs a randomized multi-origin program against a sequential
// reference model. Each origin owns a disjoint 1KB area of the target's
// exposed memory — the lower half driven by non-atomic puts/gets, the
// upper half by atomic accumulates and RMWs (mixed-class streams to one
// location are unordered by specification; see AttrOrdering) — and issues
// a random op mix with random attribute combinations, maintaining a local
// shadow. After every Complete, a get must match the shadow exactly; at
// the end, the target memory must equal the union of all shadows.
//
// Because each origin writes only its own area and the network is
// ordered, the shadow semantics are deterministic even without the
// ordering attribute; the unordered variant forces AttrOrdering to keep
// them so.
func TestChaos(t *testing.T) {
	variants := []struct {
		name      string
		unordered bool
		baseAttrs Attr
		mech      serializer.Mechanism
	}{
		{"ordered-net", false, AttrNone, serializer.MechThread},
		{"unordered-net+ordering", true, AttrOrdering, serializer.MechThread},
		{"ordered-net+coarse-lock", false, AttrNone, serializer.MechCoarseLock},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			runChaos(t, v.unordered, v.baseAttrs, v.mech)
		})
	}
}

const (
	chaosOrigins = 3
	chaosArea    = 1024
	chaosOps     = 150
)

func runChaos(t *testing.T, unordered bool, baseAttrs Attr, mech serializer.Mechanism) {
	w := newWorld(t, runtime.Config{Ranks: chaosOrigins + 1, UnorderedNet: unordered, Seed: 99})
	shadows := make([][]byte, chaosOrigins+1)
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{Atomicity: mech})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(chaosOrigins * chaosArea)
			enc := tm.Encode()
			for r := 1; r <= chaosOrigins; r++ {
				p.Send(r, 9999, enc)
			}
			p.Barrier()
			// Final verification: target memory equals the union of the
			// shadows the origins report.
			for r := 1; r <= chaosOrigins; r++ {
				shadow, _ := p.Recv(r, 7777)
				base := (r - 1) * chaosArea
				got := p.Mem().Snapshot(region.Offset+base, chaosArea)
				if !bytes.Equal(got, shadow) {
					t.Errorf("origin %d: target area diverged from shadow", r)
				}
			}
			return
		}

		enc, _ := p.Recv(0, 9999)
		tm, err := DecodeTargetMem(enc)
		if err != nil {
			t.Errorf("decode: %v", err)
			panic("chaos: no descriptor")
		}
		base := (p.Rank() - 1) * chaosArea
		shadow := make([]byte, chaosArea)
		shadows[p.Rank()] = shadow
		rng := rand.New(rand.NewSource(int64(1000 + p.Rank())))
		scratch := p.Alloc(chaosArea)
		getBuf := p.Alloc(chaosArea)
		const putArea = chaosArea / 2 // [0, putArea): puts/gets; rest: atomics
		fail := func(format string, args ...any) {
			t.Errorf(format, args...)
			panic("chaos: aborting rank after failure")
		}

		randAttrs := func() Attr {
			attrs := baseAttrs
			if rng.Intn(2) == 0 {
				attrs |= AttrBlocking
			}
			if rng.Intn(3) == 0 {
				attrs |= AttrRemoteComplete
			}
			return attrs
		}

		var pending []*Request
		for op := 0; op < chaosOps; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // put a random span in the put half
				off := rng.Intn(putArea - 1)
				n := 1 + rng.Intn(putArea-off)
				data := make([]byte, n)
				rng.Read(data)
				p.WriteLocal(scratch, 0, data)
				sub := subRegion(scratch, 0, n)
				req, err := e.Put(sub, n, datatype.Byte, tm, base+off, n, datatype.Byte, 0, comm, randAttrs())
				if err != nil {
					fail("put: %v", err)
				}
				pending = append(pending, req)
				copy(shadow[off:], data)
			case 4, 5: // accumulate-sum an int64 cell in the atomic half
				cell := putArea + rng.Intn((chaosArea-putArea)/8)*8
				delta := int64(rng.Intn(1000))
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], uint64(delta))
				p.WriteLocal(scratch, 0, b[:])
				sub := subRegion(scratch, 0, 8)
				req, err := e.Accumulate(AccSum, sub, 1, datatype.Int64, tm, base+cell, 1, datatype.Int64, 0, comm, randAttrs()|AttrAtomic)
				if err != nil {
					fail("acc: %v", err)
				}
				pending = append(pending, req)
				cur := int64(binary.LittleEndian.Uint64(shadow[cell:]))
				binary.LittleEndian.PutUint64(shadow[cell:], uint64(cur+delta))
			case 6: // fetch-and-add a cell in the atomic half
				cell := putArea + rng.Intn((chaosArea-putArea)/8)*8
				// FetchAdd sees the shadow value only if everything
				// earlier is applied; force that first.
				if err := e.Complete(comm, 0); err != nil {
					fail("complete: %v", err)
				}
				pending = pending[:0]
				delta := int64(rng.Intn(50))
				old, err := e.FetchAdd(tm, base+cell, delta, 0, comm, baseAttrs)
				if err != nil {
					fail("fetchadd: %v", err)
				}
				want := int64(binary.LittleEndian.Uint64(shadow[cell:]))
				if old != want {
					fail("op %d: fetchadd old = %d, want %d", op, old, want)
				}
				binary.LittleEndian.PutUint64(shadow[cell:], uint64(want+delta))
			case 7, 8: // complete, then a verifying get of a random span
				if err := e.Complete(comm, 0); err != nil {
					fail("complete: %v", err)
				}
				pending = pending[:0]
				off := rng.Intn(chaosArea - 1)
				n := 1 + rng.Intn(chaosArea-off)
				sub := subRegion(getBuf, 0, n)
				req, err := e.Get(sub, n, datatype.Byte, tm, base+off, n, datatype.Byte, 0, comm, baseAttrs)
				if err != nil {
					fail("get: %v", err)
				}
				req.Wait()
				got := p.ReadLocal(getBuf, 0, n)
				if !bytes.Equal(got, shadow[off:off+n]) {
					fail("op %d: get [%d,%d) diverged from shadow", op, off, off+n)
				}
			default: // drain pending requests
				WaitAll(pending...)
				pending = pending[:0]
			}
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("final complete: %v", err)
		}
		p.Barrier()
		p.Send(0, 7777, shadow)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// subRegion narrows a region (test helper mirroring armci.sub).
func subRegion(r memsim.Region, off, n int) memsim.Region {
	return memsim.Region{Offset: r.Offset + off, Size: n}
}
