package core

import (
	"encoding/binary"
	"sync"
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/trace"
)

// TestTelemetryReconciliation replays the seven-writer contention scenario
// with mixed batched and singleton traffic and reconciles every counter
// the telemetry layer exports: per (origin, target) pair, sent ==
// batched + singleton == confirmed, the registry's issue-side split adds
// up, and the target's applied count matches what each origin issued —
// ops issued == applied == completed at epoch close. Runs under -race via
// make check.
func TestTelemetryReconciliation(t *testing.T) {
	const (
		writers    = 7
		batchedOps = 16
		singletons = 3 // FetchAdds: always singleton wire messages
		perRing    = 4
	)
	w := newWorld(t, runtime.Config{Ranks: writers + 1})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{BatchOps: perRing})
		reg := e.EnableTelemetry(nil)
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(writers * 16)
			for r := 1; r <= writers; r++ {
				p.Send(r, 0, tm.Encode())
			}
			if err := e.CompleteCollective(comm); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			// Applied-side reconciliation: every origin's issue count has
			// landed here by the time the collective epoch closed.
			for r := 1; r <= writers; r++ {
				if got := e.AppliedFrom(r); got != batchedOps+singletons {
					t.Errorf("applied %d ops from origin %d, want %d", got, r, batchedOps+singletons)
				}
			}
			snap := reg.Snapshot()
			if got := snap.Counters["ops.applied"]; got != int64(writers*(batchedOps+singletons)) {
				t.Errorf("target applied %d total, want %d", got, writers*(batchedOps+singletons))
			}
			// Memory-level ground truth: each writer's accumulate slot.
			buf := p.Mem().Snapshot(region.Offset, writers*16)
			for r := 1; r <= writers; r++ {
				got := int64(binary.LittleEndian.Uint64(buf[(r-1)*16:]))
				if got != batchedOps {
					t.Errorf("writer %d accumulate slot holds %d, want %d", r, got, batchedOps)
				}
				fa := int64(binary.LittleEndian.Uint64(buf[(r-1)*16+8:]))
				if fa != singletons {
					t.Errorf("writer %d fetch-add slot holds %d, want %d", r, fa, singletons)
				}
			}
			return
		}

		enc, _ := p.Recv(0, 0)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(8)
		var one [8]byte
		binary.LittleEndian.PutUint64(one[:], 1)
		p.WriteLocal(src, 0, one[:])
		disp := (p.Rank() - 1) * 16
		for i := 0; i < batchedOps; i++ {
			if _, err := e.Accumulate(AccSum, src, 1, datatype.Int64, tm, disp, 1, datatype.Int64, 0, comm, AttrAtomic); err != nil {
				t.Fatalf("accumulate %d: %v", i, err)
			}
		}
		for i := 0; i < singletons; i++ {
			if _, err := e.FetchAdd(tm, disp+8, 1, 0, comm, AttrNone); err != nil {
				t.Fatalf("fetch-add %d: %v", i, err)
			}
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}

		pc := e.PairCounters(0)
		if pc.Sent != batchedOps+singletons {
			t.Errorf("pair sent = %d, want %d", pc.Sent, batchedOps+singletons)
		}
		if pc.Batched+pc.Singleton != pc.Sent {
			t.Errorf("batched %d + singleton %d != sent %d", pc.Batched, pc.Singleton, pc.Sent)
		}
		if pc.Batched != batchedOps || pc.Singleton != singletons {
			t.Errorf("pair split batched=%d singleton=%d, want %d/%d", pc.Batched, pc.Singleton, batchedOps, singletons)
		}
		if pc.Confirmed != pc.Sent {
			t.Errorf("after Complete, confirmed = %d, want sent = %d", pc.Confirmed, pc.Sent)
		}
		snap := reg.Snapshot()
		issued := snap.Counters["ops.issued"]
		if issued != int64(batchedOps+singletons) {
			t.Errorf("registry ops.issued = %d, want %d", issued, batchedOps+singletons)
		}
		if co, si := snap.Counters["batch.ops_coalesced"], snap.Counters["batch.singleton_ops"]; co+si != issued {
			t.Errorf("batch.ops_coalesced %d + batch.singleton_ops %d != ops.issued %d", co, si, issued)
		}
		if got := snap.Counters["batch.flushes"]; got != batchedOps/perRing {
			t.Errorf("registry batch.flushes = %d, want %d", got, batchedOps/perRing)
		}
		if err := e.CompleteCollective(comm); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTelemetrySpanCrossRank drives one remote-complete put through two
// traced ranks and reconstructs its span from the merged rings: the same
// operation id must be followable issue (origin) → apply (target) → ack
// (origin), which is the correctness oracle the sidecar exporters rely on.
func TestTelemetrySpanCrossRank(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	var mu sync.Mutex
	rings := make(map[int]*trace.Ring)
	var putID uint64
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		e.SetTracer(trace.New(0))
		mu.Lock()
		rings[p.Rank()] = e.Tracer()
		mu.Unlock()
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, _ := e.ExposeNew(64)
			p.Send(1, 0, tm.Encode())
			if err := e.CompleteCollective(comm); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(64)
		req, err := e.Put(src, 64, datatype.Byte, tm, 0, 64, datatype.Byte, 0, comm, AttrRemoteComplete)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		req.Wait()
		mu.Lock()
		putID = req.ID()
		mu.Unlock()
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}
		if err := e.CompleteCollective(comm); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	perRank := make(map[int][]trace.Event)
	for r, ring := range rings {
		perRank[r] = ring.Snapshot()
	}
	events := telemetry.Timeline(perRank)
	spans := telemetry.Spans(events)
	var span *telemetry.Span
	for i := range spans {
		if spans[i].Origin == 1 && spans[i].ID == putID {
			span = &spans[i]
		}
	}
	if span == nil {
		t.Fatalf("no span reconstructed for put id %d (got %d spans)", putID, len(spans))
	}
	steps := make(map[string]int) // cat -> recording rank
	for i, cat := range span.Path {
		steps[cat] = span.Ranks[i]
	}
	if r, ok := steps["issue"]; !ok || r != 1 {
		t.Errorf("span %v: want an issue step recorded at rank 1", span.Path)
	}
	if r, ok := steps["apply"]; !ok || r != 0 {
		t.Errorf("span %v: want an apply step recorded at rank 0", span.Path)
	}
	if r, ok := steps["ack"]; !ok || r != 1 {
		t.Errorf("span %v: want an ack step recorded at rank 1", span.Path)
	}
	if span.End < span.Begin {
		t.Errorf("span end %d before begin %d", span.End, span.Begin)
	}
}

// TestPutHotPathNoAllocsWhenDisabled pins the allocation budget of the
// remote-complete put hot path with telemetry and tracing disabled: the
// instrumentation added for spans and latency histograms must cost zero
// extra allocations when off (nil registry, nil ring). Remote-complete
// blocking semantics quiesce the world each iteration, so the target's
// handler allocations are part of the steady per-op budget rather than
// noise.
func TestPutHotPathNoAllocsWhenDisabled(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, _ := e.ExposeNew(64)
			p.Send(1, 0, tm.Encode())
			if err := e.CompleteCollective(comm); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(64)
		put := func() {
			req, err := e.Put(src, 64, datatype.Byte, tm, 0, 64, datatype.Byte, 0, comm, AttrRemoteComplete)
			if err != nil {
				t.Fatalf("put: %v", err)
			}
			req.Wait()
		}
		put() // warm pools and lazy state before measuring
		disabled := testing.AllocsPerRun(50, put)

		// The steady-state budget covers the protocol itself: wire message
		// + payload copy + request + completion channel + ack, origin and
		// target side (measured 276 allocs/op, deterministic under the
		// simulator). The disabled-telemetry path must stay inside a small
		// margin of it: a single instrumentation call escaping its nil guard
		// boxes its ...any args and shows up here (the enabled path below
		// costs +5 allocs/op for the same traffic).
		const budget = 278.0
		if disabled > budget {
			t.Errorf("disabled-telemetry put costs %.1f allocs/op, budget %.1f", disabled, budget)
		}

		// Enabling telemetry and tracing pays for the trace events; it must
		// cost at least as much as disabled — the inversion would mean the
		// disabled path is paying for something only enabled runs need.
		e.EnableTelemetry(nil)
		e.SetTracer(trace.New(0))
		put()
		enabled := testing.AllocsPerRun(50, put)
		if disabled > enabled {
			t.Errorf("disabled path (%.1f allocs/op) costs more than enabled (%.1f)", disabled, enabled)
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}
		if err := e.CompleteCollective(comm); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
