package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// Operation batching and notified completion.
//
// The paper's interface charges every put its full injection cost: one
// wire message per operation, each paying the per-message software
// overhead o and injection gap g of the LogGP model. Real RMA stacks that
// scale (foMPI on Cray DMAPP, UNR) aggregate small operations at the
// origin and track completion with delivery counters rather than explicit
// probe round-trips. This file adds both, behind Options.BatchOps:
//
//   - An issue ring per (origin, target) pair coalesces small puts and
//     accumulates into one aggregated kBatch message — one injection
//     (o + g paid once) for up to BatchOps operations. The target unpacks
//     the aggregate and applies each member through the normal
//     serialization paths, so atomicity and ordering semantics are those
//     of the member operations, not of the envelope.
//   - Counter-based notified completion: every target→origin report (ack,
//     probe answer, get/RMW reply, and the kNotify message a batch or an
//     AttrNotify operation generates) carries the target's cumulative
//     applied-operation count for this origin. The origin folds these into
//     confirmed[target] with max(), which is monotone and idempotent, so
//     reports may arrive in any order. Complete then finishes locally when
//     the counters already cover everything issued — no probe round-trip.
//
// Buffers are pooled (sync.Pool): the packed wire form of each ring
// operation, and the encoded payload of the aggregate itself, which the
// target hands back after the last member is applied (both ends of the
// simulated wire live in one process).

// batchOp is one ring-held operation awaiting aggregation.
type batchOp struct {
	handle  uint64
	disp    int
	tcount  int
	accOp   AccOp
	atomic  bool
	ordered bool
	scale   float64
	dt      []byte // encoded target datatype
	wire    []byte // packed origin data (pooled)
	req     *Request
	rc      bool // member wants remote completion (completes on batch notify)
}

// issueRing accumulates batchable operations bound for one target.
type issueRing struct {
	ops     []batchOp
	bytes   int  // accumulated packed payload
	ordered bool // some member carries AttrOrdering
}

// pendingBatch routes a batch's notification to the remote-completion
// requests of its member operations. target lets a link failure find and
// fail the batches that will never be notified.
type pendingBatch struct {
	target int
	reqs   []*Request
}

// Batch payload op flags.
const (
	batchFlagAtomic  = 1 << 0
	batchFlagOrdered = 1 << 1 // member carried AttrOrdering (semantic-checker metadata)
)

// wirePool recycles the packed-data buffers of ring operations.
var wirePool sync.Pool

// wireBuf returns a length-n buffer, reusing pooled storage when large
// enough.
func wireBuf(n int) []byte {
	if v := wirePool.Get(); v != nil {
		if b := v.([]byte); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// batchBufPool recycles aggregate-message payload buffers. The origin
// encodes into one; the target returns it after the last member has been
// applied.
var batchBufPool = sync.Pool{New: func() any { return []byte(nil) }}

// batchable reports whether an operation may ride the issue ring: batching
// enabled, a put or accumulate, nonblocking, not under the coarse-grain
// lock protocol (which serializes whole operations origin-side), and small
// enough that aggregation pays.
func (e *Engine) batchable(op OpType, attrs Attr, packed int) bool {
	if e.opts.BatchOps <= 0 {
		return false
	}
	if op != OpPut && op != OpAccumulate {
		return false
	}
	if attrs&AttrBlocking != 0 {
		return false
	}
	if attrs&AttrAtomic != 0 && e.targetUsesCoarseLock() {
		return false
	}
	return packed <= e.opts.BatchBytes
}

// appendBatch adds a validated put/accumulate to the target's issue ring,
// flushing when the ring reaches the configured op or byte bound. The
// origin data is packed immediately, so the origin buffer is reusable on
// return and non-remote-complete members complete at once.
func (e *Engine) appendBatch(accOp AccOp, scale float64, origin memsim.Region, ocount int, odt datatype.Type, tm TargetMem, tdisp, tcount int, tdt datatype.Type, attrs Attr) (*Request, error) {
	// A sticky failure means the aggregate could never be delivered or
	// notified. The singleton path surfaces this at issue (the relay
	// refuses senders to failed links); surfacing it here too keeps the
	// batched path from parking a request in a ring whose failing flush
	// may be arbitrarily far away — a lost wakeup for Await/Done/OnDone.
	if err := e.stickyFor(tm.Owner); err != nil {
		return nil, fmt.Errorf("core: batch to rank %d: %w", tm.Owner, err)
	}
	wire := wireBuf(datatype.PackedSize(ocount, odt))
	src := e.proc.Mem().Snapshot(origin.Offset, datatype.ExtentOf(ocount, odt))
	if err := datatype.PackInto(wire, src, ocount, odt, e.proc.ByteOrder()); err != nil {
		wirePool.Put(wire)
		return nil, err
	}
	req := e.newRequest(tm.Owner)
	bop := batchOp{
		handle:  tm.Handle,
		disp:    tdisp,
		tcount:  tcount,
		accOp:   accOp,
		atomic:  attrs&AttrAtomic != 0,
		ordered: attrs&AttrOrdering != 0,
		scale:   scale,
		dt:      datatype.Encode(tdt),
		wire:    wire,
		req:     req,
		rc:      attrs&AttrRemoteComplete != 0,
	}

	if e.lat.Load() != nil {
		if accOp == AccNone {
			req.latKind = latPut
		} else {
			req.latKind = latAcc
		}
		req.issuedAt = e.proc.Now()
	}

	target := tm.Owner
	e.mu.Lock()
	ts := e.targetLocked(target)
	ts.sent++
	ts.batched++
	ts.willConfirm++ // the batch always notifies
	ring := e.rings[target]
	if ring == nil {
		ring = &issueRing{}
		e.rings[target] = ring
	}
	ring.ops = append(ring.ops, bop)
	ring.bytes += len(wire)
	if attrs&AttrOrdering != 0 {
		ring.ordered = true
	}
	full := len(ring.ops) >= e.opts.BatchOps || ring.bytes >= e.opts.BatchBytes
	e.mu.Unlock()

	e.OpsIssued.Inc()
	e.BatchedOps.Inc()
	if t := e.tr(); t != nil {
		t.RecordOpf(e.proc.Now(), "enqueue", target, req.id, "bytes=%d rc=%v ring=%d", len(wire), bop.rc, target)
	}
	if !bop.rc {
		// Local completion: the data has been packed out of the origin
		// buffer already.
		req.complete(e.proc.Now(), nil)
	}
	if full {
		e.flushTarget(target)
	}
	return req, nil
}

// flushTarget transmits the target's pending issue ring, if any, as one
// aggregated wire message. It is a no-op when batching is disabled or the
// ring is empty. Callers must not hold e.mu.
func (e *Engine) flushTarget(world int) {
	if e.opts.BatchOps <= 0 {
		return
	}
	e.mu.Lock()
	ring := e.rings[world]
	if ring == nil || len(ring.ops) == 0 {
		e.mu.Unlock()
		return
	}
	ops := ring.ops
	ring.ops = nil
	ring.bytes = 0
	ordered := ring.ordered
	ring.ordered = false
	var seq uint64
	if ordered && !e.proc.NIC().Endpoint().Ordered() {
		ts := e.targetLocked(world)
		ts.orderSeq++
		seq = ts.orderSeq
	}
	// Aggregate ids come from the request sequence, not a separate
	// counter: trace spans key on (origin, id), and a batch envelope must
	// not share an id with any member request.
	e.reqSeq++
	id := e.reqSeq
	// Members were all issued under the current epoch: flushTarget runs
	// before Order/Complete advance it, so the envelope's stamp speaks
	// for every member.
	epoch := e.targetLocked(world).chkEpoch
	e.mu.Unlock()

	buf := batchBufPool.Get().([]byte)[:0]
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	var rcReqs []*Request
	for i := range ops {
		op := &ops[i]
		flags := byte(0)
		if op.atomic {
			flags |= batchFlagAtomic
		}
		if op.ordered {
			flags |= batchFlagOrdered
		}
		buf = append(buf, flags, byte(op.accOp))
		buf = binary.AppendUvarint(buf, op.handle)
		buf = binary.AppendUvarint(buf, uint64(op.disp))
		buf = binary.AppendUvarint(buf, uint64(op.tcount))
		if op.accOp == AccAxpy {
			var s [8]byte
			binary.LittleEndian.PutUint64(s[:], math.Float64bits(op.scale))
			buf = append(buf, s[:]...)
		}
		buf = binary.AppendUvarint(buf, uint64(len(op.dt)))
		buf = append(buf, op.dt...)
		buf = binary.AppendUvarint(buf, uint64(len(op.wire)))
		buf = append(buf, op.wire...)
		wirePool.Put(op.wire)
		op.wire = nil
		if op.rc {
			rcReqs = append(rcReqs, op.req)
		}
	}
	if len(rcReqs) > 0 {
		// Registered before the send so the notification cannot race past.
		e.cmplMu.Lock()
		e.pendingBatches[id] = &pendingBatch{target: world, reqs: rcReqs}
		e.cmplMu.Unlock()
	}

	m := newMsg(world, kBatch)
	m.Hdr[hReq] = id
	m.Hdr[hCount] = uint64(len(ops))
	m.Hdr[hMeta] = (epoch & 0xffffffff) << 32
	m.Hdr[hSeq] = seq
	m.Ops = len(ops)
	m.Payload = buf
	if _, err := e.proc.NIC().Send(e.proc.Now(), m); err != nil {
		// Either the world is shutting down or the link has failed; the
		// aggregate is lost, but nothing may be left hanging on it.
		e.cmplMu.Lock()
		delete(e.pendingBatches, id)
		e.cmplMu.Unlock()
		for _, r := range rcReqs {
			if errors.Is(err, ErrLinkFailed) {
				r.completeErr(e.proc.Now(), fmt.Errorf("core: batch to rank %d: %w", world, err))
			} else {
				r.complete(e.proc.Now(), nil)
			}
		}
		return
	}
	e.proc.NIC().CPU().AdvanceTo(m.SentAt)
	e.Batches.Inc()
	if t := e.tr(); t != nil {
		// One "pack" event per member links the member's request id to the
		// aggregate id, so a span can be followed from enqueue through the
		// shared wire message to its per-member apply.
		for i := range ops {
			t.RecordOpf(m.SentAt, "pack", world, ops[i].req.id, "batch=%d member=%d", id, i)
		}
		t.RecordOpf(m.SentAt, "batch", world, id, "ops=%d bytes=%d seq=%d arrive=%d", len(ops), len(m.Payload), seq, m.ArriveAt)
	}
}

// Flush transmits every pending issue ring of this rank (the request-batch
// flush of the notified-completion interface). A no-op when batching is
// disabled or nothing is pending.
func (e *Engine) Flush() {
	if e.opts.BatchOps <= 0 {
		return
	}
	e.mu.Lock()
	worlds := make([]int, 0, len(e.rings))
	for w, r := range e.rings {
		if len(r.ops) > 0 {
			worlds = append(worlds, w)
		}
	}
	e.mu.Unlock()
	sort.Ints(worlds)
	for _, w := range worlds {
		e.flushTarget(w)
	}
}

// PutNotify is Put with the Notify attribute: a notified put whose
// application the target reports back on a cumulative delivery counter
// (the UNR-style notified operation), feeding the Complete fast path.
func (e *Engine) PutNotify(origin memsim.Region, ocount int, odt datatype.Type, tm TargetMem, tdisp, tcount int, tdt datatype.Type, trank int, comm *runtime.Comm, attrs Attr) (*Request, error) {
	return e.xfer(OpPut, AccNone, 0, origin, ocount, odt, tm, tdisp, tcount, tdt, trank, comm, attrs|AttrNotify)
}

// wireOp is one decoded member of an aggregate message.
type wireOp struct {
	handle  uint64
	disp    int
	tcount  int
	accOp   AccOp
	atomic  bool
	ordered bool
	scale   float64
	tdt     datatype.Type
	wire    []byte // aliases the aggregate payload
}

// batchUvarint reads one bounded uvarint field from p.
func batchUvarint(p []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("core: truncated batch %s", what)
	}
	if v >= 1<<62 {
		return 0, nil, fmt.Errorf("core: batch %s %d out of range", what, v)
	}
	return v, p[n:], nil
}

// decodeBatch parses an aggregate payload into its member operations.
// Member wire slices alias p; the caller owns p until every member has
// been applied.
func decodeBatch(p []byte) ([]wireOp, error) {
	count, p, err := batchUvarint(p, "count")
	if err != nil {
		return nil, err
	}
	if count > uint64(len(p)) {
		return nil, fmt.Errorf("core: batch claims %d ops in %d bytes", count, len(p))
	}
	ops := make([]wireOp, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(p) < 2 {
			return nil, fmt.Errorf("core: truncated batch op header")
		}
		var op wireOp
		op.atomic = p[0]&batchFlagAtomic != 0
		op.ordered = p[0]&batchFlagOrdered != 0
		op.accOp = AccOp(p[1])
		if op.accOp > AccAxpy {
			return nil, fmt.Errorf("core: batch op has unknown accumulate op %d", p[1])
		}
		p = p[2:]
		var v uint64
		if op.handle, p, err = batchUvarint(p, "handle"); err != nil {
			return nil, err
		}
		if v, p, err = batchUvarint(p, "displacement"); err != nil {
			return nil, err
		}
		op.disp = int(v)
		if v, p, err = batchUvarint(p, "count"); err != nil {
			return nil, err
		}
		op.tcount = int(v)
		op.scale = 1
		if op.accOp == AccAxpy {
			if len(p) < 8 {
				return nil, fmt.Errorf("core: truncated batch axpy scale")
			}
			op.scale = math.Float64frombits(binary.LittleEndian.Uint64(p))
			p = p[8:]
		}
		if v, p, err = batchUvarint(p, "datatype length"); err != nil {
			return nil, err
		}
		if v > uint64(len(p)) {
			return nil, fmt.Errorf("core: batch datatype of %d bytes exceeds remaining %d", v, len(p))
		}
		dt, used, err := datatype.Decode(p[:v])
		if err != nil {
			return nil, err
		}
		if used != int(v) {
			return nil, fmt.Errorf("core: batch datatype frame has %d trailing bytes", int(v)-used)
		}
		op.tdt = dt
		p = p[v:]
		if v, p, err = batchUvarint(p, "payload length"); err != nil {
			return nil, err
		}
		if v > uint64(len(p)) {
			return nil, fmt.Errorf("core: batch payload of %d bytes exceeds remaining %d", v, len(p))
		}
		op.wire = p[:v:v]
		p = p[v:]
		ops = append(ops, op)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("core: batch has %d trailing bytes", len(p))
	}
	return ops, nil
}

// batchTrack follows the application of an aggregate's members and emits
// exactly one notification (and one payload-pool return) when the last one
// lands.
type batchTrack struct {
	e        *Engine
	src      int
	id       uint64
	payload  []byte
	software bool // some member applied by software (atomic serializer)

	mu        sync.Mutex
	remaining int
	count     int64
	end       vtime.Time
}

// opDone records one member application; the last one sends the batch
// notification carrying the highest cumulative applied count observed.
func (t *batchTrack) opDone(count int64, end vtime.Time) {
	t.mu.Lock()
	if count > t.count {
		t.count = count
	}
	t.end = vtime.Later(t.end, end)
	t.remaining--
	last := t.remaining == 0
	count, end = t.count, t.end
	t.mu.Unlock()
	if !last {
		return
	}
	batchBufPool.Put(t.payload)
	t.e.sendNotify(t.src, t.id, count, end, t.software)
}

// sendNotify ships a delivery-counter notification. Like remote-completion
// acks it rides the NIC-generated path when the hardware observed the
// deposit, and the CPU path when software (the atomic serializer) applied
// it.
func (e *Engine) sendNotify(dst int, id uint64, count int64, at vtime.Time, software bool) {
	m := newMsg(dst, kNotify)
	m.Hdr[hReq] = id
	m.Hdr[hCount] = uint64(count)
	if !software && e.proc.NIC().HardwareAcks() {
		e.sendReplyNIC(at, m)
	} else {
		e.sendReply(at, m)
	}
}

// appliedCount returns the cumulative applied-operation count for src.
func (e *Engine) appliedCount(src int) int64 {
	e.tgtMu.Lock()
	defer e.tgtMu.Unlock()
	return e.applied[src]
}

// handleBatch unpacks an aggregate message at the target and applies each
// member through the normal serialization paths; one notification answers
// the whole batch.
func (e *Engine) handleBatch(m *simnet.Message, at vtime.Time) {
	e.gateOrdered(m.Src, m.Hdr[hSeq], at, func(at vtime.Time) {
		ops, err := decodeBatch(m.Payload)
		if err != nil {
			// Malformed aggregate: the members are lost, but they must
			// still count toward completion thresholds or the origin's
			// Complete would hang. Hdr[hCount] carries the origin's claim.
			e.proc.NIC().BadReq.Inc()
			count := e.appliedCount(m.Src)
			for i := uint64(0); i < m.Hdr[hCount]; i++ {
				count = e.noteApplied(m.Src, at)
			}
			e.sendNotify(m.Src, m.Hdr[hReq], count, at, true)
			return
		}
		if len(ops) == 0 {
			e.sendNotify(m.Src, m.Hdr[hReq], e.appliedCount(m.Src), at, true)
			return
		}
		track := &batchTrack{e: e, src: m.Src, id: m.Hdr[hReq], payload: m.Payload, remaining: len(ops)}
		for i := range ops {
			op := &ops[i]
			if op.atomic {
				track.software = true
			}
			exp := e.lookupExposure(op.handle)
			e.scheduleApplyRange(m.Src, at, len(op.wire), op.atomic, op.ordered, exp, op.disp, datatype.ExtentOf(op.tcount, op.tdt), func(end vtime.Time) {
				deposited := false
				if exp == nil {
					e.proc.NIC().BadReq.Inc()
				} else {
					base := exp.region.Offset + op.disp
					var err error
					if op.accOp == AccNone || op.accOp == AccReplace {
						err = e.depositPut(base, op.wire, op.tcount, op.tdt)
					} else {
						err = e.depositAcc(base, op.wire, op.tcount, op.tdt, op.accOp, op.scale)
					}
					if err != nil {
						e.proc.NIC().BadReq.Inc()
					} else {
						e.notifyDeposit(m.Src, op.handle, op.disp, datatype.ExtentOf(op.tcount, op.tdt))
						deposited = true
					}
				}
				if c := e.ck(); c != nil && exp != nil {
					kind := AccessPut
					if op.accOp != AccNone && op.accOp != AccReplace {
						kind = AccessAcc
					}
					c.rec.RecordAccess(Access{
						Origin: m.Src, Target: e.proc.Rank(), Handle: op.handle,
						Disp: op.disp, Len: datatype.ExtentOf(op.tcount, op.tdt),
						Kind: kind, Atomic: op.atomic, Ordered: op.ordered,
						OpID: m.Hdr[hReq], Member: i, Epoch: m.Hdr[hMeta] >> 32, At: end,
					})
				}
				if t := e.tr(); t != nil {
					t.RecordOpf(end, "apply", m.Src, m.Hdr[hReq], "batched member=%d bytes=%d cost=%d", i, len(op.wire), int64(e.applyCost(len(op.wire))))
				}
				fin := func(end vtime.Time) { track.opDone(e.noteApplied(m.Src, end), end) }
				if deposited {
					// The member's counter bump (and, once all members are
					// done, the batch notification) waits for the buddy to
					// hold its bytes — pass-through when unreplicated.
					e.replicate(op.handle, exp, op.disp, datatype.ExtentOf(op.tcount, op.tdt), end, fin)
				} else {
					fin(end)
				}
			})
		}
	})
}

// handleNotify folds a delivery-counter report into the origin's
// confirmation state and completes any remote-completion members of the
// batch it answers.
func (e *Engine) handleNotify(m *simnet.Message, at vtime.Time) {
	e.Notifies.Inc()
	if t := e.tr(); t != nil {
		t.RecordOpf(at, "notify", m.Src, m.Hdr[hReq], "count=%d", m.Hdr[hCount])
	}
	e.noteConfirmed(m.Src, int64(m.Hdr[hCount]), at)
	if id := m.Hdr[hReq]; id != 0 {
		e.cmplMu.Lock()
		pb := e.pendingBatches[id]
		delete(e.pendingBatches, id)
		e.cmplMu.Unlock()
		if pb != nil {
			for _, r := range pb.reqs {
				r.complete(at, nil)
			}
		}
	}
}

// noteConfirmed raises the origin-side cumulative confirmation counter for
// a target. Reports carry cumulative counts and are folded with max(), so
// duplicates and reordering are harmless — and because EvConfirm is
// published only when the fold actually raised the counter, the event
// stream inherits that monotonicity: duplicates publish nothing.
func (e *Engine) noteConfirmed(target int, count int64, at vtime.Time) {
	if count <= 0 {
		return
	}
	raised := false
	var fired []*countWaiter
	e.cmplMu.Lock()
	if count > e.confirmed[target] {
		e.confirmed[target] = count
		e.confirmedAt[target] = vtime.Later(e.confirmedAt[target], at)
		raised = true
		fired = serviceWaiters(&e.confirmWaiters, target, count, at, nil)
		e.cmplCond.Broadcast()
	}
	e.cmplMu.Unlock()
	closeWaiters(fired)
	if !raised {
		return
	}
	if f := e.flight.Load(); f != nil {
		f.Note(int64(at), "confirm", target, 0, count, nil)
	}
	if q := e.evq.Load(); q != nil {
		q.push(Event{Kind: EvConfirm, At: at, Rank: target, Count: count})
		// Quiescence: the target has now confirmed everything issued to
		// it. sent is read after the fold, so a false positive is
		// impossible (sent only grows; confirmed <= sent always).
		e.mu.Lock()
		var sent int64
		if ts := e.targets[target]; ts != nil {
			sent = ts.sent
		}
		e.mu.Unlock()
		if sent > 0 && count >= sent {
			q.push(Event{Kind: EvQuiescent, At: at, Rank: target, Count: count})
		}
	}
}

// tryConfirmed reports whether the target has already confirmed
// application of the first threshold operations, and at what virtual time.
func (e *Engine) tryConfirmed(target int, threshold int64) (vtime.Time, bool) {
	e.cmplMu.Lock()
	defer e.cmplMu.Unlock()
	if e.confirmed[target] >= threshold {
		return e.confirmedAt[target], true
	}
	return 0, false
}

// waitConfirmed blocks until the target's confirmation counter reaches
// threshold, returning the virtual time of the confirming report. Callers
// must have established that every outstanding operation reports a counter
// (willConfirm >= sent), or the wait could hang. A failed link to the
// target ends the wait with the wrapped ErrLinkFailed instead — and a
// confirmed-dead target with the wrapped ErrRankFailed: the missing
// confirmations will never arrive. Under the progress serializer
// the waiter drains its own deferred queue, like waitAppliedFrom.
func (e *Engine) waitConfirmed(target int, threshold int64) (vtime.Time, error) {
	for {
		e.cmplMu.Lock()
		if e.confirmed[target] >= threshold {
			at := e.confirmedAt[target]
			e.cmplMu.Unlock()
			return at, nil
		}
		if err := e.failedRanks[target]; err != nil {
			// Confirmed death outranks a mere link failure: the target's
			// state is gone, not just the path to it.
			e.cmplMu.Unlock()
			return 0, err
		}
		if err := e.failedLinks[target]; err != nil {
			e.cmplMu.Unlock()
			return 0, err
		}
		if err := e.applyErr; err != nil {
			// Engine-fatal (shard worker panic): the missing confirmations
			// can never arrive from a poisoned apply pipeline.
			e.cmplMu.Unlock()
			return 0, err
		}
		if e.progQ == nil {
			e.cmplCond.Wait()
			e.cmplMu.Unlock()
			continue
		}
		e.cmplMu.Unlock()
		e.Progress()
		gosched()
	}
}
