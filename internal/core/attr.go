// Package core implements the paper's primary contribution: the strawman
// MPI-3 RMA interface (Section IV), with per-operation attributes, a
// non-collectively created target-memory object, datatype support,
// request-based completion, per-rank / all-ranks / collective completion
// and ordering calls, and the read-modify-write extensions discussed in
// Section V.
//
// The design requirements it realizes (paper Section IV):
//
//  1. No constraints on memory — target memory is exposed (Expose /
//     Associate) by its owner alone, never collectively.
//  2. Nonblocking operations with requests for overlap.
//  3. Overlapping access is permitted (result undefined), not erroneous.
//  4. Blocking single-call operations via the Blocking attribute.
//  5. Per-call (or per-communicator-default) consistency/atomicity/
//     completion attributes.
//  6. Non-cache-coherent and heterogeneous targets (memsim coherence
//     models; byte-order conversion through datatypes).
//  7. Noncontiguous transfers via datatypes.
//  8. Scalable completion: Complete(comm, AllRanks) and the collective
//     variants.
package core

import (
	"fmt"
	"strings"
	"time"
)

// Attr is a set of RMA operation attributes (paper Section III-A derives
// them from memory-consistency requirements; Section IV makes them
// per-call parameters).
type Attr uint32

const (
	// AttrNone requests the cheapest possible transfer: locally complete,
	// unordered, non-atomic.
	AttrNone Attr = 0
	// AttrOrdering guarantees this operation is applied at the target
	// after every earlier ordered operation from this origin to the same
	// target (the read/write-consistency "ordering property"). Free on
	// ordered networks; enforced with sequence numbers and a target-side
	// reorder buffer otherwise.
	//
	// Granularity note: ordering is guaranteed between operations that
	// are applied by the same target mechanism — among non-atomic
	// operations, and among atomic operations. A stream mixing atomic and
	// non-atomic accesses to the same location is applied by different
	// engines (the NIC agent vs the serializer) and may interleave;
	// programs needing a totally ordered mixed stream should give every
	// operation in it the same atomicity attribute. (The paper leaves
	// this granularity open; MPI-3's eventual accumulate-ordering rules
	// made the same class distinction.)
	AttrOrdering Attr = 1 << iota
	// AttrRemoteComplete makes the operation's request complete only when
	// the data has been applied at the target (remote completion), not
	// merely when it has left the origin.
	AttrRemoteComplete
	// AttrAtomic applies the operation atomically with respect to every
	// other atomic operation at the target, using the target's configured
	// serializer mechanism.
	AttrAtomic
	// AttrBlocking performs the operation in a single call: the call
	// returns only when the request would have completed.
	AttrBlocking
	// AttrNotify requests a delivery-counter notification: when the
	// operation has been applied, the target ships its cumulative
	// applied-operation counter back to the origin on the NIC-generated
	// (hardware) path. The request still completes locally — the
	// notification feeds the origin's per-target confirmation counter, so
	// a later Complete that finds every issued operation already confirmed
	// (or confirmable) skips the probe round-trip entirely. This is the
	// UNR-style "notified" operation attribute; batched operations get it
	// implicitly (one notification per aggregate message).
	AttrNotify
)

// String renders the attribute set, e.g. "ordering|atomic".
func (a Attr) String() string {
	if a == AttrNone {
		return "none"
	}
	var parts []string
	if a&AttrOrdering != 0 {
		parts = append(parts, "ordering")
	}
	if a&AttrRemoteComplete != 0 {
		parts = append(parts, "remote-complete")
	}
	if a&AttrAtomic != 0 {
		parts = append(parts, "atomic")
	}
	if a&AttrBlocking != 0 {
		parts = append(parts, "blocking")
	}
	if a&AttrNotify != 0 {
		parts = append(parts, "notify")
	}
	if rest := a &^ (AttrOrdering | AttrRemoteComplete | AttrAtomic | AttrBlocking | AttrNotify); rest != 0 {
		parts = append(parts, fmt.Sprintf("Attr(%#x)", uint32(rest)))
	}
	return strings.Join(parts, "|")
}

// AllRanks, passed as the target rank of Complete or Order, applies the
// operation to every rank of the communicator (the paper's MPI_ALL_RANKS).
const AllRanks = -1

// OpType selects the transfer direction of Xfer (the paper's rma_optype).
type OpType int

const (
	// OpPut writes origin data to target memory.
	OpPut OpType = iota
	// OpGet reads target memory into origin memory.
	OpGet
	// OpAccumulate combines origin data into target memory.
	OpAccumulate
	// OpInvoke is the expansion the paper sketches for the optype ("in
	// the future, this optype may be used for expanding the interface.
	// One example of such expansion is the invocation of a remote
	// function"): the origin buffer is the payload and the target
	// displacement names the registered handler id. Extension; see
	// Engine.RegisterAM.
	OpInvoke
)

// String returns the op type's name.
func (o OpType) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpAccumulate:
		return "accumulate"
	case OpInvoke:
		return "invoke"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// AccOp selects the combining operation of an accumulate (the paper's
// accumulate_optype). MPI-2 allowed all reduce operations; ARMCI only a
// daxpy — the strawman keeps the full set plus the daxpy for parity.
type AccOp uint8

const (
	// AccNone marks a plain put (no combining).
	AccNone AccOp = iota
	// AccReplace overwrites (MPI_REPLACE).
	AccReplace
	// AccSum adds (MPI_SUM).
	AccSum
	// AccProd multiplies (MPI_PROD).
	AccProd
	// AccMin keeps the minimum (MPI_MIN).
	AccMin
	// AccMax keeps the maximum (MPI_MAX).
	AccMax
	// AccAxpy computes target = scale*origin + target over float64
	// elements (the ARMCI-style daxpy accumulate).
	AccAxpy
)

// String returns the accumulate op's name.
func (o AccOp) String() string {
	switch o {
	case AccNone:
		return "none"
	case AccReplace:
		return "replace"
	case AccSum:
		return "sum"
	case AccProd:
		return "prod"
	case AccMin:
		return "min"
	case AccMax:
		return "max"
	case AccAxpy:
		return "axpy"
	default:
		return fmt.Sprintf("AccOp(%d)", uint8(o))
	}
}

// Defaults for the modelled cost of applying data into target memory.
const (
	// DefaultApplyOverhead is the fixed virtual-time cost of one memory
	// update at the target.
	DefaultApplyOverhead = 100 * time.Nanosecond
	// DefaultApplyPerKB is the virtual-time cost of updating 1024 bytes
	// of target memory (256ns/KB ≈ 4 GB/s of apply bandwidth).
	DefaultApplyPerKB = 256 * time.Nanosecond
)
