package core

import (
	"encoding/json"
	"errors"
	"os"
	"testing"
	"time"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/telemetry"
)

// TestLinkFailurePostmortem pins the acceptance criterion end to end: a
// chaos-injected permanent link failure (drop-everything on 0→1, retry
// budget exhausted) auto-dumps a postmortem whose event ring names the
// failed link and its retry history, and whose health snapshot carries
// the sticky error.
func TestLinkFailurePostmortem(t *testing.T) {
	dir := t.TempDir()
	w := newWorld(t, runtime.Config{
		Ranks: 2,
		Faults: &simnet.FaultPlan{
			Seed:  31,
			Links: map[simnet.LinkKey]simnet.LinkFaults{{Src: 0, Dst: 1}: {Drop: 1}},
		},
	})
	dumps := make(chan []string, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := w.Run(func(p *runtime.Proc) {
			e := Attach(p, Options{})
			e.EnableFlightRecorder(telemetry.FlightConfig{Dir: dir, Cap: 64})
			comm := p.Comm()
			if p.Rank() == 1 {
				tm, _ := e.ExposeNew(64)
				p.Send(0, 9999, tm.Encode())
				return
			}
			enc, _ := p.Recv(1, 9999)
			tm, err := DecodeTargetMem(enc)
			if err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			scratch := p.Alloc(8)
			if _, err := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 1, comm, AttrNone); err != nil && !errors.Is(err, ErrLinkFailed) {
				t.Errorf("put: %v", err)
				return
			}
			if err := e.Complete(comm, 1); !errors.Is(err, ErrLinkFailed) {
				t.Errorf("Complete returned %v, want wrapped ErrLinkFailed", err)
			}
			// The auto-dump fires on the same path that raised the sticky
			// error, so by the time Complete has surfaced it the file list
			// is stable.
			dumps <- e.FlightRecorder().Dumps()
		})
		if err != nil {
			t.Errorf("world: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("run hung after retry budget exhaustion")
	}
	files := <-dumps
	if len(files) != 1 {
		t.Fatalf("link failure produced %d postmortems, want 1", len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatalf("reading postmortem: %v", err)
	}
	var pm telemetry.Postmortem
	if err := json.Unmarshal(raw, &pm); err != nil {
		t.Fatalf("postmortem does not parse: %v", err)
	}
	if pm.Reason != "link-failed" || pm.Rank != 0 {
		t.Fatalf("postmortem reason=%q rank=%d, want link-failed on rank 0", pm.Reason, pm.Rank)
	}
	var failed, retries int
	for _, ev := range pm.Events {
		switch ev.Cat {
		case "link-failed":
			if ev.Peer != 1 {
				t.Errorf("link-failed event names peer %d, want 1", ev.Peer)
			}
			if ev.Err == "" {
				t.Error("link-failed event carries no error text")
			}
			failed++
		case "retransmit":
			if ev.Peer == 1 {
				retries++
			}
		}
	}
	if failed == 0 {
		t.Fatal("postmortem ring has no link-failed event")
	}
	if retries == 0 {
		t.Fatal("postmortem ring has no retry history for the failed link")
	}
	if pm.Health == nil || len(pm.Health.Sticky) == 0 {
		t.Fatalf("postmortem health misses the sticky error: %+v", pm.Health)
	}
}
