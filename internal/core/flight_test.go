package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"testing"
	"time"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/telemetry"
)

// TestLinkFailurePostmortem pins the acceptance criterion end to end: a
// chaos-injected permanent link failure (drop-everything on 0→1, retry
// budget exhausted) auto-dumps a postmortem whose event ring names the
// failed link and its retry history, and whose health snapshot carries
// the sticky error.
func TestLinkFailurePostmortem(t *testing.T) {
	dir := t.TempDir()
	w := newWorld(t, runtime.Config{
		Ranks: 2,
		Faults: &simnet.FaultPlan{
			Seed:  31,
			Links: map[simnet.LinkKey]simnet.LinkFaults{{Src: 0, Dst: 1}: {Drop: 1}},
		},
	})
	dumps := make(chan []string, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := w.Run(func(p *runtime.Proc) {
			e := Attach(p, Options{})
			e.EnableFlightRecorder(telemetry.FlightConfig{Dir: dir, Cap: 64})
			comm := p.Comm()
			if p.Rank() == 1 {
				tm, _ := e.ExposeNew(64)
				p.Send(0, 9999, tm.Encode())
				return
			}
			enc, _ := p.Recv(1, 9999)
			tm, err := DecodeTargetMem(enc)
			if err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			scratch := p.Alloc(8)
			if _, err := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 1, comm, AttrNone); err != nil && !errors.Is(err, ErrLinkFailed) {
				t.Errorf("put: %v", err)
				return
			}
			if err := e.Complete(comm, 1); !errors.Is(err, ErrLinkFailed) {
				t.Errorf("Complete returned %v, want wrapped ErrLinkFailed", err)
			}
			// The auto-dump fires on the same path that raised the sticky
			// error, so by the time Complete has surfaced it the file list
			// is stable.
			dumps <- e.FlightRecorder().Dumps()
		})
		if err != nil {
			t.Errorf("world: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("run hung after retry budget exhaustion")
	}
	files := <-dumps
	if len(files) != 1 {
		t.Fatalf("link failure produced %d postmortems, want 1", len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatalf("reading postmortem: %v", err)
	}
	var pm telemetry.Postmortem
	if err := json.Unmarshal(raw, &pm); err != nil {
		t.Fatalf("postmortem does not parse: %v", err)
	}
	if pm.Reason != "link-failed" || pm.Rank != 0 {
		t.Fatalf("postmortem reason=%q rank=%d, want link-failed on rank 0", pm.Reason, pm.Rank)
	}
	var failed, retries int
	for _, ev := range pm.Events {
		switch ev.Cat {
		case "link-failed":
			if ev.Peer != 1 {
				t.Errorf("link-failed event names peer %d, want 1", ev.Peer)
			}
			if ev.Err == "" {
				t.Error("link-failed event carries no error text")
			}
			failed++
		case "retransmit":
			if ev.Peer == 1 {
				retries++
			}
		}
	}
	if failed == 0 {
		t.Fatal("postmortem ring has no link-failed event")
	}
	if retries == 0 {
		t.Fatal("postmortem ring has no retry history for the failed link")
	}
	if pm.Health == nil || len(pm.Health.Sticky) == 0 {
		t.Fatalf("postmortem health misses the sticky error: %+v", pm.Health)
	}
}

// TestRankDeathPostmortem pins the robustness PR's forensic criterion:
// when a rank is crash-injected, the promoting buddy's auto-dumped
// postmortem names the whole recovery — the dead rank, the buddy itself,
// the spare the replicas were replayed onto, and the replayed version
// range — so a single file reconstructs the death without the console.
func TestRankDeathPostmortem(t *testing.T) {
	dir := t.TempDir()
	const (
		victim   = 1
		promoter = 2 // the victim's buddy, (victim+1) mod 3
		spare    = 3 // the lone spare's world rank
	)
	plan := &simnet.FaultPlan{
		Seed:      99,
		RankKills: []simnet.RankKill{{Rank: victim, At: rdKillAt}},
	}
	w := newWorld(t, runtime.Config{Ranks: 3, Spares: 1, Seed: 11, Faults: plan})
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(p *runtime.Proc) { pmDeathRank(t, w, p, dir) })
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("world: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("rank-death postmortem run wedged")
	}

	eng := Attached(w.Proc(promoter))
	if eng == nil {
		t.Fatal("promoter engine not attached")
	}
	files := eng.FlightRecorder().Dumps()
	if len(files) != 1 {
		t.Fatalf("promoter produced %d postmortems, want exactly 1 for the death", len(files))
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatalf("reading postmortem: %v", err)
	}
	var pm telemetry.Postmortem
	if err := json.Unmarshal(raw, &pm); err != nil {
		t.Fatalf("postmortem does not parse: %v", err)
	}
	if pm.Reason != "rank-death" || pm.Rank != promoter {
		t.Fatalf("postmortem reason=%q rank=%d, want rank-death on rank %d", pm.Reason, pm.Rank, promoter)
	}
	rd := pm.RankDeath
	if rd == nil {
		t.Fatal("promoter postmortem carries no rank_death report")
	}
	if rd.Dead != victim || rd.Buddy != promoter || rd.Spare != spare {
		t.Fatalf("rank_death names dead=%d buddy=%d spare=%d, want %d/%d/%d",
			rd.Dead, rd.Buddy, rd.Spare, victim, promoter, spare)
	}
	if rd.Regions != 1 {
		t.Fatalf("rank_death replayed %d regions, want 1", rd.Regions)
	}
	if rd.FromVersion != 1 || rd.ToVersion < 1 {
		t.Fatalf("rank_death version range %d..%d, want 1..>=1", rd.FromVersion, rd.ToVersion)
	}
	var promote bool
	for _, ev := range pm.Events {
		if ev.Cat == "replica-promote" {
			promote = true
		}
	}
	if !promote {
		t.Fatal("postmortem ring has no replica-promote event")
	}
}

// pmDeathRank is one rank's workload for TestRankDeathPostmortem: the
// victim and its buddy are pure targets, writer 0 hammers the victim
// until the death surfaces, then converges one write on the successor.
func pmDeathRank(t *testing.T, w *runtime.World, p *runtime.Proc, dir string) {
	e := Attach(p, Options{})
	e.EnableFlightRecorder(telemetry.FlightConfig{Dir: dir, Cap: 128})
	if err := e.EnableReplication(); err != nil {
		t.Errorf("enable replication: %v", err)
		panic("postmortem: replication unavailable")
	}
	if p.IsSpare() {
		p.Recv(0, rdTagFin)
		return
	}
	comm := p.Comm()
	tm, _ := e.ExposeNew(rdSlot)
	if p.Rank() != 0 {
		// Victim and buddy serve from the NIC agent; no rank-function
		// work. The victim additionally gates the writer: its expose
		// mirror must leave the NIC while the TX lane is idle — a writer
		// flooding puts from t=0 backs the lane up until the mirror's
		// departure lands past the kill and the buddy never gets a
		// replica to promote. This plan has no drop faults, so the ready
		// message's first copy is delivered deterministically.
		if p.Rank() == 1 {
			p.Send(0, rdTagReady, nil)
		}
		return
	}
	p.Recv(1, rdTagReady)
	// Exposures are symmetric (one identical ExposeNew per compute rank),
	// so the writer forms the victim's descriptor locally instead of
	// racing the kill for a wire delivery (see rankdeath_test.go).
	vtm := tm
	vtm.Owner = 1
	scratch := p.Alloc(rdSlot)
	var failed error
	for round := 0; failed == nil; round++ {
		p.WriteLocal(scratch, 0, bytes.Repeat([]byte{byte(round + 1)}, rdSlot))
		failed = rdPutComplete(e, comm, scratch, vtm, 1, 0)
	}
	if !errors.Is(failed, ErrRankFailed) {
		t.Errorf("death surfaced as %v, want wrapped ErrRankFailed", failed)
		panic("postmortem: wrong sentinel")
	}
	succ, err := w.Members().AwaitRebuilt(1)
	if err != nil {
		t.Errorf("await rebuild: %v", err)
		panic("postmortem: rebuild unavailable")
	}
	if err := rdPutComplete(e, comm, scratch, vtm, succ, 0); err != nil {
		t.Errorf("op to successor %d failed: %v", succ, err)
		panic("postmortem: successor op failed")
	}
	p.Send(succ, rdTagFin, nil)
}
