package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/vtime"
)

// TestCompletionQueueBounds exercises the queue directly: FIFO order,
// Poll on empty, drop-with-count at the rim, and Wait unblocking on close.
func TestCompletionQueueBounds(t *testing.T) {
	q := newCompletionQueue(4)
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", q.Cap())
	}
	if _, ok := q.Poll(); ok {
		t.Fatal("Poll on empty queue returned an event")
	}
	for i := 0; i < 6; i++ {
		q.push(Event{Kind: EvDelivery, Count: int64(i)})
	}
	if got := q.Published.Value(); got != 6 {
		t.Errorf("Published = %d, want 6", got)
	}
	if got := q.Dropped.Value(); got != 2 {
		t.Errorf("Dropped = %d, want 2 (capacity 4, 6 pushed)", got)
	}
	if got := q.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	// Drop-newest: the survivors are the first four, in order, and Seq
	// numbers publication order.
	for i := 0; i < 4; i++ {
		ev, ok := q.Poll()
		if !ok {
			t.Fatalf("Poll %d: empty", i)
		}
		if ev.Count != int64(i) || ev.Seq != uint64(i+1) {
			t.Errorf("Poll %d = count %d seq %d, want count %d seq %d", i, ev.Count, ev.Seq, i, i+1)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, ok := q.Wait(); ok {
			t.Error("Wait on closed empty queue returned an event")
		}
	}()
	q.close()
	wg.Wait()
}

// TestEventsDeliveryAndQuiescence drives a 2-rank notified-put workload
// and checks the event stream at both ends: the target sees one
// EvDelivery per applied op with monotone cumulative counts; the origin
// sees monotone EvConfirm events and an EvQuiescent exactly when
// everything issued has been confirmed; virtual-time stamps never run
// backwards within a kind.
func TestEventsDeliveryAndQuiescence(t *testing.T) {
	const ops = 8
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 21})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		q := e.EnableEvents(64)
		comm := p.Comm()
		if p.Rank() == 1 {
			tm, _ := e.ExposeNew(64)
			p.Send(0, 9999, tm.Encode())
			if _, err := e.waitAppliedFrom([]int{0}, ops); err != nil {
				t.Errorf("target wait: %v", err)
			}
			p.Barrier()
			// Drain: exactly ops deliveries from rank 0, counts 1..ops.
			var got int64
			for {
				ev, ok := q.Poll()
				if !ok {
					break
				}
				if ev.Kind != EvDelivery {
					t.Errorf("target saw %v event, want only delivery", ev.Kind)
					continue
				}
				if ev.Rank != 0 {
					t.Errorf("delivery from rank %d, want 0", ev.Rank)
				}
				if ev.Count != got+1 {
					t.Errorf("delivery count %d after %d, want cumulative", ev.Count, got)
				}
				got = ev.Count
			}
			if got != ops {
				t.Errorf("target saw %d deliveries, want %d", got, ops)
			}
			return
		}
		enc, _ := p.Recv(1, 9999)
		tm, err := DecodeTargetMem(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		scratch := p.Alloc(8)
		for i := 0; i < ops; i++ {
			if _, err := e.PutNotify(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 1, comm, AttrNone); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		if err := e.Complete(comm, 1); err != nil {
			t.Fatalf("complete: %v", err)
		}
		p.Barrier()
		var confirmed int64
		var lastAt vtime.Time
		sawQuiescent := false
		for {
			ev, ok := q.Poll()
			if !ok {
				break
			}
			switch ev.Kind {
			case EvConfirm:
				if ev.Count <= confirmed {
					t.Errorf("confirm count %d after %d, want strictly rising", ev.Count, confirmed)
				}
				confirmed = ev.Count
				if ev.At < lastAt {
					t.Errorf("confirm at %d after %d, want monotone stamps", ev.At, lastAt)
				}
				lastAt = ev.At
			case EvQuiescent:
				if ev.Count != ops {
					t.Errorf("quiescent at count %d, want %d", ev.Count, ops)
				}
				if confirmed != ops {
					t.Errorf("quiescent published before final confirm (confirmed=%d)", confirmed)
				}
				sawQuiescent = true
			case EvRequestDone:
				if ev.Err != nil {
					t.Errorf("request %d failed: %v", ev.Req.ID(), ev.Err)
				}
			default:
				t.Errorf("origin saw unexpected %v event", ev.Kind)
			}
		}
		if confirmed != ops {
			t.Errorf("origin confirmed %d, want %d", confirmed, ops)
		}
		if !sawQuiescent {
			t.Error("origin never saw the quiescent event")
		}
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}

// TestOnDoneExactlyOnce: callbacks registered before completion fire once
// on completion with the request's error; callbacks registered after run
// inline; multiple registrations each fire exactly once.
func TestOnDoneExactlyOnce(t *testing.T) {
	const ops = 16
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 23})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 64)
		if p.Rank() != 0 {
			scratch := p.Alloc(8)
			var fired [ops]atomic.Int32
			reqs := make([]*Request, ops)
			for i := 0; i < ops; i++ {
				r, err := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrRemoteComplete)
				if err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
				reqs[i] = r
				i := i
				r.OnDone(func(err error) {
					if err != nil {
						t.Errorf("request %d completed with %v", i, err)
					}
					fired[i].Add(1)
				})
			}
			if err := e.Complete(comm, 0); err != nil {
				t.Fatalf("complete: %v", err)
			}
			for i := range fired {
				if n := fired[i].Load(); n != 1 {
					t.Errorf("request %d callback fired %d times, want exactly 1", i, n)
				}
			}
			// After-the-fact registration runs inline, again exactly once.
			ranInline := false
			reqs[0].OnDone(func(err error) { ranInline = true })
			if !ranInline {
				t.Error("OnDone on a completed request did not run inline")
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}

// TestSelectArms exercises each Select arm in a healthy 2-rank world:
// OnRequest, OnApplied (target side), OnConfirmed and OnQuiescent
// (origin side), plus validation failures (zero cases, zero-value case,
// nil request, rank out of range).
func TestSelectArms(t *testing.T) {
	const ops = 4
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 29})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()

		// Validation errors are synchronous and wrap ErrBadHandle.
		if _, _, err := e.Select(comm); !errors.Is(err, ErrBadHandle) {
			t.Errorf("Select() = %v, want wrapped ErrBadHandle", err)
		}
		if _, _, err := e.Select(comm, SelectCase{}); !errors.Is(err, ErrBadHandle) {
			t.Errorf("Select(zero case) = %v, want wrapped ErrBadHandle", err)
		}
		if _, _, err := e.Select(comm, OnRequest(nil)); !errors.Is(err, ErrBadHandle) {
			t.Errorf("Select(nil request) = %v, want wrapped ErrBadHandle", err)
		}
		if _, _, err := e.Select(comm, OnApplied(5, 1)); !errors.Is(err, ErrBadHandle) {
			t.Errorf("Select(rank 5 of 2) = %v, want wrapped ErrBadHandle", err)
		}

		if p.Rank() == 1 {
			tm, _ := e.ExposeNew(64)
			p.Send(0, 9999, tm.Encode())
			// Target-side: wait for all ops to land via OnApplied.
			idx, ev, err := e.Select(comm, OnApplied(0, ops))
			if err != nil || idx != 0 {
				t.Errorf("Select(OnApplied) = %d, %v", idx, err)
			}
			if ev.Kind != EvDelivery || ev.Count < ops || ev.Rank != 0 {
				t.Errorf("OnApplied event = %+v, want delivery count>=%d from 0", ev, ops)
			}
			if now := p.Now(); now < ev.At {
				t.Errorf("clock %d behind event time %d after Select", now, ev.At)
			}
			p.Barrier()
			return
		}
		enc, _ := p.Recv(1, 9999)
		tm, err := DecodeTargetMem(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		scratch := p.Alloc(8)
		var reqs []*Request
		for i := 0; i < ops; i++ {
			r, err := e.PutNotify(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 1, comm, AttrRemoteComplete)
			if err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
			reqs = append(reqs, r)
		}
		// Any-of over all requests: reap each exactly once.
		pending := append([]*Request(nil), reqs...)
		for len(pending) > 0 {
			cases := make([]SelectCase, len(pending))
			for i, r := range pending {
				cases[i] = OnRequest(r)
			}
			idx, ev, err := e.Select(comm, cases...)
			if err != nil {
				t.Fatalf("Select(requests): %v", err)
			}
			if ev.Kind != EvRequestDone || ev.Req != pending[idx] || ev.Err != nil {
				t.Errorf("request event = %+v, want done request %d", ev, pending[idx].ID())
			}
			pending = append(pending[:idx], pending[idx+1:]...)
		}
		// Origin-side counters: all ops were notified, so confirmation
		// reaches ops and the target goes quiescent.
		idx, ev, err := e.Select(comm, OnConfirmed(1, ops))
		if err != nil || idx != 0 || ev.Kind != EvConfirm || ev.Count < ops {
			t.Errorf("Select(OnConfirmed) = %d, %+v, %v", idx, ev, err)
		}
		idx, ev, err = e.Select(comm, OnQuiescent(1))
		if err != nil || idx != 0 || ev.Kind != EvQuiescent {
			t.Errorf("Select(OnQuiescent) = %d, %+v, %v", idx, ev, err)
		}
		if err := e.Complete(comm, 1); err != nil {
			t.Fatalf("complete: %v", err)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}

// TestSelectMixedArms: a Select over a slow counter case and a fast
// request case returns the fast one; the loser's waiter is abandoned and
// pruned by later traffic rather than leaking a wakeup.
func TestSelectMixedArms(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 31})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 64)
		if p.Rank() != 0 {
			scratch := p.Alloc(8)
			r, err := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrNone)
			if err != nil {
				t.Fatalf("put: %v", err)
			}
			// The local-completion put finishes immediately; the
			// OnApplied(0, 1000) arm can never fire (rank 0 sends us
			// nothing). Select must return the request arm.
			idx, ev, err := e.Select(comm, OnApplied(0, 1000), OnRequest(r))
			if err != nil {
				t.Fatalf("Select: %v", err)
			}
			if idx != 1 || ev.Kind != EvRequestDone {
				t.Errorf("Select = case %d kind %v, want case 1 request-done", idx, ev.Kind)
			}
			if err := e.Complete(comm, 0); err != nil {
				t.Fatalf("complete: %v", err)
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}

// TestRequestErrVisibleBeforeDone is the lost-wakeup regression test for
// the Done/Err contract: a goroutine released by <-Done() must observe
// the request's sticky error, for every terminal path, including requests
// failed asynchronously by a link failure.
func TestRequestErrVisibleBeforeDone(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 33})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		if p.Rank() != 0 {
			return
		}
		// A hand-built request failed on another goroutine: the error must
		// be readable the instant the channel closes.
		r := e.newRequest(1)
		errCh := make(chan error, 1)
		go func() {
			<-r.Done()
			errCh <- r.Err()
		}()
		wantErr := errors.New("injected terminal failure")
		r.completeErr(p.Now(), wantErr)
		if got := <-errCh; !errors.Is(got, wantErr) {
			t.Errorf("observer woken by Done saw Err = %v, want %v", got, wantErr)
		}
		// And OnDone delivers the same error, inline on the completed
		// request.
		var cbErr error
		r.OnDone(func(err error) { cbErr = err })
		if !errors.Is(cbErr, wantErr) {
			t.Errorf("OnDone after completion saw %v, want %v", cbErr, wantErr)
		}
		if !errors.Is(r.Err(), wantErr) {
			t.Errorf("Err = %v, want %v", r.Err(), wantErr)
		}
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}

// TestIssueFailureCompletesRequest is the orphaned-request regression
// test: when the issue path fails after the request has entered the
// engine table (send refused by a failed link), the request must be
// completed with the error — Done fires, OnDone fires, the table does
// not leak — instead of being abandoned undone.
func TestIssueFailureCompletesRequest(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 35})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() != 0 {
			tm, _ := e.ExposeNew(64)
			p.Send(0, 9999, tm.Encode())
			return
		}
		enc, _ := p.Recv(1, 9999)
		tm, err := DecodeTargetMem(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Fail the link by hand (the relay path does this via its
		// callback), then issue: the relay-less send still succeeds, so
		// exercise the appendBatch sticky-check and the reqs-table
		// accounting directly.
		e.onLinkFailed(1, p.Now(), ErrLinkFailed)
		if !errors.Is(e.Err(), ErrLinkFailed) {
			t.Fatalf("Err = %v after injected link failure", e.Err())
		}
		scratch := p.Alloc(8)
		e.mu.Lock()
		before := len(e.reqs)
		e.mu.Unlock()
		_, xerr := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 1, comm, AttrNone)
		e.mu.Lock()
		after := len(e.reqs)
		e.mu.Unlock()
		if after != before {
			t.Errorf("engine table grew from %d to %d across a failed issue: orphaned request", before, after)
		}
		// Whether the send was refused or rode the degraded wire, no
		// request may be left undone in the table; if an error was
		// returned the request (if created) was completed with it.
		_ = xerr
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}

// TestBatchedIssueFailsFastOnDeadLink: with batching enabled and the link
// already failed sticky, appendBatch must refuse the operation instead of
// parking it in the issue ring (the Await-before-flush lost wakeup).
func TestBatchedIssueFailsFastOnDeadLink(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 37})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{BatchOps: 8})
		comm := p.Comm()
		if p.Rank() != 0 {
			tm, _ := e.ExposeNew(64)
			p.Send(0, 9999, tm.Encode())
			return
		}
		enc, _ := p.Recv(1, 9999)
		tm, err := DecodeTargetMem(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		e.onLinkFailed(1, p.Now(), ErrLinkFailed)
		scratch := p.Alloc(8)
		_, perr := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 1, comm, AttrNone)
		if !errors.Is(perr, ErrLinkFailed) {
			t.Errorf("batched put to dead link = %v, want synchronous wrapped ErrLinkFailed", perr)
		}
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
}
