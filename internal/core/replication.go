package core

import (
	"fmt"
	"sync"
	"time"

	"mpi3rma/internal/memsim"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/vtime"
)

// Buddy replication and rebuild (DESIGN.md §14).
//
// With replication enabled, every region a rank exposes is mirrored
// in-band to its buddy — rank (r+1) mod n over the compute ranks — so a
// single rank death loses nothing: the buddy holds a byte-exact replica
// and replays it onto a spare.
//
// The protocol is deliberately minimal:
//
//   - Expose sends kReplExpose (handle, size) plus an initial full
//     snapshot, so a region exposed with prior contents starts mirrored.
//   - Every mutating apply (put, accumulate, RMW, batch member) snapshots
//     the bytes it touched and ships them as kReplUpdate stamped with a
//     per-handle version drawn under the replication mutex. Snapshots are
//     taken after the deposit, and version order equals snapshot order,
//     so the highest version covering a byte always carries that byte's
//     final value: the buddy applies updates in contiguous version order
//     and converges without any extra barrier.
//   - The operation's completion bookkeeping — finishApply with its ack
//     or notification, an RMW's value reply, a batch member's counter
//     bump — is DEFERRED until the buddy's cumulative kReplAck covers the
//     update's version. Completion therefore implies replica durability:
//     any operation an origin saw complete survives the primary's death.
//
// When the membership service confirms a death, the dead rank's buddy
// promotes: it binds a spare, replays each replica as one kRebuild frame,
// and finishes with kRebuildDone carrying the frame count (the frames may
// arrive in any order). The spare exposes each region at the dead rank's
// original handle, seeds its own version counters from the replayed
// versions, and — once every frame has landed — reports RebuildComplete
// and starts replicating back to the promoter, which already holds the
// replica at exactly the right version: continued protection costs zero
// extra transfer. A rank whose buddy died flushes its deferred
// completions (no replica can be confirmed while the buddy is down),
// degrades to direct completion, and re-syncs a full snapshot to the
// spare once the rebuild finishes.
//
// Metadata is O(1) per rank per exposure: a version counter and a byte
// buffer on the buddy — no per-operation log survives the ack.

// replKey names one replica held on behalf of another rank.
type replKey struct {
	owner  int
	handle uint64
}

// replUpd is one out-of-order update held until its predecessors arrive.
type replUpd struct {
	disp int
	data []byte
}

// replica is the buddy-side mirror of one exposed region.
type replica struct {
	size int
	buf  []byte
	next uint64 // next version to apply (versions start at 1)
	held map[uint64]replUpd
}

// apply lands one update, growing the buffer for updates that outrun the
// kReplExpose announcement on an unordered wire.
func (r *replica) apply(disp int, data []byte) {
	if disp < 0 {
		return
	}
	if need := disp + len(data); need > len(r.buf) {
		r.buf = append(r.buf, make([]byte, need-len(r.buf))...)
	}
	copy(r.buf[disp:], data)
}

// deferredFin is one operation's completion bookkeeping awaiting the
// buddy's acknowledgement of the update that carries its bytes.
type deferredFin struct {
	version uint64
	end     vtime.Time
	fin     func(end vtime.Time)
}

// replState is one engine's replication bookkeeping: primary-side version
// counters and deferred completions for its own exposures, buddy-side
// replicas it holds for its ward, and spare-side rebuild progress. fins
// are never run with mu held (they take the engine's completion locks).
type replState struct {
	mu      sync.Mutex //rmalint:lockrank 35
	enabled bool
	buddy   int  // rank mirroring this rank's exposures (-1 = none yet)
	down    bool // buddy confirmed dead, successor not yet rebuilt

	// Primary side, keyed by this rank's exposure handle.
	sizes    map[uint64]int
	version  map[uint64]uint64
	acked    map[uint64]uint64
	deferred map[uint64][]deferredFin // version-ordered

	// Buddy side.
	replicas map[replKey]*replica

	// Spare side: rebuild frames received / expected per dead rank
	// (expected is set by kRebuildDone, which may arrive first).
	rebuildGot  map[int]int
	rebuildNeed map[int]int

	// quit stops the progress sentinel goroutine (started by the first
	// EnableReplication, closed by Engine.Close).
	quit chan struct{}
}

func (st *replState) init() {
	st.buddy = -1
	st.sizes = make(map[uint64]int)
	st.version = make(map[uint64]uint64)
	st.acked = make(map[uint64]uint64)
	st.deferred = make(map[uint64][]deferredFin)
	st.replicas = make(map[replKey]*replica)
	st.rebuildGot = make(map[int]int)
	st.rebuildNeed = make(map[int]int)
}

// replicaLocked returns (creating if needed) the replica for key. Caller
// holds st.mu.
func (st *replState) replicaLocked(key replKey) *replica {
	r := st.replicas[key]
	if r == nil {
		r = &replica{next: 1, held: make(map[uint64]replUpd)}
		st.replicas[key] = r
	}
	return r
}

// EnableReplication turns on buddy replication for regions this rank
// exposes from now on: each is mirrored to rank (me+1) mod n and every
// mutating operation completes only once the buddy acknowledged its
// bytes. Enable it on every compute rank (it is SPMD, like the rest of
// the engine) and before exposing the regions that need protection. On a
// spare it arms the state only; the buddy binding arrives with the
// rebuild. Replication is a property of the engine for its lifetime —
// there is no disable.
func (e *Engine) EnableReplication() error {
	n := e.proc.Size()
	if n < 2 {
		return fmt.Errorf("core: replication requires at least 2 compute ranks, have %d", n)
	}
	st := &e.repl
	st.mu.Lock()
	defer st.mu.Unlock()
	st.enabled = true
	if !e.proc.IsSpare() {
		st.buddy = (e.proc.Rank() + 1) % n
	}
	if st.quit == nil {
		st.quit = make(chan struct{})
		go e.progressSentinel(st.quit)
	}
	return nil
}

// ReplicationEnabled reports whether EnableReplication was called.
func (e *Engine) ReplicationEnabled() bool {
	st := &e.repl
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.enabled
}

// Buddy returns the rank currently mirroring this rank's exposures, or
// -1 when replication is off or the buddy is down awaiting a rebuild.
func (e *Engine) Buddy() (int, bool) {
	st := &e.repl
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.enabled || st.down || st.buddy < 0 {
		return -1, false
	}
	return st.buddy, true
}

// replOnExpose mirrors a new exposure to the buddy: the announcement and
// an initial full snapshot (version 1), so regions exposed with prior
// contents start protected. Called by Expose after the handle is
// published, without the engine mutex held.
func (e *Engine) replOnExpose(h uint64, region memsim.Region) {
	st := &e.repl
	st.mu.Lock()
	if !st.enabled {
		st.mu.Unlock()
		return
	}
	st.sizes[h] = region.Size
	buddy := st.buddy
	if buddy < 0 || st.down {
		// Tracked for the post-rebuild resync, but nothing to send now.
		st.mu.Unlock()
		return
	}
	buf := make([]byte, region.Size)
	if err := e.proc.Mem().RemoteRead(region.Offset, buf); err != nil {
		st.mu.Unlock()
		return
	}
	st.version[h]++
	v := st.version[h]
	st.mu.Unlock()
	e.replSendExpose(buddy, h, region.Size)
	e.replSendUpdate(buddy, h, 0, v, buf, e.proc.Now())
}

// replSendExpose ships one kReplExpose announcement.
func (e *Engine) replSendExpose(buddy int, h uint64, size int) {
	m := newMsg(buddy, kReplExpose)
	m.Hdr[hHandle] = h
	m.Hdr[hCount] = uint64(size)
	e.sendReply(e.proc.Now(), m)
}

// replSendUpdate ships one versioned snapshot.
func (e *Engine) replSendUpdate(buddy int, h uint64, disp int, v uint64, data []byte, at vtime.Time) {
	m := newMsg(buddy, kReplUpdate)
	m.Hdr[hHandle] = h
	m.Hdr[hDisp] = uint64(disp)
	m.Hdr[hCount] = v
	m.Payload = data
	e.ReplUpdates.Inc()
	e.sendReply(at, m)
}

// replicate is the deferral point of every mutating apply: fin is the
// operation's completion bookkeeping (finishApply plus any reply). For an
// unreplicated exposure — replication off, buddy down, or a handle
// exposed before EnableReplication — fin runs immediately and the apply
// keeps its pre-replication semantics. Otherwise the freshly deposited
// bytes are snapshotted under the replication mutex (so version order
// equals snapshot order), shipped to the buddy, and fin runs only when
// the buddy's cumulative acknowledgement covers the drawn version.
func (e *Engine) replicate(h uint64, exp *exposure, disp, length int, end vtime.Time, fin func(end vtime.Time)) {
	st := &e.repl
	st.mu.Lock()
	if !st.enabled || st.down || st.buddy < 0 {
		st.mu.Unlock()
		fin(end)
		return
	}
	if _, tracked := st.sizes[h]; !tracked {
		st.mu.Unlock()
		fin(end)
		return
	}
	if disp < 0 || length <= 0 || disp+length > exp.region.Size {
		// The deposit rejected (or clipped to nothing); nothing mutated.
		st.mu.Unlock()
		fin(end)
		return
	}
	buf := make([]byte, length)
	if err := e.proc.Mem().RemoteRead(exp.region.Offset+disp, buf); err != nil {
		st.mu.Unlock()
		fin(end)
		return
	}
	st.version[h]++
	v := st.version[h]
	buddy := st.buddy
	st.deferred[h] = append(st.deferred[h], deferredFin{version: v, end: end, fin: fin})
	st.mu.Unlock()
	e.replSendUpdate(buddy, h, disp, v, buf, end)
}

// handleReplExpose creates (or sizes) the replica for a ward's exposure.
func (e *Engine) handleReplExpose(m *simnet.Message, at vtime.Time) {
	st := &e.repl
	st.mu.Lock()
	r := st.replicaLocked(replKey{owner: m.Src, handle: m.Hdr[hHandle]})
	if size := int(m.Hdr[hCount]); size > r.size {
		r.size = size
		if size > len(r.buf) {
			r.buf = append(r.buf, make([]byte, size-len(r.buf))...)
		}
	}
	st.mu.Unlock()
}

// handleReplUpdate lands one versioned snapshot on the replica, applying
// in contiguous version order (out-of-order arrivals are held), and
// answers with the cumulative replicated version.
func (e *Engine) handleReplUpdate(m *simnet.Message, at vtime.Time) {
	st := &e.repl
	key := replKey{owner: m.Src, handle: m.Hdr[hHandle]}
	v := m.Hdr[hCount]
	disp := int(m.Hdr[hDisp])
	st.mu.Lock()
	r := st.replicaLocked(key)
	if v == r.next {
		r.apply(disp, m.Payload)
		r.next++
		for {
			u, ok := r.held[r.next]
			if !ok {
				break
			}
			delete(r.held, r.next)
			r.apply(u.disp, u.data)
			r.next++
		}
	} else if v > r.next {
		r.held[v] = replUpd{disp: disp, data: append([]byte(nil), m.Payload...)}
	}
	ackv := r.next - 1
	st.mu.Unlock()
	ack := newMsg(m.Src, kReplAck)
	ack.Hdr[hHandle] = m.Hdr[hHandle]
	ack.Hdr[hCount] = ackv
	e.ReplAcks.Inc()
	e.sendReply(at, ack)
}

// handleReplAck releases the deferred completions of every update the
// buddy's cumulative acknowledgement now covers, in version order.
func (e *Engine) handleReplAck(m *simnet.Message, at vtime.Time) {
	st := &e.repl
	h := m.Hdr[hHandle]
	v := m.Hdr[hCount]
	st.mu.Lock()
	if v > st.acked[h] {
		st.acked[h] = v
	}
	limit := st.acked[h]
	q := st.deferred[h]
	n := 0
	for n < len(q) && q[n].version <= limit {
		n++
	}
	ready := q[:n:n]
	st.deferred[h] = q[n:]
	st.mu.Unlock()
	for _, d := range ready {
		d.fin(vtime.Later(d.end, at))
	}
}

// replOnRankDead is the replication layer's reaction to a confirmed
// death, invoked from onRankDead before the flight recorder snapshots its
// postmortem (so the dump already names the promotion). Two independent
// roles may apply to this engine:
//
//   - Promoter: this rank holds replicas owned by the dead rank. It binds
//     a spare and replays every replica onto it.
//   - Orphan: the dead rank was this rank's buddy. Deferred completions
//     can never be acknowledged; they are flushed (run immediately) and
//     replication degrades until the spare finishes rebuilding, then a
//     full resync re-arms it.
func (e *Engine) replOnRankDead(dead int, at vtime.Time) {
	st := &e.repl
	st.mu.Lock()
	var mine []replKey
	for key := range st.replicas {
		if key.owner == dead {
			mine = append(mine, key)
		}
	}
	orphaned := st.enabled && !st.down && st.buddy == dead
	var flushed []deferredFin
	if orphaned {
		st.down = true
		for h, q := range st.deferred {
			flushed = append(flushed, q...)
			delete(st.deferred, h)
		}
	}
	st.mu.Unlock()

	// Flush first: completion must not wait on a dead buddy.
	for _, d := range flushed {
		d.fin(vtime.Later(d.end, at))
	}
	if orphaned {
		if f := e.flight.Load(); f != nil {
			f.Note(int64(at), "buddy-lost", dead, 0, int64(len(flushed)), nil)
		}
		go e.replRebind(dead)
	}
	if len(mine) > 0 {
		e.replPromote(dead, mine, at)
	}
}

// replPromote replays the dead rank's replicas onto a freshly bound
// spare: one kRebuild frame per replica, then kRebuildDone carrying the
// frame count (the wire may reorder them; the spare counts). The replicas
// are rekeyed to the spare, which resumes replicating to this rank at
// exactly the version the replica already holds — continued protection
// with zero extra transfer. The promotion is recorded in the flight
// recorder's rank-death report before onRankDead dumps the postmortem.
func (e *Engine) replPromote(dead int, mine []replKey, at vtime.Time) {
	members := e.proc.World().Members()
	spare, ok := members.AllocSpare(dead)
	if !ok {
		if f := e.flight.Load(); f != nil {
			f.Note(int64(at), "no-spare", dead, 0, int64(len(mine)), nil)
		}
		return
	}
	st := &e.repl
	var maxV uint64
	st.mu.Lock()
	for _, key := range mine {
		r := st.replicas[key]
		if r == nil {
			continue
		}
		delete(st.replicas, key)
		st.replicas[replKey{owner: spare, handle: key.handle}] = r
		if r.size > len(r.buf) {
			r.buf = append(r.buf, make([]byte, r.size-len(r.buf))...)
		}
		if r.next-1 > maxV {
			maxV = r.next - 1
		}
		m := newMsg(spare, kRebuild)
		m.Hdr[hHandle] = key.handle
		m.Hdr[hCount] = r.next - 1
		m.Hdr[hDisp] = uint64(dead)
		m.Payload = append([]byte(nil), r.buf...)
		e.Rebuilds.Inc()
		e.sendReply(e.proc.Now(), m)
	}
	st.mu.Unlock()
	done := newMsg(spare, kRebuildDone)
	done.Hdr[hHandle] = uint64(len(mine))
	done.Hdr[hDisp] = uint64(dead)
	e.sendReply(e.proc.Now(), done)
	if f := e.flight.Load(); f != nil {
		f.Note(int64(at), "replica-promote", dead, uint64(spare), int64(len(mine)), nil)
		f.SetRankDeath(telemetry.RankDeathInfo{
			Dead:        dead,
			Buddy:       e.proc.Rank(),
			Spare:       spare,
			Regions:     len(mine),
			FromVersion: 1,
			ToVersion:   maxV,
		})
	}
}

// replRebind runs on its own goroutine after this rank's buddy died: it
// waits for the spare to finish rebuilding the buddy, then re-arms
// replication toward it with a full resync (announcement plus full
// snapshot per tracked handle, each drawing the next version). Operations
// applied while the buddy was down completed unreplicated; the full
// snapshot, taken after their deposits, covers every one of them.
func (e *Engine) replRebind(dead int) {
	spare, err := e.proc.World().Members().AwaitRebuilt(dead)
	if err != nil {
		return // no spare: replication stays degraded
	}
	st := &e.repl
	st.mu.Lock()
	st.buddy = spare
	st.down = false
	// The successor's replicas of this rank start fresh (contiguous
	// version order from 1), so the update stream must restart with them:
	// carrying the old counters forward would make the spare park the
	// first post-rebind update as a far-future out-of-order arrival and
	// acknowledge nothing, wedging every deferred completion behind it.
	// Reset under the same critical section that re-arms the buddy, so no
	// concurrent apply can draw a pre-reset version toward the spare.
	for h := range st.version {
		delete(st.version, h)
	}
	for h := range st.acked {
		delete(st.acked, h)
	}
	handles := make(map[uint64]int, len(st.sizes))
	for h, sz := range st.sizes {
		handles[h] = sz
	}
	st.mu.Unlock()
	for h, sz := range handles {
		exp := e.lookupExposure(h)
		if exp == nil {
			continue
		}
		e.replSendExpose(spare, h, sz)
		st.mu.Lock()
		buf := make([]byte, sz)
		if err := e.proc.Mem().RemoteRead(exp.region.Offset, buf); err != nil {
			st.mu.Unlock()
			continue
		}
		st.version[h]++
		v := st.version[h]
		st.mu.Unlock()
		e.replSendUpdate(spare, h, 0, v, buf, e.proc.Now())
	}
	if f := e.flight.Load(); f != nil {
		f.Note(int64(e.proc.Now()), "buddy-rebound", spare, 0, int64(len(handles)), nil)
	}
}

// handleRebuild lands one replayed region on a spare: the region is
// exposed at the dead rank's original handle (so origins can re-target
// the successor with an unchanged descriptor), the replica bytes are
// deposited, and the spare's own version counter resumes from the
// replayed version — its future updates continue the stream the promoter
// already holds.
func (e *Engine) handleRebuild(m *simnet.Message, at vtime.Time) {
	dead := int(int64(m.Hdr[hDisp]))
	h := m.Hdr[hHandle]
	v := m.Hdr[hCount]
	region := e.exposeAt(h, len(m.Payload))
	if err := e.proc.Mem().RemoteWrite(region.Offset, m.Payload); err != nil {
		e.proc.NIC().BadReq.Inc()
	}
	st := &e.repl
	st.mu.Lock()
	st.enabled = true
	st.sizes[h] = len(m.Payload)
	st.version[h] = v
	st.acked[h] = v
	st.rebuildGot[dead]++
	fin := st.rebuildNeed[dead] > 0 && st.rebuildGot[dead] >= st.rebuildNeed[dead]
	st.mu.Unlock()
	if f := e.flight.Load(); f != nil {
		f.Note(int64(at), "rebuild-frame", dead, h, int64(len(m.Payload)), nil)
	}
	if fin {
		e.finishRebuild(dead, m.Src, at)
	}
}

// handleRebuildDone records how many frames the replay comprises and, if
// they all already landed (the wire may reorder), finishes the rebuild.
func (e *Engine) handleRebuildDone(m *simnet.Message, at vtime.Time) {
	dead := int(int64(m.Hdr[hDisp]))
	need := int(m.Hdr[hHandle])
	st := &e.repl
	st.mu.Lock()
	st.rebuildNeed[dead] = need
	fin := st.rebuildGot[dead] >= need
	st.mu.Unlock()
	if fin {
		e.finishRebuild(dead, m.Src, at)
	}
}

// finishRebuild arms the spare as a full replica-protected primary —
// its buddy is the promoter, which holds every replayed region at
// exactly the replayed version — and reports RebuildComplete so waiting
// ranks (AwaitRebuilt) learn the successor is serving.
func (e *Engine) finishRebuild(dead, promoter int, at vtime.Time) {
	st := &e.repl
	st.mu.Lock()
	st.enabled = true
	st.buddy = promoter
	st.down = false
	delete(st.rebuildGot, dead)
	delete(st.rebuildNeed, dead)
	st.mu.Unlock()
	e.proc.World().Members().RebuildComplete(dead, e.proc.Rank())
	if f := e.flight.Load(); f != nil {
		f.Note(int64(at), "rebuild-done", dead, uint64(promoter), 0, nil)
	}
}

// The progress sentinel (the failure detector's second trigger).
//
// The reliable-delivery relay retransmits frames until the receiving NIC
// acknowledges them, so toward a LIVE peer every engine-level reply —
// a kReplAck, a probe answer, a get reply — is eventually delivered and
// the only failure signal needed is the relay's retry-budget exhaustion.
// A dying peer breaks that reasoning: it can relay-ack a frame (the NIC
// admitted the bytes) and then be blackholed before the engine-level
// reply goes out. The sender is now waiting on an acknowledgement that
// will never come while owing the relay nothing — no frame in flight, no
// retransmission, no budget exhaustion, no detection. Both ends of the
// replication protocol can wedge this way: an orphan whose deferred
// completions await a dead buddy's kReplAck, and an origin whose
// completion probe was parked at a target that died before its deferred
// applies were acknowledged.
//
// The sentinel closes the loop end-to-end: a per-engine ticker watches
// every surface that waits on a remote engine — outstanding requests,
// confirmation-counter waiters, and unacknowledged replication
// deferrals — and when one makes no progress across consecutive ticks it
// sends a kPing to the stalled peer through the relay. The ping carries
// no semantics; it is bait. A live peer's NIC relay-acks it and nothing
// else happens (whatever reply is owed will arrive by retransmission).
// A dead peer blackholes it, the relay exhausts the ping's retry budget,
// and the ordinary detection path — onLinkFailed, membership Suspect
// against RAS ground truth, onRankDead fan-out — fails the stalled work
// with ErrRankFailed in bounded time.
//
// The ticker runs on real time, like the relay's retransmitter: virtual
// time is advanced by the very completions that are failing to happen,
// so a virtual-time watchdog could never fire. Pings perturb nothing a
// run's results depend on (no payload, no handler side effects), and on
// a world without the relay (no fault plan) the sentinel stays silent —
// detection is impossible there and the pings would be pure noise.

const (
	// sentinelTick is the sentinel's real-time sampling period.
	sentinelTick = 25 * time.Millisecond
	// sentinelStrikes is how many consecutive unchanged samples a target
	// must accumulate before it is pinged (one sample can catch a wait
	// mid-setup; two means a full tick passed with zero progress).
	sentinelStrikes = 2
	// sentinelPingEvery rate-limits pings per stalled target; one ping is
	// enough to arm the relay's detector (~the retry budget, well under a
	// second, to a verdict), re-pinging just keeps a long stall honest.
	sentinelPingEvery = 250 * time.Millisecond
)

// sentinelWatch is the sentinel's per-target memory between ticks.
type sentinelWatch struct {
	mark     uint64
	strikes  int
	lastPing time.Time
}

// progressSentinel runs until quit closes, sampling the engine's remote
// waits each tick and pinging peers that stall.
func (e *Engine) progressSentinel(quit chan struct{}) {
	t := time.NewTicker(sentinelTick)
	defer t.Stop()
	watch := make(map[int]*sentinelWatch)
	for {
		select {
		case <-quit:
			return
		case now := <-t.C:
			e.sentinelSweep(watch, now)
		}
	}
}

// sentinelMarks samples every wait-on-a-remote-engine surface, returning
// a progress marker per awaited world rank. Equal marks across ticks
// mean the same waits saw no movement; any completion, acknowledgement
// or new registration changes the marker. The mix is order-independent
// (the maps iterate randomly) and collisions merely delay a ping by one
// tick.
func (e *Engine) sentinelMarks() map[int]uint64 {
	marks := make(map[int]uint64)
	mix := func(rank int, v uint64) {
		marks[rank] += v*2654435761 + 1
	}
	st := &e.repl
	st.mu.Lock()
	if st.enabled && !st.down && st.buddy >= 0 {
		for h, q := range st.deferred {
			if len(q) > 0 {
				mix(st.buddy, uint64(len(q))<<40^st.acked[h]<<8^h)
			}
		}
	}
	st.mu.Unlock()
	e.mu.Lock()
	for id, r := range e.reqs {
		mix(r.target, id)
	}
	e.mu.Unlock()
	e.cmplMu.Lock()
	for _, w := range e.confirmWaiters {
		if !w.abandoned && !w.fired {
			mix(w.rank, uint64(w.threshold)<<16^uint64(e.confirmed[w.rank]))
		}
	}
	e.cmplMu.Unlock()
	return marks
}

// sentinelSweep is one tick: compare this sample against the last, ping
// targets stalled long enough, and forget targets no longer waited on
// (or already sticky-failed — their waiters were unwound by the failure).
func (e *Engine) sentinelSweep(watch map[int]*sentinelWatch, now time.Time) {
	if !e.proc.NIC().Reliable() {
		return
	}
	marks := e.sentinelMarks()
	for rank := range watch {
		if _, waiting := marks[rank]; !waiting {
			delete(watch, rank)
		}
	}
	me := e.proc.Rank()
	for rank, mark := range marks {
		if rank == me || e.stickyFor(rank) != nil {
			delete(watch, rank)
			continue
		}
		w := watch[rank]
		if w == nil || w.mark != mark {
			watch[rank] = &sentinelWatch{mark: mark}
			continue
		}
		w.strikes++
		if w.strikes < sentinelStrikes {
			continue
		}
		if !w.lastPing.IsZero() && now.Sub(w.lastPing) < sentinelPingEvery {
			continue
		}
		w.lastPing = now
		e.Pings.Inc()
		if f := e.flight.Load(); f != nil {
			f.Note(int64(e.proc.Now()), "sentinel-ping", rank, 0, int64(w.strikes), nil)
		}
		e.sendReplyNIC(e.proc.Now(), newMsg(rank, kPing))
	}
}

// handlePing is the liveness probe's target side: the frame's admission
// (and the relay acknowledgement it triggered) already answered the
// question, so there is deliberately nothing to do.
func (e *Engine) handlePing(m *simnet.Message, at vtime.Time) {}

// exposeAt installs an exposure under a fixed handle — the spare-side
// counterpart of Expose, which lets a rebuilt region keep the dead rank's
// handle so existing TargetMem descriptors stay valid with only the Owner
// re-pointed. Idempotent per handle; the sequence counter is advanced
// past the handle so later local Expose calls cannot collide with it.
func (e *Engine) exposeAt(h uint64, size int) memsim.Region {
	e.mu.Lock()
	if ex, ok := e.tmems[h]; ok {
		e.mu.Unlock()
		return ex.region
	}
	e.mu.Unlock()
	region := e.proc.Alloc(size)
	e.mu.Lock()
	defer e.mu.Unlock()
	if ex, ok := e.tmems[h]; ok {
		return ex.region
	}
	e.tmems[h] = &exposure{region: region}
	if h > e.tmemSeq {
		e.tmemSeq = h
	}
	return region
}
