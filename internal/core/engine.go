package core

import (
	"fmt"
	gort "runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpi3rma/internal/portals"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/serializer"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/stats"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/trace"
	"mpi3rma/internal/vtime"
)

// Message kinds of the strawman RMA protocol.
const (
	kPut       = portals.KindCoreBase + 0  // put / accumulate (AccOp in header)
	kGet       = portals.KindCoreBase + 1  // get request
	kGetReply  = portals.KindCoreBase + 2  // get data
	kAck       = portals.KindCoreBase + 3  // remote-completion acknowledgement
	kProbe     = portals.KindCoreBase + 4  // completion probe (RMA_complete)
	kProbeAck  = portals.KindCoreBase + 5  // completion probe reply
	kLockReq   = portals.KindCoreBase + 6  // coarse-grain lock request
	kLockGrant = portals.KindCoreBase + 7  // coarse-grain lock grant
	kLockRel   = portals.KindCoreBase + 8  // coarse-grain lock release
	kRMW       = portals.KindCoreBase + 9  // fetch-and-add / compare-and-swap
	kRMWReply  = portals.KindCoreBase + 10 // RMW old value
	kAM        = portals.KindCoreBase + 11 // active-message extension
	kBatch     = portals.KindCoreBase + 12 // aggregated put/accumulate batch
	kNotify    = portals.KindCoreBase + 13 // delivery-counter notification

	// Buddy-replication and rebuild protocol (DESIGN.md §14).
	kReplExpose  = portals.KindCoreBase + 14 // primary -> buddy: mirror this exposure
	kReplUpdate  = portals.KindCoreBase + 15 // primary -> buddy: versioned region bytes
	kReplAck     = portals.KindCoreBase + 16 // buddy -> primary: cumulative replicated version
	kRebuild     = portals.KindCoreBase + 17 // buddy -> spare: replay one replica
	kRebuildDone = portals.KindCoreBase + 18 // buddy -> spare: replay finished, start serving
	kPing        = portals.KindCoreBase + 19 // progress sentinel liveness probe (bait for the relay's failure detector)
)

// Header word indices shared by the protocol messages.
const (
	hHandle = 0 // target_mem handle (kPut/kGet/kRMW); expected count (kProbe); AM id (kAM)
	hDisp   = 1 // byte displacement into the target memory
	hCount  = 2 // target datatype count
	hMeta   = 3 // attrs (low 16) | AccOp<<16 | RMW sub-op<<24 | checker epoch<<32
	hReq    = 4 // origin request id (routing for replies)
	hSeq    = 5 // ordered-stream sequence number (0 = not ordered)
)

// Message flag bits (simnet.Message.Flags) for core kinds.
const (
	flagUnlockAfter = 1 << 0 // release the coarse lock after applying this op
)

// RMW sub-ops carried in hMeta bits 24..31.
const (
	rmwFetchAdd = 1
	rmwCompSwap = 2
	rmwFetch    = 3
)

// Options configures a rank's RMA engine.
type Options struct {
	// Atomicity selects the serializer mechanism backing the Atomic
	// attribute (default MechThread, the cheap case of Figure 2).
	Atomicity serializer.Mechanism
	// ApplyOverhead is the fixed virtual-time cost of one target memory
	// update (0 = DefaultApplyOverhead).
	ApplyOverhead time.Duration
	// ApplyPerKB is the virtual-time cost of updating 1024 bytes of
	// target memory (0 = DefaultApplyPerKB).
	ApplyPerKB time.Duration
	// ProgressQuantum models, for the MechProgress serializer, how often
	// the target enters the library: deferred atomic operations apply at
	// the next multiple of the quantum after they arrive (0 = the target
	// polls continuously).
	ProgressQuantum time.Duration
	// DefaultAttrs is ORed into the attributes of every operation issued
	// by this rank (the engine-level default).
	DefaultAttrs Attr
	// AddrBits is this rank's address-space width, 32 or 64 (0 = 64).
	AddrBits uint8
	// BatchOps enables origin-side operation batching: up to BatchOps
	// small puts/accumulates per (origin, target) pair are coalesced into
	// one aggregated wire message, unpacked and applied individually at
	// the target. 0 disables batching. A pending batch is flushed when it
	// reaches BatchOps operations or BatchBytes payload bytes, when a
	// non-batchable operation (get, RMW, active message, blocking or
	// coarse-locked atomic op) is issued to the same target, and by
	// Flush/Order/Complete.
	BatchOps int
	// BatchBytes bounds the accumulated payload of one batch (0 =
	// DefaultBatchBytes). Operations larger than BatchBytes bypass the
	// batch entirely — aggregation only pays off for small operations.
	BatchBytes int
	// ProbeCompletion forces Complete to use the probe round-trip even
	// when delivery-counter notifications could answer locally. For A/B
	// measurement (experiment E13); leave false.
	ProbeCompletion bool
	// ApplyShards partitions each exposed target memory into this many
	// fixed byte-range shards applied by a worker pool instead of the
	// serial target path. Operations confined to one shard apply in
	// parallel with other shards; spanning, ordered, and conflicting
	// operations route through a designated shard that waits for
	// everything routed before it (see shard.go). 0 or 1 keeps the serial
	// engine, which is bit-compatible by construction.
	ApplyShards int
	// ApplyWorkers bounds the worker pool draining the shard queues
	// (0 = one worker per shard). Setting ApplyWorkers > 1 with
	// ApplyShards unset enables sharding with ApplyWorkers shards.
	ApplyWorkers int
}

// DefaultBatchBytes is the per-batch payload bound when Options.BatchOps
// is set but BatchBytes is 0.
const DefaultBatchBytes = 8192

func (o Options) withDefaults() Options {
	if o.ApplyOverhead == 0 {
		o.ApplyOverhead = DefaultApplyOverhead
	}
	if o.ApplyPerKB == 0 {
		o.ApplyPerKB = DefaultApplyPerKB
	}
	if o.AddrBits == 0 {
		o.AddrBits = 64
	}
	if o.BatchOps > 0 && o.BatchBytes == 0 {
		o.BatchBytes = DefaultBatchBytes
	}
	if o.ApplyShards <= 1 && o.ApplyWorkers > 1 {
		o.ApplyShards = o.ApplyWorkers
	}
	if o.ApplyShards > 1 && o.ApplyWorkers <= 0 {
		o.ApplyWorkers = o.ApplyShards
	}
	return o
}

// originTarget is origin-side per-target bookkeeping.
type originTarget struct {
	sent         int64  // ops issued to this target (puts, accumulates, gets, RMWs, AMs)
	batched      int64  // of sent: ops that rode an aggregated message
	singleton    int64  // of sent: ops that paid their own wire message
	willConfirm  int64  // ops whose application will report a delivery counter (notify, remote-complete, batch, reply-carrying ops)
	orderSeq     uint64 // ordered-stream sequence for AttrOrdering on unordered networks
	chkEpoch     uint64 // synchronization epoch stamped on issued ops (advanced by Order/Complete; read by the semantic checker)
	fencePending bool   // an Order() is pending; next op must stall for drain
}

// probeWaiter is a queued completion probe at the target.
type probeWaiter struct {
	origin    int
	threshold int64
	reqID     uint64
}

// reorderBuf holds ordered-stream ops that arrived out of order.
type reorderBuf struct {
	expected uint64                         // next sequence number to apply
	held     map[uint64]func(at vtime.Time) // seq -> deferred processing
	heldAt   map[uint64]vtime.Time
}

// Engine is one rank's strawman RMA engine. Obtain it with Attach; there
// is exactly one per rank (it owns the rank's core message handlers).
type Engine struct {
	proc *runtime.Proc
	opts Options

	mu      sync.Mutex
	tmems   map[uint64]*exposure
	tmemSeq uint64
	reqs    map[uint64]*Request
	reqSeq  uint64
	targets map[int]*originTarget
	comms   map[uint64]Attr // per-communicator default attributes
	rings   map[int]*issueRing

	// Origin-side confirmation counters, guarded by cmplMu: confirmed[t]
	// is the highest cumulative applied-operation count target t has
	// reported back (via notifications, acks, replies, or probe answers);
	// confirmedAt is the virtual arrival time of the latest report.
	// cmplCond wakes Complete calls waiting for counters instead of
	// probing. pendingBatches routes batch notifications to the
	// remote-completion requests of the batch's member operations.
	cmplMu         sync.Mutex //rmalint:lockrank 20
	cmplCond       *sync.Cond
	confirmed      map[int]int64
	confirmedAt    map[int]vtime.Time
	pendingBatches map[uint64]*pendingBatch
	// failedLinks records links whose reliable-delivery retry budget ran
	// out (graceful degradation: requests to those targets fail with
	// ErrLinkFailed instead of waiting forever); linkErr is the first such
	// failure, reported sticky by Err().
	failedLinks map[int]error
	linkErr     error
	// failedRanks records peers the membership service confirmed dead:
	// requests toward them fail with ErrRankFailed (not ErrLinkFailed —
	// the rank is gone, not the path). rankErr is the first such death,
	// one tier above linkErr in Err()'s degradation report. Both are
	// per-peer: operations toward live ranks keep completing.
	failedRanks map[int]error
	rankErr     error
	// applyErr is the engine-fatal sticky failure (a shard worker panic):
	// unlike a single failed link it poisons every wait, because the
	// target-side apply pipeline itself is no longer trustworthy.
	applyErr error

	// confirmWaiters are Select count-threshold waiters on the
	// confirmation counters, serviced by noteConfirmed and failed by
	// onLinkFailed/failEngine (guarded by cmplMu like the counters).
	confirmWaiters []*countWaiter

	// Target-side state, guarded by tgtMu because applies may run on the
	// NIC agent, the thread serializer, or a Progress call. tgtCond wakes
	// local waiters (the collective-completion fast path). appliedAt is
	// the per-origin virtual time of the latest application, the stamp
	// Select's already-satisfied fast path reports. applyWaiters are
	// Select count-threshold waiters on the delivery counters, serviced
	// by noteApplied.
	tgtMu        sync.Mutex //rmalint:lockrank 10
	tgtCond      *sync.Cond
	lastApplied  vtime.Time
	applied      map[int]int64
	appliedAt    map[int]vtime.Time
	applyWaiters []*countWaiter
	probeWaiters []probeWaiter
	reorder      map[int]*reorderBuf
	lanes        map[int]*vtime.Clock
	atomicLane   vtime.Clock

	lock      *serializer.LockState
	applyQ    *serializer.ApplyQueue
	progQ     *serializer.ProgressQueue
	closeOnce sync.Once

	// Sharded apply engine state (nil/zero when Options.ApplyShards <= 1):
	// shardPool drains per-shard queues with bounded workers; shardMu
	// guards the designated-shard in-flight envelope and the per-shard
	// applied watermarks (see shard.go).
	shardPool *portals.ShardPool
	shardMu   sync.Mutex //rmalint:lockrank 30
	desigOpen int        // designated-shard ops in flight
	desigLo   int        // envelope: min byte offset covered by those ops
	desigHi   int        // envelope: one past the max byte offset

	amMu sync.Mutex
	am   map[uint64]AMHandler

	// repl is the buddy-replication state (see replication.go). The struct
	// always exists so the protocol handlers have somewhere to land parked
	// frames; EnableReplication flips it on for this rank's exposures.
	repl replState

	// depositHook, if set, observes every put/accumulate deposited into
	// this rank's memory (after application). Layers above use it for
	// diagnostics such as the MPI-2 overlapping-access checker.
	hookMu      sync.Mutex
	depositHook func(src int, handle uint64, disp, length int)

	// tracer, if set, records protocol events (issue/apply/probe/...);
	// a nil ring discards. Held in an atomic pointer so the per-operation
	// tr() check is one load, not a mutex, on the hot path.
	tracer atomic.Pointer[trace.Ring]

	// tel is the metrics registry installed by EnableTelemetry (nil until
	// then); lat caches the registry's latency histograms so the request
	// completion path does one atomic load, not a registry lookup.
	tel atomic.Pointer[telemetry.Registry]
	lat atomic.Pointer[latencyHists]

	// chk is the semantic checker's access observer (see checkerhook.go);
	// nil outside debugging runs, and the disabled hot path pays exactly
	// one atomic load per apply.
	chk atomic.Pointer[recorderCell]

	// evq is the completion-event queue installed by EnableEvents (nil
	// until then). Publication sites load it once; disabled runs pay one
	// atomic load and construct nothing.
	evq atomic.Pointer[CompletionQueue]

	// flight is the postmortem flight recorder installed by
	// EnableFlightRecorder (nil until then). Feed sites load it once;
	// the disabled path is one atomic load and records nothing.
	flight atomic.Pointer[telemetry.FlightRecorder]

	// Counters.
	OpsIssued       stats.Counter
	OpsApplied      stats.Counter
	AcksSent        stats.Counter
	Probes          stats.Counter
	HeldOps         stats.Counter // ordered ops buffered due to out-of-order arrival
	FenceStalls     stats.Counter // Order()-induced stalls before an op issue
	Batches         stats.Counter // aggregated messages sent
	BatchedOps      stats.Counter // operations that rode an aggregated message
	SingletonOps    stats.Counter // operations that paid their own wire message
	Notifies        stats.Counter // delivery-counter notifications received
	FastPaths       stats.Counter // Complete calls answered from counters, no probe
	CompleteCalls   stats.Counter // Complete invocations
	ProbeFallbacks  stats.Counter // Complete targets that needed the probe round-trip
	ShardBypass     stats.Counter // applies routed around the shard pool (serializer/serial path)
	ShardDesignated stats.Counter // applies routed through the designated shard
	ReplUpdates     stats.Counter // versioned replica updates shipped to the buddy
	ReplAcks        stats.Counter // replica acknowledgements answered as buddy
	Rebuilds        stats.Counter // replayed regions sent to a spare as promoter
	Pings           stats.Counter // liveness probes sent by the progress sentinel
}

// gosched yields to let agent and serializer goroutines run between
// progress polls.
func gosched() { gort.Gosched() }

// extKey is the Proc extension slot the engine lives in.
const extKey = "core.rma"

// Attach returns the rank's RMA engine, creating it (and registering the
// protocol handlers) on first use. Options are honoured only by the
// creating call; later calls return the existing engine unchanged.
func Attach(p *runtime.Proc, opts Options) *Engine {
	return p.Ext(extKey, func() any {
		e := &Engine{
			proc:           p,
			opts:           opts.withDefaults(),
			tmems:          make(map[uint64]*exposure),
			reqs:           make(map[uint64]*Request),
			targets:        make(map[int]*originTarget),
			comms:          make(map[uint64]Attr),
			rings:          make(map[int]*issueRing),
			confirmed:      make(map[int]int64),
			confirmedAt:    make(map[int]vtime.Time),
			pendingBatches: make(map[uint64]*pendingBatch),
			failedLinks:    make(map[int]error),
			failedRanks:    make(map[int]error),
			applied:        make(map[int]int64),
			appliedAt:      make(map[int]vtime.Time),
			reorder:        make(map[int]*reorderBuf),
			lanes:          make(map[int]*vtime.Clock),
			lock:           serializer.NewLockState(),
			am:             make(map[uint64]AMHandler),
		}
		e.tgtCond = sync.NewCond(&e.tgtMu)
		e.cmplCond = sync.NewCond(&e.cmplMu)
		e.repl.init()
		switch e.opts.Atomicity {
		case serializer.MechThread:
			e.applyQ = serializer.NewApplyQueue()
		case serializer.MechProgress:
			e.progQ = serializer.NewProgressQueue(e.opts.ProgressQuantum)
		}
		nic := p.NIC()
		if e.opts.ApplyShards > 1 {
			e.shardPool = nic.EnableSharding(e.opts.ApplyShards, e.opts.ApplyWorkers)
			e.shardPool.SetPanicHandler(e.onApplyPanic)
		}
		nic.RegisterHandler(kPut, e.handlePut)
		nic.RegisterHandler(kGet, e.handleGet)
		nic.RegisterHandler(kGetReply, e.handleGetReply)
		nic.RegisterHandler(kAck, e.handleAck)
		nic.RegisterHandler(kProbe, e.handleProbe)
		nic.RegisterHandler(kProbeAck, e.handleProbeAck)
		nic.RegisterHandler(kLockReq, e.handleLockReq)
		nic.RegisterHandler(kLockGrant, e.handleLockGrant)
		nic.RegisterHandler(kLockRel, e.handleLockRel)
		nic.RegisterHandler(kRMW, e.handleRMW)
		nic.RegisterHandler(kRMWReply, e.handleRMWReply)
		nic.RegisterHandler(kAM, e.handleAM)
		nic.RegisterHandler(kBatch, e.handleBatch)
		nic.RegisterHandler(kNotify, e.handleNotify)
		nic.RegisterHandler(kReplExpose, e.handleReplExpose)
		nic.RegisterHandler(kReplUpdate, e.handleReplUpdate)
		nic.RegisterHandler(kReplAck, e.handleReplAck)
		nic.RegisterHandler(kRebuild, e.handleRebuild)
		nic.RegisterHandler(kRebuildDone, e.handleRebuildDone)
		nic.RegisterHandler(kPing, e.handlePing)
		nic.SetLinkFailureHandler(e.onLinkFailed)
		p.World().Members().Subscribe(e.onRankDead)
		nic.SetRetransmitObserver(func(dst int, rseq uint64, attempt int, at vtime.Time) {
			if t := e.tr(); t != nil {
				t.RecordOpf(at, "retransmit", dst, rseq, "attempt=%d", attempt)
			}
			if f := e.flight.Load(); f != nil {
				f.Note(int64(at), "retransmit", dst, rseq, int64(attempt), nil)
			}
		})
		return e
	}).(*Engine)
}

// Attached returns the rank's RMA engine if one was created by Attach,
// without creating one. Cross-rank observers (timeline merges, the
// critical-path analyzer, rmatop) use it to inspect peers' tracers and
// health without attaching engines as a side effect.
func Attached(p *runtime.Proc) *Engine {
	if v, ok := p.ExtPeek(extKey); ok {
		return v.(*Engine)
	}
	return nil
}

// Proc returns the owning process.
func (e *Engine) Proc() *runtime.Proc { return e.proc }

// Mechanism returns the serializer mechanism backing the Atomic attribute.
func (e *Engine) Mechanism() serializer.Mechanism { return e.opts.Atomicity }

// SetCommAttrs sets default attributes for every operation this rank
// issues on comm (the paper's communicator-level attribute setting). The
// effective attributes of an operation are the union of the per-call
// attributes, the communicator default, and the engine default.
func (e *Engine) SetCommAttrs(comm *runtime.Comm, attrs Attr) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.comms[comm.ID()] = attrs
}

// effectiveAttrs folds the per-call attributes with the communicator and
// engine defaults.
func (e *Engine) effectiveAttrs(comm *runtime.Comm, attrs Attr) Attr {
	e.mu.Lock()
	defer e.mu.Unlock()
	return attrs | e.comms[comm.ID()] | e.opts.DefaultAttrs
}

// target returns (creating if needed) the origin-side state for a world
// rank. Caller must hold e.mu.
func (e *Engine) targetLocked(world int) *originTarget {
	t := e.targets[world]
	if t == nil {
		t = &originTarget{}
		e.targets[world] = t
	}
	return t
}

// laneFor returns the per-origin apply lane for non-atomic updates.
// Caller must hold e.tgtMu.
func (e *Engine) laneForLocked(src int) *vtime.Clock {
	l := e.lanes[src]
	if l == nil {
		l = &vtime.Clock{}
		e.lanes[src] = l
	}
	return l
}

// applyCost models the virtual time of depositing n payload bytes.
func (e *Engine) applyCost(n int) time.Duration {
	return e.opts.ApplyOverhead + time.Duration(int64(n)*int64(e.opts.ApplyPerKB)/1024)
}

// Close shuts down the engine's serializer goroutine, if any, and wakes
// completion-queue waiters. World.Close invokes it for every attached
// engine; it is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		if e.applyQ != nil {
			e.applyQ.Close()
		}
		if q := e.evq.Load(); q != nil {
			q.close()
		}
		e.repl.mu.Lock()
		if e.repl.quit != nil {
			close(e.repl.quit)
			e.repl.quit = nil
		}
		e.repl.mu.Unlock()
	})
}

// Progress drains atomic operations deferred by the MechProgress
// serializer (a no-op under other mechanisms) and returns how many were
// applied. Every library entry point of the owning rank implicitly makes
// progress, mirroring MPI's progress rule.
func (e *Engine) Progress() int {
	if e.progQ == nil {
		return 0
	}
	return e.progQ.Progress(e.proc.Now())
}

// noteApplied is shared post-apply bookkeeping: count the op, wake
// satisfied completion probes and Select waiters, publish the EvDelivery
// event, and return the new cumulative applied count for src — the value
// every target→origin report carries back as the delivery counter of the
// notified-completion protocol. This is the watermark join: every applied
// operation, on every path (serial, sharded, serialized), funnels through
// here under tgtMu, so feeding events at this point gives the queue the
// exact counter movements Complete/Order observe.
func (e *Engine) noteApplied(src int, at vtime.Time) int64 {
	e.OpsApplied.Inc()
	e.tgtMu.Lock()
	e.applied[src]++
	count := e.applied[src]
	e.appliedAt[src] = vtime.Later(e.appliedAt[src], at)
	if at > e.lastApplied {
		e.lastApplied = at
	}
	var ready []probeWaiter
	rest := e.probeWaiters[:0]
	for _, w := range e.probeWaiters {
		if w.origin == src && count >= w.threshold {
			ready = append(ready, w)
		} else {
			rest = append(rest, w)
		}
	}
	e.probeWaiters = rest
	fired := serviceWaiters(&e.applyWaiters, src, count, at, nil)
	e.tgtCond.Broadcast()
	e.tgtMu.Unlock()
	closeWaiters(fired)
	if q := e.evq.Load(); q != nil {
		q.push(Event{Kind: EvDelivery, At: at, Rank: src, Count: count})
	}
	if f := e.flight.Load(); f != nil {
		f.Note(int64(at), "delivery", src, 0, count, nil)
	}
	for _, w := range ready {
		e.sendProbeAck(w, count, at)
	}
	return count
}

// waitAppliedFrom blocks until the total applied count from the given
// world ranks reaches expected, returning the virtual time of the last
// application. The collective-completion fast path uses it in place of
// per-origin probe round trips. If any of this rank's links has failed
// the wait aborts with the wrapped ErrLinkFailed — a degraded world
// cannot promise collective completion. Under the progress serializer the
// waiter must drain its own deferred queue (it is inside the library, so
// it IS the progress engine).
func (e *Engine) waitAppliedFrom(origins []int, expected int64) (vtime.Time, error) {
	for {
		if err := e.Err(); err != nil {
			return 0, err
		}
		e.tgtMu.Lock()
		var total int64
		for _, o := range origins {
			total += e.applied[o]
		}
		if total >= expected {
			at := e.lastApplied
			e.tgtMu.Unlock()
			return at, nil
		}
		if e.progQ == nil {
			e.tgtCond.Wait()
			e.tgtMu.Unlock()
			continue
		}
		e.tgtMu.Unlock()
		e.Progress()
		gosched()
	}
}

// SetTracer installs (or clears, with nil) a protocol event recorder.
func (e *Engine) SetTracer(r *trace.Ring) {
	e.tracer.Store(r)
}

// Tracer returns the installed protocol event recorder, if any.
func (e *Engine) Tracer() *trace.Ring {
	return e.tracer.Load()
}

// tr returns the current tracer (possibly nil). Hot paths must check for
// nil and skip the whole recording — formatting arguments for a discarded
// event still allocates.
func (e *Engine) tr() *trace.Ring {
	return e.tracer.Load()
}

// SetDepositHook installs (or clears, with nil) the deposit observer.
func (e *Engine) SetDepositHook(fn func(src int, handle uint64, disp, length int)) {
	e.hookMu.Lock()
	e.depositHook = fn
	e.hookMu.Unlock()
}

// notifyDeposit invokes the deposit hook, if any.
func (e *Engine) notifyDeposit(src int, handle uint64, disp, length int) {
	e.hookMu.Lock()
	fn := e.depositHook
	e.hookMu.Unlock()
	if fn != nil {
		fn(src, handle, disp, length)
	}
}

// sendReply ships a handler-generated protocol reply. A failed send can
// only mean the world is shutting down (the network refuses senders after
// close); the reply is dropped and counted rather than crashing the
// serializer or agent goroutine that carries it.
func (e *Engine) sendReply(at vtime.Time, m *simnet.Message) {
	if _, err := e.proc.NIC().Send(at, m); err != nil {
		e.proc.NIC().BadReq.Inc()
	}
}

// sendReplyNIC is sendReply through the NIC-generated (hardware) path.
func (e *Engine) sendReplyNIC(at vtime.Time, m *simnet.Message) {
	if _, err := e.proc.NIC().SendNIC(at, m); err != nil {
		e.proc.NIC().BadReq.Inc()
	}
}

// stickyFor returns the sticky failure that would keep operations to a
// world rank from ever completing: the engine-fatal apply fault, the
// target's confirmed death, or the target's failed link — in that order
// of severity.
func (e *Engine) stickyFor(world int) error {
	e.cmplMu.Lock()
	defer e.cmplMu.Unlock()
	if e.applyErr != nil {
		return e.applyErr
	}
	if err := e.failedRanks[world]; err != nil {
		return err
	}
	return e.failedLinks[world]
}

// Err reports the engine's sticky degradation, most severe tier first:
// the engine-fatal apply fault (this rank's own memory is untrustworthy),
// the first confirmed rank death (ErrRankFailed), then the first
// exhausted link (ErrLinkFailed). A non-nil Err does not stop operations
// toward live, reachable peers — degradation is per-peer; Err only lets
// callers notice it without tracking every request.
func (e *Engine) Err() error {
	e.cmplMu.Lock()
	defer e.cmplMu.Unlock()
	if e.applyErr != nil {
		return e.applyErr
	}
	if e.rankErr != nil {
		return e.rankErr
	}
	return e.linkErr
}

// onLinkFailed is the NIC's link-failure callback: the reliable-delivery
// relay exhausted its retry budget toward dst. Budget exhaustion is also
// the failure detector's trigger: the membership service checks the
// suspect against the simulation's RAS ground truth, and a confirmed
// death is handled by onRankDead (fanned out to every rank's engine)
// instead — the outstanding work then fails with ErrRankFailed, not
// ErrLinkFailed. Only an unconfirmed suspect (the link broke, the rank
// lives) takes the degradation path below: every outstanding request and
// pending batch targeting dst is failed with the wrapped ErrLinkFailed,
// and waiters on the confirmation counters are woken to observe it.
func (e *Engine) onLinkFailed(dst int, at vtime.Time, cause error) {
	if w := e.proc.World(); w != nil {
		// A rank that is itself dead keeps exhausting budgets toward live
		// peers (its outbound frames are blackholed); its reports must not
		// taint live ranks' liveness state, so only live reporters feed
		// the failure detector. The zombie still records the local link
		// failure below — that is what unblocks its own waiting calls.
		if !w.Net().RankDeadAt(e.proc.Rank(), at) && w.Members().Suspect(dst, at, cause) {
			return
		}
	}
	err := fmt.Errorf("core: %w", cause)

	e.cmplMu.Lock()
	if _, dup := e.failedLinks[dst]; dup {
		e.cmplMu.Unlock()
		return
	}
	e.failedLinks[dst] = err
	if e.linkErr == nil {
		e.linkErr = err
	}
	var victims []*Request
	for id, pb := range e.pendingBatches {
		if pb.target != dst {
			continue
		}
		delete(e.pendingBatches, id)
		victims = append(victims, pb.reqs...)
	}
	failedWaiters := serviceWaiters(&e.confirmWaiters, dst, 0, at, err)
	e.cmplCond.Broadcast()
	e.cmplMu.Unlock()
	closeWaiters(failedWaiters)

	e.mu.Lock()
	for _, r := range e.reqs {
		if r.target == dst {
			victims = append(victims, r)
		}
	}
	e.mu.Unlock()
	for _, r := range victims {
		r.completeErr(at, err)
	}
	// Wake target-side waiters too (collective completion): they re-check
	// under waitConfirmed/waitAppliedFrom and observe the failure there.
	e.tgtMu.Lock()
	e.tgtCond.Broadcast()
	e.tgtMu.Unlock()
	if q := e.evq.Load(); q != nil {
		q.push(Event{Kind: EvFault, At: at, Rank: dst, Err: err})
	}
	if f := e.flight.Load(); f != nil {
		f.Note(int64(at), "link-failed", dst, 0, 0, err)
		f.AutoDump("link-failed", int64(at))
	}
}

// onRankDead is the membership service's death callback, invoked exactly
// once per engine per confirmed death (from whichever goroutine's budget
// exhaustion confirmed it). It is onLinkFailed's rank-level sibling:
// outstanding work toward the dead rank fails in bounded time with the
// wrapped ErrRankFailed, counter waiters and Select cases observe the
// failure, EvFault carries the dead rank on the event surface, and —
// before the flight recorder snapshots the postmortem — the replication
// layer reacts (the dead rank's buddy starts the rebuild onto a spare;
// a rank whose buddy died flushes its deferred completions).
func (e *Engine) onRankDead(dead int, at vtime.Time, cause error) {
	err := fmt.Errorf("core: rank %d declared dead (%v): %w", dead, cause, ErrRankFailed)

	e.cmplMu.Lock()
	if _, dup := e.failedRanks[dead]; dup {
		e.cmplMu.Unlock()
		return
	}
	e.failedRanks[dead] = err
	if e.rankErr == nil {
		e.rankErr = err
	}
	var victims []*Request
	for id, pb := range e.pendingBatches {
		if pb.target != dead {
			continue
		}
		delete(e.pendingBatches, id)
		victims = append(victims, pb.reqs...)
	}
	failedWaiters := serviceWaiters(&e.confirmWaiters, dead, 0, at, err)
	e.cmplCond.Broadcast()
	e.cmplMu.Unlock()
	closeWaiters(failedWaiters)

	e.mu.Lock()
	for _, r := range e.reqs {
		if r.target == dead {
			victims = append(victims, r)
		}
	}
	e.mu.Unlock()
	for _, r := range victims {
		r.completeErr(at, err)
	}
	e.tgtMu.Lock()
	e.tgtCond.Broadcast()
	e.tgtMu.Unlock()
	e.replOnRankDead(dead, at)
	if q := e.evq.Load(); q != nil {
		q.push(Event{Kind: EvFault, At: at, Rank: dead, Err: err})
	}
	if f := e.flight.Load(); f != nil {
		f.Note(int64(at), "rank-death", dead, 0, 0, err)
		f.AutoDump("rank-death", int64(at))
	}
}

// sendProbeAck answers a completion probe at virtual time at. The answer
// carries the cumulative applied count, so a probe also feeds the origin's
// confirmation counters.
func (e *Engine) sendProbeAck(w probeWaiter, count int64, at vtime.Time) {
	m := newMsg(w.origin, kProbeAck)
	m.Hdr[hReq] = w.reqID
	m.Hdr[hCount] = uint64(count)
	e.sendReply(at, m)
}
