package core

import (
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/trace"
)

// TestCompleteInvalidRank: an out-of-range target rank is an error, not a
// hang.
func TestCompleteInvalidRank(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		if err := e.Complete(p.Comm(), 7); err == nil {
			t.Error("Complete(7) on a 2-rank comm accepted")
		}
		if err := e.Order(p.Comm(), -3); err == nil && !p.NIC().Endpoint().Ordered() {
			t.Error("Order(-3) accepted")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCompleteWithNoTraffic: completing against ranks never targeted is
// trivial and cheap.
func TestCompleteWithNoTraffic(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 3})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		before := e.Probes.Value()
		if err := e.Complete(p.Comm(), AllRanks); err != nil {
			t.Errorf("complete: %v", err)
		}
		_ = before
		if e.OpsIssued.Value() != 0 {
			t.Error("Complete issued RMA operations")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOrderCollective: the collective ordering call runs on a
// sub-communicator and the following puts respect it on an unordered net.
func TestOrderCollective(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 3, UnorderedNet: true, Seed: 41})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(4)
			for r := 1; r < 3; r++ {
				p.Send(r, 0, tm.Encode())
			}
			// Join the collectives.
			if err := e.OrderCollective(comm); err != nil {
				t.Errorf("order collective: %v", err)
			}
			if err := e.CompleteCollective(comm); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			got := p.Mem().Snapshot(region.Offset, 1)[0]
			if got != 2 {
				t.Errorf("final byte %d, want a post-Order value 2", got)
			}
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(4)
		p.WriteLocal(src, 0, []byte{1, 1, 1, 1})
		if _, err := e.Put(src, 1, datatype.Byte, tm, 0, 1, datatype.Byte, 0, comm, AttrNone); err != nil {
			t.Errorf("put: %v", err)
		}
		if err := e.OrderCollective(comm); err != nil {
			t.Errorf("order collective: %v", err)
		}
		p.WriteLocal(src, 0, []byte{2, 2, 2, 2})
		if _, err := e.Put(src, 1, datatype.Byte, tm, 0, 1, datatype.Byte, 0, comm, AttrNone); err != nil {
			t.Errorf("put: %v", err)
		}
		if err := e.CompleteCollective(comm); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEngineAccessors covers the small introspection surface.
func TestEngineAccessors(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 1})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		if e.Proc() != p {
			t.Error("Proc() mismatch")
		}
		if e.Mechanism().String() != "thread" {
			t.Errorf("default mechanism %v", e.Mechanism())
		}
		if e.LockHolder() != -1 {
			t.Errorf("fresh lock holder %d", e.LockHolder())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRetractErrors covers Retract misuse.
func TestRetractErrors(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		if p.Rank() == 0 {
			tm, _ := e.ExposeNew(8)
			if err := e.Retract(tm); err != nil {
				t.Errorf("retract: %v", err)
			}
			if err := e.Retract(tm); err == nil {
				t.Error("double retract accepted")
			}
			foreign := tm
			foreign.Owner = 1
			if err := e.Retract(foreign); err == nil {
				t.Error("retracting a foreign exposure accepted")
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGetBlockingAttr: a blocking get returns with the data already
// local.
func TestGetBlockingAttr(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(8)
			p.WriteLocal(region, 0, []byte{9, 9, 9, 9, 9, 9, 9, 9})
			p.Send(1, 0, tm.Encode())
			p.Barrier()
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, _ := DecodeTargetMem(enc)
		dst := p.Alloc(8)
		req, err := e.Get(dst, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrBlocking)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		if !req.Test() {
			t.Error("blocking get returned incomplete")
		}
		if got := p.ReadLocal(dst, 0, 1)[0]; got != 9 {
			t.Errorf("data %d not local after blocking get", got)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTracerRecordsProtocol: an attached tracer sees the issue, apply and
// probe events of a put + complete in virtual-time order.
func TestTracerRecordsProtocol(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	var originRing, targetRing *trace.Ring
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		ring := trace.New(64)
		e.SetTracer(ring)
		if p.Rank() == 0 {
			targetRing = ring
		} else {
			originRing = ring
		}
		tm := shipTM(p, e, 8)
		if p.Rank() == 1 {
			src := p.Alloc(8)
			if _, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrBlocking); err != nil {
				t.Errorf("put: %v", err)
			}
			if err := e.Complete(comm, 0); err != nil {
				t.Errorf("complete: %v", err)
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := originRing.CountByCat(); got["issue"] != 1 {
		t.Errorf("origin events %v, want 1 issue", got)
	}
	tgt := targetRing.CountByCat()
	if tgt["apply"] != 1 || tgt["probe"] != 1 {
		t.Errorf("target events %v, want 1 apply + 1 probe", tgt)
	}
	// The apply precedes the probe in virtual time.
	evs := targetRing.ByVirtualTime()
	var applyIdx, probeIdx = -1, -1
	for i, e := range evs {
		switch e.Cat {
		case "apply":
			applyIdx = i
		case "probe":
			probeIdx = i
		}
	}
	if applyIdx < 0 || probeIdx < 0 || applyIdx > probeIdx {
		t.Errorf("timeline order wrong:\n%s", targetRing.Timeline())
	}
}
