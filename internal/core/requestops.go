package core

import (
	"fmt"

	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
)

// Request-completion variants (the paper: "the request parameter in the
// interface may be used to check for completion of the RMA (using
// MPI_Wait, MPI_Test, and variants)"). WaitAll lives in request.go; these
// are the Any/Some/All family.

// WaitAny blocks until at least one request in reqs completes and returns
// its index. Nil and already-complete entries return immediately. With an
// empty slice it returns -1.
func WaitAny(reqs ...*Request) int {
	if len(reqs) == 0 {
		return -1
	}
	// Fast path: anything already done (or nil, which counts as done)?
	for i, r := range reqs {
		if r == nil {
			return i
		}
		if r.Test() {
			return i
		}
	}
	// Slow path: wait on all channels; the simulator's request count per
	// call site is small, so a goroutine per request is fine.
	done := make(chan int, len(reqs))
	for i, r := range reqs {
		go func(i int, r *Request) {
			<-r.waitCh()
			done <- i
		}(i, r)
	}
	i := <-done
	reqs[i].Wait()
	return i
}

// TestAll reports whether every request in reqs has completed (nil
// entries count as complete); completed entries advance the caller's
// virtual clock like Test.
func TestAll(reqs ...*Request) bool {
	all := true
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if !r.Test() {
			all = false
		}
	}
	return all
}

// TestSome returns the indices of completed requests (nil entries
// included), advancing the caller's virtual clock for each.
func TestSome(reqs ...*Request) []int {
	var done []int
	for i, r := range reqs {
		if r == nil || r.Test() {
			done = append(done, i)
		}
	}
	return done
}

// StrictDebugAttrs is the "most stringent rules while debugging" preset
// of requirement 5: every operation ordered, remotely complete, and
// atomic. Install it per communicator (SetCommAttrs) or engine-wide
// (Options.DefaultAttrs) while debugging, then remove it without touching
// any transfer call.
const StrictDebugAttrs = AttrOrdering | AttrRemoteComplete | AttrAtomic

// ExposeCollective is the collective allocation interface the paper notes
// was "currently being discussed and formulated": every member of comm
// contributes size bytes; each receives the descriptors of all members'
// exposures (indexed by comm rank) plus its own local region. It is sugar
// over the non-collective Expose — nothing in the engine requires it.
func (e *Engine) ExposeCollective(comm *runtime.Comm, size int) ([]TargetMem, memsim.Region, error) {
	tm, region := e.ExposeNew(size)
	parts := comm.Gather(0, tm.Encode())
	var flat []byte
	if comm.Rank() == 0 {
		for _, part := range parts {
			flat = append(flat, part...)
		}
	}
	flat = comm.Bcast(0, flat)
	n := comm.Size()
	per := encodedTargetMemLen
	if len(flat) != n*per {
		return nil, memsim.Region{}, fmt.Errorf("core: collective expose exchanged %d bytes for %d ranks: %w", len(flat), n, ErrEpoch)
	}
	tms := make([]TargetMem, n)
	for i := 0; i < n; i++ {
		var err error
		tms[i], err = DecodeTargetMem(flat[i*per : (i+1)*per])
		if err != nil {
			return nil, memsim.Region{}, err
		}
	}
	return tms, region, nil
}
