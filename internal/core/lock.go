package core

import (
	"fmt"

	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// Coarse-grain serializer protocol (Figure 2's expensive case, and the
// only option on systems like Catamount that forbid extra threads and lack
// active messages): before an atomic operation, the origin acquires the
// target's MPI-process-level lock with a request/grant round trip; the
// operation message carries flagUnlockAfter so the target releases the
// lock as soon as the update is applied — a single origin→target message
// instead of a separate release, which also keeps the release correctly
// ordered after the update on unordered networks.

// acquireLock blocks until the target's process-level lock is granted to
// this rank.
func (e *Engine) acquireLock(world int) error {
	if err := e.stickyFor(world); err != nil {
		return fmt.Errorf("core: lock of rank %d: %w", world, err)
	}
	req := e.newRequest(world)
	m := newMsg(world, kLockReq)
	m.Hdr[hReq] = req.id
	if _, err := e.proc.NIC().Send(e.proc.Now(), m); err != nil {
		return err
	}
	e.proc.NIC().CPU().AdvanceTo(m.SentAt)
	req.Wait()
	if err := req.Err(); err != nil {
		return fmt.Errorf("core: lock of rank %d: %w", world, err)
	}
	return nil
}

// releaseLockExplicit releases a lock held by this rank without an
// attached operation (used when an issue path fails after the grant).
func (e *Engine) releaseLockExplicit(world int) error {
	m := newMsg(world, kLockRel)
	if _, err := e.proc.NIC().Send(e.proc.Now(), m); err != nil {
		return err
	}
	e.proc.NIC().CPU().AdvanceTo(m.SentAt)
	return nil
}

// handleLockReq queues or grants the process-level lock. Runs on the NIC
// agent goroutine, which is the lock state machine's single driver.
func (e *Engine) handleLockReq(m *simnet.Message, at vtime.Time) {
	reqID := m.Hdr[hReq]
	e.lock.Acquire(m.Src, at, func(origin int, grantAt vtime.Time) {
		g := newMsg(origin, kLockGrant)
		g.Hdr[hReq] = reqID
		e.sendReply(grantAt, g)
	})
}

// handleLockGrant completes the origin's pending acquire.
func (e *Engine) handleLockGrant(m *simnet.Message, at vtime.Time) {
	if req := e.lookupRequest(m.Hdr[hReq]); req != nil {
		req.complete(at, nil)
	}
}

// handleLockRel processes an explicit release message.
func (e *Engine) handleLockRel(m *simnet.Message, at vtime.Time) {
	if err := e.lock.Release(m.Src, at); err != nil {
		e.proc.NIC().BadReq.Inc()
	}
}

// releaseLockLocal releases the lock at the end of an unlock-after
// operation. With the coarse-lock mechanism the apply runs inline on the
// NIC agent goroutine, so driving the state machine here is safe.
func (e *Engine) releaseLockLocal(origin int, at vtime.Time) {
	if err := e.lock.Release(origin, at); err != nil {
		e.proc.NIC().BadReq.Inc()
	}
}

// LockHolder exposes the current holder of this rank's process-level lock
// (-1 when free), for tests.
func (e *Engine) LockHolder() int { return e.lock.Holder() }

// LockStats exposes the coarse-lock grant counters (total grants, grants
// that had to queue), for the benchmark harness.
func (e *Engine) LockStats() (grants, contended int64) {
	return e.lock.Grants.Value(), e.lock.Contended.Value()
}
