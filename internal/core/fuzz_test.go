package core

import (
	"testing"

	"mpi3rma/internal/datatype"
)

// FuzzDecodeTargetMem hardens the descriptor codec: no panics, and
// successful decodes re-encode identically (descriptors travel between
// ranks as user payload).
func FuzzDecodeTargetMem(f *testing.F) {
	f.Add(TargetMem{Owner: 0, Handle: 1, Size: 64, AddrBits: 64, Order: datatype.LittleEndian}.Encode())
	f.Add(TargetMem{Owner: 3, Handle: 99, Size: 1 << 20, AddrBits: 32, Order: datatype.BigEndian}.Encode())
	f.Add([]byte{})
	f.Add(make([]byte, encodedTargetMemLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		tm, err := DecodeTargetMem(data)
		if err != nil {
			return
		}
		if !tm.Valid() {
			t.Fatalf("decoder accepted an invalid descriptor: %+v", tm)
		}
		rt, err := DecodeTargetMem(tm.Encode())
		if err != nil || rt != tm {
			t.Fatalf("round trip changed the descriptor: %+v -> %+v (%v)", tm, rt, err)
		}
	})
}

// FuzzPutPayloadFrame hardens the put-body framing parser that every
// incoming put runs through.
func FuzzPutPayloadFrame(f *testing.F) {
	f.Add(putPayload(datatype.Contiguous(4, datatype.Int64), AccNone, 0, make([]byte, 32)))
	f.Add(putPayload(datatype.Float64, AccAxpy, 2.5, make([]byte, 8)))
	f.Add([]byte{0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dt, rest, err := parseTypeFrame(data)
		if err != nil {
			return
		}
		if dt == nil {
			t.Fatal("nil type without error")
		}
		if len(rest) > len(data) {
			t.Fatal("rest longer than input")
		}
	})
}
