package core

import (
	"encoding/binary"
	"fmt"

	"mpi3rma/internal/runtime"
)

// Complete blocks until every operation previously issued by this rank to
// trank (a rank of comm, or AllRanks for all of them) has been applied at
// the target — the paper's MPI_RMA_complete. It is the strong
// synchronization operation: afterwards, remote completion of all covered
// operations is guaranteed, whether or not they set AttrRemoteComplete.
//
// The implementation sends one completion probe per target carrying the
// count of operations issued to it; the target replies once its applied
// count reaches that threshold. On an ordered network the probe could ride
// behind the stream for free, but the reply round trip is still what
// detects *application* (not mere delivery), so a probe exchange is used
// uniformly.
func (e *Engine) Complete(comm *runtime.Comm, trank int) error {
	e.Progress()
	targets, err := e.resolveTargets(comm, trank)
	if err != nil {
		return err
	}
	reqs := make([]*Request, 0, len(targets))
	for _, world := range targets {
		e.mu.Lock()
		sent := e.targetLocked(world).sent
		e.mu.Unlock()
		if sent == 0 {
			continue
		}
		reqs = append(reqs, e.sendProbe(world, sent))
	}
	WaitAll(reqs...)
	return nil
}

// CompleteCollective is the collective form (MPI_RMA_complete_collective):
// every member of comm calls it; on return, every operation issued by any
// member to any member has been applied.
//
// This is where the paper's "additional implementation optimizations with
// prior knowledge of the participation of remote processes" materialize:
// instead of every rank probing every target (O(n²) round trips, what
// Complete(AllRanks) must do without that knowledge), the members
// exchange their per-target issue counts in one collective, each rank
// waits *locally* until it has applied everything addressed to it, and a
// barrier publishes global completion — O(n log n) messages total.
func (e *Engine) CompleteCollective(comm *runtime.Comm) error {
	e.Progress()
	n := comm.Size()
	me := comm.Rank()
	members := comm.Ranks()

	// Exchange the sent-counts matrix: row r = how many ops member r has
	// issued to each member.
	mine := make([]byte, 8*n)
	e.mu.Lock()
	for j, world := range members {
		if ts := e.targets[world]; ts != nil {
			binary.LittleEndian.PutUint64(mine[8*j:], uint64(ts.sent))
		}
	}
	e.mu.Unlock()
	rows := comm.Gather(0, mine)
	var flat []byte
	if me == 0 {
		for _, row := range rows {
			flat = append(flat, row...)
		}
	}
	flat = comm.Bcast(0, flat)
	if len(flat) != 8*n*n {
		return fmt.Errorf("core: collective completion exchanged %d bytes, want %d", len(flat), 8*n*n)
	}

	// Expected inbound at this rank = column `me` of the matrix.
	var expected int64
	for r := 0; r < n; r++ {
		expected += int64(binary.LittleEndian.Uint64(flat[8*(r*n+me):]))
	}

	// Wait locally for everything addressed to us, then barrier so every
	// member's wait has finished before anyone proceeds.
	at := e.waitAppliedFrom(members, expected)
	e.proc.NIC().CPU().AdvanceTo(at)
	comm.Barrier()
	return nil
}

// Order guarantees that every operation issued to trank (or AllRanks)
// before the call is applied before any operation issued after it — the
// paper's MPI_RMA_order, the shmem_fence-style weak synchronization. On a
// network that preserves ordering it costs nothing (Figure 2's overlapping
// lines); otherwise the next operation to each covered target first stalls
// until the target confirms the earlier operations, the "slight penalty"
// of Section III-B.
func (e *Engine) Order(comm *runtime.Comm, trank int) error {
	e.Progress()
	if e.proc.NIC().Endpoint().Ordered() {
		return nil // the network orders per-pair traffic already
	}
	targets, err := e.resolveTargets(comm, trank)
	if err != nil {
		return err
	}
	e.mu.Lock()
	for _, world := range targets {
		ts := e.targetLocked(world)
		if ts.sent > 0 {
			ts.fencePending = true
		}
	}
	e.mu.Unlock()
	return nil
}

// OrderCollective is the collective form of Order.
func (e *Engine) OrderCollective(comm *runtime.Comm) error {
	if err := e.Order(comm, AllRanks); err != nil {
		return err
	}
	comm.Barrier()
	return nil
}

// resolveTargets expands trank/AllRanks into world ranks.
func (e *Engine) resolveTargets(comm *runtime.Comm, trank int) ([]int, error) {
	if trank == AllRanks {
		return comm.Ranks(), nil
	}
	if trank < 0 || trank >= comm.Size() {
		return nil, fmt.Errorf("core: target rank %d out of range for communicator of size %d", trank, comm.Size())
	}
	return []int{comm.WorldRank(trank)}, nil
}

// sendProbe issues a completion probe to a world rank and returns the
// request its reply completes.
func (e *Engine) sendProbe(world int, threshold int64) *Request {
	req := e.newRequest()
	m := newMsg(world, kProbe)
	m.Hdr[hHandle] = uint64(threshold)
	m.Hdr[hReq] = req.id
	if _, err := e.proc.NIC().Send(e.proc.Now(), m); err != nil {
		panic(err)
	}
	e.proc.NIC().CPU().AdvanceTo(m.SentAt)
	return req
}

// maybeFence enforces a pending Order() before the next operation to
// world: the issue stalls until the target confirms application of all
// earlier operations. Called from the issue path with no locks held.
func (e *Engine) maybeFence(comm *runtime.Comm, world int) {
	e.mu.Lock()
	ts := e.targetLocked(world)
	pending := ts.fencePending
	sent := ts.sent
	if pending {
		ts.fencePending = false
	}
	e.mu.Unlock()
	if !pending || sent == 0 {
		return
	}
	e.FenceStalls.Inc()
	e.sendProbe(world, sent).Wait()
}
