package core

import (
	"encoding/binary"
	"fmt"

	"mpi3rma/internal/runtime"
)

// Complete blocks until every operation previously issued by this rank to
// the given ranks of comm has been applied at the target — the paper's
// MPI_RMA_complete. Call it with no rank arguments (or AllRanks) to cover
// every rank of comm. It is the strong synchronization operation:
// afterwards, remote completion of all covered operations is guaranteed,
// whether or not they set AttrRemoteComplete.
//
// Pending issue rings are flushed first, then completion is established
// per target, cheapest mechanism first:
//
//  1. Nothing outstanding (no operations issued, or the target's delivery
//     counters already confirm everything) — return immediately, no
//     traffic at all.
//  2. Every outstanding operation reports a delivery counter (it was
//     batched, notified, remote-complete, or reply-bearing) — wait locally
//     for the counters to catch up; still no traffic.
//  3. Otherwise fall back to the probe round-trip: one completion probe
//     per target carrying the count of operations issued to it; the target
//     replies once its applied count reaches that threshold.
//
// Options.ProbeCompletion forces path 3 for measurement. Cases 1 and 2 are
// counted in FastPaths.
func (e *Engine) Complete(comm *runtime.Comm, tranks ...int) error {
	e.Progress()
	e.CompleteCalls.Inc()
	start := e.proc.Now()
	targets, err := e.resolveTargets(comm, tranks)
	if err != nil {
		return err
	}
	reqs := make([]*Request, 0, len(targets))
	for _, world := range targets {
		if err := e.stickyFor(world); err != nil {
			// A dead target (ErrRankFailed) or failed link (ErrLinkFailed)
			// can never confirm; report it instead of probing a black hole.
			return fmt.Errorf("core: complete: %w", err)
		}
		e.flushTarget(world)
		e.mu.Lock()
		ts := e.targetLocked(world)
		sent := ts.sent
		will := ts.willConfirm
		e.mu.Unlock()
		if sent == 0 {
			continue
		}
		if !e.opts.ProbeCompletion {
			if at, ok := e.tryConfirmed(world, sent); ok {
				e.FastPaths.Inc()
				e.proc.NIC().CPU().AdvanceTo(at)
				if t := e.tr(); t != nil {
					t.RecordOpf(at, "complete", world, 0, "fastpath sent=%d", sent)
				}
				continue
			}
			if will >= sent {
				// Every outstanding operation reports a delivery counter;
				// ride the notifications instead of probing.
				at, err := e.waitConfirmed(world, sent)
				if err != nil {
					return fmt.Errorf("core: complete: %w", err)
				}
				e.FastPaths.Inc()
				e.proc.NIC().CPU().AdvanceTo(at)
				if t := e.tr(); t != nil {
					t.RecordOpf(at, "complete", world, 0, "notified sent=%d", sent)
				}
				continue
			}
		}
		e.ProbeFallbacks.Inc()
		r, err := e.sendProbe(world, sent)
		if err != nil {
			return err
		}
		if t := e.tr(); t != nil {
			t.RecordOpf(e.proc.Now(), "complete", world, r.id, "probe sent=%d will=%d", sent, will)
		}
		reqs = append(reqs, r)
	}
	WaitAll(reqs...)
	// A probe whose link failed completes with the error instead of an
	// answer; completion cannot be claimed then.
	for _, r := range reqs {
		if err := r.Err(); err != nil {
			return fmt.Errorf("core: complete: %w", err)
		}
	}
	// Every covered op is now applied at its target, so the checker can
	// retire this origin's accesses there; later ops get a fresh epoch.
	e.retireOrigin(targets)
	if lh := e.lat.Load(); lh != nil {
		lh.complete.Observe(int64(e.proc.Now() - start))
	}
	return nil
}

// CompleteCollective is the collective form (MPI_RMA_complete_collective):
// every member of comm calls it; on return, every operation issued by any
// member to any member has been applied.
//
// This is where the paper's "additional implementation optimizations with
// prior knowledge of the participation of remote processes" materialize:
// instead of every rank probing every target (O(n²) round trips, what
// Complete(AllRanks) must do without that knowledge), the members
// exchange their per-target issue counts in one collective, each rank
// waits *locally* until it has applied everything addressed to it, and a
// barrier publishes global completion — O(n log n) messages total.
func (e *Engine) CompleteCollective(comm *runtime.Comm) error {
	e.Progress()
	e.CompleteCalls.Inc()
	e.Flush()
	n := comm.Size()
	me := comm.Rank()
	members := comm.Ranks()

	// Exchange the sent-counts matrix: row r = how many ops member r has
	// issued to each member.
	mine := make([]byte, 8*n)
	e.mu.Lock()
	for j, world := range members {
		if ts := e.targets[world]; ts != nil {
			binary.LittleEndian.PutUint64(mine[8*j:], uint64(ts.sent))
		}
	}
	e.mu.Unlock()
	rows := comm.Gather(0, mine)
	var flat []byte
	if me == 0 {
		for _, row := range rows {
			flat = append(flat, row...)
		}
	}
	flat = comm.Bcast(0, flat)
	if len(flat) != 8*n*n {
		return fmt.Errorf("core: collective completion exchanged %d bytes, want %d: %w", len(flat), 8*n*n, ErrEpoch)
	}

	// Expected inbound at this rank = column `me` of the matrix.
	var expected int64
	for r := 0; r < n; r++ {
		expected += int64(binary.LittleEndian.Uint64(flat[8*(r*n+me):]))
	}

	// Wait locally for everything addressed to us, then barrier so every
	// member's wait has finished before anyone proceeds.
	at, err := e.waitAppliedFrom(members, expected)
	if err != nil {
		return fmt.Errorf("core: collective completion: %w", err)
	}
	e.proc.NIC().CPU().AdvanceTo(at)
	// Everything addressed to this rank has been applied and recorded, and
	// no member can issue again until the barrier releases it — retire the
	// whole target-side window before publishing completion.
	if c := e.ck(); c != nil {
		c.rec.RetireTarget(e.proc.Rank())
	}
	e.advanceEpochs(members)
	comm.Barrier()
	return nil
}

// Order guarantees that every operation issued to the given ranks of comm
// (none given, or AllRanks, = every rank) before the call is applied
// before any operation issued after it — the paper's MPI_RMA_order, the
// shmem_fence-style weak synchronization. On a network that preserves
// ordering it costs nothing beyond flushing pending issue rings (Figure
// 2's overlapping lines); otherwise the next operation to each covered
// target first stalls until the target confirms the earlier operations,
// the "slight penalty" of Section III-B.
func (e *Engine) Order(comm *runtime.Comm, tranks ...int) error {
	e.Progress()
	targets, err := e.resolveTargets(comm, tranks)
	if err != nil {
		return err
	}
	// An aggregate keeps its members' issue order at the target, but ops
	// issued after the Order must not join a pre-Order aggregate.
	for _, world := range targets {
		if err := e.stickyFor(world); err != nil {
			// A fence toward a dead rank or failed link can never be
			// confirmed; surface the sticky error like Complete does
			// instead of arming a fence that would only fail later.
			return fmt.Errorf("core: order: %w", err)
		}
		e.flushTarget(world)
	}
	// Operations issued after the Order are synchronization-separated from
	// those before it; give them a fresh checker epoch.
	e.advanceEpochs(targets)
	if e.proc.NIC().Endpoint().Ordered() {
		return nil // the network orders per-pair traffic already
	}
	e.mu.Lock()
	for _, world := range targets {
		ts := e.targetLocked(world)
		if ts.sent > 0 {
			ts.fencePending = true
		}
	}
	e.mu.Unlock()
	return nil
}

// OrderCollective is the collective form of Order.
func (e *Engine) OrderCollective(comm *runtime.Comm) error {
	if err := e.Order(comm, AllRanks); err != nil {
		return err
	}
	comm.Barrier()
	return nil
}

// resolveTargets expands a variadic target list into world ranks: an empty
// list or any AllRanks entry covers the whole communicator; explicit ranks
// are validated, mapped, and deduplicated preserving call order.
func (e *Engine) resolveTargets(comm *runtime.Comm, tranks []int) ([]int, error) {
	if len(tranks) == 0 {
		return comm.Ranks(), nil
	}
	out := make([]int, 0, len(tranks))
	seen := make(map[int]bool, len(tranks))
	for _, trank := range tranks {
		if trank == AllRanks {
			return comm.Ranks(), nil
		}
		if trank < 0 || trank >= comm.Size() {
			// Spare ranks live outside the communicator; completion toward a
			// dead rank's successor addresses it by world rank directly.
			if w := e.proc.World(); w != nil && trank >= comm.Size() && trank < w.TotalRanks() {
				if !seen[trank] {
					seen[trank] = true
					out = append(out, trank)
				}
				continue
			}
			return nil, fmt.Errorf("core: target rank %d out of range for communicator of size %d: %w", trank, comm.Size(), ErrBadHandle)
		}
		world := comm.WorldRank(trank)
		if !seen[world] {
			seen[world] = true
			out = append(out, world)
		}
	}
	return out, nil
}

// sendProbe issues a completion probe to a world rank and returns the
// request its reply completes. A failed send means the world is shutting
// down; the error is reported rather than crashing the caller.
func (e *Engine) sendProbe(world int, threshold int64) (*Request, error) {
	req := e.newRequest(world)
	m := newMsg(world, kProbe)
	m.Hdr[hHandle] = uint64(threshold)
	m.Hdr[hReq] = req.id
	if _, err := e.proc.NIC().Send(e.proc.Now(), m); err != nil {
		req.complete(e.proc.Now(), nil)
		return nil, fmt.Errorf("core: completion probe to rank %d: %w", world, err)
	}
	e.proc.NIC().CPU().AdvanceTo(m.SentAt)
	return req, nil
}

// maybeFence enforces a pending Order() before the next operation to
// world: the issue stalls until the target confirms application of all
// earlier operations, using the same counter fast paths as Complete.
// Called from the issue path with no locks held.
func (e *Engine) maybeFence(comm *runtime.Comm, world int) error {
	e.mu.Lock()
	ts := e.targetLocked(world)
	pending := ts.fencePending
	if pending {
		ts.fencePending = false
	}
	e.mu.Unlock()
	if !pending {
		return nil
	}
	if err := e.stickyFor(world); err != nil {
		return fmt.Errorf("core: fence: %w", err)
	}
	e.flushTarget(world)
	e.mu.Lock()
	ts = e.targetLocked(world)
	sent := ts.sent
	will := ts.willConfirm
	e.mu.Unlock()
	if sent == 0 {
		return nil
	}
	e.FenceStalls.Inc()
	if t := e.tr(); t != nil {
		t.RecordOpf(e.proc.Now(), "fence", world, 0, "sent=%d will=%d", sent, will)
	}
	if !e.opts.ProbeCompletion {
		if at, ok := e.tryConfirmed(world, sent); ok {
			e.proc.NIC().CPU().AdvanceTo(at)
			return nil
		}
		if will >= sent {
			at, err := e.waitConfirmed(world, sent)
			if err != nil {
				return fmt.Errorf("core: fence: %w", err)
			}
			e.proc.NIC().CPU().AdvanceTo(at)
			return nil
		}
	}
	r, err := e.sendProbe(world, sent)
	if err != nil {
		return err
	}
	r.Wait()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: fence: %w", err)
	}
	return nil
}
