package core

import (
	"encoding/binary"
	"math"
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
)

// accKindCase drives one accumulate through a given element kind and op.
type accKindCase struct {
	name    string
	dt      datatype.Type
	width   int
	encode  func(buf []byte, v float64)
	decode  func(buf []byte) float64
	op      AccOp
	initial float64
	operand float64
	want    float64
}

func accCases() []accKindCase {
	i32 := func(buf []byte, v float64) { binary.LittleEndian.PutUint32(buf, uint32(int32(v))) }
	di32 := func(buf []byte) float64 { return float64(int32(binary.LittleEndian.Uint32(buf))) }
	i64 := func(buf []byte, v float64) { binary.LittleEndian.PutUint64(buf, uint64(int64(v))) }
	di64 := func(buf []byte) float64 { return float64(int64(binary.LittleEndian.Uint64(buf))) }
	f32 := func(buf []byte, v float64) { binary.LittleEndian.PutUint32(buf, math.Float32bits(float32(v))) }
	df32 := func(buf []byte) float64 { return float64(math.Float32frombits(binary.LittleEndian.Uint32(buf))) }
	b8 := func(buf []byte, v float64) { buf[0] = byte(v) }
	db8 := func(buf []byte) float64 { return float64(buf[0]) }
	return []accKindCase{
		{"int32-sum", datatype.Int32, 4, i32, di32, AccSum, 7, -3, 4},
		{"int32-prod", datatype.Int32, 4, i32, di32, AccProd, 6, -2, -12},
		{"int32-min", datatype.Int32, 4, i32, di32, AccMin, 5, -9, -9},
		{"int32-max", datatype.Int32, 4, i32, di32, AccMax, 5, -9, 5},
		{"int64-prod", datatype.Int64, 8, i64, di64, AccProd, 11, 3, 33},
		{"int64-min", datatype.Int64, 8, i64, di64, AccMin, -4, 2, -4},
		{"float32-sum", datatype.Float32, 4, f32, df32, AccSum, 1.5, 2.25, 3.75},
		{"float32-prod", datatype.Float32, 4, f32, df32, AccProd, 2, 4.5, 9},
		{"float32-max", datatype.Float32, 4, f32, df32, AccMax, -1, 3, 3},
		{"float32-axpy", datatype.Float32, 4, f32, df32, AccAxpy, 1, 2, 5},  // 1 + 2*2
		{"byte-sum", datatype.Byte, 1, b8, db8, AccSum, 200, 57, 257 - 256}, // uint8 wrap
		{"byte-min", datatype.Byte, 1, b8, db8, AccMin, 9, 4, 4},
		{"byte-max", datatype.Byte, 1, b8, db8, AccMax, 9, 4, 9},
	}
}

// TestAccumulateElementKinds exercises combineElem for every kind/op pair
// end to end (the AccumulateOps test covers float64).
func TestAccumulateElementKinds(t *testing.T) {
	for _, c := range accCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w := newWorld(t, runtime.Config{Ranks: 2})
			err := w.Run(func(p *runtime.Proc) {
				e := Attach(p, Options{})
				comm := p.Comm()
				if p.Rank() == 0 {
					tm, region := e.ExposeNew(c.width)
					buf := make([]byte, c.width)
					c.encode(buf, c.initial)
					p.WriteLocal(region, 0, buf)
					p.Send(1, 9999, tm.Encode())
					p.Recv(1, 1)
					got := c.decode(p.Mem().Snapshot(region.Offset, c.width))
					if got != c.want {
						t.Errorf("%s: %v op %v = %v, want %v", c.name, c.initial, c.operand, got, c.want)
					}
					return
				}
				enc, _ := p.Recv(0, 9999)
				tm, _ := DecodeTargetMem(enc)
				src := p.Alloc(c.width)
				buf := make([]byte, c.width)
				c.encode(buf, c.operand)
				p.WriteLocal(src, 0, buf)
				var err error
				if c.op == AccAxpy {
					_, err = e.AccumulateAxpy(2.0, src, 1, c.dt, tm, 0, 1, c.dt, 0, comm, AttrBlocking)
				} else {
					_, err = e.Accumulate(c.op, src, 1, c.dt, tm, 0, 1, c.dt, 0, comm, AttrBlocking)
				}
				if err != nil {
					t.Errorf("acc: %v", err)
				}
				e.Complete(comm, 0)
				p.Send(0, 1, nil)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRequestDoneChannel covers the select-based completion channel.
func TestRequestDoneChannel(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 8)
		if p.Rank() == 1 {
			src := p.Alloc(8)
			req, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrRemoteComplete)
			if err != nil {
				t.Errorf("put: %v", err)
				return
			}
			<-req.Done()
			if !req.Test() {
				t.Error("Done fired but Test is false")
			}
			e.Complete(comm, 0)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExplicitLockRelease exercises the standalone release message (the
// path used when an issue fails after the grant).
func TestExplicitLockRelease(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		if p.Rank() == 1 {
			if err := e.acquireLock(0); err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			if err := e.releaseLockExplicit(0); err != nil {
				t.Errorf("release: %v", err)
				return
			}
			// The lock must be reacquirable after the explicit release.
			if err := e.acquireLock(0); err != nil {
				t.Errorf("reacquire: %v", err)
				return
			}
			if err := e.releaseLockExplicit(0); err != nil {
				t.Errorf("re-release: %v", err)
			}
			p.Send(0, 1, nil)
			return
		}
		p.Recv(1, 1)
		// Both grants happened and the lock ends free.
		grants, contended := e.LockStats()
		if grants != 2 || contended != 0 {
			t.Errorf("grants=%d contended=%d, want 2/0", grants, contended)
		}
		if e.LockHolder() != -1 {
			t.Errorf("lock still held by %d", e.LockHolder())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
