package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync/atomic"
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/vtime"
)

// writeFloat64s fills a fresh region with float64 values.
func writeFloat64s(p *runtime.Proc, vals []float64) (off int, region memsim.Region) {
	r := p.Alloc(len(vals) * 8)
	buf := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	p.WriteLocal(r, 0, buf)
	return 0, r
}

// TestGetWithStridedTypes: gather every other float64 of the target into a
// dense origin buffer.
func TestGetStrided(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(8 * 8)
			buf := make([]byte, 64)
			for i := 0; i < 8; i++ {
				binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(float64(i)))
			}
			p.WriteLocal(region, 0, buf)
			p.Send(1, 9999, tm.Encode())
			p.Barrier()
			return
		}
		enc, _ := p.Recv(0, 9999)
		tm, _ := DecodeTargetMem(enc)
		dst := p.Alloc(4 * 8)
		vec := datatype.Vector(4, 1, 2, datatype.Float64) // elements 0,2,4,6
		dense := datatype.Contiguous(4, datatype.Float64)
		req, err := e.Get(dst, 1, dense, tm, 0, 1, vec, 0, comm, AttrNone)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		req.Wait()
		got := p.ReadLocal(dst, 0, 32)
		for i, want := range []float64{0, 2, 4, 6} {
			v := math.Float64frombits(binary.LittleEndian.Uint64(got[i*8:]))
			if v != want {
				t.Errorf("element %d = %v, want %v", i, v, want)
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAccumulateOps checks every combining operation's arithmetic end to
// end.
func TestAccumulateOps(t *testing.T) {
	cases := []struct {
		op      AccOp
		initial float64
		operand float64
		want    float64
	}{
		{AccReplace, 10, 3, 3},
		{AccSum, 10, 3, 13},
		{AccProd, 10, 3, 30},
		{AccMin, 10, 3, 3},
		{AccMax, 10, 3, 10},
	}
	for _, c := range cases {
		c := c
		t.Run(c.op.String(), func(t *testing.T) {
			w := newWorld(t, runtime.Config{Ranks: 2})
			err := w.Run(func(p *runtime.Proc) {
				e := Attach(p, Options{})
				comm := p.Comm()
				if p.Rank() == 0 {
					tm, region := e.ExposeNew(8)
					buf := make([]byte, 8)
					binary.LittleEndian.PutUint64(buf, math.Float64bits(c.initial))
					p.WriteLocal(region, 0, buf)
					p.Send(1, 9999, tm.Encode())
					p.Recv(1, 1)
					got := math.Float64frombits(binary.LittleEndian.Uint64(p.Mem().Snapshot(region.Offset, 8)))
					if got != c.want {
						t.Errorf("%v: %v op %v = %v, want %v", c.op, c.initial, c.operand, got, c.want)
					}
					return
				}
				enc, _ := p.Recv(0, 9999)
				tm, _ := DecodeTargetMem(enc)
				_, src := writeFloat64s(p, []float64{c.operand})
				if _, err := e.Accumulate(c.op, src, 1, datatype.Float64, tm, 0, 1, datatype.Float64, 0, comm, AttrBlocking); err != nil {
					t.Errorf("acc: %v", err)
				}
				e.Complete(comm, 0)
				p.Send(0, 1, nil)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAccumulateAxpy: target = scale*origin + target over float64s, the
// ARMCI-compatible accumulate.
func TestAccumulateAxpy(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(24)
			buf := make([]byte, 24)
			for i, v := range []float64{1, 2, 3} {
				binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
			}
			p.WriteLocal(region, 0, buf)
			p.Send(1, 9999, tm.Encode())
			p.Recv(1, 1)
			got := p.Mem().Snapshot(region.Offset, 24)
			for i, want := range []float64{1 + 2.5*10, 2 + 2.5*20, 3 + 2.5*30} {
				v := math.Float64frombits(binary.LittleEndian.Uint64(got[i*8:]))
				if v != want {
					t.Errorf("element %d = %v, want %v", i, v, want)
				}
			}
			return
		}
		enc, _ := p.Recv(0, 9999)
		tm, _ := DecodeTargetMem(enc)
		_, src := writeFloat64s(p, []float64{10, 20, 30})
		if _, err := e.AccumulateAxpy(2.5, src, 3, datatype.Float64, tm, 0, 3, datatype.Float64, 0, comm, AttrBlocking); err != nil {
			t.Errorf("axpy: %v", err)
		}
		e.Complete(comm, 0)
		p.Send(0, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrossEndianPutGet: a little-endian origin puts int64s into a
// big-endian target; the target's local (big-endian) view decodes to the
// same values, and a get converts back.
func TestCrossEndianPutGet(t *testing.T) {
	w := newWorld(t, runtime.Config{
		Ranks: 2,
		ByteOrder: func(r int) datatype.ByteOrder {
			if r == 0 {
				return datatype.BigEndian
			}
			return datatype.LittleEndian
		},
	})
	defer w.Close()
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(16)
			p.Send(1, 9999, tm.Encode())
			p.Recv(1, 1)
			// The big-endian rank reads its own memory big-endian.
			got := p.Mem().Snapshot(region.Offset, 16)
			if v := int64(binary.BigEndian.Uint64(got[0:])); v != 0x1122334455667788 {
				t.Errorf("big-endian target holds %#x", v)
			}
			if v := int64(binary.BigEndian.Uint64(got[8:])); v != -42 {
				t.Errorf("big-endian target holds %d", v)
			}
			p.Send(1, 2, nil)
			p.Barrier()
			return
		}
		enc, _ := p.Recv(0, 9999)
		tm, _ := DecodeTargetMem(enc)
		if tm.Order != datatype.BigEndian {
			t.Error("descriptor lost the owner's byte order")
		}
		src := p.Alloc(16)
		buf := make([]byte, 16)
		neg := int64(-42)
		binary.LittleEndian.PutUint64(buf[0:], uint64(int64(0x1122334455667788)))
		binary.LittleEndian.PutUint64(buf[8:], uint64(neg))
		p.WriteLocal(src, 0, buf)
		if _, err := e.Put(src, 2, datatype.Int64, tm, 0, 2, datatype.Int64, 0, comm, AttrBlocking); err != nil {
			t.Errorf("put: %v", err)
		}
		e.Complete(comm, 0)
		p.Send(0, 1, nil)
		p.Recv(0, 2)
		// Get them back: values must round trip despite the endian flip.
		dst := p.Alloc(16)
		req, err := e.Get(dst, 2, datatype.Int64, tm, 0, 2, datatype.Int64, 0, comm, AttrNone)
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		req.Wait()
		got := p.ReadLocal(dst, 0, 16)
		if !bytes.Equal(got, buf) {
			t.Error("cross-endian roundtrip mismatch")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrossEndianAccumulate: arithmetic must happen on values, not raw
// bytes, when target and origin disagree on byte order.
func TestCrossEndianAccumulate(t *testing.T) {
	w := newWorld(t, runtime.Config{
		Ranks: 2,
		ByteOrder: func(r int) datatype.ByteOrder {
			if r == 0 {
				return datatype.BigEndian
			}
			return datatype.LittleEndian
		},
	})
	defer w.Close()
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(8)
			init := make([]byte, 8)
			binary.BigEndian.PutUint64(init, 100) // big-endian rank writes natively
			p.WriteLocal(region, 0, init)
			p.Send(1, 9999, tm.Encode())
			p.Recv(1, 1)
			got := int64(binary.BigEndian.Uint64(p.Mem().Snapshot(region.Offset, 8)))
			if got != 142 {
				t.Errorf("sum = %d, want 142", got)
			}
			return
		}
		enc, _ := p.Recv(0, 9999)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(8)
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, 42)
		p.WriteLocal(src, 0, buf)
		if _, err := e.Accumulate(AccSum, src, 1, datatype.Int64, tm, 0, 1, datatype.Int64, 0, comm, AttrBlocking); err != nil {
			t.Errorf("acc: %v", err)
		}
		e.Complete(comm, 0)
		p.Send(0, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFetchAddConcurrent: RMW fetch-and-add from many ranks yields every
// intermediate value exactly once.
func TestFetchAddConcurrent(t *testing.T) {
	const origins = 4
	const iters = 25
	w := newWorld(t, runtime.Config{Ranks: origins + 1})
	seen := make([]atomic.Bool, origins*iters)
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 8)
		if p.Rank() == 0 {
			p.Barrier()
			got := int64(binary.LittleEndian.Uint64(p.Mem().Snapshot(0, 8)))
			_ = got
			return
		}
		for i := 0; i < iters; i++ {
			old, err := e.FetchAdd(tm, 0, 1, 0, comm, AttrNone)
			if err != nil {
				t.Errorf("fetchadd: %v", err)
				return
			}
			if old < 0 || old >= origins*iters {
				t.Errorf("fetchadd returned %d, out of range", old)
				return
			}
			if seen[old].Swap(true) {
				t.Errorf("value %d handed out twice", old)
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("ticket %d never issued", i)
		}
	}
}

// TestCompareSwap: only one of the contending swaps can win each round.
func TestCompareSwap(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 3})
	var wins atomic.Int64
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 8)
		if p.Rank() == 0 {
			p.Barrier()
			return
		}
		old, err := e.CompareSwap(tm, 0, 0, int64(p.Rank()), 0, comm, AttrNone)
		if err != nil {
			t.Errorf("cas: %v", err)
			return
		}
		if old == 0 {
			wins.Add(1)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if wins.Load() != 1 {
		t.Fatalf("%d CAS winners, want exactly 1", wins.Load())
	}
}

func TestRMWValidation(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 8)
		if p.Rank() == 1 {
			if _, err := e.FetchAdd(tm, 4, 1, 0, comm, AttrNone); err == nil {
				t.Error("fetchadd straddling the region end should fail")
			}
			if _, err := e.FetchAdd(tm, -1, 1, 0, comm, AttrNone); err == nil {
				t.Error("negative displacement should fail")
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestActiveMessages: the AM extension invokes registered handlers, counts
// toward Complete, and supports remote completion.
func TestActiveMessages(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	var calls atomic.Int64
	var lastPayload atomic.Value
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			if err := e.RegisterAM(7, func(src int, payload []byte, at vtime.Time) {
				calls.Add(1)
				lastPayload.Store(append([]byte(nil), payload...))
			}); err != nil {
				t.Errorf("register: %v", err)
			}
			if err := e.RegisterAM(7, func(int, []byte, vtime.Time) {}); err == nil {
				t.Error("duplicate AM registration should fail")
			}
			p.Barrier()
			p.Barrier()
			return
		}
		p.Barrier() // handler registered
		req, err := e.InvokeAM(7, []byte("ping"), 0, comm, AttrRemoteComplete|AttrBlocking)
		if err != nil {
			t.Errorf("invoke: %v", err)
			return
		}
		if !req.Test() {
			t.Error("blocking AM incomplete")
		}
		if _, err := e.InvokeAM(7, []byte("pong"), 0, comm, AttrNone); err != nil {
			t.Errorf("invoke: %v", err)
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2", calls.Load())
	}
	if got := lastPayload.Load().([]byte); !bytes.Equal(got, []byte("pong")) {
		t.Fatalf("last payload %q", got)
	}
}

// TestUnregisteredAMCounted: an AM to an unknown id is dropped but still
// counted so Complete does not deadlock.
func TestUnregisteredAM(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 1 {
			if _, err := e.InvokeAM(99, nil, 0, comm, AttrNone); err != nil {
				t.Errorf("invoke: %v", err)
			}
			if err := e.Complete(comm, 0); err != nil {
				t.Errorf("complete must not hang on a bad AM: %v", err)
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestXferDispatch: the single-interface form routes to the right
// operation.
func TestXferDispatch(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(8)
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, 5)
			p.WriteLocal(region, 0, buf)
			p.Send(1, 9999, tm.Encode())
			p.Recv(1, 1)
			got := int64(binary.LittleEndian.Uint64(p.Mem().Snapshot(region.Offset, 8)))
			if got != 12 { // 5 + 7 via Xfer(OpAccumulate, AccSum)
				t.Errorf("value %d, want 12", got)
			}
			return
		}
		enc, _ := p.Recv(0, 9999)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(8)
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, 7)
		p.WriteLocal(src, 0, buf)
		if _, err := e.Xfer(OpAccumulate, AccSum, src, 1, datatype.Int64, tm, 0, 1, datatype.Int64, 0, comm, AttrBlocking); err != nil {
			t.Errorf("xfer acc: %v", err)
		}
		// Xfer get reads it back.
		dst := p.Alloc(8)
		req, err := e.Xfer(OpGet, AccNone, dst, 1, datatype.Int64, tm, 0, 1, datatype.Int64, 0, comm, AttrNone)
		if err != nil {
			t.Errorf("xfer get: %v", err)
			return
		}
		req.Wait()
		if got := int64(binary.LittleEndian.Uint64(p.ReadLocal(dst, 0, 8))); got != 12 {
			t.Errorf("xfer get = %d, want 12", got)
		}
		if _, err := e.Xfer(OpType(99), AccNone, src, 1, datatype.Int64, tm, 0, 1, datatype.Int64, 0, comm, AttrNone); err == nil {
			t.Error("unknown op type accepted")
		}
		e.Complete(comm, 0)
		p.Send(0, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAddrBits32Validation: a 32-bit target's address space bounds
// accesses.
func TestAddrBits32(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{AddrBits: 32})
		comm := p.Comm()
		tm := shipTM(p, e, 64)
		if p.Rank() == 1 {
			if tm.AddrBits != 32 {
				t.Errorf("descriptor AddrBits = %d", tm.AddrBits)
			}
			src := p.Alloc(8)
			// In-range access works fine.
			if _, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrBlocking); err != nil {
				t.Errorf("put: %v", err)
			}
			e.Complete(comm, 0)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestXferInvoke: the optype expansion routes Xfer to a remote method
// invocation.
func TestXferInvoke(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	var got atomic.Value
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			if err := e.RegisterAM(4, func(src int, payload []byte, at vtime.Time) {
				got.Store(append([]byte(nil), payload...))
			}); err != nil {
				t.Errorf("register: %v", err)
			}
			p.Barrier()
			p.Barrier()
			return
		}
		p.Barrier()
		src := p.Alloc(4)
		p.WriteLocal(src, 0, []byte{0xFE, 0xED, 0xFA, 0xCE})
		// tdisp = handler id 4; target_mem unused for invoke.
		req, err := e.Xfer(OpInvoke, AccNone, src, 4, datatype.Byte, TargetMem{}, 4, 4, datatype.Byte, 0, comm, AttrRemoteComplete|AttrBlocking)
		if err != nil {
			t.Errorf("xfer invoke: %v", err)
			return
		}
		if !req.Test() {
			t.Error("blocking invoke incomplete")
		}
		if _, err := e.Xfer(OpInvoke, AccNone, src, 4, datatype.Byte, TargetMem{}, -1, 4, datatype.Byte, 0, comm, AttrNone); err == nil {
			t.Error("negative handler id accepted")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := got.Load().([]byte); !ok || !bytes.Equal(b, []byte{0xFE, 0xED, 0xFA, 0xCE}) {
		t.Fatalf("handler payload %v", got.Load())
	}
}
