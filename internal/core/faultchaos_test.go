package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// The seeded chaos harness: the workloads below are byte-deterministic
// regardless of delivery order (disjoint put slots finalized by a
// Complete per round, plus commutative accumulate sums), so a run under
// any fault plan must converge to the exact bytes of the fault-free run.
// Each faulted plan carries an early burst window that drops everything
// on one origin→target link, guaranteeing the relay retransmits
// (net.retries > 0) — the retransmit stamps escape the window long
// before the retry budget runs out.

// chaosPlans is the fault matrix shared by the chaos workloads.
func chaosPlans() []struct {
	name string
	plan *simnet.FaultPlan
} {
	burst := func() []simnet.Burst {
		return []simnet.Burst{{
			Link:   simnet.LinkKey{Src: 1, Dst: 0},
			From:   0,
			Until:  vtime.Time(20 * time.Microsecond),
			Faults: simnet.LinkFaults{Drop: 1},
		}}
	}
	return []struct {
		name string
		plan *simnet.FaultPlan
	}{
		{"drop", &simnet.FaultPlan{
			Seed:    1001,
			Default: simnet.LinkFaults{Drop: 0.08},
			Bursts:  burst(),
		}},
		{"drop+dup", &simnet.FaultPlan{
			Seed:    1002,
			Default: simnet.LinkFaults{Drop: 0.05, Dup: 0.15},
			Bursts:  burst(),
		}},
		{"drop+dup+delay+corrupt", &simnet.FaultPlan{
			Seed: 1003,
			Default: simnet.LinkFaults{
				Drop: 0.04, Dup: 0.08, Corrupt: 0.04,
				Delay: 0.2, DelayBy: 5 * time.Microsecond,
			},
			Bursts: burst(),
		}},
	}
}

const (
	fcWriters = 7
	fcSlot    = 8
	fcRounds  = 10
)

// runSevenWriter runs 7 origins hammering one target — each origin owns
// a disjoint put slot (finalized per round) and a disjoint accumulate
// slot (commutative sum) — and returns the target's final exposed bytes.
// topts configures the target rank's engine (the origins always attach
// with defaults), so the same workload can run on the serial and the
// sharded apply engine.
func runSevenWriter(t *testing.T, plan *simnet.FaultPlan, topts Options) []byte {
	t.Helper()
	w := newWorld(t, runtime.Config{Ranks: fcWriters + 1, Seed: 7, Faults: plan})
	size := 2 * fcWriters * fcSlot
	final := make([]byte, size)
	err := w.Run(func(p *runtime.Proc) {
		opts := Options{}
		if p.Rank() == 0 {
			opts = topts
		}
		e := Attach(p, opts)
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(size)
			enc := tm.Encode()
			for r := 1; r <= fcWriters; r++ {
				p.Send(r, 9999, enc)
			}
			p.Barrier()
			copy(final, p.Mem().Snapshot(region.Offset, size))
			return
		}
		enc, _ := p.Recv(0, 9999)
		tm, err := DecodeTargetMem(enc)
		if err != nil {
			t.Errorf("decode: %v", err)
			panic("faultchaos: no descriptor")
		}
		putSlot := (p.Rank() - 1) * fcSlot
		accSlot := fcWriters*fcSlot + putSlot
		scratch := p.Alloc(fcSlot)
		for round := 0; round < fcRounds; round++ {
			// The put slot converges to the last round's pattern because
			// a Complete separates the rounds.
			pattern := bytes.Repeat([]byte{byte(16*p.Rank() + round)}, fcSlot)
			p.WriteLocal(scratch, 0, pattern)
			if _, err := e.Put(scratch, fcSlot, datatype.Byte, tm, putSlot, fcSlot, datatype.Byte, 0, comm, AttrNone); err != nil {
				t.Errorf("rank %d round %d put: %v", p.Rank(), round, err)
				panic("faultchaos: put failed")
			}
			if err := e.Complete(comm, 0); err != nil {
				t.Errorf("rank %d round %d complete(put): %v", p.Rank(), round, err)
				panic("faultchaos: complete failed")
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(1000*p.Rank()+round))
			p.WriteLocal(scratch, 0, b[:])
			if _, err := e.Accumulate(AccSum, scratch, 1, datatype.Int64, tm, accSlot, 1, datatype.Int64, 0, comm, AttrAtomic); err != nil {
				t.Errorf("rank %d round %d acc: %v", p.Rank(), round, err)
				panic("faultchaos: acc failed")
			}
			if err := e.Complete(comm, 0); err != nil {
				t.Errorf("rank %d round %d complete(acc): %v", p.Rank(), round, err)
				panic("faultchaos: complete failed")
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	return final
}

// TestFaultChaosSevenWriter asserts byte-exact convergence of the
// 7-writer contention workload across the whole fault matrix, with
// guaranteed retransmissions in every faulted run.
func TestFaultChaosSevenWriter(t *testing.T) {
	baseline := runSevenWriter(t, nil, Options{})
	// Sanity: the fault-free run produced the analytically expected bytes.
	for r := 1; r <= fcWriters; r++ {
		wantPut := bytes.Repeat([]byte{byte(16*r + fcRounds - 1)}, fcSlot)
		if got := baseline[(r-1)*fcSlot : r*fcSlot]; !bytes.Equal(got, wantPut) {
			t.Fatalf("baseline writer %d put slot = %x, want %x", r, got, wantPut)
		}
		var wantSum int64
		for round := 0; round < fcRounds; round++ {
			wantSum += int64(1000*r + round)
		}
		got := int64(binary.LittleEndian.Uint64(baseline[fcWriters*fcSlot+(r-1)*fcSlot:]))
		if got != wantSum {
			t.Fatalf("baseline writer %d acc slot = %d, want %d", r, got, wantSum)
		}
	}
	for _, tc := range chaosPlans() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := runSevenWriter(t, tc.plan, Options{})
			if !bytes.Equal(got, baseline) {
				t.Fatalf("faulted run diverged from fault-free bytes:\n got %x\nwant %x", got, baseline)
			}
		})
	}
}

// TestFaultChaosSevenWriterSharded repeats the 7-writer matrix with the
// target running the sharded apply engine (4 shards over a 112-byte
// exposure, so the 8-byte put slots straddle shard boundaries and
// exercise the designated-shard path, plus atomic accumulates taking the
// serializer bypass) and asserts byte-exact convergence with the serial
// engine's fault-free bytes — same plans, same seeds.
func TestFaultChaosSevenWriterSharded(t *testing.T) {
	sharded := Options{ApplyShards: 4, ApplyWorkers: 4}
	baseline := runSevenWriter(t, nil, Options{})
	if got := runSevenWriter(t, nil, sharded); !bytes.Equal(got, baseline) {
		t.Fatalf("fault-free sharded run diverged from serial bytes:\n got %x\nwant %x", got, baseline)
	}
	for _, tc := range chaosPlans() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := runSevenWriter(t, tc.plan, sharded)
			if !bytes.Equal(got, baseline) {
				t.Fatalf("faulted sharded run diverged from serial fault-free bytes:\n got %x\nwant %x", got, baseline)
			}
		})
	}
}

const (
	stRanks = 4
	stHalo  = 16
)

// runStencil runs a ring halo exchange: every rank puts its boundary
// pattern into both neighbours' halo slots each round, synchronized by
// CompleteCollective. Returns the concatenated final halos of all ranks.
func runStencil(t *testing.T, plan *simnet.FaultPlan) []byte {
	t.Helper()
	w := newWorld(t, runtime.Config{Ranks: stRanks, Seed: 13, Faults: plan})
	final := make([]byte, stRanks*2*stHalo)
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		me := p.Rank()
		left := (me + stRanks - 1) % stRanks
		right := (me + 1) % stRanks
		tm, region := e.ExposeNew(2 * stHalo) // [0,stHalo): from left; rest: from right
		enc := tm.Encode()
		p.Send(left, 5001, enc)
		p.Send(right, 5002, enc)
		encRight, _ := p.Recv(right, 5001) // right neighbour's descriptor
		encLeft, _ := p.Recv(left, 5002)
		tmRight, err := DecodeTargetMem(encRight)
		if err != nil {
			t.Errorf("decode right: %v", err)
			panic("stencil: no descriptor")
		}
		tmLeft, err := DecodeTargetMem(encLeft)
		if err != nil {
			t.Errorf("decode left: %v", err)
			panic("stencil: no descriptor")
		}
		scratch := p.Alloc(stHalo)
		for round := 0; round < fcRounds; round++ {
			pattern := bytes.Repeat([]byte{byte(32*me + round)}, stHalo)
			p.WriteLocal(scratch, 0, pattern)
			// I am my right neighbour's left source and vice versa.
			if _, err := e.Put(scratch, stHalo, datatype.Byte, tmRight, 0, stHalo, datatype.Byte, right, comm, AttrNone); err != nil {
				t.Errorf("rank %d round %d put right: %v", me, round, err)
				panic("stencil: put failed")
			}
			if _, err := e.Put(scratch, stHalo, datatype.Byte, tmLeft, stHalo, stHalo, datatype.Byte, left, comm, AttrNone); err != nil {
				t.Errorf("rank %d round %d put left: %v", me, round, err)
				panic("stencil: put failed")
			}
			if err := e.CompleteCollective(comm); err != nil {
				t.Errorf("rank %d round %d collective: %v", me, round, err)
				panic("stencil: collective failed")
			}
		}
		copy(final[me*2*stHalo:], p.Mem().Snapshot(region.Offset, 2*stHalo))
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	return final
}

// TestFaultChaosStencil asserts the ring halo exchange converges
// byte-exactly under the fault matrix.
func TestFaultChaosStencil(t *testing.T) {
	baseline := runStencil(t, nil)
	for me := 0; me < stRanks; me++ {
		left := (me + stRanks - 1) % stRanks
		right := (me + 1) % stRanks
		halo := baseline[me*2*stHalo : (me+1)*2*stHalo]
		wantL := bytes.Repeat([]byte{byte(32*left + fcRounds - 1)}, stHalo)
		wantR := bytes.Repeat([]byte{byte(32*right + fcRounds - 1)}, stHalo)
		if !bytes.Equal(halo[:stHalo], wantL) || !bytes.Equal(halo[stHalo:], wantR) {
			t.Fatalf("baseline rank %d halo = %x, want %x|%x", me, halo, wantL, wantR)
		}
	}
	for _, tc := range chaosPlans() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := runStencil(t, tc.plan)
			if !bytes.Equal(got, baseline) {
				t.Fatalf("faulted run diverged from fault-free bytes:\n got %x\nwant %x", got, baseline)
			}
		})
	}
}

// TestFaultChaosRetriesObserved pins the "net.retries > 0" acceptance
// criterion directly: the guaranteed drop burst forces retransmissions
// and the run still converges.
func TestFaultChaosRetriesObserved(t *testing.T) {
	plan := chaosPlans()[0].plan
	w := newWorld(t, runtime.Config{Ranks: 2, Seed: 7, Faults: plan})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 64)
		if p.Rank() == 0 {
			p.Barrier()
			return
		}
		scratch := p.Alloc(8)
		p.WriteLocal(scratch, 0, []byte("12345678"))
		if _, err := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrNone); err != nil {
			t.Errorf("put: %v", err)
			panic("retries: put failed")
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
			panic("retries: complete failed")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	if w.Net().Retries.Value() == 0 {
		t.Fatal("guaranteed drop burst produced no retransmissions")
	}
	if w.Net().FaultsDropped.Value() == 0 {
		t.Fatal("fault plan injected nothing")
	}
}

// TestLinkFailedSurfacesFromComplete: when a link drops everything
// forever and the retry budget is tiny, Complete must return a wrapped
// ErrLinkFailed within bounded time — graceful degradation, not a hang —
// and the engine reports the sticky failure via Err().
func TestLinkFailedSurfacesFromComplete(t *testing.T) {
	w := newWorld(t, runtime.Config{
		Ranks: 2,
		Faults: &simnet.FaultPlan{
			Seed:  31,
			Links: map[simnet.LinkKey]simnet.LinkFaults{{Src: 0, Dst: 1}: {Drop: 1}},
		},
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := w.Run(func(p *runtime.Proc) {
			e := Attach(p, Options{})
			comm := p.Comm()
			if p.Rank() == 1 {
				// The victim target: expose, ship the descriptor over the
				// healthy 1→0 link, and return (the NIC keeps serving).
				tm, _ := e.ExposeNew(64)
				p.Send(0, 9999, tm.Encode())
				return
			}
			enc, _ := p.Recv(1, 9999)
			tm, err := DecodeTargetMem(enc)
			if err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			scratch := p.Alloc(8)
			if _, err := e.Put(scratch, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 1, comm, AttrNone); err != nil && !errors.Is(err, ErrLinkFailed) {
				t.Errorf("put: %v", err)
				return
			}
			err = e.Complete(comm, 1)
			if !errors.Is(err, ErrLinkFailed) {
				t.Errorf("Complete returned %v, want wrapped ErrLinkFailed", err)
			}
			if e.Err() == nil {
				t.Error("Engine.Err() nil after link failure")
			}
		})
		if err != nil {
			t.Errorf("world: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Complete hung after retry budget exhaustion")
	}
}
