package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/serializer"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// newMsg builds a protocol message skeleton.
func newMsg(dst int, kind uint8) *simnet.Message {
	return &simnet.Message{Dst: dst, Kind: kind}
}

// Put transfers origin data into target memory (the paper's MPI_RMA_put).
// origin is a region of this rank's memory holding ocount instances of
// odt; the data lands at byte displacement tdisp of tm, laid out as tcount
// instances of tdt. trank names the target within comm and must match
// tm.Owner. attrs selects the operation's attributes; the communicator and
// engine defaults are ORed in.
//
// Without AttrBlocking, Put returns a Request; with it, Put completes the
// operation before returning (the returned request is already complete).
func (e *Engine) Put(origin memsim.Region, ocount int, odt datatype.Type, tm TargetMem, tdisp, tcount int, tdt datatype.Type, trank int, comm *runtime.Comm, attrs Attr) (*Request, error) {
	return e.xfer(OpPut, AccNone, 0, origin, ocount, odt, tm, tdisp, tcount, tdt, trank, comm, attrs)
}

// Get transfers target memory into origin memory (the paper's
// MPI_RMA_get). The request completes when the data has arrived in the
// origin region.
func (e *Engine) Get(origin memsim.Region, ocount int, odt datatype.Type, tm TargetMem, tdisp, tcount int, tdt datatype.Type, trank int, comm *runtime.Comm, attrs Attr) (*Request, error) {
	return e.xfer(OpGet, AccNone, 0, origin, ocount, odt, tm, tdisp, tcount, tdt, trank, comm, attrs)
}

// Accumulate combines origin data into target memory with op. Elementwise
// updates are always atomic per element; set AttrAtomic for atomicity of
// the whole operation against other atomic operations.
func (e *Engine) Accumulate(op AccOp, origin memsim.Region, ocount int, odt datatype.Type, tm TargetMem, tdisp, tcount int, tdt datatype.Type, trank int, comm *runtime.Comm, attrs Attr) (*Request, error) {
	if op == AccNone {
		op = AccReplace
	}
	return e.xfer(OpAccumulate, op, 1, origin, ocount, odt, tm, tdisp, tcount, tdt, trank, comm, attrs)
}

// AccumulateAxpy performs the ARMCI-style axpy accumulate:
// target = scale*origin + target, over float64 (daxpy) or float32 (saxpy)
// elements.
func (e *Engine) AccumulateAxpy(scale float64, origin memsim.Region, ocount int, odt datatype.Type, tm TargetMem, tdisp, tcount int, tdt datatype.Type, trank int, comm *runtime.Comm, attrs Attr) (*Request, error) {
	return e.xfer(OpAccumulate, AccAxpy, scale, origin, ocount, odt, tm, tdisp, tcount, tdt, trank, comm, attrs)
}

// Xfer is the paper's single-interface form (MPI_RMA_xfer): op selects
// put, get or accumulate; accOp selects the combining operation for
// accumulates (ignored otherwise).
func (e *Engine) Xfer(op OpType, accOp AccOp, origin memsim.Region, ocount int, odt datatype.Type, tm TargetMem, tdisp, tcount int, tdt datatype.Type, trank int, comm *runtime.Comm, attrs Attr) (*Request, error) {
	scale := 1.0
	switch op {
	case OpPut:
		accOp = AccNone
	case OpGet:
		accOp = AccNone
	case OpAccumulate:
		if accOp == AccNone {
			accOp = AccReplace
		}
	case OpInvoke:
		// The optype expansion: a remote method invocation. The origin
		// buffer is the payload; tdisp names the handler id; the
		// target-side arguments are unused.
		ext := datatype.ExtentOf(ocount, odt)
		if !origin.Contains(0, ext) {
			return nil, fmt.Errorf("core: invoke payload of %d bytes exceeds origin region of %d: %w", ext, origin.Size, ErrBounds)
		}
		if tdisp < 0 {
			return nil, fmt.Errorf("core: invoke handler id must be non-negative: %w", ErrBounds)
		}
		payload := e.proc.Mem().Snapshot(origin.Offset, ext)
		return e.InvokeAM(uint64(tdisp), payload, trank, comm, attrs)
	default:
		return nil, fmt.Errorf("core: unknown op type %v", op)
	}
	return e.xfer(op, accOp, scale, origin, ocount, odt, tm, tdisp, tcount, tdt, trank, comm, attrs)
}

// validateXfer checks the transfer arguments shared by all operations.
// Every failure wraps one of the sentinel errors of errors.go.
func (e *Engine) validateXfer(op OpType, accOp AccOp, origin memsim.Region, ocount int, odt datatype.Type, tm TargetMem, tdisp, tcount int, tdt datatype.Type, trank int, comm *runtime.Comm) error {
	if !tm.Valid() {
		return fmt.Errorf("core: invalid target_mem descriptor: %w", ErrBadHandle)
	}
	// Spare ranks live outside the communicator: a descriptor re-targeted
	// at a dead rank's successor (tm.Owner = spare) names it by world rank
	// directly.
	w := trank
	if trank >= 0 && trank < comm.Size() {
		w = comm.WorldRank(trank)
	} else if wd := e.proc.World(); trank < 0 || wd == nil || trank >= wd.TotalRanks() {
		return fmt.Errorf("core: target rank %d out of range: %w", trank, ErrBadHandle)
	}
	if w != tm.Owner {
		return fmt.Errorf("core: target rank %d of comm resolves to world rank %d, but target_mem is owned by rank %d: %w", trank, w, tm.Owner, ErrBadHandle)
	}
	if ocount < 0 || tcount < 0 || tdisp < 0 {
		return fmt.Errorf("core: negative count or displacement: %w", ErrBounds)
	}
	if !datatype.Compatible(ocount, odt, tcount, tdt) {
		return fmt.Errorf("core: type signature mismatch: %d x %s vs %d x %s: %w", ocount, odt.Name(), tcount, tdt.Name(), ErrType)
	}
	oExt := datatype.ExtentOf(ocount, odt)
	if !origin.Contains(0, oExt) {
		return fmt.Errorf("core: origin region of %d bytes cannot hold %d x %s (%d bytes): %w", origin.Size, ocount, odt.Name(), oExt, ErrBounds)
	}
	tExt := datatype.ExtentOf(tcount, tdt)
	if tdisp+tExt > tm.Size {
		return fmt.Errorf("core: target access [%d,%d) exceeds target_mem of %d bytes: %w", tdisp, tdisp+tExt, tm.Size, ErrBounds)
	}
	if tm.AddrBits == 32 && uint64(tdisp)+uint64(tExt) > 1<<32 {
		return fmt.Errorf("core: access beyond the target's 32-bit address space: %w", ErrBounds)
	}
	if accOp == AccAxpy {
		for _, run := range kindsOf(tcount, tdt) {
			if run != datatype.KFloat64 && run != datatype.KFloat32 {
				return fmt.Errorf("core: axpy accumulate requires floating-point elements, got %v: %w", run, ErrType)
			}
		}
	}
	if op == OpAccumulate && accOp != AccReplace {
		for _, k := range kindsOf(tcount, tdt) {
			if k == datatype.KByte && (accOp == AccProd || accOp == AccAxpy) {
				return fmt.Errorf("core: accumulate op %v not defined for byte elements: %w", accOp, ErrType)
			}
		}
	}
	return nil
}

// kindsOf returns the distinct element kinds of a transfer.
func kindsOf(count int, t datatype.Type) []datatype.Kind {
	seen := make(map[datatype.Kind]bool)
	var out []datatype.Kind
	if count > 0 {
		datatype.Walk(t, func(off, n int, k datatype.Kind) {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		})
	}
	return out
}

// xfer is the common issue path.
func (e *Engine) xfer(op OpType, accOp AccOp, scale float64, origin memsim.Region, ocount int, odt datatype.Type, tm TargetMem, tdisp, tcount int, tdt datatype.Type, trank int, comm *runtime.Comm, attrs Attr) (*Request, error) {
	if err := e.validateXfer(op, accOp, origin, ocount, odt, tm, tdisp, tcount, tdt, trank, comm); err != nil {
		return nil, err
	}
	if err := e.stickyFor(tm.Owner); err != nil {
		// Fast-fail toward a dead rank or failed link: issuing would only
		// accumulate requests that the failure handler must then reap.
		return nil, err
	}
	attrs = e.effectiveAttrs(comm, attrs)
	target := tm.Owner
	e.Progress() // entering the library makes progress (MechProgress)
	if e.batchable(op, attrs, datatype.PackedSize(ocount, odt)) {
		if err := e.maybeFence(comm, target); err != nil {
			return nil, err
		}
		return e.appendBatch(accOp, scale, origin, ocount, odt, tm, tdisp, tcount, tdt, attrs)
	}
	// A non-batchable operation must not overtake ring-held ones.
	e.flushTarget(target)
	if err := e.maybeFence(comm, target); err != nil {
		return nil, err
	}

	// Ordered-stream sequence number, only needed when the network itself
	// does not order messages (the Figure 2 "ordering is free" case).
	var seq, epoch uint64
	e.mu.Lock()
	ts := e.targetLocked(target)
	epoch = ts.chkEpoch
	ts.sent++
	ts.singleton++
	if op == OpGet || attrs&(AttrRemoteComplete|AttrNotify) != 0 {
		// The operation's reply, ack, or notification reports a delivery
		// counter; Complete may wait on counters instead of probing.
		ts.willConfirm++
	}
	if attrs&AttrOrdering != 0 && !e.proc.NIC().Endpoint().Ordered() {
		ts.orderSeq++
		seq = ts.orderSeq
	}
	e.mu.Unlock()
	e.OpsIssued.Inc()
	e.SingletonOps.Inc()

	req := e.newRequest(target)
	if e.lat.Load() != nil {
		req.latKind = latKindOf(op)
		req.issuedAt = e.proc.Now()
	}

	var m *simnet.Message
	switch op {
	case OpPut, OpAccumulate:
		wire := make([]byte, datatype.PackedSize(ocount, odt))
		src := e.proc.Mem().Snapshot(origin.Offset, datatype.ExtentOf(ocount, odt))
		if err := datatype.PackInto(wire, src, ocount, odt, e.proc.ByteOrder()); err != nil {
			req.completeErr(e.proc.Now(), err)
			return nil, err
		}
		m = newMsg(target, kPut)
		m.Payload = putPayload(tdt, accOp, scale, wire)
	case OpGet:
		m = newMsg(target, kGet)
		m.Payload = getPayload(tdt)
		// Stash the unpack destination; the reply handler runs it. A
		// failure is reported through the request (Err), not a panic on
		// the delivery goroutine.
		oc, od := ocount, odt
		reg := origin
		req.onData = func(wire []byte, at vtime.Time) error {
			buf := make([]byte, datatype.ExtentOf(oc, od))
			if err := e.proc.Mem().RemoteRead(reg.Offset, buf); err != nil {
				return fmt.Errorf("core: get landing read: %w", err)
			}
			if err := datatype.Unpack(buf, wire, oc, od, e.proc.ByteOrder()); err != nil {
				return fmt.Errorf("core: get unpack: %w", err)
			}
			if err := e.proc.Mem().RemoteWrite(reg.Offset, buf); err != nil {
				return fmt.Errorf("core: get landing write: %w", err)
			}
			return nil
		}
	}
	m.Hdr[hHandle] = tm.Handle
	m.Hdr[hDisp] = uint64(tdisp)
	m.Hdr[hCount] = uint64(tcount)
	m.Hdr[hMeta] = uint64(attrs)&0xffff | uint64(accOp)<<16 | (epoch&0xffffffff)<<32
	m.Hdr[hReq] = req.id
	m.Hdr[hSeq] = seq

	// The coarse-grain serializer requires the origin to hold the target's
	// process-level lock across the whole atomic operation.
	if attrs&AttrAtomic != 0 && e.targetUsesCoarseLock() {
		if err := e.acquireLock(target); err != nil {
			req.completeErr(e.proc.Now(), err)
			return nil, err
		}
		m.Flags |= flagUnlockAfter
	}

	if _, err := e.proc.NIC().Send(e.proc.Now(), m); err != nil {
		// The request was already visible in the engine table; completing
		// it with the error (instead of abandoning it there) keeps every
		// observation surface — Done, Err, OnDone, Select, the event
		// queue — in agreement with the returned error.
		req.completeErr(e.proc.Now(), err)
		return nil, err
	}
	e.proc.NIC().CPU().AdvanceTo(m.SentAt)
	if t := e.tr(); t != nil {
		t.RecordOpf(m.SentAt, "issue", target, req.id, "%v %s disp=%d bytes=%d attrs=%v arrive=%d", op, tdt.Name(), tdisp, datatype.PackedSize(tcount, tdt), attrs, m.ArriveAt)
	}

	// Local completion: puts and accumulates without RemoteComplete are
	// done once the data has left the origin. Gets complete on reply.
	if op != OpGet && attrs&AttrRemoteComplete == 0 {
		req.complete(m.SentAt, nil)
	}
	if attrs&AttrBlocking != 0 {
		req.Wait()
	}
	return req, nil
}

// targetUsesCoarseLock reports whether atomic operations must use the
// coarse-grain lock protocol. The mechanism is a property of the target's
// engine; in this simulator all ranks of a world share one Options value,
// so the origin's own configuration answers for the target (asserted in
// tests).
func (e *Engine) targetUsesCoarseLock() bool {
	return e.opts.Atomicity == serializer.MechCoarseLock
}

// putPayload frames a put/accumulate body:
// varint(len(dt)) dt [scale f64 bits if AccAxpy] wire.
func putPayload(tdt datatype.Type, accOp AccOp, scale float64, wire []byte) []byte {
	dt := datatype.Encode(tdt)
	out := binary.AppendUvarint(nil, uint64(len(dt)))
	out = append(out, dt...)
	if accOp == AccAxpy {
		var s [8]byte
		binary.LittleEndian.PutUint64(s[:], math.Float64bits(scale))
		out = append(out, s[:]...)
	}
	return append(out, wire...)
}

// getPayload frames a get body: varint(len(dt)) dt.
func getPayload(tdt datatype.Type) []byte {
	dt := datatype.Encode(tdt)
	out := binary.AppendUvarint(nil, uint64(len(dt)))
	return append(out, dt...)
}

// parseTypeFrame splits a framed body into the decoded type and the rest.
func parseTypeFrame(body []byte) (datatype.Type, []byte, error) {
	dtLen, n := binary.Uvarint(body)
	if n <= 0 || uint64(len(body)-n) < dtLen {
		return nil, nil, fmt.Errorf("core: truncated datatype frame")
	}
	dt, used, err := datatype.Decode(body[n : n+int(dtLen)])
	if err != nil {
		return nil, nil, err
	}
	if used != int(dtLen) {
		return nil, nil, fmt.Errorf("core: datatype frame has %d trailing bytes", int(dtLen)-used)
	}
	return dt, body[n+int(dtLen):], nil
}
