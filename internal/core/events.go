package core

import (
	"fmt"
	"sync"

	"mpi3rma/internal/runtime"
	"mpi3rma/internal/stats"
	"mpi3rma/internal/telemetry"
	"mpi3rma/internal/vtime"
)

// Event-driven completion.
//
// The pull-blocking surface (Wait/Await/Complete) forces the origin to
// burn its time inside the library exactly when one-sided communication
// should be freeing it to compute. This file adds the push side: a
// bounded MPMC completion queue fed at the two watermark joins every
// completion signal already funnels through —
//
//   - noteApplied (target side, under tgtMu): every applied operation,
//     serial, sharded, or serialized, increments the per-origin delivery
//     counter here. Publishing EvDelivery at this point means an event
//     is emitted if and only if the counter Complete/Order observe moved,
//     with the same virtual timestamp.
//   - noteConfirmed (origin side, under cmplMu): every target→origin
//     report (ack, reply, probe answer, notification) folds into
//     confirmed[target] here. EvConfirm fires only when the fold raised
//     the counter, so duplicates and reordered reports publish nothing —
//     the event stream is monotone exactly like the counters.
//
// plus the request completion point (Request.finish) and the two sticky
// failure points (onLinkFailed, failEngine). Because events are published
// at the same joins, under the same locks, with the same vtime stamps,
// the event order observed through one queue is consistent with what
// Complete/Order would have established: an EvQuiescent for target t is
// published only after every EvDelivery that made t quiescent, and an
// event's At never precedes the At of the counter movement it reports.
//
// The queue is deliberately lossy at the rim: producers are delivery
// goroutines (NIC agents, shard workers, serializers) and must never
// block on a slow consumer, so a full queue drops the incoming event and
// counts it in Dropped. Counters — not the queue — remain the source of
// truth; the queue is a wakeup/telemetry surface. Waiters that must not
// miss anything use Select, whose count-threshold waiters are serviced
// under the counter locks and are therefore lossless.

// EventKind discriminates completion events.
type EventKind uint8

const (
	// EvRequestDone reports a request's terminal transition: Req is done,
	// Err carries its asynchronous failure (nil on success). Exactly one
	// EvRequestDone is published per request.
	EvRequestDone EventKind = iota + 1
	// EvDelivery reports a target-side application: an operation from
	// world rank Rank was applied to this rank's memory, raising the
	// cumulative per-origin delivery counter to Count.
	EvDelivery
	// EvConfirm reports origin-side confirmation progress: a report from
	// world rank Rank raised this rank's confirmed counter for that
	// target to Count.
	EvConfirm
	// EvQuiescent reports that target Rank has confirmed application of
	// everything this rank had issued to it when the event was published
	// (confirmed >= sent) — the moment Complete(rank) would return
	// without waiting.
	EvQuiescent
	// EvFault reports a sticky failure: Err wraps ErrRankFailed (Rank is
	// the rank the membership service confirmed dead — published exactly
	// once per death), ErrLinkFailed (Rank is the unreachable target,
	// which is still alive), or ErrApplyFault (Rank is AllRanks; the
	// local apply pipeline is poisoned).
	EvFault
)

// String names the event kind for logs and tests.
func (k EventKind) String() string {
	switch k {
	case EvRequestDone:
		return "request-done"
	case EvDelivery:
		return "delivery"
	case EvConfirm:
		return "confirm"
	case EvQuiescent:
		return "quiescent"
	case EvFault:
		return "fault"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one completion-queue entry. At is the deterministic virtual
// time of the underlying transition (the apply end, the report arrival,
// the request completion), not the wall time of queue insertion; Seq is
// the queue-local publication sequence (1, 2, 3, ... in publication
// order, including dropped events).
type Event struct {
	Kind  EventKind
	At    vtime.Time
	Seq   uint64
	Rank  int      // world rank; see the kind's documentation
	Req   *Request // EvRequestDone only
	Count int64    // cumulative counter value (EvDelivery/EvConfirm/EvQuiescent)
	Err   error    // EvRequestDone failure or EvFault cause
}

// DefaultEventQueueCap is the completion-queue capacity when EnableEvents
// is called with a non-positive capacity.
const DefaultEventQueueCap = 1024

// CompletionQueue is a bounded MPMC queue of completion events. Producers
// are the engine's delivery paths and never block: when the queue is full
// the incoming event is dropped and counted. Consumers drain with Poll
// (non-blocking) or Wait (blocking). Neither advances the rank's virtual
// clock — events may be consumed long after the virtual instant they
// report; use Select for clock-advancing waits.
type CompletionQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Event
	head   int
	n      int
	seq    uint64
	closed bool

	// Published counts events offered to the queue (accepted or dropped);
	// Dropped counts the subset rejected because the queue was full.
	Published stats.Counter
	Dropped   stats.Counter
	depth     stats.Gauge
}

func newCompletionQueue(capacity int) *CompletionQueue {
	q := &CompletionQueue{buf: make([]Event, capacity)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push offers an event; it never blocks. The event receives the next
// publication sequence number whether or not it is accepted.
func (q *CompletionQueue) push(ev Event) {
	q.Published.Inc()
	q.mu.Lock()
	q.seq++
	ev.Seq = q.seq
	if q.closed || q.n == len(q.buf) {
		q.mu.Unlock()
		q.Dropped.Inc()
		return
	}
	q.buf[(q.head+q.n)%len(q.buf)] = ev
	q.n++
	q.depth.Set(int64(q.n))
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *CompletionQueue) popLocked() Event {
	ev := q.buf[q.head]
	q.buf[q.head] = Event{} // drop references (Req, Err) for the GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.depth.Set(int64(q.n))
	return ev
}

// Poll returns the oldest queued event without blocking; ok is false when
// the queue is empty.
func (q *CompletionQueue) Poll() (ev Event, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return Event{}, false
	}
	return q.popLocked(), true
}

// Wait blocks until an event is available and returns it; ok is false
// only when the queue has been closed (the world shut down) and drained.
func (q *CompletionQueue) Wait() (ev Event, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		if q.closed {
			return Event{}, false
		}
		q.cond.Wait()
	}
	return q.popLocked(), true
}

// Len returns the number of queued events; Cap the queue's capacity.
func (q *CompletionQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Cap returns the queue's fixed capacity.
func (q *CompletionQueue) Cap() int { return len(q.buf) }

// close wakes blocked Wait calls; queued events remain drainable.
func (q *CompletionQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// EnableEvents installs the completion queue (capacity <= 0 selects
// DefaultEventQueueCap). Like EnableTelemetry the first call wins; later
// calls return the installed queue unchanged. Before EnableEvents the
// publication sites pay one atomic nil-check and allocate nothing.
func (e *Engine) EnableEvents(capacity int) *CompletionQueue {
	e.hookMu.Lock()
	defer e.hookMu.Unlock()
	if q := e.evq.Load(); q != nil {
		return q
	}
	if capacity <= 0 {
		capacity = DefaultEventQueueCap
	}
	q := newCompletionQueue(capacity)
	if reg := e.tel.Load(); reg != nil {
		registerEventMetrics(reg, q)
	}
	e.evq.Store(q)
	return q
}

// registerEventMetrics exposes the queue's counters under their stable
// dotted names. Called (under hookMu) from whichever of EnableEvents /
// EnableTelemetry runs second.
func registerEventMetrics(reg *telemetry.Registry, q *CompletionQueue) {
	reg.Register("events.published", &q.Published)
	reg.Register("events.dropped", &q.Dropped)
	reg.RegisterGauge("events.queue_depth", &q.depth)
}

// countWaiter is a lossless count-threshold waiter registered by Select:
// it fires (fields set, ch closed) when a cumulative counter for rank
// reaches threshold, or fails (err set, ch closed) when a sticky failure
// makes the threshold unreachable. All fields except ch are guarded by
// the lock of the list holding the waiter (tgtMu for applyWaiters,
// cmplMu for confirmWaiters); they are published by the close(ch) that
// follows the final write.
type countWaiter struct {
	rank      int
	threshold int64
	ch        chan struct{}
	at        vtime.Time
	count     int64
	err       error
	fired     bool // closed (or about to be closed) by a service sweep
	abandoned bool // the Select that registered it lost interest
}

// serviceWaiters removes and returns the waiters in *list satisfied by
// rank's counter reaching count at virtual time at. rank < 0 matches
// every waiter (used with a non-nil err to fail the whole list). Caller
// holds the list's lock and must close each returned waiter's ch after
// releasing it.
func serviceWaiters(list *[]*countWaiter, rank int, count int64, at vtime.Time, err error) []*countWaiter {
	if len(*list) == 0 {
		return nil
	}
	var fired []*countWaiter
	rest := (*list)[:0]
	for _, w := range *list {
		switch {
		case w.abandoned:
			// Prune: its Select already returned through another case.
		case err != nil && (rank < 0 || w.rank == rank):
			w.err, w.at = err, at
			w.fired = true
			fired = append(fired, w)
		case err == nil && w.rank == rank && count >= w.threshold:
			w.count, w.at = count, at
			w.fired = true
			fired = append(fired, w)
		default:
			rest = append(rest, w)
		}
	}
	for i := len(rest); i < len(*list); i++ {
		(*list)[i] = nil
	}
	*list = rest
	return fired
}

// closeWaiters completes a service sweep outside the list lock.
func closeWaiters(fired []*countWaiter) {
	for _, w := range fired {
		close(w.ch)
	}
}

// selKind discriminates Select cases. The zero value is invalid so a
// zero SelectCase{} literal is rejected rather than silently never firing.
type selKind uint8

const (
	selRequest selKind = iota + 1
	selApplied
	selConfirmed
	selQuiescent
)

// SelectCase is one arm of a Select call; build it with OnRequest,
// OnApplied, OnConfirmed, or OnQuiescent.
type SelectCase struct {
	kind      selKind
	req       *Request
	rank      int
	threshold int64
}

// OnRequest fires when the request completes (successfully or not); the
// resulting event is EvRequestDone with the request's error.
func OnRequest(r *Request) SelectCase {
	return SelectCase{kind: selRequest, req: r}
}

// OnApplied fires when this rank's cumulative count of operations applied
// from the given origin rank reaches count — the target-side arm, used by
// a consumer waiting for notified puts to land in its own memory. It does
// not observe remote link failures (only the origin can know its sends
// died); pair it with OnRequest/OnConfirmed arms when that matters.
func OnApplied(origin int, count int64) SelectCase {
	return SelectCase{kind: selApplied, rank: origin, threshold: count}
}

// OnConfirmed fires when the given target has confirmed application of at
// least count of this rank's operations (the origin-side delivery
// counter), or fails with EvFault when the link to the target dies or
// the target rank itself is declared dead (ErrRankFailed).
func OnConfirmed(target int, count int64) SelectCase {
	return SelectCase{kind: selConfirmed, rank: target, threshold: count}
}

// OnQuiescent fires when the given target has confirmed everything this
// rank has issued to it so far — the moment Complete(target) would return
// without waiting. The issued count is captured when Select is called
// (after flushing the target's issue ring); operations issued afterwards
// are not covered. Like Complete it requires every outstanding operation
// to the target to report a delivery counter (batched, notified,
// remote-complete, or reply-bearing); a plain unconfirmed put never
// reports, and the case would wait forever.
func OnQuiescent(target int) SelectCase {
	return SelectCase{kind: selQuiescent, rank: target, threshold: -1}
}

// resolvedCase is a SelectCase after rank mapping and threshold capture.
type resolvedCase struct {
	kind      selKind
	req       *Request
	world     int
	threshold int64
}

// Select blocks until any of the cases fires and returns the index of the
// winning case, its event, and a validation error (asynchronous failures
// are delivered as EvFault or EvRequestDone events, not as the error
// return). Like Wait it advances the rank's virtual clock to the winning
// event's time. With zero cases Select fails immediately — there is
// nothing it could wait for — wrapping ErrBadHandle.
func (e *Engine) Select(comm *runtime.Comm, cases ...SelectCase) (int, Event, error) {
	if len(cases) == 0 {
		return -1, Event{}, fmt.Errorf("core: select with no cases: %w", ErrBadHandle)
	}
	e.Progress()
	res := make([]resolvedCase, len(cases))
	for i, c := range cases {
		switch c.kind {
		case selRequest:
			if c.req == nil {
				return -1, Event{}, fmt.Errorf("core: select case %d: nil request: %w", i, ErrBadHandle)
			}
			res[i] = resolvedCase{kind: selRequest, req: c.req}
		case selApplied, selConfirmed, selQuiescent:
			if c.rank < 0 || c.rank >= comm.Size() {
				return -1, Event{}, fmt.Errorf("core: select case %d: rank %d out of range for communicator of size %d: %w", i, c.rank, comm.Size(), ErrBadHandle)
			}
			world := comm.WorldRank(c.rank)
			th := c.threshold
			if c.kind == selQuiescent {
				e.flushTarget(world)
				th = 0
				e.mu.Lock()
				if ts := e.targets[world]; ts != nil {
					th = ts.sent
				}
				e.mu.Unlock()
			}
			res[i] = resolvedCase{kind: c.kind, world: world, threshold: th}
		default:
			return -1, Event{}, fmt.Errorf("core: select case %d: zero case — construct cases with OnRequest/OnApplied/OnConfirmed/OnQuiescent: %w", i, ErrBadHandle)
		}
	}

	// Fast path: some case is already satisfied (or already failed).
	for i := range res {
		if ev, ok := e.tryCase(&res[i]); ok {
			e.proc.NIC().CPU().AdvanceTo(ev.At)
			return i, ev, nil
		}
	}

	// Under the progress serializer blocked waiting would deadlock: this
	// rank is the progress engine for its own deferred applies. Poll,
	// draining the queue, like waitConfirmed.
	if e.progQ != nil {
		for {
			e.Progress()
			gosched()
			for i := range res {
				if ev, ok := e.tryCase(&res[i]); ok {
					e.proc.NIC().CPU().AdvanceTo(ev.At)
					return i, ev, nil
				}
			}
		}
	}

	// Slow path: one goroutine per case funnels into a buffered channel;
	// stop releases the losers, whose waiters are marked abandoned and
	// pruned by the next service sweep.
	winner := make(chan selWin, len(res))
	stop := make(chan struct{})
	defer close(stop)
	for i := range res {
		rc := &res[i]
		switch rc.kind {
		case selRequest:
			go func(i int, r *Request) {
				select {
				case <-r.waitCh():
					winner <- selWin{i: i}
				case <-stop:
				}
			}(i, rc.req)
		case selApplied:
			w := &countWaiter{rank: rc.world, threshold: rc.threshold, ch: make(chan struct{})}
			e.tgtMu.Lock()
			if c := e.applied[rc.world]; c >= rc.threshold {
				w.count, w.at, w.fired = c, e.appliedAt[rc.world], true
				close(w.ch)
			} else {
				e.applyWaiters = append(e.applyWaiters, w)
			}
			e.tgtMu.Unlock()
			if !waiterFired(&e.tgtMu, w) {
				// An apply fault may have swept the list between the fast
				// path and registration; re-check so the waiter cannot be
				// stranded behind a poisoned pipeline.
				e.cmplMu.Lock()
				aerr := e.applyErr
				e.cmplMu.Unlock()
				if aerr != nil {
					e.tgtMu.Lock()
					fired := serviceWaiters(&e.applyWaiters, -1, 0, e.proc.Now(), aerr)
					e.tgtMu.Unlock()
					closeWaiters(fired)
				}
			}
			go waitCase(i, w, winner, stop, &e.tgtMu)
		case selConfirmed, selQuiescent:
			w := &countWaiter{rank: rc.world, threshold: rc.threshold, ch: make(chan struct{})}
			e.cmplMu.Lock()
			switch {
			case e.confirmed[rc.world] >= rc.threshold:
				w.count, w.at, w.fired = e.confirmed[rc.world], e.confirmedAt[rc.world], true
				close(w.ch)
			case e.applyErr != nil:
				w.err, w.at, w.fired = e.applyErr, e.proc.Now(), true
				close(w.ch)
			case e.failedRanks[rc.world] != nil:
				w.err, w.at, w.fired = e.failedRanks[rc.world], e.proc.Now(), true
				close(w.ch)
			case e.failedLinks[rc.world] != nil:
				w.err, w.at, w.fired = e.failedLinks[rc.world], e.proc.Now(), true
				close(w.ch)
			default:
				e.confirmWaiters = append(e.confirmWaiters, w)
			}
			e.cmplMu.Unlock()
			go waitCase(i, w, winner, stop, &e.cmplMu)
		}
	}

	win := <-winner
	rc := &res[win.i]
	var ev Event
	switch {
	case rc.kind == selRequest:
		r := rc.req
		r.mu.Lock()
		ev = Event{Kind: EvRequestDone, At: r.at, Rank: r.target, Req: r, Err: r.err}
		r.mu.Unlock()
	case win.w.err != nil:
		ev = Event{Kind: EvFault, At: win.w.at, Rank: rc.world, Err: win.w.err}
	case rc.kind == selApplied:
		ev = Event{Kind: EvDelivery, At: win.w.at, Rank: rc.world, Count: win.w.count}
	case rc.kind == selQuiescent:
		ev = Event{Kind: EvQuiescent, At: win.w.at, Rank: rc.world, Count: win.w.count}
	default:
		ev = Event{Kind: EvConfirm, At: win.w.at, Rank: rc.world, Count: win.w.count}
	}
	e.proc.NIC().CPU().AdvanceTo(ev.At)
	return win.i, ev, nil
}

// selWin identifies the winning case of a Select slow path.
type selWin struct {
	i int
	w *countWaiter
}

// waiterFired reports (under the owning lock) whether a waiter has been
// serviced.
func waiterFired(mu *sync.Mutex, w *countWaiter) bool {
	mu.Lock()
	defer mu.Unlock()
	return w.fired
}

// waitCase funnels one count-threshold case into the Select winner
// channel, or marks its waiter abandoned when another case wins first.
func waitCase(i int, w *countWaiter, winner chan<- selWin, stop <-chan struct{}, mu *sync.Mutex) {
	select {
	case <-w.ch:
		winner <- selWin{i: i, w: w}
	case <-stop:
		mu.Lock()
		w.abandoned = true
		mu.Unlock()
	}
}

// tryCase reports whether a resolved case is already satisfied (or has
// already failed), without registering a waiter.
func (e *Engine) tryCase(rc *resolvedCase) (Event, bool) {
	switch rc.kind {
	case selRequest:
		r := rc.req
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.done {
			return Event{Kind: EvRequestDone, At: r.at, Rank: r.target, Req: r, Err: r.err}, true
		}
	case selApplied:
		e.tgtMu.Lock()
		c, at := e.applied[rc.world], e.appliedAt[rc.world]
		e.tgtMu.Unlock()
		if c >= rc.threshold {
			return Event{Kind: EvDelivery, At: at, Rank: rc.world, Count: c}, true
		}
		e.cmplMu.Lock()
		aerr := e.applyErr
		e.cmplMu.Unlock()
		if aerr != nil {
			return Event{Kind: EvFault, At: e.proc.Now(), Rank: rc.world, Err: aerr}, true
		}
	case selConfirmed, selQuiescent:
		e.cmplMu.Lock()
		c, at := e.confirmed[rc.world], e.confirmedAt[rc.world]
		aerr, rerr, lerr := e.applyErr, e.failedRanks[rc.world], e.failedLinks[rc.world]
		e.cmplMu.Unlock()
		if c >= rc.threshold {
			kind := EvConfirm
			if rc.kind == selQuiescent {
				kind = EvQuiescent
			}
			return Event{Kind: kind, At: at, Rank: rc.world, Count: c}, true
		}
		if aerr != nil {
			return Event{Kind: EvFault, At: e.proc.Now(), Rank: rc.world, Err: aerr}, true
		}
		if rerr != nil {
			return Event{Kind: EvFault, At: e.proc.Now(), Rank: rc.world, Err: rerr}, true
		}
		if lerr != nil {
			return Event{Kind: EvFault, At: e.proc.Now(), Rank: rc.world, Err: lerr}, true
		}
	}
	return Event{}, false
}
