package core

import (
	"bytes"
	"encoding/binary"
	gort "runtime"
	"testing"
	"testing/quick"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/serializer"
)

// newWorld builds a world with a cleanup hook.
func newWorld(t *testing.T, cfg runtime.Config) *runtime.World {
	t.Helper()
	w := runtime.NewWorld(cfg)
	t.Cleanup(w.Close)
	return w
}

// shipTM distributes rank 0's TargetMem descriptor to everyone: rank 0
// passes its descriptor; others receive it. This is the paper's "user is
// responsible for passing the target_mem object".
func shipTM(p *runtime.Proc, e *Engine, size int) TargetMem {
	if p.Rank() == 0 {
		tm, _ := e.ExposeNew(size)
		enc := tm.Encode()
		for r := 1; r < p.Size(); r++ {
			p.Send(r, 9999, enc)
		}
		return tm
	}
	enc, _ := p.Recv(0, 9999)
	tm, err := DecodeTargetMem(enc)
	if err != nil {
		panic(err)
	}
	return tm
}

func TestTargetMemEncodeDecodeRoundtrip(t *testing.T) {
	f := func(owner uint8, handle uint64, size uint16, big bool) bool {
		order := datatype.LittleEndian
		if big {
			order = datatype.BigEndian
		}
		tm := TargetMem{
			Owner:    int(owner),
			Handle:   handle,
			Size:     int(size),
			AddrBits: 64,
			Order:    order,
		}
		dec, err := DecodeTargetMem(tm.Encode())
		return err == nil && dec == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTargetMemDecodeRejectsBadInput(t *testing.T) {
	if _, err := DecodeTargetMem([]byte{1, 2, 3}); err == nil {
		t.Error("short descriptor accepted")
	}
	tm := TargetMem{Owner: 1, Size: 8, AddrBits: 33}
	if _, err := DecodeTargetMem(tm.Encode()); err == nil {
		t.Error("invalid AddrBits accepted")
	}
}

func TestBlockingPutCompletesLocally(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		tm := shipTM(p, e, 64)
		if p.Rank() == 0 {
			e.CompleteCollective(p.Comm())
			return
		}
		src := p.Alloc(64)
		req, err := e.Put(src, 64, datatype.Byte, tm, 0, 64, datatype.Byte, 0, p.Comm(), AttrBlocking)
		if err != nil {
			t.Errorf("put: %v", err)
			return
		}
		if !req.Test() {
			t.Error("blocking put returned an incomplete request")
		}
		e.CompleteCollective(p.Comm())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingPutRequestLifecycle(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		tm := shipTM(p, e, 64)
		if p.Rank() == 0 {
			e.CompleteCollective(p.Comm())
			return
		}
		src := p.Alloc(64)
		var reqs []*Request
		for i := 0; i < 16; i++ {
			req, err := e.Put(src, 64, datatype.Byte, tm, 0, 64, datatype.Byte, 0, p.Comm(), AttrNone)
			if err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
			reqs = append(reqs, req)
		}
		WaitAll(reqs...)
		for i, r := range reqs {
			if !r.Test() {
				t.Errorf("request %d incomplete after WaitAll", i)
			}
		}
		e.CompleteCollective(p.Comm())
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRemoteCompleteOrdering: with AttrRemoteComplete the request finishes
// strictly later (in virtual time) than local completion would, and the
// data is at the target when the request completes.
func TestRemoteCompleteVirtualTime(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		tm := shipTM(p, e, 8)
		if p.Rank() == 0 {
			p.Barrier()
			return
		}
		src := p.Alloc(8)
		p.WriteLocal(src, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		local, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, p.Comm(), AttrBlocking)
		if err != nil {
			t.Errorf("put: %v", err)
			return
		}
		remote, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, p.Comm(), AttrBlocking|AttrRemoteComplete)
		if err != nil {
			t.Errorf("put: %v", err)
			return
		}
		lDelta := local.CompletedAt()
		rDelta := remote.CompletedAt()
		if rDelta-lDelta < 1000 { // must include at least a wire round trip
			t.Errorf("remote completion at %d barely after local %d", rDelta, lDelta)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCompleteGuaranteesApplication: after Complete(comm, 0) returns, the
// target's memory holds the data — even though no put carried the
// remote-complete attribute.
func TestCompleteGuaranteesApplication(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(256)
			p.Send(1, 9999, tm.Encode())
			// Wait for rank 1's signal that Complete returned.
			p.Recv(1, 1)
			got := p.Mem().Snapshot(region.Offset, 256)
			if !bytes.Equal(got, bytes.Repeat([]byte{0x77}, 256)) {
				t.Error("data not applied although origin's Complete returned")
			}
			return
		}
		enc, _ := p.Recv(0, 9999)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(256)
		p.WriteLocal(src, 0, bytes.Repeat([]byte{0x77}, 256))
		for i := 0; i < 10; i++ {
			if _, err := e.Put(src, 256, datatype.Byte, tm, 0, 256, datatype.Byte, 0, comm, AttrNone); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}
		p.Send(0, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOrderingAttrOnUnorderedNet: a chain of single-byte ordered puts to
// the same location must land in issue order even when the network
// scrambles; the final value is the last one written.
func TestOrderingAttrOnUnorderedNet(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, UnorderedNet: true, Seed: 11})
	var held int64
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(8)
			p.Send(1, 9999, tm.Encode())
			p.Recv(1, 1)
			got := p.Mem().Snapshot(region.Offset, 8)
			if got[0] != 200 {
				t.Errorf("final value %d, want the last ordered put's 200", got[0])
			}
			held = e.HeldOps.Value()
			return
		}
		enc, _ := p.Recv(0, 9999)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(8)
		for i := 1; i <= 200; i++ {
			p.WriteLocal(src, 0, bytes.Repeat([]byte{byte(i)}, 8))
			if _, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrOrdering|AttrBlocking); err != nil {
				t.Errorf("put: %v", err)
			}
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}
		p.Send(0, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if held == 0 {
		t.Log("note: scrambler never reordered the stream (legal but unusual)")
	}
}

// TestOrderFence: Order() guarantees puts issued after it apply after puts
// issued before it, on an unordered network, without per-op ordering.
func TestOrderFence(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2, UnorderedNet: true, Seed: 13})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(8)
			p.Send(1, 9999, tm.Encode())
			p.Recv(1, 1)
			if got := p.Mem().Snapshot(region.Offset, 1)[0]; got != 2 {
				t.Errorf("final value %d, want 2 (the post-Order put)", got)
			}
			return
		}
		enc, _ := p.Recv(0, 9999)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(8)
		for round := 0; round < 50; round++ {
			p.WriteLocal(src, 0, []byte{1})
			if _, err := e.Put(src, 1, datatype.Byte, tm, 0, 1, datatype.Byte, 0, comm, AttrNone); err != nil {
				t.Errorf("put: %v", err)
			}
			if err := e.Order(comm, 0); err != nil {
				t.Errorf("order: %v", err)
			}
			p.WriteLocal(src, 0, []byte{2})
			if _, err := e.Put(src, 1, datatype.Byte, tm, 0, 1, datatype.Byte, 0, comm, AttrNone); err != nil {
				t.Errorf("put: %v", err)
			}
			if err := e.Complete(comm, 0); err != nil {
				t.Errorf("complete: %v", err)
			}
		}
		if e.FenceStalls.Value() == 0 {
			t.Error("Order on an unordered network should stall the next op at least once")
		}
		p.Send(0, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOrderIsFreeOnOrderedNet: on an ordered network Order must not stall
// anything.
func TestOrderIsFreeOnOrderedNet(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 8)
		if p.Rank() == 1 {
			src := p.Alloc(8)
			for i := 0; i < 10; i++ {
				e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrNone)
				e.Order(comm, 0)
			}
			e.Complete(comm, 0)
			if e.FenceStalls.Value() != 0 {
				t.Errorf("ordered network took %d fence stalls, want 0", e.FenceStalls.Value())
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 64)
		if p.Rank() == 1 {
			src := p.Alloc(64)
			cases := []struct {
				name string
				err  error
			}{}
			try := func(name string, fn func() error) {
				cases = append(cases, struct {
					name string
					err  error
				}{name, fn()})
			}
			try("type mismatch", func() error {
				_, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Int32, 0, comm, AttrNone)
				return err
			})
			try("target overrun", func() error {
				_, err := e.Put(src, 8, datatype.Byte, tm, 60, 8, datatype.Byte, 0, comm, AttrNone)
				return err
			})
			try("origin overrun", func() error {
				_, err := e.Put(src, 128, datatype.Byte, tm, 0, 128, datatype.Byte, 0, comm, AttrNone)
				return err
			})
			try("wrong owner", func() error {
				bad := tm
				bad.Owner = 1 // descriptor claims rank 1, but trank 0 resolves to rank 0
				_, err := e.Put(src, 8, datatype.Byte, bad, 0, 8, datatype.Byte, 0, comm, AttrNone)
				return err
			})
			try("negative disp", func() error {
				_, err := e.Put(src, 8, datatype.Byte, tm, -1, 8, datatype.Byte, 0, comm, AttrNone)
				return err
			})
			try("axpy on bytes", func() error {
				_, err := e.AccumulateAxpy(2, src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrNone)
				return err
			})
			for _, c := range cases {
				if c.err == nil {
					t.Errorf("%s: expected an error", c.name)
				}
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommLevelDefaultAttrs(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 8)
		if p.Rank() == 1 {
			e.SetCommAttrs(comm, AttrRemoteComplete)
			src := p.Alloc(8)
			req, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrBlocking)
			if err != nil {
				t.Errorf("put: %v", err)
				return
			}
			// The communicator default forced remote completion: acks were
			// generated.
			req.Wait()
			if e.AcksSent.Value() != 0 {
				// acks counted at target, not origin; check via target? We
				// instead assert the request completed strictly after a
				// round trip.
			}
			if req.CompletedAt() < 3000 {
				t.Errorf("completion at %d too early for remote completion", req.CompletedAt())
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRetractRejectsFurtherAccess(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, _ := e.ExposeNew(8)
			p.Send(1, 9999, tm.Encode())
			p.Recv(1, 1) // rank 1 did a successful put
			if err := e.Retract(tm); err != nil {
				t.Errorf("retract: %v", err)
			}
			p.Send(1, 2, nil)
			p.Recv(1, 3)
			if p.NIC().BadReq.Value() == 0 {
				t.Error("post-retract access not rejected")
			}
			return
		}
		enc, _ := p.Recv(0, 9999)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(8)
		if _, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrBlocking); err != nil {
			t.Errorf("put: %v", err)
		}
		e.Complete(comm, 0)
		p.Send(0, 1, nil)
		p.Recv(0, 2)
		if _, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrBlocking); err != nil {
			t.Errorf("put after retract should fail at the target, not the origin: %v", err)
		}
		e.Complete(comm, 0)
		p.Send(0, 3, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAttrString(t *testing.T) {
	if AttrNone.String() != "none" {
		t.Error("AttrNone string")
	}
	s := (AttrOrdering | AttrAtomic | AttrBlocking).String()
	if s != "ordering|atomic|blocking" {
		t.Errorf("attr string %q", s)
	}
}

func TestOpTypeAccOpStrings(t *testing.T) {
	if OpPut.String() != "put" || OpGet.String() != "get" || OpAccumulate.String() != "accumulate" {
		t.Error("OpType strings")
	}
	for op, want := range map[AccOp]string{
		AccNone: "none", AccReplace: "replace", AccSum: "sum",
		AccProd: "prod", AccMin: "min", AccMax: "max", AccAxpy: "axpy",
	} {
		if op.String() != want {
			t.Errorf("AccOp %d = %q", op, op.String())
		}
	}
}

// TestSelfPut: a rank may target its own exposed memory; the transfer goes
// through the network loopback like any other.
func TestSelfPut(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 1})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm, region := e.ExposeNew(16)
		src := p.Alloc(16)
		p.WriteLocal(src, 0, bytes.Repeat([]byte{0x3C}, 16))
		if _, err := e.Put(src, 16, datatype.Byte, tm, 0, 16, datatype.Byte, 0, comm, AttrBlocking); err != nil {
			t.Fatalf("self put: %v", err)
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Fatalf("self complete: %v", err)
		}
		if got := p.Mem().Snapshot(region.Offset, 16); !bytes.Equal(got, bytes.Repeat([]byte{0x3C}, 16)) {
			t.Error("self put did not land")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMechanismsProduceExactAtomicSums: under every serializer mechanism,
// concurrent atomic accumulates sum exactly.
func TestMechanismsProduceExactAtomicSums(t *testing.T) {
	for _, mech := range []serializer.Mechanism{serializer.MechThread, serializer.MechCoarseLock, serializer.MechProgress} {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			const origins = 4
			const iters = 50
			w := newWorld(t, runtime.Config{Ranks: origins + 1})
			err := w.Run(func(p *runtime.Proc) {
				e := Attach(p, Options{Atomicity: mech})
				comm := p.Comm()
				if p.Rank() == 0 {
					tm, region := e.ExposeNew(8)
					enc := tm.Encode()
					for r := 1; r <= origins; r++ {
						p.Send(r, 9999, enc)
					}
					if mech == serializer.MechProgress {
						for e.OpsApplied.Value() < int64(origins*iters) {
							e.Progress()
							pollYield()
						}
					}
					p.Barrier()
					got := int64(binary.LittleEndian.Uint64(p.Mem().Snapshot(region.Offset, 8)))
					if got != origins*iters {
						t.Errorf("sum = %d, want %d", got, origins*iters)
					}
					return
				}
				enc, _ := p.Recv(0, 9999)
				tm, _ := DecodeTargetMem(enc)
				src := p.Alloc(8)
				one := make([]byte, 8)
				binary.LittleEndian.PutUint64(one, 1)
				p.WriteLocal(src, 0, one)
				for i := 0; i < iters; i++ {
					if _, err := e.Accumulate(AccSum, src, 1, datatype.Int64, tm, 0, 1, datatype.Int64, 0, comm, AttrAtomic|AttrBlocking); err != nil {
						t.Errorf("acc: %v", err)
						return
					}
				}
				if err := e.Complete(comm, 0); err != nil {
					t.Errorf("complete: %v", err)
				}
				p.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func pollYield() { gort.Gosched() }
