package core

import (
	"bytes"
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
)

// TestSmokePutGetComplete drives the full stack once: expose, ship the
// descriptor, put, complete, read back, get.
func TestSmokePutGetComplete(t *testing.T) {
	w := runtime.NewWorld(runtime.Config{Ranks: 3})
	defer w.Close()
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		const n = 64
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(n)
			enc := tm.Encode()
			for r := 1; r < p.Size(); r++ {
				p.Send(r, 1, enc)
			}
			e.CompleteCollective(comm)
			got := p.Mem().Snapshot(region.Offset, n)
			for i := 0; i < 32; i++ {
				if got[i] != byte(1) {
					t.Errorf("byte %d from rank 1 = %d, want 1", i, got[i])
					break
				}
			}
			for i := 32; i < 64; i++ {
				if got[i] != byte(2) {
					t.Errorf("byte %d from rank 2 = %d, want 2", i, got[i])
					break
				}
			}
			return
		}
		enc, _ := p.Recv(0, 1)
		tm, err := DecodeTargetMem(enc)
		if err != nil {
			t.Errorf("rank %d: decode: %v", p.Rank(), err)
			return
		}
		src := p.Alloc(32)
		p.WriteLocal(src, 0, bytes.Repeat([]byte{byte(p.Rank())}, 32))
		req, err := e.Put(src, 32, datatype.Byte, tm, (p.Rank()-1)*32, 32, datatype.Byte, 0, comm, AttrNone)
		if err != nil {
			t.Errorf("rank %d: put: %v", p.Rank(), err)
			return
		}
		req.Wait()
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("rank %d: complete: %v", p.Rank(), err)
		}
		e.CompleteCollective(comm)

		// Read the other origin's bytes back with a get.
		other := 3 - p.Rank() // 1<->2
		dst := p.Alloc(32)
		greq, err := e.Get(dst, 32, datatype.Byte, tm, (other-1)*32, 32, datatype.Byte, 0, comm, AttrNone)
		if err != nil {
			t.Errorf("rank %d: get: %v", p.Rank(), err)
			return
		}
		greq.Wait()
		got := p.ReadLocal(dst, 0, 32)
		for i, b := range got {
			if b != byte(other) {
				t.Errorf("rank %d: get byte %d = %d, want %d", p.Rank(), i, b, other)
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
