package core

import (
	"mpi3rma/internal/telemetry"
)

// Flight-recorder integration: the engine feeds the bounded event ring
// from its watermark and fault hooks (noteApplied, noteConfirmed, the
// retransmit observer, onLinkFailed, failEngine) and supplies the health
// snapshot postmortems embed. The disabled path — no recorder installed —
// is one atomic pointer load per feed site and allocates nothing, pinned
// by TestFlightRecorderDisabledZeroAlloc.

// EnableFlightRecorder installs a postmortem flight recorder on the
// engine. The recorder captures recent protocol milestones and
// auto-dumps a JSON postmortem (recent events, per-rank health, sticky
// errors, retry state, queue depths, metric deltas) the first time a
// link fails or the apply engine faults. The first call wins; later
// calls return the installed recorder unchanged (like Attach). If
// telemetry is already enabled the registry becomes the recorder's
// metric-delta baseline.
func (e *Engine) EnableFlightRecorder(cfg telemetry.FlightConfig) *telemetry.FlightRecorder {
	e.hookMu.Lock()
	defer e.hookMu.Unlock()
	if cur := e.flight.Load(); cur != nil {
		return cur
	}
	cfg.Rank = e.proc.Rank()
	f := telemetry.NewFlightRecorder(cfg)
	f.SetHealth(e.Health)
	if reg := e.tel.Load(); reg != nil {
		f.SetBaseline(reg)
	}
	e.flight.Store(f)
	return f
}

// FlightRecorder returns the installed flight recorder, or nil.
func (e *Engine) FlightRecorder() *telemetry.FlightRecorder {
	return e.flight.Load()
}

// Health assembles this rank's point-in-time health report: sticky
// errors, per-link relay state and retry budget, shard queue depths,
// completion-queue occupancy, and per-origin applied watermarks. It is
// what postmortems embed and what rmatop renders.
func (e *Engine) Health() telemetry.HealthReport {
	h := telemetry.HealthReport{
		Rank:  e.proc.Rank(),
		VTime: int64(e.proc.Now()),
	}

	e.cmplMu.Lock()
	if e.applyErr != nil {
		h.Sticky = append(h.Sticky, e.applyErr.Error())
	}
	for _, err := range e.failedRanks {
		h.Sticky = append(h.Sticky, err.Error())
	}
	for _, err := range e.failedLinks {
		h.Sticky = append(h.Sticky, err.Error())
	}
	e.cmplMu.Unlock()

	// Membership liveness: meaningful once the failure detector has run
	// (a world without faults reports every rank ALIVE and spares SPARE).
	if w := e.proc.World(); w != nil {
		states := w.Members().States()
		h.Liveness = make([]string, len(states))
		for r, s := range states {
			h.Liveness[r] = s.String()
		}
	}

	nic := e.proc.NIC()
	h.RetryBudget = nic.RetryBudget()
	for _, ls := range nic.RelayStatus() {
		h.Links = append(h.Links, telemetry.LinkHealth{
			Peer:     ls.Peer,
			Down:     ls.Down,
			Inflight: ls.Inflight,
			Attempts: ls.Attempts,
		})
	}

	if pool := e.shardPool; pool != nil {
		for s := 0; s < pool.Shards(); s++ {
			st := pool.Stats(s)
			h.Shards = append(h.Shards, telemetry.ShardHealth{
				Shard:    s,
				Depth:    st.Depth.Value(),
				Tasks:    st.Tasks.Value(),
				Steals:   st.Steals.Value(),
				Overflow: st.Overflow.Value(),
			})
		}
	}

	if q := e.evq.Load(); q != nil {
		h.Queue = &telemetry.QueueHealth{
			Depth:     q.Len(),
			Cap:       q.Cap(),
			Published: q.Published.Value(),
			Dropped:   q.Dropped.Value(),
		}
	}

	e.tgtMu.Lock()
	if len(e.applied) > 0 {
		h.AppliedFrom = make(map[int]int64, len(e.applied))
		for src, n := range e.applied {
			h.AppliedFrom[src] = n
		}
	}
	e.tgtMu.Unlock()
	return h
}
