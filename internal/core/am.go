package core

import (
	"fmt"

	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/vtime"
)

// Active-message extension. The paper deliberately leaves remote method
// invocation out of the strawman ("the MPI Forum has formed a working
// group to investigate active messages and RMI") but motivates it as the
// natural expansion of the rma_optype: "invocation of a remote function
// ... or signaling a remote thread". This file implements that expansion
// point so the Xfer opcode space demonstrably accommodates it; it is
// marked an extension, and internal/gasnet carries the full AM treatment.

// AMHandler runs at the target when an active message arrives. It executes
// on the target's serializer path (always atomic: a handler is a critical
// section by definition, exactly the "handler of an active message" the
// paper names as an implicit communication thread). payload is the
// initiator's data; at is the virtual time the handler ran.
type AMHandler func(src int, payload []byte, at vtime.Time)

// RegisterAM installs handler under id on this rank. Remote ranks invoke
// it with InvokeAM. Registration is local; the id space is application
// managed.
func (e *Engine) RegisterAM(id uint64, handler AMHandler) error {
	e.amMu.Lock()
	defer e.amMu.Unlock()
	if _, dup := e.am[id]; dup {
		return fmt.Errorf("core: active-message id %d already registered", id)
	}
	e.am[id] = handler
	return nil
}

// InvokeAM sends an active message to trank of comm. The operation counts
// toward Complete like any other RMA operation; with AttrRemoteComplete
// the returned request completes after the handler has run.
func (e *Engine) InvokeAM(id uint64, payload []byte, trank int, comm *runtime.Comm, attrs Attr) (*Request, error) {
	attrs = e.effectiveAttrs(comm, attrs)
	target := comm.WorldRank(trank)
	e.Progress()
	e.flushTarget(target) // a handler must see ring-held deposits applied in order
	if err := e.maybeFence(comm, target); err != nil {
		return nil, err
	}

	var seq uint64
	e.mu.Lock()
	ts := e.targetLocked(target)
	ts.sent++
	ts.singleton++
	if attrs&(AttrRemoteComplete|AttrNotify) != 0 {
		ts.willConfirm++
	}
	if attrs&AttrOrdering != 0 && !e.proc.NIC().Endpoint().Ordered() {
		ts.orderSeq++
		seq = ts.orderSeq
	}
	e.mu.Unlock()
	e.OpsIssued.Inc()
	e.SingletonOps.Inc()

	req := e.newRequest(target)
	m := newMsg(target, kAM)
	m.Hdr[hHandle] = id
	m.Hdr[hMeta] = uint64(attrs) & 0xffff
	m.Hdr[hReq] = req.id
	m.Hdr[hSeq] = seq
	m.Payload = append([]byte(nil), payload...)

	if e.targetUsesCoarseLock() {
		if err := e.acquireLock(target); err != nil {
			return nil, err
		}
		m.Flags |= flagUnlockAfter
	}
	if _, err := e.proc.NIC().Send(e.proc.Now(), m); err != nil {
		return nil, err
	}
	e.proc.NIC().CPU().AdvanceTo(m.SentAt)
	if t := e.tr(); t != nil {
		t.RecordOpf(m.SentAt, "issue", target, req.id, "am id=%d bytes=%d arrive=%d", id, len(payload), m.ArriveAt)
	}
	if attrs&AttrRemoteComplete == 0 {
		req.complete(m.SentAt, nil)
	}
	if attrs&AttrBlocking != 0 {
		req.Wait()
	}
	return req, nil
}

// handleAM runs a registered handler at the target.
func (e *Engine) handleAM(m *simnet.Message, at vtime.Time) {
	attrs := Attr(m.Hdr[hMeta] & 0xffff)
	e.gateOrdered(m.Src, m.Hdr[hSeq], at, func(at vtime.Time) {
		e.amMu.Lock()
		handler := e.am[m.Hdr[hHandle]]
		e.amMu.Unlock()
		e.scheduleApply(m.Src, at, len(m.Payload), true, func(end vtime.Time) {
			if handler == nil {
				e.proc.NIC().BadReq.Inc()
			} else {
				handler(m.Src, m.Payload, end)
			}
			e.finishApply(m, attrs, true, end, e.applyCost(len(m.Payload)))
		})
	})
}
