package core

import (
	"sync"
	"testing"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
)

// countingRecorder is a minimal AccessRecorder for engine-side tests.
type countingRecorder struct {
	mu       sync.Mutex
	accesses []Access
	retires  int
}

func (r *countingRecorder) RecordAccess(a Access) {
	r.mu.Lock()
	r.accesses = append(r.accesses, a)
	r.mu.Unlock()
}

func (r *countingRecorder) RetireOrigin(origin, target int) {
	r.mu.Lock()
	r.retires++
	r.mu.Unlock()
}

func (r *countingRecorder) RetireTarget(target int) {}

// TestAccessRecorderObservesApplies: an installed recorder sees every
// applied access with the fields the checker relies on — origin, byte
// interval, kind, epoch advanced by Order, and retirement on Complete.
func TestAccessRecorderObservesApplies(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	rec := &countingRecorder{}
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		// Like the facade's WithChecker: every rank reports into the same
		// recorder — applies surface at the target, retirements at the
		// origin.
		e.SetAccessRecorder(rec)
		if e.AccessRecorder() == nil {
			t.Error("AccessRecorder lost the installed recorder")
		}
		if p.Rank() == 0 {
			tm, _ := e.ExposeNew(64)
			p.Send(1, 0, tm.Encode())
			if err := e.CompleteCollective(comm); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(16)
		if _, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, 0); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := e.Order(comm, 0); err != nil {
			t.Fatalf("order: %v", err)
		}
		if _, err := e.Put(src, 8, datatype.Byte, tm, 8, 8, datatype.Byte, 0, comm, 0); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}
		if err := e.CompleteCollective(comm); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(rec.accesses) != 2 {
		t.Fatalf("recorder saw %d accesses, want 2: %+v", len(rec.accesses), rec.accesses)
	}
	a, b := rec.accesses[0], rec.accesses[1]
	if a.Disp+a.Len > b.Disp { // applied in issue order (Order between them)
		a, b = b, a
	}
	if a.Origin != 1 || a.Target != 0 || a.Disp != 0 || a.Len != 8 || a.Kind != AccessPut {
		t.Errorf("first access recorded as %+v, want origin 1 put of [0,8) at target 0", a)
	}
	if b.Disp != 8 || b.Len != 8 {
		t.Errorf("second access recorded as %+v, want [8,16)", b)
	}
	if a.Epoch == b.Epoch {
		t.Error("Order between the puts did not advance the stamped epoch")
	}
	if a.OpID == b.OpID {
		t.Error("distinct singleton puts share an op id")
	}
	if rec.retires == 0 {
		t.Error("Complete did not report RetireOrigin")
	}
}

// TestPutHotPathNoAllocsWhenCheckerDisabled pins the checker's disabled
// cost: with no recorder installed, the apply path's observation hook is
// one atomic nil check, so the remote-complete put budget of the telemetry
// test still holds. Installing a recorder may pay more (the Access value
// escapes into the recorder), never less.
func TestPutHotPathNoAllocsWhenCheckerDisabled(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, _ := e.ExposeNew(64)
			p.Send(1, 0, tm.Encode())
			if err := e.CompleteCollective(comm); err != nil {
				t.Errorf("complete collective: %v", err)
			}
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, _ := DecodeTargetMem(enc)
		src := p.Alloc(64)
		put := func() {
			req, err := e.Put(src, 64, datatype.Byte, tm, 0, 64, datatype.Byte, 0, comm, AttrRemoteComplete)
			if err != nil {
				t.Fatalf("put: %v", err)
			}
			req.Wait()
		}
		put() // warm pools and lazy state before measuring
		disabled := testing.AllocsPerRun(50, put)

		// Same steady-state protocol budget as the telemetry alloc test:
		// the checker hook must vanish behind its nil guard.
		const budget = 278.0
		if disabled > budget {
			t.Errorf("checker-disabled put costs %.1f allocs/op, budget %.1f", disabled, budget)
		}

		// Note: the recorder runs on the *target* rank. This rank's engine
		// has none installed either way; install one here to pin that even
		// origin-side issue paths stay free (epoch stamping is header math).
		e.SetAccessRecorder(&countingRecorder{})
		put()
		enabled := testing.AllocsPerRun(50, put)
		if disabled > enabled {
			t.Errorf("disabled path (%.1f allocs/op) costs more than enabled (%.1f)", disabled, enabled)
		}
		if err := e.Complete(comm, 0); err != nil {
			t.Errorf("complete: %v", err)
		}
		if err := e.CompleteCollective(comm); err != nil {
			t.Errorf("complete collective: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
