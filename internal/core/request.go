package core

import (
	"sync"

	"mpi3rma/internal/vtime"
)

// Request tracks completion of one nonblocking RMA operation (the paper's
// request parameter, checked with MPI_Wait/MPI_Test analogues). For
// operations without the RemoteComplete attribute the request completes
// locally (origin buffer reusable); with it, the request completes only
// when the operation has been applied at the target.
type Request struct {
	e  *Engine
	id uint64
	// target is the world rank the operation addresses, so a link failure
	// can find and fail the requests that will never complete.
	target int

	mu   sync.Mutex
	done bool
	at   vtime.Time
	val  []byte
	err  error
	ch   chan struct{} // created lazily on the first Wait/Done

	// onDone holds completion callbacks registered before the request
	// finished; finish captures and clears them under mu, so each runs
	// exactly once (callbacks registered after completion run inline in
	// OnDone instead).
	onDone []func(error)

	// onData, if set, consumes reply payload (get data) on the delivery
	// goroutine before the request is completed; an error fails the
	// request instead of completing it.
	onData func(wire []byte, at vtime.Time) error

	// latKind/issuedAt route the request's completion into a latency.*
	// histogram. Populated on the issue path only while telemetry is
	// enabled, and before the request escapes the issuing goroutine, so
	// finish may read them without the lock.
	latKind  uint8
	issuedAt vtime.Time
}

// ID returns the request's engine-local id — the operation id its trace
// events carry, for correlating spans across ranks.
func (r *Request) ID() uint64 { return r.id }

func (e *Engine) newRequest(target int) *Request {
	r := &Request{e: e, target: target}
	e.mu.Lock()
	e.reqSeq++
	r.id = e.reqSeq
	e.reqs[r.id] = r
	e.mu.Unlock()
	return r
}

// waitCh returns the completion channel, creating it on first use. Most
// requests — batched operations completing at issue, blocking calls that
// never escape — are completed before anyone waits, so the channel (one
// allocation per operation otherwise) is made only on demand.
func (r *Request) waitCh() chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ch == nil {
		r.ch = make(chan struct{})
		if r.done {
			close(r.ch)
		}
	}
	return r.ch
}

// complete marks the request done at virtual time at with optional result
// value, and removes it from the engine table. Idempotence guards against
// protocol duplicates.
func (r *Request) complete(at vtime.Time, val []byte) {
	r.finish(at, val, nil)
}

// completeErr marks the request done with a failure the origin only
// learned of asynchronously (e.g. a get the target could not serve).
func (r *Request) completeErr(at vtime.Time, err error) {
	r.finish(at, nil, err)
}

// finish is the single terminal transition of a request. The ordering
// inside the critical section is the Done/Err contract: err (and at, val)
// are stored strictly before the completion channel is closed, under the
// same mutex Err acquires, so a goroutine released by <-Done() — or by
// Wait, Await, or Select — always observes the request's error. Callbacks
// run after the lock is released (still exactly once: finish is
// idempotent and captures-and-clears the list), so an OnDone callback may
// itself call request or engine methods without deadlocking.
func (r *Request) finish(at vtime.Time, val []byte, err error) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	r.at = at
	r.val = val
	r.err = err
	cbs := r.onDone
	r.onDone = nil
	if r.ch != nil {
		close(r.ch)
	}
	r.mu.Unlock()
	r.e.mu.Lock()
	delete(r.e.reqs, r.id)
	r.e.mu.Unlock()
	if r.latKind != latNone {
		if lh := r.e.lat.Load(); lh != nil {
			lh.byKind(r.latKind).Observe(int64(at - r.issuedAt))
		}
	}
	for _, cb := range cbs {
		cb(err)
	}
	if q := r.e.evq.Load(); q != nil {
		q.push(Event{Kind: EvRequestDone, At: at, Rank: r.target, Req: r, Err: err})
	}
	if f := r.e.flight.Load(); f != nil {
		f.Note(int64(at), "request-done", r.target, r.id, 0, err)
	}
}

// OnDone registers a completion callback: fn runs exactly once with the
// request's asynchronous error (nil on success), on the goroutine that
// completes the request — a delivery goroutine, usually, so fn must be
// brief and must not block on the request itself. Registration is
// after-the-fact safe: on an already-completed request fn runs inline
// before OnDone returns. The error fn receives is the same value Err
// reports, and it is visible to Err before Done's channel closes.
// Registering multiple callbacks is permitted (each fires exactly once),
// but usually indicates confused ownership; rmalint's deprecated analyzer
// flags double registration on the same request.
func (r *Request) OnDone(fn func(error)) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	if r.done {
		err := r.err
		r.mu.Unlock()
		fn(err)
		return
	}
	r.onDone = append(r.onDone, fn)
	r.mu.Unlock()
}

// Wait blocks until the operation completes, advancing the rank's virtual
// clock to the completion time.
func (r *Request) Wait() {
	r.mu.Lock()
	done, at := r.done, r.at
	r.mu.Unlock()
	if !done {
		<-r.waitCh()
		r.mu.Lock()
		at = r.at
		r.mu.Unlock()
	}
	r.e.proc.NIC().CPU().AdvanceTo(at)
}

// Test reports whether the operation has completed, without blocking; when
// it returns true the rank's virtual clock has been advanced to the
// completion time (MPI_Test semantics).
func (r *Request) Test() bool {
	r.mu.Lock()
	done, at := r.done, r.at
	r.mu.Unlock()
	if done {
		r.e.proc.NIC().CPU().AdvanceTo(at)
	}
	return done
}

// Done exposes the completion channel for select-based waiting.
func (r *Request) Done() <-chan struct{} { return r.waitCh() }

// Await is Wait followed by Err: it blocks until the operation completes,
// advances the rank's virtual clock to the completion time, and returns
// the operation's asynchronous failure, if any. It is the one-call
// completion surface — callers that used to poll with ProbeCompletion or
// pair Wait with Err should use Await.
func (r *Request) Await() error {
	r.Wait()
	return r.Err()
}

// CompletedAt returns the virtual completion time (valid once done).
func (r *Request) CompletedAt() vtime.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.at
}

// Value returns the operation's result bytes (read-modify-write old
// values); nil for transfers. Valid once done.
func (r *Request) Value() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.val
}

// Err returns the asynchronous failure of the operation, if any (valid
// once done). Errors detectable at issue time are returned by the issuing
// call instead; Err reports failures the target discovered, such as a get
// from unexposed memory.
func (r *Request) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// WaitAll waits for every request in reqs (nil entries are permitted and
// skipped, so callers can mix blocking and nonblocking issue paths).
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// lookupRequest finds an outstanding request by id (nil if completed or
// unknown).
func (e *Engine) lookupRequest(id uint64) *Request {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reqs[id]
}
