package core

import (
	"sync"

	"mpi3rma/internal/vtime"
)

// Request tracks completion of one nonblocking RMA operation (the paper's
// request parameter, checked with MPI_Wait/MPI_Test analogues). For
// operations without the RemoteComplete attribute the request completes
// locally (origin buffer reusable); with it, the request completes only
// when the operation has been applied at the target.
type Request struct {
	e  *Engine
	id uint64

	mu   sync.Mutex
	done bool
	at   vtime.Time
	val  []byte
	ch   chan struct{}

	// onData, if set, consumes reply payload (get data) on the delivery
	// goroutine before the request is completed.
	onData func(wire []byte, at vtime.Time)
}

func (e *Engine) newRequest() *Request {
	r := &Request{e: e, ch: make(chan struct{})}
	e.mu.Lock()
	e.reqSeq++
	r.id = e.reqSeq
	e.reqs[r.id] = r
	e.mu.Unlock()
	return r
}

// complete marks the request done at virtual time at with optional result
// value, and removes it from the engine table. Idempotence guards against
// protocol duplicates.
func (r *Request) complete(at vtime.Time, val []byte) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	r.at = at
	r.val = val
	close(r.ch)
	r.mu.Unlock()
	r.e.mu.Lock()
	delete(r.e.reqs, r.id)
	r.e.mu.Unlock()
}

// Wait blocks until the operation completes, advancing the rank's virtual
// clock to the completion time.
func (r *Request) Wait() {
	<-r.ch
	r.mu.Lock()
	at := r.at
	r.mu.Unlock()
	r.e.proc.NIC().CPU().AdvanceTo(at)
}

// Test reports whether the operation has completed, without blocking; when
// it returns true the rank's virtual clock has been advanced to the
// completion time (MPI_Test semantics).
func (r *Request) Test() bool {
	r.mu.Lock()
	done, at := r.done, r.at
	r.mu.Unlock()
	if done {
		r.e.proc.NIC().CPU().AdvanceTo(at)
	}
	return done
}

// Done exposes the completion channel for select-based waiting.
func (r *Request) Done() <-chan struct{} { return r.ch }

// CompletedAt returns the virtual completion time (valid once done).
func (r *Request) CompletedAt() vtime.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.at
}

// Value returns the operation's result bytes (read-modify-write old
// values); nil for transfers. Valid once done.
func (r *Request) Value() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.val
}

// WaitAll waits for every request in reqs (nil entries are permitted and
// skipped, so callers can mix blocking and nonblocking issue paths).
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// lookupRequest finds an outstanding request by id (nil if completed or
// unknown).
func (e *Engine) lookupRequest(id uint64) *Request {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reqs[id]
}
