package core

import (
	"testing"
	"time"

	"mpi3rma/internal/datatype"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/serializer"
)

func TestWaitAnyTestAll(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 64)
		if p.Rank() == 1 {
			src := p.Alloc(64)
			var reqs []*Request
			for i := 0; i < 5; i++ {
				req, err := e.Put(src, 64, datatype.Byte, tm, 0, 64, datatype.Byte, 0, comm, AttrRemoteComplete)
				if err != nil {
					t.Errorf("put: %v", err)
					return
				}
				reqs = append(reqs, req)
			}
			idx := WaitAny(reqs...)
			if idx < 0 || idx >= len(reqs) {
				t.Errorf("WaitAny = %d", idx)
			}
			WaitAll(reqs...)
			if !TestAll(reqs...) {
				t.Error("TestAll false after WaitAll")
			}
			if got := TestSome(reqs...); len(got) != 5 {
				t.Errorf("TestSome found %d of 5", len(got))
			}
			// Degenerate forms.
			if WaitAny() != -1 {
				t.Error("WaitAny() should be -1")
			}
			if WaitAny(nil) != 0 {
				t.Error("WaitAny(nil) should be 0")
			}
			if !TestAll(nil, nil) {
				t.Error("TestAll of nils should be true")
			}
			e.Complete(comm, 0)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExposeCollective(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 4})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tms, region, err := e.ExposeCollective(comm, 32)
		if err != nil {
			t.Errorf("expose collective: %v", err)
			return
		}
		if len(tms) != 4 || region.Size != 32 {
			t.Errorf("tms=%d region=%d", len(tms), region.Size)
		}
		for r, tm := range tms {
			if tm.Owner != r || tm.Size != 32 {
				t.Errorf("descriptor %d: %+v", r, tm)
			}
		}
		// Ring put through the collective descriptors.
		next := (p.Rank() + 1) % 4
		src := p.Alloc(4)
		p.WriteLocal(src, 0, []byte{byte(p.Rank()), 0, 0, 0})
		if _, err := e.Put(src, 4, datatype.Byte, tms[next], 0, 4, datatype.Byte, next, comm, AttrBlocking); err != nil {
			t.Errorf("ring put: %v", err)
		}
		if err := e.CompleteCollective(comm); err != nil {
			t.Errorf("complete: %v", err)
		}
		prev := (p.Rank() + 3) % 4
		if got := p.Mem().Snapshot(region.Offset, 1)[0]; got != byte(prev) {
			t.Errorf("ring value %d, want %d", got, prev)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStrictDebugAttrs: the requirement-5 preset makes every put ordered,
// remote-complete, and atomic without changing call sites.
func TestStrictDebugAttrs(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		tm := shipTM(p, e, 8)
		if p.Rank() == 1 {
			e.SetCommAttrs(comm, StrictDebugAttrs)
			src := p.Alloc(8)
			req, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrBlocking)
			if err != nil {
				t.Errorf("put: %v", err)
				return
			}
			// Remote completion implies a round trip: well past the
			// local-only send time.
			if req.CompletedAt() < 3000 {
				t.Errorf("strict put completed at %d; remote completion not applied", req.CompletedAt())
			}
			e.Complete(comm, 0)
		}
		p.Barrier()
		if p.Rank() == 0 {
			// The atomic attribute routed the deposit through the thread
			// serializer.
			if e.OpsApplied.Value() != 1 {
				t.Errorf("applied = %d", e.OpsApplied.Value())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestProgressQuantumDelaysApplies: with MechProgress and a large poll
// quantum, an op's remote completion lands on a poll boundary.
func TestProgressQuantumDelays(t *testing.T) {
	const quantum = 1 * time.Millisecond
	w := newWorld(t, runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{Atomicity: serializer.MechProgress, ProgressQuantum: quantum})
		comm := p.Comm()
		tm := shipTM(p, e, 8)
		if p.Rank() == 0 {
			// Keep making progress so the origin's blocking op can finish.
			for e.OpsApplied.Value() < 1 {
				e.Progress()
				pollYield()
			}
			p.Barrier()
			return
		}
		src := p.Alloc(8)
		req, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrAtomic|AttrRemoteComplete|AttrBlocking)
		if err != nil {
			t.Errorf("put: %v", err)
			return
		}
		// The apply could not happen before the first poll boundary, so
		// the ack-carried completion time is at least the quantum.
		if req.CompletedAt() < 1000000 {
			t.Errorf("completed at %d, want >= the 1ms poll boundary", req.CompletedAt())
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDepositHookObservesPuts: the diagnostic hook sees source, handle,
// displacement and length of every deposit.
func TestDepositHook(t *testing.T) {
	w := newWorld(t, runtime.Config{Ranks: 2})
	type dep struct{ src, disp, length int }
	got := make(chan dep, 1)
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{})
		comm := p.Comm()
		if p.Rank() == 0 {
			e.SetDepositHook(func(src int, handle uint64, disp, length int) {
				select {
				case got <- dep{src, disp, length}:
				default:
				}
			})
		}
		tm := shipTM(p, e, 64)
		if p.Rank() == 1 {
			src := p.Alloc(16)
			if _, err := e.Put(src, 16, datatype.Byte, tm, 8, 16, datatype.Byte, 0, comm, AttrBlocking); err != nil {
				t.Errorf("put: %v", err)
			}
			e.Complete(comm, 0)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if d.src != 1 || d.disp != 8 || d.length != 16 {
			t.Errorf("hook saw %+v", d)
		}
	default:
		t.Error("deposit hook never fired")
	}
}

// TestEngineCloseViaWorld: World.Close shuts the thread serializer down
// (no panic, applied work preserved).
func TestEngineCloseViaWorld(t *testing.T) {
	w := runtime.NewWorld(runtime.Config{Ranks: 2})
	err := w.Run(func(p *runtime.Proc) {
		e := Attach(p, Options{Atomicity: serializer.MechThread})
		comm := p.Comm()
		tm := shipTM(p, e, 8)
		if p.Rank() == 1 {
			src := p.Alloc(8)
			if _, err := e.Put(src, 8, datatype.Byte, tm, 0, 8, datatype.Byte, 0, comm, AttrAtomic|AttrBlocking); err != nil {
				t.Errorf("put: %v", err)
			}
			e.Complete(comm, 0)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	w.Close() // second Close must be safe for the network; engines are closed once
}
