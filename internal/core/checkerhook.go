package core

// Runtime semantic-checker hook.
//
// The paper's Figure 1 critique of MPI-2 RMA is that erroneous overlapping
// accesses are silent: the interface cannot tell the user that two
// origins wrote the same target bytes without the atomicity attribute, or
// that one origin's unordered writes to the same location may apply in
// either order. The strawman interface makes overlap *undefined* rather
// than erroneous (requirement 3), which is exactly why a debugging mode
// must exist that detects it (requirement 5: "most stringent rules while
// debugging").
//
// This file is the engine side of that mode: an opt-in access observer,
// installed behind the same atomic.Pointer nil-guard pattern as the
// tracer and telemetry registry, so the disabled hot path pays one atomic
// load and no allocations. The observer (internal/checker) records every
// remote access applied at this rank as a byte interval and flags
// conflicting overlaps; the engine reports the synchronization events
// (Complete, CompleteCollective) that retire intervals, and stamps every
// operation with its origin-side epoch so accesses separated by Order or
// Complete are never paired.
//
// Epochs ride in header bits the protocol does not use: hMeta bits 32..63
// carry the origin's per-target epoch counter, which Order and Complete
// advance. The counter is maintained unconditionally (one increment under
// a mutex already held on those paths); only the observer reads it.

import (
	"mpi3rma/internal/vtime"
)

// AccessKind classifies a remote access for the semantic checker.
type AccessKind uint8

const (
	// AccessPut is a plain put (replace) deposit.
	AccessPut AccessKind = iota
	// AccessAcc is an accumulate deposit (element-wise combine).
	AccessAcc
	// AccessGet is a read of target memory.
	AccessGet
	// AccessRMW is a fetch-add or compare-and-swap (always atomic).
	AccessRMW
)

// IsWrite reports whether the access modifies target memory.
func (k AccessKind) IsWrite() bool { return k != AccessGet }

// String returns the access kind's name.
func (k AccessKind) String() string {
	switch k {
	case AccessPut:
		return "put"
	case AccessAcc:
		return "accumulate"
	case AccessGet:
		return "get"
	case AccessRMW:
		return "rmw"
	default:
		return "access"
	}
}

// Access describes one remote operation applied at a target, as the
// semantic checker sees it: who touched which bytes of which exposure,
// with which semantics, and under which origin-side epoch.
type Access struct {
	// Origin is the world rank that issued the operation.
	Origin int
	// Target is the world rank whose memory was accessed (the reporting
	// engine's rank).
	Target int
	// Handle identifies the exposure within the target's engine.
	Handle uint64
	// Disp and Len give the accessed byte interval [Disp, Disp+Len) in
	// exposure coordinates (the extent of the target datatype layout).
	Disp, Len int
	// Kind classifies the access.
	Kind AccessKind
	// Atomic is set when the operation carried AttrAtomic (RMWs always).
	Atomic bool
	// Ordered is set when the operation carried AttrOrdering.
	Ordered bool
	// OpID is the origin's request id for singleton operations, or the
	// batch envelope id for batched members (PR 2's trace/span ids, so a
	// conflict report can be correlated with a timeline dump).
	OpID uint64
	// Member is the index within the batch envelope, or -1 for
	// singletons.
	Member int
	// Epoch is the origin's per-target synchronization epoch at issue
	// time; Order and Complete advance it. Accesses from the same origin
	// in different epochs are ordered by definition and never conflict.
	Epoch uint64
	// At is the virtual time the access was applied.
	At vtime.Time
}

// AccessRecorder observes applied accesses and synchronization events.
// internal/checker implements it; implementations must be safe for
// concurrent use (applies run on NIC agent and serializer goroutines).
type AccessRecorder interface {
	// RecordAccess is called after each remote access is applied at the
	// target, before the operation is counted as applied — so an origin's
	// Complete returning happens strictly after every record of its
	// operations.
	RecordAccess(a Access)
	// RetireOrigin is called when origin's Complete toward target has
	// returned: every interval origin recorded at target is now ordered
	// before that origin's later operations (which also carry a fresh
	// epoch). It does not synchronize origin with other origins.
	RetireOrigin(origin, target int)
	// RetireTarget is called by target inside CompleteCollective, after
	// every inbound operation is applied and before the closing barrier:
	// all intervals recorded at target are retired.
	RetireTarget(target int)
}

// recorderCell boxes the recorder so the engine's nil-guard is a single
// atomic pointer load, mirroring the tracer and telemetry cells.
type recorderCell struct{ rec AccessRecorder }

// SetAccessRecorder installs (or clears, with nil) the semantic-checker
// access observer. Installing a recorder makes every applied access pay an
// observation call; leave it nil outside debugging runs.
func (e *Engine) SetAccessRecorder(r AccessRecorder) {
	if r == nil {
		e.chk.Store(nil)
		return
	}
	e.chk.Store(&recorderCell{rec: r})
}

// AccessRecorder returns the installed observer, or nil.
func (e *Engine) AccessRecorder() AccessRecorder {
	if c := e.chk.Load(); c != nil {
		return c.rec
	}
	return nil
}

// ck returns the current recorder cell (possibly nil). Hot paths must
// check for nil and skip building the Access value entirely.
func (e *Engine) ck() *recorderCell {
	return e.chk.Load()
}

// retireOrigin reports this rank's completed epoch toward the given
// targets to the observer, if any, and advances the per-target epoch so
// operations issued after the Complete never pair with earlier ones.
func (e *Engine) retireOrigin(targets []int) {
	c := e.ck()
	e.mu.Lock()
	for _, world := range targets {
		ts := e.targetLocked(world)
		if ts.sent > 0 {
			ts.chkEpoch++
		}
	}
	e.mu.Unlock()
	if c == nil {
		return
	}
	me := e.proc.Rank()
	for _, world := range targets {
		c.rec.RetireOrigin(me, world)
	}
}

// advanceEpochs bumps the per-target epoch for every covered target
// (Order's contribution to the checker: pre-Order and post-Order accesses
// from this origin are ordered, so they must never be paired).
func (e *Engine) advanceEpochs(targets []int) {
	e.mu.Lock()
	for _, world := range targets {
		ts := e.targetLocked(world)
		if ts.sent > 0 {
			ts.chkEpoch++
		}
	}
	e.mu.Unlock()
}
