package stats

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a fixed-bucket concurrent histogram for hot paths. Unlike
// Sample it never allocates or sorts: observations land in power-of-two
// buckets (bucket i holds values in [2^(i-1), 2^i), bucket 0 holds zero),
// so Observe is a pair of atomic adds and quantile queries walk 64 fixed
// counters. The price is resolution — quantiles are exact only to the
// bucket boundary — which is the right trade for per-operation latency in
// virtual-time nanoseconds.
//
// The zero value is ready to use. A nil *Histogram discards observations,
// so call sites need no nil checks.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// histBuckets covers every non-negative int64: bits.Len64 of a positive
// int64 is at most 63, and bucket 0 holds zero.
const histBuckets = 64

// Observe records one non-negative observation (negatives clamp to zero).
// On a nil histogram it is a no-op.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest observation, or 0 with none.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) by
// nearest-rank over the buckets: the inclusive upper edge of the bucket
// holding the rank, clamped to the observed maximum. 0 with no
// observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Reset discards all observations. Not atomic against concurrent Observe;
// use between measurement phases.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Snapshot captures the histogram's state for export or merging.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Le: bucketUpper(i), Count: n})
		}
	}
	return s
}

// HistogramBucket is one non-empty bucket: Count observations with values
// at most Le (the bucket's inclusive upper edge).
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram, mergeable
// across ranks (buckets share the fixed power-of-two edges).
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// bucketUpper returns the inclusive upper edge of bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Mean returns the snapshot's arithmetic mean, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile by nearest-rank over
// the buckets, clamped to the observed maximum.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			if b.Le > s.Max {
				return s.Max
			}
			return b.Le
		}
	}
	return s.Max
}

// Merge folds another snapshot into this one (buckets matched by edge).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	byLe := make(map[int64]int64, len(s.Buckets)+len(o.Buckets))
	for _, b := range s.Buckets {
		byLe[b.Le] += b.Count
	}
	for _, b := range o.Buckets {
		byLe[b.Le] += b.Count
	}
	s.Buckets = s.Buckets[:0]
	for i := 0; i < histBuckets; i++ {
		le := bucketUpper(i)
		if n := byLe[le]; n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Le: le, Count: n})
		}
	}
}
