package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Add(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d", g.Value())
	}
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Observe(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := s.Quantile(1.0); q != 5 {
		t.Fatalf("p100 = %v", q)
	}
	s.Reset()
	if s.N() != 0 || s.Mean() != 0 {
		t.Fatal("reset failed")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

// Property: quantile is always one of the observed values and lies within
// [min, max].
func TestQuantileProperty(t *testing.T) {
	f := func(vals []float64, qRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
		}
		var s Sample
		for _, v := range vals {
			s.Observe(v)
		}
		q := float64(qRaw) / 255
		got := s.Quantile(q)
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	var r Registry
	r.Counter("a").Add(2)
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	snap := r.Snapshot()
	if snap["a"] != 3 || snap["b"] != 1 {
		t.Fatalf("snapshot %v", snap)
	}
	str := r.String()
	if !strings.Contains(str, "a=3") || !strings.Contains(str, "b=1") {
		t.Fatalf("string %q", str)
	}
	if !strings.HasPrefix(str, "a=") {
		t.Fatalf("registry string not sorted: %q", str)
	}
	r.Reset()
	if r.Counter("a").Value() != 0 {
		t.Fatal("reset failed")
	}
}
