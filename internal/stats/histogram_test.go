package stats

import (
	"sync"
	"testing"
)

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should discard everything")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Fatalf("nil snapshot %+v", s)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1106 { // -5 clamps to 0
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	if got := h.Mean(); got < 157 || got > 159 {
		t.Fatalf("mean = %f", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	// Nearest-rank p50 of 1..100 is 50; the bucket edge above 50 is 63.
	if q := h.Quantile(0.5); q != 63 {
		t.Fatalf("p50 = %d, want 63 (bucket upper edge)", q)
	}
	// p99 rank is 99, in bucket (64,127] whose edge exceeds the max: clamp.
	if q := h.Quantile(0.99); q != 100 {
		t.Fatalf("p99 = %d, want 100 (clamped to max)", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %d, want 1", q)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(10)
		b.Observe(1000)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 20 || s.Sum != 10100 || s.Max != 1000 {
		t.Fatalf("merged %+v", s)
	}
	if q := s.Quantile(0.25); q != 15 {
		t.Fatalf("merged p25 = %d, want 15 (edge of the 10s bucket)", q)
	}
	if q := s.Quantile(0.9); q != 1000 {
		t.Fatalf("merged p90 = %d, want 1000 (clamped to max)", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 999 {
		t.Fatalf("max = %d", h.Max())
	}
}

func TestSampleQuantileReuse(t *testing.T) {
	var s Sample
	for _, v := range []float64{5, 1, 4, 2, 3} {
		s.Observe(v)
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %f", q)
	}
	// A second query reuses the sorted state; a new observation invalidates.
	if q := s.Quantile(1); q != 5 {
		t.Fatalf("p100 = %f", q)
	}
	s.Observe(0)
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("p0 after new observation = %f", q)
	}
}
