// Package stats provides lightweight counters, timers, and histograms used
// by the benchmark harness and by tests that assert on operation counts
// (messages sent, bytes moved, locks taken, cache invalidations).
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing concurrent counter.
// The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a concurrent value that can move in both directions.
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set stores v as the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Sample accumulates observations and reports simple summary statistics.
// It is safe for concurrent use. Quantile queries sort the observations in
// place once and reuse the ordering until the next Observe, so repeated
// queries (p50, p90, p99, ...) cost one sort, not one copy-and-sort each.
// For hot paths that cannot afford the mutex or the O(n) storage, use
// Histogram instead.
type Sample struct {
	mu     sync.Mutex
	vals   []float64
	sorted bool
}

// Observe records one observation.
func (s *Sample) Observe(v float64) {
	s.mu.Lock()
	s.vals = append(s.vals, v)
	s.sorted = false
	s.mu.Unlock()
}

// N returns the number of observations recorded.
func (s *Sample) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Min returns the smallest observation, or +Inf with no observations.
func (s *Sample) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	min := math.Inf(1)
	for _, v := range s.vals {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation, or -Inf with no observations.
func (s *Sample) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := math.Inf(-1)
	for _, v := range s.vals {
		if v > max {
			max = v
		}
	}
	return max
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank on the
// sorted observations, or 0 with no observations.
func (s *Sample) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(s.vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.vals) {
		idx = len(s.vals) - 1
	}
	return s.vals[idx]
}

// Reset discards all observations.
func (s *Sample) Reset() {
	s.mu.Lock()
	s.vals = s.vals[:0]
	s.mu.Unlock()
}

// Registry is a named collection of counters, for dumping operation counts
// after an experiment. The zero value is ready to use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Snapshot returns the current value of every registered counter.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Reset zeroes every registered counter.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
}

// String renders the registry as "name=value" pairs in sorted name order.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", n, snap[n])
	}
	return out
}
