package gasnet

import (
	"fmt"

	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
)

// Extended API: contiguous Put and Get into/out of the remote segment
// (gasnet_put / gasnet_get and their _nb variants). Per the paper, this is
// all the GASNet RMA specification offers — no accumulate, no
// noncontiguous transfers — which is exactly the gap the strawman's
// datatype-carrying operations close.
//
// Puts are long AMs handled by an internal deposit handler that replies
// for completion; gets are short AMs whose handler replies with the data.
// The internal handler indices live at the top of the table.

const (
	// hdlPut is the internal extended-API put handler index.
	hdlPut uint8 = 255
	// hdlGet is the internal extended-API get handler index.
	hdlGet uint8 = 254
)

// Handle tracks a nonblocking extended-API operation.
type Handle struct {
	g *GASNet
	w *opWait
	// get destination, filled on completion
	dst    memsim.Region
	dstOff int
	isGet  bool
}

// Wait blocks until the operation completes (gasnet_wait_syncnb).
func (h *Handle) Wait() error {
	if h == nil || h.w == nil {
		return nil
	}
	<-h.w.ch
	h.g.proc.NIC().CPU().AdvanceTo(h.w.at)
	if h.isGet {
		if h.w.data == nil {
			return fmt.Errorf("gasnet: get failed at the target")
		}
		if err := h.g.proc.Mem().RemoteWrite(h.dst.Offset+h.dstOff, h.w.data); err != nil {
			return err
		}
	}
	return nil
}

// Try reports whether the operation has completed without blocking
// (gasnet_try_syncnb); completion side effects run when it returns true.
func (h *Handle) Try() (bool, error) {
	if h == nil || h.w == nil {
		return true, nil
	}
	select {
	case <-h.w.ch:
		return true, h.Wait()
	default:
		return false, nil
	}
}

// initExtended registers the internal extended-API handlers; Attach calls
// it on every rank so puts and gets can target any peer.
func (g *GASNet) initExtended() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.handlers[hdlPut] = func(tok *Token, payload []byte, args [MaxArgs]uint64) {
		// The long-AM machinery already deposited the payload into the
		// segment; the handler only confirms.
		tok.Reply(hdlPut, nil, [MaxArgs]uint64{uint64(len(payload)), 0})
	}
	g.handlers[hdlGet] = func(tok *Token, payload []byte, args [MaxArgs]uint64) {
		off, n := int(args[0]), int(args[1])
		g.mu.Lock()
		seg, ok := g.segment, g.segSet
		g.mu.Unlock()
		if !ok || !seg.Contains(off, n) {
			g.proc.NIC().BadReq.Inc()
			tok.Reply(hdlGet, nil, [MaxArgs]uint64{})
			return
		}
		buf := make([]byte, n)
		if err := g.proc.Mem().RemoteRead(seg.Offset+off, buf); err != nil {
			g.proc.NIC().BadReq.Inc()
			buf = nil
		}
		tok.Reply(hdlGet, buf, [MaxArgs]uint64{})
	}
}

// PutNB starts a nonblocking contiguous put of n bytes from src+srcOff
// into dst's segment at dstOff.
func (g *GASNet) PutNB(dst int, comm *runtime.Comm, dstOff int, src memsim.Region, srcOff, n int) (*Handle, error) {
	if !src.Contains(srcOff, n) {
		return nil, fmt.Errorf("gasnet: put source [%d,%d) outside region of %d bytes", srcOff, srcOff+n, src.Size)
	}
	buf := make([]byte, n)
	if err := g.proc.Mem().RemoteRead(src.Offset+srcOff, buf); err != nil {
		return nil, err
	}
	id, w := g.newWait()
	g.AMsLong.Inc()
	if err := g.request(kLong, dst, comm, hdlPut, buf, dstOff, [MaxArgs]uint64{}, id); err != nil {
		g.takeWait(id)
		return nil, err
	}
	return &Handle{g: g, w: w}, nil
}

// Put is the blocking contiguous put: it returns after the data is in the
// remote segment.
func (g *GASNet) Put(dst int, comm *runtime.Comm, dstOff int, src memsim.Region, srcOff, n int) error {
	h, err := g.PutNB(dst, comm, dstOff, src, srcOff, n)
	if err != nil {
		return err
	}
	return h.Wait()
}

// GetNB starts a nonblocking contiguous get of n bytes from src's segment
// at srcOff into dst+dstOff.
func (g *GASNet) GetNB(dst memsim.Region, dstOff int, src int, comm *runtime.Comm, srcOff, n int) (*Handle, error) {
	if !dst.Contains(dstOff, n) {
		return nil, fmt.Errorf("gasnet: get destination [%d,%d) outside region of %d bytes", dstOff, dstOff+n, dst.Size)
	}
	id, w := g.newWait()
	g.AMsShort.Inc()
	if err := g.request(kShort, src, comm, hdlGet, nil, 0, [MaxArgs]uint64{uint64(srcOff), uint64(n)}, id); err != nil {
		g.takeWait(id)
		return nil, err
	}
	return &Handle{g: g, w: w, dst: dst, dstOff: dstOff, isGet: true}, nil
}

// Get is the blocking contiguous get.
func (g *GASNet) Get(dst memsim.Region, dstOff int, src int, comm *runtime.Comm, srcOff, n int) error {
	h, err := g.GetNB(dst, dstOff, src, comm, srcOff, n)
	if err != nil {
		return err
	}
	return h.Wait()
}
