package gasnet

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"mpi3rma/internal/runtime"
)

func newWorld(t *testing.T, ranks int) *runtime.World {
	t.Helper()
	w := runtime.NewWorld(runtime.Config{Ranks: ranks})
	t.Cleanup(w.Close)
	return w
}

func TestShortAM(t *testing.T) {
	w := newWorld(t, 2)
	var got atomic.Uint64
	err := w.Run(func(p *runtime.Proc) {
		g := Attach(p)
		comm := p.Comm()
		if p.Rank() == 0 {
			done := make(chan struct{})
			g.RegisterHandler(1, func(tok *Token, payload []byte, args [MaxArgs]uint64) {
				if payload != nil {
					t.Error("short AM carried a payload")
				}
				if tok.Src() != 1 {
					t.Errorf("src = %d", tok.Src())
				}
				got.Store(args[0]*1000 + args[1])
				close(done)
			})
			p.Barrier()
			<-done
			p.Barrier()
			return
		}
		p.Barrier()
		if err := g.RequestShort(0, comm, 1, [MaxArgs]uint64{7, 9}); err != nil {
			t.Errorf("short: %v", err)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Load() != 7009 {
		t.Fatalf("args = %d", got.Load())
	}
}

func TestMediumAMWithReply(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		g := Attach(p)
		comm := p.Comm()
		if p.Rank() == 0 {
			g.RegisterHandler(2, func(tok *Token, payload []byte, args [MaxArgs]uint64) {
				// Echo back doubled bytes.
				out := make([]byte, len(payload))
				for i, b := range payload {
					out[i] = b * 2
				}
				if err := tok.Reply(3, out, [MaxArgs]uint64{uint64(len(out)), 0}); err != nil {
					t.Errorf("reply: %v", err)
				}
				if err := tok.Reply(3, nil, [MaxArgs]uint64{}); err == nil {
					t.Error("second reply accepted")
				}
			})
			p.Barrier()
			p.Barrier()
			return
		}
		done := make(chan []byte, 1)
		g.RegisterHandler(3, func(tok *Token, payload []byte, args [MaxArgs]uint64) {
			done <- append([]byte(nil), payload...)
		})
		p.Barrier()
		if err := g.RequestMedium(0, comm, 2, []byte{1, 2, 3}, [MaxArgs]uint64{}); err != nil {
			t.Errorf("medium: %v", err)
		}
		select {
		case got := <-done:
			if !bytes.Equal(got, []byte{2, 4, 6}) {
				t.Errorf("reply payload %v", got)
			}
		case <-time.After(2 * time.Second):
			t.Error("reply never arrived")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMediumAMSizeLimit(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		g := Attach(p)
		if p.Rank() == 1 {
			err := g.RequestMedium(0, p.Comm(), 2, make([]byte, MaxMedium+1), [MaxArgs]uint64{})
			if err == nil {
				t.Error("oversized medium AM accepted")
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLongAMDepositsIntoSegment(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		g := Attach(p)
		comm := p.Comm()
		var handled atomic.Bool
		g.RegisterHandler(4, func(tok *Token, payload []byte, args [MaxArgs]uint64) {
			handled.Store(true)
		})
		seg, err := g.AttachSegment(comm, 128)
		if err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		if p.Rank() == 1 {
			if err := g.RequestLong(0, comm, 4, bytes.Repeat([]byte{0xEF}, 16), 32, [MaxArgs]uint64{}); err != nil {
				t.Errorf("long: %v", err)
			}
		}
		p.Barrier()
		if p.Rank() == 0 {
			deadline := time.After(2 * time.Second)
			for !handled.Load() {
				select {
				case <-deadline:
					t.Fatal("long AM handler never ran")
				default:
					time.Sleep(time.Millisecond)
				}
			}
			got := p.Mem().Snapshot(seg.Offset+32, 16)
			if !bytes.Equal(got, bytes.Repeat([]byte{0xEF}, 16)) {
				t.Error("long AM payload not in segment")
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLongAMOutOfSegmentRejected(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		g := Attach(p)
		comm := p.Comm()
		g.RegisterHandler(4, func(*Token, []byte, [MaxArgs]uint64) {})
		if _, err := g.AttachSegment(comm, 32); err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		if p.Rank() == 1 {
			if err := g.RequestLong(0, comm, 4, make([]byte, 16), 24, [MaxArgs]uint64{}); err != nil {
				t.Errorf("long send: %v", err)
			}
		}
		p.Barrier()
		if p.Rank() == 0 {
			deadline := time.After(2 * time.Second)
			for p.NIC().BadReq.Value() == 0 {
				select {
				case <-deadline:
					t.Fatal("out-of-segment long AM not rejected")
				default:
					time.Sleep(time.Millisecond)
				}
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtendedPutGet(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		g := Attach(p)
		comm := p.Comm()
		seg, err := g.AttachSegment(comm, 256)
		if err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		if p.Rank() == 1 {
			src := p.Alloc(64)
			p.WriteLocal(src, 0, bytes.Repeat([]byte{0x42}, 64))
			if err := g.Put(0, comm, 16, src, 0, 64); err != nil {
				t.Errorf("put: %v", err)
			}
			dst := p.Alloc(64)
			if err := g.Get(dst, 0, 0, comm, 16, 64); err != nil {
				t.Errorf("get: %v", err)
			}
			if got := p.ReadLocal(dst, 0, 64); !bytes.Equal(got, bytes.Repeat([]byte{0x42}, 64)) {
				t.Error("extended get mismatch")
			}
		}
		p.Barrier()
		if p.Rank() == 0 {
			got := p.Mem().Snapshot(seg.Offset+16, 64)
			if !bytes.Equal(got, bytes.Repeat([]byte{0x42}, 64)) {
				t.Error("extended put did not land")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtendedNonblocking(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		g := Attach(p)
		comm := p.Comm()
		if _, err := g.AttachSegment(comm, 256); err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		if p.Rank() == 1 {
			src := p.Alloc(32)
			var hs []*Handle
			for i := 0; i < 4; i++ {
				h, err := g.PutNB(0, comm, i*32, src, 0, 32)
				if err != nil {
					t.Errorf("putnb: %v", err)
					return
				}
				hs = append(hs, h)
			}
			for _, h := range hs {
				if err := h.Wait(); err != nil {
					t.Errorf("wait: %v", err)
				}
				if ok, err := h.Try(); !ok || err != nil {
					t.Errorf("try after wait: %v %v", ok, err)
				}
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetOutOfSegmentFails(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		g := Attach(p)
		comm := p.Comm()
		if _, err := g.AttachSegment(comm, 32); err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		if p.Rank() == 1 {
			dst := p.Alloc(64)
			if err := g.Get(dst, 0, 0, comm, 16, 32); err == nil {
				t.Error("out-of-segment get should fail")
			}
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSegmentBookkeeping(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(p *runtime.Proc) {
		g := Attach(p)
		comm := p.Comm()
		if _, ok := g.Segment(); ok {
			t.Error("segment set before attach")
		}
		if _, err := g.AttachSegment(comm, 64); err != nil {
			t.Errorf("attach: %v", err)
			return
		}
		if _, err := g.AttachSegment(comm, 64); err == nil {
			t.Error("double attach accepted")
		}
		if sz, err := g.SegmentSize(1 - p.Rank()); err != nil || sz != 64 {
			t.Errorf("peer segment size %d, %v", sz, err)
		}
		if _, err := g.SegmentSize(5); err == nil {
			t.Error("bad rank accepted")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateHandlerRejected(t *testing.T) {
	w := newWorld(t, 1)
	err := w.Run(func(p *runtime.Proc) {
		g := Attach(p)
		if err := g.RegisterHandler(9, func(*Token, []byte, [MaxArgs]uint64) {}); err != nil {
			t.Errorf("first register: %v", err)
		}
		if err := g.RegisterHandler(9, func(*Token, []byte, [MaxArgs]uint64) {}); err == nil {
			t.Error("duplicate register accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReplyToReplyForbidden: a handler invoked for a *reply* cannot reply
// again (GASNet's request/reply discipline).
func TestReplyToReplyForbidden(t *testing.T) {
	w := newWorld(t, 2)
	violation := make(chan error, 1)
	err := w.Run(func(p *runtime.Proc) {
		g := Attach(p)
		comm := p.Comm()
		if p.Rank() == 0 {
			g.RegisterHandler(10, func(tok *Token, payload []byte, args [MaxArgs]uint64) {
				tok.Reply(11, nil, [MaxArgs]uint64{})
			})
			p.Barrier()
			p.Barrier()
			return
		}
		g.RegisterHandler(11, func(tok *Token, payload []byte, args [MaxArgs]uint64) {
			// This handler runs for a reply; replying again must fail.
			select {
			case violation <- tok.Reply(12, nil, [MaxArgs]uint64{}):
			default:
			}
		})
		p.Barrier()
		if err := g.RequestShort(0, comm, 10, [MaxArgs]uint64{}); err != nil {
			t.Errorf("short: %v", err)
		}
		deadline := time.After(2 * time.Second)
		select {
		case err := <-violation:
			if err == nil {
				t.Error("reply-to-reply accepted")
			}
		case <-deadline:
			t.Error("reply handler never ran")
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
