// Package gasnet implements a GASNet-like communication subsystem (paper
// Section VI): the layer beneath the Berkeley UPC compiler.
//
// Reproduced from the paper's description:
//
//   - A core API based on the Active Message paradigm, with distinct
//     interfaces for short, medium and long active messages. "No
//     particular ordering is guaranteed for these operations nor is it
//     possible to specify any."
//   - An extended API with RMA Put and Get — contiguous only: "the
//     current GASNet extend API RMA specification (version 1.8) does not
//     include support for non-contiguous data transfers", and there is no
//     accumulate.
//
// Unlike internal/armci, this layer does *not* ride on the strawman
// engine: it speaks its own message kinds directly over the NIC, because
// an AM-core design is architecturally different (every operation,
// including the extended puts and gets, is mediated by a handler running
// on the target's implicit communication thread). That difference is what
// experiment E7 measures.
package gasnet

import (
	"fmt"
	"sync"

	"mpi3rma/internal/memsim"
	"mpi3rma/internal/portals"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/simnet"
	"mpi3rma/internal/stats"
	"mpi3rma/internal/vtime"
)

// Message kinds.
const (
	kShort = portals.KindGASNetBase + 0 // short AM: arguments only
	kMed   = portals.KindGASNetBase + 1 // medium AM: payload into a bounce buffer
	kLong  = portals.KindGASNetBase + 2 // long AM: payload into the segment
	kReply = portals.KindGASNetBase + 3 // reply AM (short or medium)
)

// Header words.
const (
	hIdx  = 0 // handler index
	hA0   = 1 // argument 0
	hA1   = 2 // argument 1
	hDest = 3 // long AM: destination offset in the segment
	hReq  = 5 // origin completion cookie (0 = none wanted)
)

// MaxArgs is the number of 64-bit handler arguments (GASNet allows more;
// two suffice for the workloads here and keep the header flat).
const MaxArgs = 2

// MaxMedium is the largest medium-AM payload (GASNet's
// gasnet_AMMaxMedium, typically a few KB).
const MaxMedium = 4096

// Handler runs at the target when an active message arrives. payload is
// nil for short AMs, a bounce buffer for medium AMs, and the deposited
// segment bytes for long AMs (already written to the segment). Handlers
// execute on the NIC agent goroutine — the implicit communication thread —
// and may send at most one reply through the token.
type Handler func(tok *Token, payload []byte, args [MaxArgs]uint64)

// Token identifies the requester within a handler, enabling a reply.
type Token struct {
	g       *GASNet
	src     int
	at      vtime.Time
	reqID   uint64
	replied bool
}

// Src returns the requesting rank.
func (t *Token) Src() int { return t.src }

// Reply sends a (short or medium) reply AM to the requester. At most one
// reply is allowed per handler invocation, matching GASNet's rule.
func (t *Token) Reply(idx uint8, payload []byte, args [MaxArgs]uint64) error {
	if t.replied {
		return fmt.Errorf("gasnet: handler replied twice")
	}
	t.replied = true
	m := &simnet.Message{Dst: t.src, Kind: kReply, Payload: append([]byte(nil), payload...)}
	m.Hdr[hIdx] = uint64(idx)
	m.Hdr[hA0] = args[0]
	m.Hdr[hA1] = args[1]
	m.Hdr[hReq] = t.reqID
	if _, err := t.g.proc.NIC().Send(t.at, m); err != nil {
		return err
	}
	return nil
}

// GASNet is one rank's GASNet state.
type GASNet struct {
	proc *runtime.Proc

	mu       sync.Mutex
	handlers map[uint8]Handler
	segment  memsim.Region
	segSet   bool
	segments []SegmentInfo

	waitMu  sync.Mutex
	waitSeq uint64
	waits   map[uint64]*opWait

	// Counters.
	AMsShort  stats.Counter
	AMsMedium stats.Counter
	AMsLong   stats.Counter
	Replies   stats.Counter
}

// SegmentInfo describes one rank's attached segment.
type SegmentInfo struct {
	Rank int
	Size int
}

// opWait tracks a nonblocking extended-API operation.
type opWait struct {
	ch   chan struct{}
	at   vtime.Time
	data []byte
}

// extKey is the Proc extension slot.
const extKey = "gasnet"

// Attach returns the rank's GASNet layer, creating it on first use.
func Attach(p *runtime.Proc) *GASNet {
	return p.Ext(extKey, func() any {
		g := &GASNet{
			proc:     p,
			handlers: make(map[uint8]Handler),
			waits:    make(map[uint64]*opWait),
		}
		nic := p.NIC()
		nic.RegisterHandler(kShort, g.handleAM)
		nic.RegisterHandler(kMed, g.handleAM)
		nic.RegisterHandler(kLong, g.handleAM)
		nic.RegisterHandler(kReply, g.handleReply)
		g.initExtended()
		return g
	}).(*GASNet)
}

// RegisterHandler installs an AM handler under idx (gasnet_attach's
// handler table). Indices 0-127 are for requests, 128-255 for replies by
// convention; this implementation does not enforce the split.
func (g *GASNet) RegisterHandler(idx uint8, h Handler) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.handlers[idx]; dup {
		return fmt.Errorf("gasnet: handler index %d already registered", idx)
	}
	g.handlers[idx] = h
	return nil
}

// AttachSegment collectively attaches a segment of the given size on every
// member of comm (gasnet_attach) and records everyone's segment sizes.
// Long AMs and the extended API address memory within the segment.
func (g *GASNet) AttachSegment(comm *runtime.Comm, size int) (memsim.Region, error) {
	g.mu.Lock()
	if g.segSet {
		g.mu.Unlock()
		return memsim.Region{}, fmt.Errorf("gasnet: segment already attached")
	}
	g.mu.Unlock()
	region := g.proc.Alloc(size)
	sizes := comm.AllgatherInt64(int64(size))
	infos := make([]SegmentInfo, comm.Size())
	for i, s := range sizes {
		infos[i] = SegmentInfo{Rank: i, Size: int(s)}
	}
	g.mu.Lock()
	g.segment = region
	g.segSet = true
	g.segments = infos
	g.mu.Unlock()
	comm.Barrier()
	return region, nil
}

// Segment returns this rank's attached segment.
func (g *GASNet) Segment() (memsim.Region, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.segment, g.segSet
}

// SegmentSize returns the attached segment size of a comm rank.
func (g *GASNet) SegmentSize(rank int) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.segSet || rank < 0 || rank >= len(g.segments) {
		return 0, fmt.Errorf("gasnet: no segment information for rank %d", rank)
	}
	return g.segments[rank].Size, nil
}

// newWait registers a completion cookie.
func (g *GASNet) newWait() (uint64, *opWait) {
	w := &opWait{ch: make(chan struct{})}
	g.waitMu.Lock()
	g.waitSeq++
	id := g.waitSeq
	g.waits[id] = w
	g.waitMu.Unlock()
	return id, w
}

// takeWait removes and returns a cookie's wait state.
func (g *GASNet) takeWait(id uint64) *opWait {
	g.waitMu.Lock()
	defer g.waitMu.Unlock()
	w := g.waits[id]
	delete(g.waits, id)
	return w
}

// RequestShort sends a short AM (arguments only).
func (g *GASNet) RequestShort(dst int, comm *runtime.Comm, idx uint8, args [MaxArgs]uint64) error {
	g.AMsShort.Inc()
	return g.request(kShort, dst, comm, idx, nil, 0, args, 0)
}

// RequestMedium sends a medium AM: the payload is delivered to a bounce
// buffer at the target and passed to the handler.
func (g *GASNet) RequestMedium(dst int, comm *runtime.Comm, idx uint8, payload []byte, args [MaxArgs]uint64) error {
	if len(payload) > MaxMedium {
		return fmt.Errorf("gasnet: medium AM payload of %d bytes exceeds the %d-byte maximum", len(payload), MaxMedium)
	}
	g.AMsMedium.Inc()
	return g.request(kMed, dst, comm, idx, payload, 0, args, 0)
}

// RequestLong sends a long AM: the payload is deposited into the target's
// segment at dstOff before the handler runs.
func (g *GASNet) RequestLong(dst int, comm *runtime.Comm, idx uint8, payload []byte, dstOff int, args [MaxArgs]uint64) error {
	g.AMsLong.Inc()
	return g.request(kLong, dst, comm, idx, payload, dstOff, args, 0)
}

func (g *GASNet) request(kind uint8, dst int, comm *runtime.Comm, idx uint8, payload []byte, dstOff int, args [MaxArgs]uint64, reqID uint64) error {
	m := &simnet.Message{Dst: comm.WorldRank(dst), Kind: kind}
	if payload != nil {
		m.Payload = append([]byte(nil), payload...)
	}
	m.Hdr[hIdx] = uint64(idx)
	m.Hdr[hA0] = args[0]
	m.Hdr[hA1] = args[1]
	m.Hdr[hDest] = uint64(dstOff)
	m.Hdr[hReq] = reqID
	if _, err := g.proc.NIC().Send(g.proc.Now(), m); err != nil {
		return err
	}
	g.proc.NIC().CPU().AdvanceTo(m.SentAt)
	return nil
}

// handleAM dispatches an incoming request AM.
func (g *GASNet) handleAM(m *simnet.Message, at vtime.Time) {
	g.mu.Lock()
	h := g.handlers[uint8(m.Hdr[hIdx])]
	seg := g.segment
	segSet := g.segSet
	g.mu.Unlock()
	payload := m.Payload
	if m.Kind == kLong {
		if !segSet {
			g.proc.NIC().BadReq.Inc()
			return
		}
		off := int(m.Hdr[hDest])
		if !seg.Contains(off, len(payload)) {
			g.proc.NIC().BadReq.Inc()
			return
		}
		if err := g.proc.Mem().RemoteWrite(seg.Offset+off, payload); err != nil {
			g.proc.NIC().BadReq.Inc()
			return
		}
	}
	if h == nil {
		g.proc.NIC().BadReq.Inc()
		return
	}
	tok := &Token{g: g, src: m.Src, at: at, reqID: m.Hdr[hReq]}
	h(tok, payload, [MaxArgs]uint64{m.Hdr[hA0], m.Hdr[hA1]})
}

// handleReply dispatches a reply AM: if the origin registered a completion
// cookie the reply completes it (and delivers the payload); a registered
// reply handler, if any, also runs.
func (g *GASNet) handleReply(m *simnet.Message, at vtime.Time) {
	g.Replies.Inc()
	if id := m.Hdr[hReq]; id != 0 {
		if w := g.takeWait(id); w != nil {
			w.at = at
			w.data = m.Payload
			close(w.ch)
			return
		}
	}
	g.mu.Lock()
	h := g.handlers[uint8(m.Hdr[hIdx])]
	g.mu.Unlock()
	if h == nil {
		g.proc.NIC().BadReq.Inc()
		return
	}
	tok := &Token{g: g, src: m.Src, at: at, replied: true} // replies cannot be replied to
	h(tok, m.Payload, [MaxArgs]uint64{m.Hdr[hA0], m.Hdr[hA1]})
}
