// Package simnet simulates the interconnect of a distributed-memory
// machine.
//
// The paper's evaluation ran over the Cray XT5's SeaStar network via the
// Portals library; its discussion (Section III-B) also covers networks
// without message ordering (Quadrics QSNetII/III) and networks without
// remote-completion events. simnet reproduces exactly those axes:
//
//   - Ordered vs unordered delivery per (source, destination) pair. The
//     unordered mode scrambles bursts of in-flight messages through a
//     bounded reorder window, as a multi-rail or adaptively-routed network
//     would.
//   - A LogGP-style cost model (latency L, per-message overhead o, gap g,
//     per-byte cost G) that drives the virtual-time account described in
//     DESIGN.md. Every send computes when the message left the origin NIC
//     and when it arrives at the target NIC in virtual time.
//
// simnet moves bytes between endpoints; protocol (acknowledgements, match
// lists, event queues) lives above it in internal/portals.
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mpi3rma/internal/stats"
	"mpi3rma/internal/vtime"
)

// CostModel is a LogGP-style account of transfer costs, used for the
// virtual-time clocks. All fields are durations of virtual time.
type CostModel struct {
	// Latency is the wire latency L from NIC to NIC.
	Latency time.Duration
	// Overhead is the per-message CPU software overhead o paid at the
	// origin when injecting (the dominant term of a mid-2000s MPI put).
	Overhead time.Duration
	// DeliverOverhead is the per-message cost of the target NIC's ingress
	// engine; it is paid on the shared delivery lane and is much smaller
	// than Overhead (the NIC, not the CPU, handles arrivals).
	DeliverOverhead time.Duration
	// Gap is the minimum interval g between consecutive injections at one
	// NIC (the injection-rate limit).
	Gap time.Duration
	// PerKB is the cost G of moving 1024 payload bytes across the wire
	// (expressed per KB so sub-nanosecond per-byte rates stay exact in
	// integer arithmetic; 512ns/KB ≈ 2 GB/s).
	PerKB time.Duration
}

// byteCost returns n bytes' worth of a per-KB rate.
func byteCost(n int, perKB time.Duration) time.Duration {
	return time.Duration(int64(n) * int64(perKB) / 1024)
}

// DefaultCost approximates a mid-2000s HPC interconnect of the XT5 class:
// a few microseconds of put latency and ~2 GB/s of per-link bandwidth.
// Absolute values are not calibrated to the paper's testbed (see
// EXPERIMENTS.md); the ratios are what matter.
func DefaultCost() CostModel {
	return CostModel{
		Latency:         1500 * time.Nanosecond,
		Overhead:        2000 * time.Nanosecond,
		DeliverOverhead: 300 * time.Nanosecond,
		Gap:             100 * time.Nanosecond,
		PerKB:           512 * time.Nanosecond,
	}
}

// Wire returns the wire time for an n-byte payload: L + n*G.
func (c CostModel) Wire(n int) time.Duration {
	return c.Latency + byteCost(n, c.PerKB)
}

// Deliver returns the target-side ingress cost for an n-byte payload:
// the NIC's per-message overhead plus DMA into memory.
func (c CostModel) Deliver(n int) time.Duration {
	return c.DeliverOverhead + byteCost(n, c.PerKB)
}

// Inject returns the origin-side injection cost for an n-byte payload:
// o + g + n*G (software overhead, injection gap, and the CPU/DMA cost of
// moving the payload out of the user buffer).
func (c CostModel) Inject(n int) time.Duration {
	return c.Overhead + c.Gap + byteCost(n, c.PerKB)
}

// Config configures a Network.
type Config struct {
	// Ranks is the number of endpoints.
	Ranks int
	// Ordered selects whether the network preserves per-(src,dst) message
	// order (true: XT5/SeaStar-like; false: QSNet-like adaptive routing).
	Ordered bool
	// ReorderWindow bounds how many in-flight messages the unordered mode
	// may scramble at once. 0 means DefaultReorderWindow. Ignored when
	// Ordered.
	ReorderWindow int
	// Seed seeds the deterministic scrambler of the unordered mode.
	Seed int64
	// Cost is the virtual-time cost model; the zero value means
	// DefaultCost().
	Cost CostModel
	// QueueDepth is the per-endpoint delivery queue capacity; 0 means
	// DefaultQueueDepth.
	QueueDepth int
}

// DefaultReorderWindow is the unordered-mode scramble window when
// Config.ReorderWindow is 0.
const DefaultReorderWindow = 8

// DefaultQueueDepth is the per-endpoint delivery queue capacity when
// Config.QueueDepth is 0.
const DefaultQueueDepth = 1024

// Message is one network message. Kind, Flags and Hdr are opaque to simnet;
// the layers above define their meaning.
type Message struct {
	// Src and Dst are origin and target endpoint ids.
	Src, Dst int
	// Kind tags the protocol message type (defined by the layer above).
	Kind uint8
	// Flags carries protocol flags (defined by the layer above).
	Flags uint8
	// Seq is the per-(src,dst) sequence number simnet assigns at send
	// time, counting from 1. Ordering enforcement above simnet uses it.
	Seq uint64
	// Hdr carries op-specific header words (offsets, counts, op codes).
	Hdr [6]uint64
	// Ops is the number of logical operations the message carries (0 is
	// treated as 1). Aggregated messages — one wire message coalescing
	// many small RMA operations — set it so the network's LogicalOps
	// counter stays comparable across batched and unbatched runs, while
	// Msgs counts wire messages (and therefore per-message overhead paid).
	Ops int
	// RSeq is the reliable-delivery sequence number the portals relay
	// assigns per (src, dst) link, counting from 1. 0 means the frame is
	// not tracked by the relay. Unlike Seq it survives retransmission: a
	// retransmitted frame carries a fresh Seq but the same RSeq.
	RSeq uint64
	// Sum is the payload checksum (CRC-32C) the reliable-delivery relay
	// attaches so receivers can reject frames corrupted in flight. Only
	// meaningful when RSeq != 0.
	Sum uint32
	// Payload is the message body. simnet does not copy it; senders must
	// not reuse the slice after Send.
	Payload []byte
	// SentAt is the virtual time the message left the origin NIC.
	SentAt vtime.Time
	// ArriveAt is the virtual time the message arrives at the target NIC.
	ArriveAt vtime.Time
}

// Network is a simulated interconnect between Ranks endpoints.
type Network struct {
	cfg  Config
	eps  []*Endpoint
	wg   sync.WaitGroup
	once sync.Once

	// faults is the installed fault plan; nil means a lossless wire.
	faults atomic.Pointer[FaultPlan]

	// Counters for tests and the benchmark harness. Msgs counts wire
	// messages; LogicalOps counts the operations they carry (equal to
	// Msgs unless aggregated messages are in use); Bytes counts payload.
	Msgs       stats.Counter
	LogicalOps stats.Counter
	Bytes      stats.Counter

	// Fault-injection counters, incremented by the network as the
	// installed FaultPlan fires.
	FaultsDropped    stats.Counter
	FaultsDuplicated stats.Counter
	FaultsDelayed    stats.Counter
	FaultsCorrupted  stats.Counter
	FaultsBlackholed stats.Counter // messages to or from a killed rank

	// Reliable-delivery counters, incremented by the portals relay (they
	// live here because, like Msgs/Bytes, they describe world-global wire
	// traffic and must be merged exactly once across ranks).
	Retries         stats.Counter // retransmitted frames
	RetransmitBytes stats.Counter // payload bytes retransmitted
	DupDropped      stats.Counter // duplicate frames discarded by receivers
	CorruptRejected stats.Counter // frames rejected by payload checksum
}

// New constructs a network and its endpoints.
func New(cfg Config) *Network {
	if cfg.Ranks <= 0 {
		panic("simnet: Config.Ranks must be positive")
	}
	if cfg.ReorderWindow == 0 {
		cfg.ReorderWindow = DefaultReorderWindow
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if (cfg.Cost == CostModel{}) {
		cfg.Cost = DefaultCost()
	}
	n := &Network{cfg: cfg}
	n.eps = make([]*Endpoint, cfg.Ranks)
	for i := range n.eps {
		n.eps[i] = newEndpoint(n, i, cfg)
	}
	return n
}

// Cost returns the network's cost model.
func (n *Network) Cost() CostModel { return n.cfg.Cost }

// Ordered reports whether the network preserves per-pair message order.
func (n *Network) Ordered() bool { return n.cfg.Ordered }

// Ranks returns the number of endpoints.
func (n *Network) Ranks() int { return n.cfg.Ranks }

// Endpoint returns endpoint id.
func (n *Network) Endpoint(id int) *Endpoint {
	return n.eps[id]
}

// Close shuts the network down. It must be called only after every sender
// and every consumer (rank agent) has stopped. Messages still in flight are
// drained and discarded.
func (n *Network) Close() {
	n.once.Do(func() {
		for _, ep := range n.eps {
			ep.closeInput()
		}
		// Drain delivery queues so unordered-mode scramblers can flush and
		// exit even if no agent is consuming anymore.
		var drainers sync.WaitGroup
		for _, ep := range n.eps {
			drainers.Add(1)
			go func(ep *Endpoint) {
				defer drainers.Done()
				for range ep.in {
				}
			}(ep)
		}
		n.wg.Wait()
		for _, ep := range n.eps {
			close(ep.in)
		}
		drainers.Wait()
	})
}

// Endpoint is one rank's NIC.
type Endpoint struct {
	id  int
	net *Network
	cfg Config

	// inject serializes virtual-time injection at this NIC.
	inject vtime.Clock
	// deliver is the NIC's shared ingress lane: every arriving message
	// demands per-message overhead plus per-byte DMA time of it.
	deliver vtime.WorkLane

	// in is the delivery queue the rank's agent consumes.
	in chan *Message

	// scramble is the unordered-mode intake; a scrambler goroutine moves
	// messages from scramble to in, reordering within the window.
	scramble chan *Message

	mu      sync.Mutex
	nextSeq []uint64 // per-destination next sequence number
	closed  bool
}

func newEndpoint(n *Network, id int, cfg Config) *Endpoint {
	ep := &Endpoint{
		id:      id,
		net:     n,
		cfg:     cfg,
		in:      make(chan *Message, cfg.QueueDepth),
		nextSeq: make([]uint64, cfg.Ranks),
	}
	if !cfg.Ordered {
		ep.scramble = make(chan *Message, cfg.QueueDepth)
		n.wg.Add(1)
		go ep.scrambler(cfg.Seed + int64(id)*7919)
	}
	return ep
}

// ID returns the endpoint's rank id.
func (ep *Endpoint) ID() int { return ep.id }

// Cost returns the network's cost model.
func (ep *Endpoint) Cost() CostModel { return ep.cfg.Cost }

// Ordered reports whether the network preserves per-pair message order.
func (ep *Endpoint) Ordered() bool { return ep.cfg.Ordered }

// Ranks returns the number of endpoints in the network.
func (ep *Endpoint) Ranks() int { return ep.cfg.Ranks }

// Network returns the network this endpoint belongs to, giving telemetry
// access to the world-global traffic counters.
func (ep *Endpoint) Network() *Network { return ep.net }

// InjectClock exposes the endpoint's origin-side virtual clock (used by
// tests and the harness to read per-rank injection time).
func (ep *Endpoint) InjectClock() *vtime.Clock { return &ep.inject }

// DeliverLane exposes the endpoint's target-side ingress lane.
func (ep *Endpoint) DeliverLane() *vtime.WorkLane { return &ep.deliver }

// Send injects m into the network at virtual time now and returns the
// message's arrival time at the target NIC. simnet assigns m.Seq, m.SentAt
// and m.ArriveAt. Send never blocks for virtual time; it blocks only if the
// target's delivery queue is full (back-pressure).
func (ep *Endpoint) Send(now vtime.Time, m *Message) (vtime.Time, error) {
	if m.Dst < 0 || m.Dst >= ep.cfg.Ranks {
		return 0, fmt.Errorf("simnet: send to invalid rank %d (network has %d)", m.Dst, ep.cfg.Ranks)
	}
	m.Src = ep.id

	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return 0, fmt.Errorf("simnet: endpoint %d is closed", ep.id)
	}
	ep.nextSeq[m.Dst]++
	m.Seq = ep.nextSeq[m.Dst]
	ep.mu.Unlock()

	cost := ep.cfg.Cost
	_, sent := ep.inject.Reserve(now, cost.Inject(len(m.Payload)))
	m.SentAt = sent
	m.ArriveAt = sent + vtime.Time(cost.Wire(len(m.Payload)))

	return ep.transmit(m), nil
}

// SendNIC injects a NIC-generated control message (a hardware
// acknowledgement or get reply) at virtual time sentAt. Unlike Send it does
// not charge the origin CPU's injection overhead or gap: the NIC firmware
// produces the message, not the processor. Sequence numbers are still
// assigned so ordering layers see a consistent stream.
func (ep *Endpoint) SendNIC(sentAt vtime.Time, m *Message) (vtime.Time, error) {
	if m.Dst < 0 || m.Dst >= ep.cfg.Ranks {
		return 0, fmt.Errorf("simnet: send to invalid rank %d (network has %d)", m.Dst, ep.cfg.Ranks)
	}
	m.Src = ep.id

	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return 0, fmt.Errorf("simnet: endpoint %d is closed", ep.id)
	}
	ep.nextSeq[m.Dst]++
	m.Seq = ep.nextSeq[m.Dst]
	ep.mu.Unlock()

	m.SentAt = sentAt
	m.ArriveAt = sentAt + vtime.Time(ep.cfg.Cost.Wire(len(m.Payload)))

	return ep.transmit(m), nil
}

// transmit counts m against the traffic counters, runs it through the
// installed fault plan (if any) and enqueues the surviving copy or copies
// for delivery. It returns the arrival time the sender observes — the
// pre-fault arrival: real NICs do not learn that the wire dropped or
// delayed a frame.
func (ep *Endpoint) transmit(m *Message) vtime.Time {
	arrive := m.ArriveAt

	ep.net.Msgs.Inc()
	if m.Ops > 1 {
		ep.net.LogicalOps.Add(int64(m.Ops))
	} else {
		ep.net.LogicalOps.Inc()
	}
	ep.net.Bytes.Add(int64(len(m.Payload)))

	var dup *Message
	if plan := ep.net.faults.Load(); plan != nil {
		// A killed rank blackholes all traffic: messages it sends after the
		// kill vanish, and messages that would arrive while it is dead
		// vanish too. The sender still observes the pre-fault arrival time —
		// death is visible only through timeouts, never synchronously.
		if plan.rankDead(m.Src, m.SentAt) || plan.rankDead(m.Dst, m.ArriveAt) {
			ep.net.FaultsBlackholed.Inc()
			return arrive
		}
		m, dup = ep.net.injectFaults(plan, m)
		if m == nil {
			return arrive // dropped: the sender never learns
		}
	}

	dst := ep.net.eps[m.Dst]
	if ep.cfg.Ordered {
		dst.in <- m
		if dup != nil {
			dst.in <- dup
		}
	} else {
		dst.scramble <- m
		if dup != nil {
			dst.scramble <- dup
		}
	}
	return arrive
}

// Recv blocks until a message is delivered to this endpoint, returning
// false when the network has been closed and the queue drained.
func (ep *Endpoint) Recv() (*Message, bool) {
	m, ok := <-ep.in
	return m, ok
}

// TryRecv returns the next delivered message without blocking, or nil.
func (ep *Endpoint) TryRecv() *Message {
	select {
	case m := <-ep.in:
		return m
	default:
		return nil
	}
}

// Queue exposes the delivery channel for select-based agents.
func (ep *Endpoint) Queue() <-chan *Message { return ep.in }

// closeInput marks the endpoint closed for senders and, in unordered mode,
// closes the scramble intake so the scrambler can flush and exit.
func (ep *Endpoint) closeInput() {
	ep.mu.Lock()
	wasClosed := ep.closed
	ep.closed = true
	ep.mu.Unlock()
	if !wasClosed && ep.scramble != nil {
		close(ep.scramble)
	}
}

// scrambler implements unordered delivery: it buffers up to the reorder
// window of in-flight messages and releases them in deterministic-random
// order. Per-message delivery remains reliable; only ordering is lost.
func (ep *Endpoint) scrambler(seed int64) {
	defer ep.net.wg.Done()
	rng := rand.New(rand.NewSource(seed))
	window := ep.cfg.ReorderWindow
	var buf []*Message
	for {
		if len(buf) == 0 {
			m, ok := <-ep.scramble
			if !ok {
				return
			}
			buf = append(buf, m)
		}
		// Opportunistically gather more of the burst, up to the window.
		for len(buf) < window {
			select {
			case m, ok := <-ep.scramble:
				if !ok {
					ep.flush(rng, buf)
					return
				}
				buf = append(buf, m)
			default:
				goto release
			}
		}
	release:
		i := rng.Intn(len(buf))
		ep.in <- buf[i]
		buf[i] = buf[len(buf)-1]
		buf = buf[:len(buf)-1]
	}
}

// flush releases the remaining scramble buffer in random order at
// shutdown.
func (ep *Endpoint) flush(rng *rand.Rand, buf []*Message) {
	for len(buf) > 0 {
		i := rng.Intn(len(buf))
		ep.in <- buf[i]
		buf[i] = buf[len(buf)-1]
		buf = buf[:len(buf)-1]
	}
}
