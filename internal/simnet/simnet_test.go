package simnet

import (
	"testing"
	"time"

	"mpi3rma/internal/vtime"
)

func TestOrderedDeliveryPreservesPairOrder(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	src, dst := n.Endpoint(0), n.Endpoint(1)
	const msgs = 200
	for i := 0; i < msgs; i++ {
		m := &Message{Dst: 1, Kind: 99}
		m.Hdr[0] = uint64(i)
		if _, err := src.Send(0, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		m, ok := dst.Recv()
		if !ok {
			t.Fatal("channel closed early")
		}
		if int(m.Hdr[0]) != i {
			t.Fatalf("message %d arrived out of order (got %d)", i, m.Hdr[0])
		}
		if m.Seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", m.Seq, i+1)
		}
	}
}

func TestUnorderedDeliveryScrambles(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: false, Seed: 1})
	defer n.Close()
	src, dst := n.Endpoint(0), n.Endpoint(1)
	const msgs = 200
	for i := 0; i < msgs; i++ {
		m := &Message{Dst: 1}
		m.Hdr[0] = uint64(i)
		if _, err := src.Send(0, m); err != nil {
			t.Fatal(err)
		}
	}
	inOrder := true
	seen := make(map[uint64]bool)
	for i := 0; i < msgs; i++ {
		m, ok := dst.Recv()
		if !ok {
			t.Fatal("channel closed early")
		}
		if int(m.Hdr[0]) != i {
			inOrder = false
		}
		if seen[m.Hdr[0]] {
			t.Fatalf("duplicate delivery of %d", m.Hdr[0])
		}
		seen[m.Hdr[0]] = true
	}
	if inOrder {
		t.Fatal("unordered network delivered 200 messages in exact order")
	}
	if len(seen) != msgs {
		t.Fatalf("delivered %d distinct messages, want %d (reliability)", len(seen), msgs)
	}
}

func TestUnorderedReliableUnderLoad(t *testing.T) {
	n := New(Config{Ranks: 3, Ordered: false, Seed: 2})
	defer n.Close()
	const per = 500
	done := make(chan int, 2)
	for s := 0; s < 2; s++ {
		go func(s int) {
			ep := n.Endpoint(s)
			for i := 0; i < per; i++ {
				m := &Message{Dst: 2}
				if _, err := ep.Send(0, m); err != nil {
					t.Errorf("send: %v", err)
				}
			}
			done <- s
		}(s)
	}
	got := 0
	dst := n.Endpoint(2)
	for got < 2*per {
		if _, ok := dst.Recv(); !ok {
			t.Fatal("closed early")
		}
		got++
	}
	<-done
	<-done
}

func TestVirtualTimesMonotonePerSender(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	src := n.Endpoint(0)
	var prevSent, prevArrive vtime.Time
	for i := 0; i < 50; i++ {
		m := &Message{Dst: 1, Payload: make([]byte, 64)}
		arrive, err := src.Send(0, m)
		if err != nil {
			t.Fatal(err)
		}
		if m.SentAt <= prevSent {
			t.Fatalf("SentAt not strictly increasing: %d then %d", prevSent, m.SentAt)
		}
		if arrive != m.ArriveAt || arrive <= prevArrive {
			t.Fatalf("ArriveAt inconsistent")
		}
		if m.ArriveAt-m.SentAt != vtime.Time(n.Cost().Wire(64)) {
			t.Fatalf("wire time = %d, want %v", m.ArriveAt-m.SentAt, n.Cost().Wire(64))
		}
		prevSent, prevArrive = m.SentAt, m.ArriveAt
	}
	// Drain.
	for i := 0; i < 50; i++ {
		n.Endpoint(1).Recv()
	}
}

func TestSendNICSkipsInjection(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	src := n.Endpoint(0)
	before := src.InjectClock().Now()
	m := &Message{Dst: 1}
	if _, err := src.SendNIC(1000, m); err != nil {
		t.Fatal(err)
	}
	if src.InjectClock().Now() != before {
		t.Fatal("SendNIC charged the inject clock")
	}
	if m.SentAt != 1000 {
		t.Fatalf("SentAt = %d, want 1000", m.SentAt)
	}
	n.Endpoint(1).Recv()
}

func TestSendValidation(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	if _, err := n.Endpoint(0).Send(0, &Message{Dst: 5}); err == nil {
		t.Fatal("send to invalid rank should fail")
	}
	if _, err := n.Endpoint(0).SendNIC(0, &Message{Dst: -1}); err == nil {
		t.Fatal("SendNIC to invalid rank should fail")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	n.Close()
	if _, err := n.Endpoint(0).Send(0, &Message{Dst: 1}); err == nil {
		t.Fatal("send on closed network should fail")
	}
}

func TestFaultPlanDropsMessages(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	n.SetFaults(&FaultPlan{
		Seed:  7,
		Links: map[LinkKey]LinkFaults{{Src: 0, Dst: 1}: {Drop: 1}},
	})
	src, dst := n.Endpoint(0), n.Endpoint(1)
	src.Send(0, &Message{Dst: 1, Kind: 7})
	// The reverse link has no faults: deliveries there still work.
	dst.Send(0, &Message{Dst: 0, Kind: 8})
	m, ok := n.Endpoint(0).Recv()
	if !ok || m.Kind != 8 {
		t.Fatalf("got kind %d, want the undropped 8", m.Kind)
	}
	if got := n.FaultsDropped.Value(); got != 1 {
		t.Fatalf("FaultsDropped = %d, want 1", got)
	}
	select {
	case m := <-dstIn(dst):
		t.Fatalf("dropped message delivered anyway: kind %d", m.Kind)
	default:
	}
}

// dstIn exposes the ordered inbox for the non-delivery assertion above.
func dstIn(ep *Endpoint) chan *Message { return ep.in }

func TestFaultPlanDeterministic(t *testing.T) {
	run := func() (dropped, dup int64) {
		n := New(Config{Ranks: 2, Ordered: true})
		defer n.Close()
		n.SetFaults(&FaultPlan{Seed: 42, Default: LinkFaults{Drop: 0.3, Dup: 0.3}})
		for i := 0; i < 200; i++ {
			n.Endpoint(0).Send(0, &Message{Dst: 1, Payload: []byte{byte(i)}})
		}
		return n.FaultsDropped.Value(), n.FaultsDuplicated.Value()
	}
	d1, u1 := run()
	d2, u2 := run()
	if d1 != d2 || u1 != u2 {
		t.Fatalf("same seed diverged: drops %d/%d dups %d/%d", d1, d2, u1, u2)
	}
	if d1 == 0 || u1 == 0 {
		t.Fatalf("30%% rates over 200 sends injected nothing: drops=%d dups=%d", d1, u1)
	}
}

func TestFaultPlanPartition(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	n.SetFaults(&FaultPlan{Partitions: []Partition{{A: 0, B: 1, From: 0, Until: 1_000_000}}})
	n.Endpoint(0).Send(0, &Message{Dst: 1, Kind: 7})
	n.Endpoint(0).Send(2_000_000, &Message{Dst: 1, Kind: 9})
	m, ok := n.Endpoint(1).Recv()
	if !ok || m.Kind != 9 {
		t.Fatalf("got kind %d, want the post-partition 9", m.Kind)
	}
	if got := n.FaultsDropped.Value(); got != 1 {
		t.Fatalf("FaultsDropped = %d, want 1", got)
	}
}

func TestFaultPlanCorruptAndDelay(t *testing.T) {
	orig := []byte{1, 2, 3, 4}
	send := func(plan *FaultPlan) (*Network, *Message) {
		n := New(Config{Ranks: 2, Ordered: true})
		t.Cleanup(n.Close)
		if plan != nil {
			n.SetFaults(plan)
		}
		n.Endpoint(0).Send(0, &Message{Dst: 1, Payload: append([]byte(nil), orig...)})
		m, ok := n.Endpoint(1).Recv()
		if !ok {
			t.Fatal("no delivery")
		}
		return n, m
	}
	_, base := send(nil)
	n, m := send(&FaultPlan{
		Seed:    3,
		Default: LinkFaults{Corrupt: 1, Delay: 1, DelayBy: 1000},
	})
	same := true
	for i := range orig {
		if m.Payload[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Fatal("payload not corrupted")
	}
	if m.ArriveAt != base.ArriveAt+1000 {
		t.Fatalf("ArriveAt = %d, want base %d + DelayBy 1000", m.ArriveAt, base.ArriveAt)
	}
	if n.FaultsCorrupted.Value() != 1 || n.FaultsDelayed.Value() != 1 {
		t.Fatalf("corrupted=%d delayed=%d, want 1/1", n.FaultsCorrupted.Value(), n.FaultsDelayed.Value())
	}
}

// TestTransmitZeroAllocsWithoutFaults pins the acceptance criterion that
// the fault/relay machinery costs the default configuration nothing: with
// no fault plan installed, the transmit hot path performs zero
// allocations (one atomic nil-check and out).
func TestTransmitZeroAllocsWithoutFaults(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	src, dst := n.Endpoint(0), n.Endpoint(1)
	m := &Message{Dst: 1}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := src.Send(0, m); err != nil {
			t.Fatal(err)
		}
		dst.Recv()
	})
	if allocs != 0 {
		t.Fatalf("transmit with no fault plan allocated %.1f/op, want 0", allocs)
	}
}

func TestCounters(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	n.Endpoint(0).Send(0, &Message{Dst: 1, Payload: make([]byte, 100)})
	n.Endpoint(0).Send(0, &Message{Dst: 1, Payload: make([]byte, 28)})
	if n.Msgs.Value() != 2 || n.Bytes.Value() != 128 {
		t.Fatalf("msgs=%d bytes=%d, want 2/128", n.Msgs.Value(), n.Bytes.Value())
	}
	n.Endpoint(1).Recv()
	n.Endpoint(1).Recv()
}

func TestCostModel(t *testing.T) {
	c := DefaultCost()
	if c.Wire(0) != c.Latency {
		t.Error("zero-byte wire time should be pure latency")
	}
	if c.Wire(1024)-c.Wire(0) != c.PerKB {
		t.Error("1KB should cost exactly PerKB over latency")
	}
	if c.Inject(0) != c.Overhead+c.Gap {
		t.Error("zero-byte inject should be o+g")
	}
	if c.Deliver(2048) != c.DeliverOverhead+2*c.PerKB {
		t.Error("2KB deliver cost wrong")
	}
	// Sub-KB costs must not truncate to zero when PerKB is large enough.
	if c.Wire(512)-c.Latency == 0 {
		t.Error("512B wire cost truncated to zero")
	}
}

func TestCloseIdempotent(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: false, Seed: 3})
	n.Endpoint(0).Send(0, &Message{Dst: 1})
	n.Close()
	n.Close() // must not panic or deadlock
}

func TestTryRecvAndQueue(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	dst := n.Endpoint(1)
	if m := dst.TryRecv(); m != nil {
		t.Fatal("TryRecv on empty queue should return nil")
	}
	n.Endpoint(0).Send(0, &Message{Dst: 1})
	deadline := time.After(time.Second)
	for {
		if m := dst.TryRecv(); m != nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("message never delivered")
		default:
		}
	}
}

func TestRankKillBlackholesBothDirections(t *testing.T) {
	n := New(Config{Ranks: 3, Ordered: true})
	defer n.Close()
	n.SetFaults(&FaultPlan{RankKills: []RankKill{{Rank: 1, At: 1_000_000}}})

	// Before the kill: traffic to and from rank 1 flows.
	n.Endpoint(0).Send(0, &Message{Dst: 1, Kind: 7})
	if m, ok := n.Endpoint(1).Recv(); !ok || m.Kind != 7 {
		t.Fatalf("pre-kill delivery failed")
	}
	// After the kill: sends from the dead rank vanish, sends to it vanish,
	// and the senders still observe normal (pre-fault) arrival times.
	if at, err := n.Endpoint(1).Send(2_000_000, &Message{Dst: 0, Kind: 8}); err != nil || at == 0 {
		t.Fatalf("dead rank's send must not error synchronously: at=%d err=%v", at, err)
	}
	if at, err := n.Endpoint(0).Send(2_000_000, &Message{Dst: 1, Kind: 9}); err != nil || at == 0 {
		t.Fatalf("send to dead rank must not error synchronously: at=%d err=%v", at, err)
	}
	// Traffic between survivors is unaffected.
	n.Endpoint(0).Send(2_000_000, &Message{Dst: 2, Kind: 10})
	if m, ok := n.Endpoint(2).Recv(); !ok || m.Kind != 10 {
		t.Fatalf("survivor-to-survivor delivery broken")
	}
	if got := n.FaultsBlackholed.Value(); got != 2 {
		t.Fatalf("FaultsBlackholed = %d, want 2", got)
	}
	select {
	case m := <-dstIn(n.Endpoint(0)):
		t.Fatalf("blackholed message delivered anyway: kind %d", m.Kind)
	default:
	}
	if !n.RankDeadAt(1, 2_000_000) || n.RankDeadAt(1, 0) || n.RankDeadAt(0, 2_000_000) {
		t.Fatalf("RankDeadAt ground truth wrong")
	}
}

func TestRankKillRestartWindow(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	n.SetFaults(&FaultPlan{RankKills: []RankKill{{Rank: 1, At: 100, RestartAt: 1_000_000}}})

	// Arrival inside [At, RestartAt) is blackholed even if sent before At:
	// the frame lands on a dead NIC.
	n.Endpoint(0).Send(0, &Message{Dst: 1, Kind: 1})
	// After the restart the rank's traffic flows again.
	n.Endpoint(0).Send(2_000_000, &Message{Dst: 1, Kind: 2})
	if m, ok := n.Endpoint(1).Recv(); !ok || m.Kind != 2 {
		t.Fatalf("post-restart delivery failed (got kind %d)", m.Kind)
	}
	if got := n.FaultsBlackholed.Value(); got != 1 {
		t.Fatalf("FaultsBlackholed = %d, want 1", got)
	}
	if n.RankDeadAt(1, 2_000_000) {
		t.Fatalf("rank should be alive after RestartAt")
	}
}
