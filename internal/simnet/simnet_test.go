package simnet

import (
	"testing"
	"time"

	"mpi3rma/internal/vtime"
)

func TestOrderedDeliveryPreservesPairOrder(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	src, dst := n.Endpoint(0), n.Endpoint(1)
	const msgs = 200
	for i := 0; i < msgs; i++ {
		m := &Message{Dst: 1, Kind: 99}
		m.Hdr[0] = uint64(i)
		if _, err := src.Send(0, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		m, ok := dst.Recv()
		if !ok {
			t.Fatal("channel closed early")
		}
		if int(m.Hdr[0]) != i {
			t.Fatalf("message %d arrived out of order (got %d)", i, m.Hdr[0])
		}
		if m.Seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", m.Seq, i+1)
		}
	}
}

func TestUnorderedDeliveryScrambles(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: false, Seed: 1})
	defer n.Close()
	src, dst := n.Endpoint(0), n.Endpoint(1)
	const msgs = 200
	for i := 0; i < msgs; i++ {
		m := &Message{Dst: 1}
		m.Hdr[0] = uint64(i)
		if _, err := src.Send(0, m); err != nil {
			t.Fatal(err)
		}
	}
	inOrder := true
	seen := make(map[uint64]bool)
	for i := 0; i < msgs; i++ {
		m, ok := dst.Recv()
		if !ok {
			t.Fatal("channel closed early")
		}
		if int(m.Hdr[0]) != i {
			inOrder = false
		}
		if seen[m.Hdr[0]] {
			t.Fatalf("duplicate delivery of %d", m.Hdr[0])
		}
		seen[m.Hdr[0]] = true
	}
	if inOrder {
		t.Fatal("unordered network delivered 200 messages in exact order")
	}
	if len(seen) != msgs {
		t.Fatalf("delivered %d distinct messages, want %d (reliability)", len(seen), msgs)
	}
}

func TestUnorderedReliableUnderLoad(t *testing.T) {
	n := New(Config{Ranks: 3, Ordered: false, Seed: 2})
	defer n.Close()
	const per = 500
	done := make(chan int, 2)
	for s := 0; s < 2; s++ {
		go func(s int) {
			ep := n.Endpoint(s)
			for i := 0; i < per; i++ {
				m := &Message{Dst: 2}
				if _, err := ep.Send(0, m); err != nil {
					t.Errorf("send: %v", err)
				}
			}
			done <- s
		}(s)
	}
	got := 0
	dst := n.Endpoint(2)
	for got < 2*per {
		if _, ok := dst.Recv(); !ok {
			t.Fatal("closed early")
		}
		got++
	}
	<-done
	<-done
}

func TestVirtualTimesMonotonePerSender(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	src := n.Endpoint(0)
	var prevSent, prevArrive vtime.Time
	for i := 0; i < 50; i++ {
		m := &Message{Dst: 1, Payload: make([]byte, 64)}
		arrive, err := src.Send(0, m)
		if err != nil {
			t.Fatal(err)
		}
		if m.SentAt <= prevSent {
			t.Fatalf("SentAt not strictly increasing: %d then %d", prevSent, m.SentAt)
		}
		if arrive != m.ArriveAt || arrive <= prevArrive {
			t.Fatalf("ArriveAt inconsistent")
		}
		if m.ArriveAt-m.SentAt != vtime.Time(n.Cost().Wire(64)) {
			t.Fatalf("wire time = %d, want %v", m.ArriveAt-m.SentAt, n.Cost().Wire(64))
		}
		prevSent, prevArrive = m.SentAt, m.ArriveAt
	}
	// Drain.
	for i := 0; i < 50; i++ {
		n.Endpoint(1).Recv()
	}
}

func TestSendNICSkipsInjection(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	src := n.Endpoint(0)
	before := src.InjectClock().Now()
	m := &Message{Dst: 1}
	if _, err := src.SendNIC(1000, m); err != nil {
		t.Fatal(err)
	}
	if src.InjectClock().Now() != before {
		t.Fatal("SendNIC charged the inject clock")
	}
	if m.SentAt != 1000 {
		t.Fatalf("SentAt = %d, want 1000", m.SentAt)
	}
	n.Endpoint(1).Recv()
}

func TestSendValidation(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	if _, err := n.Endpoint(0).Send(0, &Message{Dst: 5}); err == nil {
		t.Fatal("send to invalid rank should fail")
	}
	if _, err := n.Endpoint(0).SendNIC(0, &Message{Dst: -1}); err == nil {
		t.Fatal("SendNIC to invalid rank should fail")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	n.Close()
	if _, err := n.Endpoint(0).Send(0, &Message{Dst: 1}); err == nil {
		t.Fatal("send on closed network should fail")
	}
}

func TestTestHookDropsMessages(t *testing.T) {
	dropped := 0
	n := New(Config{
		Ranks:   2,
		Ordered: true,
		TestHook: func(m *Message) bool {
			if m.Kind == 7 {
				dropped++
				return false
			}
			return true
		},
	})
	defer n.Close()
	src, dst := n.Endpoint(0), n.Endpoint(1)
	src.Send(0, &Message{Dst: 1, Kind: 7})
	src.Send(0, &Message{Dst: 1, Kind: 8})
	m, ok := dst.Recv()
	if !ok || m.Kind != 8 {
		t.Fatalf("got kind %d, want the undropped 8", m.Kind)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestCounters(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	n.Endpoint(0).Send(0, &Message{Dst: 1, Payload: make([]byte, 100)})
	n.Endpoint(0).Send(0, &Message{Dst: 1, Payload: make([]byte, 28)})
	if n.Msgs.Value() != 2 || n.Bytes.Value() != 128 {
		t.Fatalf("msgs=%d bytes=%d, want 2/128", n.Msgs.Value(), n.Bytes.Value())
	}
	n.Endpoint(1).Recv()
	n.Endpoint(1).Recv()
}

func TestCostModel(t *testing.T) {
	c := DefaultCost()
	if c.Wire(0) != c.Latency {
		t.Error("zero-byte wire time should be pure latency")
	}
	if c.Wire(1024)-c.Wire(0) != c.PerKB {
		t.Error("1KB should cost exactly PerKB over latency")
	}
	if c.Inject(0) != c.Overhead+c.Gap {
		t.Error("zero-byte inject should be o+g")
	}
	if c.Deliver(2048) != c.DeliverOverhead+2*c.PerKB {
		t.Error("2KB deliver cost wrong")
	}
	// Sub-KB costs must not truncate to zero when PerKB is large enough.
	if c.Wire(512)-c.Latency == 0 {
		t.Error("512B wire cost truncated to zero")
	}
}

func TestCloseIdempotent(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: false, Seed: 3})
	n.Endpoint(0).Send(0, &Message{Dst: 1})
	n.Close()
	n.Close() // must not panic or deadlock
}

func TestTryRecvAndQueue(t *testing.T) {
	n := New(Config{Ranks: 2, Ordered: true})
	defer n.Close()
	dst := n.Endpoint(1)
	if m := dst.TryRecv(); m != nil {
		t.Fatal("TryRecv on empty queue should return nil")
	}
	n.Endpoint(0).Send(0, &Message{Dst: 1})
	deadline := time.After(time.Second)
	for {
		if m := dst.TryRecv(); m != nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("message never delivered")
		default:
		}
	}
}
