package simnet

import (
	"time"

	"mpi3rma/internal/vtime"
)

// Fault injection. A FaultPlan turns the lossless simulated wire into a
// misbehaving one: per-link drop/duplicate/delay/corrupt probabilities,
// one-shot partitions, and burst windows that override a link's fault
// rates for a span of virtual time. The plan is deterministic: every
// fault decision is a pure function of (plan seed, src, dst, wire
// sequence number), so a run that injects the same message sequence draws
// the same faults — no global rand, no cross-link coupling.
//
// simnet injects the faults; surviving delivery is somebody else's
// problem. The reliable-delivery relay in internal/portals retransmits
// dropped frames, rejects corrupted ones by checksum, and dedups
// duplicates, so layers above keep their exactly-once view of the wire.

// LinkKey names one directed (src, dst) link.
type LinkKey struct {
	Src, Dst int
}

// LinkFaults is one link's fault rates. All probabilities are in [0, 1]
// and evaluated independently per wire message, in the order drop,
// corrupt, delay, duplicate (a message can be both delayed and
// duplicated; a dropped message suffers nothing else).
type LinkFaults struct {
	// Drop is the probability a message vanishes on the wire.
	Drop float64
	// Dup is the probability the wire delivers a second copy.
	Dup float64
	// Corrupt is the probability one payload byte is flipped in flight.
	// Messages without payload cannot be corrupted.
	Corrupt float64
	// Delay is the probability a message's arrival is postponed by
	// DelayBy of virtual time.
	Delay float64
	// DelayBy is the extra virtual latency of a delayed message.
	DelayBy time.Duration
}

// active reports whether any fault rate is set.
func (f LinkFaults) active() bool {
	return f.Drop > 0 || f.Dup > 0 || f.Corrupt > 0 || f.Delay > 0
}

// Partition cuts the A<->B link pair (both directions) for a window of
// virtual time: every message whose send time falls inside [From, Until)
// is dropped. Until 0 means forever — a one-shot, permanent cut.
type Partition struct {
	A, B        int
	From, Until vtime.Time
}

func (p Partition) covers(src, dst int, at vtime.Time) bool {
	if !((src == p.A && dst == p.B) || (src == p.B && dst == p.A)) {
		return false
	}
	return at >= p.From && (p.Until == 0 || at < p.Until)
}

// RankKill schedules a whole-rank crash: from At on, every message the
// rank sends or would receive is silently blackholed — survivors learn of
// the death only through timeouts and retry-budget exhaustion, exactly as
// on a real cluster where the node stops answering. RestartAt 0 means the
// rank never comes back; a non-zero RestartAt models a kill/restart
// schedule (the rank's traffic flows again from RestartAt on, though any
// protocol state it lost stays lost — recovery is the layers' problem).
type RankKill struct {
	Rank          int
	At, RestartAt vtime.Time
}

// dead reports whether the kill covers virtual time at.
func (k RankKill) dead(at vtime.Time) bool {
	return at >= k.At && (k.RestartAt == 0 || at < k.RestartAt)
}

// Burst overrides one directed link's fault rates for a window of virtual
// time (e.g. "drop everything from rank 1 to rank 0 for the first
// 200µs"). Until 0 means forever.
type Burst struct {
	Link        LinkKey
	From, Until vtime.Time
	Faults      LinkFaults
}

func (b Burst) covers(src, dst int, at vtime.Time) bool {
	if b.Link.Src != src || b.Link.Dst != dst {
		return false
	}
	return at >= b.From && (b.Until == 0 || at < b.Until)
}

// FaultPlan is a deterministic, seeded description of how the network
// misbehaves. Install it with Network.SetFaults. The zero plan (no rates,
// no partitions, no bursts) injects nothing.
type FaultPlan struct {
	// Seed drives every fault decision. Two networks carrying the same
	// message sequence under the same seed inject identical faults.
	Seed int64
	// Default applies to every link without a Links override.
	Default LinkFaults
	// Links overrides the default per directed link.
	Links map[LinkKey]LinkFaults
	// Partitions cut link pairs for windows of virtual time.
	Partitions []Partition
	// Bursts override a link's rates for windows of virtual time.
	Bursts []Burst
	// RankKills schedules whole-rank crashes (and optional restarts).
	RankKills []RankKill
}

// rankDead reports whether the plan declares rank dead at virtual time at.
func (p *FaultPlan) rankDead(rank int, at vtime.Time) bool {
	for i := range p.RankKills {
		if p.RankKills[i].Rank == rank && p.RankKills[i].dead(at) {
			return true
		}
	}
	return false
}

// RankDeadAt reports whether the installed fault plan declares rank dead
// at virtual time at. This is the simulation's ground truth — the
// stand-in for a RAS daemon's out-of-band node-death notification — and
// is what lets failure detection above distinguish a dead rank from a
// merely broken link (see DESIGN.md §14 for the determinism caveat).
func (n *Network) RankDeadAt(rank int, at vtime.Time) bool {
	p := n.faults.Load()
	return p != nil && p.rankDead(rank, at)
}

// linkFaults resolves the effective rates for one message.
func (p *FaultPlan) linkFaults(src, dst int, at vtime.Time) LinkFaults {
	lf := p.Default
	if f, ok := p.Links[LinkKey{src, dst}]; ok {
		lf = f
	}
	for i := range p.Bursts {
		if p.Bursts[i].covers(src, dst, at) {
			lf = p.Bursts[i].Faults
		}
	}
	return lf
}

// SetFaults installs a fault plan on the network. The first non-nil
// install wins (so every rank of an SPMD program may pass the same plan);
// later calls are no-ops. Passing nil never clears an installed plan.
// With no plan installed the send path pays one atomic load and nothing
// else.
func (n *Network) SetFaults(plan *FaultPlan) {
	if plan == nil {
		return
	}
	n.faults.CompareAndSwap(nil, plan)
}

// Faults returns the installed fault plan, or nil.
func (n *Network) Faults() *FaultPlan { return n.faults.Load() }

// Salts separating the independent fault draws of one message.
const (
	saltDrop = iota + 1
	saltDup
	saltCorrupt
	saltDelay
	saltCorruptIdx
)

// faultHash is a splitmix64 finalizer over (seed, link, wire sequence,
// salt): deterministic, stateless, and cheap enough for the send path.
func faultHash(seed int64, src, dst int, seq uint64, salt uint64) uint64 {
	x := uint64(seed) ^ uint64(src)<<48 ^ uint64(dst)<<32 ^ seq ^ salt<<56
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// faultDraw returns a uniform draw in [0, 1) for one decision.
func faultDraw(seed int64, src, dst int, seq uint64, salt uint64) float64 {
	return float64(faultHash(seed, src, dst, seq, salt)>>11) / (1 << 53)
}

// injectFaults evaluates the plan against one outbound message, after the
// send/arrival times are stamped. It returns the message to deliver (nil
// if dropped — the sender never learns) and an optional duplicate to
// deliver as well. Corruption and duplication clone the message and copy
// the payload: the sender may retain the original bytes for
// retransmission, and the two delivered copies must not alias each other.
func (n *Network) injectFaults(p *FaultPlan, m *Message) (deliver, dup *Message) {
	for i := range p.Partitions {
		if p.Partitions[i].covers(m.Src, m.Dst, m.SentAt) {
			n.FaultsDropped.Inc()
			return nil, nil
		}
	}
	lf := p.linkFaults(m.Src, m.Dst, m.SentAt)
	if !lf.active() {
		return m, nil
	}
	if lf.Drop > 0 && faultDraw(p.Seed, m.Src, m.Dst, m.Seq, saltDrop) < lf.Drop {
		n.FaultsDropped.Inc()
		return nil, nil
	}
	if lf.Corrupt > 0 && len(m.Payload) > 0 &&
		faultDraw(p.Seed, m.Src, m.Dst, m.Seq, saltCorrupt) < lf.Corrupt {
		c := *m
		c.Payload = append([]byte(nil), m.Payload...)
		idx := faultHash(p.Seed, m.Src, m.Dst, m.Seq, saltCorruptIdx) % uint64(len(c.Payload))
		c.Payload[idx] ^= 0xff
		m = &c
		n.FaultsCorrupted.Inc()
	}
	if lf.Delay > 0 && faultDraw(p.Seed, m.Src, m.Dst, m.Seq, saltDelay) < lf.Delay {
		m.ArriveAt += vtime.Time(lf.DelayBy)
		n.FaultsDelayed.Inc()
	}
	if lf.Dup > 0 && faultDraw(p.Seed, m.Src, m.Dst, m.Seq, saltDup) < lf.Dup {
		c := *m
		c.Payload = append([]byte(nil), m.Payload...)
		// The copy takes one extra wire latency, as a misrouted-and-
		// replayed frame would.
		c.ArriveAt += vtime.Time(n.cfg.Cost.Latency)
		dup = &c
		n.FaultsDuplicated.Inc()
	}
	return m, dup
}
