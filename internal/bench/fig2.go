package bench

import (
	"fmt"
	gort "runtime"
	"sync"
	"time"

	"mpi3rma/internal/core"
	"mpi3rma/internal/datatype"
	"mpi3rma/internal/memsim"
	"mpi3rma/internal/runtime"
	"mpi3rma/internal/serializer"
)

// pollYield lets other goroutines run between Progress polls.
func pollYield() { gort.Gosched() }

// lockStats extracts the coarse-lock counters from an engine.
func lockStats(e *core.Engine) (grants, contended int64) {
	return e.LockStats()
}

// softAckTotal sums software acknowledgements across all ranks.
func softAckTotal(w *runtime.World) int64 {
	var total int64
	for r := 0; r < w.Size(); r++ {
		total += w.Proc(r).NIC().SoftAcks.Value()
	}
	return total
}

// Fig2Series is one legend entry of Figure 2.
type Fig2Series struct {
	// Name is the legend label.
	Name string
	// Attrs are the per-put attributes (AttrBlocking is always added:
	// "The Blocking attribute is always set in this example to use single
	// call RMA update").
	Attrs core.Attr
	// Mech is the target's atomicity serializer.
	Mech serializer.Mechanism
}

// Fig2SeriesSet is the paper's legend, in the paper's order.
var Fig2SeriesSet = []Fig2Series{
	{Name: "no attributes", Attrs: core.AttrNone, Mech: serializer.MechThread},
	{Name: "ordering", Attrs: core.AttrOrdering, Mech: serializer.MechThread},
	{Name: "remote complete", Attrs: core.AttrRemoteComplete, Mech: serializer.MechThread},
	{Name: "atomicity + coarse lock", Attrs: core.AttrAtomic, Mech: serializer.MechCoarseLock},
	{Name: "atomicity + thread serializer", Attrs: core.AttrAtomic, Mech: serializer.MechThread},
}

// PutsCompleteConfig parameterizes one cell of the Figure 2 family of
// experiments (also reused by E3, E4, E5, E8).
type PutsCompleteConfig struct {
	// Origins is the number of concurrently putting ranks (the target is
	// one additional rank, rank 0).
	Origins int
	// Puts is the number of blocking puts per origin.
	Puts int
	// Size is the payload per put in bytes.
	Size int
	// Attrs are the per-put attributes (AttrBlocking is added).
	Attrs core.Attr
	// Mech is the atomicity mechanism configured at every rank.
	Mech serializer.Mechanism
	// Unordered selects an unordered network (E3).
	Unordered bool
	// SoftwareAcks disables hardware acknowledgement generation (E4).
	SoftwareAcks bool
	// NonCoherentTarget gives rank 0 an NEC-SX-style non-coherent memory
	// (E5).
	NonCoherentTarget bool
	// TargetPolls models, for MechProgress, how often the target enters
	// the library: deferred atomic operations apply at the next multiple
	// of this virtual interval (required for MechProgress cells, E8).
	TargetPolls time.Duration
	// NonBlocking issues the puts without AttrBlocking (E13): completion
	// is established only by the final Complete.
	NonBlocking bool
	// NotifyPuts adds AttrNotify to every put (E13): each application is
	// reported on the delivery counter, feeding Complete's fast path.
	NotifyPuts bool
	// BatchOps enables origin-side operation batching of that many ops
	// per aggregate (E13); 0 leaves batching off.
	BatchOps int
	// ProbeCompletion forces Complete's probe round-trip even when
	// delivery counters could answer locally (E13 A/B).
	ProbeCompletion bool
	// DisjointSlots exposes Origins*Size bytes at rank 0 and gives each
	// origin its own Size-byte slot at displacement (rank-1)*Size (E14):
	// disjoint target ranges a sharded target can apply in parallel.
	DisjointSlots bool
	// ApplyShards/ApplyWorkers configure rank 0's sharded apply engine
	// (E14); zero keeps the serial target.
	ApplyShards, ApplyWorkers int
	// ApplyPerKB overrides the target's per-KB apply cost (0 = engine
	// default), letting E14 model a memory-bandwidth-bound target.
	ApplyPerKB time.Duration
	// WorldConfig hooks further runtime configuration (nil = none).
	WorldConfig func(*runtime.Config)
}

// PutsCompleteOutcome reports one cell's measurements and counters.
type PutsCompleteOutcome struct {
	Row Row
	// Msgs and Bytes are total network traffic.
	Msgs, Bytes int64
	// LockGrants and LockContended describe the coarse lock, if used.
	LockGrants, LockContended int64
	// SoftAcks counts software acknowledgements.
	SoftAcks int64
	// TargetStaleReads and TargetInvalidations describe the non-coherent
	// target's cache behaviour, if used.
	TargetStaleReads, TargetInvalidations int64
	// TargetFences counts explicit memory fences at the target.
	TargetFences int64
	// HeldOps counts ordered operations buffered out-of-order.
	HeldOps int64
	// LogicalOps counts operations carried by the wire messages (> Msgs
	// when aggregation is on).
	LogicalOps int64
	// Batches, Notifies and FastPaths describe the batching/notified-
	// completion machinery, summed over the origins.
	Batches, Notifies, FastPaths int64
	// Retries, RetransmitBytes, DupDropped and CorruptRejected describe
	// the reliable-delivery relay, non-zero only when a fault plan or
	// retry policy is installed via WorldConfig.
	Retries, RetransmitBytes, DupDropped, CorruptRejected int64
	// FaultsInjected totals the drops, duplicates, delays and corruptions
	// the fault plan injected.
	FaultsInjected int64
	// Telemetry is the cell's merged metrics/trace sidecar, non-nil only
	// when harness telemetry is on (SetTelemetry).
	Telemetry *TelemetrySummary
	// Verified is false if the final target memory did not contain bytes
	// from one of the origins (every put targets the same region, so the
	// last writer wins — any origin's fill value is legal).
	Verified bool
}

// RunPutsComplete executes one cell: cfg.Origins ranks each issue
// cfg.Puts blocking puts of cfg.Size bytes to the *same overlapping
// region* of rank 0 ("seven MPI processes concurrently do 100 puts to
// overlapping memory regions on process 0"), then issue one
// Complete(rank 0). The reported times span first put to Complete return,
// maximized over origins.
func RunPutsComplete(cfg PutsCompleteConfig) PutsCompleteOutcome {
	ranks := cfg.Origins + 1
	wcfg := runtime.Config{
		Ranks:        ranks,
		UnorderedNet: cfg.Unordered,
		SoftwareAcks: cfg.SoftwareAcks,
		Seed:         42,
	}
	if cfg.NonCoherentTarget {
		wcfg.Coherence = func(rank int) memsim.Coherence {
			if rank == 0 {
				return memsim.NonCoherentWriteThrough
			}
			return memsim.Coherent
		}
	}
	if cfg.WorldConfig != nil {
		cfg.WorldConfig(&wcfg)
	}
	w := runtime.NewWorld(wcfg)
	defer w.Close()

	attrs := cfg.Attrs
	if !cfg.NonBlocking {
		attrs |= core.AttrBlocking
	}
	if cfg.NotifyPuts {
		attrs |= core.AttrNotify
	}
	var meas measure
	var outMu sync.Mutex
	out := PutsCompleteOutcome{Verified: true}
	col := newCollector()

	exposeSize := cfg.Size
	if cfg.DisjointSlots {
		exposeSize = cfg.Origins * cfg.Size
	}
	err := w.Run(func(p *runtime.Proc) {
		eopts := core.Options{
			Atomicity:       cfg.Mech,
			ProgressQuantum: cfg.TargetPolls,
			BatchOps:        cfg.BatchOps,
			ProbeCompletion: cfg.ProbeCompletion,
			ApplyPerKB:      cfg.ApplyPerKB,
		}
		if p.Rank() == 0 {
			eopts.ApplyShards = cfg.ApplyShards
			eopts.ApplyWorkers = cfg.ApplyWorkers
		}
		e := core.Attach(p, eopts)
		col.attach(p.Rank(), e)
		comm := p.Comm()
		if p.Rank() == 0 {
			tm, region := e.ExposeNew(exposeSize)
			enc := tm.Encode()
			for r := 1; r < ranks; r++ {
				p.Send(r, 0, enc)
			}
			if cfg.Mech == serializer.MechProgress {
				// Drain deferred atomic operations until every origin's
				// ops are applied; the virtual cost of infrequent polling
				// is modelled by the engine's ProgressQuantum, so this
				// real-time loop only provides liveness.
				expected := int64(cfg.Origins * cfg.Puts)
				for e.OpsApplied.Value() < expected {
					e.Progress()
					pollYield()
				}
			}
			p.Barrier()
			got := p.Mem().Snapshot(region.Offset, exposeSize)
			if cfg.DisjointSlots {
				// Validate: each origin's slot holds exactly its fill byte.
				for r := 1; r <= cfg.Origins; r++ {
					slot := got[(r-1)*cfg.Size : r*cfg.Size]
					for _, b := range slot {
						if b != byte(r) {
							out.Verified = false
							break
						}
					}
				}
			} else {
				// Validate: the region holds some origin's fill byte (every
				// put targets the same region, so the last writer wins).
				val := got[0]
				okByte := val >= 1 && int(val) <= cfg.Origins
				for _, b := range got {
					if b != val {
						okByte = false
						break
					}
				}
				if !okByte {
					out.Verified = false
				}
			}
			out.TargetStaleReads = p.Mem().StaleReads.Value()
			out.TargetInvalidations = p.Mem().Invalidates.Value()
			out.TargetFences = p.Mem().Fences.Value()
			out.LockGrants, out.LockContended = lockStats(e)
			out.HeldOps = e.HeldOps.Value()
			return
		}
		enc, _ := p.Recv(0, 0)
		tm, err := core.DecodeTargetMem(enc)
		if err != nil {
			panic(err)
		}
		src := p.Alloc(cfg.Size)
		fill := make([]byte, cfg.Size)
		for i := range fill {
			fill[i] = byte(p.Rank())
		}
		p.WriteLocal(src, 0, fill)

		tdisp := 0
		if cfg.DisjointSlots {
			tdisp = (p.Rank() - 1) * cfg.Size
		}
		startVT := p.Now()
		startWall := time.Now()
		for i := 0; i < cfg.Puts; i++ {
			if _, err := e.Put(src, cfg.Size, datatype.Byte, tm, tdisp, cfg.Size, datatype.Byte, 0, comm, attrs); err != nil {
				panic(err)
			}
		}
		if err := e.Complete(comm, 0); err != nil {
			panic(err)
		}
		meas.record(time.Since(startWall), p.Now()-startVT)
		outMu.Lock()
		out.Batches += e.Batches.Value()
		out.Notifies += e.Notifies.Value()
		out.FastPaths += e.FastPaths.Value()
		outMu.Unlock()
		p.Barrier()
	})
	if err != nil {
		panic(err)
	}
	out.Row = meas.row("", cfg.Size)
	out.Msgs = w.Net().Msgs.Value()
	out.Bytes = w.Net().Bytes.Value()
	out.LogicalOps = w.Net().LogicalOps.Value()
	out.SoftAcks = softAckTotal(w)
	out.Retries = w.Net().Retries.Value()
	out.RetransmitBytes = w.Net().RetransmitBytes.Value()
	out.DupDropped = w.Net().DupDropped.Value()
	out.CorruptRejected = w.Net().CorruptRejected.Value()
	out.FaultsInjected = w.Net().FaultsDropped.Value() + w.Net().FaultsDuplicated.Value() +
		w.Net().FaultsDelayed.Value() + w.Net().FaultsCorrupted.Value()
	out.Telemetry = col.summary()
	return out
}

// RunFig2 sweeps the full Figure 2 grid.
func RunFig2() Result {
	res := Result{
		Name:  "fig2",
		Title: "Figure 2: cost of each RMA attribute (100 puts + 1 complete, 7 origins)",
	}
	for _, s := range Fig2SeriesSet {
		res.SeriesOrder = append(res.SeriesOrder, s.Name)
		for _, size := range Fig2Sizes {
			out := RunPutsComplete(PutsCompleteConfig{
				Origins: Fig2Origins,
				Puts:    Fig2Puts,
				Size:    size,
				Attrs:   s.Attrs,
				Mech:    s.Mech,
			})
			row := out.Row
			row.Series = s.Name
			row.Extra["msgs"] = float64(out.Msgs)
			row.Extra["lock_grants"] = float64(out.LockGrants)
			if !out.Verified {
				res.Notef("VERIFY FAILED: series %q size %d left inconsistent target memory", s.Name, size)
			}
			res.absorbTelemetry(out.Telemetry)
			res.Add(row)
		}
	}
	res.Notes = append(res.Notes, fig2ShapeNotes(&res)...)
	res.noteTelemetry()
	return res
}

// fig2ShapeNotes checks the paper's qualitative claims on the model-time
// series and reports pass/fail notes.
func fig2ShapeNotes(res *Result) []string {
	var notes []string
	mean := func(series string) float64 {
		rows := res.SeriesRows(series)
		if len(rows) == 0 {
			return 0
		}
		var sum float64
		for _, r := range rows {
			sum += r.ModelUS
		}
		return sum / float64(len(rows))
	}
	none, ord := mean("no attributes"), mean("ordering")
	rc := mean("remote complete")
	thread := mean("atomicity + thread serializer")
	coarse := mean("atomicity + coarse lock")
	check := func(ok bool, format string, args ...any) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		notes = append(notes, fmt.Sprintf(status+": "+format, args...))
	}
	check(ord <= none*1.05, "ordering is free on an ordered network (%.1fus vs %.1fus)", ord, none)
	check(thread < coarse/2, "thread serializer ≪ coarse lock (%.1fus vs %.1fus)", thread, coarse)
	check(coarse > none*2, "coarse lock pays a significant penalty over no attributes (%.1fus vs %.1fus)", coarse, none)
	check(rc > none, "remote completion costs more than local completion (%.1fus vs %.1fus)", rc, none)
	// The paper's curves rise with payload size.
	first := func(series string) float64 {
		rows := res.SeriesRows(series)
		if len(rows) == 0 {
			return 0
		}
		return rows[0].ModelUS
	}
	last := func(series string) float64 {
		rows := res.SeriesRows(series)
		if len(rows) == 0 {
			return 0
		}
		return rows[len(rows)-1].ModelUS
	}
	check(last("no attributes") > first("no attributes")*1.5,
		"cost grows with payload size (%.1fus at %dB vs %.1fus at %dB)",
		first("no attributes"), Fig2Sizes[0], last("no attributes"), Fig2Sizes[len(Fig2Sizes)-1])
	return notes
}
