package bench

import (
	"strings"
	"testing"

	"mpi3rma/internal/core"
	"mpi3rma/internal/serializer"
)

// fakeResult builds a small result for printer tests.
func fakeResult() Result {
	return Result{
		Name:        "fake",
		Title:       "Fake experiment",
		SeriesOrder: []string{"alpha", "beta"},
		Rows: []Row{
			{Series: "alpha", Size: 8, WallNS: 1000, ModelUS: 1.5, Extra: map[string]float64{"msgs": 7}},
			{Series: "alpha", Size: 16, WallNS: 2000, ModelUS: 2.5, Extra: map[string]float64{"msgs": 9}},
			{Series: "beta", Size: 8, WallNS: 1500, ModelUS: 9.5, Extra: map[string]float64{}},
		},
		Notes: []string{"a note"},
	}
}

func TestWriteTable(t *testing.T) {
	var sb strings.Builder
	WriteTable(&sb, fakeResult())
	out := sb.String()
	for _, want := range []string{"Fake experiment", "alpha", "beta", "msgs", "a note", "1.50", "9.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	WriteCSV(&sb, fakeResult())
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "experiment,series,size,model_us,wall_ns") {
		t.Errorf("CSV header %q", lines[0])
	}
	if !strings.Contains(lines[1], `fake,"alpha",8,1.500,1000`) {
		t.Errorf("CSV row %q", lines[1])
	}
}

func TestWritePlot(t *testing.T) {
	var sb strings.Builder
	WritePlot(&sb, fakeResult())
	out := sb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "#") {
		t.Errorf("plot output:\n%s", out)
	}
	// Longer bar for the slower series.
	alphaBar := strings.Count(strings.Split(out, "\n")[1], "#")
	betaBar := strings.Count(strings.Split(out, "\n")[2], "#")
	if betaBar <= alphaBar {
		t.Errorf("beta bar (%d) should exceed alpha bar (%d)", betaBar, alphaBar)
	}
}

func TestSeriesRowsAndSeriesOf(t *testing.T) {
	res := fakeResult()
	if got := res.SeriesRows("alpha"); len(got) != 2 {
		t.Errorf("alpha rows = %d", len(got))
	}
	res.SeriesOrder = nil
	if got := seriesOf(res); len(got) != 2 || got[0] != "alpha" {
		t.Errorf("seriesOf fallback = %v", got)
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, name := range Names() {
		if name == "fig2" || name == "fig1" {
			continue // too slow to run here; covered below and elsewhere
		}
	}
	if _, ok := ByName("nonsense"); ok {
		t.Error("ByName accepted an unknown id")
	}
}

// TestSmallRunnersExecute runs reduced versions of the table-producing
// experiments end to end (the full-size runs live in cmd/rmabench).
func TestSmallRunnersExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runners in -short mode")
	}
	t.Run("e3-cell", func(t *testing.T) {
		out := RunPutsComplete(PutsCompleteConfig{
			Origins: 2, Puts: 20, Size: 32,
			Attrs: core.AttrOrdering, Mech: serializer.MechThread, Unordered: true,
		})
		if !out.Verified || out.Row.ModelUS <= 0 {
			t.Errorf("e3 cell: verified=%v model=%v", out.Verified, out.Row.ModelUS)
		}
	})
	t.Run("e5-cell", func(t *testing.T) {
		row := runE5Cell(64, true)
		if row.Extra["stale_reads"] == 0 {
			t.Error("non-coherent cell should observe a stale read")
		}
		if row.Extra["lines_invalidated"] == 0 {
			t.Error("non-coherent cell should invalidate cache lines")
		}
	})
	t.Run("fig1-cell", func(t *testing.T) {
		row := runFig1Cell("mpi2 fence epoch", 64, 3)
		if row.ModelUS <= 0 {
			t.Errorf("fence epoch model time %v", row.ModelUS)
		}
		putRow := runFig1Cell("strawman blocking put", 64, 3)
		if putRow.ModelUS >= row.ModelUS {
			t.Errorf("strawman put (%v) should be cheaper than a fence epoch (%v)", putRow.ModelUS, row.ModelUS)
		}
	})
	t.Run("e7-cell", func(t *testing.T) {
		row := runE7Cell("gasnet contiguous put", 64, 3)
		put := runE7Cell("strawman contiguous put", 64, 3)
		if row.ModelUS <= put.ModelUS {
			t.Errorf("AM-mediated gasnet put (%v) should cost more than a local-complete strawman put (%v)", row.ModelUS, put.ModelUS)
		}
	})
	t.Run("e9-cell", func(t *testing.T) {
		row := runE9Cell("contiguous to big-endian target", 16, 3)
		if row.ModelUS <= 0 {
			t.Errorf("model time %v", row.ModelUS)
		}
	})
	t.Run("e10-cell", func(t *testing.T) {
		loop := runE10Cell("loop Complete(r) over ranks", 4, 5)
		all := runE10Cell("Complete(ALL_RANKS)", 4, 5)
		coll := runE10Cell("CompleteCollective", 4, 5)
		if loop.ModelUS <= 0 || all.ModelUS <= 0 || coll.ModelUS <= 0 {
			t.Error("completion cells did not run")
		}
		if coll.ModelUS >= all.ModelUS {
			t.Errorf("collective (%v) should beat ALL_RANKS (%v): prior knowledge replaces n² probes with one count exchange", coll.ModelUS, all.ModelUS)
		}
	})
}

// TestE12ShapeInvariants asserts the Figure 2 conclusions survive 4x
// calibration changes (the repository's central robustness claim).
func TestE12ShapeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep in -short mode")
	}
	res := RunE12()
	for _, note := range res.Notes {
		if strings.HasPrefix(note, "FAIL") {
			t.Error(note)
		}
	}
	if len(res.Notes) < 7 {
		t.Errorf("only %d variants ran", len(res.Notes))
	}
}
