package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTable renders a result as an aligned text table: one block per
// series, one row per size, with wall and model columns plus any extras.
func WriteTable(w io.Writer, res Result) {
	fmt.Fprintf(w, "== %s ==\n", res.Title)
	extras := extraColumns(res)
	for _, series := range seriesOf(res) {
		rows := res.SeriesRows(series)
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n-- %s --\n", series)
		fmt.Fprintf(w, "%10s %14s %14s", "size", "model(us)", "wall(us)")
		for _, col := range extras {
			fmt.Fprintf(w, " %16s", col)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprintf(w, "%10d %14.2f %14.2f", r.Size, r.ModelUS, r.WallNS/1e3)
			for _, col := range extras {
				if v, ok := r.Extra[col]; ok {
					fmt.Fprintf(w, " %16.0f", v)
				} else {
					fmt.Fprintf(w, " %16s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	if len(res.Notes) > 0 {
		fmt.Fprintln(w)
		for _, n := range res.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
	}
	fmt.Fprintln(w)
}

// WriteCSV renders a result as CSV with a header row.
func WriteCSV(w io.Writer, res Result) {
	extras := extraColumns(res)
	fmt.Fprintf(w, "experiment,series,size,model_us,wall_ns")
	for _, col := range extras {
		fmt.Fprintf(w, ",%s", col)
	}
	fmt.Fprintln(w)
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s,%q,%d,%.3f,%.0f", res.Name, r.Series, r.Size, r.ModelUS, r.WallNS)
		for _, col := range extras {
			if v, ok := r.Extra[col]; ok {
				fmt.Fprintf(w, ",%.0f", v)
			} else {
				fmt.Fprint(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
}

// WritePlot renders a crude ASCII chart of model time (log-ish vertical
// compression) for eyeballing the Figure 2 shape in a terminal.
func WritePlot(w io.Writer, res Result) {
	series := seriesOf(res)
	var max float64
	for _, r := range res.Rows {
		if r.ModelUS > max {
			max = r.ModelUS
		}
	}
	if max == 0 {
		return
	}
	const width = 60
	fmt.Fprintf(w, "model time per series (each bar ∝ mean over sizes, max %.1fus)\n", max)
	for _, s := range series {
		rows := res.SeriesRows(s)
		if len(rows) == 0 {
			continue
		}
		var sum float64
		for _, r := range rows {
			sum += r.ModelUS
		}
		mean := sum / float64(len(rows))
		n := int(mean / max * width)
		if n < 1 {
			n = 1
		}
		fmt.Fprintf(w, "%-36s |%s %.1fus\n", s, strings.Repeat("#", n), mean)
	}
	fmt.Fprintln(w)
}

// seriesOf returns the declared series order, falling back to insertion
// order of the rows.
func seriesOf(res Result) []string {
	if len(res.SeriesOrder) > 0 {
		return res.SeriesOrder
	}
	seen := make(map[string]bool)
	var out []string
	for _, r := range res.Rows {
		if !seen[r.Series] {
			seen[r.Series] = true
			out = append(out, r.Series)
		}
	}
	return out
}

// extraColumns collects the union of extra column names, sorted.
func extraColumns(res Result) []string {
	seen := make(map[string]bool)
	for _, r := range res.Rows {
		for col, v := range r.Extra {
			if v != 0 {
				seen[col] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for col := range seen {
		out = append(out, col)
	}
	sort.Strings(out)
	return out
}

// All runs every experiment in catalogue order.
func All() []Result {
	return []Result{
		RunFig2(),
		RunFig1(),
		RunE3(),
		RunE4(),
		RunE5(),
		RunE7(),
		RunE8(),
		RunE9(),
		RunE10(),
		RunE11(),
		RunE12(),
		RunE13(),
		RunE14(),
		RunE15(),
		RunE16(),
	}
}

// ByName runs one experiment by id; ok is false for unknown ids.
func ByName(name string) (Result, bool) {
	switch name {
	case "fig2":
		return RunFig2(), true
	case "fig1", "e6":
		return RunFig1(), true
	case "e3":
		return RunE3(), true
	case "e4":
		return RunE4(), true
	case "e5":
		return RunE5(), true
	case "e7":
		return RunE7(), true
	case "e8":
		return RunE8(), true
	case "e9":
		return RunE9(), true
	case "e10":
		return RunE10(), true
	case "e11":
		return RunE11(), true
	case "e12":
		return RunE12(), true
	case "e13":
		return RunE13(), true
	case "e14":
		return RunE14(), true
	case "e15":
		return RunE15(), true
	case "e16":
		return RunE16(), true
	case "chaos":
		return RunChaos(), true
	default:
		return Result{}, false
	}
}

// Names lists the experiment ids ByName accepts.
func Names() []string {
	return []string{"fig2", "fig1", "e3", "e4", "e5", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "chaos"}
}
