package bench

import (
	"fmt"

	"mpi3rma/internal/serializer"
)

// E13 — operation batching and notified completion, measured on the
// Figure 2 workload (7 origins, 100 puts each, one Complete toward the
// single target).
//
// The paper's interface charges every put a full injection: software
// overhead o plus gap g per message in the LogGP model. E13 quantifies
// what the foMPI/UNR-style engine behind Options.BatchOps buys back:
//
//   - batching: up to b small puts ride one aggregated wire message, so
//     (o+g) is paid once per aggregate instead of once per put;
//   - notified completion: delivery counters piggybacked on target
//     reports let Complete finish locally instead of paying a probe
//     round-trip per target.
//
// Series:
//
//	unbatched blocking          — the Figure 2 baseline (single-call puts)
//	unbatched nonblock + probe  — nonblocking issue, probe-based Complete
//	unbatched nonblock + notify — per-put notifications, counter Complete
//	batched(16) + notify        — aggregation, counter Complete
//	batched(16) + probe         — aggregation, probe forced (A/B)
//
// plus a batch-size sweep at 64 B where the Size column is the batch
// size b, not the payload.

// E13Sizes is the small-payload band where aggregation pays (the
// acceptance claim covers 8–64 B); 512 B shows the taper as payload cost
// dominates the amortized overhead.
var E13Sizes = []int{8, 16, 32, 64, 512}

// E13Batch is the aggregate size of the fixed-b series.
const E13Batch = 16

// E13BatchSweep are the batch sizes of the 64-byte sweep.
var E13BatchSweep = []int{1, 2, 4, 8, 16, 32, 64}

// e13Series is one legend entry of the payload sweep.
type e13Series struct {
	name            string
	nonBlocking     bool
	notifyPuts      bool
	batchOps        int
	probeCompletion bool
}

var e13SeriesSet = []e13Series{
	{name: "unbatched blocking"},
	{name: "unbatched nonblock + probe", nonBlocking: true, probeCompletion: true},
	{name: "unbatched nonblock + notify", nonBlocking: true, notifyPuts: true},
	{name: "batched(16) + notify", nonBlocking: true, batchOps: E13Batch},
	{name: "batched(16) + probe", nonBlocking: true, batchOps: E13Batch, probeCompletion: true},
}

func e13Cell(s e13Series, size, batchOps int) PutsCompleteOutcome {
	return RunPutsComplete(PutsCompleteConfig{
		Origins:         Fig2Origins,
		Puts:            Fig2Puts,
		Size:            size,
		Mech:            serializer.MechThread,
		NonBlocking:     s.nonBlocking,
		NotifyPuts:      s.notifyPuts,
		BatchOps:        batchOps,
		ProbeCompletion: s.probeCompletion,
	})
}

// RunE13 sweeps the batching/notified-completion grid.
func RunE13() Result {
	res := Result{
		Name:  "e13",
		Title: "E13: batched issue + notified completion (Fig. 2 workload, 7 origins x 100 puts)",
	}
	for _, s := range e13SeriesSet {
		res.SeriesOrder = append(res.SeriesOrder, s.name)
		for _, size := range E13Sizes {
			out := e13Cell(s, size, s.batchOps)
			row := out.Row
			row.Series = s.name
			row.Extra["msgs"] = float64(out.Msgs)
			row.Extra["logical_ops"] = float64(out.LogicalOps)
			row.Extra["batches"] = float64(out.Batches)
			row.Extra["fast_paths"] = float64(out.FastPaths)
			if !out.Verified {
				res.Notef("VERIFY FAILED: series %q size %d left inconsistent target memory", s.name, size)
			}
			res.absorbTelemetry(out.Telemetry)
			res.Add(row)
		}
	}

	// Batch-size sweep at 64 B: the Size column is b.
	const sweepName = "batch-size sweep @64B (Size column = b)"
	res.SeriesOrder = append(res.SeriesOrder, sweepName)
	for _, b := range E13BatchSweep {
		out := e13Cell(e13Series{nonBlocking: true}, 64, b)
		row := out.Row
		row.Series = sweepName
		row.Size = b
		row.Extra["msgs"] = float64(out.Msgs)
		row.Extra["logical_ops"] = float64(out.LogicalOps)
		row.Extra["batches"] = float64(out.Batches)
		if !out.Verified {
			res.Notef("VERIFY FAILED: batch sweep b=%d left inconsistent target memory", b)
		}
		res.absorbTelemetry(out.Telemetry)
		res.Add(row)
	}

	res.Notes = append(res.Notes, e13ShapeNotes(&res)...)
	res.noteTelemetry()
	return res
}

// e13ShapeNotes checks the acceptance claims on the model-time series.
func e13ShapeNotes(res *Result) []string {
	var notes []string
	check := func(ok bool, format string, args ...any) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		notes = append(notes, fmt.Sprintf(status+": "+format, args...))
	}
	at := func(series string, size int) float64 {
		for _, r := range res.SeriesRows(series) {
			if r.Size == size {
				return r.ModelUS
			}
		}
		return 0
	}
	// Claim 1: batching cuts modelled time per op >= 2x against unbatched
	// issue at small payloads (both against the probe-based nonblocking
	// path, isolating aggregation, and against the blocking baseline).
	for _, size := range []int{8, 16, 32, 64} {
		un, ba := at("unbatched nonblock + probe", size), at("batched(16) + notify", size)
		check(ba > 0 && un >= 2*ba,
			"batched issue >=2x cheaper than unbatched at %dB (%.1fus vs %.1fus, %.1fx)",
			size, un, ba, un/ba)
	}
	// Claim 2: notified completion beats probe-based Complete on the
	// Fig. 2 workload, batched and unbatched alike.
	mean := func(series string) float64 {
		rows := res.SeriesRows(series)
		if len(rows) == 0 {
			return 0
		}
		var sum float64
		for _, r := range rows {
			sum += r.ModelUS
		}
		return sum / float64(len(rows))
	}
	np, nn := mean("unbatched nonblock + probe"), mean("unbatched nonblock + notify")
	check(nn < np, "notified completion beats probe-based Complete unbatched (%.1fus vs %.1fus)", nn, np)
	bp, bn := mean("batched(16) + probe"), mean("batched(16) + notify")
	check(bn < bp, "notified completion beats probe-based Complete batched (%.1fus vs %.1fus)", bn, bp)
	// The sweep should fall monotonically-ish: b=16 well under b=1.
	sweep := res.SeriesRows("batch-size sweep @64B (Size column = b)")
	var b1, b16 float64
	for _, r := range sweep {
		switch r.Size {
		case 1:
			b1 = r.ModelUS
		case 16:
			b16 = r.ModelUS
		}
	}
	check(b16 > 0 && b1 >= 2*b16, "64B sweep: b=16 >=2x cheaper than b=1 (%.1fus vs %.1fus)", b1, b16)
	return notes
}
