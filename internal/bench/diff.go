package bench

import (
	"fmt"
	"math"
)

// DiffOptions tunes CompareBenchJSON.
type DiffOptions struct {
	// ModelTol is the relative modelled-time drift tolerated before a
	// hard failure (default 0.05: the few-percent scheduling sensitivity
	// EXPERIMENTS.md documents, with headroom).
	ModelTol float64
	// WallWarnFactor flags wall-time drift beyond this ratio as a
	// warning (default 3: wall time is host noise; only an
	// order-of-magnitude change is worth a look).
	WallWarnFactor float64
	// AllocWarnFactor flags per-op allocation growth beyond this ratio
	// as a warning (default 1.5).
	AllocWarnFactor float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.ModelTol <= 0 {
		o.ModelTol = 0.05
	}
	if o.WallWarnFactor <= 0 {
		o.WallWarnFactor = 3
	}
	if o.AllocWarnFactor <= 0 {
		o.AllocWarnFactor = 1.5
	}
	return o
}

// DiffReport is the outcome of one baseline/current comparison.
type DiffReport struct {
	// Failures hard-fail CI: modelled-time drift beyond tolerance,
	// vanished data points, or a FAIL self-check note in the current run.
	Failures []string
	// Warnings are advisory: wall-time and allocation drift, new points.
	Warnings []string
}

// OK reports whether the comparison found no hard failure.
func (r DiffReport) OK() bool { return len(r.Failures) == 0 }

func (r *DiffReport) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

func (r *DiffReport) warnf(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

type diffKey struct {
	series string
	size   int
}

// CompareBenchJSON diffs a current benchmark artifact against its
// committed baseline. The modelled series is the contract: every baseline
// data point must still exist and its modelled time must sit within
// ModelTol relative drift. Wall time and allocations are compared
// warn-only, and any FAIL: self-check note in the current run is a hard
// failure regardless of timing.
func CompareBenchJSON(baseline, current BenchJSON, opts DiffOptions) DiffReport {
	opts = opts.withDefaults()
	var rep DiffReport
	if baseline.Experiment != current.Experiment {
		rep.failf("experiment mismatch: baseline %q vs current %q", baseline.Experiment, current.Experiment)
		return rep
	}
	cur := make(map[diffKey]BenchJSONRow, len(current.Rows))
	for _, r := range current.Rows {
		cur[diffKey{r.Series, r.Size}] = r
	}
	seen := make(map[diffKey]bool, len(baseline.Rows))
	for _, base := range baseline.Rows {
		k := diffKey{base.Series, base.Size}
		seen[k] = true
		now, ok := cur[k]
		if !ok {
			rep.failf("%s: data point (%q, %d) vanished from the current run", baseline.Experiment, base.Series, base.Size)
			continue
		}
		if base.ModelUS > 0 {
			drift := math.Abs(now.ModelUS-base.ModelUS) / base.ModelUS
			if drift > opts.ModelTol {
				rep.failf("%s: (%q, %d) modelled time drifted %.1f%% (baseline %.2fus, current %.2fus, tolerance %.0f%%)",
					baseline.Experiment, base.Series, base.Size, 100*drift, base.ModelUS, now.ModelUS, 100*opts.ModelTol)
			}
		}
		if base.WallNS > 0 && now.WallNS > 0 {
			ratio := now.WallNS / base.WallNS
			if ratio > opts.WallWarnFactor || ratio < 1/opts.WallWarnFactor {
				rep.warnf("%s: (%q, %d) wall time ratio %.2fx (baseline %.0fns, current %.0fns) — host noise unless it trends",
					baseline.Experiment, base.Series, base.Size, ratio, base.WallNS, now.WallNS)
			}
		}
	}
	for _, r := range current.Rows {
		if k := (diffKey{r.Series, r.Size}); !seen[k] {
			rep.warnf("%s: new data point (%q, %d) has no baseline — refresh with make bench-json", current.Experiment, r.Series, r.Size)
		}
	}
	if baseline.AllocsPerOp > 0 && current.AllocsPerOp > baseline.AllocsPerOp*opts.AllocWarnFactor {
		rep.warnf("%s: allocs/op grew %.2fx (baseline %.0f, current %.0f)",
			current.Experiment, current.AllocsPerOp/baseline.AllocsPerOp, baseline.AllocsPerOp, current.AllocsPerOp)
	}
	for _, n := range current.Notes {
		if len(n) >= 5 && n[:5] == "FAIL:" {
			rep.failf("%s: self-check failed: %s", current.Experiment, n)
		}
	}
	return rep
}
